// Command areareport regenerates the paper's Table I (FPGA synthesis
// results) from the parametric area model, and can report the bill of
// materials of any platform configuration or sweep the firewall rule
// count (experiment E2).
//
// Examples:
//
//	areareport                          # Table I, paper configuration
//	areareport -platform centralized    # BoM of the centralized baseline
//	areareport -sweep                   # LF area vs rule count
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/area"
	"repro/internal/soc"
	"repro/internal/trace"
)

func main() {
	var (
		platform = flag.String("platform", "", "report an actual platform: unprotected | distributed | centralized")
		sweep    = flag.Bool("sweep", false, "sweep Local Firewall rule count (experiment E2)")
		csv      = flag.Bool("csv", false, "emit CSV instead of an aligned table (sweep only)")
	)
	flag.Parse()

	switch {
	case *sweep:
		tb := trace.NewTable("E2 — Local Firewall area vs number of security rules",
			"rules", "slice regs", "slice LUTs", "LUT-FF pairs")
		for rules := 1; rules <= 64; rules *= 2 {
			lf := area.LocalFirewall(rules)
			tb.AddRow(fmt.Sprintf("%d", rules),
				trace.Comma(lf.Regs), trace.Comma(lf.LUTs), trace.Comma(lf.Pairs))
		}
		if *csv {
			fmt.Print(tb.CSV())
		} else {
			fmt.Print(tb.String())
		}

	case *platform != "":
		var prot soc.Protection
		switch *platform {
		case "unprotected":
			prot = soc.Unprotected
		case "distributed":
			prot = soc.Distributed
		case "centralized":
			prot = soc.Centralized
		default:
			fmt.Fprintf(os.Stderr, "areareport: unknown platform %q\n", *platform)
			os.Exit(1)
		}
		s := soc.MustNew(soc.Config{Protection: prot})
		fmt.Print(area.RenderReport(area.FromSystem(s)))

	default:
		fmt.Print(area.RenderTable1())
	}
}
