// Command mpsocd is the long-running campaign service: the mpsocsim
// simulation fleet behind an HTTP API. It accepts the same versioned JSON
// specs the CLI consumes (internal/spec), schedules grids across a
// bounded worker pool, and streams results as JSONL with backpressure —
// byte-identical to a direct mpsocsim run with the same spec. The root
// path serves a dependency-free live dashboard (job progress, containment
// rates, latency percentiles) fed by each job's /events SSE feed, and
// /metrics speaks both JSON and Prometheus text exposition.
//
//	mpsocd -addr :8080 -workers 8
//	open http://localhost:8080/                  # live dashboard
//	curl -X POST --data-binary @campaign.json localhost:8080/api/v1/jobs?trace=4096
//	curl localhost:8080/api/v1/jobs/job-0001/stream > records.jsonl
//	curl localhost:8080/api/v1/jobs/job-0001/aggregates
//	curl -N localhost:8080/api/v1/jobs/job-0001/events   # SSE: state + snapshots
//	curl localhost:8080/api/v1/jobs/job-0001/trace > trace.json  # open in Perfetto
//	curl localhost:8080/api/v1/jobs/job-0001/hosttrace > host.json  # wall-clock spans
//	curl -H 'Accept: text/plain' localhost:8080/metrics  # Prometheus exposition
//
// Host observability is always on and strictly off the result path:
// structured logs (log/slog, stderr only, level via -log-level), a
// bounded wall-clock span recorder served as a Chrome trace document at
// /api/v1/jobs/{id}/hosttrace, a crash flight recorder (live at
// /debug/flightrecorder, dumped to <journal>/flight-<pid>.json when a
// faultpoint kills the process), and — with -debug-addr — net/http/pprof
// plus runtime metrics on a separate listener. None of it ever touches
// stream bytes: the determinism gates run with all of it enabled.
//
//	mpsocd -addr :8080 -debug-addr :6060 -log-level debug
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=5
//	curl localhost:6060/debug/flightrecorder
//
// With -journal DIR the daemon is crash-safe: accepted specs, per-shard
// completion acks and terminal states are fsync'd to an append-only log,
// and a restarted daemon replays it, re-serving finished jobs and resuming
// interrupted ones by recomputing only the unacked shards — the resumed
// stream is byte-identical to an uninterrupted run (gated by make chaos).
//
//	mpsocd -addr :8080 -journal /var/lib/mpsocd/journal
//
// With -coordinator -backends a,b,c the daemon simulates nothing itself:
// it fans each job out as cost-balanced ?shard=i/n streams across the
// healthy backends (drain-aware /healthz probes), re-dispatches shards
// lost to a dead backend, and k-way merges the results byte-identically
// to a single-node run.
//
//	mpsocd -addr :9090 -coordinator -backends http://a:8080,http://b:8080
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/hostobs"
	"repro/internal/journal"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "global worker-pool size (0 = GOMAXPROCS)")
	maxJobs := flag.Int("max-jobs", 0, "maximum retained jobs (0 = default 1024)")
	snapshotEvery := flag.Int("snapshot-every", 0, "/events snapshot cadence in records (0 = default 256)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain window for in-flight streams")
	journalDir := flag.String("journal", "", "journal directory for crash-safe jobs (empty = in-memory only)")
	coordinator := flag.Bool("coordinator", false, "run as a fleet coordinator (requires -backends)")
	backends := flag.String("backends", "", "comma-separated backend base URLs for -coordinator")
	retryMax := flag.Int("retry-max", 0, "attempts per shard before poisoning (0 = default 3)")
	shardTimeout := flag.Duration("shard-timeout", 0, "per-shard-attempt deadline (0 = none)")
	debugAddr := flag.String("debug-addr", "", "separate listener for pprof + runtime metrics + flight recorder (empty = off)")
	logLevel := flag.String("log-level", "info", "minimum structured-log level: debug, info, warn, error")
	version := flag.Bool("version", false, "print build info and exit")
	flag.Parse()

	if *version {
		fmt.Println("mpsocd", hostobs.Build().String())
		return
	}

	level, err := parseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpsocd:", err)
		os.Exit(2)
	}

	cfg := server.Config{
		Workers: *workers, MaxJobs: *maxJobs, SnapshotEvery: *snapshotEvery,
		RetryMax: *retryMax, ShardTimeout: *shardTimeout,
	}
	if *coordinator {
		for _, b := range strings.Split(*backends, ",") {
			if b = strings.TrimSpace(b); b != "" {
				cfg.Backends = append(cfg.Backends, strings.TrimSuffix(b, "/"))
			}
		}
		if len(cfg.Backends) == 0 {
			fmt.Fprintln(os.Stderr, "mpsocd: -coordinator requires -backends url[,url...]")
			os.Exit(2)
		}
	}

	if err := run(*addr, *debugAddr, *journalDir, *drain, level, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "mpsocd:", err)
		os.Exit(1)
	}
}

// parseLevel maps the -log-level flag to a slog level.
func parseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("bad -log-level %q (want debug, info, warn, or error)", s)
}

func run(addr, debugAddr, journalDir string, drain time.Duration, level slog.Level, cfg server.Config) error {
	// Deterministic fault injection, armed only via the environment: the
	// chaos gate sets MPSOCD_FAULTPOINTS to crash the daemon at exact
	// commit points. Disarmed, every faultpoint is a single atomic load.
	if err := faultpoint.ArmFromEnv(); err != nil {
		return err
	}

	// Host observability lives entirely at this edge: the wall clock and
	// stderr are injected here, never read inside the deterministic core.
	// Logs go to stderr only — stdout stays clean for piped JSONL. The
	// flight recorder dumps next to the journal so a post-mortem finds the
	// crash evidence and the surviving log in one place.
	role := "mpsocd"
	if len(cfg.Backends) > 0 {
		role = "mpsocd-coord"
	}
	host := hostobs.New(hostobs.Options{
		Node:      role + "@" + addr,
		NowNanos:  func() int64 { return time.Now().UnixNano() },
		LogWriter: os.Stderr,
		Level:     level,
		FlightDir: journalDir,
	})
	cfg.Host = host
	cfg.Build = hostobs.Build()

	// An injected kill becomes a readable post-mortem: the hook runs after
	// the faultpoint's stderr marker and before exit(137), so the dump is
	// the last durable act of the dying process.
	faultpoint.SetOnCrash(func(name string, hit uint64) {
		host.Error("faultpoint crash", hostobs.Fields{
			Err:    name,
			Detail: fmt.Sprintf("hit=%d exiting=137", hit),
		})
		if path, err := host.WriteFlight(); err == nil && path != "" {
			fmt.Fprintf(os.Stderr, "mpsocd: flight recorder dumped to %s\n", path)
		}
	})

	var jn *journal.Journal
	if journalDir != "" {
		var err error
		// The wall clock feeds only the fsync latency metric and host
		// spans, never output bytes — which is why it is injected here at
		// the edge instead of read inside the deterministic core.
		jn, err = journal.Open(journalDir, journal.Options{
			NowNanos: func() int64 { return time.Now().UnixNano() },
			Observe: func(op, jobID string, startNanos, durNanos int64) {
				host.Span("journal-fsync", startNanos, hostobs.Fields{Job: jobID, Detail: op})
			},
		})
		if err != nil {
			return err
		}
		defer jn.Close()
		cfg.Journal = jn
	}

	svc := server.New(cfg)
	if jn != nil {
		// Restore logs its own structured replay summary (also surfaced in
		// /healthz) before any resumed job starts emitting events.
		if _, err := svc.Restore(); err != nil {
			return fmt.Errorf("journal replay: %w", err)
		}
	}

	// Hardened listener: header read and idle deadlines plus a header size
	// cap, so a stalled or abusive client costs a connection, not the
	// daemon. Streams are exempt by construction — only header reads and
	// idle keep-alives are bounded, never response writes.
	srv := &http.Server{
		Addr:              addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 16,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if debugAddr != "" {
		// pprof and the live flight recorder on their own listener, so the
		// profiling surface is never exposed on the service port.
		dbg := &http.Server{Addr: debugAddr, Handler: hostobs.DebugMux(host)}
		go func() { dbg.ListenAndServe() }()
		defer dbg.Close()
		host.Info("debug listener up", hostobs.Fields{Detail: debugAddr})
	}

	errc := make(chan error, 1)
	go func() {
		host.Info("listening", hostobs.Fields{Detail: fmt.Sprintf(
			"addr=%s role=%s journal=%q build=%s", addr, role, journalDir, cfg.Build.String())})
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Drain: flip /healthz to 503 first so routers and coordinators stop
	// sending work (and so journaled jobs cut off mid-stream stay
	// resumable), then stop accepting, give in-flight streams the drain
	// window, then cancel detached jobs and wait for them.
	host.Info("shutdown signal received", hostobs.Fields{Detail: fmt.Sprintf("drain_window=%s", drain)})
	svc.BeginDrain()
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := srv.Shutdown(sctx)
	svc.Close()
	if errors.Is(err, context.DeadlineExceeded) {
		// Streams outlasting the window are cut; their jobs end canceled —
		// or, when journaled, resume on the next boot.
		srv.Close()
	}
	host.Info("shutdown complete", hostobs.Fields{Err: errString(err)})
	return err
}

// errString renders an error for a log field, empty when nil.
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
