// Command mpsocd is the long-running campaign service: the mpsocsim
// simulation fleet behind an HTTP API. It accepts the same versioned JSON
// specs the CLI consumes (internal/spec), schedules grids across a
// bounded worker pool, and streams results as JSONL with backpressure —
// byte-identical to a direct mpsocsim run with the same spec. The root
// path serves a dependency-free live dashboard (job progress, containment
// rates, latency percentiles) fed by each job's /events SSE feed, and
// /metrics speaks both JSON and Prometheus text exposition.
//
//	mpsocd -addr :8080 -workers 8
//	open http://localhost:8080/                  # live dashboard
//	curl -X POST --data-binary @campaign.json localhost:8080/api/v1/jobs?trace=4096
//	curl localhost:8080/api/v1/jobs/job-0001/stream > records.jsonl
//	curl localhost:8080/api/v1/jobs/job-0001/aggregates
//	curl -N localhost:8080/api/v1/jobs/job-0001/events   # SSE: state + snapshots
//	curl localhost:8080/api/v1/jobs/job-0001/trace > trace.json  # open in Perfetto
//	curl -H 'Accept: text/plain' localhost:8080/metrics  # Prometheus exposition
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "global worker-pool size (0 = GOMAXPROCS)")
	maxJobs := flag.Int("max-jobs", 0, "maximum retained jobs (0 = default 1024)")
	snapshotEvery := flag.Int("snapshot-every", 0, "/events snapshot cadence in records (0 = default 256)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain window for in-flight streams")
	flag.Parse()

	if err := run(*addr, *workers, *maxJobs, *snapshotEvery, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "mpsocd:", err)
		os.Exit(1)
	}
}

func run(addr string, workers, maxJobs, snapshotEvery int, drain time.Duration) error {
	svc := server.New(server.Config{Workers: workers, MaxJobs: maxJobs, SnapshotEvery: snapshotEvery})
	srv := &http.Server{Addr: addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("mpsocd: listening on %s", addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Drain: stop accepting, give in-flight streams the drain window, then
	// cancel detached jobs and wait for them.
	log.Printf("mpsocd: shutting down (drain %s)", drain)
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := srv.Shutdown(sctx)
	svc.Close()
	if errors.Is(err, context.DeadlineExceeded) {
		// Streams outlasting the window are cut; their jobs end canceled.
		srv.Close()
	}
	return err
}
