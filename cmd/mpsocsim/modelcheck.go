package main

import (
	"fmt"
	"io"

	"repro/internal/modelcheck"
)

// runModelcheck is the `-modelcheck` entry: exhaustively enumerate the
// default bounded model of the firewall policy + quarantine reactor
// automaton and report the proof. This is what `make modelcheck` gates in
// CI: the state/transition counts are deterministic across runs, and any
// invariant violation is rendered as a minimal, replayable trace.
func runModelcheck(w io.Writer) error {
	res, err := modelcheck.Check(modelcheck.Config{})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, res.Summary())
	if ce := res.Counterexample; ce != nil {
		fmt.Fprintln(w, ce)
		fmt.Fprintln(w, "replay as a Go test:")
		fmt.Fprintln(w, ce.GoTest())
		return fmt.Errorf("modelcheck: invariant (%s) violated", ce.Invariant)
	}
	return nil
}
