package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/soc"
	"repro/internal/spec"
	"repro/internal/sweep"
)

func TestParseFlagsDefaults(t *testing.T) {
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.protection != "distributed" || o.workload != "matmul" || o.cores != 3 {
		t.Fatalf("bad defaults: %+v", o)
	}
	if o.format != "jsonl" || o.shard != "" || o.merge != "" {
		t.Fatalf("bad sweep defaults: %+v", o)
	}
	if o.maxCycles != 100_000_000 {
		t.Fatalf("max cycles default = %d", o.maxCycles)
	}
}

func TestParseFlagsSweep(t *testing.T) {
	o, err := parseFlags([]string{
		"-sweep", "-format", "csv", "-shard", "1/4",
		"-sweep-cores", "1,2", "-sweep-workloads", "mix",
		"-workers", "7", "-sweep-out", "x.csv",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !o.doSweep || o.format != "csv" || o.shard != "1/4" || o.workers != 7 || o.sweepOut != "x.csv" {
		t.Fatalf("sweep flags not parsed: %+v", o)
	}
}

func TestParseFlagsRejectsGarbage(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-cores", "many"},
		{"stray-positional"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestParseProtection(t *testing.T) {
	for name, want := range map[string]soc.Protection{
		"unprotected": soc.Unprotected,
		"distributed": soc.Distributed,
		"centralized": soc.Centralized,
	} {
		p, err := spec.ParseProtection(name)
		if err != nil || p != want {
			t.Fatalf("ParseProtection(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := spec.ParseProtection("seca"); err == nil {
		t.Fatal("unknown protection accepted")
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" a, b ,,c ")
	if strings.Join(got, "|") != "a|b|c" {
		t.Fatalf("splitList = %v", got)
	}
	if splitList("") != nil {
		t.Fatal("empty list should be nil")
	}
}

func TestBuildGridHonorsAxes(t *testing.T) {
	o, err := parseFlags([]string{"-sweep",
		"-sweep-protections", "unprotected,distributed",
		"-sweep-workloads", "mix", "-sweep-targets", "internal",
		"-sweep-cores", "1,2,4"})
	if err != nil {
		t.Fatal(err)
	}
	grid, err := buildGrid(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 6 {
		t.Fatalf("grid size %d, want 6", len(grid))
	}
	if _, err := buildGrid(&options{sweepProts: "bogus", sweepCores: "1"}); err == nil {
		t.Fatal("bogus protection accepted")
	}
	if _, err := buildGrid(&options{sweepProts: "unprotected", sweepCores: "two"}); err == nil {
		t.Fatal("bogus core count accepted")
	}
	if _, err := buildGrid(&options{}); err == nil {
		t.Fatal("empty grid accepted")
	}
}

// sweepArgs is a tiny fast grid used by the end-to-end CLI tests.
func sweepArgs(extra ...string) []string {
	return append([]string{"-sweep",
		"-sweep-protections", "unprotected,distributed",
		"-sweep-workloads", "mix", "-sweep-cores", "1,2",
		"-accesses", "8", "-compute", "2", "-max", "500000",
	}, extra...)
}

func runCLISweep(t *testing.T, extra ...string) []byte {
	t.Helper()
	o, err := parseFlags(sweepArgs(extra...))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := runSweep(o, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRunSweepJSONL(t *testing.T) {
	out := runCLISweep(t)
	lines := bytes.Split(bytes.TrimSpace(out), []byte("\n"))
	if len(lines) != 4 {
		t.Fatalf("%d result lines, want 4", len(lines))
	}
	var r sweep.RunResult
	if err := json.Unmarshal(lines[0], &r); err != nil {
		t.Fatal(err)
	}
	if r.Name != "unprotected/mix/internal/c1" {
		t.Fatalf("first run %q", r.Name)
	}
}

func TestRunSweepFormats(t *testing.T) {
	csvOut := runCLISweep(t, "-format", "csv")
	if !bytes.HasPrefix(csvOut, []byte("index,name,protection")) {
		t.Fatalf("csv output: %.60s", csvOut)
	}
	jsonOut := runCLISweep(t, "-format", "json")
	var rep sweep.Report
	if err := json.Unmarshal(jsonOut, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.GridSize != 4 || len(rep.Results) != 4 {
		t.Fatalf("report %d/%d", rep.GridSize, len(rep.Results))
	}
	o, err := parseFlags(sweepArgs("-format", "yaml"))
	if err != nil {
		t.Fatal(err)
	}
	if err := runSweep(o, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// TestShardMergeCLIRoundTrip drives the exact workflow the CI determinism
// job runs: two shard processes, merged, must reproduce the unsharded
// stream byte-for-byte.
func TestShardMergeCLIRoundTrip(t *testing.T) {
	full := runCLISweep(t, "-workers", "3")
	dir := t.TempDir()
	p0 := filepath.Join(dir, "shard0.jsonl")
	p1 := filepath.Join(dir, "shard1.jsonl")
	if err := os.WriteFile(p0, runCLISweep(t, "-shard", "0/2"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p1, runCLISweep(t, "-shard", "1/2"), 0o644); err != nil {
		t.Fatal(err)
	}
	merged := runCLISweep(t, "-merge", p0+","+p1)
	if !bytes.Equal(full, merged) {
		t.Fatalf("merged shards != unsharded stream:\n%s\n---\n%s", full, merged)
	}
	o, err := parseFlags(sweepArgs("-merge", filepath.Join(dir, "missing.jsonl")))
	if err != nil {
		t.Fatal(err)
	}
	if err := runSweep(o, &bytes.Buffer{}); err == nil {
		t.Fatal("missing shard file accepted")
	}
	// Merging only one of two shards is an incomplete dataset, not a
	// success.
	if o, err = parseFlags(sweepArgs("-merge", p1)); err != nil {
		t.Fatal(err)
	}
	if err := runSweep(o, &bytes.Buffer{}); err == nil {
		t.Fatal("partial merge accepted")
	}
	// -merge emits JSONL only; other formats must be rejected, not
	// silently ignored.
	if o, err = parseFlags(sweepArgs("-merge", p0+","+p1, "-format", "csv")); err != nil {
		t.Fatal(err)
	}
	if err := runSweep(o, &bytes.Buffer{}); err == nil {
		t.Fatal("-merge with -format csv accepted")
	}
}

func TestBadShardRejected(t *testing.T) {
	o, err := parseFlags(sweepArgs("-shard", "2/2"))
	if err != nil {
		t.Fatal(err)
	}
	if err := runSweep(o, &bytes.Buffer{}); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}

// --- attack-campaign mode ---

func TestParseFlagsAttackDefaults(t *testing.T) {
	o, err := parseFlags([]string{"-attack"})
	if err != nil {
		t.Fatal(err)
	}
	if !o.doAttack || o.attackCores != "3" || o.attackBgs != "stream" {
		t.Fatalf("bad attack defaults: %+v", o)
	}
	if o.injectDelay == 0 || o.attackScens == "" {
		t.Fatalf("bad attack defaults: %+v", o)
	}
}

func TestBuildCampaignGridHonorsAxes(t *testing.T) {
	o, err := parseFlags([]string{"-attack",
		"-attack-scenarios", "tamper,dos-flood",
		"-sweep-protections", "unprotected,distributed",
		"-attack-cores", "2,3", "-attack-backgrounds", "stream,none"})
	if err != nil {
		t.Fatal(err)
	}
	grid, err := buildCampaignGrid(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 16 {
		t.Fatalf("grid size %d, want 16", len(grid))
	}
	if _, err := buildCampaignGrid(&options{sweepProts: "bogus", attackCores: "1", attackScens: "tamper"}); err == nil {
		t.Fatal("bogus protection accepted")
	}
	if _, err := buildCampaignGrid(&options{sweepProts: "unprotected", attackCores: "two", attackScens: "tamper"}); err == nil {
		t.Fatal("bogus core count accepted")
	}
	if _, err := buildCampaignGrid(&options{}); err == nil {
		t.Fatal("empty campaign grid accepted")
	}
}

// attackArgs is a tiny fast campaign grid for the end-to-end CLI tests.
func attackArgs(extra ...string) []string {
	return append([]string{"-attack",
		"-attack-scenarios", "tamper,zone-escape",
		"-sweep-protections", "unprotected,distributed",
		"-attack-cores", "3", "-accesses", "24", "-inject-delay", "100",
		"-max", "1000000",
	}, extra...)
}

func runCLIAttack(t *testing.T, extra ...string) []byte {
	t.Helper()
	o, err := parseFlags(attackArgs(extra...))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := runAttack(o, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRunAttackJSONL(t *testing.T) {
	out := runCLIAttack(t)
	lines := bytes.Split(bytes.TrimSpace(out), []byte("\n"))
	if len(lines) != 4 {
		t.Fatalf("%d result lines, want 4", len(lines))
	}
	var r campaign.Record
	if err := json.Unmarshal(lines[0], &r); err != nil {
		t.Fatal(err)
	}
	if r.Name != "tamper/unprotected/stream/c3" {
		t.Fatalf("first run %q", r.Name)
	}
	if r.Err != "" {
		t.Fatalf("first run failed: %s", r.Err)
	}
}

func TestRunAttackFormats(t *testing.T) {
	csvOut := runCLIAttack(t, "-format", "csv")
	if !bytes.HasPrefix(csvOut, []byte("index,name,scenario,protection")) {
		t.Fatalf("csv output: %.60s", csvOut)
	}
	table := runCLIAttack(t, "-format", "table")
	for _, want := range []string{"containment matrix", "bystander cost", "zone-escape", "caught by"} {
		if !bytes.Contains(table, []byte(want)) {
			t.Fatalf("table output missing %q:\n%s", want, table)
		}
	}
	o, err := parseFlags(attackArgs("-format", "yaml"))
	if err != nil {
		t.Fatal(err)
	}
	if err := runAttack(o, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown attack format accepted")
	}
}

// TestAttackShardMergeCLIRoundTrip mirrors the CI determinism job for the
// campaign: two shard processes, merged, must reproduce the unsharded
// stream byte-for-byte.
func TestAttackShardMergeCLIRoundTrip(t *testing.T) {
	full := runCLIAttack(t, "-workers", "3")
	dir := t.TempDir()
	p0 := filepath.Join(dir, "shard0.jsonl")
	p1 := filepath.Join(dir, "shard1.jsonl")
	if err := os.WriteFile(p0, runCLIAttack(t, "-shard", "0/2"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p1, runCLIAttack(t, "-shard", "1/2"), 0o644); err != nil {
		t.Fatal(err)
	}
	merged := runCLIAttack(t, "-merge", p0+","+p1)
	if !bytes.Equal(full, merged) {
		t.Fatalf("merged attack shards != unsharded stream:\n%s\n---\n%s", full, merged)
	}
}

func TestSweepAndAttackMutuallyExclusiveFlagsParse(t *testing.T) {
	// Parsing accepts both flags (main rejects the combination); make sure
	// at least the options carry both so main can see the conflict.
	o, err := parseFlags([]string{"-sweep", "-attack"})
	if err != nil {
		t.Fatal(err)
	}
	if !o.doSweep || !o.doAttack {
		t.Fatalf("flags lost: %+v", o)
	}
}

// --- reaction-and-recovery mode ---

func TestParseFlagsRecoveryDefaults(t *testing.T) {
	o, err := parseFlags([]string{"-attack"})
	if err != nil {
		t.Fatal(err)
	}
	if o.recovery {
		t.Fatal("recovery on by default")
	}
	if p := o.recoveryParams(); p.Enabled() {
		t.Fatalf("disabled recovery yields enabled params: %+v", p)
	}
	o, err = parseFlags([]string{"-attack", "-recovery", "-recovery-staged",
		"-recovery-threshold", "5", "-recovery-clear-delay", "7000"})
	if err != nil {
		t.Fatal(err)
	}
	p := o.recoveryParams()
	if !p.Enabled() || p.QuarantineThreshold != 5 || p.ClearDelay != 7000 || !p.Staged {
		t.Fatalf("recovery flags not parsed: %+v", p)
	}
	if p.SampleWindow == 0 || p.Epsilon == 0 || p.StageDelay == 0 {
		t.Fatalf("recovery defaults not normalized: %+v", p)
	}
	grid, err := buildCampaignGrid(o)
	if err != nil {
		t.Fatal(err)
	}
	if !grid[0].Recovery.Enabled() {
		t.Fatal("-recovery did not arm the grid")
	}
}

// TestRunAttackRecoveryTable drives the acceptance scenario end to end:
// the table output must carry the reaction & recovery columns, with the
// distributed platform quarantining, releasing and recovering while the
// centralized baseline never quarantines.
func TestRunAttackRecoveryTable(t *testing.T) {
	o, err := parseFlags([]string{"-attack",
		"-attack-scenarios", "burst-flood",
		"-sweep-protections", "unprotected,distributed,centralized",
		"-attack-cores", "3", "-accesses", "512", "-inject-delay", "100",
		"-max", "2000000", "-format", "table",
		"-recovery", "-recovery-clear-delay", "8000",
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := runAttack(o, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"reaction & recovery",
		"recovered +", // the distributed platform's full lifecycle
		"no quarantine",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("recovery table missing %q:\n%s", want, out)
		}
	}
}

// TestRunAttackRecoveryJSONLDeterministic mirrors the CI recovery
// determinism gate at test scale.
func TestRunAttackRecoveryJSONLDeterministic(t *testing.T) {
	args := func(extra ...string) []string {
		return append(attackArgs("-recovery", "-recovery-staged"), extra...)
	}
	run := func(extra ...string) []byte {
		o, err := parseFlags(args(extra...))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := runAttack(o, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run("-workers", "1"), run("-workers", "6")
	if !bytes.Equal(a, b) {
		t.Fatal("recovery-enabled attack stream differs across worker counts")
	}
	if !bytes.Contains(a, []byte(`"recovery":true`)) {
		t.Fatalf("stream does not carry the recovery marker:\n%s", a)
	}
}

// TestRunModelcheckSmoke is the CLI face of the `make modelcheck` gate:
// the proof over the default bounded model passes and reports
// deterministic state/transition counts.
func TestRunModelcheckSmoke(t *testing.T) {
	o, err := parseFlags([]string{"-modelcheck"})
	if err != nil {
		t.Fatal(err)
	}
	if !o.doModelcheck {
		t.Fatal("-modelcheck flag not parsed")
	}
	var a, b bytes.Buffer
	if err := runModelcheck(&a); err != nil {
		t.Fatalf("modelcheck failed: %v\n%s", err, a.String())
	}
	if err := runModelcheck(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("modelcheck report differs across runs:\n%s\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), "invariants (a)-(d): PASS") {
		t.Fatalf("unexpected report: %s", a.String())
	}
}
