package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/spec"
)

// specAttackArgs is a tiny fast campaign used by the spec-equivalence tests.
func specAttackArgs(extra ...string) []string {
	return append([]string{"-attack",
		"-attack-scenarios", "tamper,zone-escape",
		"-sweep-protections", "unprotected,distributed",
		"-attack-cores", "3", "-attack-backgrounds", "none,stream",
		"-accesses", "8", "-inject-delay", "50", "-max", "300000",
	}, extra...)
}

// writeSpecFile dumps the options' effective spec to a temp file — the
// same JSON -dump-spec prints.
func writeSpecFile(t *testing.T, o *options, kind string) string {
	t.Helper()
	sp, err := o.resolveSpec(kind)
	if err != nil {
		t.Fatal(err)
	}
	data, err := sp.JSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSpecAndFlagRunsIdentical is satellite-level golden coverage for the
// spec-as-API contract: a run driven by axis flags and a run driven by
// the dumped spec file produce byte-identical JSONL.
func TestSpecAndFlagRunsIdentical(t *testing.T) {
	byFlags, err := parseFlags(specAttackArgs())
	if err != nil {
		t.Fatal(err)
	}
	var flagOut bytes.Buffer
	if err := runAttack(byFlags, &flagOut); err != nil {
		t.Fatal(err)
	}

	path := writeSpecFile(t, byFlags, spec.KindCampaign)
	bySpec, err := parseFlags([]string{"-spec", path})
	if err != nil {
		t.Fatal(err)
	}
	if err := bySpec.loadSpec(); err != nil {
		t.Fatal(err)
	}
	// Mode inference: the campaign spec alone selects -attack.
	if !bySpec.doAttack || bySpec.doSweep {
		t.Fatalf("campaign spec inferred mode attack=%v sweep=%v", bySpec.doAttack, bySpec.doSweep)
	}
	var specOut bytes.Buffer
	if err := runAttack(bySpec, &specOut); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(flagOut.Bytes(), specOut.Bytes()) {
		t.Fatal("flag-built and spec-built campaign streams differ")
	}
}

// TestSweepSpecAndFlagRunsIdentical: the same contract for the benign
// sweep kind.
func TestSweepSpecAndFlagRunsIdentical(t *testing.T) {
	byFlags, err := parseFlags(sweepArgs())
	if err != nil {
		t.Fatal(err)
	}
	var flagOut bytes.Buffer
	if err := runSweep(byFlags, &flagOut); err != nil {
		t.Fatal(err)
	}

	path := writeSpecFile(t, byFlags, spec.KindSweep)
	bySpec, err := parseFlags([]string{"-spec", path})
	if err != nil {
		t.Fatal(err)
	}
	if err := bySpec.loadSpec(); err != nil {
		t.Fatal(err)
	}
	if !bySpec.doSweep {
		t.Fatal("sweep spec did not infer -sweep mode")
	}
	var specOut bytes.Buffer
	if err := runSweep(bySpec, &specOut); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(flagOut.Bytes(), specOut.Bytes()) {
		t.Fatal("flag-built and spec-built sweep streams differ")
	}
}

// TestSpecFlagOverrides: explicitly-passed flags override spec fields;
// untouched spec fields survive.
func TestSpecFlagOverrides(t *testing.T) {
	base, err := parseFlags(specAttackArgs())
	if err != nil {
		t.Fatal(err)
	}
	path := writeSpecFile(t, base, spec.KindCampaign)

	o, err := parseFlags([]string{"-spec", path, "-attack-scenarios", "replay", "-accesses", "16"})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.loadSpec(); err != nil {
		t.Fatal(err)
	}
	grid, err := buildCampaignGrid(o)
	if err != nil {
		t.Fatal(err)
	}
	// 1 scenario x 2 protections x 1 cores x 2 backgrounds.
	if len(grid) != 4 {
		t.Fatalf("overridden grid size %d, want 4", len(grid))
	}
	for _, c := range grid {
		if c.Scenario != "replay" {
			t.Fatalf("scenario = %q, want the -attack-scenarios override", c.Scenario)
		}
		if c.Accesses != 16 {
			t.Fatalf("accesses = %d, want the -accesses override", c.Accesses)
		}
		if c.MaxCycles != 300_000 {
			t.Fatalf("max cycles = %d, want the spec's 300000 preserved", c.MaxCycles)
		}
	}
}

// TestLoadSpecModeMismatch: a spec of one kind cannot drive the other
// mode's flag.
func TestLoadSpecModeMismatch(t *testing.T) {
	base, err := parseFlags(sweepArgs())
	if err != nil {
		t.Fatal(err)
	}
	path := writeSpecFile(t, base, spec.KindSweep)
	o, err := parseFlags([]string{"-spec", path, "-attack"})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.loadSpec(); err == nil {
		t.Fatal("sweep spec accepted for -attack")
	}
}

// TestDumpSpecRoundTrips: the effective spec marshals to JSON that parses
// back to the same spec — the -dump-spec / -spec loop is lossless.
func TestDumpSpecRoundTrips(t *testing.T) {
	o, err := parseFlags(specAttackArgs("-recovery", "-recovery-staged"))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := o.resolveSpec(spec.KindCampaign)
	if err != nil {
		t.Fatal(err)
	}
	data, err := sp.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := spec.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sp, back) {
		t.Fatalf("spec did not round-trip:\n%+v\nvs\n%+v", sp, back)
	}
}

// TestSpecRejectsBadFile: unreadable or invalid spec files surface as
// errors with the file name.
func TestSpecRejectsBadFile(t *testing.T) {
	o := &options{specFile: filepath.Join(t.TempDir(), "missing.json")}
	if err := o.loadSpec(); err == nil {
		t.Fatal("missing spec file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version":1,"kind":"campaign","campaign":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	o = &options{specFile: bad}
	if err := o.loadSpec(); err == nil {
		t.Fatal("invalid spec file accepted")
	}
}
