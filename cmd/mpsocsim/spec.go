package main

import (
	"fmt"
	"os"
	"strconv"

	"repro/internal/spec"
)

// This file is the CLI half of the spec-as-API contract: the axis flags
// compile into the same versioned spec (internal/spec) that mpsocd accepts
// over HTTP, and -spec loads one directly with explicitly-passed flags
// applied as overrides. Both paths build their grid through spec.Grid, so
// a flag-built run and a spec-built run of the same parameters are
// byte-identical (gated by TestSpecAndFlagRunsIdentical and
// make serve-determinism).

// parseCores parses a comma-separated core-count axis.
func parseCores(list string) ([]int, error) {
	var cores []int
	for _, s := range splitList(list) {
		n, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("bad core count %q: %v", s, err)
		}
		cores = append(cores, n)
	}
	return cores, nil
}

// recoverySpec mirrors the -recovery* flags as a spec block (nil when the
// phase is off).
func (o *options) recoverySpec() *spec.RecoverySpec {
	if !o.recovery {
		return nil
	}
	return &spec.RecoverySpec{
		Enabled:      true,
		Threshold:    o.recThreshold,
		AlertWindow:  o.recWindow,
		ClearDelay:   o.recClearDelay,
		Staged:       o.recStaged,
		StageDelay:   o.recStageDelay,
		SampleWindow: o.recSample,
		Epsilon:      o.recEpsilon,
	}
}

// flagSpec compiles the axis flags into a spec of the given kind.
func (o *options) flagSpec(kind string) (*spec.Spec, error) {
	switch kind {
	case spec.KindSweep:
		cores, err := parseCores(o.sweepCores)
		if err != nil {
			return nil, err
		}
		return spec.NewSweep(spec.SweepSpec{
			Protections: splitList(o.sweepProts),
			Workloads:   splitList(o.sweepWls),
			Targets:     splitList(o.sweepTgts),
			Cores:       cores,
			Accesses:    o.accesses,
			Compute:     o.compute,
			MaxCycles:   o.maxCycles,
		}), nil
	case spec.KindCampaign:
		cores, err := parseCores(o.attackCores)
		if err != nil {
			return nil, err
		}
		return spec.NewCampaign(spec.CampaignSpec{
			Scenarios:   splitList(o.attackScens),
			Protections: splitList(o.sweepProts),
			Cores:       cores,
			Backgrounds: splitList(o.attackBgs),
			Accesses:    o.accesses,
			Compute:     o.compute,
			InjectDelay: o.injectDelay,
			MaxCycles:   o.maxCycles,
			Recovery:    o.recoverySpec(),
		}), nil
	}
	return nil, fmt.Errorf("unknown spec kind %q", kind)
}

// loadSpec reads and parses -spec, and infers the run mode from the
// spec's kind when neither -sweep nor -attack was given.
func (o *options) loadSpec() error {
	data, err := os.ReadFile(o.specFile)
	if err != nil {
		return err
	}
	sp, err := spec.Parse(data)
	if err != nil {
		return fmt.Errorf("%s: %w", o.specFile, err)
	}
	switch sp.Kind {
	case spec.KindSweep:
		if o.doAttack {
			return fmt.Errorf("%s is a sweep spec; it cannot drive -attack", o.specFile)
		}
		o.doSweep = true
	case spec.KindCampaign:
		if o.doSweep {
			return fmt.Errorf("%s is a campaign spec; it cannot drive -sweep", o.specFile)
		}
		o.doAttack = true
	}
	o.spec = sp
	return nil
}

// resolveSpec returns the run's effective spec of the given kind: the
// -spec file with explicitly-passed flags layered on top, or a spec
// compiled purely from flags. The -recovery* flags override the spec's
// recovery block as a unit, and only when -recovery itself was passed.
func (o *options) resolveSpec(kind string) (*spec.Spec, error) {
	if o.spec == nil {
		return o.flagSpec(kind)
	}
	if o.spec.Kind != kind {
		return nil, fmt.Errorf("%s: want a %s spec, got %s", o.specFile, kind, o.spec.Kind)
	}
	var err error
	override := func(name string, apply func() error) {
		if err == nil && o.set[name] {
			err = apply()
		}
	}
	strs := func(dst *[]string, src *string) func() error {
		return func() error { *dst = splitList(*src); return nil }
	}
	cores := func(dst *[]int, src *string) func() error {
		return func() error { var e error; *dst, e = parseCores(*src); return e }
	}
	ints := func(dst *int, src *int) func() error {
		return func() error { *dst = *src; return nil }
	}
	u64s := func(dst *uint64, src *uint64) func() error {
		return func() error { *dst = *src; return nil }
	}
	switch kind {
	case spec.KindSweep:
		s := o.spec.Sweep
		override("sweep-protections", strs(&s.Protections, &o.sweepProts))
		override("sweep-workloads", strs(&s.Workloads, &o.sweepWls))
		override("sweep-targets", strs(&s.Targets, &o.sweepTgts))
		override("sweep-cores", cores(&s.Cores, &o.sweepCores))
		override("accesses", ints(&s.Accesses, &o.accesses))
		override("compute", ints(&s.Compute, &o.compute))
		override("max", u64s(&s.MaxCycles, &o.maxCycles))
	case spec.KindCampaign:
		c := o.spec.Campaign
		override("attack-scenarios", strs(&c.Scenarios, &o.attackScens))
		override("sweep-protections", strs(&c.Protections, &o.sweepProts))
		override("attack-cores", cores(&c.Cores, &o.attackCores))
		override("attack-backgrounds", strs(&c.Backgrounds, &o.attackBgs))
		override("accesses", ints(&c.Accesses, &o.accesses))
		override("compute", ints(&c.Compute, &o.compute))
		override("inject-delay", u64s(&c.InjectDelay, &o.injectDelay))
		override("max", u64s(&c.MaxCycles, &o.maxCycles))
		override("recovery", func() error { c.Recovery = o.recoverySpec(); return nil })
	}
	if err != nil {
		return nil, err
	}
	return o.spec, nil
}

// runDumpSpec prints the run's effective spec — the exact JSON body
// mpsocd accepts, and the file -spec reads back.
func runDumpSpec(o *options) error {
	kind := spec.KindSweep
	if o.doAttack {
		kind = spec.KindCampaign
	} else if !o.doSweep {
		return fmt.Errorf("-dump-spec needs -sweep, -attack or -spec to pick a kind")
	}
	sp, err := o.resolveSpec(kind)
	if err != nil {
		return err
	}
	data, err := sp.JSON()
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(data)
	return err
}
