// Command mpsocsim builds and runs the paper's multiprocessor platform.
//
// Examples:
//
//	mpsocsim -topology                         # print Figure 1
//	mpsocsim -workload matmul                  # compute-bound kernel on cpu0
//	mpsocsim -workload mix -compute 16 -target external -protection distributed
//	mpsocsim -workload producer-consumer -protection centralized
//	mpsocsim -sweep                            # concurrent scenario grid, JSON report
//	mpsocsim -sweep -sweep-cores 1,2,4,8 -sweep-workloads mix,stream -sweep-out report.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/soc"
	"repro/internal/sweep"
	"repro/internal/trace"
)

func main() {
	var (
		protFlag = flag.String("protection", "distributed", "unprotected | distributed | centralized")
		topology = flag.Bool("topology", false, "print the platform topology (Figure 1) and exit")
		wl       = flag.String("workload", "matmul", "matmul | memcopy | stream | mix | producer-consumer")
		compute  = flag.Int("compute", 16, "mix: compute iterations per access")
		accesses = flag.Int("accesses", 200, "mix/stream: number of accesses")
		target   = flag.String("target", "internal", "mix/stream target: internal | external | cipher | plain")
		cores    = flag.Int("cores", 3, "number of processor cores")
		maxCyc   = flag.Uint64("max", 100_000_000, "cycle budget")
		rules    = flag.Int("extra-rules", 0, "pad every firewall with N extra rules")
		policy   = flag.String("core-policy", "", "JSON file replacing the per-core master policy (distributed only)")
		dumpPol  = flag.Bool("dump-policies", false, "print the platform's security policies as JSON and exit")

		doSweep    = flag.Bool("sweep", false, "run a protection x workload x core-count scenario grid concurrently and emit a JSON report")
		sweepProts = flag.String("sweep-protections", "unprotected,distributed,centralized", "sweep: protections axis")
		sweepWls   = flag.String("sweep-workloads", "mix,stream", "sweep: workloads axis")
		sweepTgts  = flag.String("sweep-targets", "internal", "sweep: targets axis")
		sweepCores = flag.String("sweep-cores", "1,2,4", "sweep: core-count axis")
		sweepOut   = flag.String("sweep-out", "", "sweep: report file (stdout when empty)")
		workers    = flag.Int("workers", 0, "sweep: worker goroutines (GOMAXPROCS when 0)")
	)
	flag.Parse()

	if *doSweep {
		if err := runSweep(*sweepProts, *sweepWls, *sweepTgts, *sweepCores, *accesses, *compute, *maxCyc, *workers, *sweepOut); err != nil {
			fatal(err)
		}
		return
	}

	prot, err := parseProtection(*protFlag)
	if err != nil {
		fatal(err)
	}
	var corePolicies []core.Policy
	if *policy != "" {
		data, err := os.ReadFile(*policy)
		if err != nil {
			fatal(err)
		}
		if corePolicies, err = core.PoliciesFromJSON(data); err != nil {
			fatal(err)
		}
	}
	s, err := soc.New(soc.Config{
		Protection:      prot,
		NumCores:        *cores,
		ExtraRulesPerLF: *rules,
		CorePolicies:    corePolicies,
	})
	if err != nil {
		fatal(err)
	}
	if *topology {
		fmt.Print(s.Topology())
		return
	}
	if *dumpPol {
		dumpPolicies(s)
		return
	}

	tgt, span, err := sweep.ParseTarget(*target)
	if err != nil {
		fatal(err)
	}
	if err := sweep.LoadWorkload(s, *wl, tgt, span, *compute, *accesses); err != nil {
		fatal(err)
	}

	cycles, ok := s.Run(*maxCyc)
	if !ok {
		fmt.Fprintf(os.Stderr, "warning: cycle budget exhausted before all cores halted\n")
	}
	printSummary(s, cycles)
}

func parseProtection(s string) (soc.Protection, error) {
	switch s {
	case "unprotected":
		return soc.Unprotected, nil
	case "distributed":
		return soc.Distributed, nil
	case "centralized":
		return soc.Centralized, nil
	default:
		return 0, fmt.Errorf("unknown protection %q", s)
	}
}

// runSweep executes the scenario grid through internal/sweep and writes the
// JSON report.
func runSweep(prots, wls, tgts, coreList string, accesses, compute int, maxCyc uint64, workers int, out string) error {
	var protections []soc.Protection
	for _, s := range splitList(prots) {
		p, err := parseProtection(s)
		if err != nil {
			return err
		}
		protections = append(protections, p)
	}
	var cores []int
	for _, s := range splitList(coreList) {
		n, err := strconv.Atoi(s)
		if err != nil {
			return fmt.Errorf("bad core count %q: %v", s, err)
		}
		cores = append(cores, n)
	}
	grid := sweep.Grid(protections, splitList(wls), splitList(tgts), cores, accesses, compute, maxCyc)
	if len(grid) == 0 {
		return fmt.Errorf("empty sweep grid")
	}
	fmt.Fprintf(os.Stderr, "sweep: running %d configurations\n", len(grid))
	rep := sweep.Run(grid, workers)
	data, err := rep.JSON()
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func printSummary(s *soc.System, cycles uint64) {
	fmt.Printf("protection=%s cycles=%s (%.3f ms simulated at %s)\n",
		s.Cfg.Protection, trace.Comma(cycles), s.Eng.Elapsed()*1e3, s.Eng.Frequency())

	tb := trace.NewTable("cores", "core", "instructions", "CPI", "bus ops", "stall cycles", "bus errors", "halt")
	for _, c := range s.Cores {
		st := c.Stats()
		_, cause := c.Halted()
		tb.AddRow(c.Name(), trace.Comma(st.Instructions), fmt.Sprintf("%.2f", st.CPI()),
			trace.Comma(st.BusOps), trace.Comma(st.StallCycles), trace.Comma(st.BusErrors),
			cause.String())
	}
	fmt.Print(tb.String())

	bst := s.Bus.Stats()
	fmt.Printf("bus: %s transactions, utilization %.1f%%, wait %s cycles, %s bits moved\n",
		trace.Comma(bst.Completed), bst.Utilization(s.Eng.Now())*100,
		trace.Comma(bst.WaitCycles), trace.Comma(bst.BitsMoved))

	if s.LCF != nil {
		cs := s.LCF.Crypto()
		fmt.Printf("lcf: %d enc / %d dec blocks, %d leaf verifies (%d failures), CC %s cycles, IC %s cycles\n",
			cs.BlocksEnciphered, cs.BlocksDeciphered, cs.LeafVerifies, cs.IntegrityFailures,
			trace.Comma(cs.CCCycles), trace.Comma(cs.ICCycles))
	}
	if s.SEM != nil {
		st := s.SEM.Stats()
		fmt.Printf("sem: %d checks, %d denied, max queue %d, stall %s cycles\n",
			st.Checks, st.Denied, st.MaxQueue, trace.Comma(st.StallCycles))
	}
	if s.Alerts.Len() > 0 {
		fmt.Printf("alerts (%d):\n", s.Alerts.Len())
		for _, a := range s.Alerts.All() {
			fmt.Printf("  %s\n", a)
		}
	} else {
		fmt.Println("alerts: none")
	}
}

// dumpPolicies prints every firewall's rule set as JSON.
func dumpPolicies(s *soc.System) {
	emit := func(name string, rules []core.Policy) {
		data, err := core.PoliciesToJSON(rules)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("// %s\n%s\n", name, data)
	}
	switch s.Cfg.Protection {
	case soc.Distributed:
		emit("core master policy (lf-cpu*)", s.CoreFWs[0].Config().Policies())
		emit("external memory policy (lcf-ddr)", s.LCF.Config().Policies())
	case soc.Centralized:
		emit("global SEM policy", s.SEM.Config().Policies())
	default:
		fmt.Println("// unprotected platform: no policies")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpsocsim:", err)
	os.Exit(1)
}
