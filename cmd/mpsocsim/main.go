// Command mpsocsim builds and runs the paper's multiprocessor platform.
//
// Examples:
//
//	mpsocsim -topology                         # print Figure 1
//	mpsocsim -workload matmul                  # compute-bound kernel on cpu0
//	mpsocsim -workload mix -compute 16 -target external -protection distributed
//	mpsocsim -workload producer-consumer -protection centralized
//	mpsocsim -sweep                            # concurrent scenario grid, streamed JSONL
//	mpsocsim -sweep -format csv -sweep-out report.csv
//	mpsocsim -sweep -shard 0/2 -sweep-out shard0.jsonl   # half the grid...
//	mpsocsim -sweep -shard 1/2 -sweep-out shard1.jsonl   # ...the other half
//	mpsocsim -sweep -merge shard0.jsonl,shard1.jsonl     # == the unsharded stream
//	mpsocsim -attack                           # attack campaign under benign load, JSONL
//	mpsocsim -attack -format table             # the paper's detection matrix
//	mpsocsim -attack -format csv -sweep-out campaign.csv # long/tidy rows for external tooling
//	mpsocsim -attack -recovery -format table   # + reaction & recovery table (quarantine/release/recovery)
//	mpsocsim -attack -recovery -trace incidents.json # Chrome trace_event JSON of every incident (Perfetto)
//	mpsocsim -modelcheck                       # prove invariants (a)-(d) over the bounded policy+reactor model
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/attack"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/hostobs"
	"repro/internal/obs"
	"repro/internal/recovery"
	"repro/internal/soc"
	"repro/internal/spec"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// options is the parsed command line, kept as a plain struct so flag
// handling is testable without touching process state.
type options struct {
	protection string
	topology   bool
	workload   string
	compute    int
	accesses   int
	target     string
	cores      int
	maxCycles  uint64
	extraRules int
	policyFile string
	dumpPol    bool

	doSweep    bool
	sweepProts string
	sweepWls   string
	sweepTgts  string
	sweepCores string
	sweepOut   string
	workers    int
	format     string
	shard      string
	merge      string

	doAttack    bool
	attackScens string
	attackBgs   string
	attackCores string
	injectDelay uint64

	doModelcheck bool

	specFile string
	dumpSpec bool
	// spec is the loaded -spec file (nil without one); set records which
	// flags were explicitly passed, for spec overriding.
	spec *spec.Spec
	set  map[string]bool

	recovery      bool
	recThreshold  int
	recWindow     uint64
	recClearDelay uint64
	recStaged     bool
	recStageDelay uint64
	recSample     uint64
	recEpsilon    float64

	traceFile  string
	traceLimit int

	version bool
}

// recoveryParams folds the -recovery* flags into the campaign's phase
// parameters (zero when -recovery is off).
func (o *options) recoveryParams() recovery.Params {
	if !o.recovery {
		return recovery.Params{}
	}
	return recovery.Params{
		QuarantineThreshold: o.recThreshold,
		QuarantineWindow:    o.recWindow,
		ClearDelay:          o.recClearDelay,
		Staged:              o.recStaged,
		StageDelay:          o.recStageDelay,
		SampleWindow:        o.recSample,
		Epsilon:             o.recEpsilon,
	}.Normalize()
}

// parseFlags parses args (without the program name) into options.
func parseFlags(args []string) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("mpsocsim", flag.ContinueOnError)
	fs.StringVar(&o.protection, "protection", "distributed", "unprotected | distributed | centralized")
	fs.BoolVar(&o.topology, "topology", false, "print the platform topology (Figure 1) and exit")
	fs.StringVar(&o.workload, "workload", "matmul", "matmul | memcopy | stream | scrub | mix | producer-consumer")
	fs.IntVar(&o.compute, "compute", 16, "mix: compute iterations per access")
	fs.IntVar(&o.accesses, "accesses", 200, "mix/stream: number of accesses")
	fs.StringVar(&o.target, "target", "internal", "mix/stream target: internal | external | cipher | plain")
	fs.IntVar(&o.cores, "cores", 3, "number of processor cores")
	fs.Uint64Var(&o.maxCycles, "max", 100_000_000, "cycle budget")
	fs.IntVar(&o.extraRules, "extra-rules", 0, "pad every firewall with N extra rules")
	fs.StringVar(&o.policyFile, "core-policy", "", "JSON file replacing the per-core master policy (distributed only)")
	fs.BoolVar(&o.dumpPol, "dump-policies", false, "print the platform's security policies as JSON and exit")

	fs.BoolVar(&o.doSweep, "sweep", false, "run a protection x workload x core-count scenario grid concurrently and stream a report")
	fs.StringVar(&o.sweepProts, "sweep-protections", "unprotected,distributed,centralized", "sweep: protections axis")
	fs.StringVar(&o.sweepWls, "sweep-workloads", "mix,stream", "sweep: workloads axis")
	fs.StringVar(&o.sweepTgts, "sweep-targets", "internal", "sweep: targets axis")
	fs.StringVar(&o.sweepCores, "sweep-cores", "1,2,4", "sweep: core-count axis")
	fs.StringVar(&o.sweepOut, "sweep-out", "", "sweep: report file (stdout when empty)")
	fs.IntVar(&o.workers, "workers", 0, "sweep: worker goroutines (GOMAXPROCS when 0)")
	fs.StringVar(&o.format, "format", "jsonl", "sweep output format: jsonl | csv | json")
	fs.StringVar(&o.shard, "shard", "", "sweep: run only grid slice i/n of the full grid (e.g. 0/2)")
	fs.StringVar(&o.merge, "merge", "", "sweep: merge comma-separated shard JSONL files instead of running")

	fs.BoolVar(&o.doAttack, "attack", false, "run the attack campaign: scenario x protection x cores x background, streamed like -sweep")
	fs.StringVar(&o.attackScens, "attack-scenarios", strings.Join(attack.DefaultNames(), ","),
		"attack: scenario axis")
	fs.StringVar(&o.attackBgs, "attack-backgrounds", campaign.DefaultBackground,
		"attack: benign background kernels on non-attacker cores ("+
			strings.Join(campaign.BackgroundNames(), " | ")+" | none); the secure-*/cipher-* kernels run in external memory, through the LCF")
	fs.StringVar(&o.attackCores, "attack-cores", "3", "attack: core-count axis")
	fs.Uint64Var(&o.injectDelay, "inject-delay", campaign.DefaultInjectDelay,
		"attack: cycles after background start at which the attack fires; must be shorter than the background's runtime (0 selects the default, use 1 to fire at start)")

	fs.BoolVar(&o.doModelcheck, "modelcheck", false,
		"exhaustively model-check the firewall policy + quarantine reactor automaton (internal/modelcheck) and print the proof summary")

	fs.StringVar(&o.specFile, "spec", "",
		"versioned JSON spec file driving the run (the same body mpsocd accepts); explicitly-passed axis flags override spec fields, and the run mode follows the spec's kind unless -sweep/-attack is given")
	fs.BoolVar(&o.dumpSpec, "dump-spec", false,
		"print the run's effective spec as JSON and exit (with -sweep, -attack or -spec)")

	fs.BoolVar(&o.recovery, "recovery", false,
		"attack: run the reaction-and-recovery phase — arm the quarantine reactor (distributed platforms), release on a supervisor schedule, and sample background throughput against the twin")
	fs.IntVar(&o.recThreshold, "recovery-threshold", recovery.DefaultThreshold,
		"recovery: violations tripping quarantine")
	fs.Uint64Var(&o.recWindow, "recovery-alert-window", 0,
		"recovery: reactor sliding alert window in cycles (0 = ever)")
	fs.Uint64Var(&o.recClearDelay, "recovery-clear-delay", recovery.DefaultClearDelay,
		"recovery: cycles from quarantine to the supervisor clearing the incident")
	fs.BoolVar(&o.recStaged, "recovery-staged", false,
		"recovery: staged re-admission — integrity-monitored zones first, full policy after -recovery-stage-delay, one probation violation re-quarantines")
	fs.Uint64Var(&o.recStageDelay, "recovery-stage-delay", recovery.DefaultStageDelay,
		"recovery: probation length before the full restore (with -recovery-staged)")
	fs.Uint64Var(&o.recSample, "recovery-sample", recovery.DefaultSampleWindow,
		"recovery: throughput sampling window in cycles")
	fs.Float64Var(&o.recEpsilon, "recovery-epsilon", recovery.DefaultEpsilon,
		"recovery: recovered when a post-release window is within this fraction of twin throughput")

	fs.StringVar(&o.traceFile, "trace", "",
		"write a Chrome trace_event JSON incident trace (Perfetto/chrome://tracing) to this file; single runs and -attack JSONL campaigns, timestamps in sim cycles")
	fs.IntVar(&o.traceLimit, "trace-limit", obs.DefaultLimit,
		"trace: events retained per run before counting drops")
	fs.BoolVar(&o.version, "version", false, "print build info and exit")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		err := fmt.Errorf("unexpected arguments: %v", fs.Args())
		fmt.Fprintln(fs.Output(), err)
		fs.Usage()
		return nil, err
	}
	o.set = map[string]bool{}
	fs.Visit(func(f *flag.Flag) { o.set[f.Name] = true })
	return o, nil
}

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		// The FlagSet already printed the error (and usage); -h is a
		// clean exit.
		if err == flag.ErrHelp {
			return
		}
		os.Exit(2)
	}
	if o.version {
		fmt.Println("mpsocsim", hostobs.Build().String())
		return
	}
	if o.specFile != "" {
		if err := o.loadSpec(); err != nil {
			fatal(err)
		}
	}
	if o.dumpSpec {
		if err := runDumpSpec(o); err != nil {
			fatal(err)
		}
		return
	}
	if o.traceFile != "" {
		if o.traceLimit < 1 {
			fatal(fmt.Errorf("-trace-limit must be >= 1 with -trace (got %d)", o.traceLimit))
		}
		if o.doSweep {
			fatal(fmt.Errorf("-trace applies to single runs and -attack campaigns, not -sweep"))
		}
		if o.doModelcheck {
			fatal(fmt.Errorf("-trace does not apply to -modelcheck"))
		}
	}
	switch {
	case o.doSweep && o.doAttack:
		fatal(fmt.Errorf("-sweep and -attack are mutually exclusive"))
	case o.doModelcheck && (o.doSweep || o.doAttack):
		fatal(fmt.Errorf("-modelcheck runs alone (mutually exclusive with -sweep/-attack)"))
	case o.doModelcheck:
		if err := runModelcheck(os.Stdout); err != nil {
			fatal(err)
		}
	case o.doAttack:
		if err := withOutput(o, runAttack); err != nil {
			fatal(err)
		}
	case o.doSweep:
		if err := withOutput(o, runSweep); err != nil {
			fatal(err)
		}
	default:
		if err := runSingle(o); err != nil {
			fatal(err)
		}
	}
}

// runSingle is the one-platform, one-workload mode.
func runSingle(o *options) error {
	prot, err := spec.ParseProtection(o.protection)
	if err != nil {
		return err
	}
	var corePolicies []core.Policy
	if o.policyFile != "" {
		data, err := os.ReadFile(o.policyFile)
		if err != nil {
			return err
		}
		if corePolicies, err = core.PoliciesFromJSON(data); err != nil {
			return err
		}
	}
	s, err := soc.New(soc.Config{
		Protection:      prot,
		NumCores:        o.cores,
		ExtraRulesPerLF: o.extraRules,
		CorePolicies:    corePolicies,
	})
	if err != nil {
		return err
	}
	if o.topology {
		fmt.Print(s.Topology())
		return nil
	}
	if o.dumpPol {
		return dumpPolicies(s)
	}

	tgt, span, err := sweep.ParseTarget(o.target)
	if err != nil {
		return err
	}
	if err := sweep.LoadWorkload(s, o.workload, tgt, span, o.compute, o.accesses); err != nil {
		return err
	}

	var tr *obs.Tracer
	if o.traceFile != "" {
		tr = obs.New(o.traceLimit)
		obs.Attach(tr, s)
	}
	cycles, ok := s.Run(o.maxCycles)
	if !ok {
		fmt.Fprintf(os.Stderr, "warning: cycle budget exhausted before all cores halted\n")
	}
	if tr != nil {
		obs.Harvest(tr, s)
		name := fmt.Sprintf("%s/%s", o.workload, s.Cfg.Protection)
		if err := writeTraceFile(o.traceFile, name, tr); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace: %d events (%d dropped) -> %s\n",
			tr.Len(), tr.Dropped(), o.traceFile)
	}
	printSummary(s, cycles)
	return nil
}

// writeTraceFile renders a single-run trace document to path.
func writeTraceFile(path, process string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteTrace(f, process); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// buildGrid constructs the sweep grid through the spec layer — the same
// grid an mpsocd-submitted spec produces (validation errors carry spec
// field paths like "sweep.workloads[1]").
func buildGrid(o *options) ([]sweep.Config, error) {
	sp, err := o.resolveSpec(spec.KindSweep)
	if err != nil {
		return nil, err
	}
	return sp.Sweep.Grid()
}

// withOutput resolves the -sweep-out destination (stdout when empty) and
// runs the given mode into it.
func withOutput(o *options, run func(*options, io.Writer) error) error {
	if o.sweepOut == "" {
		return run(o, os.Stdout)
	}
	f, err := os.Create(o.sweepOut)
	if err != nil {
		return err
	}
	if err := run(o, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runSweep executes the grid (or merges shard files) and streams the report
// to w.
func runSweep(o *options, w io.Writer) error {
	if o.merge != "" {
		if o.format != "jsonl" {
			return fmt.Errorf("-merge only supports JSONL shard streams (got -format %s)", o.format)
		}
		return mergeShards(o.merge, w)
	}
	grid, err := buildGrid(o)
	if err != nil {
		return err
	}
	sh, err := sweep.ParseShard(o.shard)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sweep: shard %s of %d configurations (%s)\n", sh, len(grid), o.format)
	switch o.format {
	case "jsonl":
		return sweep.WriteJSONL(w, grid, sh, o.workers)
	case "csv":
		return sweep.WriteCSV(w, grid, sh, o.workers)
	case "json":
		// Legacy buffered report; sharding applies all the same, and
		// GridSize counts this shard's points (under the cost-aware
		// slicing Each uses) so len(results) == grid_size holds for
		// sharded reports too.
		var rep sweep.Report
		rep.GridSize = len(sh.Slice(len(grid), sweep.Weights(grid)))
		if err := sweep.Each(grid, sh, o.workers, func(r sweep.RunResult) error {
			rep.Results = append(rep.Results, r)
			return nil
		}); err != nil {
			return err
		}
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		_, err = w.Write(append(data, '\n'))
		return err
	default:
		return fmt.Errorf("unknown sweep format %q (want jsonl, csv or json)", o.format)
	}
}

// mergeShards recombines shard JSONL files into the unsharded stream.
func mergeShards(list string, w io.Writer) error {
	paths := splitList(list)
	if len(paths) == 0 {
		return fmt.Errorf("-merge: no shard files given")
	}
	readers := make([]io.Reader, 0, len(paths))
	files := make([]*os.File, 0, len(paths))
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		files = append(files, f)
		readers = append(readers, f)
	}
	return sweep.Merge(w, readers...)
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func printSummary(s *soc.System, cycles uint64) {
	fmt.Printf("protection=%s cycles=%s (%.3f ms simulated at %s)\n",
		s.Cfg.Protection, trace.Comma(cycles), s.Eng.Elapsed()*1e3, s.Eng.Frequency())

	tb := trace.NewTable("cores", "core", "instructions", "CPI", "bus ops", "stall cycles", "bus errors", "halt")
	for _, c := range s.Cores {
		st := c.Stats()
		_, cause := c.Halted()
		tb.AddRow(c.Name(), trace.Comma(st.Instructions), fmt.Sprintf("%.2f", st.CPI()),
			trace.Comma(st.BusOps), trace.Comma(st.StallCycles), trace.Comma(st.BusErrors),
			cause.String())
	}
	fmt.Print(tb.String())

	bst := s.Bus.Stats()
	fmt.Printf("bus: %s transactions, utilization %.1f%%, wait %s cycles, %s bits moved\n",
		trace.Comma(bst.Completed), bst.Utilization(s.Eng.Now())*100,
		trace.Comma(bst.WaitCycles), trace.Comma(bst.BitsMoved))

	if fws := s.FirewallStats(); len(fws) > 0 {
		ft := trace.NewTable("firewalls", "id", "kind", "checked", "allowed", "blocked", "check cycles")
		for _, f := range fws {
			ft.AddRow(f.ID, f.Kind, trace.Comma(f.Checked), trace.Comma(f.Allowed),
				trace.Comma(f.Blocked), trace.Comma(f.CheckCycles))
		}
		fmt.Print(ft.String())
	}

	if s.LCF != nil {
		cs := s.LCF.Crypto()
		fmt.Printf("lcf: %d enc / %d dec blocks, %d leaf verifies (%d failures), CC %s cycles, IC %s cycles\n",
			cs.BlocksEnciphered, cs.BlocksDeciphered, cs.LeafVerifies, cs.IntegrityFailures,
			trace.Comma(cs.CCCycles), trace.Comma(cs.ICCycles))
	}
	if s.SEM != nil {
		st := s.SEM.Stats()
		fmt.Printf("sem: %d checks, %d denied, max queue %d, stall %s cycles\n",
			st.Checks, st.Denied, st.MaxQueue, trace.Comma(st.StallCycles))
	}
	if s.Alerts.Len() > 0 {
		fmt.Printf("alerts (%d):\n", s.Alerts.Len())
		for _, a := range s.Alerts.All() {
			fmt.Printf("  %s\n", a)
		}
	} else {
		fmt.Println("alerts: none")
	}
}

// dumpPolicies prints every firewall's rule set as JSON.
func dumpPolicies(s *soc.System) error {
	emit := func(name string, rules []core.Policy) error {
		data, err := core.PoliciesToJSON(rules)
		if err != nil {
			return err
		}
		fmt.Printf("// %s\n%s\n", name, data)
		return nil
	}
	switch s.Cfg.Protection {
	case soc.Distributed:
		if err := emit("core master policy (lf-cpu*)", s.CoreFWs[0].Config().Policies()); err != nil {
			return err
		}
		return emit("external memory policy (lcf-ddr)", s.LCF.Config().Policies())
	case soc.Centralized:
		return emit("global SEM policy", s.SEM.Config().Policies())
	default:
		fmt.Println("// unprotected platform: no policies")
		return nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpsocsim:", err)
	os.Exit(1)
}
