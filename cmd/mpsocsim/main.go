// Command mpsocsim builds and runs the paper's multiprocessor platform.
//
// Examples:
//
//	mpsocsim -topology                         # print Figure 1
//	mpsocsim -workload matmul                  # compute-bound kernel on cpu0
//	mpsocsim -workload mix -compute 16 -target external -protection distributed
//	mpsocsim -workload producer-consumer -protection centralized
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/soc"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		protFlag = flag.String("protection", "distributed", "unprotected | distributed | centralized")
		topology = flag.Bool("topology", false, "print the platform topology (Figure 1) and exit")
		wl       = flag.String("workload", "matmul", "matmul | memcopy | stream | mix | producer-consumer")
		compute  = flag.Int("compute", 16, "mix: compute iterations per access")
		accesses = flag.Int("accesses", 200, "mix/stream: number of accesses")
		target   = flag.String("target", "internal", "mix/stream target: internal | external | cipher | plain")
		cores    = flag.Int("cores", 3, "number of processor cores")
		maxCyc   = flag.Uint64("max", 100_000_000, "cycle budget")
		rules    = flag.Int("extra-rules", 0, "pad every firewall with N extra rules")
		policy   = flag.String("core-policy", "", "JSON file replacing the per-core master policy (distributed only)")
		dumpPol  = flag.Bool("dump-policies", false, "print the platform's security policies as JSON and exit")
	)
	flag.Parse()

	prot, err := parseProtection(*protFlag)
	if err != nil {
		fatal(err)
	}
	var corePolicies []core.Policy
	if *policy != "" {
		data, err := os.ReadFile(*policy)
		if err != nil {
			fatal(err)
		}
		if corePolicies, err = core.PoliciesFromJSON(data); err != nil {
			fatal(err)
		}
	}
	s, err := soc.New(soc.Config{
		Protection:      prot,
		NumCores:        *cores,
		ExtraRulesPerLF: *rules,
		CorePolicies:    corePolicies,
	})
	if err != nil {
		fatal(err)
	}
	if *topology {
		fmt.Print(s.Topology())
		return
	}
	if *dumpPol {
		dumpPolicies(s)
		return
	}

	tgt, span, err := parseTarget(*target)
	if err != nil {
		fatal(err)
	}
	if err := loadWorkload(s, *wl, tgt, span, *compute, *accesses); err != nil {
		fatal(err)
	}

	cycles, ok := s.Run(*maxCyc)
	if !ok {
		fmt.Fprintf(os.Stderr, "warning: cycle budget exhausted before all cores halted\n")
	}
	printSummary(s, cycles)
}

func parseProtection(s string) (soc.Protection, error) {
	switch s {
	case "unprotected":
		return soc.Unprotected, nil
	case "distributed":
		return soc.Distributed, nil
	case "centralized":
		return soc.Centralized, nil
	default:
		return 0, fmt.Errorf("unknown protection %q", s)
	}
}

func parseTarget(s string) (uint32, uint32, error) {
	switch s {
	case "internal":
		return soc.BRAMBase, 0x1000, nil
	case "external":
		return soc.SecureBase, 0x1000, nil
	case "cipher":
		return soc.CipherBase, 0x1000, nil
	case "plain":
		return soc.PlainBase, 0x1000, nil
	default:
		return 0, 0, fmt.Errorf("unknown target %q", s)
	}
}

func loadWorkload(s *soc.System, name string, tgt, span uint32, compute, accesses int) error {
	switch name {
	case "matmul":
		s.HaltIdleCores(0)
		s.MustLoad(0, workload.MatMulLocal(12, soc.BRAMBase+0x40))
	case "memcopy":
		s.HaltIdleCores(0)
		s.MustLoad(0, workload.MemCopy(tgt, tgt+span/2, accesses))
	case "stream":
		s.HaltIdleCores(0)
		s.MustLoad(0, workload.Stream(tgt, accesses, 4, 0))
	case "mix":
		for i := range s.Cores {
			s.MustLoad(i, workload.Mix(tgt+uint32(i)*span, span, 4, accesses, compute))
		}
	case "producer-consumer":
		s.HaltIdleCores(0, 1)
		s.MustLoad(0, workload.Producer(soc.MboxBase, accesses))
		s.MustLoad(1, workload.Consumer(soc.MboxBase, accesses, soc.BRAMBase+0x80))
	default:
		return fmt.Errorf("unknown workload %q", name)
	}
	return nil
}

func printSummary(s *soc.System, cycles uint64) {
	fmt.Printf("protection=%s cycles=%s (%.3f ms simulated at %s)\n",
		s.Cfg.Protection, trace.Comma(cycles), s.Eng.Elapsed()*1e3, s.Eng.Frequency())

	tb := trace.NewTable("cores", "core", "instructions", "CPI", "bus ops", "stall cycles", "bus errors", "halt")
	for _, c := range s.Cores {
		st := c.Stats()
		_, cause := c.Halted()
		tb.AddRow(c.Name(), trace.Comma(st.Instructions), fmt.Sprintf("%.2f", st.CPI()),
			trace.Comma(st.BusOps), trace.Comma(st.StallCycles), trace.Comma(st.BusErrors),
			cause.String())
	}
	fmt.Print(tb.String())

	bst := s.Bus.Stats()
	fmt.Printf("bus: %s transactions, utilization %.1f%%, wait %s cycles, %s bits moved\n",
		trace.Comma(bst.Completed), bst.Utilization(s.Eng.Now())*100,
		trace.Comma(bst.WaitCycles), trace.Comma(bst.BitsMoved))

	if s.LCF != nil {
		cs := s.LCF.Crypto()
		fmt.Printf("lcf: %d enc / %d dec blocks, %d leaf verifies (%d failures), CC %s cycles, IC %s cycles\n",
			cs.BlocksEnciphered, cs.BlocksDeciphered, cs.LeafVerifies, cs.IntegrityFailures,
			trace.Comma(cs.CCCycles), trace.Comma(cs.ICCycles))
	}
	if s.SEM != nil {
		st := s.SEM.Stats()
		fmt.Printf("sem: %d checks, %d denied, max queue %d, stall %s cycles\n",
			st.Checks, st.Denied, st.MaxQueue, trace.Comma(st.StallCycles))
	}
	if s.Alerts.Len() > 0 {
		fmt.Printf("alerts (%d):\n", s.Alerts.Len())
		for _, a := range s.Alerts.All() {
			fmt.Printf("  %s\n", a)
		}
	} else {
		fmt.Println("alerts: none")
	}
}

// dumpPolicies prints every firewall's rule set as JSON.
func dumpPolicies(s *soc.System) {
	emit := func(name string, rules []core.Policy) {
		data, err := core.PoliciesToJSON(rules)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("// %s\n%s\n", name, data)
	}
	switch s.Cfg.Protection {
	case soc.Distributed:
		emit("core master policy (lf-cpu*)", s.CoreFWs[0].Config().Policies())
		emit("external memory policy (lcf-ddr)", s.LCF.Config().Policies())
	case soc.Centralized:
		emit("global SEM policy", s.SEM.Config().Policies())
	default:
		fmt.Println("// unprotected platform: no policies")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpsocsim:", err)
	os.Exit(1)
}
