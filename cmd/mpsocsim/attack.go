package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/spec"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// buildCampaignGrid constructs the attack-campaign grid through the spec
// layer — the same grid an mpsocd-submitted spec produces (validation
// errors carry spec field paths like "campaign.scenarios[2]").
func buildCampaignGrid(o *options) ([]campaign.Config, error) {
	sp, err := o.resolveSpec(spec.KindCampaign)
	if err != nil {
		return nil, err
	}
	return sp.Campaign.Grid()
}

// runAttack executes the campaign grid (or merges shard files) and streams
// the report to w.
func runAttack(o *options, w io.Writer) error {
	if o.merge != "" {
		if o.traceFile != "" {
			return fmt.Errorf("-trace requires running the campaign (mutually exclusive with -merge)")
		}
		if o.format != "jsonl" {
			return fmt.Errorf("-merge only supports JSONL shard streams (got -format %s)", o.format)
		}
		return mergeShards(o.merge, w)
	}
	grid, err := buildCampaignGrid(o)
	if err != nil {
		return err
	}
	sh, err := sweep.ParseShard(o.shard)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "attack: shard %s of %d campaign runs (%s)\n", sh, len(grid), o.format)
	if o.traceFile != "" {
		if o.format != "jsonl" {
			return fmt.Errorf("-trace requires -format jsonl in attack mode (got %s)", o.format)
		}
		return runAttackTraced(o, w, grid, sh)
	}
	switch o.format {
	case "jsonl":
		return campaign.WriteJSONL(w, grid, sh, o.workers)
	case "csv":
		return campaign.WriteCSV(w, grid, sh, o.workers)
	case "table":
		return writeAttackTables(w, grid, sh, o.workers)
	default:
		return fmt.Errorf("unknown attack format %q (want jsonl, csv or table)", o.format)
	}
}

// runAttackTraced streams the campaign's JSONL to w while appending every
// run's incident trace to -trace as one Chrome process (pid = global grid
// index + 1, name = the grid point). Records and traces ride the same
// index-ordered pipeline, so both files are byte-identical across worker
// counts.
func runAttackTraced(o *options, w io.Writer, grid []campaign.Config, sh sweep.Shard) error {
	f, err := os.Create(o.traceFile)
	if err != nil {
		return err
	}
	tw := obs.NewTraceWriter(f)
	write := sweep.EmitJSONL[campaign.Record](w)
	err = campaign.EachTrace(context.Background(), grid, sh, o.workers, o.traceLimit,
		func(r campaign.Record, tr *obs.Tracer) error {
			if err := write(r); err != nil {
				return err
			}
			return tw.Process(r.Index+1, r.Name, tr)
		})
	if err == nil {
		err = tw.Close()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeAttackTables renders the paper's detection matrix: one row per
// (scenario, background, cores) grid line, one column per protection,
// each cell summarizing detection, attribution and containment — plus a
// bystander-cost table from the twin-run measurements and, when the
// reaction-and-recovery phase ran, the incident-lifecycle table (react
// latency, quarantine duration, recovery time back to twin throughput).
func writeAttackTables(w io.Writer, grid []campaign.Config, sh sweep.Shard, workers int) error {
	// The matrix needs the whole (sharded) grid in hand; campaign grids
	// are small (scenarios x protections x a few axes), so buffering here
	// is fine — large runs should use jsonl/csv.
	var recs []campaign.Record
	if err := campaign.Each(grid, sh, workers, func(r campaign.Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		return err
	}

	// Preserve first-seen axis order from the deterministic grid.
	type line struct {
		scenario, background string
		cores                int
	}
	var lines []line
	var prots []string
	seenLine := map[line]bool{}
	seenProt := map[string]bool{}
	cell := map[line]map[string]campaign.Record{}
	for _, r := range recs {
		l := line{r.Scenario, r.Background, r.NumCores}
		if !seenLine[l] {
			seenLine[l] = true
			lines = append(lines, l)
			cell[l] = map[string]campaign.Record{}
		}
		if !seenProt[r.Protection] {
			seenProt[r.Protection] = true
			prots = append(prots, r.Protection)
		}
		cell[l][r.Protection] = r
	}

	withRecovery := len(grid) > 0 && grid[0].Recovery.Enabled()
	cols := append([]string{"scenario", "background", "cores"}, prots...)
	dt := trace.NewTable("containment matrix — detection / attribution", cols...)
	st := trace.NewTable("bystander cost — background slowdown vs attack-free twin", cols...)
	rt := trace.NewTable("reaction & recovery — quarantine / release / back to twin throughput", cols...)
	for _, l := range lines {
		drow := []string{l.scenario, l.background, strconv.Itoa(l.cores)}
		srow := append([]string(nil), drow...)
		rrow := append([]string(nil), drow...)
		for _, p := range prots {
			r, ok := cell[l][p]
			if !ok {
				drow, srow, rrow = append(drow, "-"), append(srow, "-"), append(rrow, "-")
				continue
			}
			drow = append(drow, verdictCell(r))
			if r.TwinCycles == 0 {
				srow = append(srow, "-")
			} else {
				srow = append(srow, fmt.Sprintf("%.2fx", r.Slowdown))
			}
			rrow = append(rrow, recoveryCell(r))
		}
		dt.AddRow(drow...)
		st.AddRow(srow...)
		rt.AddRow(rrow...)
	}
	for i, tb := range []*trace.Table{dt, st, rt} {
		if i == 2 && !withRecovery {
			break
		}
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, tb.String()); err != nil {
			return err
		}
	}
	return nil
}

// recoveryCell compresses one record's incident lifecycle into a cell of
// the reaction table.
func recoveryCell(r campaign.Record) string {
	switch {
	case r.Err != "":
		return "error: " + r.Err
	case !r.RecoveryOn:
		return "-"
	case r.QuarantineCycle == 0:
		return "no quarantine"
	case r.ReleaseCycle == 0:
		return fmt.Sprintf("react +%dcy, still quarantined", r.ReactLatency)
	case r.Recovered:
		return fmt.Sprintf("react +%dcy, quar %dcy, recovered +%dcy",
			r.ReactLatency, r.QuarantinedCycles, r.RecoveryCycles)
	default:
		return fmt.Sprintf("react +%dcy, quar %dcy, NOT recovered",
			r.ReactLatency, r.QuarantinedCycles)
	}
}

// verdictCell compresses one record into a matrix cell.
func verdictCell(r campaign.Record) string {
	switch {
	case r.Err != "":
		return "error: " + r.Err
	case r.Detected && r.Contained:
		return fmt.Sprintf("caught by %s +%dcy", r.DetectedBy, r.DetectLatency)
	case r.Detected:
		return fmt.Sprintf("alert only (%s) — goal met", r.DetectedBy)
	case r.Contained:
		return "contained (no alert)"
	default:
		return "ATTACK SUCCEEDED"
	}
}
