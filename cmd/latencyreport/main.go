// Command latencyreport regenerates the paper's Table II (firewall module
// latencies) and prints the measured end-to-end cost of bus accesses to
// every external-memory zone, which is how the module latencies compose in
// practice.
package main

import (
	"flag"
	"fmt"

	"repro/internal/aes"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/hashtree"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/soc"
	"repro/internal/trace"
)

func main() {
	endToEnd := flag.Bool("end-to-end", true, "also print measured per-zone access costs")
	flag.Parse()

	fmt.Print(table2())
	if *endToEnd {
		fmt.Println()
		fmt.Print(zoneCosts())
	}
}

// table2 renders Table II with the SB latency measured on a live firewall.
func table2() string {
	freq := sim.DefaultFrequency
	eng := sim.NewEngine(freq)
	b := bus.New(eng, bus.Config{})
	b.AddSlave(mem.NewBRAM("bram", 0x1000_0000, 0x1000))
	lf := core.NewLocalFirewall(eng, "lf", b.NewMaster("m"),
		core.MustConfig(core.Policy{SPI: 1, Zone: core.Zone{Base: 0x1000_0000, Size: 0x1000},
			RWA: core.ReadOnly, ADF: core.AnyWidth}), core.NewAlertLog())
	tx := &bus.Transaction{Op: bus.Write, Addr: 0x1000_0000, Size: 4, Burst: 1, Data: []uint32{1}}
	done := false
	lf.Submit(tx, func(*bus.Transaction) { done = true })
	eng.RunUntil(func() bool { return done }, 1000)
	sb := tx.Completed - tx.Issued

	cc, ic := aes.DefaultTiming, hashtree.DefaultTiming
	tb := trace.NewTable("Table II — latency results of the firewalls",
		"module", "nb. of clk cycles", "throughput (Mb/s)")
	tb.AddRow("SB (LF/LCF)", fmt.Sprintf("%d", sb), "-")
	tb.AddRow("CC", fmt.Sprintf("%d", cc.Latency), fmt.Sprintf("%.0f", cc.ThroughputMbps(uint64(freq))))
	tb.AddRow("IC", fmt.Sprintf("%d", ic.Latency), fmt.Sprintf("%.0f", ic.ThroughputMbps(uint64(freq))))
	return tb.String()
}

// zoneCosts measures a single word read and write to each DDR zone and to
// the internal BRAM on the protected platform.
func zoneCosts() string {
	tb := trace.NewTable("measured end-to-end access cost (distributed platform, probe master)",
		"target", "read (cycles)", "write (cycles)")
	s := soc.MustNew(soc.Config{Protection: soc.Distributed})
	s.HaltIdleCores()
	m := s.Bus.NewMaster("probe")
	measure := func(op bus.Op, addr uint32) uint64 {
		tx := &bus.Transaction{Op: op, Addr: addr, Size: 4, Burst: 1, Data: []uint32{0xDA7A}}
		done := false
		m.Submit(tx, func(*bus.Transaction) { done = true })
		s.Eng.RunUntil(func() bool { return done }, 1_000_000)
		return tx.Completed - tx.Issued
	}
	for _, z := range []struct {
		name string
		addr uint32
	}{
		{"bram (internal)", soc.BRAMBase},
		{"ddr plain", soc.PlainBase},
		{"ddr cipher (CM)", soc.CipherBase},
		{"ddr secure (CM+IM)", soc.SecureBase},
	} {
		rd := measure(bus.Read, z.addr)
		wr := measure(bus.Write, z.addr)
		tb.AddRow(z.name, fmt.Sprintf("%d", rd), fmt.Sprintf("%d", wr))
	}
	return tb.String()
}
