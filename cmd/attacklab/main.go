// Command attacklab runs the paper's §III threat model against the
// platform at each protection level and reports detection, containment
// and reaction latency — including the DoS-flood containment experiment.
package main

import (
	"flag"
	"fmt"

	"repro/internal/attack"
	"repro/internal/soc"
	"repro/internal/trace"
)

func main() {
	var (
		protFlag = flag.String("protection", "", "run a single level: unprotected | distributed | centralized (default: all)")
		dos      = flag.Bool("dos", true, "include the DoS-flood containment experiment")
	)
	flag.Parse()

	levels := []soc.Protection{soc.Unprotected, soc.Centralized, soc.Distributed}
	switch *protFlag {
	case "":
	case "unprotected":
		levels = []soc.Protection{soc.Unprotected}
	case "distributed":
		levels = []soc.Protection{soc.Distributed}
	case "centralized":
		levels = []soc.Protection{soc.Centralized}
	default:
		fmt.Printf("attacklab: unknown protection %q\n", *protFlag)
		return
	}

	for _, p := range levels {
		// DoS rides the same table as every other scenario now that the
		// Outcome schema is unified; its victim-throughput numbers land in
		// the notes column.
		outs := attack.All(p)
		if *dos {
			outs = append(outs, attack.DoS(p))
		}
		tb := trace.NewTable(fmt.Sprintf("threat campaign — %s", p),
			"scenario", "violation", "caught by", "detected", "contained", "latency (cycles)", "notes")
		for _, o := range outs {
			viol, by := "-", "-"
			if o.Detected {
				viol, by = o.Violation.String(), o.DetectedBy
			}
			tb.AddRow(o.Scenario, viol, by,
				fmt.Sprintf("%v", o.Detected), fmt.Sprintf("%v", o.Contained),
				fmt.Sprintf("%d", o.DetectLatency), o.Notes)
		}
		fmt.Print(tb.String())
		fmt.Println()
	}
}
