// Command attacklab runs the paper's §III threat model against the
// platform at each protection level and reports detection, containment
// and reaction latency — including the DoS-flood containment experiment.
package main

import (
	"flag"
	"fmt"

	"repro/internal/attack"
	"repro/internal/soc"
	"repro/internal/trace"
)

func main() {
	var (
		protFlag = flag.String("protection", "", "run a single level: unprotected | distributed | centralized (default: all)")
		dos      = flag.Bool("dos", true, "include the DoS-flood containment experiment")
	)
	flag.Parse()

	levels := []soc.Protection{soc.Unprotected, soc.Centralized, soc.Distributed}
	switch *protFlag {
	case "":
	case "unprotected":
		levels = []soc.Protection{soc.Unprotected}
	case "distributed":
		levels = []soc.Protection{soc.Distributed}
	case "centralized":
		levels = []soc.Protection{soc.Centralized}
	default:
		fmt.Printf("attacklab: unknown protection %q\n", *protFlag)
		return
	}

	for _, p := range levels {
		tb := trace.NewTable(fmt.Sprintf("threat campaign — %s", p),
			"scenario", "violation", "detected", "contained", "latency (cycles)", "notes")
		for _, o := range attack.All(p) {
			viol := "-"
			if o.Detected {
				viol = o.Violation.String()
			}
			tb.AddRow(o.Scenario, viol,
				fmt.Sprintf("%v", o.Detected), fmt.Sprintf("%v", o.Contained),
				fmt.Sprintf("%d", o.DetectLatency), o.Notes)
		}
		fmt.Print(tb.String())
		fmt.Println()
	}

	if *dos {
		tb := trace.NewTable("DoS flood containment (hijacked core 2 vs victim core 0)",
			"protection", "victim slowdown", "flood bus share", "detected", "contained")
		for _, p := range levels {
			d := attack.DoS(p)
			tb.AddRow(p.String(),
				fmt.Sprintf("%.2fx", d.Slowdown()),
				fmt.Sprintf("%.0f%%", d.FloodBusShare*100),
				fmt.Sprintf("%v", d.Detected), fmt.Sprintf("%v", d.Contained))
		}
		fmt.Print(tb.String())
	}
}
