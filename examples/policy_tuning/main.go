// Policy tuning: the cost side of the paper's trade-off. Security
// policies are data, not gateware — this demo reconfigures a firewall at
// run time (the paper's "reconfiguration of security services"
// perspective), then quantifies how policy aggressiveness (rule count)
// buys area, and how the traffic mix drives the latency overhead.
//
//	go run ./examples/policy_tuning
package main

import (
	"fmt"
	"log"

	"repro/internal/area"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/soc"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	reconfigureLive()
	ruleAreaSweep()
	trafficMixSweep()
}

// reconfigureLive revokes and restores a core's write access to a BRAM
// window while the platform is running.
func reconfigureLive() {
	fmt.Println("-- live policy reconfiguration --")
	s, err := soc.New(soc.Config{Protection: soc.Distributed})
	if err != nil {
		log.Fatal(err)
	}
	s.HaltIdleCores()
	// The probe issues traffic under cpu0's identity: the BRAM firewall's
	// origin rules only admit the platform's own IPs (on the FPGA the
	// master ID is wired, not claimed).
	m := s.Bus.NewMaster("probe")
	probe := func() bus.Resp {
		tx := &bus.Transaction{Master: soc.CoreName(0), Op: bus.Write, Addr: soc.BRAMBase + 0xF000, Size: 4, Burst: 1, Data: []uint32{1}}
		done := false
		m.Submit(tx, func(*bus.Transaction) { done = true })
		s.Eng.RunUntil(func() bool { return done }, 100000)
		return tx.Resp
	}

	fmt.Printf("write to bram window: %v\n", probe())

	// Carve a read-only window out of the BRAM policy on the slave-side
	// firewall. Most-specific-zone matching makes it take precedence.
	cfg := s.BRAMFW.Config()
	if err := cfg.Add(core.Policy{SPI: 999, Zone: core.Zone{Base: soc.BRAMBase + 0xF000, Size: 0x1000},
		RWA: core.ReadOnly, ADF: core.AnyWidth}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after adding RO rule:  %v\n", probe())

	cfg.Remove(999)
	fmt.Printf("after removing it:     %v\n\n", probe())
}

// ruleAreaSweep prints the E2 area curve.
func ruleAreaSweep() {
	fmt.Println("-- firewall area vs policy aggressiveness (rules monitored) --")
	tb := trace.NewTable("", "rules", "LF slice LUTs", "5-LF platform LUTs")
	for _, rules := range []int{1, 4, 6, 16, 64} {
		lf := area.LocalFirewall(rules)
		platform := area.BaseSystem(3).Total().
			Add(lf.Scale(5)).
			Add(area.InterfaceAdapter().Scale(5)).
			Add(area.LCF(area.CalibSBRules, area.CalibICBits)).
			Add(area.SecurityController())
		tb.AddRow(fmt.Sprintf("%d", rules), trace.Comma(lf.LUTs), trace.Comma(platform.LUTs))
	}
	fmt.Print(tb.String())
	fmt.Println()
}

// trafficMixSweep shows the paper's latency guidance: promote internal
// communication and computation to absorb the protection overhead.
func trafficMixSweep() {
	fmt.Println("-- protection overhead vs traffic profile (100 accesses) --")
	run := func(p soc.Protection, target uint32, iters int) uint64 {
		s := soc.MustNew(soc.Config{Protection: p})
		s.HaltIdleCores(0)
		s.MustLoad(0, workload.Mix(target, 0x1000, 4, 100, iters))
		c, ok := s.Run(100_000_000)
		if !ok {
			log.Fatal("workload stuck")
		}
		return c
	}
	tb := trace.NewTable("", "traffic", "compute:comm", "unprotected", "protected", "overhead")
	for _, row := range []struct {
		name  string
		base  uint32
		iters int
	}{
		{"internal (bram)", soc.BRAMBase, 0},
		{"internal (bram)", soc.BRAMBase, 64},
		{"external (secure)", soc.SecureBase, 0},
		{"external (secure)", soc.SecureBase, 64},
	} {
		plain := run(soc.Unprotected, row.base, row.iters)
		prot := run(soc.Distributed, row.base, row.iters)
		tb.AddRow(row.name, fmt.Sprintf("%d:1", row.iters),
			trace.Comma(plain), trace.Comma(prot),
			trace.Pct(float64(prot), float64(plain)))
	}
	fmt.Print(tb.String())
}
