// Security manager: the paper's future-work features working together.
//
// cpu0 runs a software security manager polling the AlertPort; cpu1 is
// hijacked and misbehaves. The hardware Reactor quarantines cpu1 after
// three violations (reconfiguration of security services), the manager
// observes the incident through the memory-mapped alert queue, and a
// thread-restricted window demonstrates per-thread security levels.
//
//	go run ./examples/security_manager
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/soc"
)

func main() {
	system, err := soc.New(soc.Config{
		Protection:          soc.Distributed,
		QuarantineThreshold: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	system.HaltIdleCores(0, 1)

	// Thread-specific policy: a BRAM window only thread 7 may touch.
	if err := system.CoreFWs[1].Config().Add(core.Policy{
		SPI:     800,
		Zone:    core.Zone{Base: soc.BRAMBase + 0xE000, Size: 0x100},
		RWA:     core.ReadWrite,
		ADF:     core.AnyWidth,
		Threads: []uint32{7},
	}); err != nil {
		log.Fatal(err)
	}

	// cpu1: touches the thread window under the wrong context (1 alert),
	// escapes its zones twice (2 more alerts -> quarantine), then tries
	// to exfiltrate through a normally-legal BRAM write.
	system.MustLoad(1, fmt.Sprintf(`
		li r1, %#x            ; thread-restricted window
		sw r0, 0(r1)          ; wrong thread -> violation 1
		li r1, 0x70000000
		sw r0, 0(r1)          ; violation 2
		sw r0, 4(r1)          ; violation 3 -> quarantined
		li r2, %#x
		li r3, 0x5EC4E7
		sw r3, 0(r2)          ; exfiltration attempt
		csrr r10, 4           ; observed error count
		halt
	`, soc.BRAMBase+0xE000, soc.BRAMBase))

	// cpu0: drain three alerts from the port, recording each kind.
	system.MustLoad(0, fmt.Sprintf(`
		li r1, %#x            ; alert port
		li r6, %#x            ; result area
		li r7, 3              ; alerts to collect
	poll:
		lw r2, 0(r1)          ; count
		beqz r2, poll
		lw r3, 4(r1)          ; kind
		sw r3, 0(r6)
		addi r6, r6, 4
		li r5, 1
		sw r5, 16(r1)         ; pop
		addi r7, r7, -1
		bnez r7, poll
		halt
	`, soc.AlertBase, soc.BRAMBase+0x400))

	if _, ok := system.Run(10_000_000); !ok {
		log.Fatal("platform did not finish")
	}

	fmt.Println("manager observed violations:")
	for i := uint32(0); i < 3; i++ {
		kind := core.Violation(system.BRAM.Store().ReadWord(soc.BRAMBase + 0x400 + 4*i))
		fmt.Printf("  alert %d: %s\n", i+1, kind)
	}
	fmt.Printf("cpu1 quarantined: %v (after %d violations)\n",
		system.Reactor.Quarantined(soc.CoreName(1)), system.Reactor.Quarantines*3)
	fmt.Printf("exfiltration result: bram[0] = %#x (0 = contained)\n",
		system.BRAM.Store().ReadWord(soc.BRAMBase))
	fmt.Printf("cpu1 saw %d discarded transfers\n", system.Cores[1].Stats().BusErrors)

	// Supervisor clears the incident.
	if err := system.Reactor.Release(soc.CoreName(1)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after release: quarantined = %v\n", system.Reactor.Quarantined(soc.CoreName(1)))
}
