// Secure off-chip storage: what the Local Ciphering Firewall does for
// data that must live in untrusted external memory.
//
// The demo stores a "credit balance" in the secure (CM+IM) zone, shows
// that external memory holds only ciphertext, then plays the attacker:
// tampering with the ciphertext and replaying a stale memory image. Both
// are detected by the Integrity Core and the read is discarded.
//
//	go run ./examples/secure_offchip
package main

import (
	"fmt"
	"log"

	"repro/internal/bus"
	"repro/internal/soc"
)

func main() {
	system, err := soc.New(soc.Config{Protection: soc.Distributed})
	if err != nil {
		log.Fatal(err)
	}
	system.HaltIdleCores()
	host := system.Bus.NewMaster("host")

	const balanceAddr = soc.SecureBase + 0x100

	// Store the balance through the LCF: it is encrypted (AES-128, bound
	// to its address) and covered by the hash tree + version tags.
	write(system, host, balanceAddr, 1000)
	fmt.Printf("stored balance 1000 at %#x (secure zone: CM+IM)\n", balanceAddr)

	raw := system.DDR.Store().ReadWord(balanceAddr)
	fmt.Printf("external memory actually holds: %#x (ciphertext)\n", raw)

	if v, resp := read(system, host, balanceAddr); resp.OK() {
		fmt.Printf("legitimate read-back: %d\n\n", v)
	}

	// --- Attack 1: tamper with the ciphertext in external memory. ---
	b := system.DDR.Store().Peek(balanceAddr, 1)
	system.DDR.Store().Poke(balanceAddr, []byte{b[0] ^ 0x01})
	v, resp := read(system, host, balanceAddr)
	fmt.Printf("after 1-bit external tamper: resp=%v data=%d\n", resp, v)
	report(system, "tamper")

	// Repair: a corrupted block refuses partial writes (they would
	// read-modify-write poisoned data), so recovery rewrites the whole
	// 32-byte integrity block through the LCF, which rebuilds ciphertext
	// and tree path from scratch.
	repair := &bus.Transaction{Op: bus.Write, Addr: balanceAddr, Size: 4, Burst: 8,
		Data: []uint32{900, 0, 0, 0, 0, 0, 0, 0}}
	done := false
	host.Submit(repair, func(*bus.Transaction) { done = true })
	system.Eng.RunUntil(func() bool { return done }, 1_000_000)
	if !repair.Resp.OK() {
		log.Fatalf("full-block repair failed: %v", repair.Resp)
	}
	fmt.Printf("repaired by full-block rewrite: balance = 900\n\n")

	// --- Attack 2: replay a stale memory image. ---
	snapshot := system.DDR.Store().Snapshot() // balance = 900
	write(system, host, balanceAddr, 100)     // spend 800
	system.DDR.Store().Restore(snapshot)      // attacker restores 900
	v, resp = read(system, host, balanceAddr)
	fmt.Printf("after full-image replay:     resp=%v data=%d\n", resp, v)
	report(system, "replay")

	cs := system.LCF.Crypto()
	fmt.Printf("\nLCF totals: %d blocks enciphered, %d deciphered, %d integrity failures\n",
		cs.BlocksEnciphered, cs.BlocksDeciphered, cs.IntegrityFailures)
}

func write(s *soc.System, m *bus.MasterPort, addr, v uint32) {
	tx := &bus.Transaction{Op: bus.Write, Addr: addr, Size: 4, Burst: 1, Data: []uint32{v}}
	done := false
	m.Submit(tx, func(*bus.Transaction) { done = true })
	s.Eng.RunUntil(func() bool { return done }, 1_000_000)
	if !tx.Resp.OK() {
		log.Fatalf("write to %#x failed: %v", addr, tx.Resp)
	}
}

func read(s *soc.System, m *bus.MasterPort, addr uint32) (uint32, bus.Resp) {
	tx := &bus.Transaction{Op: bus.Read, Addr: addr, Size: 4, Burst: 1}
	done := false
	m.Submit(tx, func(*bus.Transaction) { done = true })
	s.Eng.RunUntil(func() bool { return done }, 1_000_000)
	return tx.Data[0], tx.Resp
}

func report(s *soc.System, label string) {
	if a := s.Alerts.First(nil); a != nil {
		fmt.Printf("  -> alert: %s\n\n", a)
		s.Alerts.Reset()
	} else {
		fmt.Printf("  -> NO ALERT for %s (unexpected)\n\n", label)
	}
}
