// Quickstart: build the paper's protected 3-core platform, run a
// multi-core workload through the distributed firewalls, and read the
// performance counters.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/soc"
	"repro/internal/workload"
)

func main() {
	// 1. Build the platform of Figure 1 with the paper's protection:
	//    Local Firewalls on every IP, Local Ciphering Firewall on the
	//    external memory.
	system, err := soc.New(soc.Config{Protection: soc.Distributed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(system.Topology())

	// 2. Load one MB32 program per core: cpu0 multiplies matrices in its
	//    local memory, cpu1/cpu2 exchange words through the mailbox.
	system.MustLoad(0, workload.MatMulLocal(8, soc.BRAMBase+0x40))
	system.MustLoad(1, workload.Producer(soc.MboxBase, 32))
	system.MustLoad(2, workload.Consumer(soc.MboxBase, 32, soc.BRAMBase+0x80))

	// 3. Run until every core halts.
	cycles, ok := system.Run(10_000_000)
	if !ok {
		log.Fatal("cycle budget exhausted")
	}
	fmt.Printf("\nfinished in %d cycles (%.2f ms at %s)\n",
		cycles, system.Eng.Elapsed()*1e3, system.Eng.Frequency())

	// 4. Results were published to the shared BRAM over the bus — through
	//    the firewalls, without raising a single alert.
	matmul := system.BRAM.Store().ReadWord(soc.BRAMBase + 0x40)
	mbox := system.BRAM.Store().ReadWord(soc.BRAMBase + 0x80)
	fmt.Printf("matmul checksum: %#x (want %#x)\n", matmul, workload.MatMulChecksum(8))
	fmt.Printf("mailbox sum:     %d (want %d)\n", mbox, workload.ProducerChecksum(32))
	fmt.Printf("alerts:          %d\n", system.Alerts.Len())

	for _, c := range system.Cores {
		st := c.Stats()
		fmt.Printf("%s: %d instructions, CPI %.2f, %d bus ops\n",
			c.Name(), st.Instructions, st.CPI(), st.BusOps)
	}
}
