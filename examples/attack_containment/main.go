// Attack containment: the paper's §III-C requirement that an attack "must
// not reach the communication architecture but be stopped in the interface
// associated with the infected IP".
//
// The demo hijacks core 2 with a store flood (denial of service) while
// core 0 runs a legitimate workload, on the unprotected, centralized and
// distributed platforms, and then runs the full threat-model campaign.
//
//	go run ./examples/attack_containment
package main

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/soc"
	"repro/internal/trace"
)

func main() {
	fmt.Println("DoS flood: hijacked core 2 hammers a forbidden address while core 0 works")
	fmt.Println()
	tb := trace.NewTable("", "protection", "victim slowdown", "flood on bus", "detected", "contained")
	for _, p := range []soc.Protection{soc.Unprotected, soc.Centralized, soc.Distributed} {
		d := attack.DoS(p)
		tb.AddRow(p.String(), fmt.Sprintf("%.2fx", d.Slowdown()),
			fmt.Sprintf("%.0f%%", d.FloodBusShare*100),
			fmt.Sprintf("%v", d.Detected), fmt.Sprintf("%v", d.Contained))
	}
	fmt.Print(tb.String())

	fmt.Println()
	fmt.Println("Full threat model (distributed firewalls):")
	for _, o := range attack.All(soc.Distributed) {
		status := "STOPPED"
		if !o.Detected || !o.Contained {
			status = "MISSED"
		}
		fmt.Printf("  %-14s %-9s violation=%-9s by=%-10s reaction=%d cycles  (%s)\n",
			o.Scenario, status, o.Violation, o.DetectedBy, o.DetectLatency, o.Notes)
	}

	fmt.Println()
	fmt.Println("Same campaign without protection (attacks succeed — threat model is real):")
	for _, o := range attack.All(soc.Unprotected) {
		status := "SUCCEEDED"
		if o.Contained {
			status = "failed"
		}
		fmt.Printf("  %-14s attack %-10s (%s)\n", o.Scenario, status, o.Notes)
	}
}
