package repro_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/aes"
	"repro/internal/area"
	"repro/internal/attack"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/hashtree"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/soc"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Each benchmark regenerates one artifact of the paper's evaluation (or
// one of the quantified prose claims indexed E1–E5 in DESIGN.md §4). The
// rendered tables print once per process; the timed loop repeats the
// underlying simulation so -benchmem reflects its real cost.

var printOnce sync.Map

func printTable(b *testing.B, key, text string) {
	b.Helper()
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n%s\n", text)
	}
}

// BenchmarkTable1AreaSynthesis regenerates Table I: synthesis results of
// the multiprocessor system with and without firewalls, plus the
// per-module breakdown.
func BenchmarkTable1AreaSynthesis(b *testing.B) {
	var with, without area.Resources
	for i := 0; i < b.N; i++ {
		without = area.BaseSystem(3).Total()
		with = area.PaperProtected().Total()
	}
	printTable(b, "t1", area.RenderTable1())
	b.ReportMetric(float64(with.Regs-without.Regs), "extra-regs")
	b.ReportMetric(float64(with.LUTs-without.LUTs), "extra-luts")
	b.ReportMetric(float64(with.BRAM-without.BRAM), "extra-bram")
}

// BenchmarkTable2ModuleLatency regenerates Table II: per-module latency
// and throughput of the firewall pipeline. The SB figure is *measured* by
// timing a discarded transfer through a Local Firewall; CC and IC figures
// come from the hardware timing descriptors and are cross-checked against
// a live LCF access.
func BenchmarkTable2ModuleLatency(b *testing.B) {
	freq := sim.DefaultFrequency
	var sbMeasured uint64
	for i := 0; i < b.N; i++ {
		// Measure the Security Builder: a blocked access costs exactly
		// the rule-check latency and nothing else.
		eng := sim.NewEngine(freq)
		bs := bus.New(eng, bus.Config{})
		bs.AddSlave(mem.NewBRAM("bram", 0x1000_0000, 0x1000))
		lf := core.NewLocalFirewall(eng, "lf", bs.NewMaster("m"),
			core.MustConfig(core.Policy{SPI: 1, Zone: core.Zone{Base: 0x1000_0000, Size: 0x1000},
				RWA: core.ReadOnly, ADF: core.AnyWidth}), core.NewAlertLog())
		tx := &bus.Transaction{Op: bus.Write, Addr: 0x1000_0000, Size: 4, Burst: 1, Data: []uint32{1}}
		done := false
		lf.Submit(tx, func(*bus.Transaction) { done = true })
		eng.RunUntil(func() bool { return done }, 1000)
		sbMeasured = tx.Completed - tx.Issued
	}
	cc := aes.DefaultTiming
	ic := hashtree.DefaultTiming
	tb := trace.NewTable("Table II — latency results of the firewalls (measured)",
		"module", "nb. of clk cycles", "throughput (Mb/s)")
	tb.AddRow("SB (LF/LCF)", fmt.Sprintf("%d", sbMeasured), "-")
	tb.AddRow("CC", fmt.Sprintf("%d", cc.Latency), fmt.Sprintf("%.0f", cc.ThroughputMbps(uint64(freq))))
	tb.AddRow("IC", fmt.Sprintf("%d", ic.Latency), fmt.Sprintf("%.0f", ic.ThroughputMbps(uint64(freq))))
	printTable(b, "t2", tb.String())
	b.ReportMetric(float64(sbMeasured), "SB-cycles")
	b.ReportMetric(float64(cc.Latency), "CC-cycles")
	b.ReportMetric(cc.ThroughputMbps(uint64(freq)), "CC-Mbps")
	b.ReportMetric(float64(ic.Latency), "IC-cycles")
	b.ReportMetric(ic.ThroughputMbps(uint64(freq)), "IC-Mbps")
}

// BenchmarkFigure1Topology regenerates Figure 1: the distributed
// architecture with its security enhancements, as the executable platform
// topology.
func BenchmarkFigure1Topology(b *testing.B) {
	var topo string
	for i := 0; i < b.N; i++ {
		s := soc.MustNew(soc.Config{Protection: soc.Distributed})
		topo = s.Topology()
	}
	printTable(b, "f1", topo)
}

// BenchmarkOverheadVsCommRatio is experiment E1: the paper's §V claim that
// the protection overhead depends on the computation/communication ratio
// and on the internal-vs-external traffic split.
func BenchmarkOverheadVsCommRatio(b *testing.B) {
	type point struct {
		target string
		ratio  int
		pct    float64
	}
	var pts []point
	run := func(p soc.Protection, target uint32, span uint32, iters int) uint64 {
		s := soc.MustNew(soc.Config{Protection: p})
		s.HaltIdleCores(0)
		s.MustLoad(0, workload.Mix(target, span, 4, 100, iters))
		c, ok := s.Run(100_000_000)
		if !ok {
			b.Fatal("workload did not finish")
		}
		return c
	}
	for i := 0; i < b.N; i++ {
		pts = pts[:0]
		for _, tgt := range []struct {
			name string
			base uint32
			span uint32
		}{
			{"internal (bram)", soc.BRAMBase, 0x1000},
			{"external (secure ddr)", soc.SecureBase, 0x1000},
		} {
			for _, iters := range []int{0, 4, 16, 64, 256} {
				plain := run(soc.Unprotected, tgt.base, tgt.span, iters)
				prot := run(soc.Distributed, tgt.base, tgt.span, iters)
				pts = append(pts, point{tgt.name, iters,
					(float64(prot) - float64(plain)) / float64(plain) * 100})
			}
		}
	}
	tb := trace.NewTable("E1 — execution-time overhead of the firewalls vs computation:communication ratio",
		"traffic", "compute iters per access", "overhead")
	for _, p := range pts {
		tb.AddRow(p.target, fmt.Sprintf("%d", p.ratio), fmt.Sprintf("%+.1f%%", p.pct))
	}
	printTable(b, "e1", tb.String())
	if len(pts) > 0 {
		b.ReportMetric(pts[0].pct, "worst-internal-%")
		b.ReportMetric(pts[5].pct, "worst-external-%")
	}
}

// BenchmarkAreaVsRuleCount is experiment E2: firewall area as a function
// of the number of monitored security rules (the paper's stated future
// work and its "more aggressive policy costs more area" remark).
func BenchmarkAreaVsRuleCount(b *testing.B) {
	var last area.Resources
	tb := trace.NewTable("E2 — Local Firewall area vs number of security rules",
		"rules", "Slice LUTs", "platform Slice LUTs (5 LFs)")
	for i := 0; i < b.N; i++ {
		tb = trace.NewTable("E2 — Local Firewall area vs number of security rules",
			"rules", "Slice LUTs", "platform Slice LUTs (5 LFs)")
		for _, rules := range []int{1, 2, 4, 6, 8, 16, 32, 64} {
			lf := area.LocalFirewall(rules)
			platform := area.BaseSystem(3).Total().
				Add(lf.Scale(5)).
				Add(area.InterfaceAdapter().Scale(5)).
				Add(area.LCF(area.CalibSBRules, area.CalibICBits)).
				Add(area.SecurityController())
			tb.AddRow(fmt.Sprintf("%d", rules), trace.Comma(lf.LUTs), trace.Comma(platform.LUTs))
			last = lf
		}
	}
	printTable(b, "e2", tb.String())
	b.ReportMetric(float64(last.LUTs), "lf-luts-at-64-rules")
}

// BenchmarkAttackContainment is experiment E3: a hijacked IP floods the
// bus; the victim's slowdown quantifies §III-C's containment requirement
// ("the attack must not reach the communication architecture").
func BenchmarkAttackContainment(b *testing.B) {
	var rows [3]attack.Outcome
	for i := 0; i < b.N; i++ {
		rows[0] = attack.DoS(soc.Unprotected)
		rows[1] = attack.DoS(soc.Distributed)
		rows[2] = attack.DoS(soc.Centralized)
	}
	tb := trace.NewTable("E3 — DoS flood containment (victim: 512-word BRAM stream)",
		"protection", "victim slowdown", "flood bus share", "detected", "contained")
	for _, r := range rows {
		tb.AddRow(r.Protection.String(),
			fmt.Sprintf("%.2fx", r.Slowdown()),
			fmt.Sprintf("%.0f%%", r.FloodBusShare*100),
			fmt.Sprintf("%v", r.Detected),
			fmt.Sprintf("%v", r.Contained))
	}
	printTable(b, "e3", tb.String())
	b.ReportMetric(rows[0].Slowdown(), "unprotected-slowdown")
	b.ReportMetric(rows[1].Slowdown(), "distributed-slowdown")
	b.ReportMetric(rows[2].Slowdown(), "centralized-slowdown")
}

// BenchmarkThreatCoverage is experiment E4: the full §III threat model run
// against all three architectures.
func BenchmarkThreatCoverage(b *testing.B) {
	var outs map[soc.Protection][]attack.Outcome
	for i := 0; i < b.N; i++ {
		outs = map[soc.Protection][]attack.Outcome{
			soc.Unprotected: attack.All(soc.Unprotected),
			soc.Distributed: attack.All(soc.Distributed),
			soc.Centralized: attack.All(soc.Centralized),
		}
	}
	tb := trace.NewTable("E4 — threat-model coverage (detected/contained per scenario)",
		"scenario", "unprotected", "centralized-sem", "distributed-firewalls")
	fmtCell := func(o attack.Outcome) string {
		return fmt.Sprintf("det=%v cont=%v", o.Detected, o.Contained)
	}
	for i := range outs[soc.Distributed] {
		tb.AddRow(outs[soc.Distributed][i].Scenario,
			fmtCell(outs[soc.Unprotected][i]),
			fmtCell(outs[soc.Centralized][i]),
			fmtCell(outs[soc.Distributed][i]))
	}
	printTable(b, "e4", tb.String())
	detected := 0
	for _, o := range outs[soc.Distributed] {
		if o.Detected && o.Contained {
			detected++
		}
	}
	b.ReportMetric(float64(detected), "distributed-stopped-of-7")
}

// BenchmarkDistributedVsCentralized is experiment E5: per-access cost and
// serialization of the distributed scheme versus the SECA-style global
// SEM, under one and three active masters.
func BenchmarkDistributedVsCentralized(b *testing.B) {
	type res struct {
		cycles1 uint64 // 1 active core
		cycles3 uint64 // 3 active cores
	}
	measure := func(p soc.Protection) res {
		one := soc.MustNew(soc.Config{Protection: p})
		one.HaltIdleCores(0)
		one.MustLoad(0, workload.Mix(soc.BRAMBase, 0x1000, 4, 100, 0))
		c1, ok := one.Run(100_000_000)
		if !ok {
			b.Fatal("1-core run stuck")
		}
		three := soc.MustNew(soc.Config{Protection: p})
		for i := 0; i < 3; i++ {
			three.MustLoad(i, workload.Mix(soc.BRAMBase+uint32(i)*0x1000, 0x1000, 4, 100, 0))
		}
		c3, ok := three.Run(100_000_000)
		if !ok {
			b.Fatal("3-core run stuck")
		}
		return res{c1, c3}
	}
	var un, di, ce res
	for i := 0; i < b.N; i++ {
		un = measure(soc.Unprotected)
		di = measure(soc.Distributed)
		ce = measure(soc.Centralized)
	}
	tb := trace.NewTable("E5 — distributed vs centralized check cost (100 accesses/core)",
		"protection", "1 core (cycles)", "3 cores (cycles)", "3-core scaling")
	for _, r := range []struct {
		name string
		v    res
	}{{"unprotected", un}, {"distributed-firewalls", di}, {"centralized-sem", ce}} {
		tb.AddRow(r.name,
			trace.Comma(r.v.cycles1), trace.Comma(r.v.cycles3),
			fmt.Sprintf("%.2fx", float64(r.v.cycles3)/float64(r.v.cycles1)))
	}
	printTable(b, "e5", tb.String())
	b.ReportMetric(float64(di.cycles3)/float64(un.cycles3), "distributed-overhead-3core")
	b.ReportMetric(float64(ce.cycles3)/float64(un.cycles3), "centralized-overhead-3core")
}

// BenchmarkLCFSecureAccess measures the end-to-end cost of one secured
// external-memory word access (SB + DDR + CC + IC), the number behind the
// paper's advice to favor internal communication.
func BenchmarkLCFSecureAccess(b *testing.B) {
	var cycles uint64
	for i := 0; i < b.N; i++ {
		s := soc.MustNew(soc.Config{Protection: soc.Distributed})
		s.HaltIdleCores()
		m := s.Bus.NewMaster("probe")
		tx := &bus.Transaction{Op: bus.Read, Addr: soc.SecureBase, Size: 4, Burst: 1}
		done := false
		m.Submit(tx, func(*bus.Transaction) { done = true })
		s.Eng.RunUntil(func() bool { return done }, 100000)
		cycles = tx.Completed - tx.Issued
	}
	b.ReportMetric(float64(cycles), "cycles/secure-read")
}

// BenchmarkSecureMemoryThroughput is the tracked headline number for the
// secured off-chip path: host-side bytes/s through the full CC+IC pipeline
// (SB check, covering DDR fetch, leaf verify, XEX decrypt/encrypt, tree
// update) driving the CipherFirewall directly. Each iteration reads one
// 32-byte leaf and writes it back, walking the whole 32 KiB protected
// zone. The simulated cycle cost per iteration is reported alongside: the
// host-speed rewrite must leave it untouched.
func BenchmarkSecureMemoryThroughput(b *testing.B) {
	const (
		base = 0x4000_0000
		size = 0x8000 // 32 KiB CM+IM zone, 1024 leaves — the platform's secure zone
		node = 0x4006_0000
	)
	key := [16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	ddr := mem.NewDDR("ddr", base, 0x8_0000)
	cm := core.MustConfig(core.Policy{SPI: 1, Zone: core.Zone{Base: base, Size: size},
		RWA: core.ReadWrite, ADF: core.AnyWidth, CM: true, IM: true, Key: key})
	lcf, err := core.NewCipherFirewall(core.LCFConfig{
		IntegrityZone: core.Zone{Base: base, Size: size}, NodeBase: node,
	}, ddr, ddr.Store(), cm, core.NewAlertLog())
	if err != nil {
		b.Fatal(err)
	}
	lcf.Seal()
	const leafWords = hashtree.LeafSize / 4
	rd := &bus.Transaction{Master: "cpu0", Op: bus.Read, Addr: base, Size: 4,
		Burst: leafWords, Data: make([]uint32, leafWords)}
	wr := &bus.Transaction{Master: "cpu0", Op: bus.Write, Addr: base, Size: 4,
		Burst: leafWords, Data: make([]uint32, leafWords)}
	var simCycles uint64
	b.SetBytes(2 * hashtree.LeafSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint32(base) + uint32(i%(size/hashtree.LeafSize))*hashtree.LeafSize
		rd.Addr, wr.Addr = addr, addr
		c1, resp := lcf.Access(0, rd)
		if resp != bus.RespOK {
			b.Fatalf("read: %v", resp)
		}
		copy(wr.Data, rd.Data)
		wr.Data[0] = uint32(i)
		c2, resp := lcf.Access(0, wr)
		if resp != bus.RespOK {
			b.Fatalf("write: %v", resp)
		}
		simCycles += c1 + c2
	}
	b.ReportMetric(float64(simCycles)/float64(b.N), "sim-cycles/op")
}

// BenchmarkEngineThroughput measures raw simulator speed (host-side):
// cycles per second for the full 3-core protected platform.
func BenchmarkEngineThroughput(b *testing.B) {
	s := soc.MustNew(soc.Config{Protection: soc.Distributed})
	for i := 0; i < 3; i++ {
		s.MustLoad(i, workload.Mix(soc.BRAMBase+uint32(i)*0x1000, 0x1000, 4, 1_000_000, 4))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Eng.Run(1000)
	}
	b.ReportMetric(float64(b.N*1000)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// --- Ablations: the design choices DESIGN.md §5 calls out. ---

// BenchmarkAblationTreeCache sweeps the LCF's verified-node cache and
// measures the average secure-zone read cost over a 64-read walk: the
// cache turns deep cold verifies into near-constant checks.
func BenchmarkAblationTreeCache(b *testing.B) {
	measure := func(cacheSize int) float64 {
		s := soc.MustNew(soc.Config{Protection: soc.Distributed, TreeCacheSize: cacheSize})
		s.HaltIdleCores()
		m := s.Bus.NewMaster("probe")
		var total uint64
		const reads = 64
		for i := 0; i < reads; i++ {
			tx := &bus.Transaction{Op: bus.Read, Addr: soc.SecureBase + uint32(i%16)*64, Size: 4, Burst: 1}
			done := false
			m.Submit(tx, func(*bus.Transaction) { done = true })
			s.Eng.RunUntil(func() bool { return done }, 1_000_000)
			total += tx.Completed - tx.Issued
		}
		return float64(total) / reads
	}
	var rows [][2]float64
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, size := range []int{-1, 16, 64, 256} {
			rows = append(rows, [2]float64{float64(size), measure(size)})
		}
	}
	tb := trace.NewTable("Ablation — verified-node cache vs secure read cost (64 reads over 16 leaves)",
		"cache entries", "avg read (cycles)")
	for _, r := range rows {
		label := fmt.Sprintf("%.0f", r[0])
		if r[0] < 0 {
			label = "disabled"
		}
		tb.AddRow(label, fmt.Sprintf("%.0f", r[1]))
	}
	printTable(b, "ab-cache", tb.String())
	b.ReportMetric(rows[0][1], "cycles-no-cache")
	b.ReportMetric(rows[2][1], "cycles-cache64")
}

// BenchmarkAblationArbitration compares round-robin and fixed-priority
// arbitration under a saturating flood from a higher-priority master: a
// hog with a deep queue of DDR writes vs a victim issuing dependent BRAM
// reads. A CPU cannot keep the queue deep (one outstanding access), so
// this uses raw masters; it isolates the fairness property of the
// arbiter the protected platform relies on.
func BenchmarkAblationArbitration(b *testing.B) {
	measure := func(arb bus.Arbitration) uint64 {
		eng := sim.NewEngine(sim.DefaultFrequency)
		bs := bus.New(eng, bus.Config{Arbitration: arb})
		bs.AddSlave(mem.NewBRAM("bram", 0x1000_0000, 0x1000))
		bs.AddSlave(mem.NewDDR("ddr", 0x4000_0000, 0x1000))
		hog := bs.NewMaster("hog")       // index 0: favored by fixed priority
		victim := bs.NewMaster("victim") // index 1
		for i := 0; i < 300; i++ {
			hog.Submit(&bus.Transaction{Op: bus.Write, Addr: 0x4000_0000, Size: 4, Burst: 1,
				Data: []uint32{0}}, nil)
		}
		var lastDone uint64
		remaining := 64
		var issue func()
		issue = func() {
			victim.Submit(&bus.Transaction{Op: bus.Read, Addr: 0x1000_0000, Size: 4, Burst: 1},
				func(tx *bus.Transaction) {
					lastDone = tx.Completed
					remaining--
					if remaining > 0 {
						issue()
					}
				})
		}
		issue()
		eng.RunUntil(func() bool { return remaining == 0 }, 5_000_000)
		return lastDone
	}
	var rr, fp uint64
	for i := 0; i < b.N; i++ {
		rr = measure(bus.RoundRobin)
		fp = measure(bus.FixedPriority)
	}
	tb := trace.NewTable("Ablation — arbitration under a deep-queue flood (victim: 64 dependent BRAM reads)",
		"arbitration", "victim finish (cycle)")
	tb.AddRow("round-robin", trace.Comma(rr))
	tb.AddRow("fixed-priority (hog favored)", trace.Comma(fp))
	printTable(b, "ab-arb", tb.String())
	b.ReportMetric(float64(rr), "roundrobin-cycles")
	b.ReportMetric(float64(fp), "fixedpri-cycles")
}

// BenchmarkAblationCheckCycles sweeps the Security Builder latency: how
// sensitive is the workload overhead to the paper's 12-cycle rule check?
func BenchmarkAblationCheckCycles(b *testing.B) {
	measure := func(check uint64) uint64 {
		s := soc.MustNew(soc.Config{Protection: soc.Distributed, CheckCycles: check})
		s.HaltIdleCores(0)
		s.MustLoad(0, workload.Mix(soc.BRAMBase, 0x1000, 4, 100, 0))
		cycles, _ := s.Run(50_000_000)
		return cycles
	}
	type row struct {
		check  uint64
		cycles uint64
	}
	var rows []row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, check := range []uint64{1, 6, 12, 24, 48} {
			rows = append(rows, row{check, measure(check)})
		}
	}
	tb := trace.NewTable("Ablation — SB check latency vs workload cost (100 internal accesses)",
		"SB cycles", "workload cycles")
	for _, r := range rows {
		tb.AddRow(fmt.Sprintf("%d", r.check), trace.Comma(r.cycles))
	}
	printTable(b, "ab-check", tb.String())
	b.ReportMetric(float64(rows[2].cycles), "cycles-at-12")
}

// BenchmarkAblationQuarantine measures the reaction controller: a hijacked
// core makes a few violations and then floods a zone it is *allowed* to
// use. Without the reactor the legal-looking flood contends with the
// victim forever; with it, the earlier violations cost the attacker its
// bus access entirely.
func BenchmarkAblationQuarantine(b *testing.B) {
	attackerProgram := fmt.Sprintf(`
		li r1, 0x70000000
		sw r0, 0(r1)          ; violation 1
		sw r0, 4(r1)          ; violation 2
		sw r0, 8(r1)          ; violation 3
		li r1, %#x
	flood:
		sw r0, 0(r1)          ; legal-zone flood (contention attack)
		b flood
	`, soc.PlainBase)
	measure := func(threshold int) uint64 {
		s := soc.MustNew(soc.Config{Protection: soc.Distributed, QuarantineThreshold: threshold})
		s.HaltIdleCores(0, 2)
		s.MustLoad(0, workload.Stream(soc.PlainBase+0x8000, 128, 4, 0))
		s.MustLoad(2, attackerProgram)
		victimDone := func() bool { h, _ := s.Cores[0].Halted(); return h }
		cycles, _ := s.Eng.RunUntil(victimDone, 50_000_000)
		return cycles
	}
	var off, on uint64
	for i := 0; i < b.N; i++ {
		off = measure(0) // reactor disabled
		on = measure(3)
	}
	tb := trace.NewTable("Ablation — quarantine reactor vs legal-zone flood after violations",
		"reactor", "victim cycles")
	tb.AddRow("disabled", trace.Comma(off))
	tb.AddRow("threshold 3", trace.Comma(on))
	printTable(b, "ab-quar", tb.String())
	b.ReportMetric(float64(off)/float64(on), "speedup")
}

// BenchmarkScalingWithCoreCount (E6) sweeps the processor count: the
// distributed scheme's per-interface checks scale with the platform while
// the centralized SEM becomes the serial bottleneck — the architectural
// argument of the paper quantified beyond its 3-core case study.
func BenchmarkScalingWithCoreCount(b *testing.B) {
	measure := func(p soc.Protection, n int) uint64 {
		s := soc.MustNew(soc.Config{Protection: p, NumCores: n})
		for i := 0; i < n; i++ {
			s.MustLoad(i, workload.Mix(soc.BRAMBase+uint32(i)*0x800, 0x800, 4, 100, 0))
		}
		cycles, ok := s.Run(100_000_000)
		if !ok {
			b.Fatal("scaling run stuck")
		}
		return cycles
	}
	type row struct {
		n          int
		un, di, ce uint64
	}
	var rows []row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, n := range []int{1, 2, 4, 8} {
			rows = append(rows, row{n,
				measure(soc.Unprotected, n),
				measure(soc.Distributed, n),
				measure(soc.Centralized, n)})
		}
	}
	tb := trace.NewTable("E6 — cycles to finish 100 accesses/core vs core count",
		"cores", "unprotected", "distributed", "centralized", "dist overhead", "cent overhead")
	for _, r := range rows {
		tb.AddRow(fmt.Sprintf("%d", r.n),
			trace.Comma(r.un), trace.Comma(r.di), trace.Comma(r.ce),
			fmt.Sprintf("%.2fx", float64(r.di)/float64(r.un)),
			fmt.Sprintf("%.2fx", float64(r.ce)/float64(r.un)))
	}
	printTable(b, "e6", tb.String())
	last := rows[len(rows)-1]
	b.ReportMetric(float64(last.di)/float64(last.un), "dist-overhead-8core")
	b.ReportMetric(float64(last.ce)/float64(last.un), "cent-overhead-8core")
}
