# containment.gp — the paper-style detection-latency chart from a campaign
# CSV: one cluster of bars per attack scenario, one bar per protection
# architecture, height = cycles from injection to the first attributed
# firewall alert. Undetected attacks plot at zero — visibly absent bars are
# the point: the unprotected and centralized platforms have no bar to show
# for the external-memory attacks.
#
# Usage:
#   mpsocsim -attack -format csv -sweep-out campaign.csv
#   gnuplot -e "csv='campaign.csv'" tools/plot/containment.gp
#   # writes containment.svg (override with -e "out='...'")
#
# Column map of the campaign CSV (see internal/campaign CSVHeader):
#   3=scenario 4=protection 7=scope 10=detected 13=detect_latency
#   14=contained 19=slowdown
# Only scope==attack rows carry the verdict; core/firewall breakdown rows
# are filtered out below.

if (!exists("csv")) csv = 'campaign.csv'
if (!exists("out")) out = 'containment.svg'

set terminal svg size 960,520 dynamic background rgb 'white'
set output out
set datafile separator ','

set title 'Detection latency by scenario and protection architecture'
set ylabel 'cycles from injection to first firewall alert'
set style data histogram
set style histogram clustered gap 2
set style fill solid 0.85 border rgb 'black'
set boxwidth 0.9
set xtics rotate by -25 scale 0
set grid ytics
set key top left

# One filtered stream per protection: scope==attack rows only; undetected
# runs contribute latency 0.
rows(p) = sprintf("< awk -F, '$7==\"attack\" && $4==\"%s\" {print}' %s", p, csv)

# Note: the goal column (15) may contain quoted commas, but every column
# read here (3, 4, 7, 10, 13) comes before it, so naive comma splitting in
# awk and gnuplot stays aligned.
lat(det, cycles) = (det eq "true") ? cycles : 0

plot \
  rows('unprotected')           using (lat(strcol(10), $13)):xtic(3) \
      title 'unprotected'           linecolor rgb '#b0b0b0', \
  rows('centralized-sem')       using (lat(strcol(10), $13)) \
      title 'centralized SEM'       linecolor rgb '#e08214', \
  rows('distributed-firewalls') using (lat(strcol(10), $13)) \
      title 'distributed firewalls' linecolor rgb '#2c7bb6'
