# recovery.gp — the incident-lifecycle timeline from a recovery-enabled
# campaign CSV: background throughput (attacked-platform rate normalized
# to the attack-free twin's steady-state rate) per sampling window, with
# vertical markers at injection, quarantine and release. The shape the
# chart should show on the distributed platform: a dip after injection,
# flatline damage until the reactor trips, full (or near-full) throughput
# while the attacker sits quarantined, and the curve settling back onto
# 1.0 after the release — the recovery the record's `recovered` field
# asserts. On the centralized baseline there are no quarantine/release
# markers and the dip simply persists until the attack drains.
#
# Usage:
#   mpsocsim -attack -recovery -format csv -sweep-out campaign.csv
#   gnuplot -e "csv='campaign.csv'; run='burst-flood/distributed-firewalls/stream/c3'" \
#       tools/plot/recovery.gp
#   # writes recovery.svg (override with -e "out='...'")
#
# Column map of the campaign CSV (see internal/campaign CSVHeader):
#   2=name 7=scope 16=inject_cycle 23=quarantine_cycle 24=release_cycle
#   29=window_end 32=window_ratio
# The goal column (15) may contain quoted commas, so columns after it are
# addressed from the *right* (NF-k) on scope==attack rows — every
# comma-bearing field sits at column 15, so right-anchored indices stay
# aligned under naive comma splitting. scope==window rows carry no free
# text and are read by plain column number.

if (!exists("csv")) csv = 'campaign.csv'
if (!exists("run")) run = 'burst-flood/distributed-firewalls/stream/c3'
if (!exists("out")) out = 'recovery.svg'

set terminal svg size 960,520 dynamic background rgb 'white'
set output out
set datafile separator ','

# Markers from the run's attack row, counted from the right (45 columns
# total, so column c is NF-(45-c)).
marker(c) = real(system(sprintf( \
  "awk -F, -v run='%s' '$2==run && $7==\"attack\" {print $(NF-(45-%d)); exit}' %s", run, c, csv)))
inject     = marker(16)
quarantine = marker(23)
release    = marker(24)

set title sprintf('Background throughput around the incident — %s', run)
set xlabel 'cycle'
set ylabel 'attacked rate / twin steady-state rate'
set yrange [0:1.3]
set grid ytics
set key bottom right

set arrow 1 from inject, graph 0 to inject, graph 1 nohead dashtype 2 linecolor rgb '#808080'
set label 1 'inject' at inject, graph 0.95 offset 0.5,0 textcolor rgb '#808080'
if (quarantine > 0) {
  set arrow 2 from quarantine, graph 0 to quarantine, graph 1 nohead dashtype 2 linecolor rgb '#d7191c'
  set label 2 'quarantine' at quarantine, graph 0.89 offset 0.5,0 textcolor rgb '#d7191c'
}
if (release > 0) {
  set arrow 3 from release, graph 0 to release, graph 1 nohead dashtype 2 linecolor rgb '#1a9641'
  set label 3 'release' at release, graph 0.83 offset 0.5,0 textcolor rgb '#1a9641'
}

# Twin parity and the default recovery tolerance (-recovery-epsilon 0.1).
set arrow 4 from graph 0, first 1.0 to graph 1, first 1.0 nohead linecolor rgb '#b0b0b0'
set arrow 5 from graph 0, first 0.9 to graph 1, first 0.9 nohead dashtype 3 linecolor rgb '#b0b0b0'

windows = sprintf("< awk -F, -v run='%s' '$2==run && $7==\"window\" {print}' %s", run, csv)

plot windows using 29:32 with linespoints pointtype 7 pointsize 0.4 \
     linecolor rgb '#2c7bb6' title 'background throughput (per window)'
