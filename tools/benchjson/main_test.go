package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	name, e, err := parseBenchLine(
		"BenchmarkSecureMemoryThroughput-8   380144   6393 ns/op   10.01 MB/s   1356 sim-cycles/op   0 B/op   0 allocs/op")
	if err != nil {
		t.Fatal(err)
	}
	if name != "BenchmarkSecureMemoryThroughput" {
		t.Fatalf("name = %q (GOMAXPROCS suffix not stripped?)", name)
	}
	if e.Iterations != 380144 || e.NsPerOp != 6393 {
		t.Fatalf("entry = %+v", e)
	}
	if e.BytesPerOp == nil || *e.BytesPerOp != 0 || e.AllocsPerOp == nil || *e.AllocsPerOp != 0 {
		t.Fatalf("benchmem fields = %+v", e)
	}
	if e.Metrics["MB/s"] != 10.01 || e.Metrics["sim-cycles/op"] != 1356 {
		t.Fatalf("metrics = %+v", e.Metrics)
	}
}

func TestParseBenchLineNoSuffix(t *testing.T) {
	name, e, err := parseBenchLine("BenchmarkHash 	 100 	 250.5 ns/op")
	if err != nil {
		t.Fatal(err)
	}
	if name != "BenchmarkHash" || e.NsPerOp != 250.5 {
		t.Fatalf("got %q %+v", name, e)
	}
	if e.BytesPerOp != nil || e.AllocsPerOp != nil || e.Metrics != nil {
		t.Fatalf("unexpected optional fields: %+v", e)
	}
}

func TestParseBenchLineMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX",
		"BenchmarkX 12",
		"BenchmarkX twelve 3 ns/op",
		"BenchmarkX 12 foo ns/op",
	} {
		if _, _, err := parseBenchLine(line); err == nil {
			t.Errorf("%q parsed without error", line)
		}
	}
}

func TestRecordKeepsFastestSample(t *testing.T) {
	doc := Doc{Bench: map[string]Entry{}}
	record(&doc, "BenchmarkX", Entry{NsPerOp: 100, Iterations: 1})
	record(&doc, "BenchmarkX", Entry{NsPerOp: 80, Iterations: 2})
	record(&doc, "BenchmarkX", Entry{NsPerOp: 95, Iterations: 3})
	got := doc.Bench["BenchmarkX"]
	if got.NsPerOp != 80 || got.Iterations != 2 {
		t.Fatalf("kept %+v, want the fastest sample", got)
	}
}
