// Command benchjson converts `go test -bench` text output (stdin) into a
// stable JSON document (stdout): benchmark name -> ns/op, bytes/op,
// allocs/op and any custom ReportMetric units. The Makefile's bench-json
// target feeds it the repository benchmark suite and stores the result as
// BENCH_<pr>.json, the per-PR perf trajectory CI uploads as an artifact —
// so future changes diff their benchmark numbers against history instead
// of eyeballing logs.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is the parsed result of one benchmark line.
type Entry struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the full document: environment header lines plus all benchmarks.
type Doc struct {
	Go       string           `json:"go,omitempty"`
	OS       string           `json:"goos,omitempty"`
	Arch     string           `json:"goarch,omitempty"`
	CPU      string           `json:"cpu,omitempty"`
	Packages []string         `json:"packages,omitempty"`
	Bench    map[string]Entry `json:"benchmarks"`
}

func main() {
	doc := Doc{Bench: map[string]Entry{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.OS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Arch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Packages = append(doc.Packages, strings.TrimPrefix(line, "pkg: "))
		case strings.HasPrefix(line, "Benchmark"):
			name, e, err := parseBenchLine(line)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: skipping %q: %v\n", line, err)
				continue
			}
			record(&doc, name, e)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(out, '\n'))
}

// record stores a benchmark sample. Repeated runs of one benchmark
// (go test -count=N) keep the fastest sample: min-of-N is the standard
// low-noise estimate, and it is what lets tools/benchdiff hold a tight
// regression threshold without flaking on scheduler or frequency jitter.
func record(doc *Doc, name string, e Entry) {
	if prev, ok := doc.Bench[name]; ok && prev.NsPerOp <= e.NsPerOp {
		e = prev
	}
	doc.Bench[name] = e
}

// parseBenchLine parses one result line:
//
//	BenchmarkName-8   1234   56.7 ns/op   8 B/op   1 allocs/op   9.9 widgets/op
//
// The name's -N GOMAXPROCS suffix is stripped so trajectories compare
// across machines.
func parseBenchLine(line string) (string, Entry, error) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return "", Entry{}, fmt.Errorf("want name, count and value/unit pairs, got %d fields", len(f))
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return "", Entry{}, fmt.Errorf("bad iteration count %q", f[1])
	}
	e := Entry{Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", Entry{}, fmt.Errorf("bad value %q", f[i])
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			e.NsPerOp = v
		case "B/op":
			b := v
			e.BytesPerOp = &b
		case "allocs/op":
			a := v
			e.AllocsPerOp = &a
		default:
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[unit] = v
		}
	}
	return name, e, nil
}
