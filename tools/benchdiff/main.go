// Command benchdiff is the perf-trajectory consumer: it compares two
// benchjson documents (see tools/benchjson) and fails — exit status 1 —
// when the new run regresses against the old one. A regression is a ns/op
// increase beyond the threshold (default 25%, tunable with -ns-threshold)
// or *any* allocs/op increase: the repository's hot paths are pinned at
// zero allocations, so even one alloc/op is a real leak, and host-speed
// noise never touches allocation counts.
//
// Usage:
//
//	benchdiff [-ns-threshold 0.25] old.json new.json
//
// The Makefile's bench-diff target diffs the current run against the
// committed baseline (perf/BENCH_baseline.json); CI runs it on every
// build. PRs that intentionally change performance refresh the baseline
// with `make bench-baseline`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// Entry mirrors the benchjson schema (only the fields the diff needs).
type Entry struct {
	NsPerOp     float64  `json:"ns_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

// Doc mirrors the benchjson document.
type Doc struct {
	Bench map[string]Entry `json:"benchmarks"`
}

func main() {
	nsThreshold := flag.Float64("ns-threshold", 0.25,
		"relative ns/op increase that counts as a regression")
	nsFloor := flag.Float64("ns-floor", 250,
		"absolute ns/op increase below which a relative regression is noise, not a failure")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-ns-threshold 0.25] old.json new.json")
		os.Exit(2)
	}
	oldDoc, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newDoc, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	regressions, report := Diff(oldDoc, newDoc, *nsThreshold, *nsFloor)
	for _, line := range report {
		fmt.Println(line)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) vs %s\n", len(regressions), flag.Arg(0))
		os.Exit(1)
	}
	fmt.Printf("benchdiff: OK (%d benchmarks within %.0f%% ns/op, no allocs/op growth)\n",
		len(report), *nsThreshold*100)
}

func load(path string) (Doc, error) {
	var d Doc
	data, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	if err := json.Unmarshal(data, &d); err != nil {
		return d, fmt.Errorf("%s: %w", path, err)
	}
	if len(d.Bench) == 0 {
		return d, fmt.Errorf("%s: no benchmarks", path)
	}
	return d, nil
}

// Diff compares the benchmarks present in both documents and returns the
// regression lines and the full per-benchmark report (regressions
// included, sorted by name for stable output). Benchmarks only on one
// side are reported but never fail the diff — suites grow and shrink
// across PRs.
//
// A ns/op regression must clear the relative threshold AND the absolute
// floor: on shared CI hosts a sub-100ns benchmark routinely swings 40%
// from scheduler and frequency jitter even at min-of-N sampling, while
// every real regression this repository cares about — a pooled path
// re-allocating, a table lookup turning into a walk — costs hundreds of
// nanoseconds to microseconds. So the floor does not exempt tiny
// benchmarks from catastrophic slips, a 4x relative blowup fails
// regardless of absolute size (observed jitter tops out well under 2x).
// The allocs/op gate has no floor; counts are noise-free.
func Diff(oldDoc, newDoc Doc, nsThreshold, nsFloor float64) (regressions, report []string) {
	names := make([]string, 0, len(newDoc.Bench))
	for name := range newDoc.Bench {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		nw := newDoc.Bench[name]
		od, ok := oldDoc.Bench[name]
		if !ok {
			report = append(report, fmt.Sprintf("  new    %-45s %12.1f ns/op (no baseline)", name, nw.NsPerOp))
			continue
		}
		delta := 0.0
		if od.NsPerOp > 0 {
			delta = (nw.NsPerOp - od.NsPerOp) / od.NsPerOp
		}
		line := fmt.Sprintf("  %-45s %12.1f -> %12.1f ns/op (%+.1f%%)", name, od.NsPerOp, nw.NsPerOp, delta*100)
		switch {
		case delta > nsThreshold && (nw.NsPerOp-od.NsPerOp > nsFloor || delta > blowup):
			line = "REGRESS" + line + fmt.Sprintf(" exceeds +%.0f%%", nsThreshold*100)
			regressions = append(regressions, line)
		case allocs(nw) > allocs(od):
			line = "REGRESS" + line + fmt.Sprintf(" allocs/op %g -> %g", allocs(od), allocs(nw))
			regressions = append(regressions, line)
		default:
			line = "  ok   " + line
		}
		report = append(report, line)
	}
	var gone []string
	for name := range oldDoc.Bench {
		if _, ok := newDoc.Bench[name]; !ok {
			gone = append(gone, name)
		}
	}
	sort.Strings(gone)
	for _, name := range gone {
		report = append(report, fmt.Sprintf("  gone   %-45s (in baseline only)", name))
	}
	return regressions, report
}

// blowup is the relative increase past which the absolute floor no longer
// applies: a benchmark 4x slower is a regression whatever its size.
const blowup = 3.0

func allocs(e Entry) float64 {
	if e.AllocsPerOp == nil {
		return 0
	}
	return *e.AllocsPerOp
}
