package main

import (
	"strings"
	"testing"
)

func doc(bench map[string]Entry) Doc { return Doc{Bench: bench} }

func allocPtr(v float64) *float64 { return &v }

func TestDiffPassesWithinThreshold(t *testing.T) {
	old := doc(map[string]Entry{
		"BenchmarkA": {NsPerOp: 100, AllocsPerOp: allocPtr(0)},
		"BenchmarkB": {NsPerOp: 50},
	})
	cur := doc(map[string]Entry{
		"BenchmarkA": {NsPerOp: 120, AllocsPerOp: allocPtr(0)}, // +20% < 25%
		"BenchmarkB": {NsPerOp: 40},                            // improvement
	})
	reg, report := Diff(old, cur, 0.25, 20)
	if len(reg) != 0 {
		t.Fatalf("regressions within threshold: %v", reg)
	}
	if len(report) != 2 {
		t.Fatalf("report lines: %v", report)
	}
}

func TestDiffFailsOnNsRegression(t *testing.T) {
	old := doc(map[string]Entry{"BenchmarkA": {NsPerOp: 100}})
	cur := doc(map[string]Entry{"BenchmarkA": {NsPerOp: 130}}) // +30%
	reg, _ := Diff(old, cur, 0.25, 20)
	if len(reg) != 1 || !strings.Contains(reg[0], "BenchmarkA") {
		t.Fatalf("ns/op regression not flagged: %v", reg)
	}
}

func TestDiffFailsOnAnyAllocRegression(t *testing.T) {
	// allocs/op growth fails even when ns/op improved: a zero-alloc hot
	// path growing one allocation is a leak, not noise.
	old := doc(map[string]Entry{"BenchmarkA": {NsPerOp: 100, AllocsPerOp: allocPtr(0)}})
	cur := doc(map[string]Entry{"BenchmarkA": {NsPerOp: 80, AllocsPerOp: allocPtr(1)}})
	reg, _ := Diff(old, cur, 0.25, 20)
	if len(reg) != 1 || !strings.Contains(reg[0], "allocs/op") {
		t.Fatalf("allocs/op regression not flagged: %v", reg)
	}
}

func TestDiffIgnoresSuiteChanges(t *testing.T) {
	// New and removed benchmarks are reported but never fail the diff.
	old := doc(map[string]Entry{"BenchmarkGone": {NsPerOp: 10}})
	cur := doc(map[string]Entry{"BenchmarkNew": {NsPerOp: 999}})
	reg, report := Diff(old, cur, 0.25, 20)
	if len(reg) != 0 {
		t.Fatalf("suite change flagged as regression: %v", reg)
	}
	joined := strings.Join(report, "\n")
	if !strings.Contains(joined, "BenchmarkNew") || !strings.Contains(joined, "BenchmarkGone") {
		t.Fatalf("suite changes not reported:\n%s", joined)
	}
}

func TestDiffTreatsMissingAllocsAsZero(t *testing.T) {
	old := doc(map[string]Entry{"BenchmarkA": {NsPerOp: 100}})
	cur := doc(map[string]Entry{"BenchmarkA": {NsPerOp: 100, AllocsPerOp: allocPtr(0)}})
	if reg, _ := Diff(old, cur, 0.25, 20); len(reg) != 0 {
		t.Fatalf("0 allocs vs absent allocs flagged: %v", reg)
	}
}

func TestDiffAbsoluteFloorAbsorbsMicroNoise(t *testing.T) {
	// +40% on a 78ns benchmark is 31ns of scheduler jitter, not a
	// regression; the same relative jump past the floor fails.
	old := doc(map[string]Entry{"BenchmarkTiny": {NsPerOp: 78}, "BenchmarkBig": {NsPerOp: 6000}})
	cur := doc(map[string]Entry{"BenchmarkTiny": {NsPerOp: 110}, "BenchmarkBig": {NsPerOp: 8400}})
	reg, _ := Diff(old, cur, 0.25, 100)
	if len(reg) != 1 || !strings.Contains(reg[0], "BenchmarkBig") {
		t.Fatalf("floor misapplied: %v", reg)
	}
}

func TestDiffBlowupOverridesFloor(t *testing.T) {
	// A 6x slip on a 47ns benchmark is under the absolute floor but far
	// past the blowup cap — it must fail, the floor only absorbs jitter.
	old := doc(map[string]Entry{"BenchmarkMicro": {NsPerOp: 47}})
	cur := doc(map[string]Entry{"BenchmarkMicro": {NsPerOp: 295}})
	reg, _ := Diff(old, cur, 0.25, 250)
	if len(reg) != 1 {
		t.Fatalf("6x micro regression slipped under the floor: %v", reg)
	}
}
