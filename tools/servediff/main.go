// Command servediff is the serve-determinism gate: it proves the campaign
// service and the CLI are the same pipeline. It boots an in-process mpsocd
// (internal/server) on a loopback listener, submits the given spec twice,
// streams one job with 1 worker and one with 8, and byte-compares both
// streams against each other and against a direct CLI-produced JSONL file
// of the same spec. It then fetches the first job's /aggregates snapshot
// and recomputes the aggregates offline from the streamed records,
// requiring byte-identical JSON — the online fold and an offline
// recomputation must be indistinguishable.
//
//	servediff -spec build/attack-spec.json -direct build/attack-direct.jsonl
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"

	"repro/internal/agg"
	"repro/internal/campaign"
	"repro/internal/server"
	"repro/internal/spec"
	"repro/internal/sweep"
)

func main() {
	specPath := flag.String("spec", "", "spec JSON file to submit")
	directPath := flag.String("direct", "", "JSONL stream from a direct CLI run of the same spec")
	flag.Parse()
	if *specPath == "" || *directPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*specPath, *directPath); err != nil {
		fmt.Fprintln(os.Stderr, "servediff:", err)
		os.Exit(1)
	}
}

func run(specPath, directPath string) error {
	body, err := os.ReadFile(specPath)
	if err != nil {
		return err
	}
	sp, err := spec.Parse(body)
	if err != nil {
		return err
	}
	direct, err := os.ReadFile(directPath)
	if err != nil {
		return err
	}

	svc := server.New(server.Config{Workers: 8})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	one, aggOne, err := submitAndStream(ts.URL, body, 1)
	if err != nil {
		return err
	}
	eight, _, err := submitAndStream(ts.URL, body, 8)
	if err != nil {
		return err
	}
	if !bytes.Equal(one, eight) {
		return fmt.Errorf("HTTP streams differ across worker counts (1 vs 8)")
	}
	if !bytes.Equal(one, direct) {
		return fmt.Errorf("HTTP stream differs from the direct CLI stream %s", directPath)
	}

	offline, err := recompute(sp, one)
	if err != nil {
		return err
	}
	if !bytes.Equal(bytes.TrimSpace(aggOne), offline) {
		return fmt.Errorf("online /aggregates differ from the offline recomputation:\n  online  %s\n  offline %s",
			aggOne, offline)
	}

	records := bytes.Count(one, []byte("\n"))
	fmt.Printf("serve-determinism: OK — %d records byte-identical across HTTP worker counts and vs the CLI; /aggregates == offline recompute\n", records)
	return nil
}

// submitAndStream creates a job, drains its stream, and returns the JSONL
// bytes plus the raw aggregates snapshot.
func submitAndStream(base string, body []byte, workers int) (stream, aggregates []byte, err error) {
	resp, err := http.Post(fmt.Sprintf("%s/api/v1/jobs?workers=%d", base, workers),
		"application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(resp.Body)
		return nil, nil, fmt.Errorf("submit: status %d: %s", resp.StatusCode, msg)
	}
	var st struct {
		StreamURL     string `json:"stream_url"`
		AggregatesURL string `json:"aggregates_url"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, nil, err
	}

	sresp, err := http.Get(base + st.StreamURL)
	if err != nil {
		return nil, nil, err
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(sresp.Body)
		return nil, nil, fmt.Errorf("stream: status %d: %s", sresp.StatusCode, msg)
	}
	if stream, err = io.ReadAll(sresp.Body); err != nil {
		return nil, nil, err
	}

	aresp, err := http.Get(base + st.AggregatesURL)
	if err != nil {
		return nil, nil, err
	}
	defer aresp.Body.Close()
	var ag struct {
		Aggregates json.RawMessage `json:"aggregates"`
	}
	if err := json.NewDecoder(aresp.Body).Decode(&ag); err != nil {
		return nil, nil, err
	}
	return stream, ag.Aggregates, nil
}

// recompute folds the streamed records through the same aggregator the
// server uses, offline, and returns the marshaled snapshot.
func recompute(sp *spec.Spec, stream []byte) ([]byte, error) {
	sc := bufio.NewScanner(bytes.NewReader(stream))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	switch sp.Kind {
	case spec.KindCampaign:
		var a agg.Campaign
		for sc.Scan() {
			var rec campaign.Record
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				return nil, err
			}
			a.Add(rec)
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return json.Marshal(a.Snapshot())
	default:
		var a agg.Sweep
		for sc.Scan() {
			var rec sweep.RunResult
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				return nil, err
			}
			a.Add(rec)
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return json.Marshal(a.Snapshot())
	}
}
