// Command staticcheck is the repo's determinism lint: a stdlib-only
// (go/parser + go/types) analyzer that walks the module's internal/...
// packages and fails on the hazards that the byte-identity determinism
// gate can only catch dynamically — and only when a test happens to hit
// them. The static pass makes the invariant structural:
//
//   - map-range: iteration over a map feeds whatever consumes the loop —
//     output streams, simulation order, aggregation — in randomized
//     order. Sort the keys first, or keep a slice. Every occurrence in
//     internal/... must be allowlisted with a justification.
//
//   - wallclock: time.Now (and any import of math/rand) in the simulation
//     stack makes runs depend on the host. The engine owns the clock
//     (sim.Engine.Now) and internal/sim owns seeded randomness.
//
//   - go-stmt: goroutine spawns in engine hot paths break the
//     single-threaded execution model the zero-alloc paths and the
//     byte-identity gates rely on. Concurrency belongs in the sweep
//     worker pool (internal/sweep), whose reorder buffer restores
//     deterministic output order — and even those sites carry an
//     allowlist justification.
//
//   - host-import: the simulation stack must not import log/slog or
//     internal/hostobs. Host observability (wall-clock spans, structured
//     logs, resource accounting) belongs to the daemon-side packages
//     (internal/server, internal/journal, internal/faultpoint,
//     internal/hostobs); a sim package that logs host state is one step
//     from leaking host time into result bytes.
//
// Findings are suppressed by tools/staticcheck/allowlist.txt; every entry
// names (file, check, enclosing function) and carries a one-line
// justification. Unused entries are errors, so the list cannot rot.
//
// Usage: staticcheck [-root dir] [-scan rel] [-allowlist file]
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := flag.String("root", ".", "module root directory")
	scan := flag.String("scan", "internal", "comma-separated directories under root to analyze")
	allow := flag.String("allowlist", "tools/staticcheck/allowlist.txt", "allowlist file (relative to root)")
	flag.Parse()

	code, err := run(*root, strings.Split(*scan, ","), *allow, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "staticcheck:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// finding is one determinism hazard at a source position.
type finding struct {
	file  string // slash path relative to the module root
	line  int
	check string
	fn    string // enclosing function, "-" at file level
	msg   string
}

func (f finding) key() string { return f.file + " " + f.check + " " + f.fn }

// allowEntry is one parsed allowlist line.
type allowEntry struct {
	key  string
	line int
	used bool
}

// run analyzes the scan dirs under root and writes findings to out. It
// returns 1 when unsuppressed findings (or stale allowlist entries)
// remain, 0 otherwise.
func run(root string, scanDirs []string, allowPath string, out io.Writer) (int, error) {
	module, err := modulePath(root)
	if err != nil {
		return 0, err
	}
	allow, err := loadAllowlist(filepath.Join(root, allowPath))
	if err != nil {
		return 0, err
	}

	a := newAnalyzer(root, module)
	var findings []finding
	for _, dir := range scanDirs {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		fs, err := a.analyzeTree(dir)
		if err != nil {
			return 0, err
		}
		findings = append(findings, fs...)
	}

	bad := 0
	for _, f := range findings {
		if e, ok := allow[f.key()]; ok {
			e.used = true
			continue
		}
		bad++
		fmt.Fprintf(out, "%s:%d: %s: %s (in %s)\n", f.file, f.line, f.check, f.msg, f.fn)
	}
	// A stale allowlist entry means the hazard it justified is gone (or
	// moved): fail so the list stays exact.
	stale := make([]*allowEntry, 0)
	for _, e := range allow {
		if !e.used {
			stale = append(stale, e)
		}
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i].line < stale[j].line })
	for _, e := range stale {
		bad++
		fmt.Fprintf(out, "%s:%d: stale allowlist entry %q — no matching finding\n", allowPath, e.line, e.key)
	}
	if bad > 0 {
		fmt.Fprintf(out, "staticcheck: %d problem(s)\n", bad)
		return 1, nil
	}
	fmt.Fprintf(out, "staticcheck: OK (%d finding(s), all justified in %s)\n", len(findings), allowPath)
	return 0, nil
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module line in %s/go.mod", root)
}

// loadAllowlist parses the allowlist: one entry per line,
// "<file> <check> <func>" followed by free-text justification; '#' starts
// a comment.
func loadAllowlist(path string) (map[string]*allowEntry, error) {
	entries := make(map[string]*allowEntry)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return entries, nil
		}
		return nil, err
	}
	for i, line := range strings.Split(string(data), "\n") {
		if idx := strings.IndexByte(line, '#'); idx >= 0 {
			line = line[:idx]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 3 {
			return nil, fmt.Errorf("%s:%d: allowlist entry needs <file> <check> <func>", path, i+1)
		}
		key := fields[0] + " " + fields[1] + " " + fields[2]
		if _, dup := entries[key]; dup {
			return nil, fmt.Errorf("%s:%d: duplicate allowlist entry %q", path, i+1, key)
		}
		entries[key] = &allowEntry{key: key, line: i + 1}
	}
	return entries, nil
}

// analyzer typechecks packages of one module with a stdlib importer for
// everything else.
type analyzer struct {
	root   string
	module string
	fset   *token.FileSet
	std    types.Importer
	cache  map[string]*types.Package
}

func newAnalyzer(root, module string) *analyzer {
	return &analyzer{
		root:   root,
		module: module,
		fset:   token.NewFileSet(),
		std:    importer.Default(),
		cache:  make(map[string]*types.Package),
	}
}

// Import implements types.Importer: module-local paths are typechecked
// from source, everything else (the standard library) comes from the
// toolchain's export data.
func (a *analyzer) Import(path string) (*types.Package, error) {
	if pkg, ok := a.cache[path]; ok {
		return pkg, nil
	}
	if path == a.module || strings.HasPrefix(path, a.module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, a.module), "/")
		files, err := a.parseDir(filepath.Join(a.root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		conf := types.Config{Importer: a}
		pkg, err := conf.Check(path, a.fset, files, nil)
		if err != nil {
			return nil, err
		}
		a.cache[path] = pkg
		return pkg, nil
	}
	return a.std.Import(path)
}

// parseDir parses the non-test Go files of one directory, sorted by name.
func (a *analyzer) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents { // ReadDir sorts by name
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(a.fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// analyzeTree walks every package directory under root/rel and returns the
// findings, in deterministic (path, position) order.
func (a *analyzer) analyzeTree(rel string) ([]finding, error) {
	var dirs []string
	err := filepath.WalkDir(filepath.Join(a.root, filepath.FromSlash(rel)), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var findings []finding
	for _, dir := range dirs {
		fs, err := a.analyzePackage(dir)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	return findings, nil
}

// analyzePackage typechecks one directory (if it holds non-test Go files)
// and runs the determinism checks over its syntax.
func (a *analyzer) analyzePackage(dir string) ([]finding, error) {
	files, err := a.parseDir(dir)
	if err != nil || len(files) == 0 {
		return nil, err
	}
	rel, err := filepath.Rel(a.root, dir)
	if err != nil {
		return nil, err
	}
	pkgPath := a.module + "/" + filepath.ToSlash(rel)
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: a}
	if _, err := conf.Check(pkgPath, a.fset, files, info); err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", pkgPath, err)
	}

	var findings []finding
	add := func(pos token.Pos, check, fn, msg string) {
		p := a.fset.Position(pos)
		relFile, err := filepath.Rel(a.root, p.Filename)
		if err != nil {
			relFile = p.Filename
		}
		findings = append(findings, finding{
			file: filepath.ToSlash(relFile), line: p.Line, check: check, fn: fn, msg: msg,
		})
	}

	hostSide := hostSidePackage(filepath.ToSlash(rel))
	for _, f := range files {
		for _, imp := range f.Imports {
			switch strings.Trim(imp.Path.Value, `"`) {
			case "math/rand", "math/rand/v2":
				add(imp.Pos(), "wallclock", "-",
					"math/rand import in the deterministic stack; use the engine-seeded RNG in internal/sim")
			case "log/slog":
				if !hostSide {
					add(imp.Pos(), "host-import", "-",
						"log/slog import in the deterministic sim stack; host logging lives at the daemon edge (internal/hostobs)")
				}
			case a.module + "/internal/hostobs":
				if !hostSide {
					add(imp.Pos(), "host-import", "-",
						"internal/hostobs import in the deterministic sim stack; host observability is daemon-side only")
				}
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := funcName(fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.RangeStmt:
					if t := info.Types[v.X].Type; t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							add(v.Pos(), "map-range", fn,
								fmt.Sprintf("iteration over map %s feeds program order nondeterministically; sort keys or keep a slice", t))
						}
					}
				case *ast.SelectorExpr:
					if obj := info.Uses[v.Sel]; obj != nil && obj.Pkg() != nil &&
						obj.Pkg().Path() == "time" && obj.Name() == "Now" {
						add(v.Pos(), "wallclock", fn,
							"time.Now in the deterministic stack; the engine clock (sim.Engine.Now) owns time")
					}
				case *ast.GoStmt:
					add(v.Pos(), "go-stmt", fn,
						"goroutine spawn in the engine stack; concurrency belongs in the sweep worker pool")
				}
				return true
			})
		}
	}
	sort.SliceStable(findings, func(i, j int) bool {
		if findings[i].file != findings[j].file {
			return findings[i].file < findings[j].file
		}
		return findings[i].line < findings[j].line
	})
	return findings, nil
}

// hostSidePackage reports whether the package at slash-relative path rel
// is allowed to import the host observability layer: the daemon-side
// packages that sit between the deterministic core and the host
// (internal/server, internal/journal, internal/faultpoint) plus hostobs
// itself. Everything else under internal/ is sim stack and must stay
// host-blind; trees outside internal/ (cmd, tools) are not scanned as sim
// stack and are exempt by construction.
func hostSidePackage(rel string) bool {
	sub, ok := strings.CutPrefix(rel, "internal/")
	if !ok {
		return true
	}
	seg, _, _ := strings.Cut(sub, "/")
	switch seg {
	case "server", "journal", "faultpoint", "hostobs":
		return true
	}
	return false
}

// funcName renders a FuncDecl as Recv.Name for methods, Name otherwise —
// the stable identifier allowlist entries use.
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Unwrap generic receivers (Stream[R] -> Stream).
	switch v := t.(type) {
	case *ast.IndexExpr:
		t = v.X
	case *ast.IndexListExpr:
		t = v.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}
