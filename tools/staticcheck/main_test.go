package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module with the given files (paths
// relative to the module root) and returns the root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module example.com/m\n\ngo 1.24\n"
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func runOn(t *testing.T, root string) (int, string) {
	t.Helper()
	var out strings.Builder
	code, err := run(root, []string{"internal"}, "allow.txt", &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	return code, out.String()
}

// TestDetectsHazards covers each check class, including a hazard in a
// package that imports another module-local package (exercising the
// module-aware importer).
func TestDetectsHazards(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/util/util.go": `package util

// Table is a lookup other packages range over.
type Table map[string]int
`,
		"internal/engine/engine.go": `package engine

import (
	"math/rand"
	"time"

	"example.com/m/internal/util"
)

func Order(tb util.Table) []string {
	var out []string
	for k := range tb {
		out = append(out, k)
	}
	return out
}

func Stamp() int64 { return time.Now().UnixNano() }

func Jitter() int { return rand.Int() }

func Spawn(fn func()) { go fn() }
`,
	})
	code, out := runOn(t, root)
	if code != 1 {
		t.Fatalf("expected failure, got code %d:\n%s", code, out)
	}
	for _, want := range []string{
		"internal/engine/engine.go:12: map-range",
		"(in Order)",
		"wallclock: time.Now",
		"wallclock: math/rand",
		"go-stmt",
		"(in Spawn)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The util package itself defines the map type but never ranges over
	// one — it must stay clean.
	if strings.Contains(out, "util/util.go") {
		t.Errorf("false positive in util:\n%s", out)
	}
}

// TestAllowlistSuppresses confirms a justified entry silences its finding
// and the run passes.
func TestAllowlistSuppresses(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/agg/agg.go": `package agg

// Sum folds map values; addition commutes, so order cannot leak.
func Sum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
`,
		"allow.txt": "internal/agg/agg.go map-range Sum  # commutative fold, order-independent\n",
	})
	code, out := runOn(t, root)
	if code != 0 {
		t.Fatalf("allowlisted finding still fails (code %d):\n%s", code, out)
	}
	if !strings.Contains(out, "1 finding(s), all justified") {
		t.Fatalf("unexpected summary:\n%s", out)
	}
}

// TestStaleAllowlistEntryFails keeps the allowlist exact: an entry whose
// hazard no longer exists must fail the run.
func TestStaleAllowlistEntryFails(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/clean/clean.go": `package clean

func Nothing() {}
`,
		"allow.txt": "internal/clean/clean.go map-range Nothing  # was removed long ago\n",
	})
	code, out := runOn(t, root)
	if code != 1 {
		t.Fatalf("stale entry accepted (code %d):\n%s", code, out)
	}
	if !strings.Contains(out, "stale allowlist entry") {
		t.Fatalf("missing stale diagnostic:\n%s", out)
	}
}

// TestMethodAndGenericReceivers pins the allowlist key for methods
// (Recv.Name) and generic receivers (type parameters stripped).
func TestMethodAndGenericReceivers(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/g/g.go": `package g

type Box[T any] struct{ m map[string]T }

func (b *Box[T]) Keys() []string {
	var out []string
	for k := range b.m {
		out = append(out, k)
	}
	return out
}

type Plain struct{ m map[int]int }

func (p Plain) Walk() {
	for range p.m {
	}
}
`,
	})
	code, out := runOn(t, root)
	if code != 1 {
		t.Fatalf("expected failure, got %d:\n%s", code, out)
	}
	if !strings.Contains(out, "(in Box.Keys)") || !strings.Contains(out, "(in Plain.Walk)") {
		t.Fatalf("receiver names not normalized:\n%s", out)
	}
}

// TestHostImportRule pins the observability boundary: sim-stack packages
// under internal/ must not import log/slog or the module's
// internal/hostobs, while the daemon-side packages (server, journal,
// faultpoint, hostobs and their subpackages) may.
func TestHostImportRule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/hostobs/hostobs.go": `package hostobs

import "log/slog"

// L is the daemon-side logger; hostobs itself owns the slog dependency.
var L = slog.Default()

func Note(msg string) { L.Info(msg) }
`,
		"internal/engine/engine.go": `package engine

import (
	"log/slog"

	"example.com/m/internal/hostobs"
)

func Tick() {
	slog.Info("tick")
	hostobs.Note("tick")
}
`,
		"internal/server/server.go": `package server

import "example.com/m/internal/hostobs"

func Start() { hostobs.Note("up") }
`,
	})
	code, out := runOn(t, root)
	if code != 1 {
		t.Fatalf("expected failure, got code %d:\n%s", code, out)
	}
	for _, want := range []string{
		"internal/engine/engine.go:4: host-import: log/slog",
		"internal/engine/engine.go:6: host-import: internal/hostobs",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The daemon-side packages own these imports — no findings there.
	if strings.Contains(out, "hostobs/hostobs.go") || strings.Contains(out, "server/server.go") {
		t.Errorf("false positive in a host-side package:\n%s", out)
	}
}

// TestRepoIsClean runs the real gate over this repository: every hazard
// in internal/... must be justified in the committed allowlist. This is
// the same invariant `make staticcheck` enforces in CI.
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	code, err := run(root, []string{"internal"}, "tools/staticcheck/allowlist.txt", &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("repository has unjustified determinism hazards:\n%s", out.String())
	}
}
