// Command chaos is the crash-safety gate (make chaos). It proves the two
// headline robustness claims end-to-end, against real mpsocd processes:
//
//  1. Crash-resume: a daemon with a journal is crashed by an armed
//     faultpoint (exit 137 at the worst instant — right after a shard ack
//     becomes durable), restarted over the same journal, and the resumed
//     job's full output must be byte-identical to an uninterrupted
//     in-process run of the same spec.
//
//  2. Fleet failover: a coordinator fans a job across two backends, one
//     backend crashes mid-job (faultpoint in its shard executor), and the
//     coordinator's merged stream must still be byte-identical to a
//     single-node run.
//
// Both scenarios verify non-vacuity: the crashed process must actually
// have exited 137 with the faultpoint's stderr marker, so a refactor that
// silently stops arming faultpoints fails the gate instead of passing it
// hollowly.
//
// The gate also proves the host-observability post-mortem story against
// real processes: the crashed daemon must leave a flight-recorder dump
// next to its journal whose event ring contains the armed faultpoint,
// the restarted daemon must serve a pprof CPU profile on -debug-addr,
// and the coordinator's /hosttrace for the failed-over job must be one
// Chrome trace document holding spans from both the coordinator and the
// surviving backend. Dump, profile and trace are copied into
// build/chaos-artifacts for CI upload.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/server"
	"repro/internal/spec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "chaos: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("chaos: OK (crash-resume and fleet-failover streams byte-identical)")
}

// artifactsDir receives the post-mortem evidence (flight dump, pprof
// profile, cross-node host trace) for CI to upload.
const artifactsDir = "build/chaos-artifacts"

func run() error {
	tmp, err := os.MkdirTemp("", "mpsocd-chaos-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	if err := os.MkdirAll(artifactsDir, 0o755); err != nil {
		return err
	}

	bin := filepath.Join(tmp, "mpsocd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/mpsocd")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building mpsocd: %w", err)
	}

	if err := crashResume(tmp, bin); err != nil {
		return fmt.Errorf("crash-resume: %w", err)
	}
	if err := fleetFailover(tmp, bin); err != nil {
		return fmt.Errorf("fleet-failover: %w", err)
	}
	return nil
}

// campaignSpec is the shared workload: 8 campaign runs, enough for the
// crash faultpoint to fire mid-job with work left to resume.
func campaignSpec() ([]byte, error) {
	return spec.NewCampaign(spec.CampaignSpec{
		Scenarios:   []string{"tamper", "zone-escape"},
		Protections: []string{"unprotected", "distributed"},
		Cores:       []int{3},
		Backgrounds: []string{"none", "stream"},
		Accesses:    8,
		InjectDelay: 50,
		MaxCycles:   300_000,
	}).JSON()
}

func sweepSpec() ([]byte, error) {
	return spec.NewSweep(spec.SweepSpec{
		Protections: []string{"unprotected", "distributed"},
		Workloads:   []string{"stream", "memcopy", "scrub"},
		Targets:     []string{"internal", "external"},
		Cores:       []int{1, 2},
		Accesses:    8,
		MaxCycles:   100_000,
	}).JSON()
}

// reference computes the uninterrupted stream in-process — the bytes every
// crashed-and-recovered path must reproduce exactly.
func reference(body []byte) ([]byte, error) {
	svc := server.New(server.Config{Workers: 2})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	st, err := submit(ts.URL, body, "")
	if err != nil {
		return nil, err
	}
	return get(ts.URL + st.StreamURL)
}

func crashResume(tmp, bin string) error {
	body, err := campaignSpec()
	if err != nil {
		return err
	}
	want, err := reference(body)
	if err != nil {
		return err
	}

	jdir := filepath.Join(tmp, "journal")
	addr := freeAddr()

	// Life 1: armed to crash right after the 5th shard ack is durable —
	// the worst instant, since the daemon dies between committing work and
	// using it.
	d1 := daemon(bin, []string{"-addr", addr, "-workers", "2", "-journal", jdir},
		"MPSOCD_FAULTPOINTS=journal.ack=crash@5")
	if err := d1.start(); err != nil {
		return err
	}
	defer d1.kill()
	if err := waitHealthy(addr); err != nil {
		return err
	}
	// aggregate mode: the job runs detached, so the daemon crashes on its
	// own schedule and the restarted daemon auto-resumes it on boot.
	st, err := submit("http://"+addr, body, "?mode=aggregate")
	if err != nil {
		return err
	}
	code, stderr := d1.wait(30 * time.Second)
	if code != 137 {
		return fmt.Errorf("daemon exit code %d, want 137 (did the faultpoint fire?)\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "faultpoint: crash at journal.ack") {
		return fmt.Errorf("no faultpoint crash marker on stderr — the gate is vacuous\nstderr: %s", stderr)
	}
	// The dying process's last act: a flight-recorder dump next to the
	// journal, with the armed faultpoint in its event ring — the readable
	// post-mortem the runbook walks through.
	if err := checkFlightDump(jdir); err != nil {
		return err
	}

	// Life 2: same journal, no faultpoints, debug listener up so the gate
	// can prove the pprof surface works on a real resumed daemon.
	dbgAddr := freeAddr()
	d2 := daemon(bin, []string{"-addr", addr, "-workers", "2", "-journal", jdir,
		"-debug-addr", dbgAddr}, "")
	if err := d2.start(); err != nil {
		return err
	}
	defer d2.kill()
	if err := waitHealthy(addr); err != nil {
		return err
	}
	if err := waitState("http://"+addr, st.ID, "done", 60*time.Second); err != nil {
		return err
	}
	got, err := get("http://" + addr + st.StreamURL)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("resumed stream differs from uninterrupted run (%d vs %d bytes)", len(got), len(want))
	}
	metrics, err := get("http://" + addr + "/metrics?format=prometheus")
	if err != nil {
		return err
	}
	if !strings.Contains(string(metrics), "mpsocd_journal_jobs_resumed_total 1") {
		return fmt.Errorf("journal resume not recorded in metrics — recovery path is vacuous")
	}
	// A short CPU profile off the debug listener: proves -debug-addr wires
	// net/http/pprof on a live daemon, and gives CI a profile artifact.
	profile, err := get("http://" + dbgAddr + "/debug/pprof/profile?seconds=1")
	if err != nil {
		return fmt.Errorf("pprof profile from -debug-addr: %w", err)
	}
	if len(profile) == 0 {
		return fmt.Errorf("pprof CPU profile is empty")
	}
	if err := os.WriteFile(filepath.Join(artifactsDir, "resume-cpu.pprof"), profile, 0o644); err != nil {
		return err
	}
	d2.terminate()
	return nil
}

// checkFlightDump asserts the crashed daemon dumped its flight recorder
// into the journal directory and that the dump's event ring holds the
// armed faultpoint, then copies it into the artifacts directory.
func checkFlightDump(jdir string) error {
	dumps, err := filepath.Glob(filepath.Join(jdir, "flight-*.json"))
	if err != nil {
		return err
	}
	if len(dumps) != 1 {
		return fmt.Errorf("found %d flight dumps in %s, want exactly 1 from the crashed life", len(dumps), jdir)
	}
	data, err := os.ReadFile(dumps[0])
	if err != nil {
		return err
	}
	var dump struct {
		Node   string `json:"node"`
		PID    int    `json:"pid"`
		Events []struct {
			Msg string `json:"msg"`
			Err string `json:"err"`
		} `json:"events"`
	}
	if err := json.Unmarshal(data, &dump); err != nil {
		return fmt.Errorf("flight dump %s is not valid JSON: %w", dumps[0], err)
	}
	found := false
	for _, e := range dump.Events {
		if e.Msg == "faultpoint crash" && e.Err == "journal.ack" {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("flight dump %s lacks the faultpoint-crash event for journal.ack — post-mortem is vacuous", dumps[0])
	}
	return os.WriteFile(filepath.Join(artifactsDir, filepath.Base(dumps[0])), data, 0o644)
}

func fleetFailover(tmp, bin string) error {
	body, err := sweepSpec()
	if err != nil {
		return err
	}
	want, err := reference(body)
	if err != nil {
		return err
	}

	addrA, addrB, addrC := freeAddr(), freeAddr(), freeAddr()
	a := daemon(bin, []string{"-addr", addrA, "-workers", "2"}, "")
	// Backend B crashes on its 4th shard execution — mid-job, after its
	// stream is live.
	b := daemon(bin, []string{"-addr", addrB, "-workers", "2"},
		"MPSOCD_FAULTPOINTS=server.shard=crash@4")
	coord := daemon(bin, []string{"-addr", addrC, "-coordinator",
		"-backends", "http://" + addrA + ",http://" + addrB}, "")
	for _, d := range []*proc{a, b, coord} {
		if err := d.start(); err != nil {
			return err
		}
		defer d.kill()
	}
	for _, addr := range []string{addrA, addrB, addrC} {
		if err := waitHealthy(addr); err != nil {
			return err
		}
	}

	st, err := submit("http://"+addrC, body, "")
	if err != nil {
		return err
	}
	got, err := get("http://" + addrC + st.StreamURL)
	if err != nil {
		return err
	}
	code, stderr := b.wait(30 * time.Second)
	if code != 137 || !strings.Contains(stderr, "faultpoint: crash at server.shard") {
		return fmt.Errorf("backend B exit %d, want 137 with crash marker — failover was vacuous\nstderr: %s", code, stderr)
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("fleet-merged stream differs from single-node run (%d vs %d bytes)", len(got), len(want))
	}
	metrics, err := get("http://" + addrC + "/metrics?format=prometheus")
	if err != nil {
		return err
	}
	if !strings.Contains(string(metrics), "mpsocd_coordinator_failovers_total") ||
		strings.Contains(string(metrics), "mpsocd_coordinator_failovers_total 0\n") &&
			strings.Contains(string(metrics), "mpsocd_coordinator_retries_total 0\n") {
		return fmt.Errorf("no failover or dispatch retry recorded:\n%s", metrics)
	}
	// Cross-node host trace: the coordinator assembles ONE Chrome trace
	// document for the job from its own spans plus the surviving backend's
	// (the dead backend is skipped, not fatal). It must actually span two
	// processes and contain the failover evidence.
	if err := checkHostTrace("http://"+addrC, st.ID); err != nil {
		return err
	}
	a.terminate()
	coord.terminate()
	return nil
}

// checkHostTrace fetches the coordinator's merged host trace for the job
// and asserts it is non-vacuous: spans from at least two nodes (the
// coordinator and the surviving backend) and the failover + execute span
// names present. The document is saved as a CI artifact.
func checkHostTrace(base, jobID string) error {
	doc, err := get(base + "/api/v1/jobs/" + jobID + "/hosttrace")
	if err != nil {
		return fmt.Errorf("hosttrace: %w", err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(doc, &parsed); err != nil {
		return fmt.Errorf("hosttrace is not valid trace_event JSON: %w", err)
	}
	pids := map[int]bool{}
	spans := map[string]bool{}
	for _, e := range parsed.TraceEvents {
		pids[e.Pid] = true
		if e.Ph == "X" {
			spans[e.Name] = true
		}
	}
	if len(pids) < 2 {
		return fmt.Errorf("hosttrace covers %d process(es), want spans from both coordinator and surviving backend", len(pids))
	}
	for _, name := range []string{"failover", "execute"} {
		if !spans[name] {
			return fmt.Errorf("hosttrace lacks a %q span — cross-node trace is vacuous (have %v)", name, spans)
		}
	}
	return os.WriteFile(filepath.Join(artifactsDir, "failover-hosttrace.json"), doc, 0o644)
}

// --- process and HTTP plumbing ---

type proc struct {
	cmd    *exec.Cmd
	stderr bytes.Buffer
	done   chan error
}

func daemon(bin string, args []string, extraEnv string) *proc {
	cmd := exec.Command(bin, args...)
	cmd.Env = os.Environ()
	if extraEnv != "" {
		cmd.Env = append(cmd.Env, extraEnv)
	}
	return &proc{cmd: cmd, done: make(chan error, 1)}
}

func (p *proc) start() error {
	p.cmd.Stderr = &p.stderr
	if err := p.cmd.Start(); err != nil {
		return err
	}
	go func() { p.done <- p.cmd.Wait() }()
	return nil
}

// wait blocks until the process exits and returns its exit code + stderr.
func (p *proc) wait(timeout time.Duration) (int, string) {
	select {
	case <-p.done:
		return p.cmd.ProcessState.ExitCode(), p.stderr.String()
	case <-time.After(timeout):
		return -1, p.stderr.String() + "\n(timed out waiting for exit)"
	}
}

func (p *proc) terminate() {
	p.cmd.Process.Signal(os.Interrupt)
	p.wait(15 * time.Second)
}

func (p *proc) kill() {
	if p.cmd.ProcessState == nil {
		p.cmd.Process.Kill()
	}
}

func freeAddr() string {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer l.Close()
	return l.Addr().String()
}

func waitHealthy(addr string) error {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("daemon at %s never became healthy", addr)
}

func submit(base string, body []byte, query string) (server.Status, error) {
	var st server.Status
	resp, err := http.Post(base+"/api/v1/jobs"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(resp.Body)
		return st, fmt.Errorf("submit: status %d: %s", resp.StatusCode, msg)
	}
	return st, decode(resp.Body, &st)
}

func waitState(base, id, want string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var st server.Status
		resp, err := http.Get(base + "/api/v1/jobs/" + id)
		if err == nil {
			err = decode(resp.Body, &st)
			resp.Body.Close()
		}
		if err == nil && st.State == want {
			return nil
		}
		if err == nil && (st.State == "failed" || st.State == "canceled") {
			return fmt.Errorf("job %s ended %s (%s), want %s", id, st.State, st.Error, want)
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("job %s never reached %s", id, want)
}

func get(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, msg)
	}
	return io.ReadAll(resp.Body)
}

func decode(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}
