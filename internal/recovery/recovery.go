// Package recovery is the incident-lifecycle engine: it drives a platform
// through the third phase of an attack campaign — after inject and detect
// comes *react and recover* — and prices every leg of the incident.
//
// The paper's stated future work is "reconfiguration of security services
// (i.e. modification of security policies) to counter some attacks".
// internal/core's Reactor implements the reconfiguration itself (deny-all
// quarantine of a misbehaving master, reversible via Release); this
// package adds the two things a reconfiguration claim needs to be
// measurable:
//
//   - A deterministic supervisor model (Supervisor): after a configurable
//     clear-delay it releases the quarantined master, either in one step
//     or staged — first re-admitting only the integrity-monitored memory
//     zones (where any further misbehaviour is provable), with a single
//     probation violation slamming the door again, then restoring the
//     full policy after a stage delay. Every action is an engine event at
//     a deterministic cycle, so campaign streams stay byte-identical
//     across workers and shards.
//
//   - A lockstep throughput meter (Measure): the attacked platform and
//     its attack-free twin advance through fixed sampling windows, and
//     the background cores' instruction rate per window — normalized to
//     the twin's steady-state rate — yields a timeline of bystander cost
//     around inject, quarantine and release. A run has *recovered* when,
//     after the release, a window's rate is back within epsilon of the
//     twin's.
//
// Together with the Reactor's cycle stamps this turns each campaign
// record into a full incident bill: detect latency (inject → first
// alert), react latency (first alert → deny-all written), quarantine
// duration, bystander cost while quarantined, and recovery time back to
// twin throughput.
package recovery

import (
	"repro/internal/core"
	"repro/internal/soc"
)

// Default supervisor/meter parameters, applied by Normalize.
const (
	DefaultClearDelay   = 4000
	DefaultStageDelay   = 1000
	DefaultSampleWindow = 250
	DefaultEpsilon      = 0.1
	DefaultThreshold    = 3
)

// Params configures the reaction-and-recovery phase of a run: the
// quarantine trigger (wired into soc.Config), the supervisor's release
// schedule, and the throughput meter.
type Params struct {
	// QuarantineThreshold is the violation count that trips quarantine;
	// zero disables the whole phase (the zero Params value means "off").
	QuarantineThreshold int `json:"quarantine_threshold"`
	// QuarantineWindow is the reactor's sliding alert window in cycles
	// (0 = ever).
	QuarantineWindow uint64 `json:"quarantine_window,omitempty"`
	// ClearDelay is how many cycles after a quarantine the supervisor
	// clears the incident and begins re-admission.
	ClearDelay uint64 `json:"clear_delay"`
	// Staged selects two-step re-admission: integrity-monitored zones
	// first (probation), full policy StageDelay later.
	Staged bool `json:"staged,omitempty"`
	// StageDelay is the probation length before the full restore.
	StageDelay uint64 `json:"stage_delay,omitempty"`
	// SampleWindow is the throughput sampling window in cycles.
	SampleWindow uint64 `json:"sample_window"`
	// Epsilon is the recovery tolerance: a post-release window whose
	// background rate is at least (1-Epsilon) of the twin's steady-state
	// rate counts as recovered.
	Epsilon float64 `json:"epsilon"`
}

// Enabled reports whether the reaction-and-recovery phase is on.
func (p Params) Enabled() bool { return p.QuarantineThreshold > 0 }

// Normalize fills defaulted fields in place and returns the params.
// A disabled Params stays disabled.
func (p Params) Normalize() Params {
	if !p.Enabled() {
		return p
	}
	if p.ClearDelay == 0 {
		p.ClearDelay = DefaultClearDelay
	}
	if p.StageDelay == 0 {
		p.StageDelay = DefaultStageDelay
	}
	if p.SampleWindow == 0 {
		p.SampleWindow = DefaultSampleWindow
	}
	if p.Epsilon == 0 {
		p.Epsilon = DefaultEpsilon
	}
	return p
}

// IMZoneOnly is the default staged-re-admission filter: it admits the
// policies whose zones overlap the integrity-monitored (CM+IM) external
// memory region — the one place a re-admitted master cannot cheat
// undetected, since every read is verified against the on-chip tree root.
func IMZoneOnly(p core.Policy) bool {
	return p.Zone.Overlaps(core.Zone{Base: soc.SecureBase, Size: soc.SecureSize})
}

// Supervisor is the deterministic incident-response model: it subscribes
// to the platform reactor's quarantine notifications and schedules the
// release(s) as engine events. All state is per-platform and all actions
// fire at cycles fully determined by the quarantine cycle and the Params,
// so runs remain reproducible.
type Supervisor struct {
	Params

	// StageAllow filters the policies restored by a staged release
	// (default IMZoneOnly).
	StageAllow func(core.Policy) bool

	// Releases counts completed full releases; StagedReleases counts
	// stage-1 (probation) restores.
	Releases       uint64
	StagedReleases uint64
	// Err records the first release error (impossible with well-formed
	// policies; surfaced rather than swallowed).
	Err error

	sys *soc.System
	gen map[string]uint64 // per-master quarantine generation, to drop stale events
}

// Attach wires a supervisor to the platform. On platforms without a
// reactor (no quarantine threshold, or a non-distributed architecture) it
// attaches nothing and the supervisor never acts — which is exactly the
// centralized baseline's story: detection without reaction.
func Attach(s *soc.System, p Params) *Supervisor {
	sup := &Supervisor{
		Params:     p.Normalize(),
		StageAllow: IMZoneOnly,
		sys:        s,
		gen:        make(map[string]uint64),
	}
	if s.Reactor != nil {
		s.Reactor.OnQuarantine = sup.onQuarantine
	}
	return sup
}

// onQuarantine runs synchronously when the reactor writes a deny-all
// policy — on the initial threshold trip and on every probation
// re-quarantine. Each trigger advances the master's generation so release
// events scheduled for superseded incidents turn into no-ops.
func (sup *Supervisor) onQuarantine(master string, cycle uint64) {
	sup.gen[master]++
	g := sup.gen[master]
	sup.sys.Eng.ScheduleAt(cycle+sup.ClearDelay, func(now uint64) {
		sup.clear(master, g, now)
	})
}

// clear is the supervisor's incident-cleared action: full release, or
// stage 1 of the staged form.
func (sup *Supervisor) clear(master string, g uint64, now uint64) {
	r := sup.sys.Reactor
	if sup.gen[master] != g || !r.Quarantined(master) {
		return // superseded by a re-quarantine, or already released
	}
	if !sup.Staged {
		sup.finish(master, g)
		return
	}
	if err := r.ReleaseStaged(master, sup.StageAllow); err != nil {
		sup.fail(err)
		return
	}
	sup.StagedReleases++
	sup.sys.Eng.ScheduleAt(now+sup.StageDelay, func(uint64) {
		if sup.gen[master] != g || !r.Probation(master) {
			return // probation violated: a re-quarantine took over
		}
		sup.finish(master, g)
	})
}

// finish restores the full policy.
func (sup *Supervisor) finish(master string, g uint64) {
	if sup.gen[master] != g {
		return
	}
	if err := sup.sys.Reactor.Release(master); err != nil {
		sup.fail(err)
		return
	}
	sup.Releases++
}

func (sup *Supervisor) fail(err error) {
	if sup.Err == nil {
		sup.Err = err
	}
}
