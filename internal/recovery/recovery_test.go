package recovery_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/recovery"
	"repro/internal/soc"
	"repro/internal/workload"
)

// rogue returns a hijacked-core program issuing n illegal stores (to the
// tree-node region, outside every core's policy) and then halting.
func rogue(n int) string {
	return workload.IllegalStores(soc.NodeBase, n)
}

// buildQuarantined boots a distributed platform with the given reactor
// budget, attaches a supervisor, hijacks core 1 with n illegal stores and
// runs until the attacker halts plus slack cycles.
func buildQuarantined(t *testing.T, p recovery.Params, n int, slack uint64) (*soc.System, *recovery.Supervisor) {
	t.Helper()
	s := soc.MustNew(soc.Config{
		Protection:          soc.Distributed,
		QuarantineThreshold: p.QuarantineThreshold,
		QuarantineWindow:    p.QuarantineWindow,
	})
	sup := recovery.Attach(s, p)
	s.HaltIdleCores()
	if err := s.Load(1, rogue(n)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.RunUntilCores(1_000_000, 1); !ok {
		t.Fatal("attacker did not drain")
	}
	s.Eng.Run(slack)
	if sup.Err != nil {
		t.Fatalf("supervisor error: %v", sup.Err)
	}
	return s, sup
}

func TestSupervisorReleasesAfterClearDelay(t *testing.T) {
	p := recovery.Params{QuarantineThreshold: 2, ClearDelay: 300}
	s, sup := buildQuarantined(t, p, 3, 2_000)
	st := s.Reactor.RecoverySnapshot()
	if len(st) != 1 {
		t.Fatalf("%d incidents, want 1", len(st))
	}
	q := st[0]
	if q.Master != "cpu1" || q.QuarantinedAt == 0 {
		t.Fatalf("bad stamp %+v", q)
	}
	if q.ReleasedAt != q.QuarantinedAt+300 {
		t.Fatalf("released at %d, want quarantine %d + clear delay 300", q.ReleasedAt, q.QuarantinedAt)
	}
	if q.StagedAt != 0 || sup.StagedReleases != 0 {
		t.Fatal("one-step supervisor staged a release")
	}
	if sup.Releases != 1 || s.Reactor.Quarantined("cpu1") {
		t.Fatalf("releases=%d quarantined=%v", sup.Releases, s.Reactor.Quarantined("cpu1"))
	}
	// The restored policy is the full pre-incident rule set.
	if got, want := s.CoreFWs[1].Config().RuleCount(), s.CoreFWs[0].Config().RuleCount(); got != want {
		t.Fatalf("restored rule count %d, want %d", got, want)
	}
}

func TestSupervisorStagedReadmission(t *testing.T) {
	p := recovery.Params{QuarantineThreshold: 2, ClearDelay: 400, Staged: true, StageDelay: 200}
	// Attacker commits exactly the threshold violations and halts: the
	// probation window stays clean and the full restore lands on schedule.
	s, sup := buildQuarantined(t, p, 2, 3_000)
	st := s.Reactor.RecoverySnapshot()
	if len(st) != 1 {
		t.Fatalf("%d incidents, want 1", len(st))
	}
	q := st[0]
	if q.StagedAt != q.QuarantinedAt+400 {
		t.Fatalf("staged at %d, want %d", q.StagedAt, q.QuarantinedAt+400)
	}
	if q.ReleasedAt != q.StagedAt+200 {
		t.Fatalf("released at %d, want %d", q.ReleasedAt, q.StagedAt+200)
	}
	if sup.StagedReleases != 1 || sup.Releases != 1 {
		t.Fatalf("staged=%d full=%d", sup.StagedReleases, sup.Releases)
	}
	if s.Reactor.Quarantined("cpu1") || s.Reactor.Probation("cpu1") {
		t.Fatal("incident not closed")
	}
	if got, want := s.CoreFWs[1].Config().RuleCount(), s.CoreFWs[0].Config().RuleCount(); got != want {
		t.Fatalf("restored rule count %d, want %d", got, want)
	}
}

func TestSupervisorProbationViolationReQuarantines(t *testing.T) {
	// A short clear-delay re-admits the attacker mid-burst: the first
	// probation violation must re-quarantine it, and the supervisor must
	// keep retrying until the burst drains and a clean release sticks.
	p := recovery.Params{QuarantineThreshold: 2, ClearDelay: 120, Staged: true, StageDelay: 120}
	s, sup := buildQuarantined(t, p, 40, 5_000)
	if s.Reactor.Quarantines < 2 {
		t.Fatalf("Quarantines = %d, want a probation re-quarantine", s.Reactor.Quarantines)
	}
	if s.Reactor.Quarantined("cpu1") || s.Reactor.Probation("cpu1") {
		t.Fatal("incident never cleanly closed")
	}
	if sup.Releases != 1 {
		t.Fatalf("full releases = %d, want exactly 1", sup.Releases)
	}
	// One continuous incident despite the flapping: a single stamp whose
	// release is the final, clean one.
	st := s.Reactor.RecoverySnapshot()
	if len(st) != 1 || st[0].ReleasedAt == 0 {
		t.Fatalf("stamps: %+v", st)
	}
}

// TestIMZoneOnlyFilter pins the staged filter to the platform's
// integrity-monitored zone.
func TestIMZoneOnlyFilter(t *testing.T) {
	in := core.Policy{Zone: core.Zone{Base: soc.SecureBase, Size: 0x100}}
	out := core.Policy{Zone: core.Zone{Base: soc.BRAMBase, Size: 0x100}}
	if !recovery.IMZoneOnly(in) || recovery.IMZoneOnly(out) {
		t.Fatal("IMZoneOnly misclassifies zones")
	}
}

// measureRig boots a twin pair with background streaming on core 0 and a
// finite burst attacker on core 1 of the attacked half, then runs Measure.
func measureRig(t *testing.T, prot soc.Protection, p recovery.Params) recovery.Report {
	t.Helper()
	pair, err := soc.NewPair(soc.Config{
		Protection:          prot,
		QuarantineThreshold: p.QuarantineThreshold,
		QuarantineWindow:    p.QuarantineWindow,
	})
	if err != nil {
		t.Fatal(err)
	}
	sup := recovery.Attach(pair.Attacked, p)
	bg := []int{0}
	if err := pair.Both(func(s *soc.System) error {
		s.HaltIdleCores()
		return s.Load(0, workload.Stream(soc.BRAMBase+0x4000, 1500, 4, 0))
	}); err != nil {
		t.Fatal(err)
	}
	inject := pair.Attacked.Eng.Now() + 100
	pair.Attacked.RunToCycle(inject)
	pair.Twin.RunToCycle(inject)
	if err := pair.Attacked.Load(1,
		workload.BurstFlood(soc.NodeBase, soc.BRAMBase+0x3800, 20, 8, 16)); err != nil {
		t.Fatal(err)
	}
	rep := recovery.Measure(pair, bg, 1_000_000, p)
	if sup.Err != nil {
		t.Fatalf("supervisor error: %v", sup.Err)
	}
	return rep
}

func TestMeasureFullLifecycleDistributed(t *testing.T) {
	p := recovery.Params{QuarantineThreshold: 3, ClearDelay: 3000, SampleWindow: 200, Epsilon: 0.1}
	rep := measureRig(t, soc.Distributed, p)
	if !rep.Completed || rep.TwinRate == 0 || len(rep.Windows) == 0 {
		t.Fatalf("measurement incomplete: %+v", rep)
	}
	if rep.QuarantineCycle == 0 {
		t.Fatal("burst never quarantined")
	}
	if rep.ReleaseCycle <= rep.QuarantineCycle {
		t.Fatalf("release %d not after quarantine %d", rep.ReleaseCycle, rep.QuarantineCycle)
	}
	if rep.QuarantinedCycles == 0 {
		t.Fatal("no quarantined cycles accounted")
	}
	if !rep.Recovered {
		t.Fatalf("background did not recover: %+v", rep)
	}
	if rep.RecoveryCycles == 0 || rep.RecoveryCycles > 10*p.SampleWindow {
		t.Fatalf("recovery took %d cycles", rep.RecoveryCycles)
	}
	// The sampled timeline must actually show the wound: some window
	// before the release ran visibly below the twin rate.
	dipped := false
	for _, w := range rep.Windows {
		if w.End <= rep.QuarantineCycle+p.SampleWindow && w.Ratio < 0.95 {
			dipped = true
			break
		}
	}
	if !dipped {
		t.Fatalf("no bystander dip before quarantine: %+v", rep.Windows)
	}
}

func TestMeasureNoReactionBaselines(t *testing.T) {
	p := recovery.Params{QuarantineThreshold: 3, ClearDelay: 3000, SampleWindow: 200}
	for _, prot := range []soc.Protection{soc.Unprotected, soc.Centralized} {
		rep := measureRig(t, prot, p)
		if rep.QuarantineCycle != 0 || rep.Quarantines != 0 || rep.Recovered {
			t.Fatalf("%v: phantom reaction: %+v", prot, rep)
		}
		if !rep.Completed || rep.TwinRate == 0 {
			t.Fatalf("%v: measurement incomplete: %+v", prot, rep)
		}
	}
}

// TestMeasureDoesNotPerturbCycles: windowed stepping must reproduce the
// exact background durations a single-run harness measures — the meter
// observes, never interferes.
func TestMeasureDoesNotPerturbCycles(t *testing.T) {
	run := func(windowed bool) (uint64, uint64) {
		pair, err := soc.NewPair(soc.Config{Protection: soc.Distributed})
		if err != nil {
			t.Fatal(err)
		}
		bg := []int{0}
		if err := pair.Both(func(s *soc.System) error {
			s.HaltIdleCores()
			return s.Load(0, workload.Stream(soc.BRAMBase+0x4000, 400, 4, 0))
		}); err != nil {
			t.Fatal(err)
		}
		inject := pair.Attacked.Eng.Now() + 50
		pair.Attacked.RunToCycle(inject)
		pair.Twin.RunToCycle(inject)
		if err := pair.Attacked.Load(1,
			workload.BurstFlood(soc.NodeBase, soc.BRAMBase+0x3800, 10, 4, 8)); err != nil {
			t.Fatal(err)
		}
		if windowed {
			recovery.Measure(pair, bg, 500_000, recovery.Params{SampleWindow: 64})
		} else {
			pair.Attacked.RunUntilCores(500_000, bg...)
			pair.Twin.RunUntilCores(500_000, bg...)
		}
		return pair.Attacked.Eng.Now(), pair.Twin.Eng.Now()
	}
	a1, t1 := run(false)
	a2, t2 := run(true)
	if a1 != a2 || t1 != t2 {
		t.Fatalf("windowed stepping changed results: %d/%d vs %d/%d", a1, t1, a2, t2)
	}
}

// TestMeasureRecoveryAtBackgroundTail: a release landing with less than
// one full sampling window of background left must still count as
// recovered — the halt window is rated over its pre-halt span, not
// diluted by the idle remainder.
func TestMeasureRecoveryAtBackgroundTail(t *testing.T) {
	pair, err := soc.NewPair(soc.Config{Protection: soc.Distributed, QuarantineThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Clear delay tuned so the release lands shortly before the 400-word
	// background drains; the huge sample window guarantees the only
	// post-release boundary lies past the background's halt.
	p := recovery.Params{QuarantineThreshold: 2, ClearDelay: 4000, SampleWindow: 4000}
	recovery.Attach(pair.Attacked, p)
	bg := []int{0}
	if err := pair.Both(func(s *soc.System) error {
		s.HaltIdleCores()
		return s.Load(0, workload.Stream(soc.BRAMBase+0x4000, 400, 4, 0))
	}); err != nil {
		t.Fatal(err)
	}
	inject := pair.Attacked.Eng.Now() + 100
	pair.Attacked.RunToCycle(inject)
	pair.Twin.RunToCycle(inject)
	if err := pair.Attacked.Load(1, rogue(2)); err != nil { // quarantines, then halts
		t.Fatal(err)
	}
	rep := recovery.Measure(pair, bg, 1_000_000, p)
	if !rep.Completed || rep.ReleaseCycle == 0 {
		t.Fatalf("lifecycle incomplete: %+v", rep)
	}
	last := rep.Windows[len(rep.Windows)-1]
	if last.End <= rep.ReleaseCycle {
		t.Fatalf("test premise broken: last window %d not past release %d", last.End, rep.ReleaseCycle)
	}
	if !rep.Recovered {
		t.Fatalf("tail-window recovery denied: %+v", rep)
	}
}
