package recovery

import "repro/internal/soc"

// Sample is one throughput-sampling window of the measured run: how many
// instructions the background cores retired on the attacked platform and
// on its attack-free twin during (prevEnd, End], and the attacked rate
// normalized to the twin's steady-state rate. The timeline of samples is
// what the mpsocd dashboard and the -trace counter track draw around the
// inject/quarantine/release markers.
type Sample struct {
	// End is the window's closing cycle (absolute).
	End uint64 `json:"end"`
	// Attacked and Twin are background instructions retired in the window.
	Attacked uint64 `json:"attacked"`
	Twin     uint64 `json:"twin"`
	// Ratio is the attacked window rate over the twin's steady-state rate
	// (1.0 = unharmed). The window the attacked background halts in is
	// rated over the pre-halt span only, and windows entirely past the
	// halt read zero.
	Ratio float64 `json:"ratio"`
}

// Report is the incident bill of one measured run.
type Report struct {
	// QuarantineCycle is when the first deny-all policy was written (0 if
	// the platform never quarantined). ReactLatency is the distance from
	// the first violation counted against the quarantined master to that
	// write — the time-to-quarantine leg of the lifecycle.
	QuarantineCycle uint64
	ReactLatency    uint64
	// ReleaseCycle is the last full policy restore (0 while quarantined).
	// QuarantinedCycles totals the cycles any master spent locked out
	// (staged probation included: the incident is open until the full
	// restore).
	ReleaseCycle      uint64
	QuarantinedCycles uint64
	// Recovered reports that some post-release window's background rate
	// was within epsilon of the twin's; RecoveryCycles is the distance
	// from the release to the end of the first such window.
	Recovered      bool
	RecoveryCycles uint64
	// Quarantines counts trigger events, probation re-quarantines
	// included.
	Quarantines uint64
	// TwinRate is the attack-free twin's background instruction rate
	// (instructions per cycle) over its whole measured window — the
	// normalization baseline.
	TwinRate float64
	// Windows is the sampled timeline.
	Windows []Sample
	// Completed reports that the background finished on both halves
	// within the cycle budget.
	Completed bool
}

// bgInstr sums retired instructions across the background cores.
func bgInstr(s *soc.System, bg []int) uint64 {
	var t uint64
	for _, i := range bg {
		t += s.Cores[i].Stats().Instructions
	}
	return t
}

// Summarize harvests the reactor's quarantine stamps into the stamp-only
// Report fields: quarantine/release cycles, react latency, total
// quarantined cycles (open incidents count up to the platform's current
// cycle) and the trigger count. Platforms without a reactor yield a zero
// report — the "no reaction" baseline.
func Summarize(s *soc.System) Report {
	var rep Report
	r := s.Reactor
	if r == nil {
		return rep
	}
	rep.Quarantines = r.Quarantines
	stamps := r.RecoverySnapshot()
	if len(stamps) == 0 {
		return rep
	}
	first := stamps[0]
	rep.QuarantineCycle = first.QuarantinedAt
	rep.ReactLatency = first.QuarantinedAt - first.FirstAlert
	for _, st := range stamps {
		end := st.ReleasedAt
		if end == 0 {
			end = s.Eng.Now() // still locked out at measurement end
		}
		if end > st.QuarantinedAt {
			rep.QuarantinedCycles += end - st.QuarantinedAt
		}
		if st.ReleasedAt > rep.ReleaseCycle {
			rep.ReleaseCycle = st.ReleasedAt
		}
	}
	return rep
}

// Measure runs the post-injection phase of a twin pair in lockstep
// sampling windows and returns the full incident bill. Preconditions: both
// halves stand at the injection cycle, the attack is injected on
// pair.Attacked, and bg lists the cores carrying background load. max
// bounds the additional cycles on each half.
//
// Windowed stepping never changes simulation results — RunToCycleOrHalted
// stops each half at exactly the cycle a single RunUntilCores call would
// have — it only adds counter observations at the window boundaries, so
// enabling the meter leaves cycle accounting untouched.
func Measure(pair *soc.Pair, bg []int, max uint64, p Params) Report {
	p = p.Normalize()
	w := p.SampleWindow
	if w == 0 {
		w = DefaultSampleWindow
	}
	atk, twin := pair.Attacked, pair.Twin
	start := atk.Eng.Now()
	deadline := start + max

	instrT0 := bgInstr(twin, bg)
	prevA, prevT := bgInstr(atk, bg), instrT0
	aDone, tDone := atk.CoresHalted(bg...), twin.CoresHalted(bg...)
	twinEnd, atkEnd := deadline, deadline
	var windows []Sample
	for now := start; now < deadline && !(aDone && tDone); {
		boundary := now + w
		if boundary > deadline {
			boundary = deadline
		}
		if !aDone {
			if aDone = atk.RunToCycleOrHalted(boundary, bg...); aDone {
				atkEnd = atk.Eng.Now()
			}
		}
		if !tDone {
			if tDone = twin.RunToCycleOrHalted(boundary, bg...); tDone {
				twinEnd = twin.Eng.Now()
			}
		}
		curA, curT := bgInstr(atk, bg), bgInstr(twin, bg)
		windows = append(windows, Sample{End: boundary, Attacked: curA - prevA, Twin: curT - prevT})
		prevA, prevT = curA, curT
		now = boundary
	}

	rep := Summarize(atk)
	rep.Windows = windows
	rep.Completed = aDone && tDone
	if twinEnd > start {
		rep.TwinRate = float64(prevT-instrT0) / float64(twinEnd-start)
	}
	// A window's rate divides by the span the attacked background was
	// actually runnable: the window it halts in is clamped to the halt
	// cycle, so a background that finishes at full speed right after the
	// release is not misread as degraded (and recovered falsely denied)
	// just because the halt landed mid-window.
	wprev := start
	for i := range rep.Windows {
		s := &rep.Windows[i]
		span := s.End - wprev
		if atkEnd < s.End && atkEnd > wprev {
			span = atkEnd - wprev
		} else if atkEnd <= wprev {
			span = 0
		}
		wprev = s.End
		if span > 0 && rep.TwinRate > 0 {
			s.Ratio = float64(s.Attacked) / float64(span) / rep.TwinRate
		}
	}
	if rep.ReleaseCycle > 0 {
		for _, s := range rep.Windows {
			if s.End >= rep.ReleaseCycle && s.Ratio >= 1-p.Epsilon {
				rep.Recovered = true
				rep.RecoveryCycles = s.End - rep.ReleaseCycle
				break
			}
		}
	}
	return rep
}
