// Package journal is the campaign service's durable job log: an
// append-only, fsync-on-commit record of every accepted job, every
// completed shard, and every terminal state, from which mpsocd rebuilds
// its job table after a crash and resumes interrupted jobs by
// re-dispatching only the shards that never committed.
//
// Each job owns one JSONL file (<job-id>.jnl) in the journal directory.
// Three entry kinds appear, always in this shape:
//
//	{"op":"accept","job":"job-0001","spec":{...},"workers":4,"shard":"0/1","mode":"stream"}
//	{"op":"ack","job":"job-0001","index":3,"record":{...}}   // one per completed shard, in emission order
//	{"op":"term","job":"job-0001","state":"done"}
//
// Every append is written and fsync'd before the caller proceeds, so the
// journal never claims work that might not have happened. The converse —
// work that happened but was never journaled — is exactly what resume
// re-runs, which is safe because runs are deterministic: re-dispatching an
// unacked shard reproduces the identical record bytes.
//
// Replay is tolerant by design: a process killed mid-append leaves a
// truncated (or otherwise undecodable) tail line, and Replay discards that
// line and anything after it rather than failing — the classic
// write-ahead-log recovery rule. Discarded lines are counted so operators
// can see that a tail was dropped. Acks are idempotent on replay (a crash
// between the ack write and the next step can produce a duplicate on the
// next life; the first wins) and acks after a terminal entry are ignored.
package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/faultpoint"
)

// Options parameterize a Journal.
type Options struct {
	// NowNanos, when non-nil, times each fsync for the journal latency
	// metrics. It is injected (cmd/mpsocd passes the wall clock; tests
	// pass a counter) so the deterministic stack itself never reads the
	// host clock — nothing journaled ever depends on it.
	NowNanos func() int64
	// Observe, when non-nil, receives one callback per committed append:
	// the entry op ("accept", "ack", "term"), the job id, and the fsync
	// start/duration in NowNanos's domain. It lets the daemon turn
	// journal commits into host spans and structured logs without this
	// package importing an observability layer; it is called outside the
	// journal lock, after the entry is durable.
	Observe func(op, jobID string, startNanos, durNanos int64)
}

// Journal is one journal directory. Methods are safe for concurrent use.
type Journal struct {
	dir string
	opt Options

	appends    atomic.Uint64
	fsyncNanos atomic.Uint64

	mu    sync.Mutex
	files []openFile // open per-job logs, closed at Term; a slice, not a map, so iteration order is deterministic and the lint stays clean
}

// openFile is one open per-job log. A slice with linear scan: the open set
// is bounded by live jobs, and a slice keeps every walk deterministic.
type openFile struct {
	id string
	f  *os.File
}

// SubmitOpts are the job's submit-time options, persisted with the accept
// entry so a restart rebuilds the job exactly as it was created. Trace
// buffers are in-memory only and do not survive a restart, so the trace
// limit is deliberately not persisted.
type SubmitOpts struct {
	Workers int    `json:"workers"`
	Shard   string `json:"shard"`
	Mode    string `json:"mode"`
}

// entry is one journal line.
type entry struct {
	Op      string          `json:"op"`
	Job     string          `json:"job"`
	Spec    json.RawMessage `json:"spec,omitempty"`
	Workers int             `json:"workers,omitempty"`
	Shard   string          `json:"shard,omitempty"`
	Mode    string          `json:"mode,omitempty"`
	Index   *int            `json:"index,omitempty"`
	Record  json.RawMessage `json:"record,omitempty"`
	State   string          `json:"state,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// Ack is one committed shard: its global grid index and the exact record
// line it streamed (no trailing newline).
type Ack struct {
	Index  int
	Record []byte
}

// JobLog is one job reconstructed by Replay.
type JobLog struct {
	ID   string
	Spec []byte
	Opts SubmitOpts
	// Acks holds the committed shards in emission (= journal) order, first
	// occurrence winning on duplicates.
	Acks []Ack
	// State is the terminal state, or "" if the job was interrupted and
	// should resume.
	State string
	// ErrMsg is the terminal error, if any.
	ErrMsg string
	// Discarded counts undecodable tail lines dropped during replay.
	Discarded int
}

// Open creates the directory if needed and returns a Journal over it.
func Open(dir string, opt Options) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Journal{dir: dir, opt: opt}, nil
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Appends reports committed appends; FsyncNanos the cumulative fsync time
// (zero unless Options.NowNanos was provided). Together they are the
// journal latency metric: mean fsync cost = FsyncNanos / Appends.
func (j *Journal) Appends() uint64    { return j.appends.Load() }
func (j *Journal) FsyncNanos() uint64 { return j.fsyncNanos.Load() }

// Accept journals a newly created job: its raw spec body plus submit
// options. It is the first entry of the job's log; the file is created
// here and the directory entry fsync'd so the log itself is durable.
func (j *Journal) Accept(jobID string, spec []byte, opts SubmitOpts) error {
	if err := j.append(jobID, entry{
		Op: "accept", Job: jobID, Spec: json.RawMessage(spec),
		Workers: opts.Workers, Shard: opts.Shard, Mode: opts.Mode,
	}); err != nil {
		return err
	}
	return j.syncDir()
}

// AckShard journals one completed shard: the grid index and the exact
// JSONL record line (without newline) it contributed to the stream. The
// armed faultpoint "journal.ack" fires after the entry is durable — the
// worst possible crash instant, since the very next step would have used
// it.
func (j *Journal) AckShard(jobID string, index int, record []byte) error {
	if err := j.append(jobID, entry{Op: "ack", Job: jobID, Index: &index, Record: json.RawMessage(record)}); err != nil {
		return err
	}
	return faultpoint.Hit("journal.ack")
}

// Term journals the job's terminal state and closes its log file.
func (j *Journal) Term(jobID, state, errMsg string) error {
	err := j.append(jobID, entry{Op: "term", Job: jobID, State: state, Error: errMsg})
	j.mu.Lock()
	for i, of := range j.files {
		if of.id == jobID {
			of.f.Close()
			j.files = append(j.files[:i], j.files[i+1:]...)
			break
		}
	}
	j.mu.Unlock()
	if err != nil {
		return err
	}
	return faultpoint.Hit("journal.term")
}

// Close closes every open log file.
func (j *Journal) Close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, of := range j.files {
		of.f.Close()
	}
	j.files = nil
}

// file returns the job's open log, opening (append|create) on first use —
// which is also how a restarted daemon continues a resumed job's log.
func (j *Journal) file(jobID string) (*os.File, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, of := range j.files {
		if of.id == jobID {
			return of.f, nil
		}
	}
	f, err := os.OpenFile(j.path(jobID), os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j.files = append(j.files, openFile{id: jobID, f: f})
	return f, nil
}

func (j *Journal) path(jobID string) string {
	return filepath.Join(j.dir, jobID+".jnl")
}

// append marshals, writes and fsyncs one entry. The write itself is a
// single Write call of line+newline, so a crash mid-append can only leave
// a truncated final line — the case Replay tolerates.
func (j *Journal) append(jobID string, e entry) error {
	if err := faultpoint.Hit("journal.append"); err != nil {
		return err
	}
	f, err := j.file(jobID)
	if err != nil {
		return err
	}
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	var t0, dur int64
	j.mu.Lock()
	if _, err := f.Write(append(data, '\n')); err != nil {
		j.mu.Unlock()
		return fmt.Errorf("journal: %w", err)
	}
	if j.opt.NowNanos != nil {
		t0 = j.opt.NowNanos()
	}
	if err := f.Sync(); err != nil {
		j.mu.Unlock()
		return fmt.Errorf("journal: fsync: %w", err)
	}
	if j.opt.NowNanos != nil {
		if dur = j.opt.NowNanos() - t0; dur > 0 {
			j.fsyncNanos.Add(uint64(dur))
		}
	}
	j.mu.Unlock()
	j.appends.Add(1)
	if j.opt.Observe != nil {
		j.opt.Observe(e.Op, jobID, t0, dur)
	}
	return nil
}

// syncDir fsyncs the journal directory so freshly created log files are
// durable, not just their contents.
func (j *Journal) syncDir() error {
	d, err := os.Open(j.dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("journal: fsync dir: %w", err)
	}
	return nil
}

// Replay reads every job log in the directory and reconstructs the job
// set, in file-name order. Undecodable content is handled per the
// write-ahead-log rule: the bad line and everything after it in that file
// are discarded (counted in JobLog.Discarded), never fatal. A file whose
// accept entry itself is unreadable yields no job — the job was never
// durably accepted.
func Replay(dir string) ([]JobLog, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("journal: %w", err)
	}
	var logs []JobLog // os.ReadDir sorts by name
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".jnl") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
		if lg, ok := replayFile(strings.TrimSuffix(ent.Name(), ".jnl"), data); ok {
			logs = append(logs, lg)
		}
	}
	return logs, nil
}

// replayFile decodes one job log tolerantly.
func replayFile(id string, data []byte) (JobLog, bool) {
	lg := JobLog{ID: id}
	seen := make(map[int]bool)
	lines := strings.Split(string(data), "\n")
	accepted := false
	for i, line := range lines {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var e entry
		if err := json.Unmarshal([]byte(line), &e); err != nil || e.Op == "" {
			// Torn or garbage line: drop it and everything after — later
			// lines were appended after this one, so they postdate a write
			// the log cannot vouch for.
			for _, rest := range lines[i:] {
				if strings.TrimSpace(rest) != "" {
					lg.Discarded++
				}
			}
			break
		}
		switch e.Op {
		case "accept":
			if accepted {
				continue // duplicate accept: first wins
			}
			accepted = true
			lg.Spec = append([]byte(nil), e.Spec...)
			lg.Opts = SubmitOpts{Workers: e.Workers, Shard: e.Shard, Mode: e.Mode}
		case "ack":
			if !accepted || lg.State != "" || e.Index == nil || seen[*e.Index] {
				continue // pre-accept, post-terminal or duplicate ack: ignored
			}
			seen[*e.Index] = true
			lg.Acks = append(lg.Acks, Ack{Index: *e.Index, Record: append([]byte(nil), e.Record...)})
		case "term":
			if !accepted || lg.State != "" {
				continue // first terminal entry wins
			}
			lg.State = e.State
			lg.ErrMsg = e.Error
		}
	}
	return lg, accepted
}
