package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultpoint"
)

func openT(t *testing.T) *Journal {
	t.Helper()
	var fakeNow int64
	j, err := Open(t.TempDir(), Options{NowNanos: func() int64 { fakeNow += 1000; return fakeNow }})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(j.Close)
	return j
}

func TestRoundTrip(t *testing.T) {
	j := openT(t)
	spec := []byte(`{"version":1,"campaign":{}}`)
	opts := SubmitOpts{Workers: 4, Shard: "0/1", Mode: "stream"}
	if err := j.Accept("job-0001", spec, opts); err != nil {
		t.Fatal(err)
	}
	if err := j.AckShard("job-0001", 0, []byte(`{"index":0}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.AckShard("job-0001", 2, []byte(`{"index":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Term("job-0001", "done", ""); err != nil {
		t.Fatal(err)
	}
	if j.Appends() != 4 {
		t.Fatalf("appends = %d, want 4", j.Appends())
	}
	if j.FsyncNanos() == 0 {
		t.Fatal("fsync latency not accumulated with NowNanos set")
	}

	logs, err := Replay(j.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != 1 {
		t.Fatalf("replayed %d jobs, want 1", len(logs))
	}
	lg := logs[0]
	if lg.ID != "job-0001" || lg.State != "done" || lg.ErrMsg != "" || lg.Discarded != 0 {
		t.Fatalf("bad log: %+v", lg)
	}
	if !bytes.Equal(lg.Spec, spec) || lg.Opts != opts {
		t.Fatalf("spec/opts did not round-trip: %s %+v", lg.Spec, lg.Opts)
	}
	if len(lg.Acks) != 2 || lg.Acks[0].Index != 0 || lg.Acks[1].Index != 2 ||
		string(lg.Acks[1].Record) != `{"index":2}` {
		t.Fatalf("acks did not round-trip: %+v", lg.Acks)
	}
}

func TestReplayMissingDirIsEmpty(t *testing.T) {
	logs, err := Replay(filepath.Join(t.TempDir(), "nope"))
	if err != nil || logs != nil {
		t.Fatalf("Replay(missing) = %v, %v", logs, err)
	}
}

// corrupt appends raw bytes to a job's log, simulating a torn append.
func corrupt(t *testing.T, j *Journal, jobID string, raw string) {
	t.Helper()
	f, err := os.OpenFile(j.path(jobID), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteString(raw); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedTailLineDiscarded(t *testing.T) {
	j := openT(t)
	if err := j.Accept("job-0001", []byte(`{}`), SubmitOpts{Mode: "stream"}); err != nil {
		t.Fatal(err)
	}
	if err := j.AckShard("job-0001", 0, []byte(`{"index":0}`)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// A crash mid-append leaves a torn, newline-less tail.
	corrupt(t, j, "job-0001", `{"op":"ack","job":"job-0`)

	logs, err := Replay(j.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != 1 || logs[0].State != "" {
		t.Fatalf("bad replay: %+v", logs)
	}
	if len(logs[0].Acks) != 1 || logs[0].Discarded != 1 {
		t.Fatalf("acks=%d discarded=%d, want 1/1", len(logs[0].Acks), logs[0].Discarded)
	}
}

func TestGarbageTailDiscardsRest(t *testing.T) {
	j := openT(t)
	if err := j.Accept("job-0001", []byte(`{}`), SubmitOpts{Mode: "stream"}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Garbage followed by a decodable line: the log cannot vouch for
	// anything after the tear, so both go.
	corrupt(t, j, "job-0001", "\x00\x01garbage\n{\"op\":\"ack\",\"job\":\"job-0001\",\"index\":0,\"record\":{}}\n")

	logs, err := Replay(j.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != 1 || len(logs[0].Acks) != 0 || logs[0].Discarded != 2 {
		t.Fatalf("bad replay: %+v", logs)
	}
}

func TestDoubleAckIdempotent(t *testing.T) {
	j := openT(t)
	if err := j.Accept("job-0001", []byte(`{}`), SubmitOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := j.AckShard("job-0001", 3, []byte(`{"index":3,"v":"first"}`)); err != nil {
		t.Fatal(err)
	}
	// A crash between the ack fsync and the caller's next step makes the
	// restarted daemon re-ack the same shard: the first entry wins.
	if err := j.AckShard("job-0001", 3, []byte(`{"index":3,"v":"second"}`)); err != nil {
		t.Fatal(err)
	}
	logs, err := Replay(j.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(logs[0].Acks) != 1 || string(logs[0].Acks[0].Record) != `{"index":3,"v":"first"}` {
		t.Fatalf("double ack not idempotent: %+v", logs[0].Acks)
	}
}

func TestAcksAfterTerminalIgnored(t *testing.T) {
	j := openT(t)
	if err := j.Accept("job-0001", []byte(`{}`), SubmitOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := j.Term("job-0001", "failed", "boom"); err != nil {
		t.Fatal(err)
	}
	if err := j.AckShard("job-0001", 0, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	logs, err := Replay(j.Dir())
	if err != nil {
		t.Fatal(err)
	}
	lg := logs[0]
	if lg.State != "failed" || lg.ErrMsg != "boom" || len(lg.Acks) != 0 {
		t.Fatalf("terminal replay wrong: %+v", lg)
	}
}

func TestFileWithoutAcceptYieldsNoJob(t *testing.T) {
	j := openT(t)
	if err := os.WriteFile(j.path("job-0009"), []byte("{\"op\":\"ack\",\"job\":\"job-0009\",\"index\":0,\"record\":{}}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	logs, err := Replay(j.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != 0 {
		t.Fatalf("job without durable accept replayed: %+v", logs)
	}
}

func TestFaultpointInjectsAppendError(t *testing.T) {
	t.Cleanup(faultpoint.Disarm)
	j := openT(t)
	if err := faultpoint.Arm("journal.append=error:disk gone"); err != nil {
		t.Fatal(err)
	}
	if err := j.Accept("job-0001", []byte(`{}`), SubmitOpts{}); err == nil {
		t.Fatal("injected append error not surfaced")
	}
	faultpoint.Disarm()
	if err := j.Accept("job-0001", []byte(`{}`), SubmitOpts{}); err != nil {
		t.Fatal(err)
	}
}

func TestObserveHookFiresPerCommittedAppend(t *testing.T) {
	var fakeNow int64
	var calls []string
	j, err := Open(t.TempDir(), Options{
		NowNanos: func() int64 { fakeNow += 1000; return fakeNow },
		Observe: func(op, jobID string, startNanos, durNanos int64) {
			calls = append(calls, fmt.Sprintf("%s:%s:%d", op, jobID, durNanos))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(j.Close)
	if err := j.Accept("job-0001", []byte(`{"version":1}`), SubmitOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := j.AckShard("job-0001", 0, []byte(`{"index":0}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Term("job-0001", "done", ""); err != nil {
		t.Fatal(err)
	}
	// Each append reads the clock twice around the fsync, so every
	// observed duration is exactly one tick.
	want := []string{"accept:job-0001:1000", "ack:job-0001:1000", "term:job-0001:1000"}
	if len(calls) != len(want) {
		t.Fatalf("observe calls = %v, want %v", calls, want)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("observe call %d = %q, want %q", i, calls[i], want[i])
		}
	}
}

func TestObserveNotCalledOnRefusedAppend(t *testing.T) {
	t.Cleanup(faultpoint.Disarm)
	calls := 0
	j, err := Open(t.TempDir(), Options{
		Observe: func(op, jobID string, startNanos, durNanos int64) { calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(j.Close)
	faultpoint.Arm("journal.append=error:disk gone")
	if err := j.Accept("job-0001", []byte(`{}`), SubmitOpts{}); err == nil {
		t.Fatal("expected injected append error")
	}
	if calls != 0 {
		t.Fatalf("Observe fired %d times on a refused append, want 0", calls)
	}
}
