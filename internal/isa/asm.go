package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Program is the output of the assembler: a word image plus the resolved
// symbol table.
type Program struct {
	// Base is the load address of Words[0].
	Base uint32
	// Words is the assembled memory image (instructions and data).
	Words []uint32
	// Symbols maps every label and .equ constant to its value.
	Symbols map[string]uint32
}

// SizeBytes returns the image size in bytes.
func (p *Program) SizeBytes() uint32 { return uint32(len(p.Words)) * 4 }

// Entry returns the value of the given symbol, or Base when absent.
func (p *Program) Entry(sym string) uint32 {
	if v, ok := p.Symbols[sym]; ok {
		return v
	}
	return p.Base
}

// Assemble translates MB32 assembly source into a Program loaded at base.
//
// Syntax:
//
//	label:              ; define label at current address
//	    addi r1, r0, 42 ; comments start with ';', '#' or '//'
//	    lw   r2, 8(r3)
//	    beq  r1, r2, label
//	.word 0x1234, 56    ; literal data words
//	.space 64           ; 64 zero bytes (must be a multiple of 4)
//	.equ  NAME, 0x1000  ; constant
//
// Registers are r0..r31 with aliases zero, sp (r30) and lr (r31).
// Immediates are decimal or 0x-hex, optionally negative, and may reference
// symbols with an optional +/- offset (e.g. "buf+8"). Pseudo-instructions:
//
//	nop                  -> add  r0, r0, r0
//	mov  rd, ra          -> add  rd, ra, r0
//	li   rd, imm32       -> addi rd, r0, imm  (or lui+ori when wide)
//	la   rd, sym         -> li with the symbol's value
//	not  rd, ra          -> sub rd, r0, ra ; addi rd, rd, -1  (~x = -x-1)
//	neg  rd, ra          -> sub  rd, r0, ra
//	subi rd, ra, imm     -> addi rd, ra, -imm
//	b    label           -> beq  r0, r0, label
//	beqz ra, label       -> beq  ra, r0, label
//	bnez ra, label       -> bne  ra, r0, label
//	call label           -> bal  lr, label
//	ret                  -> jal  r0, 0(lr)
//	j    reg             -> jal  r0, 0(reg)
func Assemble(src string, base uint32) (*Program, error) {
	a := &assembler{
		base:    base,
		symbols: make(map[string]uint32),
	}
	if base%4 != 0 {
		return nil, fmt.Errorf("asm: base %#x not word-aligned", base)
	}
	lines := strings.Split(src, "\n")

	// Pass 1: measure sizes, define labels and constants.
	pc := base
	type stmt struct {
		lineNo int
		text   string
		pc     uint32
	}
	var stmts []stmt
	for ln, raw := range lines {
		text := stripComment(raw)
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		// Peel off any leading labels (several may share a line).
		for {
			idx := strings.Index(text, ":")
			if idx < 0 {
				break
			}
			head := strings.TrimSpace(text[:idx])
			if !isIdent(head) {
				break
			}
			if _, dup := a.symbols[head]; dup {
				return nil, fmt.Errorf("asm:%d: duplicate symbol %q", ln+1, head)
			}
			a.symbols[head] = pc
			text = strings.TrimSpace(text[idx+1:])
		}
		if text == "" {
			continue
		}
		n, err := a.sizeOf(text, ln+1)
		if err != nil {
			return nil, err
		}
		if strings.HasPrefix(text, ".equ") {
			// Constants are defined during pass 1 so later references
			// resolve; they occupy no space.
			if err := a.defineEqu(text, ln+1); err != nil {
				return nil, err
			}
			continue
		}
		stmts = append(stmts, stmt{lineNo: ln + 1, text: text, pc: pc})
		pc += n
	}

	// Pass 2: emit.
	var words []uint32
	for _, s := range stmts {
		ws, err := a.emit(s.text, s.pc, s.lineNo)
		if err != nil {
			return nil, err
		}
		words = append(words, ws...)
	}
	return &Program{Base: base, Words: words, Symbols: a.symbols}, nil
}

// MustAssemble is Assemble for statically known-good source; it panics on
// error. Workload generators use it because their source is produced by
// code, not users.
func MustAssemble(src string, base uint32) *Program {
	p, err := Assemble(src, base)
	if err != nil {
		panic(err)
	}
	return p
}

type assembler struct {
	base    uint32
	symbols map[string]uint32
}

func stripComment(s string) string {
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == ';' || s[i] == '#':
			return s[:i]
		case s[i] == '/' && i+1 < len(s) && s[i+1] == '/':
			return s[:i]
		}
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// sizeOf returns the byte size a statement will occupy.
func (a *assembler) sizeOf(text string, line int) (uint32, error) {
	mnem, rest := splitMnemonic(text)
	switch mnem {
	case ".equ":
		return 0, nil
	case ".word":
		n := uint32(len(splitOperands(rest)))
		if n == 0 {
			return 0, fmt.Errorf("asm:%d: .word needs at least one value", line)
		}
		return 4 * n, nil
	case ".space":
		v, err := strconv.ParseUint(strings.TrimSpace(rest), 0, 32)
		if err != nil {
			return 0, fmt.Errorf("asm:%d: bad .space size: %v", line, err)
		}
		if v%4 != 0 {
			return 0, fmt.Errorf("asm:%d: .space %d not a multiple of 4", line, v)
		}
		return uint32(v), nil
	case "li", "la":
		// li always reserves the wide 2-instruction form when the value
		// is unknown in pass 1; known narrow values use 1. Symbol values
		// are not final during pass 1, so any symbolic operand gets the
		// wide form for a stable layout.
		ops := splitOperands(rest)
		if len(ops) == 2 {
			if v, err := a.evalNoSymbols(ops[1]); err == nil && fitsSigned16(int64(int32(v))) {
				return 4, nil
			}
		}
		return 8, nil
	case "not":
		return 8, nil
	default:
		return 4, nil
	}
}

func (a *assembler) defineEqu(text string, line int) error {
	_, rest := splitMnemonic(text)
	ops := splitOperands(rest)
	if len(ops) != 2 {
		return fmt.Errorf("asm:%d: .equ wants NAME, VALUE", line)
	}
	if !isIdent(ops[0]) {
		return fmt.Errorf("asm:%d: bad .equ name %q", line, ops[0])
	}
	v, err := a.eval(ops[1], line)
	if err != nil {
		return err
	}
	if _, dup := a.symbols[ops[0]]; dup {
		return fmt.Errorf("asm:%d: duplicate symbol %q", line, ops[0])
	}
	a.symbols[ops[0]] = v
	return nil
}

func splitMnemonic(text string) (mnem, rest string) {
	i := strings.IndexAny(text, " \t")
	if i < 0 {
		return strings.ToLower(text), ""
	}
	return strings.ToLower(text[:i]), strings.TrimSpace(text[i+1:])
}

func splitOperands(rest string) []string {
	if strings.TrimSpace(rest) == "" {
		return nil
	}
	parts := strings.Split(rest, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

var regAliases = map[string]uint8{"zero": 0, "sp": RegSP, "lr": RegLR}

func parseReg(s string) (uint8, error) {
	ls := strings.ToLower(strings.TrimSpace(s))
	if r, ok := regAliases[ls]; ok {
		return r, nil
	}
	if len(ls) >= 2 && ls[0] == 'r' {
		n, err := strconv.Atoi(ls[1:])
		if err == nil && n >= 0 && n <= 31 {
			return uint8(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

// eval resolves an integer or symbol±offset expression.
func (a *assembler) eval(expr string, line int) (uint32, error) {
	v, err := a.evalWith(expr, true)
	if err != nil {
		return 0, fmt.Errorf("asm:%d: %v", line, err)
	}
	return v, nil
}

func (a *assembler) evalNoSymbols(expr string) (uint32, error) {
	return a.evalWith(expr, false)
}

func (a *assembler) evalWith(expr string, allowSymbols bool) (uint32, error) {
	s := strings.TrimSpace(expr)
	if s == "" {
		return 0, fmt.Errorf("empty expression")
	}
	// Pure number (incl. negative)?
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		if v < -(1<<31) || v > (1<<32)-1 {
			return 0, fmt.Errorf("value %d out of 32-bit range", v)
		}
		return uint32(v), nil
	}
	// symbol, symbol+off, symbol-off (split at the last +/- not at pos 0).
	split := -1
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			split = i
		}
	}
	sym, off := s, int64(0)
	if split > 0 {
		var err error
		off, err = strconv.ParseInt(s[split:], 0, 64)
		if err != nil {
			return 0, fmt.Errorf("bad offset in %q", s)
		}
		sym = strings.TrimSpace(s[:split])
	}
	if !allowSymbols {
		return 0, fmt.Errorf("symbol %q not allowed here", sym)
	}
	v, ok := a.symbols[sym]
	if !ok {
		return 0, fmt.Errorf("undefined symbol %q", sym)
	}
	return uint32(int64(v) + off), nil
}

func fitsSigned16(v int64) bool { return v >= -32768 && v <= 32767 }

// imm16 validates and truncates an immediate for the given format.
func imm16(v uint32, f Format) (uint16, error) {
	sv := int64(int32(v))
	switch f {
	case FmtI, FmtMem, FmtJAL:
		if !fitsSigned16(sv) && v > 0xFFFF {
			return 0, fmt.Errorf("immediate %#x does not fit in signed 16 bits", v)
		}
	case FmtIU, FmtLUI, FmtCSRR, FmtCSRW:
		if v > 0xFFFF && !fitsSigned16(sv) {
			return 0, fmt.Errorf("immediate %#x does not fit in 16 bits", v)
		}
	}
	return uint16(v), nil
}

var mnemonicOps = func() map[string]Opcode {
	m := make(map[string]Opcode, NumOpcodes)
	for op := Opcode(0); op.Valid(); op++ {
		m[op.String()] = op
	}
	return m
}()

// emit assembles one statement at address pc into one or more words.
func (a *assembler) emit(text string, pc uint32, line int) ([]uint32, error) {
	mnem, rest := splitMnemonic(text)
	ops := splitOperands(rest)

	fail := func(format string, args ...interface{}) ([]uint32, error) {
		return nil, fmt.Errorf("asm:%d: %s", line, fmt.Sprintf(format, args...))
	}

	switch mnem {
	case ".word":
		var out []uint32
		for _, o := range ops {
			v, err := a.eval(o, line)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	case ".space":
		v, _ := strconv.ParseUint(ops[0], 0, 32)
		return make([]uint32, v/4), nil
	case "nop":
		return []uint32{MustEncode(Instr{Op: ADD})}, nil
	case "mov":
		if len(ops) != 2 {
			return fail("mov wants rd, ra")
		}
		rd, err1 := parseReg(ops[0])
		ra, err2 := parseReg(ops[1])
		if err1 != nil || err2 != nil {
			return fail("mov: bad register")
		}
		return []uint32{MustEncode(Instr{Op: ADD, Rd: rd, Ra: ra})}, nil
	case "neg":
		if len(ops) != 2 {
			return fail("neg wants rd, ra")
		}
		rd, err1 := parseReg(ops[0])
		ra, err2 := parseReg(ops[1])
		if err1 != nil || err2 != nil {
			return fail("neg: bad register")
		}
		return []uint32{MustEncode(Instr{Op: SUB, Rd: rd, Rb: ra})}, nil
	case "not":
		if len(ops) != 2 {
			return fail("not wants rd, ra")
		}
		rd, err1 := parseReg(ops[0])
		ra, err2 := parseReg(ops[1])
		if err1 != nil || err2 != nil {
			return fail("not: bad register")
		}
		// ~x = -x - 1; the SUB reads ra before writing rd, so rd==ra is
		// safe (XORI cannot express a 32-bit invert: its immediate is
		// zero-extended).
		return []uint32{
			MustEncode(Instr{Op: SUB, Rd: rd, Rb: ra}),
			MustEncode(Instr{Op: ADDI, Rd: rd, Ra: rd, Imm: 0xFFFF}),
		}, nil
	case "li", "la":
		if len(ops) != 2 {
			return fail("%s wants rd, value", mnem)
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return fail("%s: %v", mnem, err)
		}
		v, err := a.eval(ops[1], line)
		if err != nil {
			return nil, err
		}
		narrow := false
		if nv, nerr := a.evalNoSymbols(ops[1]); nerr == nil && fitsSigned16(int64(int32(nv))) {
			narrow = true
		}
		if narrow {
			return []uint32{MustEncode(Instr{Op: ADDI, Rd: rd, Imm: uint16(v)})}, nil
		}
		// Wide: lui rd, hi ; ori rd, rd, lo. (xori pseudo-free path)
		return []uint32{
			MustEncode(Instr{Op: LUI, Rd: rd, Imm: uint16(v >> 16)}),
			MustEncode(Instr{Op: ORI, Rd: rd, Ra: rd, Imm: uint16(v)}),
		}, nil
	case "subi":
		if len(ops) != 3 {
			return fail("subi wants rd, ra, imm")
		}
		rd, err1 := parseReg(ops[0])
		ra, err2 := parseReg(ops[1])
		if err1 != nil || err2 != nil {
			return fail("subi: bad register")
		}
		v, err := a.eval(ops[2], line)
		if err != nil {
			return nil, err
		}
		neg := uint32(-int32(v))
		if !fitsSigned16(int64(int32(neg))) {
			return fail("subi immediate out of range")
		}
		return []uint32{MustEncode(Instr{Op: ADDI, Rd: rd, Ra: ra, Imm: uint16(neg)})}, nil
	case "b":
		if len(ops) != 1 {
			return fail("b wants a label")
		}
		off, err := a.branchOffset(ops[0], pc, line)
		if err != nil {
			return nil, err
		}
		return []uint32{MustEncode(Instr{Op: BEQ, Imm: off})}, nil
	case "beqz", "bnez":
		if len(ops) != 2 {
			return fail("%s wants ra, label", mnem)
		}
		ra, err := parseReg(ops[0])
		if err != nil {
			return fail("%s: %v", mnem, err)
		}
		off, err := a.branchOffset(ops[1], pc, line)
		if err != nil {
			return nil, err
		}
		op := BEQ
		if mnem == "bnez" {
			op = BNE
		}
		return []uint32{MustEncode(Instr{Op: op, Ra: ra, Imm: off})}, nil
	case "call":
		if len(ops) != 1 {
			return fail("call wants a label")
		}
		off, err := a.branchOffset(ops[0], pc, line)
		if err != nil {
			return nil, err
		}
		return []uint32{MustEncode(Instr{Op: BAL, Rd: RegLR, Imm: off})}, nil
	case "ret":
		return []uint32{MustEncode(Instr{Op: JAL, Ra: RegLR})}, nil
	case "j":
		if len(ops) != 1 {
			return fail("j wants a register")
		}
		ra, err := parseReg(ops[0])
		if err != nil {
			return fail("j: %v", err)
		}
		return []uint32{MustEncode(Instr{Op: JAL, Ra: ra})}, nil
	}

	op, ok := mnemonicOps[mnem]
	if !ok {
		return fail("unknown mnemonic %q", mnem)
	}
	in := Instr{Op: op}
	f := FormatOf(op)
	switch f {
	case FmtR:
		if len(ops) != 3 {
			return fail("%s wants rd, ra, rb", op)
		}
		var errs [3]error
		in.Rd, errs[0] = parseReg(ops[0])
		in.Ra, errs[1] = parseReg(ops[1])
		in.Rb, errs[2] = parseReg(ops[2])
		for _, e := range errs {
			if e != nil {
				return fail("%s: %v", op, e)
			}
		}
	case FmtI, FmtIU, FmtShift:
		if len(ops) != 3 {
			return fail("%s wants rd, ra, imm", op)
		}
		var err error
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return fail("%s: %v", op, err)
		}
		if in.Ra, err = parseReg(ops[1]); err != nil {
			return fail("%s: %v", op, err)
		}
		v, err := a.eval(ops[2], line)
		if err != nil {
			return nil, err
		}
		if f == FmtShift {
			if v > 31 {
				return fail("%s: shift %d > 31", op, v)
			}
			in.Imm = uint16(v)
		} else {
			if in.Imm, err = imm16(v, f); err != nil {
				return fail("%s: %v", op, err)
			}
		}
	case FmtLUI:
		if len(ops) != 2 {
			return fail("lui wants rd, imm")
		}
		var err error
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return fail("lui: %v", err)
		}
		v, err := a.eval(ops[1], line)
		if err != nil {
			return nil, err
		}
		if in.Imm, err = imm16(v, f); err != nil {
			return fail("lui: %v", err)
		}
	case FmtMem, FmtJAL:
		if len(ops) != 2 {
			return fail("%s wants rd, imm(ra)", op)
		}
		var err error
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return fail("%s: %v", op, err)
		}
		immS, raS, err := splitMemOperand(ops[1])
		if err != nil {
			return fail("%s: %v", op, err)
		}
		if in.Ra, err = parseReg(raS); err != nil {
			return fail("%s: %v", op, err)
		}
		v := uint32(0)
		if immS != "" {
			if v, err = a.eval(immS, line); err != nil {
				return nil, err
			}
		}
		if in.Imm, err = imm16(v, f); err != nil {
			return fail("%s: %v", op, err)
		}
	case FmtBranch:
		if len(ops) != 3 {
			return fail("%s wants ra, rb, label", op)
		}
		var err error
		if in.Ra, err = parseReg(ops[0]); err != nil {
			return fail("%s: %v", op, err)
		}
		if in.Rb, err = parseReg(ops[1]); err != nil {
			return fail("%s: %v", op, err)
		}
		if in.Imm, err = a.branchOffset(ops[2], pc, line); err != nil {
			return nil, err
		}
	case FmtBAL:
		if len(ops) != 2 {
			return fail("bal wants rd, label")
		}
		var err error
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return fail("bal: %v", err)
		}
		if in.Imm, err = a.branchOffset(ops[1], pc, line); err != nil {
			return nil, err
		}
	case FmtCSRR:
		if len(ops) != 2 {
			return fail("csrr wants rd, csr")
		}
		var err error
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return fail("csrr: %v", err)
		}
		v, err := a.eval(ops[1], line)
		if err != nil {
			return nil, err
		}
		in.Imm = uint16(v)
	case FmtCSRW:
		if len(ops) != 2 {
			return fail("csrw wants csr, ra")
		}
		v, err := a.eval(ops[0], line)
		if err != nil {
			return nil, err
		}
		in.Imm = uint16(v)
		if in.Ra, err = parseReg(ops[1]); err != nil {
			return fail("csrw: %v", err)
		}
	case FmtNone:
		if len(ops) != 0 {
			return fail("%s takes no operands", op)
		}
	}
	w, err := Encode(in)
	if err != nil {
		return fail("%v", err)
	}
	return []uint32{w}, nil
}

// branchOffset resolves a label (or numeric address) to an instruction
// offset relative to pc.
func (a *assembler) branchOffset(target string, pc uint32, line int) (uint16, error) {
	v, err := a.eval(target, line)
	if err != nil {
		return 0, err
	}
	delta := int64(v) - int64(pc)
	if delta%4 != 0 {
		return 0, fmt.Errorf("asm:%d: branch target %#x not word-aligned relative to %#x", line, v, pc)
	}
	words := delta / 4
	if !fitsSigned16(words) {
		return 0, fmt.Errorf("asm:%d: branch to %#x out of range from %#x", line, v, pc)
	}
	return uint16(int16(words)), nil
}

// splitMemOperand parses "imm(ra)" or "(ra)".
func splitMemOperand(s string) (imm, ra string, err error) {
	open := strings.Index(s, "(")
	closeIdx := strings.LastIndex(s, ")")
	if open < 0 || closeIdx < open {
		return "", "", fmt.Errorf("bad memory operand %q (want imm(ra))", s)
	}
	return strings.TrimSpace(s[:open]), strings.TrimSpace(s[open+1 : closeIdx]), nil
}
