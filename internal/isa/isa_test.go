package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTripAllFormats(t *testing.T) {
	cases := []Instr{
		{Op: ADD, Rd: 1, Ra: 2, Rb: 3},
		{Op: MUL, Rd: 31, Ra: 30, Rb: 29},
		{Op: ADDI, Rd: 5, Ra: 6, Imm: 0xFFFE}, // -2
		{Op: ANDI, Rd: 7, Ra: 8, Imm: 0xBEEF},
		{Op: SLLI, Rd: 9, Ra: 10, Imm: 31},
		{Op: LUI, Rd: 11, Imm: 0x1234},
		{Op: LW, Rd: 12, Ra: 13, Imm: 0x0040},
		{Op: SB, Rd: 14, Ra: 15, Imm: 0xFFFF},
		{Op: BEQ, Ra: 16, Rb: 17, Imm: 0xFFF0},
		{Op: BGEU, Ra: 1, Rb: 2, Imm: 0x7FFF},
		{Op: JAL, Rd: 31, Ra: 3, Imm: 8},
		{Op: BAL, Rd: 31, Imm: 0x0010},
		{Op: CSRR, Rd: 4, Imm: CsrCycle},
		{Op: CSRW, Ra: 5, Imm: CsrScratch},
		{Op: HALT},
	}
	for _, in := range cases {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%+v): %v", in, err)
		}
		got := Canonical(Decode(w))
		want := Canonical(in)
		if got != want {
			t.Errorf("round trip %v: got %+v, want %+v (word %#x)", in.Op, got, want, w)
		}
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	prop := func(opRaw, rd, ra, rb uint8, imm uint16) bool {
		in := Instr{
			Op:  Opcode(int(opRaw) % NumOpcodes),
			Rd:  rd & 31,
			Ra:  ra & 31,
			Rb:  rb & 31,
			Imm: imm,
		}
		in = Canonical(in)
		w, err := Encode(in)
		if err != nil {
			return false
		}
		return Canonical(Decode(w)) == in
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRejectsBadFields(t *testing.T) {
	if _, err := Encode(Instr{Op: Opcode(63)}); err == nil {
		t.Error("invalid opcode accepted")
	}
	if _, err := Encode(Instr{Op: ADD, Rd: 32}); err == nil {
		t.Error("register 32 accepted")
	}
	if _, err := Encode(Instr{Op: SLLI, Rd: 1, Ra: 1, Imm: 32}); err == nil {
		t.Error("shift amount 32 accepted")
	}
}

func TestSignExt16(t *testing.T) {
	cases := map[uint16]uint32{
		0x0000: 0,
		0x0001: 1,
		0x7FFF: 0x7FFF,
		0x8000: 0xFFFF8000,
		0xFFFF: 0xFFFFFFFF,
	}
	for in, want := range cases {
		if got := SignExt16(in); got != want {
			t.Errorf("SignExt16(%#x) = %#x, want %#x", in, got, want)
		}
	}
}

func TestOpcodePredicates(t *testing.T) {
	if !LW.IsLoad() || !LBU.IsLoad() || SW.IsLoad() || ADD.IsLoad() {
		t.Error("IsLoad misclassifies")
	}
	if !SW.IsStore() || !SB.IsStore() || LW.IsStore() {
		t.Error("IsStore misclassifies")
	}
	if !BEQ.IsBranch() || !BGEU.IsBranch() || JAL.IsBranch() {
		t.Error("IsBranch misclassifies")
	}
	sizes := map[Opcode]int{LW: 4, SW: 4, LH: 2, LHU: 2, SH: 2, LB: 1, LBU: 1, SB: 1, ADD: 0}
	for op, want := range sizes {
		if got := op.MemSize(); got != want {
			t.Errorf("%v.MemSize() = %d, want %d", op, got, want)
		}
	}
}

func TestDisassembleShapes(t *testing.T) {
	cases := []struct {
		in   Instr
		pc   uint32
		want string
	}{
		{Instr{Op: ADD, Rd: 1, Ra: 2, Rb: 3}, 0, "add r1, r2, r3"},
		{Instr{Op: ADDI, Rd: 1, Ra: 0, Imm: 0xFFFE}, 0, "addi r1, r0, -2"},
		{Instr{Op: LW, Rd: 2, Ra: 3, Imm: 8}, 0, "lw r2, 8(r3)"},
		{Instr{Op: BEQ, Ra: 1, Rb: 2, Imm: 2}, 0x100, "beq r1, r2, 0x108"},
		{Instr{Op: HALT}, 0, "halt"},
	}
	for _, c := range cases {
		if got := Disassemble(c.in, c.pc); got != c.want {
			t.Errorf("Disassemble = %q, want %q", got, c.want)
		}
	}
}

func TestAssembleBasicProgram(t *testing.T) {
	p, err := Assemble(`
		; simple arithmetic
		start:
			addi r1, r0, 10
			addi r2, r0, 32
			add  r3, r1, r2
			halt
	`, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Words) != 4 {
		t.Fatalf("assembled %d words, want 4", len(p.Words))
	}
	if p.Symbols["start"] != 0 {
		t.Fatalf("start = %#x, want 0", p.Symbols["start"])
	}
	in := Decode(p.Words[2])
	if in.Op != ADD || in.Rd != 3 || in.Ra != 1 || in.Rb != 2 {
		t.Fatalf("word 2 decodes to %s", Disassemble(in, 8))
	}
}

func TestAssembleBranchBackwards(t *testing.T) {
	p, err := Assemble(`
		addi r1, r0, 5
	loop:
		addi r1, r1, -1
		bnez r1, loop
		halt
	`, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	// bnez is at 0x1008, loop at 0x1004 => offset -1.
	in := Decode(p.Words[2])
	if in.Op != BNE || in.SignedImm() != -1 {
		t.Fatalf("bnez encodes offset %d, want -1 (%s)", in.SignedImm(), Disassemble(in, 0x1008))
	}
}

func TestAssembleLiNarrowAndWide(t *testing.T) {
	p, err := Assemble(`
		li r1, 42
		li r2, -7
		li r3, 0x12345678
		halt
	`, 0)
	if err != nil {
		t.Fatal(err)
	}
	// narrow(1) + narrow(1) + wide(2) + halt(1) = 5 words
	if len(p.Words) != 5 {
		t.Fatalf("li expansion produced %d words, want 5", len(p.Words))
	}
	lui := Decode(p.Words[2])
	ori := Decode(p.Words[3])
	if lui.Op != LUI || lui.Imm != 0x1234 {
		t.Fatalf("wide li word0 = %s", Disassemble(lui, 0))
	}
	if ori.Op != ORI || ori.Imm != 0x5678 || ori.Ra != lui.Rd {
		t.Fatalf("wide li word1 = %s", Disassemble(ori, 0))
	}
}

func TestAssembleMemOperandForms(t *testing.T) {
	p, err := Assemble(`
		lw r1, 8(r2)
		lw r1, (r2)
		sw r1, -4(sp)
		ret
	`, 0)
	if err != nil {
		t.Fatal(err)
	}
	if in := Decode(p.Words[1]); in.SignedImm() != 0 {
		t.Fatalf("(r2) form imm = %d, want 0", in.SignedImm())
	}
	if in := Decode(p.Words[2]); in.Ra != RegSP || in.SignedImm() != -4 {
		t.Fatalf("sp-relative store decoded as %s", Disassemble(in, 0))
	}
	if in := Decode(p.Words[3]); in.Op != JAL || in.Ra != RegLR {
		t.Fatalf("ret decoded as %s", Disassemble(in, 0))
	}
}

func TestAssembleEquAndWordAndSpace(t *testing.T) {
	p, err := Assemble(`
		.equ MAGIC, 0xCAFE0000
		.equ COUNT, 3
		data:
			.word MAGIC+1, COUNT, 0x10
			.space 8
		after:
			halt
	`, 0x2000)
	if err != nil {
		t.Fatal(err)
	}
	if p.Words[0] != 0xCAFE0001 || p.Words[1] != 3 || p.Words[2] != 0x10 {
		t.Fatalf(".word emitted %#x %#x %#x", p.Words[0], p.Words[1], p.Words[2])
	}
	if p.Symbols["after"] != 0x2000+3*4+8 {
		t.Fatalf("after = %#x, want %#x", p.Symbols["after"], 0x2000+3*4+8)
	}
}

func TestAssembleLaSymbol(t *testing.T) {
	p, err := Assemble(`
		la r1, buf
		halt
	buf:
		.word 0
	`, 0x100)
	if err != nil {
		t.Fatal(err)
	}
	// la expands wide (symbol): lui+ori then halt at 0x108, buf at 0x10C.
	lui, ori := Decode(p.Words[0]), Decode(p.Words[1])
	addr := uint32(lui.Imm)<<16 | uint32(ori.Imm)
	if addr != p.Symbols["buf"] {
		t.Fatalf("la loads %#x, want %#x", addr, p.Symbols["buf"])
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"frobnicate r1, r2",
		"add r1, r2",
		"addi r1, r0, 100000",
		"lw r1, r2",
		"beq r1, r2, nowhere",
		"slli r1, r1, 32",
		".space 5",
		"add r1, r2, r99",
		"label: label: halt", // duplicate via two lines below
	}
	for _, src := range bad[:8] {
		if _, err := Assemble(src, 0); err == nil {
			t.Errorf("assembled %q without error", src)
		}
	}
	if _, err := Assemble("x:\nx:\nhalt", 0); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate label: err = %v", err)
	}
}

func TestAssembleCommentStyles(t *testing.T) {
	p, err := Assemble(`
		addi r1, r0, 1 ; semicolon
		addi r1, r0, 2 # hash
		addi r1, r0, 3 // slashes
		halt
	`, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Words) != 4 {
		t.Fatalf("comments broke parsing: %d words", len(p.Words))
	}
}

func TestAssembleUnalignedBaseRejected(t *testing.T) {
	if _, err := Assemble("halt", 2); err == nil {
		t.Fatal("unaligned base accepted")
	}
}

func TestAssemblerDisassemblerRoundTripProperty(t *testing.T) {
	// Disassemble a canonical random instruction, re-assemble the text, and
	// check the word is identical. Branch/BAL forms need a pc-consistent
	// label, so they are skipped here (covered by explicit tests above).
	prop := func(opRaw, rd, ra, rb uint8, imm uint16) bool {
		op := Opcode(int(opRaw) % NumOpcodes)
		switch FormatOf(op) {
		case FmtBranch, FmtBAL:
			return true
		}
		in := Canonical(Instr{Op: op, Rd: rd & 31, Ra: ra & 31, Rb: rb & 31, Imm: imm})
		w, err := Encode(in)
		if err != nil {
			return false
		}
		text := Disassemble(in, 0)
		p, err := Assemble(text, 0)
		if err != nil || len(p.Words) != 1 {
			return false
		}
		return p.Words[0] == w
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestProgramEntry(t *testing.T) {
	p := MustAssemble(`
		nop
	_start:
		halt
	`, 0x40)
	if p.Entry("_start") != 0x44 {
		t.Fatalf("Entry = %#x, want 0x44", p.Entry("_start"))
	}
	if p.Entry("missing") != 0x40 {
		t.Fatalf("Entry fallback = %#x, want base 0x40", p.Entry("missing"))
	}
	if p.SizeBytes() != 8 {
		t.Fatalf("SizeBytes = %d, want 8", p.SizeBytes())
	}
}

func TestNotPseudoFullWidth(t *testing.T) {
	p := MustAssemble(`
		not r2, r1
		not r3, r3       ; rd == ra must work too
		halt
	`, 0)
	// not expands to two instructions each.
	if len(p.Words) != 5 {
		t.Fatalf("not expansion: %d words, want 5", len(p.Words))
	}
	sub := Decode(p.Words[0])
	addi := Decode(p.Words[1])
	if sub.Op != SUB || sub.Rd != 2 || sub.Ra != 0 || sub.Rb != 1 {
		t.Fatalf("word0 = %s", Disassemble(sub, 0))
	}
	if addi.Op != ADDI || addi.Rd != 2 || addi.Ra != 2 || addi.SignedImm() != -1 {
		t.Fatalf("word1 = %s", Disassemble(addi, 4))
	}
}
