package isa

import "fmt"

// Instr is a decoded MB32 instruction. Imm holds the raw (unextended) low
// 16 bits for I-type forms; execution applies sign- or zero-extension
// according to the opcode. For shift-immediates only the low 5 bits are
// meaningful.
//
// Field packing: branches carry two source registers plus a 16-bit offset,
// so they place Ra in the rd bit-field and Rb in the ra bit-field. Encode
// and Decode handle that mapping; users of Instr always see the logical
// Ra/Rb.
type Instr struct {
	Op      Opcode
	Rd      uint8
	Ra      uint8
	Rb      uint8
	Imm     uint16
	Raw     uint32 // original word, set by Decode
	Decoded bool   // true when produced by Decode
}

// SignExt16 sign-extends a raw 16-bit immediate.
func SignExt16(v uint16) uint32 { return uint32(int32(int16(v))) }

// SignedImm returns the immediate interpreted as a signed value.
func (i Instr) SignedImm() int32 { return int32(int16(i.Imm)) }

// Encode packs the instruction into its 32-bit word, validating field
// ranges.
func Encode(i Instr) (uint32, error) {
	if !i.Op.Valid() {
		return 0, fmt.Errorf("isa: invalid opcode %d", i.Op)
	}
	if i.Rd > 31 || i.Ra > 31 || i.Rb > 31 {
		return 0, fmt.Errorf("isa: register out of range in %v (rd=%d ra=%d rb=%d)", i.Op, i.Rd, i.Ra, i.Rb)
	}
	w := uint32(i.Op) << 26
	switch FormatOf(i.Op) {
	case FmtR:
		w |= uint32(i.Rd)<<21 | uint32(i.Ra)<<16 | uint32(i.Rb)<<11
	case FmtShift:
		if i.Imm > 31 {
			return 0, fmt.Errorf("isa: shift amount %d > 31 in %v", i.Imm, i.Op)
		}
		w |= uint32(i.Rd)<<21 | uint32(i.Ra)<<16 | uint32(i.Imm)
	case FmtBranch:
		// Two sources + offset: Ra rides in the rd field, Rb in ra.
		w |= uint32(i.Ra)<<21 | uint32(i.Rb)<<16 | uint32(i.Imm)
	case FmtCSRW:
		w |= uint32(i.Ra)<<16 | uint32(i.Imm)
	case FmtLUI, FmtCSRR:
		w |= uint32(i.Rd)<<21 | uint32(i.Imm)
	case FmtNone:
		// no operand fields
	default: // FmtI, FmtIU, FmtMem, FmtJAL, FmtBAL
		w |= uint32(i.Rd)<<21 | uint32(i.Ra)<<16 | uint32(i.Imm)
	}
	return w, nil
}

// MustEncode is Encode for statically known-valid instructions; it panics
// on error.
func MustEncode(i Instr) uint32 {
	w, err := Encode(i)
	if err != nil {
		panic(err)
	}
	return w
}

// Decode unpacks a 32-bit word. Undefined opcodes decode with an invalid
// Op; the core treats executing one as an illegal-instruction halt.
func Decode(w uint32) Instr {
	i := Instr{
		Op:      Opcode(w >> 26),
		Raw:     w,
		Decoded: true,
	}
	f1 := uint8(w >> 21 & 31)
	f2 := uint8(w >> 16 & 31)
	switch FormatOf(i.Op) {
	case FmtR:
		i.Rd, i.Ra, i.Rb = f1, f2, uint8(w>>11&31)
	case FmtShift:
		i.Rd, i.Ra, i.Imm = f1, f2, uint16(w&31)
	case FmtBranch:
		i.Ra, i.Rb, i.Imm = f1, f2, uint16(w)
	case FmtCSRW:
		i.Ra, i.Imm = f2, uint16(w)
	case FmtLUI, FmtCSRR:
		i.Rd, i.Imm = f1, uint16(w)
	case FmtNone:
		// no operands
	default:
		i.Rd, i.Ra, i.Imm = f1, f2, uint16(w)
	}
	return i
}

// Disassemble renders the instruction in assembler syntax. pc is the
// address of the instruction, used to resolve branch targets to absolute
// addresses; pass 0 to print raw offsets.
func Disassemble(i Instr, pc uint32) string {
	r := func(n uint8) string { return fmt.Sprintf("r%d", n) }
	switch FormatOf(i.Op) {
	case FmtR:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, r(i.Rd), r(i.Ra), r(i.Rb))
	case FmtI:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, r(i.Rd), r(i.Ra), i.SignedImm())
	case FmtIU:
		return fmt.Sprintf("%s %s, %s, %#x", i.Op, r(i.Rd), r(i.Ra), i.Imm)
	case FmtShift:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, r(i.Rd), r(i.Ra), i.Imm&31)
	case FmtLUI:
		return fmt.Sprintf("%s %s, %#x", i.Op, r(i.Rd), i.Imm)
	case FmtMem:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, r(i.Rd), i.SignedImm(), r(i.Ra))
	case FmtBranch:
		target := pc + uint32(i.SignedImm())*4
		return fmt.Sprintf("%s %s, %s, %#x", i.Op, r(i.Ra), r(i.Rb), target)
	case FmtJAL:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, r(i.Rd), i.SignedImm(), r(i.Ra))
	case FmtBAL:
		target := pc + uint32(i.SignedImm())*4
		return fmt.Sprintf("%s %s, %#x", i.Op, r(i.Rd), target)
	case FmtCSRR:
		return fmt.Sprintf("%s %s, %d", i.Op, r(i.Rd), i.Imm)
	case FmtCSRW:
		return fmt.Sprintf("%s %d, %s", i.Op, i.Imm, r(i.Ra))
	default:
		return i.Op.String()
	}
}

// Canonical zeroes fields that are dead for the opcode's format, so that
// Decode(MustEncode(Canonical(i))) equals Canonical(i) modulo Raw/Decoded.
func Canonical(i Instr) Instr {
	c := Instr{Op: i.Op}
	switch FormatOf(i.Op) {
	case FmtR:
		c.Rd, c.Ra, c.Rb = i.Rd, i.Ra, i.Rb
	case FmtShift:
		c.Rd, c.Ra, c.Imm = i.Rd, i.Ra, i.Imm&31
	case FmtBranch:
		c.Ra, c.Rb, c.Imm = i.Ra, i.Rb, i.Imm
	case FmtCSRW:
		c.Ra, c.Imm = i.Ra, i.Imm
	case FmtLUI, FmtCSRR:
		c.Rd, c.Imm = i.Rd, i.Imm
	case FmtNone:
		// nothing live
	default:
		c.Rd, c.Ra, c.Imm = i.Rd, i.Ra, i.Imm
	}
	return c
}
