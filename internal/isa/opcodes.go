// Package isa defines MB32, the MicroBlaze-like 32-bit RISC instruction set
// executed by the platform's soft cores, together with an encoder, decoder,
// disassembler and a small two-pass assembler.
//
// The paper's case study uses three Xilinx MicroBlaze processors. MicroBlaze
// itself is proprietary, so MB32 is a from-scratch substitute with the same
// shape: 32 general registers (r0 hardwired to zero), 32-bit fixed-width
// instructions, load/store architecture, local-memory code execution and
// bus-mapped data accesses. Workload programs in internal/workload are
// written in MB32 assembly.
//
// Encoding (32 bits):
//
//	[31:26] opcode
//	[25:21] rd
//	[20:16] ra
//	[15:11] rb      (R-type)
//	[15:0]  imm16   (I-type, branches, CSR number)
//
// Branch offsets are signed instruction counts relative to the branch
// itself: target = pc + 4*imm.
package isa

import "fmt"

// Opcode identifies an MB32 instruction.
type Opcode uint8

// The MB32 instruction set.
const (
	// R-type ALU.
	ADD Opcode = iota
	SUB
	AND
	OR
	XOR
	SLL
	SRL
	SRA
	MUL
	SLT
	SLTU
	// I-type ALU.
	ADDI
	ANDI
	ORI
	XORI
	SLTI
	SLLI
	SRLI
	SRAI
	LUI
	// Loads: rd <- mem[ra+imm]. LH/LB sign-extend, LHU/LBU zero-extend.
	LW
	LH
	LHU
	LB
	LBU
	// Stores: mem[ra+imm] <- rd.
	SW
	SH
	SB
	// Conditional branches on (ra, rb).
	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU
	// JAL rd, imm(ra): register-indirect jump and link (rd = pc+4).
	JAL
	// BAL rd, off: pc-relative call (rd = pc+4, pc += 4*off).
	BAL
	// CSRR rd, csr / CSRW csr, ra: control/status register access.
	CSRR
	CSRW
	// HALT stops the core.
	HALT
	// IRET returns from an interrupt handler (pc <- EPC).
	IRET

	numOpcodes
)

// NumOpcodes is the count of defined opcodes (for property tests).
const NumOpcodes = int(numOpcodes)

var opNames = [...]string{
	ADD: "add", SUB: "sub", AND: "and", OR: "or", XOR: "xor",
	SLL: "sll", SRL: "srl", SRA: "sra", MUL: "mul", SLT: "slt", SLTU: "sltu",
	ADDI: "addi", ANDI: "andi", ORI: "ori", XORI: "xori", SLTI: "slti",
	SLLI: "slli", SRLI: "srli", SRAI: "srai", LUI: "lui",
	LW: "lw", LH: "lh", LHU: "lhu", LB: "lb", LBU: "lbu",
	SW: "sw", SH: "sh", SB: "sb",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", BLTU: "bltu", BGEU: "bgeu",
	JAL: "jal", BAL: "bal", CSRR: "csrr", CSRW: "csrw", HALT: "halt", IRET: "iret",
}

// String returns the assembler mnemonic.
func (o Opcode) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Opcode) Valid() bool { return o < numOpcodes }

// Format classes drive encoding validation and disassembly.
type Format uint8

// Instruction format classes.
const (
	FmtR      Format = iota // rd, ra, rb
	FmtI                    // rd, ra, imm16 (signed)
	FmtIU                   // rd, ra, imm16 (unsigned/logical)
	FmtShift                // rd, ra, imm5
	FmtLUI                  // rd, imm16
	FmtMem                  // rd, imm16(ra)
	FmtBranch               // ra, rb, label
	FmtJAL                  // rd, imm16(ra)
	FmtBAL                  // rd, label
	FmtCSRR                 // rd, csr
	FmtCSRW                 // csr, ra
	FmtNone                 // no operands
)

// FormatOf returns the operand format of an opcode.
func FormatOf(o Opcode) Format {
	switch o {
	case ADD, SUB, AND, OR, XOR, SLL, SRL, SRA, MUL, SLT, SLTU:
		return FmtR
	case ADDI, SLTI:
		return FmtI
	case ANDI, ORI, XORI:
		return FmtIU
	case SLLI, SRLI, SRAI:
		return FmtShift
	case LUI:
		return FmtLUI
	case LW, LH, LHU, LB, LBU, SW, SH, SB:
		return FmtMem
	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		return FmtBranch
	case JAL:
		return FmtJAL
	case BAL:
		return FmtBAL
	case CSRR:
		return FmtCSRR
	case CSRW:
		return FmtCSRW
	default:
		return FmtNone
	}
}

// IsLoad reports whether o reads data memory.
func (o Opcode) IsLoad() bool { return o >= LW && o <= LBU }

// IsStore reports whether o writes data memory.
func (o Opcode) IsStore() bool { return o >= SW && o <= SB }

// IsBranch reports whether o is a conditional branch.
func (o Opcode) IsBranch() bool { return o >= BEQ && o <= BGEU }

// MemSize returns the access width in bytes for load/store opcodes
// (0 otherwise).
func (o Opcode) MemSize() int {
	switch o {
	case LW, SW:
		return 4
	case LH, LHU, SH:
		return 2
	case LB, LBU, SB:
		return 1
	default:
		return 0
	}
}

// Control and status registers readable with CSRR / writable with CSRW.
const (
	// CsrCoreID is the hardware core identifier (read-only).
	CsrCoreID = 0
	// CsrCycle is the low 32 bits of the cycle counter (read-only).
	CsrCycle = 1
	// CsrCycleHi is the high 32 bits of the cycle counter (read-only).
	CsrCycleHi = 2
	// CsrInstret counts retired instructions (read-only).
	CsrInstret = 3
	// CsrBusErr counts bus error responses seen by this core, including
	// firewall security rejections (read-only). Software polls it to
	// observe discarded transfers.
	CsrBusErr = 4
	// CsrScratch is a general read/write scratch register.
	CsrScratch = 5
	// CsrThread is the current software thread/context identifier
	// (read/write). The core tags every bus access with it, enabling the
	// thread-specific security policies of the paper's future work.
	CsrThread = 6
	// CsrEpc holds the interrupted pc while an interrupt handler runs
	// (read/write; IRET jumps to it).
	CsrEpc = 7
	// CsrIvec is the interrupt vector: the handler address. Zero (the
	// reset value) disables interrupt delivery.
	CsrIvec = 8
)

// Registers r0..r31; r0 reads as zero and ignores writes. The assembler
// also accepts the ABI aliases zero (r0), sp (r30) and lr (r31).
const (
	RegZero = 0
	RegSP   = 30
	RegLR   = 31
)
