package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestStoreReadWriteWord(t *testing.T) {
	s := NewStore(0x4000_0000, 0x1000)
	s.WriteWord(0x4000_0008, 0xcafebabe)
	if got := s.ReadWord(0x4000_0008); got != 0xcafebabe {
		t.Fatalf("ReadWord = %#x, want 0xcafebabe", got)
	}
}

func TestStoreLittleEndianLayout(t *testing.T) {
	s := NewStore(0, 16)
	s.WriteWord(0, 0x11223344)
	want := []byte{0x44, 0x33, 0x22, 0x11}
	if got := s.Peek(0, 4); !bytes.Equal(got, want) {
		t.Fatalf("layout = %x, want %x", got, want)
	}
	if got := s.Read(1, 1); got != 0x33 {
		t.Fatalf("byte at 1 = %#x, want 0x33", got)
	}
	if got := s.Read(2, 2); got != 0x1122 {
		t.Fatalf("half at 2 = %#x, want 0x1122", got)
	}
}

func TestStoreNarrowWriteMerges(t *testing.T) {
	s := NewStore(0, 8)
	s.WriteWord(0, 0xffffffff)
	s.Write(1, 1, 0x00)
	if got := s.ReadWord(0); got != 0xffff00ff {
		t.Fatalf("after byte write: %#x, want 0xffff00ff", got)
	}
	s.Write(2, 2, 0x1234)
	if got := s.ReadWord(0); got != 0x123400ff {
		t.Fatalf("after half write: %#x, want 0x123400ff", got)
	}
}

func TestStoreInRange(t *testing.T) {
	s := NewStore(0x100, 0x100)
	cases := []struct {
		addr uint32
		n    uint32
		want bool
	}{
		{0x100, 1, true},
		{0x1FF, 1, true},
		{0x1FF, 2, false},
		{0xFF, 1, false},
		{0x100, 0x100, true},
		{0x100, 0x101, false},
	}
	for _, c := range cases {
		if got := s.InRange(c.addr, c.n); got != c.want {
			t.Errorf("InRange(%#x,%d) = %v, want %v", c.addr, c.n, got, c.want)
		}
	}
}

func TestStoreOutOfRangePanics(t *testing.T) {
	s := NewStore(0x100, 0x10)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range access did not panic")
		}
	}()
	s.ReadWord(0x200)
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s := NewStore(0, 64)
	s.WriteWord(0, 1)
	s.WriteWord(4, 2)
	snap := s.Snapshot()
	s.WriteWord(0, 99)
	s.Fill(4, 8, 0xAA)
	s.Restore(snap)
	if s.ReadWord(0) != 1 || s.ReadWord(4) != 2 {
		t.Fatal("Restore did not bring back snapshot contents")
	}
}

func TestPokeBypassesNothingButWorks(t *testing.T) {
	s := NewStore(0x4000_0000, 32)
	s.Poke(0x4000_0004, []byte{1, 2, 3, 4})
	if got := s.ReadWord(0x4000_0004); got != 0x04030201 {
		t.Fatalf("after Poke: %#x, want 0x04030201", got)
	}
}

func TestFill(t *testing.T) {
	s := NewStore(0, 16)
	s.Fill(4, 8, 0x5A)
	for i := uint32(0); i < 16; i++ {
		want := byte(0)
		if i >= 4 && i < 12 {
			want = 0x5A
		}
		if got := s.Peek(i, 1)[0]; got != want {
			t.Fatalf("byte %d = %#x, want %#x", i, got, want)
		}
	}
}

func TestStoreRoundTripProperty(t *testing.T) {
	s := NewStore(0, 1<<16)
	prop := func(off uint16, v uint32, size uint8) bool {
		sz := []int{1, 2, 4}[size%3]
		addr := uint32(off) &^ (uint32(sz) - 1)
		s.Write(addr, sz, v)
		mask := uint32(0xFFFFFFFF)
		if sz < 4 {
			mask = (1 << (8 * sz)) - 1
		}
		return s.Read(addr, sz) == v&mask
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewStoreRejectsZeroSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size store not rejected")
		}
	}()
	NewStore(0, 0)
}

func TestNewStoreRejectsAddressOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("overflowing store not rejected")
		}
	}()
	NewStore(0xFFFF_F000, 0x2000)
}
