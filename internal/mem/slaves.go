package mem

import (
	"repro/internal/bus"
)

// BRAM models the on-chip shared block-RAM slave of the case study:
// single-cycle wait state plus one cycle per beat. On-chip memory is inside
// the trust boundary, so it is reached through a plain Local Firewall, not
// the ciphering one.
type BRAM struct {
	name  string
	store *Store
	// WaitCycles is the fixed access setup cost (default 1).
	WaitCycles uint64
	// Reads/Writes count completed beats for the stats harness.
	Reads, Writes uint64
}

// NewBRAM creates a BRAM slave of size bytes at base.
func NewBRAM(name string, base, size uint32) *BRAM {
	return &BRAM{name: name, store: NewStore(base, size), WaitCycles: 1}
}

// Name implements bus.Slave.
func (m *BRAM) Name() string { return m.name }

// Base implements bus.Slave.
func (m *BRAM) Base() uint32 { return m.store.Base() }

// Size implements bus.Slave.
func (m *BRAM) Size() uint32 { return m.store.Size() }

// Store exposes the backing store (trusted on-chip memory; tests and
// loaders use it).
func (m *BRAM) Store() *Store { return m.store }

// Access implements bus.Slave.
func (m *BRAM) Access(now uint64, tx *bus.Transaction) (uint64, bus.Resp) {
	transfer(m.store, tx, &m.Reads, &m.Writes)
	return m.WaitCycles + uint64(tx.Burst), bus.RespOK
}

// DDR models the external DDR memory: a fixed first-access latency (row
// activation plus controller traversal) and a smaller per-beat cost. The
// backing store is attacker-accessible via Store().Peek/Poke, reflecting
// the paper's threat model where the external bus and memory are hostile
// territory.
type DDR struct {
	name  string
	store *Store
	// FirstAccess is the latency of the first beat (default 18 cycles).
	FirstAccess uint64
	// PerBeat is the cost of each additional beat (default 2 cycles).
	PerBeat uint64
	// Reads/Writes count completed beats.
	Reads, Writes uint64
}

// NewDDR creates a DDR slave of size bytes at base with the DESIGN.md §5
// default timing.
func NewDDR(name string, base, size uint32) *DDR {
	return &DDR{name: name, store: NewStore(base, size), FirstAccess: 18, PerBeat: 2}
}

// Name implements bus.Slave.
func (m *DDR) Name() string { return m.name }

// Base implements bus.Slave.
func (m *DDR) Base() uint32 { return m.store.Base() }

// Size implements bus.Slave.
func (m *DDR) Size() uint32 { return m.store.Size() }

// Store exposes the raw backing store — the attacker's handle on external
// memory.
func (m *DDR) Store() *Store { return m.store }

// Access implements bus.Slave.
func (m *DDR) Access(now uint64, tx *bus.Transaction) (uint64, bus.Resp) {
	transfer(m.store, tx, &m.Reads, &m.Writes)
	return m.FirstAccess + m.PerBeat*uint64(tx.Burst-1), bus.RespOK
}

// transfer performs the functional data movement for every beat of tx
// against store.
func transfer(store *Store, tx *bus.Transaction, reads, writes *uint64) {
	addr := tx.Addr
	for i := 0; i < tx.Burst; i++ {
		if tx.Op == bus.Read {
			tx.Data[i] = store.Read(addr, tx.Size)
			*reads++
		} else {
			store.Write(addr, tx.Size, tx.Data[i])
			*writes++
		}
		addr += uint32(tx.Size)
	}
}
