// Package mem provides the memory substrates of the platform: the internal
// shared BRAM and the external DDR memory of the paper's case study, plus
// the raw byte store both are built on.
//
// The raw Store deliberately exposes Peek/Poke access that bypasses the bus
// and any firewall: that is the attacker's view of the *external* memory in
// the paper's threat model (the FPGA is trusted; the external bus and
// memory are not). Attack injectors in internal/attack use it.
package mem

import "fmt"

// Store is a flat little-endian byte memory covering [base, base+len).
type Store struct {
	base uint32
	data []byte
	gen  uint64
}

// NewStore allocates a zeroed store of size bytes based at base.
func NewStore(base, size uint32) *Store {
	if size == 0 {
		panic("mem: zero-size store")
	}
	if uint64(base)+uint64(size) > 1<<32 {
		panic(fmt.Sprintf("mem: store [%#x,+%#x) exceeds 32-bit space", base, size))
	}
	return &Store{base: base, data: make([]byte, size)}
}

// Base returns the first mapped address.
func (s *Store) Base() uint32 { return s.base }

// Size returns the store size in bytes.
func (s *Store) Size() uint32 { return uint32(len(s.data)) }

// InRange reports whether [addr, addr+n) lies inside the store.
func (s *Store) InRange(addr uint32, n uint32) bool {
	return addr >= s.base && uint64(addr)+uint64(n) <= uint64(s.base)+uint64(len(s.data))
}

// Gen returns the mutation generation: it changes on every write through
// any Store method. Callers that cache derived views of the contents (the
// CPU's decoded-instruction cache) compare generations to detect writes
// made behind their back — including Poke-based attack injection.
func (s *Store) Gen() uint64 { return s.gen }

func (s *Store) offset(addr uint32, n int) int {
	if !s.InRange(addr, uint32(n)) {
		panic(fmt.Sprintf("mem: access [%#x,+%d) outside store [%#x,+%#x)",
			addr, n, s.base, len(s.data)))
	}
	return int(addr - s.base)
}

// Read returns the size-byte (1, 2 or 4) little-endian value at addr in the
// low bits of the result.
func (s *Store) Read(addr uint32, size int) uint32 {
	o := s.offset(addr, size)
	var v uint32
	for i := 0; i < size; i++ {
		v |= uint32(s.data[o+i]) << (8 * i)
	}
	return v
}

// Write stores the low size bytes of v at addr, little-endian.
func (s *Store) Write(addr uint32, size int, v uint32) {
	o := s.offset(addr, size)
	s.gen++
	for i := 0; i < size; i++ {
		s.data[o+i] = byte(v >> (8 * i))
	}
}

// ReadWord reads an aligned 32-bit word.
func (s *Store) ReadWord(addr uint32) uint32 { return s.Read(addr, 4) }

// WriteWord writes an aligned 32-bit word.
func (s *Store) WriteWord(addr uint32, v uint32) { s.Write(addr, 4, v) }

// Peek copies n bytes starting at addr. It models an attacker (or debug
// probe) reading the physical memory directly, bypassing bus and firewalls.
func (s *Store) Peek(addr uint32, n int) []byte {
	o := s.offset(addr, n)
	out := make([]byte, n)
	copy(out, s.data[o:o+n])
	return out
}

// View returns a direct read-only window onto n bytes starting at addr,
// without copying. It is the allocation-free sibling of Peek for hot
// readers (the Integrity Core hashes leaf data and tree nodes on every
// secured access). Callers must not write through the returned slice —
// that would bypass the mutation generation — and must not hold it across
// writes they need isolation from.
func (s *Store) View(addr uint32, n int) []byte {
	o := s.offset(addr, n)
	return s.data[o : o+n : o+n]
}

// Poke overwrites len(b) bytes starting at addr, bypassing bus and
// firewalls. It is the attack-injection primitive for external-memory
// tampering.
func (s *Store) Poke(addr uint32, b []byte) {
	o := s.offset(addr, len(b))
	s.gen++
	copy(s.data[o:], b)
}

// Fill sets every byte of [addr, addr+n) to v.
func (s *Store) Fill(addr uint32, n int, v byte) {
	o := s.offset(addr, n)
	s.gen++
	for i := 0; i < n; i++ {
		s.data[o+i] = v
	}
}

// Snapshot returns a copy of the full contents (attack replay support).
func (s *Store) Snapshot() []byte {
	return append([]byte(nil), s.data...)
}

// Restore overwrites the full contents from a snapshot taken earlier.
func (s *Store) Restore(b []byte) {
	if len(b) != len(s.data) {
		panic(fmt.Sprintf("mem: restore size %d != store size %d", len(b), len(s.data)))
	}
	s.gen++
	copy(s.data, b)
}
