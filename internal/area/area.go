// Package area is the parametric FPGA resource model that regenerates the
// paper's Table I (synthesis results on the ML605's Virtex-6
// XC6VLX240T-1).
//
// The paper obtained its numbers from Xilinx XST; this repository has no
// synthesizer, so each module exposes a structural cost model — registers,
// LUTs, fully-used LUT-FF pairs and BRAM36 blocks as functions of the
// module's parameters (rule count, on-chip tag state, core count). The
// constants are calibrated so that the paper's exact configuration
// reproduces the paper's exact rows; away from that point the model moves
// the way the structure does (a firewall grows linearly with its rule
// count, the integrity core with its on-chip tag state), which is what the
// rule-sweep experiment E2 exercises.
//
// Note that Table I's printed percentages are inconsistent with its own
// absolute numbers except for the BRAM column (63/53 = +18.87%); this
// model reproduces the absolute numbers and recomputes percentages (see
// EXPERIMENTS.md).
package area

import "fmt"

// Resources is one module's FPGA footprint in Table I's four columns.
type Resources struct {
	Regs  uint64 // slice registers
	LUTs  uint64 // slice LUTs
	Pairs uint64 // fully used LUT-FF pairs
	BRAM  uint64 // 36Kb block RAMs
}

// Add returns the component-wise sum.
func (r Resources) Add(o Resources) Resources {
	return Resources{r.Regs + o.Regs, r.LUTs + o.LUTs, r.Pairs + o.Pairs, r.BRAM + o.BRAM}
}

// Scale returns the footprint of n instances.
func (r Resources) Scale(n int) Resources {
	u := uint64(n)
	return Resources{r.Regs * u, r.LUTs * u, r.Pairs * u, r.BRAM * u}
}

// String implements fmt.Stringer.
func (r Resources) String() string {
	return fmt.Sprintf("{regs:%d luts:%d pairs:%d bram:%d}", r.Regs, r.LUTs, r.Pairs, r.BRAM)
}

// Calibration constants. The "paper configuration" is: 3 MicroBlaze cores,
// one shared BRAM, one DDR controller, one dedicated IP, 5 Local Firewalls
// with 6 rules each, and one LCF whose Security Builder holds 3 zone rules
// and whose Integrity Core keeps 43,008 bits of on-chip tag state (1024
// version tags + 64 cached nodes — the defaults of internal/soc).
const (
	// CalibLFRules is the per-LF rule count of the calibration point.
	CalibLFRules = 6
	// CalibSBRules is the LCF Security Builder's rule count.
	CalibSBRules = 3
	// CalibICBits is the IC's on-chip tag state at calibration.
	CalibICBits = 1024*32 + 64*(128+32)

	// lfBaseLUTs/lfPerRuleLUTs: a Local Firewall is a rule CAM plus
	// comparators; it grows linearly with monitored rules (§V: "the cost
	// of firewalls is also related to the number of security rules").
	lfPerRuleLUTs = 40
	lfBaseLUTs    = 403 - CalibLFRules*lfPerRuleLUTs
	lfRegs        = 8

	// sbPerRuleLUTs/sbBaseLUTs: same shape for the LCF's Security
	// Builder (Table I row: 0 regs / 393 LUTs / 393 pairs / 0 BRAM).
	sbPerRuleLUTs = 48
	sbBaseLUTs    = 393 - CalibSBRules*sbPerRuleLUTs

	// icLUTsPerTagWord: extra on-chip tag state beyond the calibration
	// point costs distributed RAM, 32 bits per LUT.
	icLUTsPerTagWord = 32
)

// MicroBlazeCore is one soft core with its local memories.
func MicroBlazeCore() Resources { return Resources{2410, 2180, 3010, 12} }

// DDRController is the external-memory controller (MIG).
func DDRController() Resources { return Resources{3500, 2900, 3700, 2} }

// SharedBRAMCtrl is the internal shared memory with its bus controller.
func SharedBRAMCtrl() Resources { return Resources{350, 420, 500, 14} }

// DedicatedIP is the case study's accelerator.
func DedicatedIP() Resources { return Resources{980, 760, 890, 1} }

// BusFabric is the PLB arbiter, decoder and miscellaneous system glue,
// sized to close the base system at the paper's exact "w/o firewalls" row.
func BusFabric() Resources { return Resources{835, 854, 1353, 0} }

// InterfaceAdapter is the LFCB + FI shell around each firewall (bus
// protocol handling, datapath gating, alert wiring). Table I does not list
// it as a row; it is part of the with/without delta.
func InterfaceAdapter() Resources { return Resources{160, 450, 220, 0} }

// SecurityController is the system-level alert aggregation and
// configuration access logic, the remainder of the with/without delta.
func SecurityController() Resources { return Resources{278, 582, 281, 0} }

// LocalFirewall models one LF's Security Builder and Configuration Memory
// as a function of its rule count.
func LocalFirewall(rules int) Resources {
	if rules < 0 {
		rules = 0
	}
	luts := uint64(lfBaseLUTs + rules*lfPerRuleLUTs)
	return Resources{Regs: lfRegs, LUTs: luts, Pairs: luts, BRAM: 0}
}

// SecurityBuilder models the LCF's rule checker.
func SecurityBuilder(rules int) Resources {
	if rules < 0 {
		rules = 0
	}
	luts := uint64(sbBaseLUTs + rules*sbPerRuleLUTs)
	return Resources{Regs: 0, LUTs: luts, Pairs: luts, BRAM: 0}
}

// ConfidentialityCore is the AES-128 engine (32-bit datapath, tables in
// BRAM) — Table I row: 436 / 986 / 344 / 10.
func ConfidentialityCore() Resources { return Resources{436, 986, 344, 10} }

// IntegrityCore models the hash-tree engine. onChipBits is the trusted
// state it must keep (version tags + cached nodes, hashtree.OnChipBits);
// state beyond the calibration point costs distributed RAM.
func IntegrityCore(onChipBits uint64) Resources {
	r := Resources{1224, 1404, 1704, 0}
	if onChipBits > CalibICBits {
		extra := (onChipBits - CalibICBits + icLUTsPerTagWord - 1) / icLUTsPerTagWord
		r.LUTs += extra
		r.Pairs += extra
	}
	return r
}

// LCF composes the Local Ciphering Firewall from its Table I submodules
// plus its interface adapter.
func LCF(sbRules int, onChipBits uint64) Resources {
	return SecurityBuilder(sbRules).
		Add(ConfidentialityCore()).
		Add(IntegrityCore(onChipBits)).
		Add(InterfaceAdapter())
}

// Item is one row of an area report.
type Item struct {
	Name  string
	Count int
	Res   Resources // per instance
}

// Total returns the item's aggregate footprint.
func (i Item) Total() Resources { return i.Res.Scale(i.Count) }

// Report is a bill of materials with a grand total.
type Report struct {
	Title string
	Items []Item
}

// Add appends an item.
func (r *Report) Add(name string, count int, res Resources) {
	r.Items = append(r.Items, Item{Name: name, Count: count, Res: res})
}

// Total sums all items.
func (r *Report) Total() Resources {
	var t Resources
	for _, it := range r.Items {
		t = t.Add(it.Total())
	}
	return t
}

// BaseSystem is the generic platform without protection ("Generic w/o
// firewalls"): numCores soft cores, DDR controller, shared BRAM, dedicated
// IP and bus fabric.
func BaseSystem(numCores int) *Report {
	r := &Report{Title: "generic system w/o firewalls"}
	r.Add("microblaze core", numCores, MicroBlazeCore())
	r.Add("ddr controller", 1, DDRController())
	r.Add("shared bram", 1, SharedBRAMCtrl())
	r.Add("dedicated ip", 1, DedicatedIP())
	r.Add("bus fabric", 1, BusFabric())
	return r
}

// PaperProtected is the paper's exact protected configuration: the base
// system plus 5 Local Firewalls (3 cores, shared memory, dedicated IP),
// their interface adapters, the LCF and the security controller.
func PaperProtected() *Report {
	r := BaseSystem(3)
	r.Title = "generic system w/ firewalls (paper configuration)"
	r.Add("local firewall", 5, LocalFirewall(CalibLFRules))
	r.Add("interface adapter", 5, InterfaceAdapter())
	r.Add("lcf", 1, LCF(CalibSBRules, CalibICBits))
	r.Add("security controller", 1, SecurityController())
	return r
}

// PaperTable1Rows returns the exact rows the paper prints, as (name,
// resources) in the paper's order: the two system totals and the four
// module rows.
func PaperTable1Rows() []Item {
	return []Item{
		{Name: "Generic w/o firewalls", Count: 1, Res: BaseSystem(3).Total()},
		{Name: "Generic w/ firewalls", Count: 1, Res: PaperProtected().Total()},
		{Name: "LCF: SB", Count: 1, Res: SecurityBuilder(CalibSBRules)},
		{Name: "LCF: CC", Count: 1, Res: ConfidentialityCore()},
		{Name: "LCF: IC", Count: 1, Res: IntegrityCore(CalibICBits)},
		{Name: "Local Firewall", Count: 1, Res: LocalFirewall(CalibLFRules)},
	}
}
