package area

import (
	"fmt"

	"repro/internal/soc"
	"repro/internal/trace"
)

// Model entries for components our richer platform has beyond the paper's
// five-interface case study. These are uncalibrated engineering estimates
// used only for platform-to-platform comparisons (distributed vs
// centralized, rule sweeps), never for the Table I reproduction itself.

// MailboxIP is the inter-core FIFO.
func MailboxIP() Resources { return Resources{140, 180, 160, 0} }

// SEMModule models the centralized baseline's Security Enforcement
// Module: a Security Builder over the global rule table plus request
// queue and protocol registers.
func SEMModule(rules int) Resources {
	return SecurityBuilder(rules).Add(Resources{Regs: 320, LUTs: 540, Pairs: 410, BRAM: 0})
}

// SEIAdapter is one IP's Security Enforcement Interface: protocol
// sequencer only — the actual checking lives in the SEM.
func SEIAdapter() Resources { return Resources{96, 210, 130, 0} }

// FromSystem builds the bill of materials of an actual constructed
// platform, reading rule counts and integrity state from the live
// firewalls.
func FromSystem(s *soc.System) *Report {
	r := BaseSystem(len(s.Cores))
	r.Title = fmt.Sprintf("platform (%s, %d cores)", s.Cfg.Protection, len(s.Cores))
	r.Add("mailbox ip", 1, MailboxIP())

	switch s.Cfg.Protection {
	case soc.Unprotected:
		// nothing more

	case soc.Distributed:
		nAdapters := 0
		for i, fw := range s.CoreFWs {
			r.Add(fmt.Sprintf("lf-cpu%d", i), 1, LocalFirewall(fw.Config().RuleCount()))
			nAdapters++
		}
		r.Add("lf-dma (master)", 1, LocalFirewall(s.DMAFW.Config().RuleCount()))
		r.Add("lf-bram", 1, LocalFirewall(s.BRAMFW.Config().RuleCount()))
		r.Add("lf-dmaregs", 1, LocalFirewall(s.DMARegFW.Config().RuleCount()))
		r.Add("lf-mbox", 1, LocalFirewall(s.MboxFW.Config().RuleCount()))
		nAdapters += 4
		var icBits uint64 = CalibICBits
		if t := s.LCF.Tree(); t != nil {
			icBits = t.OnChipBits()
		}
		r.Add("lcf", 1, LCF(s.LCF.Config().RuleCount(), icBits))
		nAdapters++ // the LCF's adapter is inside LCF() already; count others
		r.Add("interface adapter", nAdapters-1, InterfaceAdapter())
		r.Add("security controller", 1, SecurityController())

	case soc.Centralized:
		r.Add("sem", 1, SEMModule(s.SEM.Config().RuleCount()))
		r.Add("sei", len(s.CoreSEIs)+1, SEIAdapter()) // cores + dma
	}
	return r
}

// RenderTable1 renders the reproduced Table I with recomputed overhead
// percentages.
func RenderTable1() string {
	tb := trace.NewTable("Table I — synthesis results of the multiprocessor system (model)",
		"component", "Slice Regs", "Slice LUTs", "LUT-FF pairs", "BRAMs")
	rows := PaperTable1Rows()
	without := rows[0].Res
	with := rows[1].Res
	add := func(name string, r Resources) {
		tb.AddRow(name, trace.Comma(r.Regs), trace.Comma(r.LUTs), trace.Comma(r.Pairs), trace.Comma(r.BRAM))
	}
	add(rows[0].Name, without)
	add(rows[1].Name, with)
	tb.AddRow("  overhead",
		trace.Pct(float64(with.Regs), float64(without.Regs)),
		trace.Pct(float64(with.LUTs), float64(without.LUTs)),
		trace.Pct(float64(with.Pairs), float64(without.Pairs)),
		trace.Pct(float64(with.BRAM), float64(without.BRAM)))
	tb.Separator()
	for _, it := range rows[2:] {
		add(it.Name, it.Res)
	}
	return tb.String()
}

// RenderReport renders a bill of materials.
func RenderReport(r *Report) string {
	tb := trace.NewTable(r.Title, "component", "n", "Slice Regs", "Slice LUTs", "LUT-FF pairs", "BRAMs")
	for _, it := range r.Items {
		t := it.Total()
		tb.AddRow(it.Name, fmt.Sprintf("%d", it.Count),
			trace.Comma(t.Regs), trace.Comma(t.LUTs), trace.Comma(t.Pairs), trace.Comma(t.BRAM))
	}
	tb.Separator()
	total := r.Total()
	tb.AddRow("total", "",
		trace.Comma(total.Regs), trace.Comma(total.LUTs), trace.Comma(total.Pairs), trace.Comma(total.BRAM))
	return tb.String()
}
