package area

import (
	"strings"
	"testing"

	"repro/internal/soc"
)

// TestTableIGenericWithoutFirewalls pins the paper's exact baseline row.
func TestTableIGenericWithoutFirewalls(t *testing.T) {
	got := BaseSystem(3).Total()
	want := Resources{Regs: 12895, LUTs: 11474, Pairs: 15473, BRAM: 53}
	if got != want {
		t.Fatalf("w/o firewalls = %v, want %v (Table I)", got, want)
	}
}

// TestTableIGenericWithFirewalls pins the paper's exact protected row.
func TestTableIGenericWithFirewalls(t *testing.T) {
	got := PaperProtected().Total()
	want := Resources{Regs: 15833, LUTs: 19554, Pairs: 21530, BRAM: 63}
	if got != want {
		t.Fatalf("w/ firewalls = %v, want %v (Table I)", got, want)
	}
}

// TestTableIModuleRows pins the four per-module rows.
func TestTableIModuleRows(t *testing.T) {
	cases := []struct {
		name string
		got  Resources
		want Resources
	}{
		{"SB", SecurityBuilder(CalibSBRules), Resources{0, 393, 393, 0}},
		{"CC", ConfidentialityCore(), Resources{436, 986, 344, 10}},
		{"IC", IntegrityCore(CalibICBits), Resources{1224, 1404, 1704, 0}},
		{"LF", LocalFirewall(CalibLFRules), Resources{8, 403, 403, 0}},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v (Table I)", c.name, c.got, c.want)
		}
	}
}

// TestBRAMOverheadMatchesPaperPercentage: the only percentage in the
// paper's Table I that is consistent with its absolute numbers.
func TestBRAMOverheadMatchesPaperPercentage(t *testing.T) {
	w := PaperProtected().Total().BRAM
	wo := BaseSystem(3).Total().BRAM
	pct := float64(w-wo) / float64(wo) * 100
	if pct < 18.8 || pct > 18.9 {
		t.Fatalf("BRAM overhead = %.2f%%, paper prints +18.87%%", pct)
	}
}

// TestCryptoDominatesLCF checks the paper's observation that the CC and IC
// account for about 90% of the Local Ciphering Firewall's area.
func TestCryptoDominatesLCF(t *testing.T) {
	lcf := LCF(CalibSBRules, CalibICBits)
	crypto := ConfidentialityCore().Add(IntegrityCore(CalibICBits))
	share := float64(crypto.LUTs+crypto.Regs) / float64(lcf.LUTs+lcf.Regs)
	if share < 0.70 {
		t.Fatalf("crypto share of LCF = %.0f%%, paper says ~90%%", share*100)
	}
}

// TestLFCostIsLimited checks the paper's headline qualitative claim: a
// Local Firewall is small next to the system and tiny next to the LCF.
func TestLFCostIsLimited(t *testing.T) {
	lf := LocalFirewall(CalibLFRules)
	sys := BaseSystem(3).Total()
	if float64(lf.LUTs) > 0.05*float64(sys.LUTs) {
		t.Fatalf("LF = %d LUTs, more than 5%% of the %d-LUT system", lf.LUTs, sys.LUTs)
	}
	lcf := LCF(CalibSBRules, CalibICBits)
	if lf.LUTs*4 > lcf.LUTs {
		t.Fatalf("LF (%d LUTs) not clearly smaller than LCF (%d LUTs)", lf.LUTs, lcf.LUTs)
	}
}

// TestRuleSweepMonotoneLinear is the E2 structure: firewall area grows
// linearly with the number of monitored rules.
func TestRuleSweepMonotoneLinear(t *testing.T) {
	prev := LocalFirewall(0).LUTs
	delta := uint64(0)
	for rules := 1; rules <= 64; rules++ {
		cur := LocalFirewall(rules).LUTs
		if cur <= prev {
			t.Fatalf("LF area not monotone at %d rules", rules)
		}
		d := cur - prev
		if delta == 0 {
			delta = d
		} else if d != delta {
			t.Fatalf("LF area not linear at %d rules: step %d vs %d", rules, d, delta)
		}
		prev = cur
	}
	if SecurityBuilder(10).LUTs <= SecurityBuilder(3).LUTs {
		t.Fatal("SB area not monotone in rules")
	}
}

func TestIntegrityCoreGrowsWithTagState(t *testing.T) {
	base := IntegrityCore(CalibICBits)
	bigger := IntegrityCore(CalibICBits * 4)
	if bigger.LUTs <= base.LUTs {
		t.Fatal("IC area ignores on-chip tag state")
	}
	smaller := IntegrityCore(0)
	if smaller != base {
		t.Fatal("IC below calibration point should clamp to the paper row")
	}
}

func TestNegativeRulesClamped(t *testing.T) {
	if LocalFirewall(-5) != LocalFirewall(0) {
		t.Fatal("negative rules not clamped")
	}
	if SecurityBuilder(-5) != SecurityBuilder(0) {
		t.Fatal("negative rules not clamped")
	}
}

func TestResourcesArithmetic(t *testing.T) {
	a := Resources{1, 2, 3, 4}
	b := Resources{10, 20, 30, 40}
	if a.Add(b) != (Resources{11, 22, 33, 44}) {
		t.Fatal("Add wrong")
	}
	if a.Scale(3) != (Resources{3, 6, 9, 12}) {
		t.Fatal("Scale wrong")
	}
	if !strings.Contains(a.String(), "regs:1") {
		t.Fatal("String wrong")
	}
}

func TestFromSystemDistributedExceedsUnprotected(t *testing.T) {
	un := FromSystem(soc.MustNew(soc.Config{Protection: soc.Unprotected})).Total()
	di := FromSystem(soc.MustNew(soc.Config{Protection: soc.Distributed})).Total()
	ce := FromSystem(soc.MustNew(soc.Config{Protection: soc.Centralized})).Total()
	if di.LUTs <= un.LUTs || di.Regs <= un.Regs || di.BRAM <= un.BRAM {
		t.Fatalf("distributed (%v) not larger than unprotected (%v)", di, un)
	}
	if ce.LUTs <= un.LUTs {
		t.Fatalf("centralized (%v) not larger than unprotected (%v)", ce, un)
	}
	// The distributed scheme pays more area than the centralized rule
	// checker because it alone carries the crypto cores — the paper's
	// trade-off.
	if di.LUTs <= ce.LUTs {
		t.Fatalf("distributed (%v) should out-size centralized (%v): it adds CC+IC", di, ce)
	}
}

func TestFromSystemTracksRulePadding(t *testing.T) {
	base := FromSystem(soc.MustNew(soc.Config{Protection: soc.Distributed})).Total()
	padded := FromSystem(soc.MustNew(soc.Config{Protection: soc.Distributed, ExtraRulesPerLF: 32})).Total()
	if padded.LUTs <= base.LUTs {
		t.Fatal("rule padding invisible to the area model")
	}
}

func TestRenderTable1Shape(t *testing.T) {
	out := RenderTable1()
	for _, want := range []string{
		"12,895", "11,474", "15,473", "53",
		"15,833", "19,554", "21,530", "63",
		"393", "986", "1,404", "403",
		"+18.87%", "Slice Regs", "BRAMs",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I rendering missing %q:\n%s", want, out)
		}
	}
}

func TestRenderReportShape(t *testing.T) {
	out := RenderReport(FromSystem(soc.MustNew(soc.Config{Protection: soc.Distributed})))
	for _, want := range []string{"lf-cpu0", "lcf", "total", "microblaze"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
