package soc

import (
	"repro/internal/core"
	"repro/internal/cpu"
)

// CoreStat is one core's performance counters labeled with its name, in the
// shape the sweep pipeline serializes per run.
type CoreStat struct {
	Name string `json:"name"`
	cpu.Stats
}

// CoreStats snapshots every core's counters in core-index order.
func (s *System) CoreStats() []CoreStat {
	out := make([]CoreStat, len(s.Cores))
	for i, c := range s.Cores {
		out[i] = CoreStat{Name: c.Name(), Stats: c.Stats()}
	}
	return out
}

// FirewallStats snapshots every security enforcement point on the platform
// in a fixed, deterministic order (core-side interfaces first, then the
// shared ones). The unprotected platform has none and returns nil.
func (s *System) FirewallStats() []core.Snapshot {
	var out []core.Snapshot
	switch s.Cfg.Protection {
	case Distributed:
		for _, fw := range s.CoreFWs {
			out = append(out, fw.StatsSnapshot())
		}
		out = append(out,
			s.DMAFW.StatsSnapshot(),
			s.BRAMFW.StatsSnapshot(),
			s.DMARegFW.StatsSnapshot(),
			s.MboxFW.StatsSnapshot(),
			s.AlertFW.StatsSnapshot(),
			s.LCF.StatsSnapshot(),
		)
	case Centralized:
		out = append(out, s.SEM.StatsSnapshot())
		for _, sei := range s.CoreSEIs {
			out = append(out, sei.StatsSnapshot())
		}
		out = append(out, s.DMASEI.StatsSnapshot())
	}
	return out
}
