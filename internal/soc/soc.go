// Package soc assembles the paper's case-study platform (Figure 1): three
// MB32 soft cores (the MicroBlaze substitutes), one internal shared BRAM,
// one external DDR memory, one dedicated IP (a DMA engine) and a mailbox,
// all on a shared system bus — buildable without protection, with the
// distributed firewalls of the paper, or with the centralized SECA-style
// baseline.
package soc

import (
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/hashtree"
	"repro/internal/ip"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Platform memory map. Core-local memories live at LocalBase in each
// core's private address space and never appear on the bus.
const (
	LocalBase = 0x0000_0000
	LocalSize = 0x1_0000 // 64 KiB per core

	BRAMBase = 0x1000_0000
	BRAMSize = 0x1_0000 // 64 KiB internal shared memory

	DMABase   = 0x2000_0000
	MboxBase  = 0x3000_0000
	AlertBase = 0x3800_0000 // software-visible alert queue (security manager)

	DDRBase = 0x4000_0000
	DDRSize = 0x8_0000 // 512 KiB external memory

	// External memory layout (offsets within the DDR):
	SecureBase = DDRBase           // confidentiality + integrity
	SecureSize = 0x8000            // 32 KiB
	CipherBase = DDRBase + 0x10000 // confidentiality only
	CipherSize = 0x8000
	PlainBase  = DDRBase + 0x20000 // unprotected
	PlainSize  = 0x1_0000
	NodeBase   = DDRBase + 0x40000 // hash-tree nodes (no policy: software-inaccessible)

	SEMBase = 0x6000_0000 // centralized baseline only
)

// DefaultKeys are the per-zone AES-128 cryptographic keys (CK) burned into
// the LCF's configuration memory.
var (
	SecureKey = [16]byte{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF}
	CipherKey = [16]byte{0xF0, 0xE1, 0xD2, 0xC3, 0xB4, 0xA5, 0x96, 0x87, 0x78, 0x69, 0x5A, 0x4B, 0x3C, 0x2D, 0x1E, 0x0F}
)

// Protection selects the security architecture of the platform.
type Protection uint8

// Protection levels.
const (
	// Unprotected: the generic system without firewalls (the paper's
	// "Generic w/o firewalls" baseline row).
	Unprotected Protection = iota
	// Distributed: the paper's contribution — Local Firewalls at every
	// IP interface plus the Local Ciphering Firewall on the external
	// memory.
	Distributed
	// Centralized: the SECA-style related-work baseline — per-IP SEIs
	// consulting one global SEM over the bus (rule checks only; the
	// external memory stays unciphered, as in SECA).
	Centralized
)

// String implements fmt.Stringer.
func (p Protection) String() string {
	switch p {
	case Unprotected:
		return "unprotected"
	case Distributed:
		return "distributed-firewalls"
	case Centralized:
		return "centralized-sem"
	default:
		return fmt.Sprintf("protection(%d)", uint8(p))
	}
}

// Config parameterizes the platform.
type Config struct {
	// NumCores is the processor count (default 3, the paper's case
	// study).
	NumCores int
	// Protection selects the security architecture.
	Protection Protection
	// Frequency is the system clock (default 100 MHz).
	Frequency sim.Frequency
	// TrapOnBusError makes cores halt on discarded transfers (default:
	// record and continue, the paper's "discard" semantics).
	TrapOnBusError bool
	// TreeCacheSize tunes the LCF's verified-node cache (0 = default 64,
	// negative = disabled).
	TreeCacheSize int
	// ExtraRulesPerLF pads every Local Firewall's configuration memory
	// with additional (never-matching) rules, for the rule-count sweeps
	// the paper flags as the main area driver.
	ExtraRulesPerLF int
	// CheckCycles overrides the Security Builder latency when non-zero.
	CheckCycles uint64
	// QuarantineThreshold enables the reaction controller (the paper's
	// future-work "reconfiguration of security services to counter
	// attacks"): an IP accumulating this many violations within
	// QuarantineWindow cycles has its policy rewritten to deny-all.
	// Zero disables the reactor. Distributed protection only.
	QuarantineThreshold int
	// QuarantineWindow is the sliding window in cycles (0 = unbounded).
	QuarantineWindow uint64
	// Arbitration selects the bus arbitration policy (round-robin by
	// default).
	Arbitration bus.Arbitration
	// CorePolicies, when non-nil, replaces the default per-core master
	// security policy (e.g. rules loaded from JSON via
	// core.PoliciesFromJSON). Distributed protection only.
	CorePolicies []core.Policy
}

// System is a built platform.
type System struct {
	Cfg   Config
	Eng   *sim.Engine
	Bus   *bus.Bus
	Cores []*cpu.Core
	BRAM  *mem.BRAM
	DDR   *mem.DDR
	DMA   *ip.DMA
	Mbox  *ip.Mailbox

	// Distributed protection (nil when not selected).
	Alerts   *core.AlertLog
	CoreFWs  []*core.LocalFirewall
	DMAFW    *core.LocalFirewall
	BRAMFW   *core.SlaveFirewall
	DMARegFW *core.SlaveFirewall
	MboxFW   *core.SlaveFirewall
	LCF      *core.CipherFirewall

	// AlertPort exposes the alert queue to on-chip software; on the
	// distributed platform its registers are restricted to cpu0 (the
	// security-manager core).
	AlertPort *ip.AlertPort
	AlertFW   *core.SlaveFirewall

	// Reactor is the quarantine controller (nil unless
	// QuarantineThreshold is set on a distributed platform).
	Reactor *core.Reactor

	// Centralized baseline (nil when not selected).
	SEM      *baseline.SEM
	CoreSEIs []*baseline.SEI
	DMASEI   *baseline.SEI
}

// CoreName returns the canonical name of core i.
func CoreName(i int) string { return fmt.Sprintf("cpu%d", i) }

// coreMasterPolicy is the per-core security policy: which zones the core
// may touch, in which direction and format (§IV-A parameters).
func coreMasterPolicy() []core.Policy {
	return []core.Policy{
		{SPI: 100, Zone: core.Zone{Base: BRAMBase, Size: BRAMSize}, RWA: core.ReadWrite, ADF: core.AnyWidth},
		{SPI: 101, Zone: core.Zone{Base: DMABase, Size: 0x20}, RWA: core.ReadWrite, ADF: core.W32},
		{SPI: 102, Zone: core.Zone{Base: MboxBase, Size: 0x10}, RWA: core.ReadWrite, ADF: core.W32},
		{SPI: 103, Zone: core.Zone{Base: SecureBase, Size: SecureSize}, RWA: core.ReadWrite, ADF: core.AnyWidth},
		{SPI: 104, Zone: core.Zone{Base: CipherBase, Size: CipherSize}, RWA: core.ReadWrite, ADF: core.AnyWidth},
		{SPI: 105, Zone: core.Zone{Base: PlainBase, Size: PlainSize}, RWA: core.ReadWrite, ADF: core.AnyWidth},
		{SPI: 106, Zone: core.Zone{Base: AlertBase, Size: 0x20}, RWA: core.ReadWrite, ADF: core.W32},
	}
}

// lcfPolicy is the external-memory policy: the three DDR zones with their
// confidentiality/integrity modes and keys.
func lcfPolicy() []core.Policy {
	return []core.Policy{
		{SPI: 300, Zone: core.Zone{Base: SecureBase, Size: SecureSize}, RWA: core.ReadWrite,
			ADF: core.AnyWidth, CM: true, IM: true, Key: SecureKey},
		{SPI: 301, Zone: core.Zone{Base: CipherBase, Size: CipherSize}, RWA: core.ReadWrite,
			ADF: core.AnyWidth, CM: true, Key: CipherKey},
		{SPI: 302, Zone: core.Zone{Base: PlainBase, Size: PlainSize}, RWA: core.ReadWrite,
			ADF: core.AnyWidth},
	}
}

// padRules appends n never-matching filler rules (distinct zones above the
// platform map) so rule-count sweeps exercise larger configuration
// memories without changing behaviour.
func padRules(rules []core.Policy, n int) []core.Policy {
	for i := 0; i < n; i++ {
		rules = append(rules, core.Policy{
			SPI:  uint32(9000 + i),
			Zone: core.Zone{Base: 0xF000_0000 + uint32(i)*0x100, Size: 0x100},
			RWA:  core.ReadOnly, ADF: core.W32,
		})
	}
	return rules
}

// MaxCores bounds Config.NumCores; the bus arbiter and the per-core
// policy SPIs are sized for it.
const MaxCores = 16

// New builds the platform.
func New(cfg Config) (*System, error) {
	if cfg.NumCores == 0 {
		cfg.NumCores = 3
	}
	if cfg.NumCores < 1 || cfg.NumCores > MaxCores {
		return nil, fmt.Errorf("soc: NumCores %d out of range [1,%d]", cfg.NumCores, MaxCores)
	}
	if cfg.Frequency == 0 {
		cfg.Frequency = sim.DefaultFrequency
	}
	checkCycles := cfg.CheckCycles
	if checkCycles == 0 {
		checkCycles = core.DefaultCheckCycles
	}

	s := &System{Cfg: cfg}
	s.Eng = sim.NewEngine(cfg.Frequency)
	s.Bus = bus.New(s.Eng, bus.Config{Name: "plb", Arbitration: cfg.Arbitration})
	s.Alerts = core.NewAlertLog()

	s.BRAM = mem.NewBRAM("bram", BRAMBase, BRAMSize)
	s.DDR = mem.NewDDR("ddr", DDRBase, DDRSize)
	s.Mbox = ip.NewMailbox("mbox", MboxBase)
	s.AlertPort = ip.NewAlertPort("alerts", AlertBase, s.Alerts)

	switch cfg.Protection {
	case Unprotected:
		s.Bus.AddSlave(s.BRAM)
		s.Bus.AddSlave(s.Mbox)
		s.Bus.AddSlave(s.DDR)
		s.Bus.AddSlave(s.AlertPort)
		s.DMA = ip.NewDMA(s.Eng, "dma", DMABase, s.Bus.NewMaster("dma"))
		s.Bus.AddSlave(s.DMA)
		for i := 0; i < cfg.NumCores; i++ {
			s.addCore(i, s.Bus.NewMaster(CoreName(i)))
		}

	case Distributed:
		// CorePolicies is the one rule set that can come from user input
		// (policy files, campaign specs); validate it here so New returns
		// an error instead of the MustConfig panic below — a malformed
		// request must not kill a serving process.
		if cfg.CorePolicies != nil {
			if _, err := core.NewConfigMemory(cfg.CorePolicies...); err != nil {
				return nil, fmt.Errorf("soc: core policies: %w", err)
			}
		}
		// Slave-side Local Firewalls on internal IPs.
		bramRules := padRules([]core.Policy{
			{SPI: 200, Zone: core.Zone{Base: BRAMBase, Size: BRAMSize}, RWA: core.ReadWrite,
				ADF: core.AnyWidth, Origins: coreAndDMANames(cfg.NumCores)},
		}, cfg.ExtraRulesPerLF)
		s.BRAMFW = core.NewSlaveFirewall("lf-bram", s.BRAM, core.MustConfig(bramRules...), s.Alerts)
		s.BRAMFW.CheckCycles = checkCycles
		s.Bus.AddSlave(s.BRAMFW)

		mboxRules := padRules([]core.Policy{
			{SPI: 210, Zone: core.Zone{Base: MboxBase, Size: 0x10}, RWA: core.ReadWrite,
				ADF: core.W32, Origins: coreNames(cfg.NumCores)},
		}, cfg.ExtraRulesPerLF)
		s.MboxFW = core.NewSlaveFirewall("lf-mbox", s.Mbox, core.MustConfig(mboxRules...), s.Alerts)
		s.MboxFW.CheckCycles = checkCycles
		s.Bus.AddSlave(s.MboxFW)

		// The alert queue is the security manager's eyes: only cpu0 may
		// read or drain it.
		alertRules := padRules([]core.Policy{
			{SPI: 240, Zone: core.Zone{Base: AlertBase, Size: 0x20}, RWA: core.ReadWrite,
				ADF: core.W32, Origins: []string{CoreName(0)}},
		}, cfg.ExtraRulesPerLF)
		s.AlertFW = core.NewSlaveFirewall("lf-alerts", s.AlertPort, core.MustConfig(alertRules...), s.Alerts)
		s.AlertFW.CheckCycles = checkCycles
		s.Bus.AddSlave(s.AlertFW)

		// The DMA is dual-guarded: a master-side LF on its bus path and a
		// slave-side LF on its register file (only cpu0 may program it).
		dmaMasterRules := padRules([]core.Policy{
			{SPI: 220, Zone: core.Zone{Base: BRAMBase, Size: BRAMSize}, RWA: core.ReadWrite, ADF: core.AnyWidth},
			{SPI: 221, Zone: core.Zone{Base: PlainBase, Size: PlainSize}, RWA: core.ReadWrite, ADF: core.AnyWidth},
		}, cfg.ExtraRulesPerLF)
		s.DMAFW = core.NewLocalFirewall(s.Eng, "lf-dma", s.Bus.NewMaster("dma"),
			core.MustConfig(dmaMasterRules...), s.Alerts)
		s.DMAFW.CheckCycles = checkCycles
		s.DMAFW.Owner = "dma"
		s.DMA = ip.NewDMA(s.Eng, "dma", DMABase, s.DMAFW)
		dmaRegRules := padRules([]core.Policy{
			{SPI: 230, Zone: core.Zone{Base: DMABase, Size: 0x20}, RWA: core.ReadWrite,
				ADF: core.W32, Origins: []string{CoreName(0)}},
		}, cfg.ExtraRulesPerLF)
		s.DMARegFW = core.NewSlaveFirewall("lf-dmaregs", s.DMA, core.MustConfig(dmaRegRules...), s.Alerts)
		s.DMARegFW.CheckCycles = checkCycles
		s.Bus.AddSlave(s.DMARegFW)

		// Local Ciphering Firewall on the external memory.
		lcf, err := core.NewCipherFirewall(core.LCFConfig{
			Name:          "lcf-ddr",
			CheckCycles:   checkCycles,
			IntegrityZone: core.Zone{Base: SecureBase, Size: SecureSize},
			NodeBase:      NodeBase,
			CacheSize:     cfg.TreeCacheSize,
		}, s.DDR, s.DDR.Store(), core.MustConfig(padRules(lcfPolicy(), cfg.ExtraRulesPerLF)...), s.Alerts)
		if err != nil {
			return nil, err
		}
		s.LCF = lcf
		s.Bus.AddSlave(lcf)

		// Master-side Local Firewalls on every core.
		for i := 0; i < cfg.NumCores; i++ {
			base := coreMasterPolicy()
			if cfg.CorePolicies != nil {
				base = append([]core.Policy(nil), cfg.CorePolicies...)
			}
			rules := padRules(base, cfg.ExtraRulesPerLF)
			fw := core.NewLocalFirewall(s.Eng, "lf-"+CoreName(i),
				s.Bus.NewMaster(CoreName(i)), core.MustConfig(rules...), s.Alerts)
			fw.CheckCycles = checkCycles
			fw.Owner = CoreName(i)
			s.CoreFWs = append(s.CoreFWs, fw)
			s.addCore(i, fw)
		}
		lcf.Seal()

		if cfg.QuarantineThreshold > 0 {
			s.Reactor = core.NewReactor(s.Alerts, cfg.QuarantineThreshold, cfg.QuarantineWindow)
			s.Reactor.Clock = s.Eng.Now
			for i, fw := range s.CoreFWs {
				s.Reactor.Guard(CoreName(i), fw.Config())
			}
			s.Reactor.Guard("dma", s.DMAFW.Config())
		}

	case Centralized:
		s.Bus.AddSlave(s.BRAM)
		s.Bus.AddSlave(s.Mbox)
		s.Bus.AddSlave(s.DDR)
		// One global policy table inside the SEM, encoding the same
		// *effective* access matrix the distributed firewalls enforce
		// pairwise (master rule AND slave rule), flattened with explicit
		// origins since a single table checks each access exactly once.
		cores := coreNames(cfg.NumCores)
		global := []core.Policy{
			{SPI: 400, Zone: core.Zone{Base: BRAMBase, Size: BRAMSize}, RWA: core.ReadWrite,
				ADF: core.AnyWidth, Origins: coreAndDMANames(cfg.NumCores)},
			{SPI: 401, Zone: core.Zone{Base: MboxBase, Size: 0x10}, RWA: core.ReadWrite,
				ADF: core.W32, Origins: cores},
			{SPI: 402, Zone: core.Zone{Base: DMABase, Size: 0x20}, RWA: core.ReadWrite,
				ADF: core.W32, Origins: []string{CoreName(0)}},
			{SPI: 403, Zone: core.Zone{Base: SecureBase, Size: SecureSize}, RWA: core.ReadWrite,
				ADF: core.AnyWidth, Origins: cores},
			{SPI: 404, Zone: core.Zone{Base: CipherBase, Size: CipherSize}, RWA: core.ReadWrite,
				ADF: core.AnyWidth, Origins: cores},
			{SPI: 405, Zone: core.Zone{Base: PlainBase, Size: PlainSize}, RWA: core.ReadWrite,
				ADF: core.AnyWidth, Origins: coreAndDMANames(cfg.NumCores)},
			{SPI: 406, Zone: core.Zone{Base: AlertBase, Size: 0x20}, RWA: core.ReadWrite,
				ADF: core.W32, Origins: []string{CoreName(0)}},
		}
		s.SEM = baseline.NewSEM(s.Eng, "sem", SEMBase, core.MustConfig(padRules(global, cfg.ExtraRulesPerLF)...), s.Alerts)
		s.SEM.CheckCycles = checkCycles
		s.Bus.AddSlave(s.SEM)
		s.Bus.AddSlave(s.AlertPort)
		dmaSEI := baseline.NewSEI("sei-dma", s.Bus.NewMaster("dma"), SEMBase)
		s.DMASEI = dmaSEI
		s.DMA = ip.NewDMA(s.Eng, "dma", DMABase, dmaSEI)
		s.Bus.AddSlave(s.DMA)
		for i := 0; i < cfg.NumCores; i++ {
			sei := baseline.NewSEI("sei-"+CoreName(i), s.Bus.NewMaster(CoreName(i)), SEMBase)
			s.CoreSEIs = append(s.CoreSEIs, sei)
			s.addCore(i, sei)
		}

	default:
		return nil, fmt.Errorf("soc: unknown protection %d", cfg.Protection)
	}
	// The alert queue interrupts the security-manager core (cpu0);
	// delivery is gated by software installing a handler (CsrIvec).
	s.AlertPort.IRQ = s.Cores[0].RaiseIRQ
	return s, nil
}

// MustNew is New for statically known-good configurations.
func MustNew(cfg Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *System) addCore(i int, conn bus.Conn) {
	c := cpu.New(s.Eng, cpu.Config{
		Name:           CoreName(i),
		ID:             uint32(i),
		LocalBase:      LocalBase,
		LocalSize:      LocalSize,
		TrapOnBusError: s.Cfg.TrapOnBusError,
	}, conn)
	s.Cores = append(s.Cores, c)
}

func coreNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = CoreName(i)
	}
	return names
}

func coreAndDMANames(n int) []string {
	return append(coreNames(n), "dma")
}

// Load assembles src and loads it into core i.
func (s *System) Load(i int, src string) error {
	p, err := isa.Assemble(src, LocalBase)
	if err != nil {
		return err
	}
	s.Cores[i].Load(p)
	return nil
}

// MustLoad is Load that panics on assembly errors.
func (s *System) MustLoad(i int, src string) {
	if err := s.Load(i, src); err != nil {
		panic(err)
	}
}

// LoadProgram loads a pre-assembled program into core i.
func (s *System) LoadProgram(i int, p *isa.Program) { s.Cores[i].Load(p) }

// HaltIdleCores halts every core that has no program (all-zero local
// memory decodes as add r0,r0,r0 forever otherwise).
func (s *System) HaltIdleCores(except ...int) {
	skip := make(map[int]bool, len(except))
	for _, e := range except {
		skip[e] = true
	}
	halt := isa.MustAssemble("halt", LocalBase)
	for i, c := range s.Cores {
		if !skip[i] {
			c.Load(halt)
		}
	}
}

// AllHalted reports whether every core has stopped.
func (s *System) AllHalted() bool {
	for _, c := range s.Cores {
		if h, _ := c.Halted(); !h {
			return false
		}
	}
	return true
}

// Run advances the platform until every core halts or max cycles elapse,
// returning the cycle count consumed and whether all cores halted.
func (s *System) Run(max uint64) (uint64, bool) {
	return s.Eng.RunUntil(s.AllHalted, max)
}

// Topology renders the platform structure — the executable Figure 1.
func (s *System) Topology() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Platform (%s, %s)\n", s.Cfg.Protection, s.Eng.Frequency())
	fmt.Fprintf(&sb, "  system bus %q (round-robin arbiter, %d masters)\n",
		s.Bus.Name(), len(s.Cores)+1)
	for i, c := range s.Cores {
		guard := "direct"
		switch s.Cfg.Protection {
		case Distributed:
			guard = "via " + s.CoreFWs[i].Name()
		case Centralized:
			guard = "via " + s.CoreSEIs[i].Name()
		}
		fmt.Fprintf(&sb, "  master %-6s local[%#x,+%#x] -> bus (%s)\n",
			c.Name(), LocalBase, LocalSize, guard)
	}
	dmaGuard := "direct"
	switch s.Cfg.Protection {
	case Distributed:
		dmaGuard = "via lf-dma"
	case Centralized:
		dmaGuard = "via sei-dma"
	}
	fmt.Fprintf(&sb, "  master dma    -> bus (%s)\n", dmaGuard)
	for _, sl := range s.Bus.Slaves() {
		fmt.Fprintf(&sb, "  slave  %-8s [%#x,+%#x)", sl.Name(), sl.Base(), sl.Size())
		switch v := sl.(type) {
		case *core.SlaveFirewall:
			fmt.Fprintf(&sb, "  guarded by %s (%d rules)", v.FirewallID(), v.Config().RuleCount())
		case *core.CipherFirewall:
			fmt.Fprintf(&sb, "  guarded by %s (%d rules, CC+IC", v.FirewallID(), v.Config().RuleCount())
			if t := v.Tree(); t != nil {
				fmt.Fprintf(&sb, ", tree depth %d", t.Depth())
			}
			sb.WriteString(")")
		}
		sb.WriteString("\n")
	}
	if s.Cfg.Protection == Distributed {
		fmt.Fprintf(&sb, "  external memory zones: secure[%#x,+%#x] CM+IM, cipher[%#x,+%#x] CM, plain[%#x,+%#x]\n",
			SecureBase, SecureSize, CipherBase, CipherSize, PlainBase, PlainSize)
	}
	return sb.String()
}

// LeafSizeBytes re-exports the integrity granularity for callers that
// compute attack addresses.
const LeafSizeBytes = hashtree.LeafSize
