package soc_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/soc"
	"repro/internal/workload"
)

func TestBuildAllProtections(t *testing.T) {
	for _, p := range []soc.Protection{soc.Unprotected, soc.Distributed, soc.Centralized} {
		s, err := soc.New(soc.Config{Protection: p})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if len(s.Cores) != 3 {
			t.Fatalf("%v: %d cores, want 3 (paper's case study)", p, len(s.Cores))
		}
		if s.DMA == nil || s.BRAM == nil || s.DDR == nil || s.Mbox == nil {
			t.Fatalf("%v: missing platform component", p)
		}
		switch p {
		case soc.Distributed:
			if len(s.CoreFWs) != 3 || s.LCF == nil || s.BRAMFW == nil || s.DMARegFW == nil || s.MboxFW == nil || s.DMAFW == nil {
				t.Fatalf("distributed build missing firewalls")
			}
		case soc.Centralized:
			if s.SEM == nil || len(s.CoreSEIs) != 3 || s.DMASEI == nil {
				t.Fatalf("centralized build missing SEIs/SEM")
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := soc.New(soc.Config{NumCores: 17}); err == nil {
		t.Fatal("17 cores accepted")
	}
	if _, err := soc.New(soc.Config{NumCores: -1}); err == nil {
		t.Fatal("negative cores accepted")
	}
}

// TestBadCorePoliciesError: user-supplied policies (policy files, campaign
// specs) must surface as an error from New, never as a panic — the
// campaign service turns this error into a 400.
func TestBadCorePoliciesError(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("New panicked on malformed core policies: %v", r)
		}
	}()
	_, err := soc.New(soc.Config{
		Protection:   soc.Distributed,
		CorePolicies: []core.Policy{{SPI: 1}}, // zero-size zone
	})
	if err == nil {
		t.Fatal("zero-size-zone policy accepted")
	}
	if !strings.Contains(err.Error(), "core policies") {
		t.Fatalf("error %q does not attribute the policy source", err)
	}
}

// runAll runs the platform to completion and fails the test on timeout.
func runAll(t *testing.T, s *soc.System, max uint64) uint64 {
	t.Helper()
	cycles, ok := s.Run(max)
	if !ok {
		for i, c := range s.Cores {
			h, cause := c.Halted()
			t.Logf("core %d: halted=%v cause=%v pc=%#x", i, h, cause, c.PC())
		}
		t.Fatal("platform did not finish")
	}
	return cycles
}

func TestMatMulOnAllProtections(t *testing.T) {
	const n = 8
	want := workload.MatMulChecksum(n)
	for _, p := range []soc.Protection{soc.Unprotected, soc.Distributed, soc.Centralized} {
		s := soc.MustNew(soc.Config{Protection: p})
		s.HaltIdleCores(0)
		s.MustLoad(0, workload.MatMulLocal(n, soc.BRAMBase+0x100))
		runAll(t, s, 10_000_000)
		if got := s.BRAM.Store().ReadWord(soc.BRAMBase + 0x100); got != want {
			t.Errorf("%v: matmul checksum %#x, want %#x", p, got, want)
		}
	}
}

func TestThreeCoresSharedMemory(t *testing.T) {
	s := soc.MustNew(soc.Config{Protection: soc.Distributed})
	// Each core writes its id+1 to its BRAM slot, then core 0 verifies.
	for i := 0; i < 3; i++ {
		s.MustLoad(i, workload.Stream(soc.BRAMBase+uint32(i)*4, 1, 4, 0)) // placeholder; replaced below
	}
	for i := 0; i < 3; i++ {
		src := `
			csrr r1, 0        ; core id
			addi r2, r1, 1
			slli r3, r1, 2
			li   r4, 0x10000000
			add  r4, r4, r3
			sw   r2, 0(r4)
			halt
		`
		s.MustLoad(i, src)
	}
	runAll(t, s, 1_000_000)
	for i := uint32(0); i < 3; i++ {
		if got := s.BRAM.Store().ReadWord(soc.BRAMBase + 4*i); got != i+1 {
			t.Fatalf("core %d slot = %d, want %d", i, got, i+1)
		}
	}
	if s.Alerts.Len() != 0 {
		t.Fatalf("legal traffic raised alerts: %v", s.Alerts.All())
	}
}

func TestProducerConsumerAcrossCores(t *testing.T) {
	const count = 40
	for _, p := range []soc.Protection{soc.Unprotected, soc.Distributed} {
		s := soc.MustNew(soc.Config{Protection: p})
		s.HaltIdleCores(0, 1)
		s.MustLoad(0, workload.Producer(soc.MboxBase, count))
		s.MustLoad(1, workload.Consumer(soc.MboxBase, count, soc.BRAMBase+0x200))
		runAll(t, s, 20_000_000)
		want := workload.ProducerChecksum(count)
		if got := s.BRAM.Store().ReadWord(soc.BRAMBase + 0x200); got != want {
			t.Errorf("%v: consumer sum %d, want %d", p, got, want)
		}
	}
}

func TestSecureExternalMemoryEndToEnd(t *testing.T) {
	// A core writes a block into the CM+IM zone and reads it back; the
	// data is stored encrypted and round-trips exactly.
	s := soc.MustNew(soc.Config{Protection: soc.Distributed})
	s.HaltIdleCores(0)
	s.MustLoad(0, `
		li r1, 0x40000000     ; secure zone
		li r2, 0x5EC0DE
		sw r2, 0(r1)
		lw r3, 0(r1)
		li r4, 0x10000000
		sw r3, 0(r4)          ; publish to BRAM
		halt
	`)
	runAll(t, s, 1_000_000)
	if got := s.BRAM.Store().ReadWord(soc.BRAMBase); got != 0x5EC0DE {
		t.Fatalf("secure round trip via CPU = %#x", got)
	}
	if got := s.DDR.Store().ReadWord(soc.SecureBase); got == 0x5EC0DE {
		t.Fatal("plaintext visible in external memory")
	}
	if cs := s.LCF.Crypto(); cs.BlocksEnciphered == 0 || cs.BlocksDeciphered == 0 {
		t.Fatalf("LCF crypto not exercised: %+v", cs)
	}
}

func TestDMAWorksUnderDistributedProtection(t *testing.T) {
	s := soc.MustNew(soc.Config{Protection: soc.Distributed})
	s.HaltIdleCores(0)
	// cpu0 (the authorized programmer) seeds BRAM and runs a legal copy.
	for i := uint32(0); i < 8; i++ {
		s.BRAM.Store().WriteWord(soc.BRAMBase+0x400+4*i, 0xDA7A_0000|i)
	}
	s.MustLoad(0, `
		li r1, 0x20000000     ; dma regs
		li r2, 0x10000400
		sw r2, 0(r1)          ; src
		li r2, 0x10000800
		sw r2, 4(r1)          ; dst
		li r2, 32
		sw r2, 8(r1)          ; len
		li r2, 1
		sw r2, 12(r1)         ; start
	poll:
		lw r3, 16(r1)         ; status
		andi r3, r3, 2        ; done?
		beqz r3, poll
		halt
	`)
	runAll(t, s, 2_000_000)
	for i := uint32(0); i < 8; i++ {
		if got := s.BRAM.Store().ReadWord(soc.BRAMBase + 0x800 + 4*i); got != 0xDA7A_0000|i {
			t.Fatalf("DMA copy word %d = %#x", i, got)
		}
	}
	if s.Alerts.Len() != 0 {
		t.Fatalf("legal DMA use raised alerts: %v", s.Alerts.All())
	}
}

func TestTopologyDescribesFigure1(t *testing.T) {
	s := soc.MustNew(soc.Config{Protection: soc.Distributed})
	topo := s.Topology()
	for _, want := range []string{
		"cpu0", "cpu1", "cpu2", "lf-cpu0", "lf-dma", "lf-bram", "lcf-ddr",
		"bram", "ddr", "mbox", "tree depth", "secure",
	} {
		if !strings.Contains(topo, want) {
			t.Errorf("topology missing %q:\n%s", want, topo)
		}
	}
	unprot := soc.MustNew(soc.Config{Protection: soc.Unprotected}).Topology()
	if strings.Contains(unprot, "lf-") {
		t.Error("unprotected topology mentions firewalls")
	}
	cent := soc.MustNew(soc.Config{Protection: soc.Centralized}).Topology()
	if !strings.Contains(cent, "sem") || !strings.Contains(cent, "sei-cpu0") {
		t.Errorf("centralized topology missing SEM/SEI:\n%s", cent)
	}
}

func TestProtectionOverheadOrdering(t *testing.T) {
	// Under concurrent multi-master load — the regime the paper's claim
	// targets — the same bus-heavy workloads must cost:
	// unprotected < distributed (checks run locally, in parallel, off the
	// bus) < centralized (every access spends bus round trips on the SEM
	// protocol and the SEM serializes all IPs' checks).
	cycles := map[soc.Protection]uint64{}
	for _, p := range []soc.Protection{soc.Unprotected, soc.Distributed, soc.Centralized} {
		s := soc.MustNew(soc.Config{Protection: p})
		for i := 0; i < 3; i++ {
			s.MustLoad(i, workload.Mix(soc.BRAMBase+uint32(i)*0x1000, 0x1000, 4, 200, 0))
		}
		cycles[p] = runAll(t, s, 50_000_000)
	}
	if !(cycles[soc.Unprotected] < cycles[soc.Distributed]) {
		t.Errorf("unprotected (%d) not cheaper than distributed (%d)",
			cycles[soc.Unprotected], cycles[soc.Distributed])
	}
	if !(cycles[soc.Distributed] < cycles[soc.Centralized]) {
		t.Errorf("distributed (%d) not cheaper than centralized (%d)",
			cycles[soc.Distributed], cycles[soc.Centralized])
	}
}

func TestExtraRulesDoNotChangeBehaviour(t *testing.T) {
	base := soc.MustNew(soc.Config{Protection: soc.Distributed})
	padded := soc.MustNew(soc.Config{Protection: soc.Distributed, ExtraRulesPerLF: 32})
	for _, s := range []*soc.System{base, padded} {
		s.HaltIdleCores(0)
		s.MustLoad(0, workload.MemCopy(soc.BRAMBase, soc.BRAMBase+0x1000, 16))
	}
	c1 := runAll(t, base, 10_000_000)
	c2 := runAll(t, padded, 10_000_000)
	if c1 != c2 {
		t.Errorf("rule padding changed timing: %d vs %d", c1, c2)
	}
	if got := padded.CoreFWs[0].Config().RuleCount(); got != 7+32 {
		t.Errorf("padded rule count = %d, want 39", got)
	}
}

func TestDeterministicPlatformRuns(t *testing.T) {
	run := func() uint64 {
		s := soc.MustNew(soc.Config{Protection: soc.Distributed})
		s.HaltIdleCores(0, 1)
		s.MustLoad(0, workload.MemCopy(soc.SecureBase, soc.CipherBase, 32))
		s.MustLoad(1, workload.Stream(soc.BRAMBase, 64, 4, 0))
		c, ok := s.Run(50_000_000)
		if !ok {
			t.Fatal("did not finish")
		}
		return c
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic platform: %d vs %d cycles", a, b)
	}
}

func TestProducerConsumerCentralized(t *testing.T) {
	// The mailbox protocol also survives the SEM check path.
	const count = 16
	s := soc.MustNew(soc.Config{Protection: soc.Centralized})
	s.HaltIdleCores(0, 1)
	s.MustLoad(0, workload.Producer(soc.MboxBase, count))
	s.MustLoad(1, workload.Consumer(soc.MboxBase, count, soc.BRAMBase+0x200))
	runAll(t, s, 50_000_000)
	if got := s.BRAM.Store().ReadWord(soc.BRAMBase + 0x200); got != workload.ProducerChecksum(count) {
		t.Errorf("centralized consumer sum %d, want %d", got, workload.ProducerChecksum(count))
	}
}

func TestCipherZoneCPURoundTrip(t *testing.T) {
	// CM-only zone: encrypted at rest, transparent to software, no tree
	// cost.
	s := soc.MustNew(soc.Config{Protection: soc.Distributed})
	s.HaltIdleCores(0)
	s.MustLoad(0, `
		li r1, 0x40010000     ; cipher zone
		li r2, 0x0C1FFE
		sw r2, 0(r1)
		lw r3, 0(r1)
		li r4, 0x10000000
		sw r3, 0(r4)
		halt
	`)
	runAll(t, s, 1_000_000)
	if got := s.BRAM.Store().ReadWord(soc.BRAMBase); got != 0x0C1FFE {
		t.Fatalf("cipher zone round trip = %#x", got)
	}
	if got := s.DDR.Store().ReadWord(soc.CipherBase); got == 0x0C1FFE {
		t.Fatal("cipher zone stored plaintext")
	}
	if cs := s.LCF.Crypto(); cs.LeafVerifies != 0 {
		t.Fatalf("CM-only zone touched the integrity tree (%d verifies)", cs.LeafVerifies)
	}
}

func TestZoneCostOrdering(t *testing.T) {
	// Same workload against the three DDR zones: plain < cipher < secure.
	run := func(base uint32) uint64 {
		s := soc.MustNew(soc.Config{Protection: soc.Distributed})
		s.HaltIdleCores(0)
		s.MustLoad(0, workload.Stream(base, 64, 4, 0))
		c, ok := s.Run(50_000_000)
		if !ok {
			t.Fatal("stream stuck")
		}
		return c
	}
	plain, cipher, secure := run(soc.PlainBase), run(soc.CipherBase), run(soc.SecureBase)
	if !(plain < cipher && cipher < secure) {
		t.Fatalf("zone cost ordering violated: plain=%d cipher=%d secure=%d", plain, cipher, secure)
	}
}

func TestDMAStreamsThroughLCFPlainZone(t *testing.T) {
	// The DMA's policy grants BRAM + plain DDR: a legal bulk copy from
	// external plain memory into shared BRAM crosses both firewalls.
	s := soc.MustNew(soc.Config{Protection: soc.Distributed})
	s.HaltIdleCores(0)
	for i := uint32(0); i < 16; i++ {
		s.DDR.Store().WriteWord(soc.PlainBase+0x100+4*i, 0xD1D1_0000|i)
	}
	s.MustLoad(0, fmt.Sprintf(`
		li r1, %#x            ; dma regs
		li r2, %#x
		sw r2, 0(r1)          ; src: plain ddr
		li r2, %#x
		sw r2, 4(r1)          ; dst: bram
		li r2, 64
		sw r2, 8(r1)
		li r2, 1
		sw r2, 12(r1)
	poll:
		lw r3, 16(r1)
		andi r3, r3, 2
		beqz r3, poll
		halt
	`, soc.DMABase, soc.PlainBase+0x100, soc.BRAMBase+0x900))
	runAll(t, s, 5_000_000)
	for i := uint32(0); i < 16; i++ {
		if got := s.BRAM.Store().ReadWord(soc.BRAMBase + 0x900 + 4*i); got != 0xD1D1_0000|i {
			t.Fatalf("dma word %d = %#x", i, got)
		}
	}
	if s.Alerts.Len() != 0 {
		t.Fatalf("legal DMA stream raised alerts: %v", s.Alerts.All())
	}
}
