package soc_test

import (
	"testing"

	"repro/internal/soc"
	"repro/internal/workload"
)

// TestPairStaysCycleIdentical: two systems built from one Config and fed
// identical stimuli through Both must agree cycle-for-cycle — the property
// every campaign slowdown measurement rests on.
func TestPairStaysCycleIdentical(t *testing.T) {
	pair, err := soc.NewPair(soc.Config{Protection: soc.Distributed})
	if err != nil {
		t.Fatal(err)
	}
	if err := pair.Both(func(s *soc.System) error {
		s.HaltIdleCores(0)
		return s.Load(0, workload.Stream(soc.BRAMBase, 64, 4, 0))
	}); err != nil {
		t.Fatal(err)
	}
	ca, oka := pair.Attacked.Run(1_000_000)
	ct, okt := pair.Twin.Run(1_000_000)
	if !oka || !okt || ca != ct {
		t.Fatalf("twins diverged: %d (%v) vs %d (%v)", ca, oka, ct, okt)
	}
	if a, b := pair.Attacked.Cores[0].Stats(), pair.Twin.Cores[0].Stats(); a != b {
		t.Fatalf("twin core stats diverged:\n%+v\n%+v", a, b)
	}
}

func TestRunToCycleIsAbsolute(t *testing.T) {
	s := soc.MustNew(soc.Config{})
	s.HaltIdleCores()
	s.RunToCycle(137)
	if s.Eng.Now() != 137 {
		t.Fatalf("RunToCycle(137) left engine at %d", s.Eng.Now())
	}
	// No-op when already past the target.
	if ran := s.RunToCycle(100); ran != 0 || s.Eng.Now() != 137 {
		t.Fatalf("backward RunToCycle ran %d cycles to %d", ran, s.Eng.Now())
	}
}

// TestLoadRevivesHaltedCore pins the injection primitive: loading a
// program onto a core that already executed halt must start it again —
// that is how a campaign hijacks an idle IP mid-run.
func TestLoadRevivesHaltedCore(t *testing.T) {
	s := soc.MustNew(soc.Config{})
	s.HaltIdleCores()
	s.Run(100)
	if !s.AllHalted() {
		t.Fatal("cores did not halt")
	}
	const out = soc.LocalBase + 0xF100
	s.MustLoad(1, `
		li r1, 0xF100
		li r2, 42
		sw r2, 0(r1)
		halt
	`)
	if s.CoresHalted(1) {
		t.Fatal("Load left the core halted")
	}
	s.Run(100)
	if got := s.Cores[1].Local().ReadWord(out); got != 42 {
		t.Fatalf("revived core published %d, want 42", got)
	}
}

// TestRunUntilCoresIgnoresStragglers: the bounded run must end when the
// listed cores halt even while an unlisted one (a flooding attacker)
// never does.
func TestRunUntilCoresIgnoresStragglers(t *testing.T) {
	s := soc.MustNew(soc.Config{})
	s.HaltIdleCores(0, 2)
	s.MustLoad(0, workload.Stream(soc.BRAMBase, 16, 4, 0))
	s.MustLoad(2, workload.DoSFlood(soc.PlainBase)) // spins forever
	cycles, ok := s.RunUntilCores(1_000_000, 0)
	if !ok {
		t.Fatalf("victim did not halt within budget (%d cycles)", cycles)
	}
	if h, _ := s.Cores[2].Halted(); h {
		t.Fatal("flooding core halted?!")
	}
	if cycles == 0 || cycles >= 1_000_000 {
		t.Fatalf("suspicious cycle count %d", cycles)
	}
}
