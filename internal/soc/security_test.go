package soc_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/soc"
	"repro/internal/workload"
)

// TestThreadSpecificSecurityEndToEnd exercises the paper's future-work
// extension through real software: cpu0 carves a thread-1-only window out
// of the shared BRAM policy, then a program touches it under thread 0
// (blocked) and thread 1 (allowed), switching contexts via the THREADID
// CSR.
func TestThreadSpecificSecurityEndToEnd(t *testing.T) {
	s := soc.MustNew(soc.Config{Protection: soc.Distributed})
	s.HaltIdleCores(0)

	// Reconfigure cpu0's Local Firewall: BRAM window 0xF000..0xF100 is
	// thread-1-only (the most-specific rule wins over the broad BRAM
	// rule).
	if err := s.CoreFWs[0].Config().Add(core.Policy{
		SPI:     900,
		Zone:    core.Zone{Base: soc.BRAMBase + 0xF000, Size: 0x100},
		RWA:     core.ReadWrite,
		ADF:     core.AnyWidth,
		Threads: []uint32{1},
	}); err != nil {
		t.Fatal(err)
	}

	s.MustLoad(0, `
		li   r1, 0x1000F000   ; restricted window
		li   r2, 0xAA
		sw   r2, 0(r1)        ; thread 0: discarded
		csrr r10, 4           ; bus errors so far (expect 1)
		li   r3, 1
		csrw 6, r3            ; switch to thread 1
		li   r2, 0xBB
		sw   r2, 0(r1)        ; thread 1: allowed
		csrr r11, 4           ; expect still 1
		halt
	`)
	if _, ok := s.Run(1_000_000); !ok {
		t.Fatal("program did not halt")
	}
	if got := s.Cores[0].Reg(10); got != 1 {
		t.Fatalf("thread-0 store not blocked (errors=%d)", got)
	}
	if got := s.Cores[0].Reg(11); got != 1 {
		t.Fatalf("thread-1 store blocked (errors=%d)", got)
	}
	if got := s.BRAM.Store().ReadWord(soc.BRAMBase + 0xF000); got != 0xBB {
		t.Fatalf("window holds %#x, want 0xBB from thread 1", got)
	}
	a := s.Alerts.First(func(a core.Alert) bool { return a.Violation == core.VThread })
	if a == nil {
		t.Fatalf("no thread violation alert: %v", s.Alerts.All())
	}
	if a.Thread != 0 || a.Master != "cpu0" {
		t.Fatalf("alert attribution: %+v", a)
	}
}

// TestQuarantineStopsHijackedCoreEndToEnd: with the reaction controller
// enabled, a core that racks up violations loses even its legitimate
// access — the exfiltration channel closes.
func TestQuarantineStopsHijackedCoreEndToEnd(t *testing.T) {
	s := soc.MustNew(soc.Config{
		Protection:          soc.Distributed,
		QuarantineThreshold: 3,
	})
	s.HaltIdleCores(1)
	// Hijacked cpu1: three zone violations, then an attempt to publish a
	// "secret" into shared BRAM (normally allowed).
	s.MustLoad(1, `
		li r1, 0x70000000
		sw r0, 0(r1)          ; violation 1
		sw r0, 4(r1)          ; violation 2
		sw r0, 8(r1)          ; violation 3 -> quarantine
		li r2, 0x10000000
		li r3, 0x5EC4E7
		sw r3, 0(r2)          ; exfiltration attempt (was allowed)
		halt
	`)
	if _, ok := s.Run(1_000_000); !ok {
		t.Fatal("program did not halt")
	}
	if s.Reactor == nil {
		t.Fatal("reactor not constructed")
	}
	if !s.Reactor.Quarantined(soc.CoreName(1)) {
		t.Fatal("hijacked core not quarantined")
	}
	if got := s.BRAM.Store().ReadWord(soc.BRAMBase); got != 0 {
		t.Fatalf("exfiltration succeeded after quarantine: %#x", got)
	}
	if st := s.Cores[1].Stats(); st.BusErrors != 4 {
		t.Fatalf("core saw %d errors, want 4 (3 violations + quarantined store)", st.BusErrors)
	}
}

// TestQuarantineSparesInnocentCores: while cpu1 is quarantined, cpu0's
// traffic is untouched.
func TestQuarantineSparesInnocentCores(t *testing.T) {
	s := soc.MustNew(soc.Config{
		Protection:          soc.Distributed,
		QuarantineThreshold: 1,
	})
	s.HaltIdleCores(0, 1)
	s.MustLoad(1, `
		li r1, 0x70000000
		sw r0, 0(r1)          ; instant quarantine
		halt
	`)
	s.MustLoad(0, workload.MemCopy(soc.BRAMBase, soc.BRAMBase+0x1000, 8))
	if _, ok := s.Run(1_000_000); !ok {
		t.Fatal("did not finish")
	}
	if !s.Reactor.Quarantined(soc.CoreName(1)) {
		t.Fatal("cpu1 not quarantined")
	}
	if s.Reactor.Quarantined(soc.CoreName(0)) {
		t.Fatal("innocent cpu0 quarantined")
	}
	if st := s.Cores[0].Stats(); st.BusErrors != 0 {
		t.Fatalf("innocent core suffered %d errors", st.BusErrors)
	}
}

// TestReactorDisabledByDefault: no threshold, no reactor.
func TestReactorDisabledByDefault(t *testing.T) {
	s := soc.MustNew(soc.Config{Protection: soc.Distributed})
	if s.Reactor != nil {
		t.Fatal("reactor constructed without opting in")
	}
}

// TestSoftwareSecurityManager: cpu0 runs a manager loop polling the alert
// port while cpu1 triggers a violation; the manager publishes the observed
// violation class and offending address to shared BRAM.
func TestSoftwareSecurityManager(t *testing.T) {
	s := soc.MustNew(soc.Config{Protection: soc.Distributed})
	s.HaltIdleCores(0, 1)
	s.MustLoad(1, `
		li r1, 0x100          ; give the manager a head start
	spin:
		addi r1, r1, -1
		bnez r1, spin
		li r1, 0x70000000
		sw r0, 0(r1)          ; zone violation
		halt
	`)
	s.MustLoad(0, fmt.Sprintf(`
		li r1, %#x            ; alert port
	poll:
		lw r2, 0(r1)          ; count
		beqz r2, poll
		lw r3, 4(r1)          ; kind
		lw r4, 8(r1)          ; addr
		li r5, 1
		sw r5, 16(r1)         ; pop
		li r6, %#x
		sw r3, 0(r6)
		sw r4, 4(r6)
		halt
	`, soc.AlertBase, soc.BRAMBase+0x300))
	if _, ok := s.Run(5_000_000); !ok {
		t.Fatal("manager/offender did not finish")
	}
	if got := s.BRAM.Store().ReadWord(soc.BRAMBase + 0x300); got != uint32(core.VZone) {
		t.Fatalf("manager observed kind %d, want zone=%d", got, core.VZone)
	}
	if got := s.BRAM.Store().ReadWord(soc.BRAMBase + 0x304); got != 0x7000_0000 {
		t.Fatalf("manager observed addr %#x", got)
	}
	if s.AlertPort.Pending() != 0 {
		t.Fatalf("alert not drained: %d pending", s.AlertPort.Pending())
	}
}

// TestAlertPortRestrictedToManagerCore: on the distributed platform only
// cpu0 may touch the alert queue.
func TestAlertPortRestrictedToManagerCore(t *testing.T) {
	s := soc.MustNew(soc.Config{Protection: soc.Distributed})
	s.HaltIdleCores(1)
	s.MustLoad(1, fmt.Sprintf(`
		li r1, %#x
		lw r2, 0(r1)          ; snoop the alert queue
		csrr r10, 4
		halt
	`, soc.AlertBase))
	if _, ok := s.Run(1_000_000); !ok {
		t.Fatal("did not finish")
	}
	if got := s.Cores[1].Reg(10); got != 1 {
		t.Fatalf("cpu1 reached the alert port (errors=%d)", got)
	}
	a := s.Alerts.First(func(a core.Alert) bool { return a.Violation == core.VOrigin })
	if a == nil || a.FirewallID != "lf-alerts" {
		t.Fatalf("no origin alert from lf-alerts: %v", s.Alerts.All())
	}
}

// TestKeyRotationEndToEnd drives RotateKey on the live platform.
func TestKeyRotationEndToEnd(t *testing.T) {
	s := soc.MustNew(soc.Config{Protection: soc.Distributed})
	s.HaltIdleCores(0)
	s.MustLoad(0, `
		li r1, 0x40000000
		li r2, 0xFACE
		sw r2, 0(r1)
		halt
	`)
	runAll(t, s, 1_000_000)
	if err := s.LCF.RotateKey(300, [16]byte{9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	s.Cores[0].Load(isa.MustAssemble(`
		li r1, 0x40000000
		lw r3, 0(r1)
		li r4, 0x10000000
		sw r3, 0(r4)
		halt
	`, soc.LocalBase))
	runAll(t, s, 1_000_000)
	if got := s.BRAM.Store().ReadWord(soc.BRAMBase); got != 0xFACE {
		t.Fatalf("data lost across key rotation: %#x", got)
	}
}

// TestInterruptDrivenSecurityManager: the AlertPort interrupts cpu0 the
// moment a violation is detected — reaction latency is interrupt entry,
// not a polling interval.
func TestInterruptDrivenSecurityManager(t *testing.T) {
	s := soc.MustNew(soc.Config{Protection: soc.Distributed})
	s.HaltIdleCores(0, 1)
	s.MustLoad(0, fmt.Sprintf(`
		la   r1, handler
		csrw 8, r1            ; install interrupt vector
		li   r20, 0
	idle:
		addi r20, r20, 1      ; manager idles productively
		b    idle
	handler:
		li   r1, %#x          ; alert port
		lw   r3, 4(r1)        ; kind
		lw   r4, 8(r1)        ; addr
		li   r5, 1
		sw   r5, 16(r1)       ; pop
		li   r6, %#x
		sw   r3, 0(r6)
		sw   r4, 4(r6)
		halt                  ; incident handled; stop for the test
	`, soc.AlertBase, soc.BRAMBase+0x500))
	s.MustLoad(1, `
		li r1, 0x200
	spin:
		addi r1, r1, -1
		bnez r1, spin
		li r1, 0x70000000
		sw r0, 0(r1)          ; violation fires the IRQ
		halt
	`)
	if _, ok := s.Run(5_000_000); !ok {
		t.Fatal("did not finish")
	}
	if got := s.BRAM.Store().ReadWord(soc.BRAMBase + 0x500); got != uint32(core.VZone) {
		t.Fatalf("ISR observed kind %d", got)
	}
	if got := s.BRAM.Store().ReadWord(soc.BRAMBase + 0x504); got != 0x7000_0000 {
		t.Fatalf("ISR observed addr %#x", got)
	}
	if s.Cores[0].Reg(20) == 0 {
		t.Fatal("manager never idled before the interrupt")
	}
}

// TestCorePoliciesOverride: a JSON-loadable custom policy replaces the
// default per-core rules.
func TestCorePoliciesOverride(t *testing.T) {
	rules, err := core.PoliciesFromJSON([]byte(`[
	  {"spi": 50, "zone": {"base": "0x10000000", "size": "0x100"},
	   "rwa": "ro", "adf": ["32"]}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	s := soc.MustNew(soc.Config{Protection: soc.Distributed, CorePolicies: rules})
	s.HaltIdleCores(0)
	s.MustLoad(0, `
		li r1, 0x10000000
		lw r2, 0(r1)          ; allowed (ro)
		sw r2, 0(r1)          ; denied
		li r1, 0x40000000
		lw r3, 0(r1)          ; denied (zone absent from custom policy)
		csrr r10, 4
		halt
	`)
	if _, ok := s.Run(1_000_000); !ok {
		t.Fatal("did not finish")
	}
	if got := s.Cores[0].Reg(10); got != 2 {
		t.Fatalf("custom policy enforced %d denials, want 2", got)
	}
	if got := s.CoreFWs[0].Config().RuleCount(); got != 1 {
		t.Fatalf("rule count %d, want 1", got)
	}
}
