package soc

// Twin-run plumbing: the campaign engine (internal/campaign) measures what
// an attack costs bystander traffic by running the same platform twice —
// once attacked, once not — and comparing cycle counts. Config fully
// determines a platform, and the simulation is deterministic, so two
// systems built from the same Config stay cycle-identical for as long as
// they receive identical stimuli; the first divergence is exactly the
// injected attack.

// Pair is an attacked platform and its attack-free twin.
type Pair struct {
	Attacked *System
	Twin     *System
}

// NewPair builds two identical platforms from one configuration.
func NewPair(cfg Config) (*Pair, error) {
	a, err := New(cfg)
	if err != nil {
		return nil, err
	}
	t, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &Pair{Attacked: a, Twin: t}, nil
}

// Both applies fn to the attacked system and then the twin, stopping at
// the first error. Everything up to injection must go through Both (or an
// equivalent mirrored call) to keep the pair cycle-identical.
func (p *Pair) Both(fn func(*System) error) error {
	if err := fn(p.Attacked); err != nil {
		return err
	}
	return fn(p.Twin)
}

// RunToCycle advances the platform to the given absolute cycle (a no-op
// when already there or past it) and returns the cycles executed. It is
// how a harness lines both halves of a Pair up on the injection cycle.
func (s *System) RunToCycle(cycle uint64) uint64 {
	now := s.Eng.Now()
	if cycle <= now {
		return 0
	}
	return s.Eng.Run(cycle - now)
}

// CoresHalted reports whether every listed core has halted (every core
// when none are listed).
func (s *System) CoresHalted(cores ...int) bool {
	if len(cores) == 0 {
		return s.AllHalted()
	}
	for _, i := range cores {
		if h, _ := s.Cores[i].Halted(); !h {
			return false
		}
	}
	return true
}

// RunUntilCores advances the platform until every listed core halts (every
// core when none are listed) or max cycles elapse, returning the cycles
// executed and whether the cores halted. Unlike Run it keeps going while
// unrelated cores — say, a flooding attacker — never halt, which is what a
// bystander-throughput measurement needs.
func (s *System) RunUntilCores(max uint64, cores ...int) (uint64, bool) {
	return s.Eng.RunUntil(func() bool { return s.CoresHalted(cores...) }, max)
}

// RunToCycleOrHalted advances the platform to the given absolute cycle or
// until every listed core halts, whichever comes first, and reports
// whether the cores halted. It is the phase-boundary form of RunToCycle:
// the incident-lifecycle engine (internal/recovery) steps both halves of a
// Pair through fixed sampling windows with it, stopping each half exactly
// where a single RunUntilCores call would have — partitioning a run into
// windows never changes simulation results, only where the harness gets to
// look at the counters.
func (s *System) RunToCycleOrHalted(cycle uint64, cores ...int) bool {
	now := s.Eng.Now()
	if cycle <= now {
		return s.CoresHalted(cores...)
	}
	_, ok := s.Eng.RunUntil(func() bool { return s.CoresHalted(cores...) }, cycle-now)
	return ok
}
