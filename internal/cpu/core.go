// Package cpu implements the MB32 soft processor core of the platform — the
// stand-in for the paper's MicroBlaze processors.
//
// Each core owns a private local memory (the MicroBlaze LMB analogue)
// holding its code, data and stack, accessed in one cycle without touching
// the system bus. Data accesses outside the local window become bus
// transactions through the core's bus.Conn — which is where the paper
// interposes a Local Firewall.
//
// The core is deliberately multi-cycle rather than pipelined: one
// instruction per Tick, plus an extra cycle for local memory operands and a
// full stall for bus operands. The paper's results depend on relative
// communication costs, not superscalar micro-architecture.
package cpu

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

// HaltCause explains why a core stopped.
type HaltCause uint8

// Halt causes.
const (
	// HaltNone: the core is running.
	HaltNone HaltCause = iota
	// HaltInstr: the program executed HALT.
	HaltInstr
	// HaltIllegal: undefined opcode.
	HaltIllegal
	// HaltFetchFault: pc left the local code window.
	HaltFetchFault
	// HaltBusFault: a bus error occurred while TrapOnBusError is set.
	HaltBusFault
)

// String implements fmt.Stringer.
func (h HaltCause) String() string {
	switch h {
	case HaltNone:
		return "running"
	case HaltInstr:
		return "halt"
	case HaltIllegal:
		return "illegal-instruction"
	case HaltFetchFault:
		return "fetch-fault"
	case HaltBusFault:
		return "bus-fault"
	default:
		return fmt.Sprintf("cause(%d)", uint8(h))
	}
}

// Config parameterizes a core.
type Config struct {
	// Name identifies the core in traces and firewall alerts.
	Name string
	// ID is returned by CSRR CsrCoreID.
	ID uint32
	// LocalBase/LocalSize define the private local memory window.
	LocalBase, LocalSize uint32
	// TrapOnBusError halts the core on any bus error response instead of
	// recording it in CsrBusErr and continuing. The paper's firewalls
	// discard offending transfers; the default (false) models software
	// that keeps running after a discarded access.
	TrapOnBusError bool
}

// Stats exposes the core's performance counters. The JSON form feeds the
// sweep pipeline's per-core breakdowns.
type Stats struct {
	Cycles       uint64 `json:"cycles"`       // cycles the core was ticked while running
	Instructions uint64 `json:"instructions"` // retired instructions
	StallCycles  uint64 `json:"stall_cycles"` // cycles spent waiting on the bus
	LocalOps     uint64 `json:"local_ops"`    // loads/stores satisfied by local memory
	BusOps       uint64 `json:"bus_ops"`      // loads/stores sent to the bus
	BusErrors    uint64 `json:"bus_errors"`   // error responses received (incl. security discards)
}

// CPI returns cycles per instruction.
func (s Stats) CPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instructions)
}

// Core is one MB32 processor.
type Core struct {
	cfg   Config
	eng   *sim.Engine
	conn  bus.Conn
	local *mem.Store

	regs [32]uint32
	pc   uint32

	halted    bool
	cause     HaltCause
	haltCycle uint64 // cycle the current halt happened (valid while halted)
	waitBus   bool
	pause     uint64 // extra cycles to burn (local mem op)

	scratch uint32
	thread  uint32

	// Interrupt state: a single external line (the AlertPort), a vector
	// CSR enabling delivery, and an EPC for the return path.
	irqPending bool
	inISR      bool
	epc        uint32
	ivec       uint32

	// Bus-operation state. The core has at most one outstanding bus
	// transaction (it stalls until completion), so a single Transaction,
	// its one-word data buffer and a callback bound once at construction
	// are reused for every bus op — the hot path allocates nothing.
	btx     bus.Transaction
	busData [1]uint32
	busDone func(*bus.Transaction)
	busRd   uint8
	busOp   isa.Opcode
	busNext uint32

	// icache caches decoded instructions per local word (entries with
	// Decoded == false are misses). The core invalidates precisely on its
	// own local stores; any other mutation of local memory (program
	// loads, test pokes, attack injection) is caught by comparing the
	// store's generation at fetch, so self-modifying and externally
	// modified code stay architecturally correct.
	icache    []isa.Instr
	icacheGen uint64

	stats Stats
}

// New creates a core with its private local memory. conn is the core's
// path to the system bus; pass the raw bus.MasterPort for an unprotected
// core or a firewall wrapping it for a protected one.
func New(eng *sim.Engine, cfg Config, conn bus.Conn) *Core {
	if cfg.LocalSize == 0 {
		cfg.LocalSize = 64 * 1024
	}
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("cpu%d", cfg.ID)
	}
	c := &Core{
		cfg:   cfg,
		eng:   eng,
		conn:  conn,
		local: mem.NewStore(cfg.LocalBase, cfg.LocalSize),
		pc:    cfg.LocalBase,
	}
	c.regs[isa.RegSP] = cfg.LocalBase + cfg.LocalSize - 16 // default stack top
	c.busDone = c.onBusDone
	c.icache = make([]isa.Instr, cfg.LocalSize/4)
	eng.AddTicker(c)
	return c
}

// Name returns the core name.
func (c *Core) Name() string { return c.cfg.Name }

// Local exposes the private local memory (program loading, test probes).
func (c *Core) Local() *mem.Store { return c.local }

// PC returns the current program counter.
func (c *Core) PC() uint32 { return c.pc }

// Reg returns register n (r0 reads as zero).
func (c *Core) Reg(n int) uint32 {
	if n == 0 {
		return 0
	}
	return c.regs[n&31]
}

// SetReg writes register n (writes to r0 are ignored).
func (c *Core) SetReg(n int, v uint32) {
	if n != 0 {
		c.regs[n&31] = v
	}
}

// Halted reports whether the core has stopped and why.
func (c *Core) Halted() (bool, HaltCause) { return c.halted, c.cause }

// Stats returns the performance counters.
func (c *Core) Stats() Stats { return c.stats }

// Load copies an assembled program into local memory and points the pc at
// its base (or the `_start` symbol when defined).
func (c *Core) Load(p *isa.Program) {
	addr := p.Base
	for _, w := range p.Words {
		c.local.WriteWord(addr, w)
		addr += 4
	}
	c.pc = p.Entry("_start")
	c.halted = false
	c.cause = HaltNone
	c.haltCycle = 0
}

// Reset rewinds architectural state (registers, pc, counters) without
// clearing local memory.
func (c *Core) Reset() {
	c.regs = [32]uint32{}
	c.regs[isa.RegSP] = c.cfg.LocalBase + c.cfg.LocalSize - 16
	c.pc = c.cfg.LocalBase
	c.halted = false
	c.cause = HaltNone
	c.haltCycle = 0
	c.waitBus = false
	c.pause = 0
	c.irqPending = false
	c.inISR = false
	c.epc = 0
	c.ivec = 0
	c.stats = Stats{}
}

func (c *Core) halt(cause HaltCause) {
	c.halted = true
	c.cause = cause
	c.haltCycle = c.eng.Now()
}

// HaltCycle reports the cycle the core halted at, and whether it is
// halted. The stamp is only meaningful while halted: Load and Reset revive
// the core and invalidate it.
func (c *Core) HaltCycle() (uint64, bool) { return c.haltCycle, c.halted }

func (c *Core) isLocal(addr uint32, n uint32) bool {
	return c.local.InRange(addr, n)
}

// Tick implements sim.Ticker: execute at most one instruction per cycle.
func (c *Core) Tick(now uint64) {
	if c.halted {
		return
	}
	c.stats.Cycles++
	if c.waitBus {
		c.stats.StallCycles++
		return
	}
	if c.pause > 0 {
		c.pause--
		return
	}
	if c.irqPending && !c.inISR && c.ivec != 0 {
		// Interrupt entry costs one cycle: save pc, vector.
		c.irqPending = false
		c.inISR = true
		c.epc = c.pc
		c.pc = c.ivec
		return
	}
	if !c.isLocal(c.pc, 4) || c.pc%4 != 0 {
		c.halt(HaltFetchFault)
		return
	}
	if g := c.local.Gen(); g != c.icacheGen {
		clear(c.icache)
		c.icacheGen = g
	}
	idx := (c.pc - c.cfg.LocalBase) >> 2
	in := c.icache[idx]
	if !in.Decoded {
		in = isa.Decode(c.local.ReadWord(c.pc))
		c.icache[idx] = in
	}
	if !in.Op.Valid() {
		c.halt(HaltIllegal)
		return
	}
	c.execute(in, now)
}

// execute runs one decoded instruction. It updates pc itself (branches and
// jumps override the default pc+4).
func (c *Core) execute(in isa.Instr, now uint64) {
	next := c.pc + 4
	ra := c.Reg(int(in.Ra))
	rb := c.Reg(int(in.Rb))
	simm := isa.SignExt16(in.Imm)

	retire := func() {
		c.stats.Instructions++
		c.pc = next
	}

	switch in.Op {
	case isa.ADD:
		c.SetReg(int(in.Rd), ra+rb)
	case isa.SUB:
		c.SetReg(int(in.Rd), ra-rb)
	case isa.AND:
		c.SetReg(int(in.Rd), ra&rb)
	case isa.OR:
		c.SetReg(int(in.Rd), ra|rb)
	case isa.XOR:
		c.SetReg(int(in.Rd), ra^rb)
	case isa.SLL:
		c.SetReg(int(in.Rd), ra<<(rb&31))
	case isa.SRL:
		c.SetReg(int(in.Rd), ra>>(rb&31))
	case isa.SRA:
		c.SetReg(int(in.Rd), uint32(int32(ra)>>(rb&31)))
	case isa.MUL:
		c.SetReg(int(in.Rd), ra*rb)
	case isa.SLT:
		c.SetReg(int(in.Rd), boolTo32(int32(ra) < int32(rb)))
	case isa.SLTU:
		c.SetReg(int(in.Rd), boolTo32(ra < rb))
	case isa.ADDI:
		c.SetReg(int(in.Rd), ra+simm)
	case isa.ANDI:
		c.SetReg(int(in.Rd), ra&uint32(in.Imm))
	case isa.ORI:
		c.SetReg(int(in.Rd), ra|uint32(in.Imm))
	case isa.XORI:
		c.SetReg(int(in.Rd), ra^uint32(in.Imm))
	case isa.SLTI:
		c.SetReg(int(in.Rd), boolTo32(int32(ra) < int32(simm)))
	case isa.SLLI:
		c.SetReg(int(in.Rd), ra<<(in.Imm&31))
	case isa.SRLI:
		c.SetReg(int(in.Rd), ra>>(in.Imm&31))
	case isa.SRAI:
		c.SetReg(int(in.Rd), uint32(int32(ra)>>(in.Imm&31)))
	case isa.LUI:
		c.SetReg(int(in.Rd), uint32(in.Imm)<<16)

	case isa.LW, isa.LH, isa.LHU, isa.LB, isa.LBU:
		c.memOp(in, ra+simm, 0, next)
		return // memOp retires
	case isa.SW, isa.SH, isa.SB:
		c.memOp(in, ra+simm, c.Reg(int(in.Rd)), next)
		return

	case isa.BEQ:
		if ra == rb {
			next = c.pc + uint32(in.SignedImm())*4
		}
	case isa.BNE:
		if ra != rb {
			next = c.pc + uint32(in.SignedImm())*4
		}
	case isa.BLT:
		if int32(ra) < int32(rb) {
			next = c.pc + uint32(in.SignedImm())*4
		}
	case isa.BGE:
		if int32(ra) >= int32(rb) {
			next = c.pc + uint32(in.SignedImm())*4
		}
	case isa.BLTU:
		if ra < rb {
			next = c.pc + uint32(in.SignedImm())*4
		}
	case isa.BGEU:
		if ra >= rb {
			next = c.pc + uint32(in.SignedImm())*4
		}
	case isa.JAL:
		c.SetReg(int(in.Rd), next)
		next = ra + simm
	case isa.BAL:
		c.SetReg(int(in.Rd), next)
		next = c.pc + uint32(in.SignedImm())*4

	case isa.CSRR:
		c.SetReg(int(in.Rd), c.readCSR(in.Imm, now))
	case isa.CSRW:
		c.writeCSR(in.Imm, ra)

	case isa.HALT:
		c.stats.Instructions++
		c.halt(HaltInstr)
		return
	case isa.IRET:
		c.inISR = false
		next = c.epc
	}
	retire()
}

func (c *Core) readCSR(n uint16, now uint64) uint32 {
	switch n {
	case isa.CsrCoreID:
		return c.cfg.ID
	case isa.CsrCycle:
		return uint32(now)
	case isa.CsrCycleHi:
		return uint32(now >> 32)
	case isa.CsrInstret:
		return uint32(c.stats.Instructions)
	case isa.CsrBusErr:
		return uint32(c.stats.BusErrors)
	case isa.CsrScratch:
		return c.scratch
	case isa.CsrThread:
		return c.thread
	case isa.CsrEpc:
		return c.epc
	case isa.CsrIvec:
		return c.ivec
	default:
		return 0
	}
}

func (c *Core) writeCSR(n uint16, v uint32) {
	switch n {
	case isa.CsrScratch:
		c.scratch = v
	case isa.CsrThread:
		c.thread = v
	case isa.CsrEpc:
		c.epc = v
	case isa.CsrIvec:
		c.ivec = v
	}
	// Counters and the ID are read-only: writes are silently ignored, as
	// on hardware.
}

// Thread returns the current software context tag.
func (c *Core) Thread() uint32 { return c.thread }

// RaiseIRQ asserts the core's external interrupt line. Delivery happens at
// the next instruction boundary if a handler is installed (CsrIvec != 0)
// and no handler is already running; otherwise the request stays pending.
func (c *Core) RaiseIRQ() { c.irqPending = true }

// InISR reports whether an interrupt handler is currently executing.
func (c *Core) InISR() bool { return c.inISR }

// memOp performs a load or store at addr, either against local memory
// (one extra cycle) or over the bus (stall until completion).
func (c *Core) memOp(in isa.Instr, addr uint32, storeVal uint32, next uint32) {
	size := in.Op.MemSize()
	if c.isLocal(addr, uint32(size)) {
		if addr%uint32(size) != 0 {
			// Misaligned local access: treated like a bus fault.
			c.busError(next)
			return
		}
		c.stats.LocalOps++
		if in.Op.IsStore() {
			c.local.Write(addr, size, storeVal)
			// The store cannot straddle words (aligned, size <= 4):
			// invalidate exactly the covered icache word, then adopt the
			// new generation so the fetch path does not flush everything.
			c.icache[(addr-c.cfg.LocalBase)>>2] = isa.Instr{}
			c.icacheGen = c.local.Gen()
		} else {
			c.SetReg(int(in.Rd), extendLoad(in.Op, c.local.Read(addr, size)))
		}
		c.pause = 1 // local memory costs one extra cycle
		c.stats.Instructions++
		c.pc = next
		return
	}

	// Bus access: issue and stall. The reused transaction is fully
	// re-initialized — in particular the timestamps must return to zero
	// so the first firewall or port stamps a fresh Issued origin.
	c.stats.BusOps++
	tx := &c.btx
	*tx = bus.Transaction{
		Master: c.cfg.Name,
		Thread: c.thread,
		Op:     bus.Read,
		Addr:   addr,
		Size:   size,
		Burst:  1,
		Data:   c.busData[:1],
	}
	c.busData[0] = 0
	if in.Op.IsStore() {
		tx.Op = bus.Write
		c.busData[0] = storeVal
	}
	c.waitBus = true
	c.busRd = in.Rd
	c.busOp = in.Op
	c.busNext = next
	c.conn.Submit(tx, c.busDone)
}

// onBusDone completes the stalled memory instruction when its bus
// transaction finishes.
func (c *Core) onBusDone(done *bus.Transaction) {
	c.waitBus = false
	if !done.Resp.OK() {
		c.stats.BusErrors++
		if c.busOp.IsLoad() {
			// Discarded transfers deliver nothing; software sees 0.
			c.SetReg(int(c.busRd), 0)
		}
		if c.cfg.TrapOnBusError {
			c.stats.Instructions++
			c.halt(HaltBusFault)
			return
		}
	} else if c.busOp.IsLoad() {
		c.SetReg(int(c.busRd), extendLoad(c.busOp, done.Data[0]))
	}
	c.stats.Instructions++
	c.pc = c.busNext
}

// busError emulates the response to a locally detected bad access.
func (c *Core) busError(next uint32) {
	c.stats.BusErrors++
	if c.cfg.TrapOnBusError {
		c.halt(HaltBusFault)
		return
	}
	c.stats.Instructions++
	c.pc = next
}

func extendLoad(op isa.Opcode, v uint32) uint32 {
	switch op {
	case isa.LB:
		return uint32(int32(int8(v)))
	case isa.LH:
		return uint32(int32(int16(v)))
	default:
		return v
	}
}

func boolTo32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
