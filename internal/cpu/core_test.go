package cpu_test

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

// rig builds a single-core system with a shared BRAM at 0x1000_0000.
func rig(t *testing.T) (*sim.Engine, *cpu.Core, *mem.BRAM) {
	t.Helper()
	eng := sim.NewEngine(sim.DefaultFrequency)
	b := bus.New(eng, bus.Config{})
	ram := mem.NewBRAM("bram", 0x1000_0000, 0x1_0000)
	b.AddSlave(ram)
	core := cpu.New(eng, cpu.Config{Name: "cpu0", ID: 0, LocalBase: 0, LocalSize: 64 * 1024},
		b.NewMaster("cpu0"))
	return eng, core, ram
}

// runProgram assembles src, loads it, and runs until halt.
func runProgram(t *testing.T, eng *sim.Engine, core *cpu.Core, src string) {
	t.Helper()
	core.Load(isa.MustAssemble(src, 0))
	halted := func() bool { h, _ := core.Halted(); return h }
	if _, ok := eng.RunUntil(halted, 1_000_000); !ok {
		t.Fatalf("program did not halt (pc=%#x)", core.PC())
	}
}

func TestArithmeticGolden(t *testing.T) {
	eng, core, _ := rig(t)
	runProgram(t, eng, core, `
		addi r1, r0, 10
		addi r2, r0, 3
		add  r3, r1, r2   ; 13
		sub  r4, r1, r2   ; 7
		mul  r5, r1, r2   ; 30
		and  r6, r1, r2   ; 2
		or   r7, r1, r2   ; 11
		xor  r8, r1, r2   ; 9
		slt  r9, r2, r1   ; 1
		sltu r10, r1, r2  ; 0
		halt
	`)
	want := map[int]uint32{3: 13, 4: 7, 5: 30, 6: 2, 7: 11, 8: 9, 9: 1, 10: 0}
	for r, v := range want {
		if got := core.Reg(r); got != v {
			t.Errorf("r%d = %d, want %d", r, got, v)
		}
	}
}

func TestShiftsAndSignedOps(t *testing.T) {
	eng, core, _ := rig(t)
	runProgram(t, eng, core, `
		li   r1, -8
		srai r2, r1, 1    ; -4
		srli r3, r1, 28   ; 0xF
		slli r4, r1, 1    ; -16
		li   r5, -1
		slt  r6, r5, r0   ; -1 < 0 => 1
		sltu r7, r5, r0   ; 0xFFFFFFFF < 0 => 0
		slti r8, r5, 0    ; 1
		halt
	`)
	if got := int32(core.Reg(2)); got != -4 {
		t.Errorf("srai: %d, want -4", got)
	}
	if got := core.Reg(3); got != 0xF {
		t.Errorf("srli: %#x, want 0xF", got)
	}
	if got := int32(core.Reg(4)); got != -16 {
		t.Errorf("slli: %d, want -16", got)
	}
	if core.Reg(6) != 1 || core.Reg(7) != 0 || core.Reg(8) != 1 {
		t.Errorf("signed compares wrong: r6=%d r7=%d r8=%d", core.Reg(6), core.Reg(7), core.Reg(8))
	}
}

func TestR0IsHardwiredZero(t *testing.T) {
	eng, core, _ := rig(t)
	runProgram(t, eng, core, `
		addi r0, r0, 99
		add  r1, r0, r0
		halt
	`)
	if core.Reg(0) != 0 || core.Reg(1) != 0 {
		t.Fatalf("r0 = %d, r1 = %d; r0 must stay zero", core.Reg(0), core.Reg(1))
	}
}

func TestFibonacciLoop(t *testing.T) {
	eng, core, _ := rig(t)
	runProgram(t, eng, core, `
		addi r1, r0, 0    ; fib(0)
		addi r2, r0, 1    ; fib(1)
		addi r3, r0, 10   ; count
	loop:
		add  r4, r1, r2
		mov  r1, r2
		mov  r2, r4
		addi r3, r3, -1
		bnez r3, loop
		halt
	`)
	// After 10 iterations: r1 = fib(10) = 55, r2 = fib(11) = 89.
	if core.Reg(1) != 55 || core.Reg(2) != 89 {
		t.Fatalf("fib: r1=%d r2=%d, want 55, 89", core.Reg(1), core.Reg(2))
	}
}

func TestLocalLoadStoreAllWidths(t *testing.T) {
	eng, core, _ := rig(t)
	runProgram(t, eng, core, `
		li  r1, 0x8000        ; local scratch (inside 64K window)
		li  r2, 0x12345678
		sw  r2, 0(r1)
		lw  r3, 0(r1)
		lh  r4, 0(r1)         ; 0x5678 sign-extended (positive)
		lhu r5, 2(r1)         ; 0x1234
		lb  r6, 3(r1)         ; 0x12
		lbu r7, 0(r1)         ; 0x78
		li  r8, 0xFFFF8080
		sh  r8, 4(r1)         ; stores 0x8080
		lh  r9, 4(r1)         ; sign-extends to 0xFFFF8080
		lb  r10, 4(r1)        ; sign-extends 0x80
		halt
	`)
	checks := map[int]uint32{
		3: 0x12345678, 4: 0x5678, 5: 0x1234, 6: 0x12, 7: 0x78,
		9: 0xFFFF8080, 10: 0xFFFFFF80,
	}
	for r, v := range checks {
		if got := core.Reg(r); got != v {
			t.Errorf("r%d = %#x, want %#x", r, got, v)
		}
	}
}

func TestBusLoadStore(t *testing.T) {
	eng, core, ram := rig(t)
	runProgram(t, eng, core, `
		li r1, 0x10000000
		li r2, 0xCAFEBABE
		sw r2, 0x40(r1)
		lw r3, 0x40(r1)
		halt
	`)
	if core.Reg(3) != 0xCAFEBABE {
		t.Fatalf("bus round trip r3 = %#x", core.Reg(3))
	}
	if got := ram.Store().ReadWord(0x1000_0040); got != 0xCAFEBABE {
		t.Fatalf("BRAM contains %#x", got)
	}
	st := core.Stats()
	if st.BusOps != 2 {
		t.Fatalf("BusOps = %d, want 2", st.BusOps)
	}
	if st.StallCycles == 0 {
		t.Fatal("bus ops recorded no stall cycles")
	}
}

func TestBusErrorLoadsZeroAndCounts(t *testing.T) {
	eng, core, _ := rig(t)
	runProgram(t, eng, core, `
		li r1, 0x70000000   ; unmapped
		li r3, 7
		lw r3, 0(r1)        ; decode error -> r3 = 0
		sw r3, 4(r1)        ; decode error
		csrr r4, 4          ; CsrBusErr
		halt
	`)
	if core.Reg(3) != 0 {
		t.Fatalf("failed load returned %#x, want 0", core.Reg(3))
	}
	if core.Reg(4) != 2 {
		t.Fatalf("CsrBusErr = %d, want 2", core.Reg(4))
	}
}

func TestTrapOnBusError(t *testing.T) {
	eng := sim.NewEngine(sim.DefaultFrequency)
	b := bus.New(eng, bus.Config{})
	b.AddSlave(mem.NewBRAM("bram", 0x1000_0000, 0x1000))
	core := cpu.New(eng, cpu.Config{Name: "cpu0", LocalSize: 4096, TrapOnBusError: true},
		b.NewMaster("cpu0"))
	core.Load(isa.MustAssemble(`
		li r1, 0x70000000
		lw r2, 0(r1)
		addi r3, r0, 1  ; must not execute
		halt
	`, 0))
	halted := func() bool { h, _ := core.Halted(); return h }
	eng.RunUntil(halted, 100000)
	if _, cause := core.Halted(); cause != cpu.HaltBusFault {
		t.Fatalf("cause = %v, want bus-fault", cause)
	}
	if core.Reg(3) != 0 {
		t.Fatal("instruction after faulting access executed")
	}
}

func TestCSRs(t *testing.T) {
	eng := sim.NewEngine(sim.DefaultFrequency)
	b := bus.New(eng, bus.Config{})
	b.AddSlave(mem.NewBRAM("bram", 0x1000_0000, 0x1000))
	core := cpu.New(eng, cpu.Config{Name: "cpu7", ID: 7, LocalSize: 4096}, b.NewMaster("cpu7"))
	core.Load(isa.MustAssemble(`
		csrr r1, 0        ; core id
		li   r2, 1234
		csrw 5, r2        ; scratch
		csrr r3, 5
		csrr r4, 1        ; cycle (nonzero by now)
		csrr r5, 3        ; instret
		csrw 0, r2        ; write to RO csr ignored
		csrr r6, 0
		halt
	`, 0))
	halted := func() bool { h, _ := core.Halted(); return h }
	eng.RunUntil(halted, 100000)
	if core.Reg(1) != 7 || core.Reg(6) != 7 {
		t.Fatalf("core id csr = %d/%d, want 7", core.Reg(1), core.Reg(6))
	}
	if core.Reg(3) != 1234 {
		t.Fatalf("scratch = %d, want 1234", core.Reg(3))
	}
	if core.Reg(4) == 0 {
		t.Fatal("cycle csr reads 0")
	}
	if core.Reg(5) == 0 {
		t.Fatal("instret csr reads 0")
	}
}

func TestCallRetAndJump(t *testing.T) {
	eng, core, _ := rig(t)
	runProgram(t, eng, core, `
		li   r1, 0
		call fn
		addi r1, r1, 100   ; runs after return
		halt
	fn:
		addi r1, r1, 5
		ret
	`)
	if core.Reg(1) != 105 {
		t.Fatalf("call/ret: r1 = %d, want 105", core.Reg(1))
	}
}

func TestBranchVariants(t *testing.T) {
	eng, core, _ := rig(t)
	runProgram(t, eng, core, `
		li r1, -1
		li r2, 1
		li r10, 0
		bge r2, r1, a     ; taken (signed)
		halt
	a:	addi r10, r10, 1
		bltu r2, r1, b    ; taken (unsigned: 1 < 0xFFFFFFFF)
		halt
	b:	addi r10, r10, 1
		bgeu r1, r2, c    ; taken
		halt
	c:	addi r10, r10, 1
		blt r1, r2, d     ; taken (signed)
		halt
	d:	addi r10, r10, 1
		halt
	`)
	if core.Reg(10) != 4 {
		t.Fatalf("branch chain reached %d/4 checkpoints", core.Reg(10))
	}
}

func TestIllegalInstructionHalts(t *testing.T) {
	eng, core, _ := rig(t)
	core.Load(&isa.Program{Base: 0, Words: []uint32{0xFC00_0000}, Symbols: map[string]uint32{}})
	halted := func() bool { h, _ := core.Halted(); return h }
	eng.RunUntil(halted, 1000)
	if _, cause := core.Halted(); cause != cpu.HaltIllegal {
		t.Fatalf("cause = %v, want illegal-instruction", cause)
	}
}

func TestFetchFaultOutsideLocal(t *testing.T) {
	eng, core, _ := rig(t)
	// Jump beyond the local window.
	runFault := isa.MustAssemble(`
		li r1, 0x10000000
		jal r0, 0(r1)
	`, 0)
	core.Load(runFault)
	halted := func() bool { h, _ := core.Halted(); return h }
	eng.RunUntil(halted, 10000)
	if _, cause := core.Halted(); cause != cpu.HaltFetchFault {
		t.Fatalf("cause = %v, want fetch-fault", cause)
	}
}

func TestMisalignedLocalAccessCounts(t *testing.T) {
	eng, core, _ := rig(t)
	runProgram(t, eng, core, `
		li r1, 0x8001
		lw r2, 0(r1)    ; misaligned local -> error, keeps running
		csrr r3, 4
		halt
	`)
	if core.Reg(3) != 1 {
		t.Fatalf("CsrBusErr = %d, want 1", core.Reg(3))
	}
}

func TestStatsAndCPI(t *testing.T) {
	eng, core, _ := rig(t)
	runProgram(t, eng, core, `
		li r1, 0x8000
		sw r0, 0(r1)      ; local op
		li r2, 0x10000000
		lw r3, 0(r2)      ; bus op
		halt
	`)
	st := core.Stats()
	if st.LocalOps != 1 || st.BusOps != 1 {
		t.Fatalf("LocalOps=%d BusOps=%d, want 1/1", st.LocalOps, st.BusOps)
	}
	if st.Instructions == 0 || st.Cycles < st.Instructions {
		t.Fatalf("implausible counters: %+v", st)
	}
	if st.CPI() < 1 {
		t.Fatalf("CPI = %f < 1", st.CPI())
	}
}

func TestResetPreservesMemoryClearsState(t *testing.T) {
	eng, core, _ := rig(t)
	runProgram(t, eng, core, `
		li r1, 0x8000
		li r2, 77
		sw r2, 0(r1)
		halt
	`)
	core.Reset()
	if h, _ := core.Halted(); h {
		t.Fatal("core still halted after Reset")
	}
	if core.Reg(2) != 0 {
		t.Fatal("registers survived Reset")
	}
	if got := core.Local().ReadWord(0x8000); got != 77 {
		t.Fatalf("local memory clobbered by Reset: %d", got)
	}
}

func TestDeterministicExecution(t *testing.T) {
	run := func() (uint64, uint32) {
		eng := sim.NewEngine(sim.DefaultFrequency)
		b := bus.New(eng, bus.Config{})
		b.AddSlave(mem.NewBRAM("bram", 0x1000_0000, 0x1_0000))
		core := cpu.New(eng, cpu.Config{Name: "cpu0", LocalSize: 64 * 1024}, b.NewMaster("cpu0"))
		core.Load(isa.MustAssemble(`
			li r1, 0x10000000
			li r2, 0
			li r3, 50
		loop:
			sw r2, 0(r1)
			lw r4, 0(r1)
			add r2, r2, r4
			addi r2, r2, 1
			addi r3, r3, -1
			bnez r3, loop
			halt
		`, 0))
		halted := func() bool { h, _ := core.Halted(); return h }
		eng.RunUntil(halted, 1_000_000)
		return eng.Now(), core.Reg(2)
	}
	c1, r1 := run()
	c2, r2 := run()
	if c1 != c2 || r1 != r2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", c1, r1, c2, r2)
	}
}
