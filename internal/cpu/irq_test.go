package cpu_test

import (
	"testing"

	"repro/internal/isa"
)

func TestIRQEntryAndIRET(t *testing.T) {
	eng, core, _ := rig(t)
	core.Load(isa.MustAssemble(`
		la   r1, handler
		csrw 8, r1            ; install vector
		li   r2, 0
	loop:
		addi r2, r2, 1        ; main loop counts
		li   r3, 1000
		bne  r2, r3, loop
		halt
	handler:
		addi r9, r9, 1        ; count interrupts
		iret
	`, 0))
	// Fire an interrupt mid-run.
	eng.Run(50)
	core.RaiseIRQ()
	halted := func() bool { h, _ := core.Halted(); return h }
	if _, ok := eng.RunUntil(halted, 1_000_000); !ok {
		t.Fatal("program did not halt")
	}
	if core.Reg(9) != 1 {
		t.Fatalf("handler ran %d times, want 1", core.Reg(9))
	}
	if core.Reg(2) != 1000 {
		t.Fatalf("main loop corrupted by interrupt: r2=%d", core.Reg(2))
	}
	if core.InISR() {
		t.Fatal("still in ISR after IRET")
	}
}

func TestIRQIgnoredWithoutVector(t *testing.T) {
	eng, core, _ := rig(t)
	core.Load(isa.MustAssemble(`
		li r2, 0
	loop:
		addi r2, r2, 1
		li   r3, 100
		bne  r2, r3, loop
		halt
	`, 0))
	eng.Run(20)
	core.RaiseIRQ() // no handler installed: stays pending, never delivered
	halted := func() bool { h, _ := core.Halted(); return h }
	eng.RunUntil(halted, 100000)
	if core.Reg(2) != 100 {
		t.Fatalf("r2=%d", core.Reg(2))
	}
	if core.InISR() {
		t.Fatal("entered ISR without a vector")
	}
}

func TestIRQNotReentrant(t *testing.T) {
	eng, core, _ := rig(t)
	core.Load(isa.MustAssemble(`
		la   r1, handler
		csrw 8, r1
		li   r2, 0
	loop:
		addi r2, r2, 1
		li   r3, 2000
		bne  r2, r3, loop
		halt
	handler:
		addi r9, r9, 1
		li   r4, 50           ; linger inside the handler
	hloop:
		addi r4, r4, -1
		bnez r4, hloop
		iret
	`, 0))
	eng.Run(30)
	core.RaiseIRQ()
	eng.Run(10) // handler is now running
	if !core.InISR() {
		t.Fatal("handler not entered")
	}
	core.RaiseIRQ() // second request while in ISR: deferred, not nested
	eng.Run(5)
	if core.Reg(9) != 1 {
		t.Fatal("nested interrupt delivery")
	}
	halted := func() bool { h, _ := core.Halted(); return h }
	eng.RunUntil(halted, 1_000_000)
	// The deferred request is delivered after IRET.
	if core.Reg(9) != 2 {
		t.Fatalf("handler ran %d times, want 2 (one deferred)", core.Reg(9))
	}
}

func TestEPCReadableInHandler(t *testing.T) {
	eng, core, _ := rig(t)
	core.Load(isa.MustAssemble(`
		la   r1, handler
		csrw 8, r1
	loop:
		b loop
	handler:
		csrr r9, 7            ; EPC: must point into the loop
		halt
	`, 0))
	eng.Run(20)
	core.RaiseIRQ()
	halted := func() bool { h, _ := core.Halted(); return h }
	eng.RunUntil(halted, 100000)
	// loop: is a single `beq` at the pc after the two-instruction
	// prologue (la expands to 2 words, csrw is 1).
	loopAddr := uint32(3 * 4)
	if core.Reg(9) != loopAddr {
		t.Fatalf("EPC = %#x, want %#x", core.Reg(9), loopAddr)
	}
}
