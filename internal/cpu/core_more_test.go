package cpu_test

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

func TestThreadCSRTagsBusTraffic(t *testing.T) {
	eng := sim.NewEngine(sim.DefaultFrequency)
	b := bus.New(eng, bus.Config{})
	var seen []uint32
	spy := &spySlave{name: "spy", base: 0x1000_0000, size: 0x1000, onTx: func(tx *bus.Transaction) {
		seen = append(seen, tx.Thread)
	}}
	b.AddSlave(spy)
	core := cpu.New(eng, cpu.Config{Name: "cpu0", LocalSize: 4096}, b.NewMaster("cpu0"))
	core.Load(isa.MustAssemble(`
		li r1, 0x10000000
		sw r0, 0(r1)          ; thread 0
		li r2, 5
		csrw 6, r2
		sw r0, 4(r1)          ; thread 5
		csrr r3, 6
		halt
	`, 0))
	halted := func() bool { h, _ := core.Halted(); return h }
	eng.RunUntil(halted, 100000)
	if len(seen) != 2 || seen[0] != 0 || seen[1] != 5 {
		t.Fatalf("bus saw threads %v, want [0 5]", seen)
	}
	if core.Reg(3) != 5 {
		t.Fatalf("CSRR thread = %d", core.Reg(3))
	}
	if core.Thread() != 5 {
		t.Fatalf("Thread() = %d", core.Thread())
	}
}

// spySlave records transactions for inspection.
type spySlave struct {
	name string
	base uint32
	size uint32
	onTx func(*bus.Transaction)
}

func (s *spySlave) Name() string { return s.name }
func (s *spySlave) Base() uint32 { return s.base }
func (s *spySlave) Size() uint32 { return s.size }
func (s *spySlave) Access(now uint64, tx *bus.Transaction) (uint64, bus.Resp) {
	s.onTx(tx)
	return 1, bus.RespOK
}

func TestCallLinkRegisterValues(t *testing.T) {
	eng, core, _ := rig(t)
	runProgram(t, eng, core, `
		call fn               ; at pc=0, link must be 4
		mov r2, r9            ; capture link seen in fn
		halt
	fn:
		mov r9, lr
		ret
	`)
	if got := core.Reg(2); got != 4 {
		t.Fatalf("link register = %#x, want 4", got)
	}
}

func TestJALIndirectJump(t *testing.T) {
	eng, core, _ := rig(t)
	runProgram(t, eng, core, `
		la  r1, target
		jal r5, 0(r1)         ; r5 = return address
		halt                  ; skipped on the jump... actually target jumps back
	target:
		addi r6, r0, 77
		jal r0, 0(r5)         ; return via saved link
	`)
	if core.Reg(6) != 77 {
		t.Fatalf("indirect jump did not reach target (r6=%d)", core.Reg(6))
	}
	if _, cause := core.Halted(); cause != cpu.HaltInstr {
		t.Fatalf("halt cause %v", cause)
	}
}

func TestStoreDoesNotClobberLink(t *testing.T) {
	eng, core, _ := rig(t)
	runProgram(t, eng, core, `
		li  sp, 0x8000
		li  r1, 0x1234
		sw  r1, -4(sp)        ; negative offset store
		lw  r2, -4(sp)
		halt
	`)
	if core.Reg(2) != 0x1234 {
		t.Fatalf("sp-relative store: %#x", core.Reg(2))
	}
}

func TestHaltedCoreStopsTicking(t *testing.T) {
	eng, core, _ := rig(t)
	runProgram(t, eng, core, "halt")
	c1 := core.Stats().Cycles
	eng.Run(100)
	if core.Stats().Cycles != c1 {
		t.Fatal("halted core kept burning cycles")
	}
}

func TestByteAndHalfBusAccess(t *testing.T) {
	eng, core, ram := rig(t)
	runProgram(t, eng, core, `
		li r1, 0x10000000
		li r2, 0xAB
		sb r2, 1(r1)
		li r2, 0x1234
		sh r2, 2(r1)
		lbu r3, 1(r1)
		lhu r4, 2(r1)
		halt
	`)
	if core.Reg(3) != 0xAB || core.Reg(4) != 0x1234 {
		t.Fatalf("narrow bus ops: r3=%#x r4=%#x", core.Reg(3), core.Reg(4))
	}
	if got := ram.Store().ReadWord(0x1000_0000); got != 0x1234AB00 {
		t.Fatalf("memory layout %#x", got)
	}
}

func BenchmarkCoreSimSpeed(b *testing.B) {
	eng := sim.NewEngine(sim.DefaultFrequency)
	bs := bus.New(eng, bus.Config{})
	bs.AddSlave(mem.NewBRAM("bram", 0x1000_0000, 0x1_0000))
	core := cpu.New(eng, cpu.Config{Name: "cpu0", LocalSize: 64 * 1024}, bs.NewMaster("cpu0"))
	core.Load(isa.MustAssemble(`
		li r1, 0
	loop:
		addi r1, r1, 1
		b loop
	`, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
	b.ReportMetric(float64(core.Stats().Instructions)/float64(b.N), "instr/cycle")
}
