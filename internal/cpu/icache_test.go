package cpu_test

import (
	"fmt"
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/sim"
)

// TestExternalCodeModificationTakesEffect: the decoded-instruction cache
// must observe writes made to local memory behind the core's back (program
// reloads, test pokes, attack injection) via the store generation check.
func TestExternalCodeModificationTakesEffect(t *testing.T) {
	eng := sim.NewEngine(sim.DefaultFrequency)
	c := cpu.New(eng, cpu.Config{Name: "cpu0", LocalBase: 0, LocalSize: 0x1000}, nil)
	// An infinite loop: branch-to-self. The core decodes and caches it.
	c.Load(isa.MustAssemble(`
	loop:
		beq r0, r0, loop
	`, 0))
	eng.Run(10)
	if h, _ := c.Halted(); h {
		t.Fatal("core halted inside the spin loop")
	}
	// Overwrite the loop instruction with HALT directly in local memory.
	halt := isa.MustAssemble("halt", 0).Words[0]
	c.Local().WriteWord(c.PC(), halt)
	eng.Run(5)
	h, cause := c.Halted()
	if !h || cause != cpu.HaltInstr {
		t.Fatalf("core did not execute externally patched HALT (halted=%v cause=%v); stale icache?", h, cause)
	}
}

// TestSelfModifyingStoreInvalidatesICache: a store executed by the core
// into its own code window must invalidate the cached decode of that word.
// The program first runs a countdown loop (caching the decode of its
// branch), then overwrites that branch with HALT and jumps back into it.
func TestSelfModifyingStoreInvalidatesICache(t *testing.T) {
	eng := sim.NewEngine(sim.DefaultFrequency)
	c := cpu.New(eng, cpu.Config{Name: "cpu0", LocalBase: 0, LocalSize: 0x1000}, nil)
	halt := isa.MustAssemble("halt", 0).Words[0]
	src := fmt.Sprintf(`
		lui  r1, %d          ; r1 = HALT encoding (high half)
		ori  r1, r1, %d      ; r1 |= low half
		addi r2, r0, 3       ; loop counter
	loop:
		addi r2, r2, -1      ; address 12
		bnez r2, loop        ; address 16: cached during the countdown
		sw   r1, 16(r0)      ; overwrite the cached branch with HALT
		beq  r0, r0, loop    ; re-enter: 12 then 16, which must now HALT
		halt                 ; safety net (never reached)
	`, halt>>16, halt&0xFFFF)
	c.Load(isa.MustAssemble(src, 0))
	cycles, _ := eng.RunUntil(func() bool { h, _ := c.Halted(); return h }, 200)
	h, cause := c.Halted()
	if !h || cause != cpu.HaltInstr {
		t.Fatalf("self-modified HALT not executed after %d cycles (halted=%v cause=%v); stale icache?",
			cycles, h, cause)
	}
	if c.PC() != 16 {
		t.Fatalf("halted at pc %#x, want 16 (the patched word)", c.PC())
	}
}
