package sweep

import (
	"context"
	"encoding/json"
	"io"
	"runtime"
	"sync"
)

// This file is the record-type-agnostic streaming core shared by the
// benign scenario sweep (RunResult) and the attack campaign
// (campaign.Record): a worker pool over n indexed jobs, a credit-gated
// index-ordered reorder buffer, and deterministic weighted sharding.

// Slice returns the grid indices this shard owns, balancing the given
// per-index weights across the shard set: walking the grid in order, each
// index goes to the shard with the least accumulated weight so far (ties
// to the lowest shard number). With uniform weights this reduces to exact
// round-robin (i % Count == Index); with cost estimates attached — say,
// centralized grid points weighing ~3x — it keeps multi-process wall-clock
// balanced instead of handing one process all the slow points. nil weights
// means uniform; otherwise len(weights) must be n (non-positive entries
// count as 1). The assignment depends only on (n, weights, Count), so
// every shard of a partition computes the same global layout.
func (s Shard) Slice(n int, weights []float64) []int {
	s = s.normalized()
	load := make([]float64, s.Count)
	var out []int
	for i := 0; i < n; i++ {
		min := 0
		for j := 1; j < s.Count; j++ {
			if load[j] < load[min] {
				min = j
			}
		}
		w := 1.0
		if weights != nil && weights[i] > 0 {
			w = weights[i]
		}
		load[min] += w
		if min == s.Index {
			out = append(out, i)
		}
	}
	return out
}

// EmitJSONL returns an emit callback rendering each record as one compact
// JSON object per line — the shared JSONL encoding of the benign sweep and
// the attack campaign, so the per-line contract lives in one place.
func EmitJSONL[R any](w io.Writer) func(R) error {
	return func(r R) error {
		data, err := json.Marshal(r)
		if err != nil {
			return err
		}
		_, err = w.Write(append(data, '\n'))
		return err
	}
}

// indexed pairs a completed record with its global grid index for the
// reorder buffer.
type indexed[R any] struct {
	i int
	r R
}

// Stream executes this shard's portion of n indexed jobs on a pool of
// workers (GOMAXPROCS when workers <= 0) and calls emit once per job, in
// ascending global index order, from the calling goroutine. run(i) must be
// self-contained (no shared mutable state across jobs) and is expected to
// stamp its own record with i. Jobs completing out of order wait in a
// reorder buffer bounded at 2x the worker count: dispatch is credit-gated,
// so a slow job at the head of the grid stalls the workers rather than
// letting completed jobs pile up — the full grid is never buffered, which
// is what lets streams cover arbitrarily large grids.
//
// An error from emit cancels the stream: no further jobs are dispatched
// (in-flight jobs finish and are discarded) and Stream returns that error,
// so a dead output sink does not burn the rest of the grid.
func Stream[R any](n int, sh Shard, weights []float64, workers int, run func(i int) R, emit func(R) error) error {
	return StreamContext(context.Background(), n, sh, weights, workers, run, emit)
}

// StreamContext is Stream with cancellation: when ctx is canceled, no
// further jobs are dispatched, in-flight jobs finish and are discarded,
// every worker goroutine exits, and the call returns ctx's error (unless
// emit already failed — the first cause wins). This is what lets a serving
// process abandon a grid the moment its client disconnects without
// leaking workers or records.
func StreamContext[R any](ctx context.Context, n int, sh Shard, weights []float64, workers int, run func(i int) R, emit func(R) error) error {
	if err := sh.Validate(); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	idxs := sh.Slice(n, weights)
	if len(idxs) == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(idxs) {
		workers = len(idxs)
	}

	// Dispatch credits bound completed-but-not-yet-emitted jobs: each
	// dispatched index holds one credit until its result is emitted in
	// order, so at most `window` results ever wait in the reorder buffer
	// or the results channel.
	window := 2 * workers
	credits := make(chan struct{}, window)
	for j := 0; j < window; j++ {
		credits <- struct{}{}
	}

	jobs := make(chan int)
	results := make(chan indexed[R], workers)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results <- indexed[R]{i: i, r: run(i)}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for _, i := range idxs {
			select {
			case <-credits:
			case <-stop:
				return
			case <-ctx.Done():
				return
			}
			select {
			case jobs <- i:
			case <-stop:
				return
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	// Index-ordered reorder buffer: emit strictly in grid order so every
	// downstream encoding is independent of scheduling. The loop always
	// drains the results channel so every worker goroutine exits; the
	// first failure — emit error or context cancellation — wins.
	pending := make(map[int]R, window)
	next := 0
	var streamErr error
	cancel := func(err error) {
		if streamErr == nil {
			streamErr = err
			close(stop)
		}
	}
	for res := range results {
		if streamErr != nil {
			continue // draining in-flight jobs after cancellation
		}
		if err := ctx.Err(); err != nil {
			cancel(err)
			continue
		}
		pending[res.i] = res.r
		for next < len(idxs) {
			rdy, ok := pending[idxs[next]]
			if !ok {
				break
			}
			// emit may have canceled the context (client disconnect
			// observed mid-write): stop before the next record rather
			// than draining the reorder buffer to a dead sink.
			if err := ctx.Err(); err != nil {
				cancel(err)
				break
			}
			delete(pending, idxs[next])
			next++
			if err := emit(rdy); err != nil {
				cancel(err)
				break
			}
			credits <- struct{}{}
		}
	}
	if streamErr == nil {
		// The cancellation can land during the emit of the last in-flight
		// record: the dispatcher quits on ctx.Done before handing out the
		// next job, results drains clean, and no later receive re-checks
		// the context. The contract is that a canceled ctx yields its
		// error, so check once more after the drain.
		streamErr = ctx.Err()
	}
	return streamErr
}
