package sweep_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/soc"
	"repro/internal/sweep"
)

func smallGrid() []sweep.Config {
	return sweep.Grid(
		[]soc.Protection{soc.Unprotected, soc.Distributed},
		[]string{"mix", "stream"},
		[]string{"internal"},
		[]int{1, 3},
		16, 4, 500_000,
	)
}

func TestGridCrossProduct(t *testing.T) {
	grid := smallGrid()
	if len(grid) != 8 {
		t.Fatalf("grid size = %d, want 8", len(grid))
	}
	// Deterministic order: protection outermost, core count innermost.
	if grid[0].Name() != "unprotected/mix/internal/c1" {
		t.Fatalf("grid[0] = %s", grid[0].Name())
	}
	if grid[7].Name() != "distributed-firewalls/stream/internal/c3" {
		t.Fatalf("grid[7] = %s", grid[7].Name())
	}
}

// TestSweepByteIdenticalAcrossRuns: the whole point of the harness — two
// identical sweeps yield byte-identical JSON reports, regardless of
// goroutine scheduling.
func TestSweepByteIdenticalAcrossRuns(t *testing.T) {
	grid := smallGrid()
	a := mustJSON(t, sweep.Run(grid, 4))
	b := mustJSON(t, sweep.Run(grid, 4))
	if !bytes.Equal(a, b) {
		t.Fatalf("repeated sweeps differ:\n%s\n---\n%s", a, b)
	}
}

// TestSweepWorkerCountInvariant: the report must not depend on the degree
// of parallelism.
func TestSweepWorkerCountInvariant(t *testing.T) {
	grid := smallGrid()
	serial := mustJSON(t, sweep.Run(grid, 1))
	parallel := mustJSON(t, sweep.Run(grid, 8))
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("serial and parallel sweeps differ:\n%s\n---\n%s", serial, parallel)
	}
}

func TestSweepRunsComplete(t *testing.T) {
	rep := sweep.Run(smallGrid(), 0)
	if rep.GridSize != 8 || len(rep.Results) != 8 {
		t.Fatalf("report size %d/%d, want 8/8", rep.GridSize, len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.Err != "" {
			t.Fatalf("%s failed: %s", r.Name, r.Err)
		}
		if !r.AllHalted {
			t.Fatalf("%s did not halt within budget (cycles=%d)", r.Name, r.Cycles)
		}
		if r.Instructions == 0 || r.Bus.Completed == 0 {
			t.Fatalf("%s reports empty stats: %+v", r.Name, r)
		}
		if len(r.Cores) != r.NumCores {
			t.Fatalf("%s: %d core breakdowns for %d cores", r.Name, len(r.Cores), r.NumCores)
		}
	}
}

// TestPerFirewallBreakdown: the per-firewall evidence the paper's argument
// rests on must be present — every distributed run carries snapshots for
// each enforcement point, with the core firewalls actually checking
// transfers, and unprotected runs carry none.
func TestPerFirewallBreakdown(t *testing.T) {
	rep := sweep.Run(smallGrid(), 2)
	for _, r := range rep.Results {
		switch r.Protection {
		case "unprotected":
			if len(r.Firewalls) != 0 {
				t.Fatalf("%s: unexpected firewall stats %+v", r.Name, r.Firewalls)
			}
		case "distributed-firewalls":
			// numCores master LFs + lf-dma + 4 slave LFs + the LCF.
			want := r.NumCores + 6
			if len(r.Firewalls) != want {
				t.Fatalf("%s: %d firewall snapshots, want %d", r.Name, len(r.Firewalls), want)
			}
			var checked uint64
			for _, f := range r.Firewalls {
				if f.ID == "" || f.Kind == "" {
					t.Fatalf("%s: unlabeled snapshot %+v", r.Name, f)
				}
				checked += f.Checked
			}
			if checked == 0 {
				t.Fatalf("%s: firewalls checked nothing", r.Name)
			}
		}
	}
}

// TestProtectionOverheadVisibleInSweep: the sweep must reproduce the
// paper's headline qualitative result — distributed firewalls cost cycles
// versus the unprotected platform on the same workload.
func TestProtectionOverheadVisibleInSweep(t *testing.T) {
	rep := sweep.Run(smallGrid(), 2)
	byName := map[string]sweep.RunResult{}
	for _, r := range rep.Results {
		byName[r.Name] = r
	}
	un := byName["unprotected/mix/internal/c3"]
	di := byName["distributed-firewalls/mix/internal/c3"]
	if un.Cycles == 0 || di.Cycles <= un.Cycles {
		t.Fatalf("protection overhead not visible: unprotected %d vs distributed %d cycles",
			un.Cycles, di.Cycles)
	}
}

// TestScrubWorkloadSweepsExternalMemory: the scrub kernel is the sweep's
// secured read-modify-write axis — on the distributed platform with an
// external target every access crosses the LCF, which must be visible (and
// costly in simulated cycles) relative to the unprotected run.
func TestScrubWorkloadSweepsExternalMemory(t *testing.T) {
	un := sweep.RunOne(sweep.Config{Protection: soc.Unprotected, Workload: "scrub",
		Target: "external", Accesses: 16})
	di := sweep.RunOne(sweep.Config{Protection: soc.Distributed, Workload: "scrub",
		Target: "external", Accesses: 16})
	if un.Err != "" || di.Err != "" {
		t.Fatalf("scrub runs failed: %q %q", un.Err, di.Err)
	}
	if !un.AllHalted || !di.AllHalted {
		t.Fatal("scrub did not finish")
	}
	if di.Cycles <= un.Cycles {
		t.Fatalf("LCF cost invisible: distributed %d <= unprotected %d cycles", di.Cycles, un.Cycles)
	}
	var lcfChecked uint64
	for _, f := range di.Firewalls {
		if f.Kind == core.KindCipherLF {
			lcfChecked = f.Checked
		}
	}
	if lcfChecked == 0 {
		t.Fatal("scrub traffic never reached the LCF")
	}
}

func TestRunOneRejectsBadConfigs(t *testing.T) {
	if r := sweep.RunOne(sweep.Config{Workload: "nope"}); r.Err == "" {
		t.Fatal("unknown workload accepted")
	}
	if r := sweep.RunOne(sweep.Config{Workload: "mix", Target: "nope"}); r.Err == "" {
		t.Fatal("unknown target accepted")
	}
	if r := sweep.RunOne(sweep.Config{Workload: "producer-consumer", NumCores: 1}); r.Err == "" {
		t.Fatal("producer-consumer on one core accepted")
	}
}

func mustJSON(t *testing.T, rep sweep.Report) []byte {
	t.Helper()
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}
