package sweep_test

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sweep"
)

// TestStreamContextCancelStopsDispatch: canceling the context must stop
// new dispatch, let in-flight jobs drain, and return ctx's error — the
// disconnect path of the campaign service.
func TestStreamContextCancelStopsDispatch(t *testing.T) {
	const n = 64
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	var emitted int
	err := sweep.StreamContext(ctx, n, sweep.Shard{}, nil, 2, func(i int) int {
		ran.Add(1)
		return i
	}, func(i int) error {
		emitted++
		if emitted == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Dispatch is credit-gated at 2x workers, so after the cancel at the
	// third emission at most window+emitted more jobs can ever have been
	// dispatched — nowhere near the full grid.
	if got := ran.Load(); got >= n {
		t.Fatalf("cancellation did not stop dispatch: %d of %d jobs ran", got, n)
	}
	if emitted != 3 {
		t.Fatalf("emitted %d records after cancellation, want exactly 3", emitted)
	}
}

// TestStreamContextPreCanceled: a context that is already dead must not
// run anything.
func TestStreamContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := sweep.StreamContext(ctx, 8, sweep.Shard{}, nil, 2,
		func(i int) int { ran.Add(1); return i },
		func(int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d jobs ran under a pre-canceled context", ran.Load())
	}
}

// waitForGoroutines polls until the goroutine count returns to within
// slack of the baseline (the runtime needs a moment to retire exiting
// goroutines).
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d running, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamContextNoGoroutineLeak: every cancellation path — mid-stream
// cancel, pre-cancel, emit error — must retire all worker goroutines.
func TestStreamContextNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine() + 2 // tolerate unrelated runtime churn
	for name, run := range map[string]func() error{
		"cancel": func() error {
			ctx, cancel := context.WithCancel(context.Background())
			return sweep.StreamContext(ctx, 32, sweep.Shard{}, nil, 4,
				func(i int) int { return i },
				func(i int) error {
					if i == 1 {
						cancel()
					}
					return nil
				})
		},
		"emit error": func() error {
			return sweep.StreamContext(context.Background(), 32, sweep.Shard{}, nil, 4,
				func(i int) int { return i },
				func(i int) error { return errors.New("sink died") })
		},
		"clean finish": func() error {
			return sweep.StreamContext(context.Background(), 32, sweep.Shard{}, nil, 4,
				func(i int) int { return i },
				func(int) error { return nil })
		},
	} {
		err := run()
		if name != "clean finish" && err == nil {
			t.Fatalf("%s: expected an error", name)
		}
		if name == "clean finish" && err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		waitForGoroutines(t, baseline)
	}
}

// TestEachContextCancel: the config-level wrapper forwards the context.
func TestEachContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfgs := []sweep.Config{{Workload: "stream", NumCores: 1, Accesses: 1, MaxCycles: 1000}}
	err := sweep.EachContext(ctx, cfgs, sweep.Shard{}, 1, func(sweep.RunResult) error {
		t.Fatal("emit called under a canceled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
