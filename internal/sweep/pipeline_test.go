package sweep_test

import (
	"fmt"
	"testing"

	"repro/internal/soc"
	"repro/internal/sweep"
)

// TestSliceUniformIsRoundRobin: with no weights the balanced assignment
// must degenerate to the historical round-robin rule (i % Count == Index).
func TestSliceUniformIsRoundRobin(t *testing.T) {
	const n, shards = 17, 3
	for s := 0; s < shards; s++ {
		sh := sweep.Shard{Index: s, Count: shards}
		for _, i := range sh.Slice(n, nil) {
			if i%shards != s {
				t.Fatalf("uniform Slice gave shard %s index %d", sh, i)
			}
		}
	}
}

// TestSlicePartitions: whatever the weights, every index lands in exactly
// one shard — a mis-partitioned sweep is a silently incomplete dataset.
func TestSlicePartitions(t *testing.T) {
	weights := make([]float64, 23)
	for i := range weights {
		weights[i] = float64(1 + i%5)
	}
	seen := map[int]int{}
	for s := 0; s < 4; s++ {
		prev := -1
		for _, i := range (sweep.Shard{Index: s, Count: 4}).Slice(len(weights), weights) {
			seen[i]++
			if i <= prev {
				t.Fatalf("shard %d indices not strictly ascending: %d after %d", s, i, prev)
			}
			prev = i
		}
	}
	if len(seen) != len(weights) {
		t.Fatalf("shards covered %d of %d indices", len(seen), len(weights))
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d assigned %d times", i, c)
		}
	}
}

// TestSliceBalancesWeights: the point of cost-aware sharding — shard loads
// must stay within one grid point of each other even when weights are
// skewed 3x, where round-robin can concentrate the expensive points.
func TestSliceBalancesWeights(t *testing.T) {
	// Alternating cheap/expensive, the shape a protection-outermost grid
	// produces after interleaving: round-robin with 2 shards would give
	// one shard all the 3x points.
	weights := make([]float64, 24)
	var max float64
	for i := range weights {
		weights[i] = 1
		if i%2 == 1 {
			weights[i] = 3
		}
		if weights[i] > max {
			max = weights[i]
		}
	}
	loads := make([]float64, 2)
	for s := range loads {
		for _, i := range (sweep.Shard{Index: s, Count: 2}).Slice(len(weights), weights) {
			loads[s] += weights[i]
		}
	}
	diff := loads[0] - loads[1]
	if diff < 0 {
		diff = -diff
	}
	if diff > max {
		t.Fatalf("balanced slice loads %v differ by %.0f (> max weight %.0f)", loads, diff, max)
	}
	// And round-robin on the same weights really is worse — otherwise this
	// test proves nothing.
	rr := make([]float64, 2)
	for i, w := range weights {
		rr[i%2] += w
	}
	rrDiff := rr[0] - rr[1]
	if rrDiff < 0 {
		rrDiff = -rrDiff
	}
	if rrDiff <= diff {
		t.Fatalf("round-robin (%v) not worse than balanced (%v) on this fixture", rr, loads)
	}
}

// TestConfigWeightOrdersProtections pins the cost model's shape rather
// than its constants: centralized > distributed > unprotected.
func TestConfigWeightOrdersProtections(t *testing.T) {
	un := sweep.Config{Protection: soc.Unprotected}.Weight()
	di := sweep.Config{Protection: soc.Distributed}.Weight()
	ce := sweep.Config{Protection: soc.Centralized}.Weight()
	if !(ce > di && di > un && un > 0) {
		t.Fatalf("weights not ordered: unprotected=%v distributed=%v centralized=%v", un, di, ce)
	}
}

// TestStreamGenericRecord: the streaming core must work for any record
// type — ordered emission, worker independence — since the campaign rides
// it with its own Record.
func TestStreamGenericRecord(t *testing.T) {
	type rec struct {
		idx int
		val string
	}
	for _, workers := range []int{1, 4} {
		var got []rec
		err := sweep.Stream(9, sweep.Shard{}, nil, workers, func(i int) rec {
			return rec{idx: i, val: fmt.Sprintf("r%d", i)}
		}, func(r rec) error {
			got = append(got, r)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 9 {
			t.Fatalf("emitted %d of 9", len(got))
		}
		for i, r := range got {
			if r.idx != i || r.val != fmt.Sprintf("r%d", i) {
				t.Fatalf("workers=%d: position %d holds %+v", workers, i, r)
			}
		}
	}
}
