// Package sweep is the scenario-sweep pipeline: it runs many independent,
// deterministic soc.System instances across a worker pool and streams
// per-run statistics — aggregate, per-core and per-firewall — as they
// complete.
//
// Each simulation owns its engine and every component hanging off it, so
// runs share no mutable state and can execute on separate goroutines
// without synchronization beyond the job queue. Completed runs pass through
// an index-ordered reorder buffer before they reach the consumer, which
// makes every output stream independent of goroutine scheduling: two sweeps
// over the same grid produce byte-identical JSONL/CSV/JSON regardless of
// worker count.
//
// Grids also shard deterministically across processes: Shard{i, n} selects
// every n-th grid point starting at i, each shard's stream carries global
// grid indices, and Merge recombines shard outputs into the exact stream a
// single unsharded process would have written.
package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/soc"
	"repro/internal/workload"
)

// Default per-run parameters, applied by Normalize when a Config leaves the
// corresponding field zero.
const (
	DefaultAccesses  = 64
	DefaultCompute   = 8
	DefaultMaxCycles = 2_000_000
)

// Config is one grid point: a platform build plus the workload to run on
// it.
type Config struct {
	// Protection selects the security architecture.
	Protection soc.Protection `json:"-"`
	// NumCores is the processor count (soc default when zero).
	NumCores int `json:"num_cores"`
	// Workload is one of matmul, memcopy, stream, scrub, mix,
	// producer-consumer (the mpsocsim workload names). With an external
	// Target, stream/scrub/mix/memcopy route every access through the
	// Local Ciphering Firewall on protected platforms.
	Workload string `json:"workload"`
	// Target is the access target for memory workloads: internal,
	// external, cipher or plain.
	Target string `json:"target"`
	// Accesses and Compute parameterize the workload (DefaultAccesses /
	// DefaultCompute when zero).
	Accesses int `json:"accesses"`
	Compute  int `json:"compute"`
	// MaxCycles is the cycle budget per run (DefaultMaxCycles when
	// zero).
	MaxCycles uint64 `json:"max_cycles"`
}

// Normalize fills defaulted fields in place and returns the config.
func (c Config) Normalize() Config {
	if c.NumCores == 0 {
		c.NumCores = 3
	}
	if c.Workload == "" {
		c.Workload = "mix"
	}
	if c.Target == "" {
		c.Target = "internal"
	}
	if c.Accesses == 0 {
		c.Accesses = DefaultAccesses
	}
	if c.Compute == 0 {
		c.Compute = DefaultCompute
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = DefaultMaxCycles
	}
	return c
}

// Name is the grid point's stable identifier.
func (c Config) Name() string {
	c = c.Normalize()
	return fmt.Sprintf("%s/%s/%s/c%d", c.Protection, c.Workload, c.Target, c.NumCores)
}

// RunResult is the outcome of one run: the grid position, the aggregate
// counters, and the per-core and per-firewall breakdowns snapshotted from
// the platform. Every field derives from the deterministic simulation (no
// wall-clock values), so identical configs yield identical results.
type RunResult struct {
	// Index is the run's global grid position — global even in sharded
	// sweeps, which is what lets Merge reconstruct the unsharded stream.
	Index      int    `json:"index"`
	Name       string `json:"name"`
	Protection string `json:"protection"`
	Workload   string `json:"workload"`
	Target     string `json:"target"`
	NumCores   int    `json:"num_cores"`

	Cycles    uint64 `json:"cycles"`
	AllHalted bool   `json:"all_halted"`

	// Aggregates summed over all cores.
	Instructions uint64 `json:"instructions"`
	StallCycles  uint64 `json:"stall_cycles"`
	BusOps       uint64 `json:"bus_ops"`
	BusErrors    uint64 `json:"bus_errors"`

	// Bus is the full interconnect breakdown (response classes, busy and
	// wait cycles, per-master transaction counts).
	Bus            bus.Stats `json:"bus"`
	BusUtilization float64   `json:"bus_utilization"`

	Alerts int `json:"alerts"`

	// Cores breaks the aggregates down per core; Firewalls snapshots
	// every security enforcement point (empty on the unprotected
	// platform).
	Cores     []soc.CoreStat  `json:"cores,omitempty"`
	Firewalls []core.Snapshot `json:"firewalls,omitempty"`

	Err string `json:"error,omitempty"`
}

// Report is a completed, fully buffered sweep (the legacy JSON form; the
// streaming formats in stream.go avoid holding the whole grid in memory).
type Report struct {
	GridSize int         `json:"grid_size"`
	Results  []RunResult `json:"results"`
}

// JSON renders the report with stable formatting: byte-identical for
// identical sweeps.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Grid builds the cross product of the given axes in deterministic order
// (protection outermost, core count innermost). Shared workload parameters
// apply to every point; zero values select the defaults.
func Grid(prots []soc.Protection, workloads, targets []string, coreCounts []int, accesses, compute int, maxCycles uint64) []Config {
	var grid []Config
	for _, p := range prots {
		for _, w := range workloads {
			for _, t := range targets {
				for _, n := range coreCounts {
					grid = append(grid, Config{
						Protection: p,
						NumCores:   n,
						Workload:   w,
						Target:     t,
						Accesses:   accesses,
						Compute:    compute,
						MaxCycles:  maxCycles,
					}.Normalize())
				}
			}
		}
	}
	return grid
}

// Shard selects a deterministic subset of a grid for one process of a
// multi-process sweep: shard Index of Count under the cost-balanced
// assignment computed by Slice (exact round-robin when all grid points
// weigh the same). The zero value selects the whole grid.
type Shard struct {
	Index int
	Count int
}

// ParseShard parses the mpsocsim -shard syntax "i/n". The empty string is
// the whole grid.
func ParseShard(s string) (Shard, error) {
	if s == "" {
		return Shard{}, nil
	}
	// Strict i/n syntax: Sscanf would silently ignore trailing garbage
	// ("0/2,1/2" would run slice 0/2), and a mis-sharded sweep is a
	// silently incomplete dataset.
	is, cs, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("sweep: bad shard %q (want i/n)", s)
	}
	var sh Shard
	var err error
	if sh.Index, err = strconv.Atoi(is); err != nil {
		return Shard{}, fmt.Errorf("sweep: bad shard %q (want i/n)", s)
	}
	if sh.Count, err = strconv.Atoi(cs); err != nil {
		return Shard{}, fmt.Errorf("sweep: bad shard %q (want i/n)", s)
	}
	// Explicit syntax must name a real i-of-n slice — "0/0" is not the
	// whole-grid shorthand, the empty string is.
	if sh.Count < 1 || sh.Index < 0 || sh.Index >= sh.Count {
		return Shard{}, fmt.Errorf("sweep: shard %d/%d out of range", sh.Index, sh.Count)
	}
	return sh, nil
}

// normalized maps the zero value to the canonical whole-grid shard 0/1.
func (s Shard) normalized() Shard {
	if s.Count == 0 && s.Index == 0 {
		return Shard{Index: 0, Count: 1}
	}
	return s
}

// Validate reports whether the shard designates a coherent i-of-n slice.
func (s Shard) Validate() error {
	s = s.normalized()
	if s.Count < 1 || s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("sweep: shard %d/%d out of range", s.Index, s.Count)
	}
	return nil
}

// String renders the -shard syntax.
func (s Shard) String() string {
	s = s.normalized()
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

// Weight estimates the grid point's relative cost for shard balancing.
// The dominant driver is the protection architecture: a centralized run
// pays two extra protocol transactions per access against a serialized
// checker (~3x a generic run), a distributed run pays the per-interface
// Security Builder latency (~1.5x).
func (c Config) Weight() float64 {
	switch c.Protection {
	case soc.Centralized:
		return 3
	case soc.Distributed:
		return 1.5
	default:
		return 1
	}
}

// Weights maps Config.Weight over a grid, in the form Shard.Slice and
// Stream consume.
func Weights(cfgs []Config) []float64 {
	w := make([]float64, len(cfgs))
	for i, c := range cfgs {
		w[i] = c.Weight()
	}
	return w
}

// Each executes this shard's portion of the grid on a pool of workers
// (GOMAXPROCS when workers <= 0) and calls emit once per run, in ascending
// global grid index order, from the calling goroutine — see Stream for the
// reorder-buffer and cancellation contract. Shards slice the grid
// cost-aware (Weights), so multi-process sweeps balance wall-clock even
// though centralized grid points run ~3x longer.
func Each(cfgs []Config, sh Shard, workers int, emit func(RunResult) error) error {
	return EachContext(context.Background(), cfgs, sh, workers, emit)
}

// EachContext is Each with cancellation — see StreamContext for the
// contract a canceled context buys.
func EachContext(ctx context.Context, cfgs []Config, sh Shard, workers int, emit func(RunResult) error) error {
	return StreamContext(ctx, len(cfgs), sh, Weights(cfgs), workers, func(i int) RunResult {
		r := RunOne(cfgs[i])
		r.Index = i
		return r
	}, emit)
}

// Run executes every config and returns the fully buffered report in grid
// order (the legacy form; prefer the streaming writers for large grids).
func Run(cfgs []Config, workers int) Report {
	rep := Report{GridSize: len(cfgs), Results: make([]RunResult, 0, len(cfgs))}
	// The whole-grid shard never fails validation and this emit never
	// errors.
	_ = Each(cfgs, Shard{}, workers, func(r RunResult) error {
		rep.Results = append(rep.Results, r)
		return nil
	})
	return rep
}

// RunOne builds and runs a single grid point. The caller owns Index; RunOne
// leaves it zero.
func RunOne(cfg Config) RunResult {
	cfg = cfg.Normalize()
	res := RunResult{
		Name:       cfg.Name(),
		Protection: cfg.Protection.String(),
		Workload:   cfg.Workload,
		Target:     cfg.Target,
		NumCores:   cfg.NumCores,
	}
	s, err := soc.New(soc.Config{Protection: cfg.Protection, NumCores: cfg.NumCores})
	if err != nil {
		res.Err = err.Error()
		return res
	}
	tgt, span, err := ParseTarget(cfg.Target)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	if err := LoadWorkload(s, cfg.Workload, tgt, span, cfg.Compute, cfg.Accesses); err != nil {
		res.Err = err.Error()
		return res
	}
	res.Cycles, res.AllHalted = s.Run(cfg.MaxCycles)
	res.Cores = s.CoreStats()
	for _, st := range res.Cores {
		res.Instructions += st.Instructions
		res.StallCycles += st.StallCycles
		res.BusOps += st.BusOps
		res.BusErrors += st.BusErrors
	}
	res.Bus = s.Bus.Stats()
	res.BusUtilization = res.Bus.Utilization(s.Eng.Now())
	res.Alerts = s.Alerts.Len()
	res.Firewalls = s.FirewallStats()
	return res
}

// WorkloadNames lists the accepted workload kernels in canonical order —
// the single list behind LoadWorkload, the mpsocsim -workload flag and
// spec validation.
func WorkloadNames() []string {
	return []string{"matmul", "memcopy", "stream", "scrub", "mix", "producer-consumer"}
}

// TargetNames lists the accepted access targets in canonical order.
func TargetNames() []string {
	return []string{"internal", "external", "cipher", "plain"}
}

// ParseTarget maps a target name to its base address and span.
func ParseTarget(s string) (base, span uint32, err error) {
	switch s {
	case "internal":
		return soc.BRAMBase, 0x1000, nil
	case "external":
		return soc.SecureBase, 0x1000, nil
	case "cipher":
		return soc.CipherBase, 0x1000, nil
	case "plain":
		return soc.PlainBase, 0x1000, nil
	default:
		return 0, 0, fmt.Errorf("sweep: unknown target %q", s)
	}
}

// LoadWorkload loads the named workload onto the platform (the same set
// mpsocsim exposes on the command line).
func LoadWorkload(s *soc.System, name string, tgt, span uint32, compute, accesses int) error {
	switch name {
	case "matmul":
		s.HaltIdleCores(0)
		s.MustLoad(0, workload.MatMulLocal(12, soc.BRAMBase+0x40))
	case "memcopy":
		s.HaltIdleCores(0)
		s.MustLoad(0, workload.MemCopy(tgt, tgt+span/2, accesses))
	case "stream":
		s.HaltIdleCores(0)
		s.MustLoad(0, workload.Stream(tgt, accesses, 4, 0))
	case "scrub":
		s.HaltIdleCores(0)
		words := accesses
		if max := int(span / 4); words > max {
			words = max
		}
		s.MustLoad(0, workload.Scrub(tgt, words, 4))
	case "mix":
		for i := range s.Cores {
			s.MustLoad(i, workload.Mix(tgt+uint32(i)*span, span, 4, accesses, compute))
		}
	case "producer-consumer":
		if len(s.Cores) < 2 {
			return fmt.Errorf("sweep: producer-consumer needs >= 2 cores, have %d", len(s.Cores))
		}
		s.HaltIdleCores(0, 1)
		s.MustLoad(0, workload.Producer(soc.MboxBase, accesses))
		s.MustLoad(1, workload.Consumer(soc.MboxBase, accesses, soc.BRAMBase+0x80))
	default:
		return fmt.Errorf("sweep: unknown workload %q", name)
	}
	return nil
}
