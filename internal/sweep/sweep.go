// Package sweep is the scenario-sweep harness: it runs many independent,
// deterministic soc.System instances across a worker pool and collects
// per-run statistics into a reproducible JSON report.
//
// Each simulation owns its engine and every component hanging off it, so
// runs share no mutable state and can execute on separate goroutines
// without synchronization beyond the job queue. Results are written into a
// slice indexed by grid position, which makes the report independent of
// goroutine scheduling: two sweeps over the same grid produce byte-identical
// JSON regardless of worker count.
package sweep

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/soc"
	"repro/internal/workload"
)

// Default per-run parameters, applied by Normalize when a Config leaves the
// corresponding field zero.
const (
	DefaultAccesses  = 64
	DefaultCompute   = 8
	DefaultMaxCycles = 2_000_000
)

// Config is one grid point: a platform build plus the workload to run on
// it.
type Config struct {
	// Protection selects the security architecture.
	Protection soc.Protection `json:"-"`
	// NumCores is the processor count (soc default when zero).
	NumCores int `json:"num_cores"`
	// Workload is one of matmul, memcopy, stream, mix, producer-consumer
	// (the mpsocsim workload names).
	Workload string `json:"workload"`
	// Target is the access target for memory workloads: internal,
	// external, cipher or plain.
	Target string `json:"target"`
	// Accesses and Compute parameterize the workload (DefaultAccesses /
	// DefaultCompute when zero).
	Accesses int `json:"accesses"`
	Compute  int `json:"compute"`
	// MaxCycles is the cycle budget per run (DefaultMaxCycles when
	// zero).
	MaxCycles uint64 `json:"max_cycles"`
}

// Normalize fills defaulted fields in place and returns the config.
func (c Config) Normalize() Config {
	if c.NumCores == 0 {
		c.NumCores = 3
	}
	if c.Workload == "" {
		c.Workload = "mix"
	}
	if c.Target == "" {
		c.Target = "internal"
	}
	if c.Accesses == 0 {
		c.Accesses = DefaultAccesses
	}
	if c.Compute == 0 {
		c.Compute = DefaultCompute
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = DefaultMaxCycles
	}
	return c
}

// Name is the grid point's stable identifier.
func (c Config) Name() string {
	c = c.Normalize()
	return fmt.Sprintf("%s/%s/%s/c%d", c.Protection, c.Workload, c.Target, c.NumCores)
}

// Result is the outcome of one run. Every field derives from the
// deterministic simulation (no wall-clock values), so identical configs
// yield identical results.
type Result struct {
	Name       string `json:"name"`
	Protection string `json:"protection"`
	Workload   string `json:"workload"`
	Target     string `json:"target"`
	NumCores   int    `json:"num_cores"`

	Cycles    uint64 `json:"cycles"`
	AllHalted bool   `json:"all_halted"`

	Instructions uint64 `json:"instructions"`
	StallCycles  uint64 `json:"stall_cycles"`
	BusOps       uint64 `json:"bus_ops"`
	BusErrors    uint64 `json:"bus_errors"`

	BusTransactions uint64  `json:"bus_transactions"`
	BusWaitCycles   uint64  `json:"bus_wait_cycles"`
	BusUtilization  float64 `json:"bus_utilization"`
	BitsMoved       uint64  `json:"bits_moved"`

	Alerts int `json:"alerts"`

	Err string `json:"error,omitempty"`
}

// Report is a completed sweep.
type Report struct {
	GridSize int      `json:"grid_size"`
	Results  []Result `json:"results"`
}

// JSON renders the report with stable formatting: byte-identical for
// identical sweeps.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Grid builds the cross product of the given axes in deterministic order
// (protection outermost, core count innermost). Shared workload parameters
// apply to every point; zero values select the defaults.
func Grid(prots []soc.Protection, workloads, targets []string, coreCounts []int, accesses, compute int, maxCycles uint64) []Config {
	var grid []Config
	for _, p := range prots {
		for _, w := range workloads {
			for _, t := range targets {
				for _, n := range coreCounts {
					grid = append(grid, Config{
						Protection: p,
						NumCores:   n,
						Workload:   w,
						Target:     t,
						Accesses:   accesses,
						Compute:    compute,
						MaxCycles:  maxCycles,
					}.Normalize())
				}
			}
		}
	}
	return grid
}

// Run executes every config on a pool of workers (GOMAXPROCS when workers
// <= 0) and returns the report in grid order. Each worker builds complete,
// private platforms, so no locking is needed around simulation state.
func Run(cfgs []Config, workers int) Report {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	results := make([]Result, len(cfgs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = RunOne(cfgs[i])
			}
		}()
	}
	for i := range cfgs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return Report{GridSize: len(cfgs), Results: results}
}

// RunOne builds and runs a single grid point.
func RunOne(cfg Config) Result {
	cfg = cfg.Normalize()
	res := Result{
		Name:       cfg.Name(),
		Protection: cfg.Protection.String(),
		Workload:   cfg.Workload,
		Target:     cfg.Target,
		NumCores:   cfg.NumCores,
	}
	s, err := soc.New(soc.Config{Protection: cfg.Protection, NumCores: cfg.NumCores})
	if err != nil {
		res.Err = err.Error()
		return res
	}
	tgt, span, err := ParseTarget(cfg.Target)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	if err := LoadWorkload(s, cfg.Workload, tgt, span, cfg.Compute, cfg.Accesses); err != nil {
		res.Err = err.Error()
		return res
	}
	res.Cycles, res.AllHalted = s.Run(cfg.MaxCycles)
	for _, c := range s.Cores {
		st := c.Stats()
		res.Instructions += st.Instructions
		res.StallCycles += st.StallCycles
		res.BusOps += st.BusOps
		res.BusErrors += st.BusErrors
	}
	bst := s.Bus.Stats()
	res.BusTransactions = bst.Completed
	res.BusWaitCycles = bst.WaitCycles
	res.BusUtilization = bst.Utilization(s.Eng.Now())
	res.BitsMoved = bst.BitsMoved
	res.Alerts = s.Alerts.Len()
	return res
}

// ParseTarget maps a target name to its base address and span.
func ParseTarget(s string) (base, span uint32, err error) {
	switch s {
	case "internal":
		return soc.BRAMBase, 0x1000, nil
	case "external":
		return soc.SecureBase, 0x1000, nil
	case "cipher":
		return soc.CipherBase, 0x1000, nil
	case "plain":
		return soc.PlainBase, 0x1000, nil
	default:
		return 0, 0, fmt.Errorf("sweep: unknown target %q", s)
	}
}

// LoadWorkload loads the named workload onto the platform (the same set
// mpsocsim exposes on the command line).
func LoadWorkload(s *soc.System, name string, tgt, span uint32, compute, accesses int) error {
	switch name {
	case "matmul":
		s.HaltIdleCores(0)
		s.MustLoad(0, workload.MatMulLocal(12, soc.BRAMBase+0x40))
	case "memcopy":
		s.HaltIdleCores(0)
		s.MustLoad(0, workload.MemCopy(tgt, tgt+span/2, accesses))
	case "stream":
		s.HaltIdleCores(0)
		s.MustLoad(0, workload.Stream(tgt, accesses, 4, 0))
	case "mix":
		for i := range s.Cores {
			s.MustLoad(i, workload.Mix(tgt+uint32(i)*span, span, 4, accesses, compute))
		}
	case "producer-consumer":
		if len(s.Cores) < 2 {
			return fmt.Errorf("sweep: producer-consumer needs >= 2 cores, have %d", len(s.Cores))
		}
		s.HaltIdleCores(0, 1)
		s.MustLoad(0, workload.Producer(soc.MboxBase, accesses))
		s.MustLoad(1, workload.Consumer(soc.MboxBase, accesses, soc.BRAMBase+0x80))
	default:
		return fmt.Errorf("sweep: unknown workload %q", name)
	}
	return nil
}
