package sweep_test

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/sweep"
)

// countingWriter records every Write call, to prove the stream is emitted
// incrementally rather than as one buffered report.
type countingWriter struct {
	buf    bytes.Buffer
	writes int
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	return w.buf.Write(p)
}

func jsonl(t *testing.T, sh sweep.Shard, workers int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sweep.WriteJSONL(&buf, smallGrid(), sh, workers); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestJSONLStreamsIncrementally(t *testing.T) {
	grid := smallGrid()
	var w countingWriter
	if err := sweep.WriteJSONL(&w, grid, sweep.Shard{}, 4); err != nil {
		t.Fatal(err)
	}
	if w.writes < len(grid) {
		t.Fatalf("report written in %d chunks for %d runs — not streaming", w.writes, len(grid))
	}
	lines := bytes.Split(bytes.TrimSpace(w.buf.Bytes()), []byte("\n"))
	if len(lines) != len(grid) {
		t.Fatalf("%d lines for %d runs", len(lines), len(grid))
	}
	for i, l := range lines {
		var r sweep.RunResult
		if err := json.Unmarshal(l, &r); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if r.Index != i {
			t.Fatalf("line %d carries index %d — not grid-ordered", i, r.Index)
		}
	}
}

func TestJSONLWorkerCountInvariant(t *testing.T) {
	serial := jsonl(t, sweep.Shard{}, 1)
	parallel := jsonl(t, sweep.Shard{}, 8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("JSONL differs across worker counts:\n%s\n---\n%s", serial, parallel)
	}
}

// TestShardMergeByteIdentical is the acceptance check for multi-process
// sweeps: shard 0/2 + shard 1/2, recombined by Merge, must be
// byte-identical to the unsharded stream.
func TestShardMergeByteIdentical(t *testing.T) {
	full := jsonl(t, sweep.Shard{}, 4)
	s0 := jsonl(t, sweep.Shard{Index: 0, Count: 2}, 2)
	s1 := jsonl(t, sweep.Shard{Index: 1, Count: 2}, 3)
	if bytes.Equal(s0, s1) {
		t.Fatal("shards produced identical streams — sharding is not partitioning")
	}
	var merged bytes.Buffer
	if err := sweep.Merge(&merged, bytes.NewReader(s1), bytes.NewReader(s0)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full, merged.Bytes()) {
		t.Fatalf("merged shards differ from unsharded stream:\n%s\n---\n%s", full, merged.Bytes())
	}
}

func TestShardsPartitionTheGrid(t *testing.T) {
	grid := smallGrid()
	seen := map[int]int{}
	for i := 0; i < 3; i++ {
		sh := sweep.Shard{Index: i, Count: 3}
		// Shards slice cost-aware (protection-weighted), so ownership is
		// defined by Slice, not the round-robin Owns rule.
		owned := map[int]bool{}
		for _, idx := range sh.Slice(len(grid), sweep.Weights(grid)) {
			owned[idx] = true
		}
		if err := sweep.Each(grid, sh, 2, func(r sweep.RunResult) error {
			seen[r.Index]++
			if !owned[r.Index] {
				t.Fatalf("shard %s emitted foreign index %d", sh, r.Index)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != len(grid) {
		t.Fatalf("shards covered %d of %d grid points", len(seen), len(grid))
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("grid point %d ran %d times", i, n)
		}
	}
}

// TestEmitErrorCancelsSweep: a failing sink must stop the sweep instead of
// simulating the rest of the grid into a dead writer.
func TestEmitErrorCancelsSweep(t *testing.T) {
	grid := smallGrid()
	sinkErr := errors.New("sink full")
	emitted := 0
	err := sweep.Each(grid, sweep.Shard{}, 2, func(r sweep.RunResult) error {
		emitted++
		if emitted == 2 {
			return sinkErr
		}
		return nil
	})
	if !errors.Is(err, sinkErr) {
		t.Fatalf("Each returned %v, want the emit error", err)
	}
	if emitted != 2 {
		t.Fatalf("emit called %d times after cancellation, want 2", emitted)
	}
}

func TestMergeRejectsDuplicateIndices(t *testing.T) {
	s0 := jsonl(t, sweep.Shard{Index: 0, Count: 2}, 1)
	var out bytes.Buffer
	if err := sweep.Merge(&out, bytes.NewReader(s0), bytes.NewReader(s0)); err == nil {
		t.Fatal("overlapping shards merged without error")
	}
}

// TestMergeRejectsMissingShard: forgetting a shard file must be an error,
// not a silently incomplete dataset.
func TestMergeRejectsMissingShard(t *testing.T) {
	s0 := jsonl(t, sweep.Shard{Index: 0, Count: 2}, 1)
	s2 := jsonl(t, sweep.Shard{Index: 1, Count: 3}, 1) // starts at index 1
	var out bytes.Buffer
	if err := sweep.Merge(&out, bytes.NewReader(s0)); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("half-merge accepted (err=%v)", err)
	}
	out.Reset()
	if err := sweep.Merge(&out, bytes.NewReader(s2)); err == nil {
		t.Fatal("merge not starting at grid index 0 accepted")
	}
	// A single complete stream round-trips.
	full := jsonl(t, sweep.Shard{}, 2)
	out.Reset()
	if err := sweep.Merge(&out, bytes.NewReader(full)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), full) {
		t.Fatal("identity merge altered the stream")
	}
}

func TestMergeRejectsForeignLines(t *testing.T) {
	var out bytes.Buffer
	if err := sweep.Merge(&out, strings.NewReader("{\"name\":\"no-index\"}\n")); err == nil {
		t.Fatal("line without grid index accepted")
	}
}

func TestParseShard(t *testing.T) {
	good := map[string]sweep.Shard{
		"":    {},
		"0/1": {Index: 0, Count: 1},
		"2/4": {Index: 2, Count: 4},
	}
	for in, want := range good {
		sh, err := sweep.ParseShard(in)
		if err != nil || sh != want {
			t.Fatalf("ParseShard(%q) = %+v, %v; want %+v", in, sh, err, want)
		}
	}
	for _, in := range []string{"x", "1", "2/2", "3/2", "-1/2", "0/0", "1/x", "1/2garbage", "0/2,1/2", "1/2/4"} {
		if _, err := sweep.ParseShard(in); err == nil {
			t.Fatalf("ParseShard(%q) accepted", in)
		}
	}
}

func TestCSVCoversCoresAndFirewalls(t *testing.T) {
	grid := smallGrid()
	var w countingWriter
	if err := sweep.WriteCSV(&w, grid, sweep.Shard{}, 4); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(bytes.NewReader(w.buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 || strings.Join(rows[0], ",") != strings.Join(sweep.CSVHeader, ",") {
		t.Fatalf("bad CSV header: %v", rows[0])
	}
	col := map[string]int{}
	for i, name := range rows[0] {
		col[name] = i
	}
	for _, want := range []string{"scope", "entity", "kind", "instructions", "checked", "blocked", "check_cycles", "local_ops"} {
		if _, ok := col[want]; !ok {
			t.Fatalf("CSV header missing %q", want)
		}
	}
	scopes := map[string]int{}
	for _, row := range rows[1:] {
		scopes[row[col["scope"]]]++
	}
	runs, cores, fws := scopes["run"], scopes["core"], scopes["firewall"]
	if runs != len(grid) {
		t.Fatalf("%d run rows for %d grid points", runs, len(grid))
	}
	if cores == 0 || fws == 0 {
		t.Fatalf("missing breakdown rows: %d core, %d firewall", cores, fws)
	}
	// CSV must be deterministic too.
	var again bytes.Buffer
	if err := sweep.WriteCSV(&again, grid, sweep.Shard{}, 1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w.buf.Bytes(), again.Bytes()) {
		t.Fatal("CSV differs across worker counts")
	}
}
