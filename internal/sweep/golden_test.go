package sweep_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/soc"
	"repro/internal/sweep"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// goldenGrid is a small fixed grid exercising all three protection
// architectures, so the goldens pin the exact serialized shape of per-core
// and per-firewall stats for each.
func goldenGrid() []sweep.Config {
	return sweep.Grid(
		[]soc.Protection{soc.Unprotected, soc.Distributed, soc.Centralized},
		[]string{"mix"},
		[]string{"internal"},
		[]int{1, 2},
		8, 2, 1_000_000,
	)
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/sweep -run TestGolden -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden output.\n--- got ---\n%s\n--- want ---\n%s\n"+
			"If the change is intentional, regenerate with -update.", name, got, want)
	}
}

// TestGoldenJSONL and TestGoldenCSV pin the sweep output formats: any
// change to the serialized schema or to simulation results shows up as a
// reviewable golden diff instead of silently altering downstream plots.
func TestGoldenJSONL(t *testing.T) {
	var buf bytes.Buffer
	if err := sweep.WriteJSONL(&buf, goldenGrid(), sweep.Shard{}, 4); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sweep.jsonl.golden", buf.Bytes())
}

func TestGoldenCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sweep.WriteCSV(&buf, goldenGrid(), sweep.Shard{}, 4); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sweep.csv.golden", buf.Bytes())
}
