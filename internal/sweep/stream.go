package sweep

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteJSONL runs this shard's portion of the grid and streams one compact
// JSON object per line to w, in global grid index order, as runs complete —
// the report is never buffered whole, and a failing writer cancels the
// remaining grid. The byte stream is identical across worker counts, and
// the concatenation of all shards' streams (via Merge) is identical to an
// unsharded run.
func WriteJSONL(w io.Writer, cfgs []Config, sh Shard, workers int) error {
	return Each(cfgs, sh, workers, EmitJSONL[RunResult](w))
}

// CSVHeader is the column set of the CSV export. The format is long/tidy:
// every run contributes one scope=run row (aggregates), one scope=core row
// per core and one scope=firewall row per enforcement point, so per-core
// and per-firewall series plot directly without un-nesting JSON.
var CSVHeader = []string{
	"index", "name", "protection", "workload", "target", "num_cores",
	"scope", "entity", "kind",
	"cycles", "all_halted",
	"instructions", "stall_cycles", "local_ops", "bus_ops", "bus_errors",
	"checked", "allowed", "blocked", "check_cycles",
	"protocol_txns", "sem_stall_cycles", "sem_max_queue",
	"crypto_cycles", "integrity_failures",
	"bus_transactions", "bus_wait_cycles", "bus_utilization", "bits_moved",
	"alerts", "error",
}

// WriteCSV runs this shard's portion of the grid and streams the long-form
// CSV to w (header first), in global grid index order. Like WriteJSONL it
// never buffers the whole report, cancels on a failing writer, and the
// bytes are identical across worker counts.
func WriteCSV(w io.Writer, cfgs []Config, sh Shard, workers int) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(CSVHeader); err != nil {
		return err
	}
	if err := Each(cfgs, sh, workers, func(r RunResult) error {
		if err := writeCSVRows(cw, r); err != nil {
			return err
		}
		// Flush per run so the stream is incremental, and surface sink
		// errors now — csv.Writer otherwise swallows them until the end.
		cw.Flush()
		return cw.Error()
	}); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// writeCSVRows emits one run's rows: run aggregate, then cores, then
// firewalls.
func writeCSVRows(cw *csv.Writer, r RunResult) error {
	u := strconv.FormatUint
	base := []string{
		strconv.Itoa(r.Index), r.Name, r.Protection, r.Workload, r.Target,
		strconv.Itoa(r.NumCores),
	}
	pad := func(cols ...string) []string {
		row := append(append([]string(nil), base...), cols...)
		for len(row) < len(CSVHeader)-1 {
			row = append(row, "")
		}
		return append(row, r.Err)
	}
	run := pad("run", "", "",
		u(r.Cycles, 10), strconv.FormatBool(r.AllHalted),
		u(r.Instructions, 10), u(r.StallCycles, 10), "", u(r.BusOps, 10), u(r.BusErrors, 10),
		"", "", "", "",
		"", "", "", "", "",
		u(r.Bus.Completed, 10), u(r.Bus.WaitCycles, 10),
		strconv.FormatFloat(r.BusUtilization, 'g', -1, 64), u(r.Bus.BitsMoved, 10),
		strconv.Itoa(r.Alerts))
	if err := cw.Write(run); err != nil {
		return err
	}
	for _, c := range r.Cores {
		row := pad("core", c.Name, "",
			u(c.Cycles, 10), "",
			u(c.Instructions, 10), u(c.StallCycles, 10), u(c.LocalOps, 10),
			u(c.BusOps, 10), u(c.BusErrors, 10))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	for _, f := range r.Firewalls {
		row := pad("firewall", f.ID, f.Kind,
			"", "",
			"", "", "", "", "",
			u(f.Checked, 10), u(f.Allowed, 10), u(f.Blocked, 10), u(f.CheckCycles, 10),
			u(f.ProtocolTxns, 10), u(f.SEMStallCycles, 10), strconv.Itoa(f.SEMMaxQueue),
			u(f.CryptoCycles, 10), u(f.IntegrityFailures, 10))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	return nil
}

// shardStream is one shard's JSONL stream during a merge: a scanner plus
// the current (not yet written) line and its parsed grid index.
type shardStream struct {
	id   int
	sc   *bufio.Scanner
	idx  int
	line []byte
	done bool
}

// advance loads the stream's next non-empty line, parsing its index.
func (s *shardStream) advance() error {
	for s.sc.Scan() {
		raw := bytes.TrimSpace(s.sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var hdr struct {
			Index *int `json:"index"`
		}
		if err := json.Unmarshal(raw, &hdr); err != nil || hdr.Index == nil {
			return fmt.Errorf("sweep: shard %d: line without a grid index: %.80s", s.id, raw)
		}
		if !s.done && s.line != nil && *hdr.Index <= s.idx {
			return fmt.Errorf("sweep: shard %d: indices not strictly ascending (%d after %d)",
				s.id, *hdr.Index, s.idx)
		}
		s.idx = *hdr.Index
		s.line = append(s.line[:0], raw...)
		return nil
	}
	if err := s.sc.Err(); err != nil {
		return fmt.Errorf("sweep: shard %d: %w", s.id, err)
	}
	s.done = true
	return nil
}

// Merge recombines shard JSONL streams into the exact stream an unsharded
// single-process sweep would have written: lines pass through byte-for-byte,
// k-way merged on their global grid index. Each input must be ascending in
// index (every stream WriteJSONL produces is), so only one buffered line
// per shard is held — merging stays streaming no matter how large the
// grid. Duplicate indices across shards are an error (overlapping shards),
// and so is any gap in the merged sequence: the shards of a full partition
// cover indices 0..N-1 contiguously, so a hole means a shard is missing
// and the output would be a silently incomplete dataset.
func Merge(w io.Writer, shards ...io.Reader) error {
	streams := make([]*shardStream, 0, len(shards))
	for i, r := range shards {
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
		s := &shardStream{id: i, sc: sc}
		if err := s.advance(); err != nil {
			return err
		}
		if !s.done {
			streams = append(streams, s)
		}
	}
	next := 0
	for len(streams) > 0 {
		min := 0
		for i, s := range streams[1:] {
			if s.idx < streams[min].idx {
				min = i + 1
			}
		}
		s := streams[min]
		if s.idx < next {
			return fmt.Errorf("sweep: duplicate grid index %d across shards", s.idx)
		}
		if s.idx > next {
			return fmt.Errorf("sweep: grid index %d missing from merge inputs (is a shard file absent?)", next)
		}
		next++
		if _, err := w.Write(append(s.line, '\n')); err != nil {
			return err
		}
		if err := s.advance(); err != nil {
			return err
		}
		if s.done {
			streams = append(streams[:min], streams[min+1:]...)
		}
	}
	return nil
}
