// Package modelcheck proves the paper's §III security argument over a
// bounded model, instead of only testing it.
//
// The campaign goldens and the determinism gate show that the distributed
// firewalls detect and contain the attacks we thought to write. This
// package asks the stronger question: over *every* interleaving of access
// attempts, alerts, quarantines and (staged) releases that a small
// platform can exhibit, do the quarantine semantics ever admit an
// unauthorized transfer? It is the native moral equivalent of the UCLID5
// isolated-mode induction proof (SNIPPETS.md Snippet 1): no SMT solver,
// no external dependencies — just an exhaustive breadth-first search over
// a canonicalized state graph, small enough to enumerate completely and
// deterministic enough to gate in CI.
//
// The system under test is the real production code: per-master
// core.ConfigMemory policy tables and one core.Reactor subscribed to a
// shared core.AlertLog, exactly as soc.New wires them. The checker walks
// all interleavings of the model's actions (an access attempt per
// master × zone × direction × width, a remote alert from a slave-side
// firewall, Release, and ReleaseStaged under each allow-filter) and
// verifies, in every reachable state and across every transition, the
// safety properties documented on Check:
//
//	(a) no unauthorized transfer is ever granted while quarantine
//	    semantics hold,
//	(b) a quarantined or probationed master never regains full access
//	    without an explicit Release,
//	(c) a staged master that violates is re-quarantined within the same
//	    incident, and
//	(d) the reactor's violation history never exceeds Threshold.
//
// Because the search is breadth-first, the first violation found is a
// minimal counterexample: the shortest action trace from the initial
// state, replayable as a Go test via Replay (Counterexample.GoTest
// renders a ready-to-paste test body).
//
// # Soundness boundary
//
// The model checks the policy+reactor automaton, not the full timed
// simulation: bus arbitration, crypto latency and the engine's event
// ordering are out of scope (they are covered by the determinism gate and
// the campaign goldens). Cycle numbers are abstracted — the reactor runs
// with Window=0 ("ever"), so only the *count* of violations matters and
// the reachable state space is finite. Known gaps that the model does not
// close are listed in the package's "Known gaps" section in README.md;
// the first is the hashtree.UpdateLeaf uncached-sibling fold (see the
// skipped regression test in internal/hashtree).
package modelcheck

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// Master is one bus master in the model: a name plus the baseline security
// policy its Local Firewall's Configuration Memory starts with.
type Master struct {
	Name string
	// Rules is the pre-incident policy. SPIs must be unique within the
	// master (the canonical state key identifies rules by SPI).
	Rules []core.Policy
}

// Filter is one staged-release allow-filter the supervisor may choose.
type Filter struct {
	Name string
	// Allow selects which saved rules a staged release restores. A nil
	// Allow admits nothing (pure probation), mirroring
	// core.Reactor.ReleaseStaged.
	Allow func(core.Policy) bool
}

// Model bounds the universe the checker enumerates exhaustively.
type Model struct {
	Masters []Master
	// Zones are the address ranges access attempts probe (one probe per
	// zone base, per direction, per width).
	Zones []core.Zone
	// Sizes are the access widths in bytes (1, 2, 4) attempts use.
	Sizes []int
	// Threshold is the reactor's quarantine trigger budget.
	Threshold int
	// Filters are the staged-release allow-filters explored.
	Filters []Filter
}

// Validate reports whether the model is well-formed: at least one master,
// zone and size, a positive threshold, and unique SPIs per master.
func (m *Model) Validate() error {
	if len(m.Masters) == 0 || len(m.Zones) == 0 || len(m.Sizes) == 0 {
		return fmt.Errorf("modelcheck: model needs masters, zones and sizes")
	}
	if m.Threshold < 1 {
		return fmt.Errorf("modelcheck: threshold must be >= 1")
	}
	for _, ms := range m.Masters {
		seen := make(map[uint32]bool, len(ms.Rules))
		for _, r := range ms.Rules {
			if seen[r.SPI] {
				return fmt.Errorf("modelcheck: master %s has duplicate SPI %d", ms.Name, r.SPI)
			}
			seen[r.SPI] = true
		}
	}
	return nil
}

// Kind discriminates Action.
type Kind uint8

// Action kinds.
const (
	// Access is an attempted transfer: the master's firewall evaluates it
	// and raises an alert if any check fails.
	Access Kind = iota
	// RemoteAlert is a violation reported *about* the master by some other
	// interface (a slave-side firewall); the reactor counts it the same.
	RemoteAlert
	// Release restores the master's full pre-quarantine policy.
	Release
	// ReleaseStaged restores the filter-admitted subset and starts
	// probation.
	ReleaseStaged
)

// Action is one transition label of the model: something the environment
// (software, an attacker, the supervisor) can do next.
type Action struct {
	Kind   Kind
	Master int // index into Model.Masters
	Zone   int // Access: index into Model.Zones
	Write  bool
	Size   int // Access: width in bytes
	Filter int // ReleaseStaged: index into Model.Filters
}

// Describe renders the action against its model.
func (a Action) Describe(m *Model) string {
	name := m.Masters[a.Master].Name
	switch a.Kind {
	case Access:
		dir := "reads"
		if a.Write {
			dir = "writes"
		}
		return fmt.Sprintf("%s %s %v /%dB", name, dir, m.Zones[a.Zone], a.Size)
	case RemoteAlert:
		return fmt.Sprintf("remote alert about %s", name)
	case Release:
		return fmt.Sprintf("release %s", name)
	case ReleaseStaged:
		return fmt.Sprintf("release-staged %s filter=%s", name, m.Filters[a.Filter].Name)
	default:
		return fmt.Sprintf("action(%d)", a.Kind)
	}
}

// GoLiteral renders the action as a Go composite literal (for
// Counterexample.GoTest).
func (a Action) GoLiteral() string {
	switch a.Kind {
	case Access:
		return fmt.Sprintf("{Kind: modelcheck.Access, Master: %d, Zone: %d, Write: %v, Size: %d}",
			a.Master, a.Zone, a.Write, a.Size)
	case RemoteAlert:
		return fmt.Sprintf("{Kind: modelcheck.RemoteAlert, Master: %d}", a.Master)
	case Release:
		return fmt.Sprintf("{Kind: modelcheck.Release, Master: %d}", a.Master)
	default:
		return fmt.Sprintf("{Kind: modelcheck.ReleaseStaged, Master: %d, Filter: %d}", a.Master, a.Filter)
	}
}

// DefaultModel is the bounded universe `make modelcheck` proves: two
// masters with asymmetric policies over three zones (a private zone, a
// shared zone, an integrity-monitored secure zone), two access widths,
// threshold 3, and the three canonical staged-release filters (admit
// nothing, integrity-monitored zones only, everything). The shapes mirror
// the platform soc.New builds: width-restricted read-only windows, a
// write-only mailbox, IM-flagged external zones — so every violation
// class the firewalls can raise (zone, access, format) appears as an
// alert source.
func DefaultModel() *Model {
	zones := []core.Zone{
		{Base: 0x1000, Size: 0x100}, // private scratch
		{Base: 0x2000, Size: 0x100}, // shared window
		{Base: 0x3000, Size: 0x100}, // secure external zone (IM)
	}
	return &Model{
		Masters: []Master{
			{Name: "cpu0", Rules: []core.Policy{
				{SPI: 1, Zone: zones[0], RWA: core.ReadWrite, ADF: core.AnyWidth},
				{SPI: 2, Zone: zones[1], RWA: core.ReadOnly, ADF: core.W32},
				{SPI: 3, Zone: zones[2], RWA: core.ReadWrite, ADF: core.W32, IM: true},
			}},
			{Name: "dma", Rules: []core.Policy{
				{SPI: 11, Zone: zones[1], RWA: core.WriteOnly, ADF: core.AnyWidth},
				{SPI: 12, Zone: zones[2], RWA: core.ReadWrite, ADF: core.AnyWidth, IM: true},
			}},
		},
		Zones:     zones,
		Sizes:     []int{1, 4},
		Threshold: 3,
		Filters: []Filter{
			{Name: "none", Allow: nil},
			{Name: "im-only", Allow: func(p core.Policy) bool { return p.IM }},
			{Name: "all", Allow: func(core.Policy) bool { return true }},
		},
	}
}

// spiSet returns the sorted SPI set of a configuration memory.
func spiSet(cm *core.ConfigMemory) []uint32 {
	ps := cm.Policies()
	out := make([]uint32, len(ps))
	for i, p := range ps {
		out[i] = p.SPI
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
