package modelcheck

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// mode is the spec automaton's view of one master.
type mode uint8

const (
	// free: pre-incident, full baseline policy, accumulating history.
	free mode = iota
	// locked: quarantined with no rules restored (deny-all).
	locked
	// staged: quarantined but partially re-admitted under a filter
	// (probation — zero tolerance).
	staged
)

func (m mode) String() string {
	switch m {
	case free:
		return "free"
	case locked:
		return "locked"
	default:
		return "staged"
	}
}

// specState is the independent specification automaton for one master. It
// is updated from the *defined* quarantine semantics alone, never from the
// system under test, so any divergence between the two is a real bug in
// one of them.
type specState struct {
	mode    mode
	filter  int // staged: index into Model.Filters
	history int // free: violations accumulated toward Threshold
}

// Sys is one instance of the system under test: the real ConfigMemory and
// Reactor production types wired exactly as soc.New wires them, plus the
// shadow spec automaton the checker compares them against.
type Sys struct {
	Model *Model
	// Log and Reactor are the production reaction pipeline under test.
	Log     *core.AlertLog
	Reactor *core.Reactor
	// CMs holds the per-master Configuration Memories (index-aligned with
	// Model.Masters).
	CMs []*core.ConfigMemory
	// Cycle is the abstract clock: one tick per applied action.
	Cycle uint64

	spec []specState
}

// NewSys builds a fresh system in its initial state.
func NewSys(m *Model) *Sys {
	s := &Sys{
		Model: m,
		Log:   core.NewAlertLog(),
		CMs:   make([]*core.ConfigMemory, len(m.Masters)),
		spec:  make([]specState, len(m.Masters)),
	}
	// Window=0 ("ever"): violation counts matter, absolute cycles do not,
	// which is what keeps the reachable state space finite.
	s.Reactor = core.NewReactor(s.Log, m.Threshold, 0)
	s.Reactor.Clock = func() uint64 { return s.Cycle }
	for i, ms := range m.Masters {
		s.CMs[i] = core.MustConfig(ms.Rules...)
		s.Reactor.Guard(ms.Name, s.CMs[i])
	}
	return s
}

// specViolation advances the spec automaton for one counted violation
// about master i — the defined semantics of the reactor, restated
// independently of its implementation.
func (s *Sys) specViolation(i int) {
	sp := &s.spec[i]
	switch sp.mode {
	case staged:
		// Zero tolerance on probation: re-quarantine, same incident.
		sp.mode = locked
	case free:
		sp.history++
		if sp.history >= s.Model.Threshold {
			sp.mode = locked
			sp.history = 0
		}
	case locked:
		// Already denied everything; nothing to escalate.
	}
}

// Apply executes one action against the system under test and advances the
// spec automaton. It reports whether the action raised an alert, and the
// error for a rejected release (which must leave the state untouched).
func (s *Sys) Apply(a Action) (alerted bool, err error) {
	s.Cycle++
	name := s.Model.Masters[a.Master].Name
	switch a.Kind {
	case Access:
		z := s.Model.Zones[a.Zone]
		p, v := s.CMs[a.Master].CheckAccess(core.Access{
			Master: name, Write: a.Write, Addr: z.Base, Size: a.Size, Burst: 1,
		})
		if v == core.VNone {
			return false, nil
		}
		op := "read"
		if a.Write {
			op = "write"
		}
		s.Log.Record(core.Alert{
			Cycle: s.Cycle, FirewallID: "lf-" + name, Master: name,
			SPI: p.SPI, Violation: v, Addr: z.Base, Size: a.Size, Detail: op,
		})
		s.specViolation(a.Master)
		return true, nil
	case RemoteAlert:
		s.Log.Record(core.Alert{
			Cycle: s.Cycle, FirewallID: "sfw-shared", Master: name,
			Violation: core.VZone,
		})
		s.specViolation(a.Master)
		return true, nil
	case Release:
		if err := s.Reactor.Release(name); err != nil {
			return false, err
		}
		s.spec[a.Master] = specState{mode: free}
		return false, nil
	case ReleaseStaged:
		if err := s.Reactor.ReleaseStaged(name, s.Model.Filters[a.Filter].Allow); err != nil {
			return false, err
		}
		s.spec[a.Master] = specState{mode: staged, filter: a.Filter}
		return false, nil
	default:
		panic(fmt.Sprintf("modelcheck: unknown action kind %d", a.Kind))
	}
}

// Enabled returns every action the environment may attempt next, in a
// fixed deterministic order. Release/ReleaseStaged are included even for
// masters that are not quarantined: the checker asserts those are rejected
// as errors without touching state.
func (s *Sys) Enabled() []Action {
	var out []Action
	for mi := range s.Model.Masters {
		for zi := range s.Model.Zones {
			for _, w := range []bool{false, true} {
				for _, sz := range s.Model.Sizes {
					out = append(out, Action{Kind: Access, Master: mi, Zone: zi, Write: w, Size: sz})
				}
			}
		}
		out = append(out, Action{Kind: RemoteAlert, Master: mi})
		out = append(out, Action{Kind: Release, Master: mi})
		for fi := range s.Model.Filters {
			out = append(out, Action{Kind: ReleaseStaged, Master: mi, Filter: fi})
		}
	}
	return out
}

// Key canonicalizes the observable state of the system under test. Two
// states with equal keys behave identically under every future action
// sequence: policy decisions depend only on the rule set (identified by
// SPI), and with Window=0 the reactor's trigger decision depends only on
// the retained violation count, quarantine/probation flags and the open
// incident's staged marker. Absolute cycle numbers, closed-incident stamps
// and monotone counters are deliberately excluded — they grow without
// bound and never feed back into behavior.
func (s *Sys) Key() string {
	var b strings.Builder
	for i, ms := range s.Model.Masters {
		if i > 0 {
			b.WriteByte(';')
		}
		for _, spi := range spiSet(s.CMs[i]) {
			fmt.Fprintf(&b, "r%d,", spi)
		}
		fmt.Fprintf(&b, "h%d", s.Reactor.HistoryLen(ms.Name))
		if s.Reactor.Quarantined(ms.Name) {
			b.WriteString("Q")
		}
		if s.Reactor.Probation(ms.Name) {
			b.WriteString("P")
		}
		if st, _, ok := s.Reactor.OpenIncident(ms.Name); ok {
			b.WriteString("O")
			if st.StagedAt != 0 {
				b.WriteString("S")
			}
		}
	}
	return b.String()
}

// Replay rebuilds a system by applying trace from the initial state,
// invoking tamper (which may be nil) after each action exactly as Check
// does. It is how a counterexample trace becomes a unit test.
func Replay(m *Model, tamper func(*Sys, Action), trace []Action) *Sys {
	s := NewSys(m)
	for _, a := range trace {
		s.Apply(a)
		if tamper != nil {
			tamper(s, a)
		}
	}
	return s
}
