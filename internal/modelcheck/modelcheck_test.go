package modelcheck_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/modelcheck"
)

// TestDefaultModelProves is the theorem: over the entire reachable state
// space of the default model, invariants (a)-(d) hold — no counterexample
// exists. It also sanity-checks that the search actually covered a
// non-trivial space with both grants and alerts.
func TestDefaultModelProves(t *testing.T) {
	res, err := modelcheck.Check(modelcheck.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample != nil {
		t.Fatalf("invariant violated:\n%s", res.Counterexample)
	}
	if res.States < 20 {
		t.Fatalf("suspiciously small state space: %d states", res.States)
	}
	if res.Grants == 0 || res.Alerts == 0 {
		t.Fatalf("search did not exercise both grants (%d) and alerts (%d)", res.Grants, res.Alerts)
	}
	if res.Depth < modelcheck.DefaultModel().Threshold {
		t.Fatalf("depth %d cannot even contain a threshold trip", res.Depth)
	}
	t.Log(res.Summary())
}

// TestCheckDeterministic pins the acceptance criterion that reported
// state/transition counts are identical across runs: the exhaustive
// enumeration is a fixed function of the model, not of scheduling or map
// order.
func TestCheckDeterministic(t *testing.T) {
	a, err := modelcheck.Check(modelcheck.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := modelcheck.Check(modelcheck.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two runs disagree:\n%+v\n%+v", a, b)
	}
}

// weakenLeakRule models a buggy reactor that fails to keep the deny-all
// policy in force: whenever cpu0 sits fully quarantined, its first
// baseline rule "leaks" back into the Configuration Memory. Invariant (a)
// must catch the unauthorized grant this opens.
func weakenLeakRule(s *modelcheck.Sys, _ modelcheck.Action) {
	if s.Reactor.Quarantined("cpu0") && !s.Reactor.Probation("cpu0") && s.CMs[0].RuleCount() == 0 {
		if err := s.CMs[0].Add(s.Model.Masters[0].Rules[0]); err != nil {
			panic(err)
		}
	}
}

// TestWeakenedReactorCounterexample demonstrates the negative direction:
// a deliberately weakened reactor produces a minimal counterexample
// trace. The shortest way to quarantine cpu0 is Threshold counted
// violations, so the trace must have exactly that length.
func TestWeakenedReactorCounterexample(t *testing.T) {
	m := modelcheck.DefaultModel()
	res, err := modelcheck.Check(modelcheck.Config{Model: m, Tamper: weakenLeakRule})
	if err != nil {
		t.Fatal(err)
	}
	ce := res.Counterexample
	if ce == nil {
		t.Fatal("weakened reactor passed the checker")
	}
	if ce.Invariant != "a" {
		t.Fatalf("expected invariant (a) violation, got (%s): %s", ce.Invariant, ce.Detail)
	}
	if len(ce.Trace) != m.Threshold {
		t.Fatalf("counterexample is not minimal: %d steps, want %d\n%s", len(ce.Trace), m.Threshold, ce)
	}
	for i, a := range ce.Trace {
		if a.Master != 0 {
			t.Fatalf("step %d of the minimal trace is about master %d, want cpu0:\n%s", i+1, a.Master, ce)
		}
	}
}

// TestCounterexampleReplay closes the loop: the trace the checker emits,
// replayed through the exported Replay helper with the same tamper hook,
// reproduces the violating state — which is exactly what pasting
// Counterexample.GoTest into a test file does.
func TestCounterexampleReplay(t *testing.T) {
	m := modelcheck.DefaultModel()
	res, err := modelcheck.Check(modelcheck.Config{Model: m, Tamper: weakenLeakRule})
	if err != nil {
		t.Fatal(err)
	}
	ce := res.Counterexample
	if ce == nil {
		t.Fatal("weakened reactor passed the checker")
	}
	sys := modelcheck.Replay(m, weakenLeakRule, ce.Trace)
	if !sys.Reactor.Quarantined("cpu0") {
		t.Fatal("replayed trace does not quarantine cpu0")
	}
	// The violation: a rule is enforced (and grants transfers) while the
	// master is supposed to be fully locked out.
	if sys.CMs[0].RuleCount() == 0 {
		t.Fatal("replayed trace does not reproduce the leaked rule")
	}
	z := m.Masters[0].Rules[0].Zone
	if _, v := sys.CMs[0].CheckAccess(core.Access{Master: "cpu0", Addr: z.Base, Size: 4, Burst: 1}); v != core.VNone {
		t.Fatalf("replayed leak does not grant the unauthorized read (violation %v)", v)
	}

	if got := ce.String(); !strings.Contains(got, "invariant (a)") {
		t.Fatalf("trace rendering missing invariant label:\n%s", got)
	}
	gotest := ce.GoTest()
	for _, want := range []string{"modelcheck.Replay", "modelcheck.Action{", "func TestCounterexampleReplay"} {
		if !strings.Contains(gotest, want) {
			t.Fatalf("GoTest rendering missing %q:\n%s", want, gotest)
		}
	}
}

// TestValidate rejects malformed models.
func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*modelcheck.Model)
	}{
		{"no masters", func(m *modelcheck.Model) { m.Masters = nil }},
		{"no zones", func(m *modelcheck.Model) { m.Zones = nil }},
		{"no sizes", func(m *modelcheck.Model) { m.Sizes = nil }},
		{"zero threshold", func(m *modelcheck.Model) { m.Threshold = 0 }},
		{"duplicate SPI", func(m *modelcheck.Model) {
			m.Masters[0].Rules = append(m.Masters[0].Rules, m.Masters[0].Rules[0])
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := modelcheck.DefaultModel()
			tc.mut(m)
			if _, err := modelcheck.Check(modelcheck.Config{Model: m}); err == nil {
				t.Fatal("invalid model accepted")
			}
		})
	}
}

// TestMaxStatesBound exercises the unbounded-model safety valve.
func TestMaxStatesBound(t *testing.T) {
	if _, err := modelcheck.Check(modelcheck.Config{MaxStates: 3}); err == nil {
		t.Fatal("expected state-space bound error")
	}
}
