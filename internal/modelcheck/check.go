package modelcheck

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Config parameterizes a Check run.
type Config struct {
	// Model is the bounded universe; nil selects DefaultModel.
	Model *Model
	// Tamper, when set, runs after every applied action with full access
	// to the system under test. It exists so tests can inject a
	// deliberately weakened reactor (e.g. "forget to revoke a rule") and
	// confirm the checker produces a minimal counterexample. Production
	// gates leave it nil.
	Tamper func(*Sys, Action)
	// MaxStates aborts the search if the canonicalized state space grows
	// past this bound (a misconfigured model, not a property violation).
	// Zero selects 1<<20.
	MaxStates int
}

// Result is the outcome of one exhaustive search.
type Result struct {
	// States is the number of distinct canonicalized states reached;
	// Transitions the number of (state, action) edges explored; Depth the
	// longest shortest-path distance from the initial state. All three are
	// deterministic across runs for a fixed model.
	States      int
	Transitions int
	Depth       int
	// Grants / Alerts count explored access edges that were granted /
	// raised an alert (informational; deterministic).
	Grants int
	Alerts int
	// Counterexample is nil when every invariant holds over the entire
	// reachable space.
	Counterexample *Counterexample
}

// Summary renders the one-line CI report.
func (r *Result) Summary() string {
	verdict := "invariants (a)-(d): PASS"
	if r.Counterexample != nil {
		verdict = fmt.Sprintf("invariant (%s) VIOLATED", r.Counterexample.Invariant)
	}
	return fmt.Sprintf("modelcheck: %d states, %d transitions, depth %d, %d grants / %d alerts explored; %s",
		r.States, r.Transitions, r.Depth, r.Grants, r.Alerts, verdict)
}

// Counterexample is a minimal violating trace: because the search is
// breadth-first over canonical states, Trace is a shortest action sequence
// from the initial state to the violation.
type Counterexample struct {
	// Invariant names the violated property: "a", "b", "c", "d", or one of
	// the internal-consistency checks ("spec-bisim", "frame",
	// "noop-release").
	Invariant string
	Detail    string
	Trace     []Action

	model *Model
}

// String renders the trace step by step.
func (ce *Counterexample) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "invariant (%s) violated after %d step(s): %s\n", ce.Invariant, len(ce.Trace), ce.Detail)
	for i, a := range ce.Trace {
		fmt.Fprintf(&b, "  %2d. %s\n", i+1, a.Describe(ce.model))
	}
	return b.String()
}

// GoTest renders a ready-to-paste Go test body that replays the trace via
// Replay, so a violation found in CI becomes a pinned regression test.
func (ce *Counterexample) GoTest() string {
	var b strings.Builder
	b.WriteString("// Auto-generated replay of a modelcheck counterexample.\n")
	fmt.Fprintf(&b, "// Invariant (%s): %s\n", ce.Invariant, ce.Detail)
	b.WriteString("func TestCounterexampleReplay(t *testing.T) {\n")
	b.WriteString("\tm := modelcheck.DefaultModel() // adjust if the checked model differs\n")
	b.WriteString("\ttrace := []modelcheck.Action{\n")
	for _, a := range ce.Trace {
		fmt.Fprintf(&b, "\t\t%s,\n", a.GoLiteral())
	}
	b.WriteString("\t}\n")
	b.WriteString("\tsys := modelcheck.Replay(m, nil /* tamper */, trace)\n")
	b.WriteString("\t_ = sys // assert the violated property on sys here\n")
	b.WriteString("}\n")
	return b.String()
}

// masterSnap is the per-master part of a pre-transition snapshot.
type masterSnap struct {
	key         string // canonical per-master key (frame condition)
	quarantined bool
	probation   bool
	open        bool
	openIdx     int
	specMode    mode
}

// snap freezes what transition invariants compare against.
type snap struct {
	key         string
	masters     []masterSnap
	quarantines uint64
}

// checker carries the per-run memoization.
type checker struct {
	m      *Model
	tamper func(*Sys, Action)
	// expect memoizes the specification Configuration Memory per
	// (master, mode, filter) — the rule set the spec automaton says must
	// be in force.
	expect map[[3]int]*core.ConfigMemory
}

// Check exhaustively enumerates the model's reachable state space and
// verifies, in every state and across every transition:
//
//	(a) grant decisions exactly match the specification automaton — in
//	    particular, a fully quarantined master is granted nothing, and a
//	    staged master is granted only what its allow-filter restored;
//	(b) a master under an open incident always has Quarantined()==true,
//	    only an explicit Release closes the incident, and the release
//	    restores exactly the pre-incident rule set;
//	(c) a probation violation re-quarantines within the same incident
//	    (same open stamp, staged mark reset, deny-all reinstated,
//	    trigger counted);
//	(d) retained violation history never exceeds Threshold.
//
// Three internal-consistency checks ride along: full bisimulation between
// the production reactor and the spec automaton, a frame condition (an
// action about one master never perturbs another), and rejected releases
// being perfect no-ops.
func Check(cfg Config) (*Result, error) {
	m := cfg.Model
	if m == nil {
		m = DefaultModel()
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	maxStates := cfg.MaxStates
	if maxStates == 0 {
		maxStates = 1 << 20
	}
	c := &checker{m: m, tamper: cfg.Tamper, expect: make(map[[3]int]*core.ConfigMemory)}

	res := &Result{States: 1}
	init := c.build(nil)
	if ce := c.checkState(init); ce != nil {
		ce.Trace = nil
		res.Counterexample = ce
		return res, nil
	}
	actions := init.Enabled() // static for a fixed model

	type node struct {
		path  []Action
		depth int
	}
	visited := map[string]bool{init.Key(): true}
	queue := []node{{nil, 0}}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, a := range actions {
			sys := c.build(n.path)
			pre := c.snapshot(sys)
			alerted, err := sys.Apply(a)
			if c.tamper != nil {
				c.tamper(sys, a)
			}
			res.Transitions++
			if a.Kind == Access {
				if alerted {
					res.Alerts++
				} else {
					res.Grants++
				}
			} else if alerted {
				res.Alerts++
			}
			ce := c.checkTransition(pre, a, alerted, err, sys)
			if ce == nil {
				ce = c.checkState(sys)
			}
			if ce != nil {
				ce.Trace = append(append([]Action{}, n.path...), a)
				res.Counterexample = ce
				return res, nil
			}
			k := sys.Key()
			if !visited[k] {
				visited[k] = true
				res.States++
				if res.States > maxStates {
					return nil, fmt.Errorf("modelcheck: state space exceeds %d states — unbounded model?", maxStates)
				}
				if n.depth+1 > res.Depth {
					res.Depth = n.depth + 1
				}
				queue = append(queue, node{append(append([]Action{}, n.path...), a), n.depth + 1})
			}
		}
	}
	return res, nil
}

// build replays a path from the initial state (with tampering, so the
// search and the counterexample replay see the same system).
func (c *checker) build(path []Action) *Sys {
	return Replay(c.m, c.tamper, path)
}

// masterKey is the per-master slice of Sys.Key, used for the frame
// condition.
func masterKey(s *Sys, i int) string {
	var b strings.Builder
	name := s.Model.Masters[i].Name
	for _, spi := range spiSet(s.CMs[i]) {
		fmt.Fprintf(&b, "r%d,", spi)
	}
	fmt.Fprintf(&b, "h%d", s.Reactor.HistoryLen(name))
	if s.Reactor.Quarantined(name) {
		b.WriteString("Q")
	}
	if s.Reactor.Probation(name) {
		b.WriteString("P")
	}
	if st, _, ok := s.Reactor.OpenIncident(name); ok {
		b.WriteString("O")
		if st.StagedAt != 0 {
			b.WriteString("S")
		}
	}
	return b.String()
}

func (c *checker) snapshot(s *Sys) snap {
	sn := snap{key: s.Key(), quarantines: s.Reactor.Quarantines}
	for i, ms := range s.Model.Masters {
		m := masterSnap{
			key:         masterKey(s, i),
			quarantined: s.Reactor.Quarantined(ms.Name),
			probation:   s.Reactor.Probation(ms.Name),
			specMode:    s.spec[i].mode,
			openIdx:     -1,
		}
		if _, idx, ok := s.Reactor.OpenIncident(ms.Name); ok {
			m.open, m.openIdx = true, idx
		}
		sn.masters = append(sn.masters, m)
	}
	return sn
}

// expectCM returns the rule set the spec says master mi must be enforcing.
func (c *checker) expectCM(mi int, sp specState) *core.ConfigMemory {
	k := [3]int{mi, int(sp.mode), 0}
	if sp.mode == staged {
		k[2] = sp.filter
	}
	if cm, ok := c.expect[k]; ok {
		return cm
	}
	var rules []core.Policy
	switch sp.mode {
	case free:
		rules = c.m.Masters[mi].Rules
	case locked:
		// deny-all: empty configuration memory.
	case staged:
		allow := c.m.Filters[sp.filter].Allow
		for _, r := range c.m.Masters[mi].Rules {
			if allow != nil && allow(r) {
				rules = append(rules, r)
			}
		}
	}
	cm := core.MustConfig(rules...)
	c.expect[k] = cm
	return cm
}

func (c *checker) fail(inv, format string, args ...any) *Counterexample {
	return &Counterexample{Invariant: inv, Detail: fmt.Sprintf(format, args...), model: c.m}
}

// checkState verifies every state invariant on a reached state.
func (c *checker) checkState(s *Sys) *Counterexample {
	for i, ms := range c.m.Masters {
		sp := s.spec[i]
		name := ms.Name

		// Bisimulation of the mode flags.
		if got, want := s.Reactor.Quarantined(name), sp.mode != free; got != want {
			return c.fail("b", "%s: Quarantined()=%v but spec mode is %s", name, got, sp.mode)
		}
		if got, want := s.Reactor.Probation(name), sp.mode == staged; got != want {
			return c.fail("spec-bisim", "%s: Probation()=%v but spec mode is %s", name, got, sp.mode)
		}

		// (d) history bound, and exact agreement with the spec counter.
		h := s.Reactor.HistoryLen(name)
		if h > c.m.Threshold {
			return c.fail("d", "%s: history %d exceeds threshold %d", name, h, c.m.Threshold)
		}
		wantH := 0
		if sp.mode == free {
			wantH = sp.history
		}
		if h != wantH {
			return c.fail("spec-bisim", "%s: history %d, spec says %d", name, h, wantH)
		}

		// (a) grant decisions match the spec for every probe the model can
		// issue — and a locked master is granted nothing at all.
		want := c.expectCM(i, sp)
		for zi, z := range c.m.Zones {
			for _, w := range []bool{false, true} {
				for _, sz := range c.m.Sizes {
					acc := core.Access{Master: name, Write: w, Addr: z.Base, Size: sz, Burst: 1}
					_, gotV := s.CMs[i].CheckAccess(acc)
					_, wantV := want.CheckAccess(acc)
					if sp.mode == locked && gotV == core.VNone {
						return c.fail("a", "%s zone[%d] write=%v size=%d granted while fully quarantined",
							name, zi, w, sz)
					}
					if gotV != wantV {
						return c.fail("a", "%s zone[%d] write=%v size=%d: violation %v, spec (%s) says %v",
							name, zi, w, sz, gotV, sp.mode, wantV)
					}
				}
			}
		}

		// (b) the enforced rule set is exactly what the spec admits; in
		// particular a quarantined master without a staged release holds no
		// rules, and nothing beyond the filter subset ever reappears
		// without a full Release.
		if got, wantS := fmt.Sprint(spiSet(s.CMs[i])), fmt.Sprint(spiSet(want)); got != wantS {
			return c.fail("b", "%s: enforced rule set %v, spec (%s) admits %v", name, got, sp.mode, wantS)
		}

		// While an incident is open, the stashed pre-incident policy must
		// stay intact — it is what Release restores.
		if sp.mode != free {
			saved := core.MustConfig(s.Reactor.SavedPolicies(name)...)
			if got, wantS := fmt.Sprint(spiSet(saved)), fmt.Sprint(spiSet(core.MustConfig(ms.Rules...))); got != wantS {
				return c.fail("b", "%s: saved policy set %v drifted from baseline %v", name, got, wantS)
			}
			if _, _, ok := s.Reactor.OpenIncident(name); !ok {
				return c.fail("b", "%s: quarantined without an open incident stamp", name)
			}
		}
	}
	return nil
}

// checkTransition verifies the edge invariants between a snapshot and the
// post-action system.
func (c *checker) checkTransition(pre snap, a Action, alerted bool, err error, post *Sys) *Counterexample {
	mi := a.Master
	name := c.m.Masters[mi].Name

	// Rejected releases must be perfect no-ops.
	if err != nil {
		if a.Kind != Release && a.Kind != ReleaseStaged {
			return c.fail("noop-release", "%s: action %s errored: %v", name, a.Describe(c.m), err)
		}
		if post.Key() != pre.key {
			return c.fail("noop-release", "%s: rejected %s changed state", name, a.Describe(c.m))
		}
		return nil
	}

	// Frame condition: an action about one master never perturbs another.
	for j := range c.m.Masters {
		if j == mi {
			continue
		}
		if mk := masterKey(post, j); mk != pre.masters[j].key {
			return c.fail("frame", "%s on %s perturbed %s: %q -> %q",
				a.Describe(c.m), name, c.m.Masters[j].Name, pre.masters[j].key, mk)
		}
	}

	p := pre.masters[mi]
	// (c) zero tolerance on probation: the violating action slams the door
	// again, inside the same incident.
	if alerted && p.specMode == staged {
		if !post.Reactor.Quarantined(name) || post.Reactor.Probation(name) {
			return c.fail("c", "%s violated on probation but is not re-quarantined", name)
		}
		if n := post.CMs[mi].RuleCount(); n != 0 {
			return c.fail("c", "%s violated on probation but still holds %d rules", name, n)
		}
		st, idx, ok := post.Reactor.OpenIncident(name)
		if !ok || idx != p.openIdx {
			return c.fail("c", "%s probation violation opened a new incident (stamp %d -> %d)", name, p.openIdx, idx)
		}
		if st.StagedAt != 0 {
			return c.fail("c", "%s probation violation left the staged mark set", name)
		}
		if post.Reactor.Quarantines != pre.quarantines+1 {
			return c.fail("c", "%s probation violation not counted as a trigger", name)
		}
	}

	// (b) the only exit from an incident is an explicit Release.
	if p.quarantined && !post.Reactor.Quarantined(name) {
		if a.Kind != Release {
			return c.fail("b", "%s left quarantine via %s, not an explicit release", name, a.Describe(c.m))
		}
	}
	if a.Kind == Release {
		if post.Reactor.Quarantined(name) || post.Reactor.Probation(name) {
			return c.fail("b", "%s still constrained after a full release", name)
		}
		if _, _, ok := post.Reactor.OpenIncident(name); ok {
			return c.fail("b", "%s incident still open after a full release", name)
		}
	}
	// Quarantine can only begin with a counted violation.
	if !p.quarantined && post.Reactor.Quarantined(name) && !alerted {
		return c.fail("b", "%s became quarantined without a violation (%s)", name, a.Describe(c.m))
	}
	return nil
}
