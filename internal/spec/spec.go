// Package spec is the serializable experiment API shared by the mpsocsim
// CLI and the mpsocd campaign service: one versioned JSON document — a
// Spec envelope holding either a SweepSpec or a CampaignSpec — from which
// both frontends construct the exact same sweep.Config/campaign.Config
// grid. The CLI's axis flags compile into a Spec (flags become overrides
// when -spec loads one from disk) and the HTTP body decodes into the same
// type, so a campaign submitted over HTTP is byte-identical to the same
// campaign run from the command line — the determinism gate's contract
// extends across process boundaries.
//
// Validation never panics and never loses the field: every violation is a
// FieldError carrying the JSON path of the offending value
// ("campaign.scenarios[2]", "sweep.cores[0]"), aggregated into one
// ValidationError, so a malformed HTTP request renders as a 400 naming
// precisely what to fix instead of killing the daemon.
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/attack"
	"repro/internal/campaign"
	"repro/internal/recovery"
	"repro/internal/soc"
	"repro/internal/sweep"
)

// Version is the current spec schema version. Decoding rejects any other
// value: an old daemon seeing a future spec must refuse it loudly rather
// than silently dropping fields it does not know.
const Version = 1

// Spec kinds.
const (
	KindSweep    = "sweep"
	KindCampaign = "campaign"
)

// Spec is the versioned envelope: exactly one of Sweep or Campaign is set,
// named by Kind.
type Spec struct {
	Version  int           `json:"version"`
	Kind     string        `json:"kind"`
	Sweep    *SweepSpec    `json:"sweep,omitempty"`
	Campaign *CampaignSpec `json:"campaign,omitempty"`
}

// SweepSpec is the benign scenario sweep: the protection x workload x
// target x core-count grid of internal/sweep. Zero-valued shared
// parameters select the sweep package defaults (sweep.Config.Normalize).
type SweepSpec struct {
	// Axes, outermost first (the grid order of sweep.Grid).
	Protections []string `json:"protections"`
	Workloads   []string `json:"workloads"`
	Targets     []string `json:"targets"`
	Cores       []int    `json:"cores"`
	// Shared per-run parameters.
	Accesses  int    `json:"accesses,omitempty"`
	Compute   int    `json:"compute,omitempty"`
	MaxCycles uint64 `json:"max_cycles,omitempty"`
}

// CampaignSpec is the attack campaign: the scenario x protection x
// core-count x background grid of internal/campaign, with the optional
// reaction-and-recovery phase.
type CampaignSpec struct {
	// Axes, outermost first (the grid order of campaign.Grid).
	Scenarios   []string `json:"scenarios"`
	Protections []string `json:"protections"`
	Cores       []int    `json:"cores"`
	Backgrounds []string `json:"backgrounds"`
	// Shared per-run parameters.
	Accesses    int    `json:"accesses,omitempty"`
	Compute     int    `json:"compute,omitempty"`
	InjectDelay uint64 `json:"inject_delay,omitempty"`
	MaxCycles   uint64 `json:"max_cycles,omitempty"`
	// Recovery, when present and enabled, arms the quarantine reactor and
	// the supervisor release schedule on every grid point.
	Recovery *RecoverySpec `json:"recovery,omitempty"`
}

// RecoverySpec mirrors recovery.Params in serializable form. Enabled is
// explicit (rather than inferred from a non-zero threshold) so a spec can
// carry tuned parameters while the phase is switched off.
type RecoverySpec struct {
	Enabled      bool    `json:"enabled"`
	Threshold    int     `json:"threshold,omitempty"`
	AlertWindow  uint64  `json:"alert_window,omitempty"`
	ClearDelay   uint64  `json:"clear_delay,omitempty"`
	Staged       bool    `json:"staged,omitempty"`
	StageDelay   uint64  `json:"stage_delay,omitempty"`
	SampleWindow uint64  `json:"sample_window,omitempty"`
	Epsilon      float64 `json:"epsilon,omitempty"`
}

// Params converts the spec into the campaign's phase parameters: the zero
// recovery.Params when disabled, normalized defaults otherwise.
func (r *RecoverySpec) Params() recovery.Params {
	if r == nil || !r.Enabled {
		return recovery.Params{}
	}
	threshold := r.Threshold
	if threshold == 0 {
		threshold = recovery.DefaultThreshold
	}
	return recovery.Params{
		QuarantineThreshold: threshold,
		QuarantineWindow:    r.AlertWindow,
		ClearDelay:          r.ClearDelay,
		Staged:              r.Staged,
		StageDelay:          r.StageDelay,
		SampleWindow:        r.SampleWindow,
		Epsilon:             r.Epsilon,
	}.Normalize()
}

// FieldError is one validation failure, pinned to the JSON path of the
// offending value.
type FieldError struct {
	Path string `json:"path"`
	Msg  string `json:"error"`
}

// Error implements error.
func (e *FieldError) Error() string { return e.Path + ": " + e.Msg }

// ValidationError aggregates every field failure of one Validate pass, so
// a client fixes the whole spec in one round trip.
type ValidationError struct {
	Fields []*FieldError `json:"fields"`
}

// Error implements error.
func (e *ValidationError) Error() string {
	msgs := make([]string, len(e.Fields))
	for i, f := range e.Fields {
		msgs[i] = f.Error()
	}
	return "spec: " + strings.Join(msgs, "; ")
}

// errs collects field errors during validation.
type errs struct{ fields []*FieldError }

func (e *errs) addf(path, format string, args ...any) {
	e.fields = append(e.fields, &FieldError{Path: path, Msg: fmt.Sprintf(format, args...)})
}

func (e *errs) err() error {
	if len(e.fields) == 0 {
		return nil
	}
	return &ValidationError{Fields: e.fields}
}

// ParseProtection maps the spec/CLI protection names to soc.Protection.
func ParseProtection(s string) (soc.Protection, error) {
	switch s {
	case "unprotected":
		return soc.Unprotected, nil
	case "distributed":
		return soc.Distributed, nil
	case "centralized":
		return soc.Centralized, nil
	default:
		return 0, fmt.Errorf("unknown protection %q (want unprotected, distributed or centralized)", s)
	}
}

// ProtectionNames lists the accepted protection names in canonical order.
func ProtectionNames() []string {
	return []string{"unprotected", "distributed", "centralized"}
}

// contains reports membership in a name list.
func contains(names []string, s string) bool {
	for _, n := range names {
		if n == s {
			return true
		}
	}
	return false
}

// validateAxes checks the axes every spec kind shares: protections and
// core counts, under the given path prefix.
func validateAxes(e *errs, prefix string, prots []string, cores []int) {
	if len(prots) == 0 {
		e.addf(prefix+".protections", "empty axis")
	}
	for i, p := range prots {
		if _, err := ParseProtection(p); err != nil {
			e.addf(fmt.Sprintf("%s.protections[%d]", prefix, i), "%v", err)
		}
	}
	if len(cores) == 0 {
		e.addf(prefix+".cores", "empty axis")
	}
	for i, n := range cores {
		if n < 1 || n > soc.MaxCores {
			e.addf(fmt.Sprintf("%s.cores[%d]", prefix, i), "core count %d out of range [1,%d]", n, soc.MaxCores)
		}
	}
}

// Validate checks the sweep spec and reports every violation with its
// field path.
func (s *SweepSpec) Validate() error {
	var e errs
	validateAxes(&e, KindSweep, s.Protections, s.Cores)
	if len(s.Workloads) == 0 {
		e.addf("sweep.workloads", "empty axis")
	}
	for i, w := range s.Workloads {
		if !contains(sweep.WorkloadNames(), w) {
			e.addf(fmt.Sprintf("sweep.workloads[%d]", i), "unknown workload %q (want one of %v)", w, sweep.WorkloadNames())
		}
	}
	if len(s.Targets) == 0 {
		e.addf("sweep.targets", "empty axis")
	}
	for i, t := range s.Targets {
		if !contains(sweep.TargetNames(), t) {
			e.addf(fmt.Sprintf("sweep.targets[%d]", i), "unknown target %q (want one of %v)", t, sweep.TargetNames())
		}
	}
	if s.Accesses < 0 {
		e.addf("sweep.accesses", "negative access count %d", s.Accesses)
	}
	if s.Compute < 0 {
		e.addf("sweep.compute", "negative compute count %d", s.Compute)
	}
	return e.err()
}

// Grid validates the spec and builds its sweep grid — the same grid the
// mpsocsim axis flags would have produced.
func (s *SweepSpec) Grid() ([]sweep.Config, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	prots := make([]soc.Protection, len(s.Protections))
	for i, p := range s.Protections {
		prots[i], _ = ParseProtection(p)
	}
	return sweep.Grid(prots, s.Workloads, s.Targets, s.Cores, s.Accesses, s.Compute, s.MaxCycles), nil
}

// Validate checks the campaign spec and reports every violation with its
// field path.
func (c *CampaignSpec) Validate() error {
	var e errs
	validateAxes(&e, KindCampaign, c.Protections, c.Cores)
	if len(c.Scenarios) == 0 {
		e.addf("campaign.scenarios", "empty axis")
	}
	for i, sc := range c.Scenarios {
		if !contains(attack.Names(), sc) {
			e.addf(fmt.Sprintf("campaign.scenarios[%d]", i), "unknown scenario %q (want one of %v)", sc, attack.Names())
		}
	}
	if len(c.Backgrounds) == 0 {
		e.addf("campaign.backgrounds", "empty axis")
	}
	for i, bg := range c.Backgrounds {
		if bg != "none" && !contains(campaign.BackgroundNames(), bg) {
			e.addf(fmt.Sprintf("campaign.backgrounds[%d]", i), "unknown background %q (want one of %v or none)", bg, campaign.BackgroundNames())
		}
	}
	if c.Accesses < 0 {
		e.addf("campaign.accesses", "negative access count %d", c.Accesses)
	}
	if c.Compute < 0 {
		e.addf("campaign.compute", "negative compute count %d", c.Compute)
	}
	if c.Recovery != nil && c.Recovery.Enabled {
		if c.Recovery.Threshold < 0 {
			e.addf("campaign.recovery.threshold", "negative threshold %d", c.Recovery.Threshold)
		}
		if eps := c.Recovery.Epsilon; eps < 0 || eps >= 1 {
			e.addf("campaign.recovery.epsilon", "epsilon %g out of range [0,1)", eps)
		}
	}
	return e.err()
}

// Grid validates the spec and builds its campaign grid — the same grid the
// mpsocsim -attack axis flags would have produced, recovery phase
// included.
func (c *CampaignSpec) Grid() ([]campaign.Config, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	prots := make([]soc.Protection, len(c.Protections))
	for i, p := range c.Protections {
		prots[i], _ = ParseProtection(p)
	}
	grid := campaign.Grid(c.Scenarios, prots, c.Cores, c.Backgrounds,
		c.Accesses, c.Compute, c.InjectDelay, c.MaxCycles)
	if p := c.Recovery.Params(); p.Enabled() {
		grid = campaign.WithRecovery(grid, p)
	}
	return grid, nil
}

// Validate checks the envelope: version, kind, and exactly one populated
// branch, then the branch itself.
func (s *Spec) Validate() error {
	var e errs
	if s.Version != Version {
		e.addf("version", "unsupported spec version %d (this build speaks %d)", s.Version, Version)
	}
	switch s.Kind {
	case KindSweep:
		if s.Campaign != nil {
			e.addf("campaign", "kind is %q but campaign branch is set", KindSweep)
		}
		if s.Sweep == nil {
			e.addf("sweep", "kind is %q but sweep branch is missing", KindSweep)
		}
	case KindCampaign:
		if s.Sweep != nil {
			e.addf("sweep", "kind is %q but sweep branch is set", KindCampaign)
		}
		if s.Campaign == nil {
			e.addf("campaign", "kind is %q but campaign branch is missing", KindCampaign)
		}
	default:
		e.addf("kind", "unknown kind %q (want %q or %q)", s.Kind, KindSweep, KindCampaign)
	}
	if err := e.err(); err != nil {
		return err
	}
	if s.Sweep != nil {
		return s.Sweep.Validate()
	}
	return s.Campaign.Validate()
}

// Parse decodes and validates a spec document. Unknown fields are errors:
// a typo in an axis name must not silently select a default grid.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	// Trailing garbage after the document is a malformed request, not an
	// extended one.
	if dec.More() {
		return nil, fmt.Errorf("spec: trailing data after spec document")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// JSON renders the spec with stable formatting — the canonical on-disk and
// on-the-wire form (mpsocsim -dump-spec emits it, Parse accepts it).
func (s *Spec) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// NewSweep wraps a sweep spec in its envelope.
func NewSweep(s SweepSpec) *Spec {
	return &Spec{Version: Version, Kind: KindSweep, Sweep: &s}
}

// NewCampaign wraps a campaign spec in its envelope.
func NewCampaign(c CampaignSpec) *Spec {
	return &Spec{Version: Version, Kind: KindCampaign, Campaign: &c}
}
