package spec_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/recovery"
	"repro/internal/spec"
)

func campaignSpec() *spec.Spec {
	return spec.NewCampaign(spec.CampaignSpec{
		Scenarios:   []string{"tamper", "zone-escape", "dos-flood"},
		Protections: []string{"unprotected", "distributed", "centralized"},
		Cores:       []int{3},
		Backgrounds: []string{"stream", "secure-scrub"},
		Accesses:    64,
		Compute:     4,
		InjectDelay: 100,
		MaxCycles:   2_000_000,
		Recovery: &spec.RecoverySpec{
			Enabled:    true,
			ClearDelay: 1500,
			Staged:     true,
		},
	})
}

func sweepSpec() *spec.Spec {
	return spec.NewSweep(spec.SweepSpec{
		Protections: []string{"unprotected", "distributed"},
		Workloads:   []string{"mix", "stream"},
		Targets:     []string{"internal", "external"},
		Cores:       []int{1, 2},
		Accesses:    16,
		Compute:     4,
		MaxCycles:   2_000_000,
	})
}

// TestRoundTrip is the single-source-of-truth contract: encoding a spec
// and decoding it back must build the exact same grid.
func TestRoundTrip(t *testing.T) {
	for _, sp := range []*spec.Spec{campaignSpec(), sweepSpec()} {
		data, err := sp.JSON()
		if err != nil {
			t.Fatal(err)
		}
		got, err := spec.Parse(data)
		if err != nil {
			t.Fatalf("round-trip parse: %v\n%s", err, data)
		}
		if !reflect.DeepEqual(sp, got) {
			t.Fatalf("spec drifted over the round trip:\nbefore %+v\nafter  %+v", sp, got)
		}
		switch sp.Kind {
		case spec.KindCampaign:
			g1, err1 := sp.Campaign.Grid()
			g2, err2 := got.Campaign.Grid()
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if !reflect.DeepEqual(g1, g2) {
				t.Fatal("campaign grid drifted over the round trip")
			}
			if len(g1) != 3*3*1*2 {
				t.Fatalf("campaign grid size = %d", len(g1))
			}
			if !g1[0].Recovery.Enabled() || g1[0].Recovery.ClearDelay != 1500 || !g1[0].Recovery.Staged {
				t.Fatalf("recovery params lost: %+v", g1[0].Recovery)
			}
		case spec.KindSweep:
			g1, err1 := sp.Sweep.Grid()
			g2, err2 := got.Sweep.Grid()
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if !reflect.DeepEqual(g1, g2) {
				t.Fatal("sweep grid drifted over the round trip")
			}
			if len(g1) != 2*2*2*2 {
				t.Fatalf("sweep grid size = %d", len(g1))
			}
		}
	}
}

// TestRecoveryDefaults pins the spec->params mapping: enabled with a zero
// threshold selects the package default, disabled is the zero value no
// matter what else is set.
func TestRecoveryDefaults(t *testing.T) {
	p := (&spec.RecoverySpec{Enabled: true}).Params()
	if p.QuarantineThreshold != recovery.DefaultThreshold {
		t.Fatalf("threshold = %d, want default %d", p.QuarantineThreshold, recovery.DefaultThreshold)
	}
	if p.ClearDelay != recovery.DefaultClearDelay || p.SampleWindow != recovery.DefaultSampleWindow {
		t.Fatalf("normalize not applied: %+v", p)
	}
	if p := (&spec.RecoverySpec{Enabled: false, Threshold: 5}).Params(); p.Enabled() {
		t.Fatalf("disabled spec produced enabled params: %+v", p)
	}
	if p := (*spec.RecoverySpec)(nil).Params(); p.Enabled() {
		t.Fatal("nil spec produced enabled params")
	}
}

// TestValidationFieldPaths checks that every rejection names the offending
// field's JSON path — the contract the daemon's 400 responses rely on.
func TestValidationFieldPaths(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		path string
	}{
		{"bad version", `{"version":99,"kind":"sweep","sweep":{"protections":["distributed"],"workloads":["mix"],"targets":["internal"],"cores":[1]}}`, "version"},
		{"bad kind", `{"version":1,"kind":"audit"}`, "kind"},
		{"missing branch", `{"version":1,"kind":"campaign"}`, "campaign"},
		{"wrong branch", `{"version":1,"kind":"sweep","sweep":{"protections":["distributed"],"workloads":["mix"],"targets":["internal"],"cores":[1]},"campaign":{"scenarios":["tamper"],"protections":["distributed"],"cores":[3],"backgrounds":["stream"]}}`, "campaign"},
		{"bad scenario", `{"version":1,"kind":"campaign","campaign":{"scenarios":["tamper","nosuch"],"protections":["distributed"],"cores":[3],"backgrounds":["stream"]}}`, "campaign.scenarios[1]"},
		{"bad protection", `{"version":1,"kind":"campaign","campaign":{"scenarios":["tamper"],"protections":["seca"],"cores":[3],"backgrounds":["stream"]}}`, "campaign.protections[0]"},
		{"bad background", `{"version":1,"kind":"campaign","campaign":{"scenarios":["tamper"],"protections":["distributed"],"cores":[3],"backgrounds":["nosuch"]}}`, "campaign.backgrounds[0]"},
		{"core count", `{"version":1,"kind":"campaign","campaign":{"scenarios":["tamper"],"protections":["distributed"],"cores":[99],"backgrounds":["stream"]}}`, "campaign.cores[0]"},
		{"empty axis", `{"version":1,"kind":"campaign","campaign":{"scenarios":[],"protections":["distributed"],"cores":[3],"backgrounds":["stream"]}}`, "campaign.scenarios"},
		{"bad workload", `{"version":1,"kind":"sweep","sweep":{"protections":["distributed"],"workloads":["nosuch"],"targets":["internal"],"cores":[1]}}`, "sweep.workloads[0]"},
		{"bad target", `{"version":1,"kind":"sweep","sweep":{"protections":["distributed"],"workloads":["mix"],"targets":["nosuch"],"cores":[1]}}`, "sweep.targets[0]"},
		{"bad epsilon", `{"version":1,"kind":"campaign","campaign":{"scenarios":["tamper"],"protections":["distributed"],"cores":[3],"backgrounds":["stream"],"recovery":{"enabled":true,"epsilon":2}}}`, "campaign.recovery.epsilon"},
	}
	for _, tc := range cases {
		_, err := spec.Parse([]byte(tc.doc))
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.path) {
			t.Fatalf("%s: error %q does not name path %q", tc.name, err, tc.path)
		}
	}
}

// TestValidationAggregates checks that one pass reports every broken
// field, not just the first.
func TestValidationAggregates(t *testing.T) {
	doc := `{"version":1,"kind":"campaign","campaign":{"scenarios":["nosuch"],"protections":["seca"],"cores":[0],"backgrounds":["bogus"]}}`
	_, err := spec.Parse([]byte(doc))
	ve, ok := err.(*spec.ValidationError)
	if !ok {
		t.Fatalf("want *ValidationError, got %T: %v", err, err)
	}
	if len(ve.Fields) != 4 {
		t.Fatalf("want 4 field errors, got %d: %v", len(ve.Fields), ve)
	}
}

// TestParseRejectsUnknownFields: a typo must not silently select defaults.
func TestParseRejectsUnknownFields(t *testing.T) {
	doc := `{"version":1,"kind":"sweep","sweep":{"protections":["distributed"],"worklodas":["mix"],"targets":["internal"],"cores":[1]}}`
	if _, err := spec.Parse([]byte(doc)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := spec.Parse([]byte(`{"version":1,"kind":"sweep","sweep":{"protections":["distributed"],"workloads":["mix"],"targets":["internal"],"cores":[1]}} trailing`)); err == nil {
		t.Fatal("trailing data accepted")
	}
}
