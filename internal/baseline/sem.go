// Package baseline implements the *centralized* security architecture the
// paper positions itself against (Coburn et al.'s SECA: per-IP Security
// Enforcement Interfaces forwarding to one global Security Enforcement
// Module). The paper argues distribution wins because checks stay local —
// this package makes that comparison executable instead of rhetorical.
//
// Protocol modeled: before an IP's transfer may proceed, its SEI sends a
// check request to the SEM over the shared system bus (one write), then
// fetches the verdict (one read that stalls until the SEM has processed
// the request through its serial check queue). Only then does the actual
// transfer go out. Every checked access therefore costs two extra bus
// transactions plus SEM queueing — the contention and single-point-of-
// failure the distributed scheme avoids.
package baseline

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/sim"
)

// SEM register offsets.
const (
	SEMRegAddr    = 0x00 // check request: address
	SEMRegMeta    = 0x04 // check request: op|size|burst packed
	SEMRegVerdict = 0x10 // read: 1 = allow, 0 = deny (stalls until ready)
	semRegSpan    = 0x20
)

// packMeta encodes op/size/burst for the request write.
func packMeta(isWrite bool, size, burst int) uint32 {
	v := uint32(size)<<8 | uint32(burst)<<16
	if isWrite {
		v |= 1
	}
	return v
}

func unpackMeta(v uint32) (isWrite bool, size, burst int) {
	return v&1 != 0, int(v >> 8 & 0xFF), int(v >> 16 & 0xFFFF)
}

type pendingCheck struct {
	addr    uint32
	meta    uint32
	readyAt uint64
	verdict bool
	spi     uint32
	viol    core.Violation
}

// getPending pops a recycled check record (or allocates the first time), so
// the SEM does not allocate per transfer in steady state.
func (s *SEM) getPending() *pendingCheck {
	if n := len(s.free); n > 0 {
		p := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return p
	}
	return &pendingCheck{}
}

func (s *SEM) putPending(p *pendingCheck) {
	s.free = append(s.free, p)
}

// SEMStats counts the central module's activity.
type SEMStats struct {
	Checks   uint64
	Denied   uint64
	MaxQueue int
	// StallCycles sums the cycles verdict reads waited on the serial
	// checker — the centralized bottleneck measure.
	StallCycles uint64
}

// SEM is the central Security Enforcement Module: a bus slave owning the
// *global* policy table (every IP's rules in one place, versus one small
// Configuration Memory per interface in the distributed scheme).
type SEM struct {
	name string
	base uint32
	eng  *sim.Engine
	cm   *core.ConfigMemory
	log  *core.AlertLog

	// CheckCycles is the serial per-check processing time (same 12-cycle
	// Security Builder as the distributed firewalls, for a fair
	// comparison).
	CheckCycles uint64

	freeAt  uint64
	pending map[string][]*pendingCheck
	free    []*pendingCheck

	stats SEMStats
}

// NewSEM creates the module at base with the global rule table cm.
func NewSEM(eng *sim.Engine, name string, base uint32, cm *core.ConfigMemory, log *core.AlertLog) *SEM {
	return &SEM{
		name:        name,
		base:        base,
		eng:         eng,
		cm:          cm,
		log:         log,
		CheckCycles: core.DefaultCheckCycles,
		pending:     make(map[string][]*pendingCheck),
	}
}

// Name implements bus.Slave.
func (s *SEM) Name() string { return s.name }

// Base implements bus.Slave.
func (s *SEM) Base() uint32 { return s.base }

// Size implements bus.Slave.
func (s *SEM) Size() uint32 { return semRegSpan }

// Config exposes the global policy table.
func (s *SEM) Config() *core.ConfigMemory { return s.cm }

// Stats returns the SEM counters.
func (s *SEM) Stats() SEMStats { return s.stats }

// StatsSnapshot implements core.Snapshotter: the SEM's counters in the
// uniform per-enforcement-point form. CheckCycles is the serial checker's
// total busy time; the stall and queue fields expose the centralized
// bottleneck the distributed scheme avoids.
func (s *SEM) StatsSnapshot() core.Snapshot {
	return core.Snapshot{
		ID:             s.name,
		Kind:           core.KindSEM,
		Checked:        s.stats.Checks,
		Allowed:        s.stats.Checks - s.stats.Denied,
		Blocked:        s.stats.Denied,
		CheckCycles:    s.stats.Checks * s.CheckCycles,
		SEMStallCycles: s.stats.StallCycles,
		SEMMaxQueue:    s.stats.MaxQueue,
	}
}

// QueueLen returns the number of checks awaiting verdict pickup.
func (s *SEM) QueueLen() int {
	n := 0
	for _, q := range s.pending {
		n += len(q)
	}
	return n
}

// Access implements bus.Slave.
func (s *SEM) Access(now uint64, tx *bus.Transaction) (uint64, bus.Resp) {
	off := tx.Addr - s.base
	if tx.Op == bus.Write && off == SEMRegAddr && tx.Burst == 2 && tx.Size == 4 {
		// Check request: enqueue behind everything the serial checker
		// already owes.
		start := now
		if s.freeAt > start {
			start = s.freeAt
		}
		p := s.getPending()
		p.addr, p.meta, p.readyAt = tx.Data[0], tx.Data[1], start+s.CheckCycles
		s.freeAt = p.readyAt
		isWrite, size, burst := unpackMeta(p.meta)
		pol, viol := s.cm.Check(tx.Master, isWrite, p.addr, size, burst)
		p.verdict = viol == core.VNone
		p.spi = pol.SPI
		p.viol = viol
		s.pending[tx.Master] = append(s.pending[tx.Master], p)
		s.stats.Checks++
		// Denials count at check time, not verdict pickup, so stats
		// snapshots taken while verdicts are still pending (e.g. a run
		// that exhausted its cycle budget) stay accurate.
		if !p.verdict {
			s.stats.Denied++
		}
		if q := s.QueueLen(); q > s.stats.MaxQueue {
			s.stats.MaxQueue = q
		}
		return 1 + 1, bus.RespOK // register write: 2 cycles
	}
	if tx.Op == bus.Read && off == SEMRegVerdict && tx.Burst == 1 && tx.Size == 4 {
		q := s.pending[tx.Master]
		if len(q) == 0 {
			tx.Data[0] = 0
			return 1, bus.RespSlaveErr
		}
		// Pop by copying down rather than re-slicing forward, so appends
		// keep reusing the same backing array instead of allocating once
		// its remaining capacity runs out.
		p := q[0]
		copy(q, q[1:])
		q[len(q)-1] = nil
		s.pending[tx.Master] = q[:len(q)-1]
		wait := uint64(1)
		if p.readyAt > now {
			wait += p.readyAt - now
			s.stats.StallCycles += p.readyAt - now
		}
		if p.verdict {
			tx.Data[0] = 1
			s.putPending(p)
		} else {
			tx.Data[0] = 0
			isWrite, size, _ := unpackMeta(p.meta)
			op := bus.Read
			if isWrite {
				op = bus.Write
			}
			s.log.Record(core.Alert{
				Cycle:      now,
				FirewallID: s.name,
				Master:     tx.Master,
				SPI:        p.spi,
				Violation:  p.viol,
				Op:         op,
				Addr:       p.addr,
				Size:       size,
			})
			s.putPending(p)
		}
		return wait, bus.RespOK
	}
	return 1, bus.RespSlaveErr
}

// SEIStats counts one interface's decisions.
type SEIStats struct {
	Checked uint64
	Allowed uint64
	Blocked uint64
	// ProtocolTxns counts extra bus transactions spent on the check
	// protocol (two per access).
	ProtocolTxns uint64
}

// SEI is the per-IP Security Enforcement Interface of the centralized
// scheme. It implements bus.Conn like a Local Firewall, but instead of
// deciding locally it runs the two-transaction check protocol against the
// SEM — over the same shared bus the data uses.
type SEI struct {
	name    string
	inner   bus.Conn
	semBase uint32
	stats   SEIStats

	// free is a free list of in-flight protocol records, so Submit does
	// not allocate per transfer in steady state (matching the zero-alloc
	// distributed firewalls, for a fair benchmark comparison).
	free []*seiCall
}

// seiCall carries one transfer through the request/verdict/forward protocol.
// The protocol's own transactions, their data buffers and the two completion
// callbacks are embedded so a recycled record re-runs the protocol without
// any heap allocation.
type seiCall struct {
	i    *SEI
	tx   *bus.Transaction
	done func(*bus.Transaction)

	req     bus.Transaction
	verdict bus.Transaction
	reqData [2]uint32
	vData   [1]uint32

	// Method values bound once at record creation and reused across
	// recycles.
	onReq     func(*bus.Transaction)
	onVerdict func(*bus.Transaction)
}

func (i *SEI) getCall(tx *bus.Transaction, done func(*bus.Transaction)) *seiCall {
	if n := len(i.free); n > 0 {
		c := i.free[n-1]
		i.free[n-1] = nil
		i.free = i.free[:n-1]
		c.tx, c.done = tx, done
		return c
	}
	c := &seiCall{i: i, tx: tx, done: done}
	c.onReq = c.reqDone
	c.onVerdict = c.verdictDone
	return c
}

func (i *SEI) putCall(c *seiCall) {
	c.tx, c.done = nil, nil
	i.free = append(i.free, c)
}

// NewSEI wraps conn; semBase is the SEM's bus address.
func NewSEI(name string, conn bus.Conn, semBase uint32) *SEI {
	return &SEI{name: name, inner: conn, semBase: semBase}
}

// Name returns the interface identifier.
func (i *SEI) Name() string { return i.name }

// Stats returns the decision counters.
func (i *SEI) Stats() SEIStats { return i.stats }

// StatsSnapshot implements core.Snapshotter. The SEI adds no check latency
// of its own (the SEM does the checking); its cost shows up as the two
// protocol transactions per access instead.
func (i *SEI) StatsSnapshot() core.Snapshot {
	return core.Snapshot{
		ID:           i.name,
		Kind:         core.KindSEI,
		Checked:      i.stats.Checked,
		Allowed:      i.stats.Allowed,
		Blocked:      i.stats.Blocked,
		ProtocolTxns: i.stats.ProtocolTxns,
	}
}

// Submit implements bus.Conn: request-verdict-forward.
func (i *SEI) Submit(tx *bus.Transaction, done func(*bus.Transaction)) {
	i.stats.Checked++
	if tx.Master == "" {
		tx.Master = i.name
	}
	c := i.getCall(tx, done)
	c.reqData[0] = tx.Addr
	c.reqData[1] = packMeta(tx.Op == bus.Write, tx.Size, tx.Burst)
	// Whole-struct assignment resets the transaction's internal state
	// (done callback, queue stamp, issued flag) along with the fields.
	c.req = bus.Transaction{
		Master: tx.Master, Op: bus.Write, Addr: i.semBase + SEMRegAddr,
		Size: 4, Burst: 2, Data: c.reqData[:],
	}
	i.stats.ProtocolTxns++
	i.inner.Submit(&c.req, c.onReq)
	// The port stamped req synchronously with the current cycle; adopt it
	// as the data transfer's end-to-end origin so centralized latency
	// includes the whole SEM check protocol (and blocked transfers carry
	// a real origin instead of zero).
	tx.StampIssued(c.req.Issued)
}

// reqDone is the check-request completion: issue the verdict read.
func (c *seiCall) reqDone(req *bus.Transaction) {
	i := c.i
	if !req.Resp.OK() {
		tx, done, cycle := c.tx, c.done, req.Completed
		i.putCall(c)
		tx.Resp = bus.RespSlaveErr
		finish(tx, cycle, done)
		return
	}
	c.verdict = bus.Transaction{
		Master: c.tx.Master, Op: bus.Read, Addr: i.semBase + SEMRegVerdict,
		Size: 4, Burst: 1, Data: c.vData[:],
	}
	i.stats.ProtocolTxns++
	i.inner.Submit(&c.verdict, c.onVerdict)
}

// verdictDone consumes the SEM's verdict: forward the data transfer or
// discard it at the interface.
func (c *seiCall) verdictDone(v *bus.Transaction) {
	i, tx, done, cycle := c.i, c.tx, c.done, v.Completed
	denied := !v.Resp.OK() || v.Data[0] == 0
	i.putCall(c)
	if denied {
		i.stats.Blocked++
		tx.Resp = bus.RespSecurityErr
		for j := range tx.Data {
			tx.Data[j] = 0
		}
		finish(tx, cycle, done)
		return
	}
	i.stats.Allowed++
	i.inner.Submit(tx, done)
}

func finish(tx *bus.Transaction, cycle uint64, done func(*bus.Transaction)) {
	tx.Completed = cycle
	if done != nil {
		done(tx)
	}
}

// String identifies the interface.
func (i *SEI) String() string {
	return fmt.Sprintf("sei(%s -> sem@%#x)", i.name, i.semBase)
}
