package baseline_test

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
)

const (
	semBase  = 0x6000_0000
	bramBase = 0x1000_0000
)

// rig wires: two SEI-wrapped masters + SEM + BRAM on one bus.
func rig(t *testing.T, rules ...core.Policy) (*sim.Engine, *baseline.SEI, *baseline.SEI, *baseline.SEM, *bus.Bus, *core.AlertLog) {
	t.Helper()
	eng := sim.NewEngine(sim.DefaultFrequency)
	b := bus.New(eng, bus.Config{})
	b.AddSlave(mem.NewBRAM("bram", bramBase, 0x1_0000))
	log := core.NewAlertLog()
	sem := baseline.NewSEM(eng, "sem", semBase, core.MustConfig(rules...), log)
	b.AddSlave(sem)
	s0 := baseline.NewSEI("sei-cpu0", b.NewMaster("cpu0"), semBase)
	s1 := baseline.NewSEI("sei-cpu1", b.NewMaster("cpu1"), semBase)
	return eng, s0, s1, sem, b, log
}

func submit(t *testing.T, eng *sim.Engine, c bus.Conn, tx *bus.Transaction) *bus.Transaction {
	t.Helper()
	done := false
	c.Submit(tx, func(*bus.Transaction) { done = true })
	if _, ok := eng.RunUntil(func() bool { return done }, 1_000_000); !ok {
		t.Fatal("transaction stuck")
	}
	return tx
}

func allowAll() core.Policy {
	return core.Policy{SPI: 1, Zone: core.Zone{Base: bramBase, Size: 0x1_0000},
		RWA: core.ReadWrite, ADF: core.AnyWidth}
}

func TestSEIAllowsPermittedAccess(t *testing.T) {
	eng, s0, _, sem, _, _ := rig(t, allowAll())
	wr := submit(t, eng, s0, &bus.Transaction{Op: bus.Write, Addr: bramBase, Size: 4, Burst: 1, Data: []uint32{7}})
	if !wr.Resp.OK() {
		t.Fatalf("write: %v", wr.Resp)
	}
	rd := submit(t, eng, s0, &bus.Transaction{Op: bus.Read, Addr: bramBase, Size: 4, Burst: 1})
	if rd.Data[0] != 7 {
		t.Fatalf("read %d", rd.Data[0])
	}
	if sem.Stats().Checks != 2 {
		t.Fatalf("SEM checks = %d", sem.Stats().Checks)
	}
	st := s0.Stats()
	if st.ProtocolTxns != 4 {
		t.Fatalf("protocol transactions = %d, want 2 per access", st.ProtocolTxns)
	}
}

func TestSEIBlocksAndAlerts(t *testing.T) {
	eng, s0, _, sem, _, log := rig(t,
		core.Policy{SPI: 5, Zone: core.Zone{Base: bramBase, Size: 0x1_0000},
			RWA: core.ReadOnly, ADF: core.AnyWidth})
	wr := submit(t, eng, s0, &bus.Transaction{Master: "cpu0", Op: bus.Write, Addr: bramBase, Size: 4, Burst: 1, Data: []uint32{7}})
	if wr.Resp != bus.RespSecurityErr {
		t.Fatalf("resp = %v", wr.Resp)
	}
	if sem.Stats().Denied != 1 {
		t.Fatalf("denied = %d", sem.Stats().Denied)
	}
	if log.Len() != 1 {
		t.Fatalf("alerts = %d", log.Len())
	}
	if a := log.All()[0]; a.FirewallID != "sem" || a.Violation != core.VAccess || a.Master != "cpu0" {
		t.Fatalf("alert %+v", a)
	}
	if s0.Stats().Blocked != 1 {
		t.Fatalf("SEI blocked = %d", s0.Stats().Blocked)
	}
}

func TestSEIBlockedReadZeroesData(t *testing.T) {
	eng, s0, _, _, _, _ := rig(t) // empty table: everything denied
	rd := submit(t, eng, s0, &bus.Transaction{Op: bus.Read, Addr: bramBase, Size: 4, Burst: 1, Data: []uint32{0xAA}})
	if rd.Resp != bus.RespSecurityErr || rd.Data[0] != 0 {
		t.Fatalf("blocked read: %v %#x", rd.Resp, rd.Data[0])
	}
}

func TestCheckedAccessCostsMoreThanLocal(t *testing.T) {
	// One checked access must cost at least the two protocol round trips
	// plus the SEM check — strictly more than the 12-cycle local check of
	// the distributed design.
	eng, s0, _, _, _, _ := rig(t, allowAll())
	start := eng.Now()
	submit(t, eng, s0, &bus.Transaction{Op: bus.Read, Addr: bramBase, Size: 4, Burst: 1})
	elapsed := eng.Now() - start
	if elapsed <= core.DefaultCheckCycles+4 {
		t.Fatalf("centralized access cost only %d cycles — protocol not modeled", elapsed)
	}
}

func TestSEMSerializesConcurrentChecks(t *testing.T) {
	eng, s0, s1, sem, _, _ := rig(t, allowAll())
	done := 0
	for i := 0; i < 4; i++ {
		s0.Submit(&bus.Transaction{Op: bus.Read, Addr: bramBase, Size: 4, Burst: 1},
			func(*bus.Transaction) { done++ })
		s1.Submit(&bus.Transaction{Op: bus.Read, Addr: bramBase + 4, Size: 4, Burst: 1},
			func(*bus.Transaction) { done++ })
	}
	eng.RunUntil(func() bool { return done == 8 }, 1_000_000)
	if done != 8 {
		t.Fatalf("completed %d/8", done)
	}
	if sem.Stats().StallCycles == 0 {
		t.Fatal("no serialization observed at the SEM under concurrent load")
	}
}

func TestSEMQueueTracksMax(t *testing.T) {
	eng, s0, s1, sem, _, _ := rig(t, allowAll())
	done := 0
	for i := 0; i < 3; i++ {
		s0.Submit(&bus.Transaction{Op: bus.Read, Addr: bramBase, Size: 4, Burst: 1},
			func(*bus.Transaction) { done++ })
		s1.Submit(&bus.Transaction{Op: bus.Read, Addr: bramBase, Size: 4, Burst: 1},
			func(*bus.Transaction) { done++ })
	}
	eng.RunUntil(func() bool { return done == 6 }, 1_000_000)
	if sem.Stats().MaxQueue < 1 {
		t.Fatalf("MaxQueue = %d", sem.Stats().MaxQueue)
	}
	if sem.QueueLen() != 0 {
		t.Fatalf("queue not drained: %d", sem.QueueLen())
	}
}

func TestVerdictReadWithoutRequestErrors(t *testing.T) {
	eng, _, _, sem, b, _ := rig(t, allowAll())
	_ = sem
	raw := b.NewMaster("rogue")
	rd := submit(t, eng, raw, &bus.Transaction{Op: bus.Read, Addr: semBase + baseline.SEMRegVerdict, Size: 4, Burst: 1})
	if rd.Resp != bus.RespSlaveErr {
		t.Fatalf("verdict without request: %v", rd.Resp)
	}
}

func TestSEMBadRegisterAccess(t *testing.T) {
	eng, _, _, _, b, _ := rig(t, allowAll())
	raw := b.NewMaster("rogue")
	wr := submit(t, eng, raw, &bus.Transaction{Op: bus.Write, Addr: semBase + 0x18, Size: 4, Burst: 1, Data: []uint32{1}})
	if wr.Resp != bus.RespSlaveErr {
		t.Fatalf("stray SEM write: %v", wr.Resp)
	}
}
