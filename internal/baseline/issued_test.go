package baseline_test

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/core"
)

// TestSEILatencyIncludesCheckProtocol: the SEI stamps the Issued origin at
// submission, so Completed - Issued covers the full two-transaction SEM
// protocol plus the data transfer — the very overhead the centralized-vs-
// distributed comparison measures.
func TestSEILatencyIncludesCheckProtocol(t *testing.T) {
	eng, s0, _, _, _, _ := rig(t, allowAll())
	eng.Run(3)
	tx := submit(t, eng, s0, &bus.Transaction{Op: bus.Read, Addr: bramBase, Size: 4, Burst: 1})
	if !tx.Resp.OK() {
		t.Fatalf("resp = %v", tx.Resp)
	}
	if tx.Issued != 3 {
		t.Fatalf("Issued = %d, want 3 (SEI submission cycle)", tx.Issued)
	}
	// The two protocol transactions overlap the SEM's serial check, but
	// the data grant cannot precede the check completing: pre-grant
	// latency must cover at least the full CheckCycles.
	if lat := tx.Started - tx.Issued; lat < core.DefaultCheckCycles {
		t.Fatalf("pre-grant latency %d excludes the SEM check protocol", lat)
	}
}

// TestSEIBlockedTransferCarriesOrigin: a transfer the SEM denies never
// reaches the bus as data, but must still report a real Issued origin.
func TestSEIBlockedTransferCarriesOrigin(t *testing.T) {
	eng, s0, _, _, _, _ := rig(t) // empty policy table: deny everything
	eng.Run(5)
	tx := submit(t, eng, s0, &bus.Transaction{Op: bus.Read, Addr: bramBase, Size: 4, Burst: 1})
	if tx.Resp != bus.RespSecurityErr {
		t.Fatalf("resp = %v, want SECURITY_ERR", tx.Resp)
	}
	if tx.Issued != 5 {
		t.Fatalf("blocked transfer Issued = %d, want 5", tx.Issued)
	}
	if tx.Completed <= tx.Issued {
		t.Fatalf("Completed %d <= Issued %d", tx.Completed, tx.Issued)
	}
}
