package baseline_test

import (
	"testing"

	"repro/internal/bus"
)

// TestSEIPathAllocationFree: the centralized baseline's per-transfer path
// (SEI protocol records, SEM pending checks, protocol transactions and
// their data buffers) must run allocation-free in steady state, matching
// the zero-alloc distributed firewalls — otherwise SEM-vs-LF benchmark
// comparisons measure the Go allocator instead of the architectures.
func TestSEIPathAllocationFree(t *testing.T) {
	eng, s0, _, _, _, _ := rig(t, allowAll())

	var data [1]uint32
	var tx bus.Transaction
	completed, stuck := false, false
	cb := func(*bus.Transaction) { completed = true }
	cond := func() bool { return completed }
	run := func() {
		completed = false
		tx = bus.Transaction{Op: bus.Read, Addr: bramBase, Size: 4, Burst: 1, Data: data[:]}
		s0.Submit(&tx, cb)
		if _, ok := eng.RunUntil(cond, 1_000_000); !ok {
			stuck = true
		}
	}
	// Warm the SEI/SEM free lists and the engine's calendar ring: the ring
	// has 1024 per-cycle buckets that each allocate on first use, and each
	// run lands on a different bucket phase, so run well past every
	// bucket/phase combination before measuring.
	for i := 0; i < 4096; i++ {
		run()
	}
	allocs := testing.AllocsPerRun(200, run)
	if stuck {
		t.Fatal("transaction stuck")
	}
	if allocs > 0 {
		t.Fatalf("centralized check path allocates %.2f objects per access, want 0", allocs)
	}
}
