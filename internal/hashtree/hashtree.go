// Package hashtree implements the Integrity Core (IC) of the paper's Local
// Ciphering Firewall: a binary Merkle hash tree over the protected external
// memory region.
//
// Layout and trust model follow the paper's threat model:
//
//   - Protected data and all tree nodes live in *external* memory, which the
//     attacker can read and rewrite at will (mem.Store.Peek/Poke).
//   - Only the tree root and the per-leaf version counters (the paper's
//     "time stamp tags") are on-chip, inside the LCF.
//
// A leaf digest binds data, address and version:
//
//	leaf_i = H(data_i || addr_i || version_i)
//
// so spoofing (fabricated data), relocation (block copied from another
// address) and replay (stale data with its stale tree path) all fail the
// root comparison, and the version binding lets the LCF attribute a replay
// precisely.
//
// The compression function is Davies–Meyer over the AES-128 core
// (H' = AES_H(M) xor M), which is also why the hardware Integrity Core
// shares the CC's timing descriptor type: the paper's IC costs 20 cycles
// per node check (Table II).
//
// Host-side cost discipline: one modeled node check is a handful of
// Davies–Meyer steps, each of which re-keys AES with the chaining value.
// The tree therefore hashes through stack-resident aes.Schedule values
// (zero heap traffic), reads leaf data and node digests through
// mem.Store.View (no copies), walks paths in fixed-size arrays, and keeps
// the verified-node cache in slice-indexed arrays with a FIFO ring instead
// of a map. Leaf and internal-node digests use fixed-length, domain-
// separated compression chains (leafIV/nodeIV), so no length block is
// needed on the hot path; the general Hash remains for variable-length
// callers. None of this affects modeled IC cycles, which derive only from
// the returned node-operation counts.
package hashtree

import (
	"fmt"

	"repro/internal/aes"
	"repro/internal/mem"
)

// LeafSize is the number of data bytes covered by one leaf.
const LeafSize = 32

// DigestSize is the byte size of a tree node digest.
const DigestSize = 16

// Digest is a 128-bit hash value.
type Digest [DigestSize]byte

// DefaultTiming is the Table II calibration for the IC: 20-cycle node
// check, initiation interval 98 cycles so the sustained 128-bit-block
// throughput at 100 MHz is ≈131 Mb/s.
var DefaultTiming = aes.Timing{Latency: 20, Interval: 98}

// iv is the fixed initial chaining value of the Davies–Meyer construction
// used by the general-purpose Hash.
var iv = Digest{0x52, 0x45, 0x50, 0x52, 0x4f, 0x2d, 0x49, 0x43, 0x2d, 0x49, 0x56, 0x30, 0x30, 0x30, 0x31, 0x00}

// leafIV and nodeIV are the domain-separated chaining values of the tree's
// fixed-length digests: a leaf absorbs exactly three blocks (32 data bytes
// plus the address/version block), an internal node exactly two (left and
// right child digests), so distinct IVs — not a length block — keep the two
// domains from colliding.
var (
	leafIV = Digest{0x52, 0x45, 0x50, 0x52, 0x4f, 0x2d, 0x49, 0x43, 0x2d, 0x4c, 0x45, 0x41, 0x46, 0x30, 0x31, 0x00}
	nodeIV = Digest{0x52, 0x45, 0x50, 0x52, 0x4f, 0x2d, 0x49, 0x43, 0x2d, 0x4e, 0x4f, 0x44, 0x45, 0x30, 0x31, 0x00}
)

// compress is one Davies–Meyer step through a caller-provided schedule:
// chain' = AES_chain(block) xor block. The schedule is scratch space; it is
// re-expanded from the chaining value on every step.
func compress(ks *aes.Schedule, chain Digest, block *[16]byte) Digest {
	ks.Expand((*[16]byte)(&chain))
	var out Digest
	ks.Encrypt((*[16]byte)(&out), block)
	for i := range out {
		out[i] ^= block[i]
	}
	return out
}

// Compress is one Davies–Meyer step: AES_chain(block) xor block.
func Compress(chain Digest, block [16]byte) Digest {
	var ks aes.Schedule
	return compress(&ks, chain, &block)
}

// Hash absorbs the concatenation of the given byte slices in 16-byte
// blocks (zero-padded) and finishes with a length block, Merkle–Damgård
// style.
func Hash(parts ...[]byte) Digest {
	var ks aes.Schedule
	h := iv
	var block [16]byte
	fill := 0
	total := uint64(0)
	for _, p := range parts {
		total += uint64(len(p))
		for len(p) > 0 {
			n := copy(block[fill:], p)
			fill += n
			p = p[n:]
			if fill == 16 {
				h = compress(&ks, h, &block)
				fill = 0
				block = [16]byte{}
			}
		}
	}
	if fill > 0 {
		h = compress(&ks, h, &block)
		block = [16]byte{}
	}
	// Length block defeats trivial concatenation ambiguity.
	for i := 0; i < 8; i++ {
		block[i] = byte(total >> (8 * i))
	}
	return compress(&ks, h, &block)
}

// hashLeaf computes the fixed-length leaf digest: three compression steps
// over the 32 data bytes and the address/version binding block.
func hashLeaf(data []byte, addr, version uint32) Digest {
	_ = data[LeafSize-1]
	var ks aes.Schedule
	h := compress(&ks, leafIV, (*[16]byte)(data[0:16]))
	h = compress(&ks, h, (*[16]byte)(data[16:32]))
	var meta [16]byte
	putU32(meta[0:], addr)
	putU32(meta[4:], version)
	return compress(&ks, h, &meta)
}

// hashNode computes the fixed-length internal-node digest from the two
// child digests: two compression steps.
func hashNode(l, r *Digest) Digest {
	var ks aes.Schedule
	h := compress(&ks, nodeIV, (*[16]byte)(l))
	return compress(&ks, h, (*[16]byte)(r))
}

// Config parameterizes a Tree.
type Config struct {
	// Store is the external memory holding both data and tree nodes.
	Store *mem.Store
	// DataBase/DataSize delimit the protected region. DataSize must be a
	// multiple of LeafSize and DataSize/LeafSize a power of two.
	DataBase, DataSize uint32
	// NodeBase is where tree nodes are stored in external memory. The
	// region must not overlap the data.
	NodeBase uint32
	// CacheSize bounds the on-chip verified-node cache (digest values of
	// nodes already authenticated against the root). Zero disables
	// caching, making every verification walk the full path.
	CacheSize int
}

// NodesSize returns the external bytes needed for the node array of a
// region of dataSize bytes.
func NodesSize(dataSize uint32) uint32 {
	leaves := dataSize / LeafSize
	return (2*leaves - 1) * DigestSize
}

// maxDepth bounds the tree height: a 32-bit data region holds at most
// 2^27 leaves, so fixed path arrays of 2*maxDepth+2 steps cover any legal
// configuration.
const maxDepth = 27

// denseCacheNodes bounds the dense (slice-indexed) verified-node cache:
// up to this many heap nodes — 1.25 MiB of stamp+digest arrays — lookups
// are plain array indexing; larger trees fall back to the map-backed
// cache so host memory stays proportional to CacheSize rather than the
// tree.
const denseCacheNodes = 1 << 16

// pathStep is one (node, digest) pair collected during a verification
// walk, kept in fixed arrays so walks allocate nothing.
type pathStep struct {
	node int32
	dig  Digest
}

// Tree is the integrity engine state. The exported behaviour distinguishes
// on-chip state (root, versions, cache — trusted) from external state
// (node digests in Store — untrusted).
type Tree struct {
	cfg    Config
	leaves int
	depth  int // number of levels above the leaves
	root   Digest
	// versions are the paper's on-chip time stamp tags, one per leaf.
	versions []uint32
	// Verified-node cache (on-chip): slice-indexed by heap node number
	// when the tree is small enough for dense arrays (entry n is valid
	// when cacheStamp[n] == cacheGen; Build invalidates everything by
	// bumping the generation, eviction by zeroing the stamp), or a map
	// keyed by node number beyond denseCacheNodes so host memory stays
	// O(CacheSize) for giant protected regions. Both flavours share the
	// FIFO ring that replays the insertion order the eviction policy
	// needs, and both implement identical hit/evict semantics.
	cacheDig   []Digest
	cacheStamp []uint32
	cacheGen   uint32
	cacheMap   map[int32]Digest
	fifo       []int32
	fifoHead   int
	fifoLen    int
	// Stats.
	NodeChecks  uint64 // hash computations during verification
	NodeUpdates uint64 // hash computations during updates
	CacheHits   uint64
}

// New validates the configuration and creates an unbuilt tree; call Build
// before first use.
func New(cfg Config) (*Tree, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("hashtree: nil store")
	}
	if cfg.DataSize == 0 || cfg.DataSize%LeafSize != 0 {
		return nil, fmt.Errorf("hashtree: data size %#x not a multiple of %d", cfg.DataSize, LeafSize)
	}
	leaves := cfg.DataSize / LeafSize
	if leaves&(leaves-1) != 0 {
		return nil, fmt.Errorf("hashtree: leaf count %d not a power of two", leaves)
	}
	if !cfg.Store.InRange(cfg.DataBase, cfg.DataSize) {
		return nil, fmt.Errorf("hashtree: data region outside store")
	}
	nodesBytes := NodesSize(cfg.DataSize)
	if !cfg.Store.InRange(cfg.NodeBase, nodesBytes) {
		return nil, fmt.Errorf("hashtree: node region outside store")
	}
	dLo, dHi := uint64(cfg.DataBase), uint64(cfg.DataBase)+uint64(cfg.DataSize)
	nLo, nHi := uint64(cfg.NodeBase), uint64(cfg.NodeBase)+uint64(nodesBytes)
	if dLo < nHi && nLo < dHi {
		return nil, fmt.Errorf("hashtree: node region overlaps data region")
	}
	t := &Tree{
		cfg:      cfg,
		leaves:   int(leaves),
		versions: make([]uint32, leaves),
		cacheGen: 1,
	}
	for l := t.leaves; l > 1; l >>= 1 {
		t.depth++
	}
	if t.depth > maxDepth {
		return nil, fmt.Errorf("hashtree: depth %d exceeds maximum %d", t.depth, maxDepth)
	}
	if cfg.CacheSize > 0 {
		if 2*t.leaves <= denseCacheNodes {
			t.cacheDig = make([]Digest, 2*t.leaves)
			t.cacheStamp = make([]uint32, 2*t.leaves)
		} else {
			t.cacheMap = make(map[int32]Digest, cfg.CacheSize)
		}
		t.fifo = make([]int32, cfg.CacheSize)
	}
	return t, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *Tree {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// LeafCount returns the number of leaves.
func (t *Tree) LeafCount() int { return t.leaves }

// Depth returns the number of levels above the leaves (0 for a single
// leaf).
func (t *Tree) Depth() int { return t.depth }

// Root returns the on-chip root digest.
func (t *Tree) Root() Digest { return t.root }

// Version returns the on-chip version (time stamp tag) of leaf idx.
func (t *Tree) Version(idx int) uint32 { return t.versions[idx] }

// CachedNodes returns how many verified digests the on-chip cache
// currently holds (diagnostics and tests).
func (t *Tree) CachedNodes() int { return t.fifoLen }

// OnChipBits returns the trusted state size for the area model: root plus
// version tags plus the verified-node cache.
func (t *Tree) OnChipBits() uint64 {
	return 128 + uint64(t.leaves)*32 + uint64(t.cfg.CacheSize)*(128+32)
}

// LeafIndex maps a protected address to its leaf index.
func (t *Tree) LeafIndex(addr uint32) (int, error) {
	if addr < t.cfg.DataBase || addr >= t.cfg.DataBase+t.cfg.DataSize {
		return 0, fmt.Errorf("hashtree: address %#x outside protected region", addr)
	}
	return int((addr - t.cfg.DataBase) / LeafSize), nil
}

// Node index scheme: heap order with the root at 1, children of n at 2n
// and 2n+1; leaves occupy [leaves, 2*leaves). Node n is stored at
// NodeBase + (n-1)*DigestSize.
func (t *Tree) nodeAddr(n int) uint32 {
	return t.cfg.NodeBase + uint32(n-1)*DigestSize
}

func (t *Tree) readNode(n int) Digest {
	var d Digest
	copy(d[:], t.cfg.Store.View(t.nodeAddr(n), DigestSize))
	return d
}

func (t *Tree) writeNode(n int, d Digest) {
	t.cfg.Store.Poke(t.nodeAddr(n), d[:])
}

// leafDigest recomputes the digest of leaf idx from external data and the
// on-chip address/version binding.
func (t *Tree) leafDigest(idx int) Digest {
	addr := t.cfg.DataBase + uint32(idx)*LeafSize
	return hashLeaf(t.cfg.Store.View(addr, LeafSize), addr, t.versions[idx])
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

// Build recomputes every node from the current data contents and installs
// the resulting root. Called once at boot after the LCF initializes the
// protected region.
func (t *Tree) Build() {
	t.cacheReset()
	for i := 0; i < t.leaves; i++ {
		t.writeNode(t.leaves+i, t.leafDigest(i))
	}
	for n := t.leaves - 1; n >= 1; n-- {
		t.writeNode(n, t.combine(2*n, 2*n+1))
	}
	t.root = t.readNode(1)
}

func (t *Tree) combine(left, right int) Digest {
	l, r := t.readNode(left), t.readNode(right)
	return hashNode(&l, &r)
}

// cacheReset empties the verified-node cache — by advancing the
// generation on the dense flavour, by clearing the map otherwise.
func (t *Tree) cacheReset() {
	t.fifoHead, t.fifoLen = 0, 0
	if t.cacheMap != nil {
		clear(t.cacheMap)
		return
	}
	t.cacheGen++
	if t.cacheGen == 0 { // generation wrapped: stale stamps could collide
		for i := range t.cacheStamp {
			t.cacheStamp[i] = 0
		}
		t.cacheGen = 1
	}
}

// cachePut installs a verified digest, evicting FIFO beyond CacheSize.
func (t *Tree) cachePut(n int, d Digest) {
	if t.cfg.CacheSize <= 0 {
		return
	}
	present := false
	if t.cacheMap != nil {
		_, present = t.cacheMap[int32(n)]
	} else {
		present = t.cacheStamp[n] == t.cacheGen
	}
	if !present {
		if t.fifoLen == t.cfg.CacheSize {
			victim := t.fifo[t.fifoHead]
			if t.cacheMap != nil {
				delete(t.cacheMap, victim)
			} else {
				t.cacheStamp[victim] = 0
			}
			t.fifoHead++
			if t.fifoHead == len(t.fifo) {
				t.fifoHead = 0
			}
			t.fifoLen--
		}
		tail := t.fifoHead + t.fifoLen
		if tail >= len(t.fifo) {
			tail -= len(t.fifo)
		}
		t.fifo[tail] = int32(n)
		t.fifoLen++
		if t.cacheMap == nil {
			t.cacheStamp[n] = t.cacheGen
		}
	}
	if t.cacheMap != nil {
		t.cacheMap[int32(n)] = d
	} else {
		t.cacheDig[n] = d
	}
}

// cacheGet returns the trusted digest for node n if present. The root is
// always "cached": it lives on-chip.
func (t *Tree) cacheGet(n int) (Digest, bool) {
	if n == 1 {
		return t.root, true
	}
	if t.cfg.CacheSize <= 0 {
		return Digest{}, false
	}
	if t.cacheMap != nil {
		d, ok := t.cacheMap[int32(n)]
		return d, ok
	}
	if t.cacheStamp[n] == t.cacheGen {
		return t.cacheDig[n], true
	}
	return Digest{}, false
}

// VerifyLeaf authenticates leaf idx against the on-chip root. It returns
// whether the leaf (and the path walked) is authentic and how many node
// hash computations were needed — the LCF converts that count into IC
// cycles.
func (t *Tree) VerifyLeaf(idx int) (ok bool, nodeChecks int) {
	if idx < 0 || idx >= t.leaves {
		return false, 0
	}
	d := t.leafDigest(idx)
	nodeChecks = 1
	t.NodeChecks++
	n := t.leaves + idx
	// Collect the walked nodes so they can be cache-installed on success.
	var verified [2*maxDepth + 2]pathStep
	verified[0] = pathStep{int32(n), d}
	cnt := 1
	for {
		if trusted, hit := t.cacheGet(n); hit {
			if trusted != d {
				return false, nodeChecks
			}
			if n != 1 {
				t.CacheHits++
			}
			for i := 0; i < cnt; i++ {
				t.cachePut(int(verified[i].node), verified[i].dig)
			}
			return true, nodeChecks
		}
		sib := n ^ 1
		sd := t.readNode(sib) // untrusted external read
		var parent Digest
		if n < sib { // n is the left child
			parent = hashNode(&d, &sd)
		} else {
			parent = hashNode(&sd, &d)
		}
		nodeChecks++
		t.NodeChecks++
		n >>= 1
		d = parent
		verified[cnt] = pathStep{int32(sib), sd}
		verified[cnt+1] = pathStep{int32(n), d}
		cnt += 2
	}
}

// UpdateLeaf re-authenticates the old contents of the path, bumps the
// leaf's version tag, recomputes the path and installs the new root. It
// must be called *after* the new data has been written to the store. It
// returns false when the pre-update verification fails (an attacker
// modified external state between accesses); the tree is left unchanged in
// that case. nodeOps counts hash computations for timing.
//
// Note the order: the LCF performs read-verify before accepting a write to
// a block it has not verified, so UpdateLeaf trusts the *sibling* path via
// the same verification walk, not the leaf data (which just changed). The
// sibling digests authenticated by that walk are reused directly when the
// path is rehashed — no second read of external memory for them.
func (t *Tree) UpdateLeaf(idx int) (ok bool, nodeOps int) {
	if idx < 0 || idx >= t.leaves {
		return false, 0
	}
	// Verify the sibling path using the stored leaf digest (pre-write
	// value is irrelevant; what matters is that the *siblings* we are
	// about to hash against are authentic). We walk with the stored leaf
	// node value.
	n := t.leaves + idx
	d := t.readNode(n)
	checks := 0
	var path [2*maxDepth + 2]pathStep
	path[0] = pathStep{int32(n), d}
	cnt := 1
	// sibs[l] is the authenticated sibling digest at level l of the walk,
	// reused by the rehash below instead of re-reading external memory.
	var sibs [maxDepth]Digest
	walked := 0
	for {
		if trusted, hit := t.cacheGet(n); hit {
			if trusted != d {
				return false, checks
			}
			break
		}
		sib := n ^ 1
		sd := t.readNode(sib)
		var parent Digest
		if n < sib {
			parent = hashNode(&d, &sd)
		} else {
			parent = hashNode(&sd, &d)
		}
		checks++
		t.NodeChecks++
		sibs[walked] = sd
		walked++
		n >>= 1
		d = parent
		path[cnt] = pathStep{int32(sib), sd}
		path[cnt+1] = pathStep{int32(n), d}
		cnt += 2
	}
	for i := 0; i < cnt; i++ {
		t.cachePut(int(path[i].node), path[i].dig)
	}

	// Authentic: bump version, rewrite the path bottom-up.
	t.versions[idx]++
	n = t.leaves + idx
	nd := t.leafDigest(idx)
	t.writeNode(n, nd)
	t.cachePut(n, nd)
	ops := checks + 1
	t.NodeUpdates++
	level := 0
	for n > 1 {
		sib := n ^ 1
		var sd Digest
		if level < walked {
			sd = sibs[level] // authenticated moments ago by the walk
		} else if trusted, hit := t.cacheGet(sib); hit {
			sd = trusted
		} else {
			// Known modeling limitation (pre-existing, tracked in
			// ROADMAP): above the walk's cache-hit break point an
			// uncached sibling is folded in from external memory
			// unauthenticated. Closing it means walking every update
			// to the root, which changes the modeled IC op counts —
			// a cycle-accounting change this host-speed path must not
			// make.
			sd = t.readNode(sib)
		}
		var parent Digest
		if n < sib {
			parent = hashNode(&nd, &sd)
		} else {
			parent = hashNode(&sd, &nd)
		}
		ops++
		t.NodeUpdates++
		n >>= 1
		level++
		nd = parent
		t.writeNode(n, nd)
		t.cachePut(n, nd)
	}
	t.root = nd
	return true, ops
}

// Diagnosis classifies why a leaf failed verification, so the LCF can
// attribute an alert to the right attack class.
type Diagnosis uint8

// Diagnosis values.
const (
	// DiagAuthentic: the leaf verifies; nothing to diagnose.
	DiagAuthentic Diagnosis = iota
	// DiagTamper: the external data no longer matches the stored leaf
	// digest for any plausible version — spoofed, relocated or corrupted
	// data.
	DiagTamper
	// DiagReplay: data and stored digest are internally consistent with a
	// *previous* version tag (or with the current one while the path is
	// stale) — a replayed memory image.
	DiagReplay
)

// String implements fmt.Stringer.
func (d Diagnosis) String() string {
	switch d {
	case DiagAuthentic:
		return "authentic"
	case DiagTamper:
		return "tamper"
	case DiagReplay:
		return "replay"
	default:
		return fmt.Sprintf("diagnosis(%d)", uint8(d))
	}
}

// diagnoseVersionWindow bounds how many historical version tags Diagnose
// tries when attributing a mismatch to a replay.
const diagnoseVersionWindow = 8

// Diagnose classifies a failed verification of leaf idx. It is a modeling
// aid for alert reporting (a hardware IC would simply flag the mismatch)
// and does not affect detection itself.
func (t *Tree) Diagnose(idx int) Diagnosis {
	if ok, _ := t.VerifyLeaf(idx); ok {
		return DiagAuthentic
	}
	stored := t.readNode(t.leaves + idx)
	if t.leafDigest(idx) == stored {
		// Data matches its stored digest at the current version, yet the
		// path to the root fails: stale internal nodes were replayed.
		return DiagReplay
	}
	// Try recent historical versions: a replayed image is consistent
	// under the version tag it was captured with.
	cur := t.versions[idx]
	saved := cur
	defer func() { t.versions[idx] = saved }()
	for back := uint32(1); back <= diagnoseVersionWindow && back <= cur; back++ {
		t.versions[idx] = cur - back
		if t.leafDigest(idx) == stored {
			return DiagReplay
		}
	}
	return DiagTamper
}

// VerifyAll walks every leaf (diagnostics / tests); it returns the index
// of the first corrupt leaf, or -1.
func (t *Tree) VerifyAll() int {
	for i := 0; i < t.leaves; i++ {
		if ok, _ := t.VerifyLeaf(i); !ok {
			return i
		}
	}
	return -1
}

// Equal reports whether two digests match (constant-time is irrelevant in
// a simulator; digests are fixed-size arrays, so this is plain equality).
func Equal(a, b Digest) bool { return a == b }
