package hashtree

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/sim"
)

// TestUpdateVerifyRandomLeavesProperty: after any sequence of legitimate
// data writes + UpdateLeaf calls, every leaf still verifies and the
// version counters match the update counts.
func TestUpdateVerifyRandomLeavesProperty(t *testing.T) {
	prop := func(seed uint64, opsRaw uint8) bool {
		st := mem.NewStore(0, 0x4000)
		tr := MustNew(Config{Store: st, DataBase: 0, DataSize: 32 * LeafSize,
			NodeBase: 0x2000, CacheSize: 8})
		tr.Build()
		rng := sim.NewRNG(seed)
		updates := make(map[int]uint32)
		ops := int(opsRaw%40) + 1
		for i := 0; i < ops; i++ {
			leaf := rng.Intn(32)
			var data [LeafSize]byte
			rng.Bytes(data[:])
			st.Poke(uint32(leaf)*LeafSize, data[:])
			if ok, _ := tr.UpdateLeaf(leaf); !ok {
				return false
			}
			updates[leaf]++
		}
		for i := 0; i < 32; i++ {
			if ok, _ := tr.VerifyLeaf(i); !ok {
				return false
			}
			if tr.Version(i) != updates[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestLargeTreeDepthAndCoverage builds a 256-leaf tree and exercises the
// extremes.
func TestLargeTreeDepthAndCoverage(t *testing.T) {
	st := mem.NewStore(0, 0x8000)
	tr := MustNew(Config{Store: st, DataBase: 0, DataSize: 256 * LeafSize,
		NodeBase: 0x4000, CacheSize: 16})
	for i := uint32(0); i < 256*LeafSize; i += 4 {
		st.WriteWord(i, i*2654435761)
	}
	tr.Build()
	if tr.Depth() != 8 {
		t.Fatalf("depth = %d, want 8", tr.Depth())
	}
	for _, leaf := range []int{0, 1, 127, 128, 254, 255} {
		if ok, checks := tr.VerifyLeaf(leaf); !ok || checks < 1 {
			t.Fatalf("leaf %d: ok=%v checks=%d", leaf, ok, checks)
		}
	}
	// Cold verify cost is depth+1 node computations.
	cold := MustNew(Config{Store: st, DataBase: 0, DataSize: 256 * LeafSize,
		NodeBase: 0x4000})
	cold.Build()
	if _, checks := cold.VerifyLeaf(200); checks != 9 {
		t.Fatalf("cold verify = %d checks, want 9", checks)
	}
}

// TestDiagnoseClassification pins the Diagnose outcomes for the three
// canonical cases.
func TestDiagnoseClassification(t *testing.T) {
	st := mem.NewStore(0, 0x4000)
	tr := MustNew(Config{Store: st, DataBase: 0, DataSize: 16 * LeafSize, NodeBase: 0x2000})
	tr.Build()
	if d := tr.Diagnose(0); d != DiagAuthentic {
		t.Fatalf("fresh leaf: %v", d)
	}
	// Replay: version bumped, stale image restored.
	snap := st.Snapshot()
	st.Poke(0, []byte{1})
	tr.UpdateLeaf(0)
	st.Restore(snap)
	if d := tr.Diagnose(0); d != DiagReplay {
		t.Fatalf("replayed image: %v, want replay", d)
	}
	// Tamper: data changed without a consistent digest anywhere.
	tr.Build()
	st.Poke(3, []byte{0xFF})
	if d := tr.Diagnose(0); d != DiagTamper {
		t.Fatalf("tampered data: %v, want tamper", d)
	}
}

func BenchmarkVerifyLeafCold(b *testing.B) {
	st := mem.NewStore(0, 0x10000)
	tr := MustNew(Config{Store: st, DataBase: 0, DataSize: 512 * LeafSize, NodeBase: 0x8000})
	tr.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.VerifyLeaf(i % 512)
	}
}

func BenchmarkVerifyLeafCached(b *testing.B) {
	st := mem.NewStore(0, 0x10000)
	tr := MustNew(Config{Store: st, DataBase: 0, DataSize: 512 * LeafSize,
		NodeBase: 0x8000, CacheSize: 1024})
	tr.Build()
	tr.VerifyLeaf(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.VerifyLeaf(7)
	}
}

func BenchmarkUpdateLeaf(b *testing.B) {
	st := mem.NewStore(0, 0x10000)
	tr := MustNew(Config{Store: st, DataBase: 0, DataSize: 512 * LeafSize,
		NodeBase: 0x8000, CacheSize: 64})
	tr.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.WriteWord(uint32(i%512)*LeafSize, uint32(i))
		tr.UpdateLeaf(i % 512)
	}
}
