package hashtree

import (
	"testing"

	"repro/internal/mem"
)

// TestVerifyLeafAllocFree pins 0 allocs/op on warm-cache verification —
// the IC's steady-state read path.
func TestVerifyLeafAllocFree(t *testing.T) {
	tr, _ := testTree(t, 64)
	tr.VerifyLeaf(5) // warm the path
	allocs := testing.AllocsPerRun(200, func() {
		if ok, _ := tr.VerifyLeaf(5); !ok {
			t.Fatal("verify failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm VerifyLeaf allocates %v per op, want 0", allocs)
	}
}

// TestVerifyLeafColdAllocFree pins 0 allocs/op even on full-path walks
// (cache disabled): the fixed path arrays and stack schedules mean cold
// verification costs hashing, never heap.
func TestVerifyLeafColdAllocFree(t *testing.T) {
	tr, _ := testTree(t, 0)
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		i++
		if ok, _ := tr.VerifyLeaf(i % 16); !ok {
			t.Fatal("verify failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("cold VerifyLeaf allocates %v per op, want 0", allocs)
	}
}

// TestUpdateLeafAllocFree pins 0 allocs/op on warm-cache updates — the
// IC's steady-state write path.
func TestUpdateLeafAllocFree(t *testing.T) {
	tr, st := testTree(t, 64)
	tr.VerifyLeaf(3)
	i := uint32(0)
	allocs := testing.AllocsPerRun(200, func() {
		i++
		st.WriteWord(0x4000_0000+3*LeafSize, i)
		if ok, _ := tr.UpdateLeaf(3); !ok {
			t.Fatal("update failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm UpdateLeaf allocates %v per op, want 0", allocs)
	}
}

// TestHashAllocFree: the general-purpose hash also runs entirely on the
// stack.
func TestHashAllocFree(t *testing.T) {
	data := make([]byte, 48)
	allocs := testing.AllocsPerRun(200, func() {
		Hash(data)
	})
	if allocs != 0 {
		t.Fatalf("Hash allocates %v per op, want 0", allocs)
	}
}

// TestMapCacheFlavourOnGiantTree: past denseCacheNodes the verified-node
// cache switches to the map flavour so host memory stays O(CacheSize);
// semantics (hits, eviction bound, tamper detection, reset) must match
// the dense flavour.
func TestMapCacheFlavourOnGiantTree(t *testing.T) {
	const leaves = denseCacheNodes // 2*leaves > denseCacheNodes -> map flavour
	st := mem.NewStore(0, leaves*LeafSize+NodesSize(leaves*LeafSize))
	tr := MustNew(Config{Store: st, DataBase: 0, DataSize: leaves * LeafSize,
		NodeBase: leaves * LeafSize, CacheSize: 8})
	if tr.cacheMap == nil || tr.cacheStamp != nil {
		t.Fatal("giant tree did not select the map cache flavour")
	}
	tr.Build()
	for _, leaf := range []int{0, 1, leaves / 2, leaves - 1} {
		if ok, _ := tr.VerifyLeaf(leaf); !ok {
			t.Fatalf("leaf %d failed", leaf)
		}
	}
	if tr.CachedNodes() > 8 || len(tr.cacheMap) != tr.CachedNodes() {
		t.Fatalf("cache occupancy %d (map %d), cap 8", tr.CachedNodes(), len(tr.cacheMap))
	}
	tr.VerifyLeaf(7)
	if _, checks := tr.VerifyLeaf(7); checks >= tr.Depth()+1 {
		t.Fatalf("warm verify cost %d, no cache effect", checks)
	}
	st.Poke(7*LeafSize, []byte{0xFF})
	if ok, _ := tr.VerifyLeaf(7); ok {
		t.Fatal("map-flavour cache masked tampering")
	}
	st.Poke(7*LeafSize, []byte{0x00})
	if ok, _ := tr.UpdateLeaf(7); !ok {
		t.Fatal("update failed")
	}
	tr.Build()
	if tr.CachedNodes() != 0 || len(tr.cacheMap) != 0 {
		t.Fatal("Build did not reset the map cache")
	}
}

// TestUpdateReusesVerifiedSiblings: the rehash after a warm update must
// not re-read external memory for siblings the pre-verify walk already
// authenticated — observable as the update making exactly one store write
// per path level plus the leaf, with no extra node reads changing counts.
func TestUpdateReusesVerifiedSiblings(t *testing.T) {
	st := mem.NewStore(0, 0x4000)
	tr := MustNew(Config{Store: st, DataBase: 0, DataSize: 16 * LeafSize, NodeBase: 0x2000})
	tr.Build()
	st.Poke(0, []byte{7})
	before := tr.NodeUpdates
	ok, ops := tr.UpdateLeaf(0)
	if !ok {
		t.Fatal("update failed")
	}
	// Cache disabled: the walk costs depth checks, the rehash depth+1
	// updates; ops is their sum and NodeUpdates advanced by depth+1.
	wantOps := tr.Depth() + tr.Depth() + 1
	if ops != wantOps {
		t.Fatalf("ops = %d, want %d", ops, wantOps)
	}
	if got := tr.NodeUpdates - before; got != uint64(tr.Depth()+1) {
		t.Fatalf("NodeUpdates advanced %d, want %d", got, tr.Depth()+1)
	}
	if bad := tr.VerifyAll(); bad != -1 {
		t.Fatalf("leaf %d fails after update", bad)
	}
}
