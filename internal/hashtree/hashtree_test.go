package hashtree

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/sim"
)

// testTree builds a small protected region: 16 leaves (512 B of data) with
// nodes shadowed behind the data in the same external store.
func testTree(t *testing.T, cacheSize int) (*Tree, *mem.Store) {
	t.Helper()
	st := mem.NewStore(0x4000_0000, 0x4000)
	cfg := Config{
		Store:     st,
		DataBase:  0x4000_0000,
		DataSize:  16 * LeafSize,
		NodeBase:  0x4000_1000,
		CacheSize: cacheSize,
	}
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fill data with a recognizable pattern before Build.
	for i := uint32(0); i < 16*LeafSize; i += 4 {
		st.WriteWord(0x4000_0000+i, 0xA0000000|i)
	}
	tr.Build()
	return tr, st
}

func TestHashDeterministicAndLengthBound(t *testing.T) {
	a := Hash([]byte("hello"), []byte("world"))
	b := Hash([]byte("helloworld"))
	if a != b {
		t.Fatal("Hash must depend only on concatenated bytes")
	}
	c := Hash([]byte("helloworl"), []byte("d"))
	if a != c {
		t.Fatal("split position changed the digest")
	}
	if Hash([]byte("helloworld")) == Hash([]byte("helloworld\x00")) {
		t.Fatal("length padding missing: trailing zero collides")
	}
	if Hash() == Hash([]byte{0}) {
		t.Fatal("empty vs single-zero collide")
	}
}

func TestCompressNotIdentity(t *testing.T) {
	var chain Digest
	var block [16]byte
	out := Compress(chain, block)
	if out == chain {
		t.Fatal("compress(0,0) returned chain unchanged")
	}
}

func TestBuildThenAllLeavesVerify(t *testing.T) {
	tr, _ := testTree(t, 0)
	if bad := tr.VerifyAll(); bad != -1 {
		t.Fatalf("fresh tree: leaf %d fails verification", bad)
	}
}

func TestDataTamperDetected(t *testing.T) {
	tr, st := testTree(t, 0)
	// Attacker flips one byte of protected data in external memory.
	b := st.Peek(0x4000_0042, 1)
	st.Poke(0x4000_0042, []byte{b[0] ^ 0x80})
	idx, _ := tr.LeafIndex(0x4000_0042)
	ok, _ := tr.VerifyLeaf(idx)
	if ok {
		t.Fatal("tampered data verified as authentic")
	}
	// Other leaves remain fine.
	if ok, _ := tr.VerifyLeaf(idx ^ 1); !ok {
		t.Fatal("untouched neighbour leaf failed")
	}
}

func TestNodeTamperDetected(t *testing.T) {
	tr, st := testTree(t, 0)
	// Attacker rewrites a stored leaf digest so it matches nothing.
	st.Poke(0x4000_1000+uint32(16)*DigestSize, make([]byte, DigestSize))
	// Leaf 0's own digest recomputes from data, so leaf 0 still passes or
	// fails purely on path consistency; its sibling subtree must fail.
	found := false
	for i := 0; i < tr.LeafCount(); i++ {
		if ok, _ := tr.VerifyLeaf(i); !ok {
			found = true
		}
	}
	if !found {
		t.Fatal("node tampering never detected")
	}
}

func TestReplayOfDataAndPathDetected(t *testing.T) {
	tr, st := testTree(t, 0)
	// Snapshot the whole external memory (data + nodes): the strongest
	// replay an external attacker can mount.
	snap := st.Snapshot()
	// Legitimate update via the LCF path: write new data, update tree.
	st.Poke(0x4000_0000, []byte{1, 2, 3, 4})
	if ok, _ := tr.UpdateLeaf(0); !ok {
		t.Fatal("legitimate update rejected")
	}
	if ok, _ := tr.VerifyLeaf(0); !ok {
		t.Fatal("fresh write fails verification")
	}
	// Attacker restores the old (internally consistent!) memory image.
	st.Restore(snap)
	ok, _ := tr.VerifyLeaf(0)
	if ok {
		t.Fatal("replayed stale memory accepted: anti-replay broken")
	}
}

func TestRelocationDetected(t *testing.T) {
	tr, st := testTree(t, 0)
	// Copy leaf 3's data (and stored digest) over leaf 5: a relocation
	// attack moving valid ciphertext to a different address.
	data := st.Peek(0x4000_0000+3*LeafSize, LeafSize)
	st.Poke(0x4000_0000+5*LeafSize, data)
	// Leaf i is heap node 16+i, stored at offset (16+i-1)*DigestSize.
	d := st.Peek(0x4000_1000+uint32(16+3-1)*DigestSize, DigestSize)
	st.Poke(0x4000_1000+uint32(16+5-1)*DigestSize, d)
	if ok, _ := tr.VerifyLeaf(5); ok {
		t.Fatal("relocated block accepted: address binding broken")
	}
}

func TestUpdateBumpsVersion(t *testing.T) {
	tr, st := testTree(t, 0)
	if tr.Version(2) != 0 {
		t.Fatalf("initial version = %d", tr.Version(2))
	}
	st.Poke(0x4000_0000+2*LeafSize, []byte{9, 9})
	if ok, _ := tr.UpdateLeaf(2); !ok {
		t.Fatal("update failed")
	}
	if tr.Version(2) != 1 {
		t.Fatalf("version after update = %d, want 1", tr.Version(2))
	}
	if ok, _ := tr.VerifyLeaf(2); !ok {
		t.Fatal("verify after update failed")
	}
}

func TestUpdateRefusedAfterTamper(t *testing.T) {
	tr, st := testTree(t, 0)
	// Attacker corrupts a sibling node; a subsequent write to the leaf
	// must refuse to fold the corrupt sibling into a new root.
	// Leaf 1 is heap node 17, stored at offset (17-1)*DigestSize.
	sibAddr := 0x4000_1000 + uint32(16+1-1)*DigestSize
	st.Poke(sibAddr, []byte{0xFF})
	st.Poke(0x4000_0000, []byte{5})
	rootBefore := tr.Root()
	ok, _ := tr.UpdateLeaf(0)
	if ok {
		t.Fatal("update accepted a corrupt path")
	}
	if tr.Root() != rootBefore {
		t.Fatal("failed update still modified the root")
	}
}

func TestRootChangesOnUpdate(t *testing.T) {
	tr, st := testTree(t, 0)
	before := tr.Root()
	st.Poke(0x4000_0000, []byte{0xAB})
	if ok, _ := tr.UpdateLeaf(0); !ok {
		t.Fatal("update failed")
	}
	if tr.Root() == before {
		t.Fatal("root unchanged after update")
	}
}

func TestVerifyCostDropsWithCache(t *testing.T) {
	trCold, _ := testTree(t, 0)
	_, coldChecks := trCold.VerifyLeaf(7)
	// depth(16 leaves)=4, so a cold verify needs 5 hash computations.
	if coldChecks != 5 {
		t.Fatalf("cold verify = %d node checks, want 5", coldChecks)
	}
	trWarm, _ := testTree(t, 64)
	trWarm.VerifyLeaf(7)
	_, warmChecks := trWarm.VerifyLeaf(7)
	if warmChecks >= coldChecks {
		t.Fatalf("warm verify = %d checks, not better than cold %d", warmChecks, coldChecks)
	}
	if trWarm.CacheHits == 0 {
		t.Fatal("cache recorded no hits")
	}
}

func TestCacheDoesNotMaskTampering(t *testing.T) {
	tr, st := testTree(t, 64)
	tr.VerifyLeaf(4) // warm the path
	b := st.Peek(0x4000_0000+4*LeafSize, 1)
	st.Poke(0x4000_0000+4*LeafSize, []byte{b[0] ^ 1})
	if ok, _ := tr.VerifyLeaf(4); ok {
		t.Fatal("cached path masked tampered data")
	}
}

func TestCacheEviction(t *testing.T) {
	tr, _ := testTree(t, 2) // tiny cache
	for i := 0; i < tr.LeafCount(); i++ {
		if ok, _ := tr.VerifyLeaf(i); !ok {
			t.Fatalf("leaf %d failed", i)
		}
	}
	if tr.CachedNodes() > 2 {
		t.Fatalf("cache grew to %d entries, cap 2", tr.CachedNodes())
	}
	// The stamp array must agree with the FIFO occupancy.
	valid := 0
	for _, s := range tr.cacheStamp {
		if s == tr.cacheGen {
			valid++
		}
	}
	if valid != tr.fifoLen {
		t.Fatalf("stamp count %d != fifo length %d", valid, tr.fifoLen)
	}
}

func TestSingleLeafTree(t *testing.T) {
	st := mem.NewStore(0, 256)
	tr := MustNew(Config{Store: st, DataBase: 0, DataSize: LeafSize, NodeBase: 128})
	tr.Build()
	if tr.Depth() != 0 || tr.LeafCount() != 1 {
		t.Fatalf("depth=%d leaves=%d", tr.Depth(), tr.LeafCount())
	}
	if ok, _ := tr.VerifyLeaf(0); !ok {
		t.Fatal("single leaf fails")
	}
	st.Poke(4, []byte{1})
	if ok, _ := tr.VerifyLeaf(0); ok {
		t.Fatal("single-leaf tamper missed")
	}
	st.Poke(4, []byte{0})
	if ok, _ := tr.UpdateLeaf(0); !ok {
		t.Fatal("single-leaf update failed")
	}
}

func TestConfigValidation(t *testing.T) {
	st := mem.NewStore(0, 0x4000)
	bad := []Config{
		{Store: nil, DataSize: LeafSize},
		{Store: st, DataBase: 0, DataSize: 0, NodeBase: 0x1000},
		{Store: st, DataBase: 0, DataSize: LeafSize + 1, NodeBase: 0x1000},
		{Store: st, DataBase: 0, DataSize: 3 * LeafSize, NodeBase: 0x1000},  // not pow2
		{Store: st, DataBase: 0x3FF0, DataSize: 16 * LeafSize, NodeBase: 0}, // data out of range
		{Store: st, DataBase: 0, DataSize: 16 * LeafSize, NodeBase: 0x3FF8}, // nodes out of range
		{Store: st, DataBase: 0, DataSize: 16 * LeafSize, NodeBase: 0x100},  // overlap
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestLeafIndexMapping(t *testing.T) {
	tr, _ := testTree(t, 0)
	if idx, err := tr.LeafIndex(0x4000_0000); err != nil || idx != 0 {
		t.Fatalf("LeafIndex(base) = %d,%v", idx, err)
	}
	if idx, err := tr.LeafIndex(0x4000_0000 + 5*LeafSize + 7); err != nil || idx != 5 {
		t.Fatalf("LeafIndex(mid leaf 5) = %d,%v", idx, err)
	}
	if _, err := tr.LeafIndex(0x4000_0000 + 16*LeafSize); err == nil {
		t.Fatal("address past region accepted")
	}
	if _, err := tr.LeafIndex(0x3FFF_FFFF); err == nil {
		t.Fatal("address before region accepted")
	}
}

func TestNodesSize(t *testing.T) {
	if got := NodesSize(16 * LeafSize); got != 31*DigestSize {
		t.Fatalf("NodesSize(16 leaves) = %d, want %d", got, 31*DigestSize)
	}
	if got := NodesSize(LeafSize); got != DigestSize {
		t.Fatalf("NodesSize(1 leaf) = %d, want %d", got, DigestSize)
	}
}

func TestAnySingleBitFlipDetectedProperty(t *testing.T) {
	tr, st := testTree(t, 8)
	rng := sim.NewRNG(2024)
	prop := func() bool {
		snap := st.Snapshot()
		defer func() {
			st.Restore(snap)
		}()
		// Flip one random bit anywhere in the protected data.
		off := uint32(rng.Intn(16 * LeafSize))
		bit := byte(1) << uint(rng.Intn(8))
		b := st.Peek(0x4000_0000+off, 1)
		st.Poke(0x4000_0000+off, []byte{b[0] ^ bit})
		idx, _ := tr.LeafIndex(0x4000_0000 + off)
		ok, _ := tr.VerifyLeaf(idx)
		return !ok
	}
	if err := quick.Check(func() bool { return prop() }, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestICThroughputMatchesPaper(t *testing.T) {
	// Table II: IC throughput 131 Mb/s at 100 MHz, 20-cycle latency.
	got := DefaultTiming.ThroughputMbps(100_000_000)
	if got < 128 || got > 134 {
		t.Fatalf("IC throughput = %.1f Mb/s, want ≈131 (Table II)", got)
	}
	if DefaultTiming.BlockCycles(1) != 20 {
		t.Fatalf("IC single check = %d cycles, want 20", DefaultTiming.BlockCycles(1))
	}
}

func TestOnChipBitsAccounting(t *testing.T) {
	tr, _ := testTree(t, 4)
	want := uint64(128 + 16*32 + 4*(128+32))
	if got := tr.OnChipBits(); got != want {
		t.Fatalf("OnChipBits = %d, want %d", got, want)
	}
}
