package hashtree

import (
	"testing"

	"repro/internal/mem"
)

// gapTree builds the smallest tree that exhibits the UpdateLeaf sibling
// gap: 8 leaves (depth 3, nodes 1..15 in heap order) and a 2-entry
// verified-node cache, so a single verification walk can leave exactly one
// upper-level ancestor trusted while its sibling has been FIFO-evicted.
func gapTree(t *testing.T) (*Tree, *mem.Store) {
	t.Helper()
	st := mem.NewStore(0x4000_0000, 0x1000)
	tr, err := New(Config{
		Store:     st,
		DataBase:  0x4000_0000,
		DataSize:  8 * LeafSize,
		NodeBase:  0x4000_0800,
		CacheSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 8*LeafSize; i += 4 {
		st.WriteWord(0x4000_0000+i, 0xC0000000|i)
	}
	tr.Build()
	return tr, st
}

// TestUpdateLeafForgedSiblingSubtree is the regression test for the known
// Integrity Core gap documented at the readNode fallback in
// (*Tree).UpdateLeaf and in ROADMAP.md: above the verification walk's
// cache-hit break point, an uncached sibling digest is folded into the new
// root straight from external (attacker-writable) memory, unauthenticated.
//
// The reproduction, concretely (8 leaves, cache capacity 2):
//
//  1. A benign verified read of leaf 4 walks nodes 12,13,6,7,3,2,1 and
//     cache-installs them in that order; FIFO capacity 2 keeps only
//     {2, root} — the victim path's top ancestor is trusted on-chip, its
//     sibling node 3 is not.
//  2. The attacker rewrites leaf 5's data in external memory and recomputes
//     the node-3 subtree (leaf digest 13, internal 6, subtree root 3) to
//     match. The hash is keyless and the version tags are observable (they
//     count writes), so every digest is attacker-computable. At this point
//     the forgery is still caught: VerifyLeaf(5) reaches the on-chip root
//     and fails.
//  3. A benign write + UpdateLeaf on unrelated leaf 0 walks 8->4, hits the
//     trusted node 2 and stops (walked=2 of depth 3). Rehashing the path,
//     level 2 needs sibling node 3: not in sibs[], not cached — so it is
//     read raw from external memory. The forged subtree digest is hashed
//     into the new root, and from then on the forged leaf 5 verifies as
//     authentic.
//
// The assertions below state the *fixed* behaviour (the forgery must never
// authenticate). They fail today — the benign update legitimizes the forged
// subtree — so the test is skipped until the fix lands. Closing the gap
// means walking every update to the root, which changes the modeled IC
// node-op counts (and hence golden cycle outputs), a calibration change
// that needs its own PR.
func TestUpdateLeafForgedSiblingSubtree(t *testing.T) {
	t.Skip("known IC gap (see ROADMAP.md and the readNode fallback in UpdateLeaf): " +
		"uncached sibling folded into the root unauthenticated; fix changes modeled IC op counts")

	tr, st := gapTree(t)

	// Step 1: benign verified read of leaf 4 seeds the cache with {2, root}.
	if ok, _ := tr.VerifyLeaf(4); !ok {
		t.Fatal("pristine leaf 4 failed verification")
	}
	if _, hit := tr.cacheGet(2); !hit {
		t.Fatal("precondition: victim-path ancestor node 2 must be cached")
	}
	if _, hit := tr.cacheGet(3); hit {
		t.Fatal("precondition: sibling node 3 must have been evicted")
	}

	// Step 2: forge leaf 5 and recompute its subtree consistently.
	leaf5 := tr.cfg.DataBase + 5*LeafSize
	forged := make([]byte, LeafSize)
	for i := range forged {
		forged[i] = byte(0xEE ^ i)
	}
	st.Poke(leaf5, forged)
	d13 := hashLeaf(st.View(leaf5, LeafSize), leaf5, tr.Version(5))
	st.Poke(tr.nodeAddr(13), d13[:])
	d12, d7 := tr.readNode(12), tr.readNode(7)
	d6 := hashNode(&d12, &d13)
	st.Poke(tr.nodeAddr(6), d6[:])
	d3 := hashNode(&d6, &d7)
	st.Poke(tr.nodeAddr(3), d3[:])

	if ok, _ := tr.VerifyLeaf(5); ok {
		t.Fatal("forged leaf 5 verified before the benign update: attack construction is wrong")
	}

	// Step 3: benign write + update on unrelated leaf 0.
	st.WriteWord(tr.cfg.DataBase, 0xBEEF)
	if ok, _ := tr.UpdateLeaf(0); !ok {
		// A fixed UpdateLeaf may instead refuse the update outright; that
		// also closes the gap.
		return
	}

	// Fixed behaviour: the forged subtree must still fail verification.
	if ok, _ := tr.VerifyLeaf(5); ok {
		t.Fatal("forged leaf 5 authenticates after a benign update on leaf 0: " +
			"UpdateLeaf folded the unauthenticated sibling node 3 into the root")
	}
}
