package bus_test

import (
	"testing"
	"testing/quick"

	"repro/internal/bus"
	"repro/internal/mem"
	"repro/internal/sim"
)

func newSystem(t *testing.T) (*sim.Engine, *bus.Bus, *mem.BRAM) {
	t.Helper()
	eng := sim.NewEngine(sim.DefaultFrequency)
	b := bus.New(eng, bus.Config{})
	ram := mem.NewBRAM("bram", 0x1000_0000, 0x1_0000)
	b.AddSlave(ram)
	return eng, b, ram
}

// submit issues tx and runs until completion, returning the completed tx.
func submit(t *testing.T, eng *sim.Engine, c bus.Conn, tx *bus.Transaction) *bus.Transaction {
	t.Helper()
	done := false
	c.Submit(tx, func(*bus.Transaction) { done = true })
	if _, ok := eng.RunUntil(func() bool { return done }, 100000); !ok {
		t.Fatalf("transaction %v @%#x never completed", tx.Op, tx.Addr)
	}
	return tx
}

func TestWriteThenReadWord(t *testing.T) {
	eng, b, _ := newSystem(t)
	m := b.NewMaster("cpu0")
	submit(t, eng, m, &bus.Transaction{Op: bus.Write, Addr: 0x1000_0010, Size: 4, Burst: 1, Data: []uint32{0xdeadbeef}})
	rd := submit(t, eng, m, &bus.Transaction{Op: bus.Read, Addr: 0x1000_0010, Size: 4, Burst: 1})
	if !rd.Resp.OK() {
		t.Fatalf("read resp = %v", rd.Resp)
	}
	if rd.Data[0] != 0xdeadbeef {
		t.Fatalf("read %#x, want 0xdeadbeef", rd.Data[0])
	}
}

func TestNarrowAccessByteLanes(t *testing.T) {
	eng, b, ram := newSystem(t)
	m := b.NewMaster("cpu0")
	submit(t, eng, m, &bus.Transaction{Op: bus.Write, Addr: 0x1000_0000, Size: 4, Burst: 1, Data: []uint32{0x11223344}})
	// Byte 1 of a little-endian word 0x11223344 is 0x33.
	rd := submit(t, eng, m, &bus.Transaction{Op: bus.Read, Addr: 0x1000_0001, Size: 1, Burst: 1})
	if rd.Data[0] != 0x33 {
		t.Fatalf("byte read = %#x, want 0x33", rd.Data[0])
	}
	// Halfword write into the upper lanes.
	submit(t, eng, m, &bus.Transaction{Op: bus.Write, Addr: 0x1000_0002, Size: 2, Burst: 1, Data: []uint32{0xaabb}})
	if got := ram.Store().ReadWord(0x1000_0000); got != 0xaabb3344 {
		t.Fatalf("word after halfword write = %#x, want 0xaabb3344", got)
	}
}

func TestBurstIncrementsAddress(t *testing.T) {
	eng, b, ram := newSystem(t)
	m := b.NewMaster("cpu0")
	wr := &bus.Transaction{Op: bus.Write, Addr: 0x1000_0100, Size: 4, Burst: 4,
		Data: []uint32{1, 2, 3, 4}}
	submit(t, eng, m, wr)
	for i := uint32(0); i < 4; i++ {
		if got := ram.Store().ReadWord(0x1000_0100 + 4*i); got != i+1 {
			t.Fatalf("beat %d = %d, want %d", i, got, i+1)
		}
	}
	rd := submit(t, eng, m, &bus.Transaction{Op: bus.Read, Addr: 0x1000_0100, Size: 4, Burst: 4})
	for i, v := range rd.Data {
		if v != uint32(i+1) {
			t.Fatalf("read beat %d = %d, want %d", i, v, i+1)
		}
	}
}

func TestDecodeErrOnUnmappedAddress(t *testing.T) {
	eng, b, _ := newSystem(t)
	m := b.NewMaster("cpu0")
	tx := submit(t, eng, m, &bus.Transaction{Op: bus.Read, Addr: 0x7000_0000, Size: 4, Burst: 1})
	if tx.Resp != bus.RespDecodeErr {
		t.Fatalf("resp = %v, want DECODE_ERR", tx.Resp)
	}
}

func TestDecodeErrOnRangeOverrun(t *testing.T) {
	eng, b, _ := newSystem(t)
	m := b.NewMaster("cpu0")
	// Burst starting in range but running past the end of the slave.
	tx := submit(t, eng, m, &bus.Transaction{Op: bus.Read, Addr: 0x1000_FFFC, Size: 4, Burst: 4})
	if tx.Resp != bus.RespDecodeErr {
		t.Fatalf("resp = %v, want DECODE_ERR for overrun", tx.Resp)
	}
}

func TestMalformedTransactionRejected(t *testing.T) {
	eng, b, _ := newSystem(t)
	m := b.NewMaster("cpu0")
	cases := []*bus.Transaction{
		{Op: bus.Read, Addr: 0x1000_0001, Size: 4, Burst: 1},                     // misaligned
		{Op: bus.Read, Addr: 0x1000_0000, Size: 3, Burst: 1},                     // bad width
		{Op: bus.Read, Addr: 0x1000_0000, Size: 4, Burst: 0},                     // no beats
		{Op: bus.Write, Addr: 0x1000_0000, Size: 4, Burst: 2, Data: []uint32{1}}, // short data
	}
	for i, tx := range cases {
		got := submit(t, eng, m, tx)
		if got.Resp != bus.RespSlaveErr {
			t.Errorf("case %d: resp = %v, want SLAVE_ERR", i, got.Resp)
		}
	}
}

func TestTransactionValidateWrap(t *testing.T) {
	tx := &bus.Transaction{Op: bus.Read, Addr: 0xFFFF_FFFC, Size: 4, Burst: 2}
	if err := tx.Validate(); err == nil {
		t.Fatal("address-space wrap not rejected")
	}
}

func TestBRAMTiming(t *testing.T) {
	eng, b, _ := newSystem(t)
	m := b.NewMaster("cpu0")
	tx := submit(t, eng, m, &bus.Transaction{Op: bus.Read, Addr: 0x1000_0000, Size: 4, Burst: 1})
	// arb(1) + addr(1) + wait(1) + 1 beat = 4 cycles of occupancy.
	if got := tx.Completed - tx.Started; got != 4 {
		t.Fatalf("single-beat BRAM read occupancy = %d, want 4", got)
	}
}

func TestDDRTimingFirstAccessDominates(t *testing.T) {
	eng := sim.NewEngine(sim.DefaultFrequency)
	b := bus.New(eng, bus.Config{})
	ddr := mem.NewDDR("ddr", 0x4000_0000, 1<<20)
	b.AddSlave(ddr)
	m := b.NewMaster("cpu0")
	one := submit(t, eng, m, &bus.Transaction{Op: bus.Read, Addr: 0x4000_0000, Size: 4, Burst: 1})
	// arb+addr+18 = 20
	if got := one.Completed - one.Started; got != 20 {
		t.Fatalf("1-beat DDR read = %d cycles, want 20", got)
	}
	four := submit(t, eng, m, &bus.Transaction{Op: bus.Read, Addr: 0x4000_0000, Size: 4, Burst: 4})
	// arb+addr+18+3*2 = 26
	if got := four.Completed - four.Started; got != 26 {
		t.Fatalf("4-beat DDR read = %d cycles, want 26", got)
	}
}

func TestBusSerializesMasters(t *testing.T) {
	eng, b, _ := newSystem(t)
	m0 := b.NewMaster("cpu0")
	m1 := b.NewMaster("cpu1")
	var t0, t1 *bus.Transaction
	done := 0
	t0 = &bus.Transaction{Op: bus.Write, Addr: 0x1000_0000, Size: 4, Burst: 1, Data: []uint32{1}}
	t1 = &bus.Transaction{Op: bus.Write, Addr: 0x1000_0004, Size: 4, Burst: 1, Data: []uint32{2}}
	m0.Submit(t0, func(*bus.Transaction) { done++ })
	m1.Submit(t1, func(*bus.Transaction) { done++ })
	eng.RunUntil(func() bool { return done == 2 }, 1000)
	// Occupancies must not overlap.
	if t0.Started < t1.Started {
		if t1.Started < t0.Completed {
			t.Fatalf("overlapping grants: t0 [%d,%d] t1 [%d,%d]", t0.Started, t0.Completed, t1.Started, t1.Completed)
		}
	} else if t0.Started < t1.Completed {
		t.Fatalf("overlapping grants: t0 [%d,%d] t1 [%d,%d]", t0.Started, t0.Completed, t1.Started, t1.Completed)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	eng, b, _ := newSystem(t)
	const n = 4
	ports := make([]*bus.MasterPort, n)
	for i := range ports {
		ports[i] = b.NewMaster("m")
	}
	counts := make([]int, n)
	// Keep every master's queue saturated; fair arbitration must grant
	// each master an equal share.
	for i := 0; i < n; i++ {
		for j := 0; j < 32; j++ {
			i := i
			ports[i].Submit(&bus.Transaction{Op: bus.Read, Addr: 0x1000_0000, Size: 4, Burst: 1},
				func(*bus.Transaction) { counts[i]++ })
		}
	}
	eng.Run(4 * 32 * 10)
	for i := 1; i < n; i++ {
		if counts[i] != counts[0] {
			t.Fatalf("unfair round-robin: counts = %v", counts)
		}
	}
	if counts[0] != 32 {
		t.Fatalf("expected all 32 transactions per master, got %v", counts)
	}
}

func TestFixedPriorityStarvation(t *testing.T) {
	eng := sim.NewEngine(sim.DefaultFrequency)
	b := bus.New(eng, bus.Config{Arbitration: bus.FixedPriority})
	ram := mem.NewBRAM("bram", 0x1000_0000, 0x1000)
	b.AddSlave(ram)
	hi := b.NewMaster("hi")
	lo := b.NewMaster("lo")
	hiDone, loDone := 0, 0
	// Saturate the high-priority master; the low one must wait for all
	// of them under fixed priority.
	for j := 0; j < 8; j++ {
		hi.Submit(&bus.Transaction{Op: bus.Read, Addr: 0x1000_0000, Size: 4, Burst: 1},
			func(*bus.Transaction) { hiDone++ })
	}
	var loTx bus.Transaction
	loTx = bus.Transaction{Op: bus.Read, Addr: 0x1000_0000, Size: 4, Burst: 1}
	lo.Submit(&loTx, func(*bus.Transaction) { loDone++ })
	eng.RunUntil(func() bool { return loDone == 1 }, 10000)
	if hiDone != 8 {
		t.Fatalf("low-priority master granted before high-priority queue drained (hiDone=%d)", hiDone)
	}
}

func TestExactlyOnceCompletion(t *testing.T) {
	eng, b, _ := newSystem(t)
	m := b.NewMaster("cpu0")
	calls := 0
	m.Submit(&bus.Transaction{Op: bus.Read, Addr: 0x1000_0000, Size: 4, Burst: 1},
		func(*bus.Transaction) { calls++ })
	eng.Run(1000)
	if calls != 1 {
		t.Fatalf("done callback ran %d times, want exactly once", calls)
	}
}

func TestOverlappingSlavesPanic(t *testing.T) {
	eng := sim.NewEngine(sim.DefaultFrequency)
	b := bus.New(eng, bus.Config{})
	b.AddSlave(mem.NewBRAM("a", 0x1000, 0x1000))
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping slave ranges not rejected")
		}
	}()
	b.AddSlave(mem.NewBRAM("b", 0x1800, 0x1000))
}

func TestDecodeFindsCorrectSlave(t *testing.T) {
	eng := sim.NewEngine(sim.DefaultFrequency)
	b := bus.New(eng, bus.Config{})
	a := mem.NewBRAM("a", 0x1000, 0x1000)
	c := mem.NewBRAM("c", 0x4000, 0x1000)
	b.AddSlave(c)
	b.AddSlave(a)
	cases := []struct {
		addr uint32
		want string
	}{
		{0x1000, "a"}, {0x1FFF, "a"}, {0x4000, "c"}, {0x4FFF, "c"},
	}
	for _, cse := range cases {
		s := b.Decode(cse.addr)
		if s == nil || s.Name() != cse.want {
			t.Errorf("Decode(%#x) = %v, want %s", cse.addr, s, cse.want)
		}
	}
	for _, bad := range []uint32{0x0, 0xFFF, 0x2000, 0x3FFF, 0x5000} {
		if s := b.Decode(bad); s != nil {
			t.Errorf("Decode(%#x) = %s, want nil", bad, s.Name())
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	eng, b, _ := newSystem(t)
	m := b.NewMaster("cpu0")
	submit(t, eng, m, &bus.Transaction{Op: bus.Write, Addr: 0x1000_0000, Size: 4, Burst: 2, Data: []uint32{1, 2}})
	submit(t, eng, m, &bus.Transaction{Op: bus.Read, Addr: 0x7000_0000, Size: 4, Burst: 1})
	s := b.Stats()
	if s.Completed != 2 {
		t.Fatalf("Completed = %d, want 2", s.Completed)
	}
	if s.DecodeErrs != 1 {
		t.Fatalf("DecodeErrs = %d, want 1", s.DecodeErrs)
	}
	if s.BitsMoved != 64 {
		t.Fatalf("BitsMoved = %d, want 64", s.BitsMoved)
	}
	if s.BusyCycles == 0 {
		t.Fatal("BusyCycles = 0")
	}
	if s.PerMaster[0] != 2 {
		t.Fatalf("PerMaster[0] = %d, want 2", s.PerMaster[0])
	}
}

func TestBusWriteReadRoundTripProperty(t *testing.T) {
	eng, b, _ := newSystem(t)
	m := b.NewMaster("cpu0")
	prop := func(off uint16, v uint32) bool {
		addr := 0x1000_0000 + uint32(off&^3)
		submit(t, eng, m, &bus.Transaction{Op: bus.Write, Addr: addr, Size: 4, Burst: 1, Data: []uint32{v}})
		rd := submit(t, eng, m, &bus.Transaction{Op: bus.Read, Addr: addr, Size: 4, Burst: 1})
		return rd.Data[0] == v
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOpAndRespStrings(t *testing.T) {
	if bus.Read.String() != "read" || bus.Write.String() != "write" {
		t.Fatal("Op.String mismatch")
	}
	for r, want := range map[bus.Resp]string{
		bus.RespOK: "OK", bus.RespDecodeErr: "DECODE_ERR",
		bus.RespSlaveErr: "SLAVE_ERR", bus.RespSecurityErr: "SECURITY_ERR",
	} {
		if r.String() != want {
			t.Errorf("Resp(%d).String() = %q, want %q", r, r.String(), want)
		}
	}
}
