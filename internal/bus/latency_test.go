package bus_test

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/mem"
	"repro/internal/sim"
)

// TestSubmitPreservesCallerIssued: a transaction entering the port with a
// non-zero Issued (stamped by an upstream interface such as a master-side
// firewall) must keep that origin, while wait accounting still measures
// time queued at the port.
func TestSubmitPreservesCallerIssued(t *testing.T) {
	eng := sim.NewEngine(sim.DefaultFrequency)
	b := bus.New(eng, bus.Config{})
	b.AddSlave(mem.NewBRAM("bram", 0x1000_0000, 0x1000))
	m := b.NewMaster("m0")

	eng.Run(20) // move the clock so stamps are distinguishable

	tx := &bus.Transaction{Op: bus.Read, Addr: 0x1000_0000, Size: 4, Burst: 1, Issued: 5}
	done := false
	m.Submit(tx, func(*bus.Transaction) { done = true })
	if _, ok := eng.RunUntil(func() bool { return done }, 1000); !ok {
		t.Fatal("transaction did not complete")
	}
	if tx.Issued != 5 {
		t.Fatalf("Issued overwritten to %d, want caller-set 5 preserved", tx.Issued)
	}
	// WaitCycles must be based on the port-entry cycle (20), not the
	// upstream Issued stamp, or contention stats would absorb upstream
	// latency.
	if w := b.Stats().WaitCycles; w > 5 {
		t.Fatalf("WaitCycles = %d; includes upstream latency (queued at cycle 20, Issued 5)", w)
	}
}

// TestSubmitStampsZeroIssued: a fresh transaction still gets its Issued
// stamped at submission.
func TestSubmitStampsZeroIssued(t *testing.T) {
	eng := sim.NewEngine(sim.DefaultFrequency)
	b := bus.New(eng, bus.Config{})
	b.AddSlave(mem.NewBRAM("bram", 0x1000_0000, 0x1000))
	m := b.NewMaster("m0")

	eng.Run(7)
	tx := &bus.Transaction{Op: bus.Read, Addr: 0x1000_0000, Size: 4, Burst: 1}
	done := false
	m.Submit(tx, func(*bus.Transaction) { done = true })
	if _, ok := eng.RunUntil(func() bool { return done }, 1000); !ok {
		t.Fatal("transaction did not complete")
	}
	if tx.Issued != 7 {
		t.Fatalf("Issued = %d, want 7 (submission cycle)", tx.Issued)
	}
	if tx.Completed <= tx.Issued {
		t.Fatalf("Completed %d <= Issued %d", tx.Completed, tx.Issued)
	}
}

// TestTransactionReuseAfterCompletion: reusing one Transaction value for
// consecutive transfers (as the CPU and DMA hot paths do) must behave like
// fresh allocations once the timestamps are reset.
func TestTransactionReuseAfterCompletion(t *testing.T) {
	eng := sim.NewEngine(sim.DefaultFrequency)
	b := bus.New(eng, bus.Config{})
	bram := mem.NewBRAM("bram", 0x1000_0000, 0x1000)
	b.AddSlave(bram)
	m := b.NewMaster("m0")

	bram.Store().WriteWord(0x1000_0010, 0xDEAD_BEEF)
	bram.Store().WriteWord(0x1000_0020, 0xCAFE_F00D)

	var tx bus.Transaction
	var data [1]uint32
	read := func(addr uint32) uint32 {
		tx = bus.Transaction{Op: bus.Read, Addr: addr, Size: 4, Burst: 1, Data: data[:1]}
		done := false
		m.Submit(&tx, func(*bus.Transaction) { done = true })
		if _, ok := eng.RunUntil(func() bool { return done }, 1000); !ok {
			t.Fatalf("read %#x did not complete", addr)
		}
		if !tx.Resp.OK() {
			t.Fatalf("read %#x failed: %v", addr, tx.Resp)
		}
		return tx.Data[0]
	}
	if got := read(0x1000_0010); got != 0xDEAD_BEEF {
		t.Fatalf("first read = %#x, want 0xDEADBEEF", got)
	}
	first := tx.Issued
	if got := read(0x1000_0020); got != 0xCAFE_F00D {
		t.Fatalf("second read = %#x, want 0xCAFEF00D", got)
	}
	if tx.Issued <= first {
		t.Fatalf("reused transaction kept stale Issued %d (first %d)", tx.Issued, first)
	}
}
