package bus

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Arbitration selects how the bus picks among masters with pending
// requests.
type Arbitration uint8

const (
	// RoundRobin rotates priority starting after the last granted
	// master (the default; fair under contention).
	RoundRobin Arbitration = iota
	// FixedPriority always favors the lowest-numbered master.
	FixedPriority
)

// Config parameterizes a Bus.
type Config struct {
	// Name appears in diagnostics.
	Name string
	// Arbitration policy; RoundRobin by default.
	Arbitration Arbitration
	// ArbCycles and AddrCycles are the per-transaction protocol overhead
	// (one cycle each by default, matching the PLB-style model in
	// DESIGN.md §5).
	ArbCycles  uint64
	AddrCycles uint64
	// DecodeErrCycles is the occupancy of an address-decode miss.
	DecodeErrCycles uint64
}

// Stats aggregates bus activity for the benchmark harness. The JSON form
// feeds the sweep pipeline's per-run bus breakdown.
type Stats struct {
	// Transactions completed, split by response class.
	Completed   uint64 `json:"completed"`
	DecodeErrs  uint64 `json:"decode_errs,omitempty"`
	SlaveErrs   uint64 `json:"slave_errs,omitempty"`
	SecurityErr uint64 `json:"security_errs,omitempty"`
	// BusyCycles is the number of cycles the bus was occupied.
	BusyCycles uint64 `json:"busy_cycles"`
	// WaitCycles sums, over all transactions, cycles spent queued before
	// grant (the contention signal used by experiment E3).
	WaitCycles uint64 `json:"wait_cycles"`
	// BitsMoved counts payload bits of successful transfers.
	BitsMoved uint64 `json:"bits_moved"`
	// PerMaster counts completed transactions per master index (creation
	// order: see Bus.NewMaster).
	PerMaster []uint64 `json:"per_master"`
}

// Utilization returns busy cycles divided by total cycles.
func (s *Stats) Utilization(totalCycles uint64) float64 {
	if totalCycles == 0 {
		return 0
	}
	return float64(s.BusyCycles) / float64(totalCycles)
}

// Bus is the shared system interconnect. It is a sim.Ticker: each cycle it
// arbitrates at most one pending transaction if idle. Create with New, add
// slaves with AddSlave, create master ports with NewMaster, then register
// on the engine (New does this automatically).
type Bus struct {
	eng  *sim.Engine
	cfg  Config
	name string

	slaves  []Slave // sorted by base address
	masters []*MasterPort

	busyUntil uint64
	lastGrant int // round-robin pointer
	nextID    uint64
	waiting   int // queued transactions across all masters

	stats Stats
}

// New creates a bus, registers it as a ticker on eng, and returns it.
func New(eng *sim.Engine, cfg Config) *Bus {
	if cfg.Name == "" {
		cfg.Name = "sysbus"
	}
	if cfg.ArbCycles == 0 {
		cfg.ArbCycles = 1
	}
	if cfg.AddrCycles == 0 {
		cfg.AddrCycles = 1
	}
	if cfg.DecodeErrCycles == 0 {
		cfg.DecodeErrCycles = 2
	}
	b := &Bus{eng: eng, cfg: cfg, name: cfg.Name, lastGrant: -1}
	eng.AddTicker(b)
	return b
}

// Name returns the bus name.
func (b *Bus) Name() string { return b.name }

// Engine returns the simulation engine the bus runs on.
func (b *Bus) Engine() *sim.Engine { return b.eng }

// Stats returns a snapshot of accumulated bus statistics.
func (b *Bus) Stats() Stats {
	s := b.stats
	s.PerMaster = append([]uint64(nil), b.stats.PerMaster...)
	return s
}

// AddSlave attaches a memory-mapped slave. Overlapping address ranges are
// a wiring bug and panic immediately.
func (b *Bus) AddSlave(s Slave) {
	if s.Size() == 0 {
		panic(fmt.Sprintf("bus: slave %q has zero-size range", s.Name()))
	}
	for _, old := range b.slaves {
		lo, hi := uint64(s.Base()), uint64(s.Base())+uint64(s.Size())
		olo, ohi := uint64(old.Base()), uint64(old.Base())+uint64(old.Size())
		if lo < ohi && olo < hi {
			panic(fmt.Sprintf("bus: slave %q [%#x,%#x) overlaps %q [%#x,%#x)",
				s.Name(), lo, hi, old.Name(), olo, ohi))
		}
	}
	b.slaves = append(b.slaves, s)
	sort.Slice(b.slaves, func(i, j int) bool { return b.slaves[i].Base() < b.slaves[j].Base() })
}

// Slaves returns the attached slaves in address order.
func (b *Bus) Slaves() []Slave { return append([]Slave(nil), b.slaves...) }

// Decode returns the slave mapped at addr, or nil.
func (b *Bus) Decode(addr uint32) Slave {
	i := sort.Search(len(b.slaves), func(i int) bool {
		return uint64(b.slaves[i].Base())+uint64(b.slaves[i].Size()) > uint64(addr)
	})
	if i < len(b.slaves) && addr >= b.slaves[i].Base() {
		return b.slaves[i]
	}
	return nil
}

// MasterPort is a master's attachment point to the bus. It implements
// Conn; a Local Firewall wraps it to form a secured attachment.
type MasterPort struct {
	bus   *Bus
	index int
	name  string
	queue []*Transaction
}

// NewMaster creates a named master port. Ports arbitrate in creation order
// under FixedPriority.
func (b *Bus) NewMaster(name string) *MasterPort {
	p := &MasterPort{bus: b, index: len(b.masters), name: name}
	b.masters = append(b.masters, p)
	b.stats.PerMaster = append(b.stats.PerMaster, 0)
	return p
}

// Name returns the port name.
func (p *MasterPort) Name() string { return p.name }

// Index returns the arbitration index of the port.
func (p *MasterPort) Index() int { return p.index }

// Pending returns the number of queued, not-yet-granted transactions.
func (p *MasterPort) Pending() int { return len(p.queue) }

// Submit queues a transaction for arbitration. Malformed transactions
// complete immediately (same cycle) with RespSlaveErr rather than
// panicking: on real hardware a malformed request gets an error response,
// and attack models rely on that behaviour.
func (p *MasterPort) Submit(tx *Transaction, done func(*Transaction)) {
	tx.done = done
	tx.queued = p.bus.eng.Now()
	// No-op when an upstream interface (master-side firewall, SEI)
	// already owns the end-to-end origin.
	tx.StampIssued(tx.queued)
	if tx.Master == "" {
		tx.Master = p.name
	}
	tx.ID = p.bus.nextID
	p.bus.nextID++
	if err := tx.Validate(); err != nil {
		tx.Resp = RespSlaveErr
		p.bus.complete(tx, 0)
		return
	}
	if tx.Op == Read && len(tx.Data) < tx.Burst {
		if cap(tx.Data) >= tx.Burst {
			tx.Data = tx.Data[:tx.Burst]
		} else {
			tx.Data = make([]uint32, tx.Burst)
		}
	}
	p.queue = append(p.queue, tx)
	p.bus.waiting++
}

// Tick implements sim.Ticker: grant at most one transaction per cycle when
// idle.
func (b *Bus) Tick(now uint64) {
	if now < b.busyUntil {
		return
	}
	m := b.pick()
	if m == nil {
		return
	}
	tx := m.queue[0]
	copy(m.queue, m.queue[1:])
	m.queue[len(m.queue)-1] = nil
	m.queue = m.queue[:len(m.queue)-1]
	b.waiting--
	b.lastGrant = m.index

	tx.Started = now
	b.stats.WaitCycles += now - tx.queued

	var cycles uint64
	var resp Resp
	if s := b.Decode(tx.Addr); s == nil || !Contains(s, tx.Addr, uint32(tx.Size)*uint32(tx.Burst)) {
		cycles, resp = b.cfg.DecodeErrCycles, RespDecodeErr
	} else {
		cycles, resp = s.Access(now, tx)
	}
	tx.Resp = resp

	total := b.cfg.ArbCycles + b.cfg.AddrCycles + cycles
	if total < 1 {
		total = 1
	}
	b.busyUntil = now + total
	b.stats.BusyCycles += total
	b.stats.PerMaster[m.index]++
	b.complete(tx, total)
}

// pick selects the next master with pending work according to the
// arbitration policy.
func (b *Bus) pick() *MasterPort {
	n := len(b.masters)
	if b.waiting == 0 || n == 0 {
		return nil
	}
	start := 0
	if b.cfg.Arbitration == RoundRobin {
		start = (b.lastGrant + 1) % n
	}
	for i := 0; i < n; i++ {
		m := b.masters[(start+i)%n]
		if len(m.queue) > 0 {
			return m
		}
	}
	return nil
}

// complete schedules the completion event delay cycles from now. The event
// callback is the package-level finishTx bound to the transaction itself
// (via its owner back-pointer), so completion costs no closure allocation.
func (b *Bus) complete(tx *Transaction, delay uint64) {
	tx.owner = b
	b.eng.ScheduleArg(delay, finishTx, tx)
}

// finishTx folds a completed transaction into statistics and delivers the
// done callback.
func finishTx(now uint64, arg any) {
	tx := arg.(*Transaction)
	b := tx.owner
	tx.owner = nil
	tx.Completed = now
	b.stats.Completed++
	switch tx.Resp {
	case RespOK:
		b.stats.BitsMoved += tx.Bits()
	case RespDecodeErr:
		b.stats.DecodeErrs++
	case RespSlaveErr:
		b.stats.SlaveErrs++
	case RespSecurityErr:
		b.stats.SecurityErr++
	}
	if tx.done != nil {
		tx.done(tx)
	}
}
