// Package bus models the shared system bus of the paper's MPSoC platform
// (a PLB-style bus on the ML605 case study): multiple masters, an arbiter,
// an address decoder, and memory-mapped slaves.
//
// Timing model: every transaction occupies the bus exclusively for
//
//	arbitration (1 cycle) + address phase (1 cycle) + slave cycles
//
// where the slave reports its own occupancy (wait states plus one cycle per
// data beat). Masters submit transactions through a Conn; completion is
// delivered by callback at the completion cycle. Security interfaces (the
// paper's Local Firewalls) wrap a Conn on the master side or a Slave on the
// memory side, which is exactly where the paper places them: between the IP
// and the communication architecture.
package bus

import "fmt"

// Op is the direction of a transaction.
type Op uint8

const (
	// Read transfers data from a slave to the master.
	Read Op = iota
	// Write transfers data from the master to a slave.
	Write
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Resp is the completion status of a transaction.
type Resp uint8

const (
	// RespOK indicates a successful transfer.
	RespOK Resp = iota
	// RespDecodeErr indicates no slave is mapped at the address.
	RespDecodeErr
	// RespSlaveErr indicates the slave failed the access (bad offset,
	// unsupported width, internal error).
	RespSlaveErr
	// RespSecurityErr indicates a firewall discarded the transfer. For a
	// master-side firewall the transaction never reached the bus.
	RespSecurityErr
)

// String implements fmt.Stringer.
func (r Resp) String() string {
	switch r {
	case RespOK:
		return "OK"
	case RespDecodeErr:
		return "DECODE_ERR"
	case RespSlaveErr:
		return "SLAVE_ERR"
	case RespSecurityErr:
		return "SECURITY_ERR"
	default:
		return fmt.Sprintf("resp(%d)", uint8(r))
	}
}

// OK reports whether the transaction succeeded.
func (r Resp) OK() bool { return r == RespOK }

// Transaction is one bus transfer: a single beat or an incrementing burst.
// Data is carried as 32-bit words; for narrow accesses (Size < 4) the value
// travels in the low bits of the word and the address selects the byte
// lane, as on a real 32-bit bus.
type Transaction struct {
	// ID is a bus-assigned unique identifier (diagnostics only).
	ID uint64
	// Master names the issuing IP. Firewalls report it as firewall_id in
	// alerts, mirroring Figure 1 of the paper.
	Master string
	// Thread is the software context the access runs under (the paper's
	// future-work "thread-specific security": cores tag bus traffic with
	// their THREADID CSR, and policies may restrict by it). Zero is the
	// boot/default context.
	Thread uint32
	// Op is Read or Write.
	Op Op
	// Addr is the byte address of the first beat. It must be aligned to
	// Size.
	Addr uint32
	// Size is the access width in bytes: 1, 2 or 4.
	Size int
	// Burst is the number of beats (>= 1). Beat i addresses
	// Addr + i*Size.
	Burst int
	// Data holds one word per beat: write data on submission, read data
	// on completion.
	Data []uint32
	// Resp is the completion status, valid once the done callback runs.
	Resp Resp

	// Issued, Started and Completed are cycle timestamps recorded by the
	// bus (submission, grant, completion). Issued is stamped once, by the
	// first interface the transfer enters (e.g. a master-side firewall
	// ahead of the bus port), so it is the end-to-end latency origin.
	// When reusing a Transaction, reset the whole struct value (as the
	// CPU and DMA hot paths do) — zeroing Issued alone does not clear
	// the internal stamped flag.
	Issued    uint64
	Started   uint64
	Completed uint64

	done      func(*Transaction)
	queued    uint64 // cycle the transaction entered the port queue (WaitCycles)
	owner     *Bus   // set on submission; lets completion run closure-free
	issuedSet bool   // Issued recorded (distinguishes a real cycle-0 origin)
}

// StampIssued records cycle as the transaction's end-to-end origin unless
// one exists already — recorded by an earlier interface via StampIssued,
// or preset by the caller as a non-zero Issued. Cycle 0 is a valid origin:
// the internal flag disambiguates it from an unset zero value.
func (t *Transaction) StampIssued(cycle uint64) {
	if t.issuedSet || t.Issued != 0 {
		return
	}
	t.Issued = cycle
	t.issuedSet = true
}

// Bits returns the number of payload bits the transaction moves.
func (t *Transaction) Bits() uint64 {
	return uint64(t.Size) * 8 * uint64(t.Burst)
}

// End returns the first byte address past the transfer.
func (t *Transaction) End() uint32 {
	return t.Addr + uint32(t.Size)*uint32(t.Burst)
}

// Validate checks structural invariants (width, alignment, beat count,
// data length) and returns a descriptive error for malformed transactions.
func (t *Transaction) Validate() error {
	switch t.Size {
	case 1, 2, 4:
	default:
		return fmt.Errorf("bus: invalid size %d (want 1, 2 or 4)", t.Size)
	}
	if t.Addr%uint32(t.Size) != 0 {
		return fmt.Errorf("bus: address %#x not aligned to size %d", t.Addr, t.Size)
	}
	if t.Burst < 1 {
		return fmt.Errorf("bus: burst %d < 1", t.Burst)
	}
	if t.Op == Write && len(t.Data) < t.Burst {
		return fmt.Errorf("bus: write with %d data words for %d beats", len(t.Data), t.Burst)
	}
	if uint64(t.Addr)+uint64(t.Size)*uint64(t.Burst) > 1<<32 {
		return fmt.Errorf("bus: transfer wraps the 32-bit address space")
	}
	return nil
}

// Conn is anything a master can submit transactions to: a raw bus master
// port, or a Local Firewall wrapping one. done fires exactly once, at the
// completion cycle, with tx.Resp and (for reads) tx.Data filled in.
type Conn interface {
	Submit(tx *Transaction, done func(*Transaction))
}

// Slave is a memory-mapped bus target. Access performs the data transfer
// functionally and returns the number of cycles the slave occupies the bus
// (wait states plus data beats). The bus guarantees Access is called only
// for addresses inside [Base, Base+Size).
type Slave interface {
	Name() string
	Base() uint32
	Size() uint32
	Access(now uint64, tx *Transaction) (cycles uint64, resp Resp)
}

// Contains reports whether the address range of s covers [addr, addr+n).
func Contains(s Slave, addr uint32, n uint32) bool {
	return addr >= s.Base() && uint64(addr)+uint64(n) <= uint64(s.Base())+uint64(s.Size())
}
