package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/campaign"
	"repro/internal/spec"
	"repro/internal/sweep"
)

// campaignSpecJSON is a small but real campaign: 2 scenarios x 2
// protections x 1 core count x 2 backgrounds = 8 runs.
func campaignSpecJSON(t *testing.T) []byte {
	t.Helper()
	data, err := spec.NewCampaign(spec.CampaignSpec{
		Scenarios:   []string{"tamper", "zone-escape"},
		Protections: []string{"unprotected", "distributed"},
		Cores:       []int{3},
		Backgrounds: []string{"none", "stream"},
		Accesses:    8,
		InjectDelay: 50,
		MaxCycles:   300_000,
	}).JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// sweepSpecJSON is a benign sweep grid of 24 cheap runs.
func sweepSpecJSON(t *testing.T) []byte {
	t.Helper()
	data, err := spec.NewSweep(spec.SweepSpec{
		Protections: []string{"unprotected", "distributed"},
		Workloads:   []string{"stream", "memcopy", "scrub"},
		Targets:     []string{"internal", "external"},
		Cores:       []int{1, 2},
		Accesses:    8,
		MaxCycles:   100_000,
	}).JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// submit POSTs a spec and returns the created job's status.
func submit(t *testing.T, ts *httptest.Server, body []byte, query string) Status {
	t.Helper()
	resp, err := http.Post(ts.URL+"/api/v1/jobs"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, msg)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, msg)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// streamAll claims a job's stream and returns the full JSONL body.
func streamAll(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream: status %d: %s", resp.StatusCode, msg)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content-type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestStreamMatchesDirectRun is the service's core contract: an
// HTTP-submitted campaign streams byte-identical JSONL to a direct
// in-process run of the same spec, across worker counts.
func TestStreamMatchesDirectRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 8})
	body := campaignSpecJSON(t)

	stOne := submit(t, ts, body, "?workers=1")
	one := streamAll(t, ts, stOne.ID)
	many := streamAll(t, ts, submit(t, ts, body, "?workers=7").ID)
	if !bytes.Equal(one, many) {
		t.Fatal("stream bytes differ across worker counts")
	}

	sp, err := spec.Parse(body)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := sp.Campaign.Grid()
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if err := campaign.WriteJSONL(&direct, grid, sweep.Shard{}, 3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one, direct.Bytes()) {
		t.Fatal("HTTP stream differs from direct campaign.WriteJSONL with the same spec")
	}

	// The job is terminal and fully accounted, and the listing shows both
	// submissions in order.
	var st Status
	getJSON(t, ts.URL+"/api/v1/jobs/"+stOne.ID, &st)
	if st.State != StateDone || st.Records != uint64(len(grid)) {
		t.Fatalf("after stream: state=%s records=%d, want done/%d", st.State, st.Records, len(grid))
	}
	var list []Status
	getJSON(t, ts.URL+"/api/v1/jobs", &list)
	if len(list) != 2 || list[0].ID != stOne.ID {
		t.Fatalf("job listing = %+v, want 2 jobs led by %s", list, stOne.ID)
	}
}

// TestShardedStreamsMerge: two shard jobs cover the grid; their streams
// concatenate (via sweep.Merge semantics — here just index interleave)
// to the unsharded stream.
func TestShardedStreamsMerge(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	body := sweepSpecJSON(t)

	whole := streamAll(t, ts, submit(t, ts, body, "").ID)
	s0 := streamAll(t, ts, submit(t, ts, body, "?shard=0/2").ID)
	s1 := streamAll(t, ts, submit(t, ts, body, "?shard=1/2").ID)

	var merged bytes.Buffer
	if err := sweep.Merge(&merged, bytes.NewReader(s0), bytes.NewReader(s1)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(whole, merged.Bytes()) {
		t.Fatal("merged shard streams differ from the unsharded stream")
	}
}

// TestAggregatesMatchOfflineRecompute: the /aggregates snapshot equals a
// byte-for-byte recomputation over the job's own JSONL stream — the
// acceptance gate's contract.
func TestAggregatesMatchOfflineRecompute(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	st := submit(t, ts, campaignSpecJSON(t), "")
	stream := streamAll(t, ts, st.ID)

	var offline agg.Campaign
	sc := bufio.NewScanner(bytes.NewReader(stream))
	n := 0
	for sc.Scan() {
		var rec campaign.Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		offline.Add(rec)
		n++
	}
	want, err := json.Marshal(offline.Snapshot())
	if err != nil {
		t.Fatal(err)
	}

	var got struct {
		Records    uint64          `json:"records"`
		Aggregates json.RawMessage `json:"aggregates"`
	}
	getJSON(t, ts.URL+st.AggregatesURL, &got)
	if got.Records != uint64(n) {
		t.Fatalf("aggregates records = %d, want %d", got.Records, n)
	}
	if !bytes.Equal(bytes.TrimSpace(got.Aggregates), want) {
		t.Fatalf("online aggregates differ from offline recompute:\n  got  %s\n  want %s", got.Aggregates, want)
	}
}

// TestSubmitRejectsBadSpecs: malformed or invalid specs are 400s carrying
// field paths, never daemon deaths.
func TestSubmitRejectsBadSpecs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	post := func(body, query string) (int, errorBody) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/api/v1/jobs"+query, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, eb
	}

	if code, _ := post("{not json", ""); code != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d", code)
	}

	bad := `{"version":1,"kind":"campaign","campaign":{` +
		`"scenarios":["warp-drive"],"protections":["unprotected"],"cores":[99],"backgrounds":["none"]}}`
	code, eb := post(bad, "")
	if code != http.StatusBadRequest || len(eb.Fields) == 0 {
		t.Fatalf("invalid spec: status %d, fields %v", code, eb.Fields)
	}
	paths := make([]string, len(eb.Fields))
	for i, f := range eb.Fields {
		paths[i] = f.Path
	}
	joined := strings.Join(paths, " ")
	for _, want := range []string{"campaign.scenarios[0]", "campaign.cores[0]"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("field paths %v missing %q", paths, want)
		}
	}

	good := string(campaignSpecJSON(t))
	for _, query := range []string{"?workers=zero", "?shard=5/2", "?mode=sideways"} {
		if code, _ := post(good, query); code != http.StatusBadRequest {
			t.Fatalf("query %s: status %d, want 400", query, code)
		}
	}
}

// TestStreamClaimsOnce: a job streams exactly once; a second claim is a
// 409 with the job's state.
func TestStreamClaimsOnce(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	st := submit(t, ts, sweepSpecJSON(t), "")
	streamAll(t, ts, st.ID)
	resp, err := http.Get(ts.URL + st.StreamURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second stream claim: status %d, want 409", resp.StatusCode)
	}
}

// gatedWriter blocks the n-th write until released — a slow HTTP client
// reduced to its essence.
type gatedWriter struct {
	mu      sync.Mutex
	writes  int
	limit   int
	release chan struct{}
}

func (g *gatedWriter) Write(p []byte) (int, error) {
	g.mu.Lock()
	n := g.writes
	g.writes++
	g.mu.Unlock()
	if n >= g.limit {
		<-g.release
	}
	return len(p), nil
}

// TestSlowConsumerBackpressure: when the sink stalls, the pipeline stops
// computing after at most the reorder window (2x workers) beyond what was
// emitted — bounded memory, no drops, and the stream completes intact
// once the sink drains.
func TestSlowConsumerBackpressure(t *testing.T) {
	const workers = 2
	s := New(Config{Workers: workers})
	defer s.Close()
	sp, err := spec.Parse(sweepSpecJSON(t))
	if err != nil {
		t.Fatal(err)
	}
	grid, err := sp.Sweep.Grid()
	if err != nil {
		t.Fatal(err)
	}
	const limit = 3
	gw := &gatedWriter{limit: limit, release: make(chan struct{})}
	j := &Job{id: "job-test", spec: sp, workers: workers, state: StateRunning, sweepGrid: grid}

	done := make(chan error, 1)
	go func() { done <- s.run(context.Background(), j, gw, nil, true) }()

	// Wait for the pipeline to stall against the gate: computed stops
	// growing at most limit + window beyond the emitted records.
	bound := uint64(limit + 2*workers)
	deadline := time.Now().Add(5 * time.Second)
	for {
		computed := s.recordsComputed.Load()
		if computed > bound {
			t.Fatalf("backpressure breached: %d records computed against a stalled sink (bound %d)", computed, bound)
		}
		if computed == bound || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Hold the stall a beat and re-check nothing leaked past the window.
	time.Sleep(50 * time.Millisecond)
	if computed := s.recordsComputed.Load(); computed > bound {
		t.Fatalf("stalled sink: computed %d > bound %d", computed, bound)
	}

	close(gw.release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := s.recordsStreamed.Load(); got != uint64(len(grid)) {
		t.Fatalf("streamed %d records after release, want all %d (no drops)", got, len(grid))
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDisconnectCancelsWorkers: dropping the stream connection cancels the
// request context, shard workers drain, the job lands canceled, and no
// goroutines leak.
func TestDisconnectCancelsWorkers(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	baseline := runtime.NumGoroutine() + 3 // tolerate runtime/transport churn

	st := submit(t, ts, sweepSpecJSON(t), "?workers=2")
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+st.StreamURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one record to prove the stream is live, then vanish.
	if _, err := bufio.NewReader(resp.Body).ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	cancel()
	resp.Body.Close()

	waitFor(t, "job to land canceled", func() bool {
		var got Status
		getJSON(t, ts.URL+"/api/v1/jobs/"+st.ID, &got)
		return got.State == StateCanceled
	})
	waitFor(t, "shard workers to drain", func() bool { return s.busy.Load() == 0 })
	http.DefaultClient.CloseIdleConnections()
	waitFor(t, "goroutines to retire", func() bool { return runtime.NumGoroutine() <= baseline })
}

// TestAggregateMode: mode=aggregate runs eagerly against a discarded
// sink; only the aggregates are observable, and the stream cannot be
// claimed.
func TestAggregateMode(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	st := submit(t, ts, campaignSpecJSON(t), "?mode=aggregate")

	waitFor(t, "detached job to finish", func() bool {
		var got Status
		getJSON(t, ts.URL+"/api/v1/jobs/"+st.ID, &got)
		return got.State == StateDone
	})
	var aggs struct {
		Records    uint64 `json:"records"`
		Aggregates struct {
			Kind string `json:"kind"`
			Runs uint64 `json:"runs"`
		} `json:"aggregates"`
	}
	getJSON(t, ts.URL+st.AggregatesURL, &aggs)
	if aggs.Records != uint64(st.GridSize) || aggs.Aggregates.Runs != uint64(st.GridSize) {
		t.Fatalf("aggregate-mode job folded %d/%d records, want %d", aggs.Records, aggs.Aggregates.Runs, st.GridSize)
	}
	if aggs.Aggregates.Kind != "campaign" {
		t.Fatalf("aggregate kind = %q", aggs.Aggregates.Kind)
	}

	resp, err := http.Get(ts.URL + st.StreamURL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stream claim on aggregate-mode job: status %d, want 409", resp.StatusCode)
	}
}

// TestHealthzAndMetrics: liveness plus the operational counters after a
// completed job.
func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	var health map[string]string
	getJSON(t, ts.URL+"/healthz", &health)
	if health["status"] != "ok" {
		t.Fatalf("healthz = %v", health)
	}

	st := submit(t, ts, sweepSpecJSON(t), "")
	streamAll(t, ts, st.ID)

	var m Metrics
	getJSON(t, ts.URL+"/metrics", &m)
	if m.Jobs.Done != 1 {
		t.Fatalf("metrics jobs = %+v, want 1 done", m.Jobs)
	}
	if m.RecordsStreamed != uint64(st.GridSize) || m.RecordsComputed != uint64(st.GridSize) {
		t.Fatalf("metrics records = %d streamed / %d computed, want %d each",
			m.RecordsStreamed, m.RecordsComputed, st.GridSize)
	}
	if m.ShardsInFlight != 0 || m.Workers.Capacity != 2 || m.Workers.Utilization != 0 {
		t.Fatalf("idle metrics = %+v", m)
	}
}

// TestJobTableBound: MaxJobs rejects further submissions with 429.
func TestJobTableBound(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxJobs: 2})
	body := sweepSpecJSON(t)
	submit(t, ts, body, "")
	submit(t, ts, body, "")
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit submit: status %d, want 429", resp.StatusCode)
	}
}

// TestUnknownJob: lookups of absent jobs are 404s on every job route.
func TestUnknownJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, path := range []string{"/api/v1/jobs/nope", "/api/v1/jobs/nope/stream", "/api/v1/jobs/nope/aggregates"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}
