package server

import (
	"context"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/hostobs"
)

// Shard retry policy defaults: up to RetryMax attempts per shard, delays
// growing exponentially from DefaultRetryBase and capped at
// DefaultRetryCap.
const (
	DefaultRetryMax  = 3
	DefaultRetryBase = 25 * time.Millisecond
	DefaultRetryCap  = time.Second
)

// Backoff returns the delay before the next attempt of one shard, after
// `attempt` (1-based) failed: bounded exponential with deterministic
// jitter. The jitter is a hash of (job id, shard index, attempt) mapped
// into the upper half of the exponential step — no math/rand, no wall
// clock, so two daemons retrying the same shard spread out while any one
// daemon's schedule is exactly reproducible. Backoff never feeds output
// bytes (it only decides when work happens, not what it produces), which
// is what keeps retries inside the byte-identity contract.
func Backoff(jobID string, index, attempt int, base, cap time.Duration) time.Duration {
	if base <= 0 {
		return 0
	}
	if cap < base {
		cap = base
	}
	d := base
	for i := 1; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(retryHash(jobID, index, attempt)%uint64(half))
}

// retryHash is FNV-1a over (jobID, index, attempt) — the deterministic
// jitter source.
func retryHash(jobID string, index, attempt int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(jobID); i++ {
		h ^= uint64(jobID[i])
		h *= prime64
	}
	for _, v := range [2]int{index, attempt} {
		for s := 0; s < 64; s += 8 {
			h ^= uint64(v>>s) & 0xff
			h *= prime64
		}
	}
	return h
}

// executeShard runs one shard attempt loop: the armed "server.shard"
// faultpoint can fail or stall an attempt (a stall past
// Config.ShardTimeout is a deadline miss, also a failed attempt), failed
// attempts retry with Backoff, and a shard still failing after
// Config.RetryMax attempts is poisoned — executeShard returns the last
// error and the caller emits an error record for that shard without
// failing the job. Retries and poisonings are counted in the metrics
// registry and published on the job's /events feed. A canceled job stops
// retrying immediately and does not count as poisoned.
func (s *Server) executeShard(ctx context.Context, j *Job, index int, runOnce func()) error {
	h := j.h
	for attempt := 1; ; attempt++ {
		actx := ctx
		var cancel context.CancelFunc
		if s.cfg.ShardTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, s.cfg.ShardTimeout)
		}
		start := h.NowNanos()
		allocs0 := h.Allocs()
		err := faultpoint.HitCtx(actx, "server.shard")
		if err == nil {
			runOnce()
		}
		if cancel != nil {
			cancel()
		}
		h.Span("execute", start, hostobs.Fields{Trace: j.traceID, Job: j.id,
			Shard: index, HasShard: true, Attempt: attempt, Err: errString(err)})
		if h != nil {
			d := h.NowNanos() - start
			allocs := h.Allocs() - allocs0
			if d > 0 {
				s.hostExecNanos.Add(uint64(d))
			}
			s.hostAllocs.Add(allocs)
			j.mu.Lock()
			j.hostExecNanos += d
			j.hostAllocs += allocs
			j.mu.Unlock()
		}
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return err // job canceled mid-retry: not a poisoning
		}
		if attempt >= s.cfg.RetryMax {
			s.shardsPoisoned.Add(1)
			h.Error("shard poisoned", hostobs.Fields{Trace: j.traceID, Job: j.id,
				Shard: index, HasShard: true, Attempt: attempt, Err: err.Error()})
			j.mu.Lock()
			j.shardErrs = append(j.shardErrs, ShardInfo{Index: index, Attempts: attempt, LastError: err.Error()})
			j.mu.Unlock()
			s.publishShard(j, "poison", index, attempt, err)
			return err
		}
		s.shardRetries.Add(1)
		h.Warn("shard retry", hostobs.Fields{Trace: j.traceID, Job: j.id,
			Shard: index, HasShard: true, Attempt: attempt, Err: err.Error()})
		s.publishShard(j, "retry", index, attempt, err)
		backoffStart := h.NowNanos()
		s.cfg.Sleep(Backoff(j.id, index, attempt, s.cfg.RetryBase, s.cfg.RetryCap))
		h.Span("retry", backoffStart, hostobs.Fields{Trace: j.traceID, Job: j.id,
			Shard: index, HasShard: true, Attempt: attempt})
	}
}

// errString is Err for Fields: "" for nil, so the success path builds
// field sets without touching the error.
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// shardEvent is the /events payload for "retry" and "poison" events.
type shardEvent struct {
	Job     string `json:"job"`
	Index   int    `json:"index"`
	Attempt int    `json:"attempt"`
	Error   string `json:"error"`
}

// publishShard fans a shard retry/poison event out to /events subscribers.
func (s *Server) publishShard(j *Job, event string, index, attempt int, err error) {
	j.mu.Lock()
	if len(j.subs) > 0 {
		s.publishLocked(j, event, mustJSON(shardEvent{
			Job: j.id, Index: index, Attempt: attempt, Error: err.Error(),
		}))
	}
	j.mu.Unlock()
}
