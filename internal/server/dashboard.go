package server

import "net/http"

// handleDashboard serves the live campaign dashboard at / — one static,
// dependency-free HTML page. All data flows through the public API the
// page polls (/metrics, /api/v1/jobs) and subscribes to (the selected
// job's /events SSE feed); the server renders nothing job-specific here,
// so the page is a cacheable constant and the golden test can pin it.
func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(dashboardHTML))
}

// dashboardHTML is the whole dashboard: HTML, CSS and vanilla JS, no
// external assets. It replaces the retired gnuplot seeds in tools/plot —
// detection/containment/quarantine/recovery rates and the
// react/recovery-latency percentiles render as inline SVG bars from the
// /aggregates snapshots the /events feed pushes while a job runs.
const dashboardHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>mpsocd — campaign dashboard</title>
<style>
  body { font: 13px/1.45 ui-monospace, SFMono-Regular, Menlo, Consolas, monospace;
         margin: 0; background: #111418; color: #d6dbe1; }
  header { padding: 10px 16px; background: #191e24; border-bottom: 1px solid #2a323b;
           display: flex; align-items: baseline; gap: 16px; }
  header h1 { font-size: 15px; margin: 0; color: #e8edf2; }
  header .sub { color: #7d8a97; }
  main { display: grid; grid-template-columns: minmax(360px, 1fr) 2fr; gap: 16px; padding: 16px; }
  section { background: #171c21; border: 1px solid #252d36; border-radius: 6px; padding: 12px 14px; }
  h2 { font-size: 12px; text-transform: uppercase; letter-spacing: .08em;
       color: #8fa0b0; margin: 0 0 10px; }
  table { border-collapse: collapse; width: 100%; }
  th, td { text-align: left; padding: 3px 8px 3px 0; white-space: nowrap; }
  th { color: #7d8a97; font-weight: normal; }
  tr.job { cursor: pointer; }
  tr.job:hover td, tr.job.sel td { color: #ffffff; }
  tr.job.sel td:first-child { color: #6fd3a4; }
  .state-pending  { color: #c9b458; }
  .state-running  { color: #6fb3d3; }
  .state-done     { color: #6fd3a4; }
  .state-failed   { color: #d36f6f; }
  .state-canceled { color: #8d97a1; }
  .bars text { fill: #d6dbe1; font: 11px ui-monospace, monospace; }
  .bars .lbl { fill: #8fa0b0; }
  .muted { color: #7d8a97; }
  #detail .empty { color: #58626d; padding: 24px 0; text-align: center; }
  progress { width: 120px; height: 8px; accent-color: #6fb3d3; }
</style>
</head>
<body>
<header>
  <h1>mpsocd</h1>
  <span class="sub">distributed-security campaign service</span>
  <span class="sub" id="workers">workers –/–</span>
  <span class="sub" id="records">records 0</span>
  <span class="sub" id="sse"></span>
</header>
<main>
  <section>
    <h2>Jobs</h2>
    <table id="jobs">
      <thead><tr><th>id</th><th>kind</th><th>state</th><th>progress</th><th>records</th></tr></thead>
      <tbody></tbody>
    </table>
    <div class="muted" id="nojobs">no jobs submitted — POST a spec to /api/v1/jobs</div>
  </section>
  <section id="detail">
    <h2>Job detail <span class="muted" id="detail-id"></span></h2>
    <div class="empty" id="detail-empty">select a job</div>
    <div id="detail-body" style="display:none">
      <div id="rates"></div>
      <div id="dists"></div>
    </div>
  </section>
</main>
<script>
"use strict";
let selected = null, es = null;

function fmt(n) { return Number(n).toLocaleString("en-US"); }

function barSVG(rows, unit) {
  // rows: [{label, value (0..1 or cycles), text}] with values pre-scaled to 0..1
  const w = 560, bh = 18, gap = 8, lx = 170, bw = w - lx - 120;
  let svg = '<svg class="bars" width="' + w + '" height="' + (rows.length * (bh + gap)) + '">';
  rows.forEach((r, i) => {
    const y = i * (bh + gap);
    const len = Math.max(1, Math.round(bw * Math.min(1, r.frac)));
    svg += '<text class="lbl" x="0" y="' + (y + 13) + '">' + r.label + '</text>';
    svg += '<rect x="' + lx + '" y="' + y + '" width="' + len + '" height="' + bh +
           '" rx="2" fill="' + (r.color || "#6fb3d3") + '"/>';
    svg += '<text x="' + (lx + len + 6) + '" y="' + (y + 13) + '">' + r.text + '</text>';
  });
  return svg + "</svg>";
}

function renderAgg(payload) {
  const a = payload.aggregates || {};
  const rates = document.getElementById("rates");
  const dists = document.getElementById("dists");
  if (a.kind === "campaign") {
    rates.innerHTML = "<h2>rates over " + fmt(a.runs) + " runs (" + fmt(a.errors) + " errors)</h2>" +
      barSVG([
        { label: "detection",   frac: a.detection_rate,   text: (100 * a.detection_rate).toFixed(1) + "%", color: "#6fb3d3" },
        { label: "containment", frac: a.containment_rate, text: (100 * a.containment_rate).toFixed(1) + "%", color: "#6fd3a4" },
        { label: "quarantine",  frac: a.quarantine_rate,  text: (100 * a.quarantine_rate).toFixed(1) + "%", color: "#c9b458" },
        { label: "recovery",    frac: a.recovery_rate,    text: (100 * a.recovery_rate).toFixed(1) + "%", color: "#b08fd3" },
      ]);
    const ds = [
      ["detect latency (cy)",    a.detect_latency],
      ["react latency (cy)",     a.react_latency],
      ["quarantined (cy)",       a.quarantined_cycles],
      ["recovery (cy)",          a.recovery_cycles],
      ["slowdown (milli)",       a.slowdown_milli],
    ].filter(d => d[1] && d[1].count > 0);
    dists.innerHTML = "<h2>latency percentiles</h2>" + ds.map(([name, d]) => {
      const max = Math.max(1, d.max);
      return "<div class='muted'>" + name + " — n=" + fmt(d.count) + "</div>" + barSVG([
        { label: "p50", frac: d.p50 / max, text: fmt(d.p50) },
        { label: "p90", frac: d.p90 / max, text: fmt(d.p90) },
        { label: "p99", frac: d.p99 / max, text: fmt(d.p99), color: "#d36f6f" },
      ]);
    }).join("");
  } else if (a.kind === "sweep") {
    rates.innerHTML = "<h2>sweep over " + fmt(a.runs) + " runs (" + fmt(a.errors) +
      " errors, " + fmt(a.alerts) + " alerts)</h2>";
    const ds = [
      ["cycles",        a.cycles],
      ["instructions",  a.instructions],
      ["stall cycles",  a.stall_cycles],
      ["bus util (milli)", a.bus_utilization_milli],
    ].filter(d => d[1] && d[1].count > 0);
    dists.innerHTML = ds.map(([name, d]) => {
      const max = Math.max(1, d.max);
      return "<div class='muted'>" + name + " — n=" + fmt(d.count) + "</div>" + barSVG([
        { label: "p50", frac: d.p50 / max, text: fmt(d.p50) },
        { label: "p90", frac: d.p90 / max, text: fmt(d.p90) },
        { label: "p99", frac: d.p99 / max, text: fmt(d.p99), color: "#d36f6f" },
      ]);
    }).join("");
  } else {
    rates.innerHTML = "<div class='muted'>no aggregates yet</div>";
    dists.innerHTML = "";
  }
}

function select(id) {
  selected = id;
  document.getElementById("detail-id").textContent = id;
  document.getElementById("detail-empty").style.display = "none";
  document.getElementById("detail-body").style.display = "block";
  if (es) { es.close(); es = null; }
  fetch("/api/v1/jobs/" + id + "/aggregates").then(r => r.json()).then(renderAgg);
  es = new EventSource("/api/v1/jobs/" + id + "/events");
  es.addEventListener("snapshot", e => renderAgg(JSON.parse(e.data)));
  es.addEventListener("state", () => refresh());
  es.onerror = () => { if (es) { es.close(); es = null; } };
}

function refresh() {
  fetch("/metrics").then(r => r.json()).then(m => {
    document.getElementById("workers").textContent =
      "workers " + m.workers.busy + "/" + m.workers.capacity;
    document.getElementById("records").textContent = "records " + fmt(m.records_computed);
    document.getElementById("sse").textContent =
      m.sse.subscribers > 0 ? "subscribers " + m.sse.subscribers : "";
  });
  fetch("/api/v1/jobs").then(r => r.json()).then(jobs => {
    document.getElementById("nojobs").style.display = jobs.length ? "none" : "block";
    const tb = document.querySelector("#jobs tbody");
    tb.innerHTML = jobs.map(j => {
      const pct = j.grid_size ? Math.min(100, Math.round(100 * j.records / j.grid_size)) : 0;
      return "<tr class='job" + (j.id === selected ? " sel" : "") + "' data-id='" + j.id + "'>" +
        "<td>" + j.id + "</td><td>" + j.kind + "</td>" +
        "<td class='state-" + j.state + "'>" + j.state + "</td>" +
        "<td><progress max='100' value='" + pct + "'></progress> " + pct + "%</td>" +
        "<td>" + fmt(j.records) + "/" + fmt(j.grid_size) + "</td></tr>";
    }).join("");
    tb.querySelectorAll("tr.job").forEach(tr =>
      tr.addEventListener("click", () => select(tr.dataset.id)));
  });
}

refresh();
setInterval(refresh, 2000);
</script>
</body>
</html>
`
