package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"

	"repro/internal/hostobs"
)

// ReplaySummary is the structured startup summary Restore builds after
// journal replay: what was rebuilt, what resumed, and how many torn tail
// lines the replay discarded. Logged once at startup and included in
// /healthz detail.
type ReplaySummary struct {
	JobsRestored    int `json:"jobs_restored"`
	JobsResumed     int `json:"jobs_resumed"`
	RecordsRestored int `json:"records_restored"`
	LinesDiscarded  int `json:"lines_discarded"`
}

// handleHostSpans serves this node's span ring filtered by ?trace= or
// ?job= — the per-node half of the cross-node trace document. An empty
// filter matches nothing, so the endpoint never leaks unrelated spans.
func (s *Server) handleHostSpans(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	h := s.cfg.Host
	spans := h.Spans(q.Get("trace"), q.Get("job"))
	if spans == nil {
		spans = []hostobs.Span{}
	}
	writeJSON(w, http.StatusOK, hostobs.NodeSpans{Node: h.NodeName(), Spans: spans})
}

// handleHostTrace renders the job's host-side spans — this node's plus
// every reachable backend's, matched by the job's fleet-wide trace ID —
// as one Chrome trace_event document: one "process" per node, so a
// coordinator failover reads end-to-end in a single Perfetto view.
func (s *Server) handleHostTrace(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	h := s.cfg.Host
	if h == nil {
		httpError(w, http.StatusNotFound, "host observability is disabled on this node (start the daemon with a hostobs.Host)")
		return
	}
	nodes := []hostobs.NodeSpans{{Node: h.NodeName(), Spans: h.Spans(j.traceID, j.id)}}
	for _, backend := range s.cfg.Backends {
		ns, err := s.fetchHostSpans(r.Context(), backend, j.traceID)
		if err != nil {
			// A dead backend cannot contribute spans; the surviving
			// nodes' view is still the whole story we can tell.
			h.Warn("hostspans fetch failed", hostobs.Fields{Job: j.id, Trace: j.traceID, Backend: backend, Err: err.Error()})
			continue
		}
		if len(ns.Spans) > 0 {
			nodes = append(nodes, ns)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	hostobs.WriteChrome(w, j.traceID, nodes)
}

// fetchHostSpans pulls one backend's spans for a trace ID.
func (s *Server) fetchHostSpans(ctx context.Context, backend, trace string) (hostobs.NodeSpans, error) {
	var ns hostobs.NodeSpans
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		backend+"/api/v1/hostspans?trace="+url.QueryEscape(trace), nil)
	if err != nil {
		return ns, err
	}
	resp, err := s.cfg.FleetClient.Do(req)
	if err != nil {
		return ns, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ns, fmt.Errorf("hostspans: backend returned %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ns); err != nil {
		return ns, err
	}
	return ns, nil
}
