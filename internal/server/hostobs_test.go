package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/hostobs"
	"repro/internal/journal"
)

// hostClock is a deterministic strictly-increasing shared clock for
// multi-node hostobs tests.
func hostClock() func() int64 {
	var t atomic.Int64
	return func() int64 { return t.Add(1000) }
}

// chromeDoc decodes the hosttrace trace_event document far enough for
// assertions.
type chromeDoc struct {
	TraceEvents []struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		Pid  int               `json:"pid"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
	OtherData map[string]string `json:"otherData"`
}

// TestHostUsageAndFlightRecorder: a hostobs-enabled single node accounts
// exec time, allocs, and streamed bytes per job; serves a single-node
// hosttrace document; and exposes the live flight recorder — while the
// stream bytes stay identical to a hostobs-disabled run.
func TestHostUsageAndFlightRecorder(t *testing.T) {
	_, plain := newTestServer(t, Config{Workers: 2})
	want := streamAll(t, plain, submit(t, plain, campaignSpecJSON(t), "").ID)

	h := hostobs.New(hostobs.Options{Node: "node-a", NowNanos: hostClock()})
	s, ts := newTestServer(t, Config{Workers: 2, Host: h})
	st := submit(t, ts, campaignSpecJSON(t), "")
	if st.TraceID != "t-"+st.ID {
		t.Fatalf("trace_id = %q, want minted t-%s", st.TraceID, st.ID)
	}
	if st.HostTraceURL == "" {
		t.Fatal("hosttrace_url missing on a hostobs-enabled node")
	}
	got := streamAll(t, ts, st.ID)
	if !bytes.Equal(got, want) {
		t.Fatal("stream bytes differ with host observability enabled")
	}

	var done Status
	getJSON(t, ts.URL+"/api/v1/jobs/"+st.ID, &done)
	u := done.Host
	if u == nil {
		t.Fatal("status.host missing")
	}
	if u.ExecNanos <= 0 || u.Allocs == 0 || u.RecordsPerSec <= 0 {
		t.Fatalf("host usage = %+v, want positive exec/allocs/records_per_sec", u)
	}
	if u.BytesStreamed != uint64(len(got)) {
		t.Fatalf("bytes_streamed = %d, want %d (the exact stream length)", u.BytesStreamed, len(got))
	}
	var ag Aggregates
	getJSON(t, ts.URL+"/api/v1/jobs/"+st.ID+"/aggregates", &ag)
	if ag.Host == nil || ag.Host.BytesStreamed != u.BytesStreamed {
		t.Fatalf("aggregates.host = %+v, want the same accounting as status", ag.Host)
	}
	m := s.metricsSnapshot()
	if m.Host.ExecNanosTotal == 0 || m.Host.AllocsTotal == 0 || m.Host.BytesStreamedTotal != u.BytesStreamed {
		t.Fatalf("host metrics = %+v", m.Host)
	}

	// Single-node hosttrace: one process, execute spans, the job's trace.
	var doc chromeDoc
	getJSON(t, ts.URL+st.HostTraceURL, &doc)
	if doc.OtherData["trace"] != st.TraceID {
		t.Fatalf("hosttrace otherData = %v", doc.OtherData)
	}
	executes := 0
	for _, e := range doc.TraceEvents {
		if e.Name == "execute" && e.Ph == "X" {
			executes++
		}
	}
	if executes != 8 {
		t.Fatalf("hosttrace has %d execute spans, want 8 (one per grid point)", executes)
	}

	// Live flight recorder: the accepted-job event is in the ring.
	var dump hostobs.FlightDump
	getJSON(t, ts.URL+"/debug/flightrecorder", &dump)
	if dump.Node != "node-a" {
		t.Fatalf("flight dump node = %q", dump.Node)
	}
	found := false
	for _, e := range dump.Events {
		if e.Msg == "job accepted" && e.Job == st.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("flight recorder missing the job-accepted event")
	}
}

// TestHostTraceDisabled: without a Host, hosttrace is 404 and the debug
// route is unregistered — the disabled daemon's surface is unchanged.
func TestHostTraceDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	st := submit(t, ts, sweepSpecJSON(t), "")
	if st.TraceID != "" || st.HostTraceURL != "" || st.Host != nil {
		t.Fatalf("disabled node leaked host fields: %+v", st)
	}
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/hosttrace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("hosttrace on disabled node: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/debug/flightrecorder")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("flightrecorder on disabled node: status %d, want 404", resp.StatusCode)
	}
}

// TestHostTraceCrossNodeFailover is the acceptance criterion's in-process
// half: a coordinator failover produces ONE Chrome trace document with
// spans from both the coordinator and the surviving backend, and the
// failover span is actually in it (non-vacuous: the flaky backend must
// have tripped).
func TestHostTraceCrossNodeFailover(t *testing.T) {
	_, single := newTestServer(t, Config{Workers: 2})
	want := streamAll(t, single, submit(t, single, campaignSpecJSON(t), "").ID)

	clock := hostClock()
	_, realTS := newTestServer(t, Config{Workers: 2,
		Host: hostobs.New(hostobs.Options{Node: "backend-a", NowNanos: clock})})
	flaky := httptest.NewServer(&flakyBackend{target: realTS.URL, client: realTS.Client()})
	t.Cleanup(flaky.Close)

	coord, coordTS, _, _ := newFleet(t, 0, Config{
		Backends: []string{flaky.URL, realTS.URL},
		Host:     hostobs.New(hostobs.Options{Node: "coordinator", NowNanos: clock}),
	})
	st := submit(t, coordTS, campaignSpecJSON(t), "")
	got := streamAll(t, coordTS, st.ID)
	if !bytes.Equal(got, want) {
		t.Fatal("failover stream differs from single-node run")
	}
	if coord.metricsSnapshot().Coordinator.Failovers == 0 {
		t.Fatal("no failover recorded — the flaky backend never tripped, test is vacuous")
	}

	var doc chromeDoc
	getJSON(t, coordTS.URL+"/api/v1/jobs/"+st.ID+"/hosttrace", &doc)
	pids := map[int]bool{}
	procs := map[string]bool{}
	spans := map[string]bool{}
	for _, e := range doc.TraceEvents {
		pids[e.Pid] = true
		if e.Name == "process_name" && e.Ph == "M" {
			procs[e.Args["name"]] = true
		}
		if e.Ph == "X" {
			spans[e.Name] = true
		}
	}
	if len(pids) < 2 {
		t.Fatalf("hosttrace covers %d node(s), want spans from both coordinator and surviving backend", len(pids))
	}
	if !procs["coordinator"] || !procs["backend-a"] {
		t.Fatalf("hosttrace processes = %v, want coordinator and backend-a", procs)
	}
	for _, name := range []string{"dispatch", "failover", "execute"} {
		if !spans[name] {
			t.Fatalf("hosttrace span names = %v, missing %q", spans, name)
		}
	}
}

// TestPoisonedShardLastErrorInStatusAndSSE: poisoned shards carry their
// last attempt's error into job status (shards[i].last_error) and into
// the terminal SSE state event, instead of vanishing into a counter.
func TestPoisonedShardLastErrorInStatusAndSSE(t *testing.T) {
	t.Cleanup(faultpoint.Disarm)
	if err := faultpoint.Arm("server.shard=error:disk offline"); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 2, RetryMax: 2, Sleep: func(time.Duration) {}})
	st := submit(t, ts, campaignSpecJSON(t), "")

	events, err := http.Get(ts.URL + st.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer events.Body.Close()

	streamAll(t, ts, st.ID)

	var got Status
	getJSON(t, ts.URL+"/api/v1/jobs/"+st.ID, &got)
	if got.State != StateDone {
		t.Fatalf("job state = %s, want done (poisoning never fails the job)", got.State)
	}
	if len(got.Shards) != 8 {
		t.Fatalf("status.shards has %d entries, want all 8 poisoned shards", len(got.Shards))
	}
	for i, sh := range got.Shards {
		if sh.Index != i {
			t.Fatalf("shards[%d].index = %d, want sorted by index", i, sh.Index)
		}
		if sh.Attempts != 2 || !strings.Contains(sh.LastError, "disk offline") {
			t.Fatalf("shards[%d] = %+v, want 2 attempts and the injected error", i, sh)
		}
	}

	var terminal *Status
	for _, ev := range readSSE(t, events.Body) {
		if ev.event != "state" {
			continue
		}
		var s Status
		if err := json.Unmarshal(ev.data, &s); err != nil {
			t.Fatal(err)
		}
		terminal = &s
	}
	if terminal == nil || terminal.State != StateDone {
		t.Fatalf("terminal SSE state event = %+v", terminal)
	}
	if len(terminal.Shards) != 8 || !strings.Contains(terminal.Shards[0].LastError, "disk offline") {
		t.Fatalf("terminal SSE event shards = %+v, want the poisoned shard errors", terminal.Shards)
	}
}

// TestHealthzReplaySummary: after a journaled restart, /healthz carries
// the structured replay summary Restore built; a daemon that never
// replayed reports none.
func TestHealthzReplaySummary(t *testing.T) {
	_, freshTS := newTestServer(t, Config{Workers: 2})
	var fresh map[string]json.RawMessage
	getJSON(t, freshTS.URL+"/healthz", &fresh)
	if _, ok := fresh["replay"]; ok {
		t.Fatal("healthz reports a replay summary without a restore")
	}

	dir := t.TempDir()
	jn, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts1 := newTestServer(t, Config{Workers: 2, Journal: jn})
	id := submit(t, ts1, campaignSpecJSON(t), "").ID
	streamAll(t, ts1, id)
	jn.Close()

	jn2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	life2, ts2 := newTestServer(t, Config{Workers: 2, Journal: jn2})
	if _, err := life2.Restore(); err != nil {
		t.Fatal(err)
	}
	var hs healthStatus
	getJSON(t, ts2.URL+"/healthz", &hs)
	if hs.Status != "ok" || hs.Replay == nil {
		t.Fatalf("healthz = %+v, want ok with a replay summary", hs)
	}
	want := ReplaySummary{JobsRestored: 1, JobsResumed: 0, RecordsRestored: 8, LinesDiscarded: 0}
	if *hs.Replay != want {
		t.Fatalf("healthz replay = %+v, want %+v", *hs.Replay, want)
	}
}

// TestFleetSlowEventsSubscriber covers slow-SSE-subscriber drop
// accounting behind the coordinator: a subscriber that cannot keep up
// with the merged fleet stream loses snapshots (counted) and the fleet
// job still completes. The depth-1 subscriber is registered directly so
// the overflow is deterministic, not a function of socket buffer sizes;
// a real unread HTTP subscriber rides along to prove non-stalling
// end-to-end.
func TestFleetSlowEventsSubscriber(t *testing.T) {
	coord, coordTS, _, _ := newFleet(t, 2, Config{SnapshotEvery: 1})
	st := submit(t, coordTS, sweepSpecJSON(t), "")

	events, err := http.Get(coordTS.URL + st.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer events.Body.Close()

	coord.mu.Lock()
	j := coord.jobs[st.ID]
	coord.mu.Unlock()
	j.mu.Lock()
	j.nextSub++
	j.subs = append(j.subs, &subscriber{id: j.nextSub, ch: make(chan sseMsg, 1)})
	j.mu.Unlock()

	streamAll(t, coordTS, st.ID)

	var got Status
	getJSON(t, coordTS.URL+"/api/v1/jobs/"+st.ID, &got)
	if got.State != StateDone {
		t.Fatalf("fleet job state = %s, want done despite the stalled subscriber", got.State)
	}
	if got.Records != 24 {
		t.Fatalf("records = %d, want 24", got.Records)
	}
	if coord.sseDropped.Load() == 0 {
		t.Fatal("no SSE drops counted on the coordinator — the slow subscriber lost nothing, test is vacuous")
	}
}
