package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"repro/internal/spec"
)

// tracedCampaignSpecJSON is a 2-run campaign with the recovery phase
// armed, so traces carry the full incident lifecycle.
func tracedCampaignSpecJSON(t *testing.T) []byte {
	t.Helper()
	data, err := spec.NewCampaign(spec.CampaignSpec{
		Scenarios:   []string{"burst-flood"},
		Protections: []string{"unprotected", "distributed"},
		Cores:       []int{3},
		Backgrounds: []string{"stream"},
		Accesses:    64,
		InjectDelay: 100,
		MaxCycles:   500_000,
		Recovery:    &spec.RecoverySpec{Enabled: true, ClearDelay: 1500, Staged: true},
	}).JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestDashboardGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/html; charset=utf-8" {
		t.Fatalf("content-type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != dashboardHTML {
		t.Fatal("dashboard body is not the dashboardHTML constant")
	}
	// The page must keep driving the public API surface.
	for _, want := range []string{
		`fetch("/metrics")`, `fetch("/api/v1/jobs")`, "/aggregates", "EventSource",
		`id="jobs"`, `id="detail"`, "<svg", "</html>",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("dashboard lacks %q", want)
		}
	}
	// Unknown non-API paths must stay 404, not swallowed by the root route.
	resp2, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /nope: status %d, want 404", resp2.StatusCode)
	}
}

// promGolden is the exact exposition of a fresh 4-worker server. Pinning
// bytes (not just shape) keeps names, HELP text and sample order stable
// for scrapers.
const promGolden = `# HELP mpsocd_jobs Jobs in the table by lifecycle state.
# TYPE mpsocd_jobs gauge
mpsocd_jobs{state="pending"} 0
mpsocd_jobs{state="running"} 0
mpsocd_jobs{state="done"} 0
mpsocd_jobs{state="failed"} 0
mpsocd_jobs{state="canceled"} 0
# HELP mpsocd_shards_in_flight Grid points executing right now (held worker-pool slots).
# TYPE mpsocd_shards_in_flight gauge
mpsocd_shards_in_flight 0
# HELP mpsocd_records_computed_total Finished simulation runs.
# TYPE mpsocd_records_computed_total counter
mpsocd_records_computed_total 0
# HELP mpsocd_records_streamed_total Records written to connected clients.
# TYPE mpsocd_records_streamed_total counter
mpsocd_records_streamed_total 0
# HELP mpsocd_worker_capacity Global worker-pool size.
# TYPE mpsocd_worker_capacity gauge
mpsocd_worker_capacity 4
# HELP mpsocd_workers_busy Worker-pool slots held.
# TYPE mpsocd_workers_busy gauge
mpsocd_workers_busy 0
# HELP mpsocd_worker_utilization Busy workers over capacity.
# TYPE mpsocd_worker_utilization gauge
mpsocd_worker_utilization 0
# HELP mpsocd_sse_subscribers Connected /events subscribers.
# TYPE mpsocd_sse_subscribers gauge
mpsocd_sse_subscribers 0
# HELP mpsocd_sse_dropped_total Events dropped by the bounded SSE fan-out.
# TYPE mpsocd_sse_dropped_total counter
mpsocd_sse_dropped_total 0
# HELP mpsocd_trace_events_emitted_total Trace events emitted across traced jobs.
# TYPE mpsocd_trace_events_emitted_total counter
mpsocd_trace_events_emitted_total 0
# HELP mpsocd_trace_events_dropped_total Trace events lost to per-run buffer bounds.
# TYPE mpsocd_trace_events_dropped_total counter
mpsocd_trace_events_dropped_total 0
# HELP mpsocd_shard_retries_total Shard attempts retried after a failure.
# TYPE mpsocd_shard_retries_total counter
mpsocd_shard_retries_total 0
# HELP mpsocd_shards_poisoned_total Shards emitted as error records after exhausting retries.
# TYPE mpsocd_shards_poisoned_total counter
mpsocd_shards_poisoned_total 0
# HELP mpsocd_journal_appends_total Journal entries committed (written and fsync'd).
# TYPE mpsocd_journal_appends_total counter
mpsocd_journal_appends_total 0
# HELP mpsocd_journal_fsync_nanos_total Cumulative journal fsync time in nanoseconds.
# TYPE mpsocd_journal_fsync_nanos_total counter
mpsocd_journal_fsync_nanos_total 0
# HELP mpsocd_journal_jobs_resumed_total Jobs resumed from the journal after a restart.
# TYPE mpsocd_journal_jobs_resumed_total counter
mpsocd_journal_jobs_resumed_total 0
# HELP mpsocd_journal_records_resumed_total Records replayed verbatim from journal acks.
# TYPE mpsocd_journal_records_resumed_total counter
mpsocd_journal_records_resumed_total 0
# HELP mpsocd_journal_lines_discarded_total Torn journal tail lines discarded during replay.
# TYPE mpsocd_journal_lines_discarded_total counter
mpsocd_journal_lines_discarded_total 0
# HELP mpsocd_coordinator_dispatches_total Shard streams dispatched to fleet backends.
# TYPE mpsocd_coordinator_dispatches_total counter
mpsocd_coordinator_dispatches_total 0
# HELP mpsocd_coordinator_retries_total Coordinator dispatch retries.
# TYPE mpsocd_coordinator_retries_total counter
mpsocd_coordinator_retries_total 0
# HELP mpsocd_coordinator_failovers_total Shards re-dispatched away from dead or draining backends.
# TYPE mpsocd_coordinator_failovers_total counter
mpsocd_coordinator_failovers_total 0
# HELP mpsocd_host_exec_nanos_total Wall-clock nanoseconds executing shards (zero with host observability off).
# TYPE mpsocd_host_exec_nanos_total counter
mpsocd_host_exec_nanos_total 0
# HELP mpsocd_host_allocs_total Heap objects allocated during shard execution (zero with host observability off).
# TYPE mpsocd_host_allocs_total counter
mpsocd_host_allocs_total 0
# HELP mpsocd_host_bytes_streamed_total Record bytes streamed to clients (zero with host observability off).
# TYPE mpsocd_host_bytes_streamed_total counter
mpsocd_host_bytes_streamed_total 0
# HELP mpsocd_build_info Build identity: constant 1 with the VCS revision and dirty flag as labels.
# TYPE mpsocd_build_info gauge
mpsocd_build_info{revision="unknown",dirty="false"} 1
`

func TestMetricsPrometheusGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	get := func(path string, accept string) (string, string) {
		req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics?format=prometheus", "")
	if ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content-type = %q", ct)
	}
	if body != promGolden {
		t.Fatalf("prometheus exposition drifted:\n got:\n%s\nwant:\n%s", body, promGolden)
	}
	// A scraper's Accept header selects the same rendering without the
	// query parameter; the bare default stays JSON.
	if body2, _ := get("/metrics", "text/plain"); body2 != promGolden {
		t.Fatal("Accept: text/plain did not select the prometheus rendering")
	}
	if body3, ct3 := get("/metrics", ""); ct3 != "application/json" || !strings.HasPrefix(body3, "{") {
		t.Fatalf("default /metrics is not JSON (content-type %q)", ct3)
	}
}

// numericLeaves counts the numeric fields of a struct type, recursing
// into nested structs — the size of the metrics registry.
func numericLeaves(t reflect.Type) int {
	n := 0
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i).Type
		switch f.Kind() {
		case reflect.Struct:
			n += numericLeaves(f)
		case reflect.Int, reflect.Int64, reflect.Uint64, reflect.Float64:
			n++
		}
	}
	return n
}

// TestPrometheusCoversEveryMetric is the anti-drift gate: every numeric
// leaf of the Metrics registry must appear as exactly one Prometheus
// sample, so adding a JSON metric without a Prometheus rendering (or vice
// versa) fails here.
func TestPrometheusCoversEveryMetric(t *testing.T) {
	var buf bytes.Buffer
	Metrics{}.Prometheus(&buf)
	samples := 0
	for _, line := range strings.Split(buf.String(), "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			samples++
		}
	}
	leaves := numericLeaves(reflect.TypeOf(Metrics{}))
	if samples != leaves {
		t.Fatalf("prometheus samples = %d, Metrics numeric leaves = %d — the renderings drifted",
			samples, leaves)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	event string
	data  []byte
}

// readSSE parses a server-sent event stream until EOF.
func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			cur.data = []byte(line[len("data: "):])
		case line == "":
			if cur.event != "" {
				out = append(out, cur)
			}
			cur = sseEvent{}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestEventsSnapshotCadence subscribes before the stream starts and
// checks the feed delivers the replay, the running transition, a partial
// snapshot every SnapshotEvery records, the terminal snapshot and state —
// then ends the stream.
func TestEventsSnapshotCadence(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, SnapshotEvery: 2})
	st := submit(t, ts, campaignSpecJSON(t), "") // 8 runs

	resp, err := http.Get(ts.URL + st.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type = %q", ct)
	}

	streamAll(t, ts, st.ID)
	events := readSSE(t, resp.Body) // returns at EOF, i.e. after terminal fan-out

	var states []string
	snapshots := 0
	var lastSnap Aggregates
	for _, e := range events {
		switch e.event {
		case "state":
			var s Status
			if err := json.Unmarshal(e.data, &s); err != nil {
				t.Fatalf("bad state payload: %v", err)
			}
			states = append(states, s.State)
		case "snapshot":
			snapshots++
			if err := json.Unmarshal(e.data, &lastSnap); err != nil {
				t.Fatalf("bad snapshot payload: %v", err)
			}
		}
	}
	if want := []string{StatePending, StateRunning, StateDone}; !reflect.DeepEqual(states, want) {
		t.Fatalf("state sequence = %v, want %v", states, want)
	}
	// Replay + one per 2 records (8 runs) + terminal = 6.
	if snapshots != 6 {
		t.Fatalf("snapshots = %d, want 6", snapshots)
	}
	if lastSnap.Records != 8 || lastSnap.State != StateDone {
		t.Fatalf("final snapshot = %+v", lastSnap)
	}
}

// TestEventsTerminalReplay: subscribing to a finished job replays the
// terminal state and final snapshot, then the stream ends immediately —
// no subscription is registered.
func TestEventsTerminalReplay(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	st := submit(t, ts, sweepSpecJSON(t), "")
	streamAll(t, ts, st.ID)

	resp, err := http.Get(ts.URL + st.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := readSSE(t, resp.Body)
	if len(events) != 2 || events[0].event != "state" || events[1].event != "snapshot" {
		t.Fatalf("terminal replay = %+v", events)
	}
	var got Status
	if err := json.Unmarshal(events[0].data, &got); err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone {
		t.Fatalf("replayed state = %q", got.State)
	}
	if n := s.sseSubs.Load(); n != 0 {
		t.Fatalf("sseSubs = %d after terminal replay", n)
	}
}

// TestPublishLockedDrops pins the non-blocking send: a full subscriber
// channel drops the message, counts it, and the call returns.
func TestPublishLockedDrops(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	j := &Job{id: "job-test", state: StateRunning}
	sub := &subscriber{id: 1, ch: make(chan sseMsg, 1)}
	j.subs = append(j.subs, sub)

	j.mu.Lock()
	s.publishLocked(j, "snapshot", []byte("a")) // fills the channel
	s.publishLocked(j, "snapshot", []byte("b")) // must drop, not block
	j.mu.Unlock()

	if got := s.sseDropped.Load(); got != 1 {
		t.Fatalf("sseDropped = %d, want 1", got)
	}
	if m := <-sub.ch; string(m.data) != "a" {
		t.Fatalf("retained message = %q, want the first", m.data)
	}
}

// TestSlowEventsSubscriberDoesNotStallJob leaves an /events subscriber
// completely unread while a job streams to completion under a 1-record
// snapshot cadence; the job must finish regardless.
func TestSlowEventsSubscriberDoesNotStallJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, SnapshotEvery: 1})
	st := submit(t, ts, sweepSpecJSON(t), "") // 24 runs -> 24+ messages > sseBuf

	resp, err := http.Get(ts.URL + st.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() // never read: the subscriber is as slow as possible

	streamAll(t, ts, st.ID) // returns only if the job ran to completion
	var got Status
	getJSON(t, ts.URL+"/api/v1/jobs/"+st.ID, &got)
	if got.State != StateDone {
		t.Fatalf("job state = %q, want done", got.State)
	}
}

// TestEventsDisconnectUnsubscribes drops the /events connection and waits
// for the server to remove the subscriber.
func TestEventsDisconnectUnsubscribes(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	st := submit(t, ts, campaignSpecJSON(t), "")

	req, err := http.NewRequest(http.MethodGet, ts.URL+st.EventsURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	resp, err := http.DefaultClient.Do(req.WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Wait until the subscription is registered (the job is pending, so it
	// stays registered until we disconnect).
	s.mu.Lock()
	j := s.jobs[st.ID]
	s.mu.Unlock()
	waitFor(t, "subscriber registered", func() bool {
		j.mu.Lock()
		defer j.mu.Unlock()
		return len(j.subs) == 1
	})

	cancel()
	waitFor(t, "subscriber removed after disconnect", func() bool {
		j.mu.Lock()
		defer j.mu.Unlock()
		return len(j.subs) == 0
	})
	waitFor(t, "sseSubs back to 0", func() bool { return s.sseSubs.Load() == 0 })
}

// TestJobTrace submits a traced campaign, streams it, and checks the
// trace endpoint serves a Chrome trace_event document covering the
// incident lifecycle.
func TestJobTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	st := submit(t, ts, tracedCampaignSpecJSON(t), "?trace=4096")
	if st.TraceURL == "" {
		t.Fatal("traced job status lacks trace_url")
	}
	streamAll(t, ts, st.ID)

	resp, err := http.Get(ts.URL + st.TraceURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
		} `json:"traceEvents"`
		OtherData struct {
			Emitted uint64 `json:"emitted"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 || doc.OtherData.Emitted == 0 {
		t.Fatalf("empty trace document: %d events, %d emitted", len(doc.TraceEvents), doc.OtherData.Emitted)
	}
	pids := map[int]bool{}
	quarantines := 0
	for _, e := range doc.TraceEvents {
		pids[e.Pid] = true
		if e.Name == "quarantine" {
			quarantines++
		}
	}
	if len(pids) != 2 {
		t.Fatalf("trace covers %d processes, want 2 (one per run)", len(pids))
	}
	if quarantines == 0 {
		t.Fatal("no quarantine events in a recovery-armed burst-flood trace")
	}

	var m Metrics
	getJSON(t, ts.URL+"/metrics", &m)
	if m.Trace.EventsEmitted == 0 {
		t.Fatalf("trace_events_emitted metric still 0: %+v", m.Trace)
	}
}

// TestTraceValidation covers the submit- and fetch-side rejections.
func TestTraceValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	// trace=N on a sweep is a 400: sweeps have no incident timeline.
	resp, err := http.Post(ts.URL+"/api/v1/jobs?trace=64", "application/json",
		bytes.NewReader(sweepSpecJSON(t)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("trace on sweep: status %d, want 400", resp.StatusCode)
	}

	// A bad limit is a 400.
	resp, err = http.Post(ts.URL+"/api/v1/jobs?trace=zero", "application/json",
		bytes.NewReader(campaignSpecJSON(t)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("trace=zero: status %d, want 400", resp.StatusCode)
	}

	// The trace endpoint on an untraced job is a 404.
	st := submit(t, ts, campaignSpecJSON(t), "")
	if st.TraceURL != "" {
		t.Fatalf("untraced job advertises trace_url %q", st.TraceURL)
	}
	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace on untraced job: status %d, want 404", resp.StatusCode)
	}
}
