package server

import (
	"fmt"
	"io"
	"strconv"
)

// Prometheus renders the registry in the Prometheus text exposition format
// (version 0.0.4) — hand-rolled, dependency-free, and driven off the same
// Metrics snapshot the JSON payload marshals, which is the whole
// anti-drift design: there is no second registry to forget to update.
// Every numeric leaf of Metrics appears as exactly one sample here (the
// five job-state gauges share one metric name with a state label); the
// drift test in prom_test.go enforces the bijection by reflection.
func (m Metrics) Prometheus(w io.Writer) {
	gauge := func(name, help string, value string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, value)
	}
	counter := func(name, help string, value uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, value)
	}

	fmt.Fprintf(w, "# HELP mpsocd_jobs Jobs in the table by lifecycle state.\n# TYPE mpsocd_jobs gauge\n")
	fmt.Fprintf(w, "mpsocd_jobs{state=\"pending\"} %d\n", m.Jobs.Pending)
	fmt.Fprintf(w, "mpsocd_jobs{state=\"running\"} %d\n", m.Jobs.Running)
	fmt.Fprintf(w, "mpsocd_jobs{state=\"done\"} %d\n", m.Jobs.Done)
	fmt.Fprintf(w, "mpsocd_jobs{state=\"failed\"} %d\n", m.Jobs.Failed)
	fmt.Fprintf(w, "mpsocd_jobs{state=\"canceled\"} %d\n", m.Jobs.Canceled)

	gauge("mpsocd_shards_in_flight", "Grid points executing right now (held worker-pool slots).",
		strconv.FormatInt(m.ShardsInFlight, 10))
	counter("mpsocd_records_computed_total", "Finished simulation runs.", m.RecordsComputed)
	counter("mpsocd_records_streamed_total", "Records written to connected clients.", m.RecordsStreamed)
	gauge("mpsocd_worker_capacity", "Global worker-pool size.", strconv.Itoa(m.Workers.Capacity))
	gauge("mpsocd_workers_busy", "Worker-pool slots held.", strconv.FormatInt(m.Workers.Busy, 10))
	gauge("mpsocd_worker_utilization", "Busy workers over capacity.",
		strconv.FormatFloat(m.Workers.Utilization, 'g', -1, 64))
	gauge("mpsocd_sse_subscribers", "Connected /events subscribers.",
		strconv.FormatInt(m.SSE.Subscribers, 10))
	counter("mpsocd_sse_dropped_total", "Events dropped by the bounded SSE fan-out.", m.SSE.Dropped)
	counter("mpsocd_trace_events_emitted_total", "Trace events emitted across traced jobs.", m.Trace.EventsEmitted)
	counter("mpsocd_trace_events_dropped_total", "Trace events lost to per-run buffer bounds.", m.Trace.EventsDropped)
	counter("mpsocd_shard_retries_total", "Shard attempts retried after a failure.", m.Shards.Retries)
	counter("mpsocd_shards_poisoned_total", "Shards emitted as error records after exhausting retries.", m.Shards.Poisoned)
	counter("mpsocd_journal_appends_total", "Journal entries committed (written and fsync'd).", m.Journal.Appends)
	counter("mpsocd_journal_fsync_nanos_total", "Cumulative journal fsync time in nanoseconds.", m.Journal.FsyncNanosTotal)
	counter("mpsocd_journal_jobs_resumed_total", "Jobs resumed from the journal after a restart.", m.Journal.JobsResumed)
	counter("mpsocd_journal_records_resumed_total", "Records replayed verbatim from journal acks.", m.Journal.RecordsResumed)
	counter("mpsocd_journal_lines_discarded_total", "Torn journal tail lines discarded during replay.", m.Journal.LinesDiscarded)
	counter("mpsocd_coordinator_dispatches_total", "Shard streams dispatched to fleet backends.", m.Coordinator.Dispatches)
	counter("mpsocd_coordinator_retries_total", "Coordinator dispatch retries.", m.Coordinator.Retries)
	counter("mpsocd_coordinator_failovers_total", "Shards re-dispatched away from dead or draining backends.", m.Coordinator.Failovers)
	counter("mpsocd_host_exec_nanos_total", "Wall-clock nanoseconds executing shards (zero with host observability off).", m.Host.ExecNanosTotal)
	counter("mpsocd_host_allocs_total", "Heap objects allocated during shard execution (zero with host observability off).", m.Host.AllocsTotal)
	counter("mpsocd_host_bytes_streamed_total", "Record bytes streamed to clients (zero with host observability off).", m.Host.BytesStreamedTotal)
	// build_info follows the Prometheus convention: a constant-1 gauge
	// whose labels carry the identity (Metrics.Build.Info is its one
	// numeric leaf, keeping the drift test's bijection exact).
	fmt.Fprintf(w, "# HELP mpsocd_build_info Build identity: constant 1 with the VCS revision and dirty flag as labels.\n")
	fmt.Fprintf(w, "# TYPE mpsocd_build_info gauge\n")
	fmt.Fprintf(w, "mpsocd_build_info{revision=%q,dirty=\"%t\"} %d\n", m.Build.Revision, m.Build.Dirty, m.Build.Info)
}
