package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"repro/internal/campaign"
	"repro/internal/faultpoint"
	"repro/internal/hostobs"
	"repro/internal/sweep"
)

// mergeStallNanos is the merge-stall warning threshold: a single client
// write+flush blocking longer than this gets a structured warn, because
// fleet backpressure means a stalled coordinator client is stalling every
// backend behind it.
const mergeStallNanos = int64(100 * time.Millisecond)

// Fleet coordination. A Server with Config.Backends set simulates nothing
// itself: it accepts the same spec API, splits each job's grid into one
// cost-balanced sub-shard per healthy backend (sweep.Shard.Slice weighs
// grid points by simulated work, so backends finish together), POSTs the
// spec with ?shard=i/n&mode=stream to each, and k-way merges the shard
// streams back through sweep.Merge — producing the exact byte stream a
// single-node run of the same spec would have, which is what the chaos
// gate checks.
//
// The design is goroutine-free (keeping the determinism lint clean): each
// backend stream is dispatched sequentially — cheap, because handleStream
// flushes response headers before running, so the dispatch returns as soon
// as the backend accepts — and the concurrency lives server-side in the
// backends. Merge then consumes the live bodies with its one-line-per-shard
// buffer, which is also the fleet's backpressure: a slow coordinator
// client stalls Merge, which stops reading backend streams, which stalls
// backend emission through their own credit gates.
//
// Failover is byte-offset resume: every backend stream is wrapped in a
// fleetStream that counts consumed bytes; when a backend dies mid-stream
// (read error — a clean EOF means the shard completed), the shard is
// re-dispatched to the next live backend and the replacement stream's
// first `consumed` bytes are discarded. Skipping by byte count is sound
// for exactly one reason: shard streams are byte-identical across
// backends, the repo-wide determinism contract.

// healthy reports whether a backend answers GET /healthz with 200 within
// the probe window. Draining backends answer 503 and are skipped — that
// is the drain-aware half of graceful fleet shutdown.
func (s *Server) healthy(ctx context.Context, backend string) bool {
	if s.cfg.ShardTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.ShardTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, backend+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := s.cfg.FleetClient.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// runFleet executes a job by fanning its grid across the healthy backends
// and merging the shard streams. Called from run() when Backends is set.
func (s *Server) runFleet(ctx context.Context, j *Job, w io.Writer, rc *http.ResponseController, streamed bool) error {
	h := s.cfg.Host
	var live []string
	for _, b := range s.cfg.Backends {
		if s.healthy(ctx, b) {
			live = append(live, b)
			h.Info("backend probe", hostobs.Fields{Job: j.id, Trace: j.traceID, Backend: b, Detail: "healthy"})
		} else {
			h.Warn("backend probe", hostobs.Fields{Job: j.id, Trace: j.traceID, Backend: b, Detail: "unhealthy or draining; skipped"})
		}
	}
	if len(live) == 0 {
		return fmt.Errorf("fleet: none of %d backends are healthy", len(s.cfg.Backends))
	}

	// One sub-shard per healthy backend, never more shards than grid
	// points. A job submitted to the coordinator with its own ?shard=i/n
	// is already one slice of a larger partition, so it is forwarded whole
	// to a single backend (failover still applies).
	var shards []sweep.Shard
	if j.shard.Count > 1 {
		shards = []sweep.Shard{j.shard}
	} else {
		n := min(len(live), j.gridSize())
		for i := 0; i < n; i++ {
			shards = append(shards, sweep.Shard{Index: i, Count: n})
		}
	}

	streams := make([]io.Reader, len(shards))
	closers := make([]io.Closer, 0, len(shards))
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()
	for i, sh := range shards {
		fs := &fleetStream{
			s: s, j: j, ctx: ctx, body: j.body, shard: sh.String(), workers: j.workers,
			backends: live, next: i % len(live),
		}
		// Dispatch now, sequentially: header-flushing backends make this
		// return as soon as the shard is accepted, so dispatch latency is
		// one round-trip per backend, not one grid slice.
		if err := fs.dispatch(); err != nil {
			return err
		}
		streams[i] = fs
		closers = append(closers, fs)
	}
	return sweep.Merge(&fleetSink{s: s, j: j, rc: rc, streamed: streamed, w: w}, streams...)
}

// fleetStream is one sub-shard's merged input: a live backend response
// body with transparent re-dispatch. Read never surfaces a mid-stream
// backend death; it fails only when every backend has refused the shard.
type fleetStream struct {
	s        *Server
	j        *Job
	ctx      context.Context
	body     []byte
	shard    string
	workers  int
	backends []string
	next     int // rotation cursor into backends
	cur      io.ReadCloser
	consumed int64
}

func (f *fleetStream) Read(p []byte) (int, error) {
	for {
		n, err := f.cur.Read(p)
		f.consumed += int64(n)
		if err == nil || err == io.EOF {
			// A clean EOF is a completed shard: the backend's handler
			// returned normally and closed the chunked body properly. A
			// killed backend tears the connection instead, which is the
			// error branch below.
			return n, err
		}
		if f.ctx.Err() != nil {
			return n, err // our own client went away; no failover
		}
		f.cur.Close()
		f.s.coordFailovers.Add(1)
		h := f.s.cfg.Host
		h.Warn("backend failover", hostobs.Fields{Job: f.j.id, Trace: f.j.traceID,
			Err: err.Error(), Detail: fmt.Sprintf("shard %s died after %d bytes; re-dispatching", f.shard, f.consumed)})
		failStart := h.NowNanos()
		if derr := f.dispatch(); derr != nil {
			return n, derr
		}
		h.Span("failover", failStart, hostobs.Fields{Trace: f.j.traceID, Job: f.j.id,
			Err: err.Error(), Detail: "shard " + f.shard})
		if n > 0 {
			return n, nil
		}
	}
}

func (f *fleetStream) Close() error {
	if f.cur != nil {
		return f.cur.Close()
	}
	return nil
}

// dispatch submits the shard to the next backend in rotation that will
// take it, then fast-forwards the replacement stream past the bytes the
// merge already consumed (byte-identity makes the skip exact). Each
// refusal counts as a coordinator retry; when the rotation is exhausted
// the job fails.
func (f *fleetStream) dispatch() error {
	h := f.s.cfg.Host
	var lastErr error
	for try := 0; try < len(f.backends); try++ {
		backend := f.backends[f.next%len(f.backends)]
		f.next++
		dispStart := h.NowNanos()
		body, err := f.dispatchTo(backend)
		if err != nil {
			lastErr = fmt.Errorf("fleet: %s: %w", backend, err)
			f.s.coordRetries.Add(1)
			h.Warn("dispatch refused", hostobs.Fields{Job: f.j.id, Trace: f.j.traceID,
				Backend: backend, Err: err.Error(), Detail: "shard " + f.shard})
			continue
		}
		if f.consumed > 0 {
			if _, err := io.CopyN(io.Discard, body, f.consumed); err != nil {
				body.Close()
				lastErr = fmt.Errorf("fleet: %s: replaying %d consumed bytes: %w", backend, f.consumed, err)
				f.s.coordRetries.Add(1)
				continue
			}
		}
		f.cur = body
		f.s.coordDispatches.Add(1)
		h.Span("dispatch", dispStart, hostobs.Fields{Trace: f.j.traceID, Job: f.j.id,
			Backend: backend, Detail: "shard " + f.shard})
		h.Info("shard dispatched", hostobs.Fields{Job: f.j.id, Trace: f.j.traceID,
			Backend: backend, Detail: "shard " + f.shard})
		return nil
	}
	return fmt.Errorf("fleet: shard %s: every backend refused: %w", f.shard, lastErr)
}

// dispatchTo POSTs the spec as a shard job on one backend and opens its
// stream. The armed "coord.dispatch" faultpoint injects dispatch failures
// here — upstream of any backend I/O — to exercise the rotation.
func (f *fleetStream) dispatchTo(backend string) (io.ReadCloser, error) {
	if err := faultpoint.Hit("coord.dispatch"); err != nil {
		return nil, err
	}
	q := url.Values{"shard": {f.shard}, "mode": {"stream"}, "workers": {fmt.Sprint(f.workers)}}
	req, err := http.NewRequestWithContext(f.ctx, http.MethodPost,
		backend+"/api/v1/jobs?"+q.Encode(), bytes.NewReader(f.body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	// Propagate the fleet-wide trace ID: the backend's job adopts it, so
	// its execute/retry/journal-fsync spans stitch into the coordinator's
	// trace document.
	req.Header.Set(traceHeader, f.j.traceID)
	resp, err := f.s.cfg.FleetClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("submit: status %d: %s", resp.StatusCode, msg)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	sreq, err := http.NewRequestWithContext(f.ctx, http.MethodGet, backend+st.StreamURL, nil)
	if err != nil {
		return nil, err
	}
	sresp, err := f.s.cfg.FleetClient.Do(sreq)
	if err != nil {
		return nil, err
	}
	if sresp.StatusCode != http.StatusOK {
		sresp.Body.Close()
		return nil, fmt.Errorf("stream: status %d", sresp.StatusCode)
	}
	return sresp.Body, nil
}

// fleetSink is the merge output: it forwards each merged record line to
// the client and folds it into the job's aggregates, so /aggregates,
// /events snapshots and record counts work identically to a local run.
// sweep.Merge writes exactly one line per call.
type fleetSink struct {
	s        *Server
	j        *Job
	w        io.Writer
	rc       *http.ResponseController
	streamed bool
}

func (fs *fleetSink) Write(p []byte) (int, error) {
	h := fs.s.cfg.Host
	writeStart := h.NowNanos()
	if _, err := fs.w.Write(p); err != nil {
		return 0, err
	}
	if fs.rc != nil {
		if err := fs.rc.Flush(); err != nil {
			return 0, err
		}
	}
	// Backpressure diagnosis: a client write blocking this long means the
	// whole fleet is stalled behind the coordinator's client.
	if d := h.NowNanos() - writeStart; d > mergeStallNanos {
		h.Warn("merge stall", hostobs.Fields{Job: fs.j.id, Trace: fs.j.traceID,
			Detail: "client write blocked " + time.Duration(d).String()})
	}
	line := append([]byte(nil), bytes.TrimSuffix(p, []byte("\n"))...)
	j := fs.j
	if j.journaled {
		var hdr struct {
			Index int `json:"index"`
		}
		if err := json.Unmarshal(line, &hdr); err != nil {
			return 0, fmt.Errorf("fleet: backend record: %w", err)
		}
		if err := fs.s.cfg.Journal.AckShard(j.id, hdr.Index, line); err != nil {
			return 0, err
		}
	}
	if err := foldFleet(j, line); err != nil {
		return 0, err
	}
	j.mu.Lock()
	j.records++
	if j.h != nil {
		now := j.h.NowNanos()
		j.hostBytes += uint64(len(p))
		if j.hostFirst == 0 {
			j.hostFirst = now
		}
		j.hostLast = now
		fs.s.hostBytes.Add(uint64(len(p)))
	}
	if j.journaled {
		j.archive = append(j.archive, line)
	}
	if len(j.subs) > 0 && j.records%uint64(fs.s.cfg.SnapshotEvery) == 0 {
		fs.s.publishLocked(j, "snapshot", mustJSON(j.aggregatesLocked()))
	}
	j.mu.Unlock()
	if fs.streamed {
		fs.s.recordsStreamed.Add(1)
	}
	return len(p), nil
}

// foldFleet decodes one merged line into the job's aggregate under j.mu.
func foldFleet(j *Job, line []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.campaignGrid != nil {
		var rec campaign.Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("fleet: backend record: %w", err)
		}
		j.camp.Add(rec)
		return nil
	}
	var rec sweep.RunResult
	if err := json.Unmarshal(line, &rec); err != nil {
		return fmt.Errorf("fleet: backend record: %w", err)
	}
	j.swp.Add(rec)
	return nil
}

// Backends reports the coordinator's configured backend list (empty on a
// single-node daemon).
func (s *Server) Backends() []string { return s.cfg.Backends }
