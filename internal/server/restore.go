package server

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/campaign"
	"repro/internal/hostobs"
	"repro/internal/journal"
	"repro/internal/spec"
	"repro/internal/sweep"
)

// Restore rebuilds the job table from the configured journal — the boot
// step of a crash-safe daemon. Terminal jobs come back queryable: their
// aggregates are re-folded from the journaled records, and done jobs keep
// a stream archive so clients can re-read the byte-identical output.
// Interrupted jobs come back pending with a resume map (grid index -> the
// exact journaled record line); running them re-emits those lines verbatim
// and recomputes only the unacked shards, which reproduces the
// uninterrupted stream byte-for-byte because runs are deterministic.
// Interrupted aggregate-mode jobs restart detached immediately; stream-mode
// jobs wait for a client to claim the stream again.
//
// Restore returns the number of interrupted jobs resumed. A journal entry
// that no longer parses as a valid spec fails Restore — the journal was
// written by this server, so that is corruption, not input error.
func (s *Server) Restore() (resumed int, err error) {
	if s.cfg.Journal == nil {
		return 0, nil
	}
	logs, err := journal.Replay(s.cfg.Journal.Dir())
	if err != nil {
		return 0, err
	}
	sum := &ReplaySummary{}
	var pending []*Job
	for _, lg := range logs {
		j, err := s.rebuild(lg)
		if err != nil {
			return resumed, fmt.Errorf("restore %s: %w", lg.ID, err)
		}
		s.linesDiscarded.Add(uint64(lg.Discarded))
		sum.JobsRestored++
		sum.RecordsRestored += len(lg.Acks)
		sum.LinesDiscarded += lg.Discarded

		s.mu.Lock()
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		// Keep fresh submissions from colliding with restored ids.
		if n, perr := strconv.Atoi(strings.TrimPrefix(j.id, "job-")); perr == nil && n > s.nextID {
			s.nextID = n
		}
		s.mu.Unlock()

		if j.state == StatePending {
			resumed++
			s.jobsResumed.Add(1)
			sum.JobsResumed++
			pending = append(pending, j)
		}
	}
	s.mu.Lock()
	s.replay = sum
	s.mu.Unlock()
	// The one structured startup summary: everything replay decided, in a
	// single line, before any resumed job starts producing events.
	s.cfg.Host.Info("journal replay complete", hostobs.Fields{
		Detail: fmt.Sprintf("jobs_restored=%d jobs_resumed=%d records_restored=%d lines_discarded=%d",
			sum.JobsRestored, sum.JobsResumed, sum.RecordsRestored, sum.LinesDiscarded)})
	for _, j := range pending {
		if j.mode == "aggregate" {
			s.startDetached(j)
		}
	}
	return resumed, nil
}

// rebuild reconstructs one job from its journal log.
func (s *Server) rebuild(lg journal.JobLog) (*Job, error) {
	sp, err := spec.Parse(lg.Spec)
	if err != nil {
		return nil, err
	}
	sh, err := sweep.ParseShard(lg.Opts.Shard)
	if err == nil {
		err = sh.Validate()
	}
	if err != nil {
		return nil, err
	}
	workers := lg.Opts.Workers
	if workers < 1 {
		workers = s.cfg.Workers
	}
	mode := lg.Opts.Mode
	if mode == "" {
		mode = "stream"
	}
	// traceLimit stays zero: trace buffers are in-memory only and do not
	// survive a restart (the journal deliberately does not persist them).
	j := &Job{id: lg.ID, spec: sp, shard: sh, workers: min(workers, s.cfg.Workers),
		mode: mode, journaled: true, body: lg.Spec, h: s.cfg.Host, traceID: "t-" + lg.ID}
	switch sp.Kind {
	case spec.KindSweep:
		j.sweepGrid, err = sp.Sweep.Grid()
	case spec.KindCampaign:
		j.campaignGrid, err = sp.Campaign.Grid()
	}
	if err != nil {
		return nil, err
	}

	if lg.State != "" {
		// Terminal: fold the journaled records back into the aggregates and
		// keep the emitted lines as the replayable archive.
		j.state = lg.State
		j.errMsg = lg.ErrMsg
		for _, ack := range lg.Acks {
			if err := j.fold(ack.Record); err != nil {
				return nil, err
			}
			j.records++
			j.archive = append(j.archive, ack.Record)
		}
		return j, nil
	}

	// Interrupted: pending with every acked shard staged for verbatim
	// re-emission. Aggregates rebuild as the resumed run re-emits.
	j.state = StatePending
	j.resume = make(map[int][]byte, len(lg.Acks))
	for _, ack := range lg.Acks {
		j.resume[ack.Index] = ack.Record
	}
	return j, nil
}

// fold decodes one journaled record line into the job's aggregate.
func (j *Job) fold(line []byte) error {
	if j.campaignGrid != nil {
		var rec campaign.Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("journaled record: %w", err)
		}
		j.camp.Add(rec)
		return nil
	}
	var rec sweep.RunResult
	if err := json.Unmarshal(line, &rec); err != nil {
		return fmt.Errorf("journaled record: %w", err)
	}
	j.swp.Add(rec)
	return nil
}
