// Package server implements mpsocd, the long-running campaign service:
// one spec API shared with the CLI. Clients POST a versioned JSON spec
// (internal/spec) to create a job, then GET the job's stream to run it —
// the grid executes inside the stream handler's goroutine through the same
// credit-gated reorder pipeline as mpsocsim, so the JSONL bytes are
// identical to a direct CLI run with the same spec, across worker counts.
//
// Backpressure falls out of that structure rather than being bolted on: a
// slow client blocks its ResponseWriter, which stalls emission, which
// stops credits returning to the dispatcher, so at most 2x workers
// records are ever buffered per job. A disconnect cancels the request
// context, which stops dispatch and drains in-flight shard workers.
// Aggregates (detection/containment rates, react-latency and
// recovery-time percentiles) fold in online per job (internal/agg) and
// stay available after the stream finishes.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agg"
	"repro/internal/campaign"
	"repro/internal/hostobs"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/spec"
	"repro/internal/sweep"
)

// maxSpecBytes bounds the request body: specs are axis lists plus a few
// scalars; anything near this limit is not a spec.
const maxSpecBytes = 1 << 20

// Job lifecycle states.
const (
	StatePending  = "pending"  // submitted, stream not yet claimed
	StateRunning  = "running"  // grid executing
	StateDone     = "done"     // every grid point streamed
	StateFailed   = "failed"   // a sink or runner error ended the job
	StateCanceled = "canceled" // client disconnect or server shutdown
)

// Config parameterizes the service.
type Config struct {
	// Workers bounds simultaneous simulation runs across ALL jobs (the
	// global pool); per-job worker counts are capped by it. Defaults to
	// GOMAXPROCS.
	Workers int
	// MaxJobs bounds retained jobs; submissions beyond it are rejected
	// with 429 until the server restarts. Defaults to 1024.
	MaxJobs int
	// SnapshotEvery is the /events cadence: a partial aggregate snapshot
	// is published to subscribers every N records. Record counts, not
	// timers — the service stays wall-clock free. Defaults to 256.
	SnapshotEvery int
	// Journal, when non-nil, makes jobs durable: accepted specs, per-shard
	// completion acks and terminal states are fsync'd to it, and Restore
	// rebuilds the job table from it after a restart, resuming interrupted
	// jobs by re-dispatching only unacked shards.
	Journal *journal.Journal
	// RetryMax bounds attempts per shard before it is poisoned (emitted as
	// an error record without failing the job). Defaults to DefaultRetryMax.
	RetryMax int
	// RetryBase and RetryCap bound the exponential backoff between shard
	// attempts (deterministic jitter; see Backoff). Defaults
	// DefaultRetryBase / DefaultRetryCap.
	RetryBase time.Duration
	RetryCap  time.Duration
	// ShardTimeout is the per-attempt deadline. It preempts stalled
	// injectable work (faultpoints, and in the coordinator, backend I/O);
	// the simulation itself is bounded deterministically by the spec's
	// max_cycles. Zero means no deadline.
	ShardTimeout time.Duration
	// Sleep is the backoff sleep, injectable so tests run instantly.
	// Defaults to time.Sleep.
	Sleep func(time.Duration)
	// Backends, when non-empty, turns the server into a fleet coordinator:
	// jobs are not simulated locally but fanned out as ?shard=i/n streams
	// across the listed backend base URLs and k-way merged back
	// (byte-identically, via sweep.Merge). See coordinator.go.
	Backends []string
	// FleetClient is the coordinator's HTTP client (injectable for tests).
	// Defaults to http.DefaultClient.
	FleetClient *http.Client
	// Host is the node's host-observability layer: structured logs to
	// stderr, wall-clock spans, the flight recorder. nil disables all of
	// it — the disabled path costs zero allocations (hostobs methods are
	// nil-receiver-safe no-ops) and nothing host-time-dependent exists,
	// which is the configuration every determinism test runs with.
	Host *hostobs.Host
	// Build identifies the binary for the build_info metric. The zero
	// value renders as revision "unknown".
	Build hostobs.BuildInfo
}

// maxTraceLimit caps the per-run event buffer a client may request with
// ?trace=N, bounding per-job trace memory.
const maxTraceLimit = 1 << 20

// traceHeader carries the fleet-wide host trace ID from the coordinator
// to its backends, so every node's spans land in one trace document.
const traceHeader = "X-Mpsoc-Trace"

// sseBuf is the per-subscriber channel depth. A subscriber that falls
// further behind than this loses messages (counted in the sse_dropped
// metric) rather than stalling the job: sends never block.
const sseBuf = 16

// sseMsg is one server-sent event.
type sseMsg struct {
	event string
	data  []byte
}

// subscriber is one /events client. Kept in a slice, not a map, so
// publish order is deterministic and the lint stays clean.
type subscriber struct {
	id int
	ch chan sseMsg
}

// runTrace is one traced run retained for /trace, in emit (= grid) order.
type runTrace struct {
	pid  int
	name string
	tr   *obs.Tracer
}

// Job is one submitted spec and its execution state.
type Job struct {
	id      string
	spec    *spec.Spec
	shard   sweep.Shard
	workers int

	// Exactly one grid is non-nil, matching spec.Kind.
	campaignGrid []campaign.Config
	sweepGrid    []sweep.Config

	// traceLimit > 0 makes every run carry a bounded tracer (?trace=N).
	traceLimit int

	// mode is the submit mode (stream or aggregate), retained for the
	// journal and for resuming after a restart.
	mode string
	// body is the raw spec body, retained so a coordinator can re-POST it
	// to backends (dispatch and failover both need the exact bytes).
	body []byte
	// journaled marks jobs recorded in the server's journal.
	journaled bool
	// resume maps grid index -> the exact record line journaled before a
	// restart. Populated only by Restore, read-only afterwards: a resumed
	// run emits these bytes verbatim instead of recomputing the shard.
	resume map[int][]byte
	// archive collects every emitted record line (journaled jobs only), in
	// emission order, so a terminal job's stream can be replayed — by a
	// client that reconnects after a daemon restart, or by the chaos gate
	// comparing resumed output against an uninterrupted run.
	archive [][]byte

	// h mirrors Config.Host (nil when host observability is off) and
	// traceID is the job's fleet-wide trace: minted by the first node
	// that accepts the spec, adopted from the X-Mpsoc-Trace header when
	// a coordinator dispatched it, so spans recorded on different nodes
	// stitch into one document.
	h       *hostobs.Host
	traceID string

	mu      sync.Mutex
	state   string
	errMsg  string
	records uint64
	camp    agg.Campaign
	swp     agg.Sweep
	traces  []runTrace
	subs    []*subscriber
	nextSub int
	// Host resource accounting (hostobs-enabled nodes only): wall-clock
	// nanoseconds executing this job's shards, heap objects allocated
	// during them, record bytes streamed, and the first/last stream
	// timestamps that records/s derives from.
	hostExecNanos int64
	hostAllocs    uint64
	hostBytes     uint64
	hostFirst     int64
	hostLast      int64
	// shardErrs carries poisoned shards' last attempt errors into job
	// status (shards[i].last_error) and the terminal SSE event.
	shardErrs []ShardInfo
}

// gridSize is the job's total grid point count (whole grid, pre-shard).
func (j *Job) gridSize() int {
	if j.campaignGrid != nil {
		return len(j.campaignGrid)
	}
	return len(j.sweepGrid)
}

// Server is the campaign service. Create with New; serve via Handler.
type Server struct {
	cfg Config

	// pool is the global worker semaphore; busy counts held slots (the
	// "shards in flight" metric).
	pool chan struct{}
	busy atomic.Int64

	recordsComputed atomic.Uint64
	recordsStreamed atomic.Uint64

	sseSubs      atomic.Int64
	sseDropped   atomic.Uint64
	traceEmitted atomic.Uint64
	traceDropped atomic.Uint64

	// Robustness counters: shard attempts retried, shards poisoned after
	// RetryMax attempts, and the journal resume trail.
	shardRetries   atomic.Uint64
	shardsPoisoned atomic.Uint64
	jobsResumed    atomic.Uint64
	recordsResumed atomic.Uint64
	linesDiscarded atomic.Uint64

	// Coordinator counters (zero on single-node daemons): shard streams
	// dispatched to backends, dispatch retries, and shards re-dispatched
	// away from a dead or draining backend.
	coordDispatches atomic.Uint64
	coordRetries    atomic.Uint64
	coordFailovers  atomic.Uint64

	// Host resource counters (zero unless Config.Host is set): totals of
	// the per-job accounting.
	hostExecNanos atomic.Uint64
	hostAllocs    atomic.Uint64
	hostBytes     atomic.Uint64

	// draining flips /healthz to 503 once shutdown begins so routers stop
	// sending work; jobs canceled while draining skip the terminal journal
	// entry and stay resumable.
	draining atomic.Bool

	// baseCtx parents detached (aggregate-mode) jobs so Close cancels
	// them; detached tracks them so Close can wait.
	baseCtx  context.Context
	cancel   context.CancelFunc
	detached sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // insertion order: deterministic listings, no map-range
	nextID int
	// replay is the startup summary Restore built from the journal (nil
	// until Restore runs); /healthz includes it as detail.
	replay *ReplaySummary
}

// New builds a Server. The zero Config selects defaults.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 1024
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 256
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = DefaultRetryMax
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = DefaultRetryBase
	}
	if cfg.RetryCap <= 0 {
		cfg.RetryCap = DefaultRetryCap
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	if cfg.FleetClient == nil {
		cfg.FleetClient = http.DefaultClient
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:     cfg,
		pool:    make(chan struct{}, cfg.Workers),
		baseCtx: ctx,
		cancel:  cancel,
		jobs:    make(map[string]*Job),
	}
}

// Close cancels detached jobs and waits for them to drain. Streaming jobs
// are owned by their HTTP handlers; http.Server.Shutdown waits for those.
func (s *Server) Close() {
	s.cancel()
	s.detached.Wait()
}

// Handler returns the service's routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.handleDashboard)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /livez", s.handleLivez)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /api/v1/jobs/{id}/aggregates", s.handleAggregates)
	mux.HandleFunc("GET /api/v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /api/v1/jobs/{id}/hosttrace", s.handleHostTrace)
	mux.HandleFunc("GET /api/v1/hostspans", s.handleHostSpans)
	if s.cfg.Host != nil {
		mux.HandleFunc("GET /debug/flightrecorder", s.cfg.Host.ServeFlight)
	}
	return mux
}

// errorBody is the JSON error envelope. Fields carries spec field paths
// for validation failures, so a bad spec is a 400 naming the exact axis
// entry at fault — never a daemon death.
type errorBody struct {
	Error  string             `json:"error"`
	Fields []*spec.FieldError `json:"fields,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}

// Status is the serialized job state.
type Status struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	State    string `json:"state"`
	GridSize int    `json:"grid_size"`
	Shard    string `json:"shard"`
	Workers  int    `json:"workers"`
	Records  uint64 `json:"records"`
	Error    string `json:"error,omitempty"`

	// TraceID is the fleet-wide host trace ID (hostobs-enabled nodes
	// only); Shards carries poisoned shards' last attempt errors (sorted
	// by index, present whenever any shard was poisoned); Host is the
	// node's resource accounting for this job.
	TraceID string      `json:"trace_id,omitempty"`
	Shards  []ShardInfo `json:"shards,omitempty"`
	Host    *HostUsage  `json:"host,omitempty"`

	StreamURL     string `json:"stream_url"`
	AggregatesURL string `json:"aggregates_url"`
	EventsURL     string `json:"events_url"`
	TraceURL      string `json:"trace_url,omitempty"`
	HostTraceURL  string `json:"hosttrace_url,omitempty"`
}

// ShardInfo is one poisoned shard's terminal record in job status: the
// grid index, how many attempts it burned, and the last attempt's error.
type ShardInfo struct {
	Index     int    `json:"index"`
	Attempts  int    `json:"attempts"`
	LastError string `json:"last_error"`
}

// HostUsage is per-job host resource accounting (hostobs-enabled nodes
// only): wall-clock shard execution time, heap objects allocated during
// shard execution, record bytes streamed, and streaming throughput.
type HostUsage struct {
	ExecNanos     int64   `json:"exec_nanos"`
	Allocs        uint64  `json:"allocs"`
	BytesStreamed uint64  `json:"bytes_streamed"`
	RecordsPerSec float64 `json:"records_per_sec"`
}

// statusLocked builds the Status; j.mu must be held.
func (j *Job) statusLocked() Status {
	st := Status{
		ID:            j.id,
		Kind:          j.spec.Kind,
		State:         j.state,
		GridSize:      j.gridSize(),
		Shard:         j.shard.String(),
		Workers:       j.workers,
		Records:       j.records,
		Error:         j.errMsg,
		StreamURL:     "/api/v1/jobs/" + j.id + "/stream",
		AggregatesURL: "/api/v1/jobs/" + j.id + "/aggregates",
		EventsURL:     "/api/v1/jobs/" + j.id + "/events",
	}
	if j.traceLimit > 0 {
		st.TraceURL = "/api/v1/jobs/" + j.id + "/trace"
	}
	if len(j.shardErrs) > 0 {
		st.Shards = append([]ShardInfo(nil), j.shardErrs...)
		sort.Slice(st.Shards, func(a, b int) bool { return st.Shards[a].Index < st.Shards[b].Index })
	}
	if j.h != nil {
		st.TraceID = j.traceID
		st.HostTraceURL = "/api/v1/jobs/" + j.id + "/hosttrace"
		st.Host = j.hostUsageLocked()
	}
	return st
}

// hostUsageLocked snapshots the job's host accounting; j.mu must be held.
func (j *Job) hostUsageLocked() *HostUsage {
	u := &HostUsage{ExecNanos: j.hostExecNanos, Allocs: j.hostAllocs, BytesStreamed: j.hostBytes}
	if j.records > 0 && j.hostLast > j.hostFirst {
		u.RecordsPerSec = float64(j.records) / (float64(j.hostLast-j.hostFirst) / 1e9)
	}
	return u
}

func (j *Job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

// handleSubmit creates a job from a spec body. Query parameters:
// workers=N (capped at the server pool), shard=i/n (run one slice of the
// grid, for fleet-split campaigns), mode=stream|aggregate (aggregate
// starts the run immediately with a discarded stream — the
// millions-of-runs shape where only /aggregates matters).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading spec: "+err.Error())
		return
	}
	sp, err := spec.Parse(body)
	if err != nil {
		var verr *spec.ValidationError
		if errors.As(err, &verr) {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid spec", Fields: verr.Fields})
			return
		}
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	q := r.URL.Query()
	workers := s.cfg.Workers
	if v := q.Get("workers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("workers=%q: want a positive integer", v))
			return
		}
		workers = min(n, s.cfg.Workers)
	}
	sh, err := sweep.ParseShard(q.Get("shard"))
	if err == nil {
		err = sh.Validate()
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	mode := q.Get("mode")
	if mode == "" {
		mode = "stream"
	}
	if mode != "stream" && mode != "aggregate" {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("mode=%q: want stream or aggregate", mode))
		return
	}
	traceLimit := 0
	if v := q.Get("trace"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("trace=%q: want a positive event limit", v))
			return
		}
		if sp.Kind != spec.KindCampaign {
			httpError(w, http.StatusBadRequest, "trace=N applies to campaign jobs only (sweeps have no incident timeline)")
			return
		}
		traceLimit = min(n, maxTraceLimit)
	}

	j := &Job{spec: sp, shard: sh, workers: workers, state: StatePending, traceLimit: traceLimit, mode: mode, body: body, h: s.cfg.Host}
	// Grids build here so the spec's semantic reach (unknown scenario
	// names and the like) is also a 400, not a stream-time failure.
	switch sp.Kind {
	case spec.KindSweep:
		j.sweepGrid, err = sp.Sweep.Grid()
	case spec.KindCampaign:
		j.campaignGrid, err = sp.Campaign.Grid()
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	s.mu.Lock()
	if len(s.order) >= s.cfg.MaxJobs {
		s.mu.Unlock()
		httpError(w, http.StatusTooManyRequests,
			fmt.Sprintf("job table full (%d jobs retained)", s.cfg.MaxJobs))
		return
	}
	s.nextID++
	j.id = fmt.Sprintf("job-%04d", s.nextID)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
	// Adopt the coordinator's trace ID when this submit is a dispatched
	// shard; mint one otherwise, so every job's spans stitch fleet-wide.
	if j.traceID = r.Header.Get(traceHeader); j.traceID == "" {
		j.traceID = "t-" + j.id
	}

	// Durability point: once Accept returns, a crash anywhere after this
	// line leaves a journal from which Restore rebuilds (and resumes) the
	// job. A journal that cannot commit the accept refuses the job — the
	// client must never hold a job id the journal would forget.
	if s.cfg.Journal != nil {
		opts := journal.SubmitOpts{Workers: j.workers, Shard: j.shard.String(), Mode: mode}
		if err := s.cfg.Journal.Accept(j.id, body, opts); err != nil {
			s.unregister(j.id)
			httpError(w, http.StatusServiceUnavailable, "journal: "+err.Error())
			return
		}
		j.journaled = true
	}

	if h := s.cfg.Host; h != nil {
		h.Info("job accepted", hostobs.Fields{Job: j.id, Trace: j.traceID,
			Detail: fmt.Sprintf("kind=%s grid=%d shard=%s workers=%d mode=%s", sp.Kind, j.gridSize(), j.shard, j.workers, mode)})
	}
	if mode == "aggregate" {
		s.startDetached(j)
	}
	writeJSON(w, http.StatusCreated, j.status())
}

// unregister removes a job that failed to become durable.
func (s *Server) unregister(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
	for i, v := range s.order {
		if v == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// startDetached claims the job and runs it in the background against a
// discarded sink; only the online aggregates are observable. The job is
// freshly created and unpublished to no other runner, so the claim cannot
// race a stream handler.
func (s *Server) startDetached(j *Job) {
	j.mu.Lock()
	j.state = StateRunning
	s.publishLocked(j, "state", mustJSON(j.statusLocked()))
	j.mu.Unlock()
	j.h.Info("job started", hostobs.Fields{Job: j.id, Trace: j.traceID, Detail: "mode=aggregate (detached)"})
	s.detached.Add(1)
	go func() {
		defer s.detached.Done()
		err := s.run(s.baseCtx, j, io.Discard, nil, false)
		s.finish(j, s.baseCtx, err)
	}()
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *Job {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("no job %q", id))
	}
	return j
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*Job, len(s.order))
	for i, id := range s.order {
		jobs[i] = s.jobs[id]
	}
	s.mu.Unlock()
	statuses := make([]Status, len(jobs))
	for i, j := range jobs {
		statuses[i] = j.status()
	}
	writeJSON(w, http.StatusOK, statuses)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

// handleStream claims a pending job and executes its grid in this
// handler's goroutine, streaming JSONL as runs complete. The client's
// read pace is the pipeline's emission pace (credit-gated, bounded
// buffering); closing the connection cancels the request context, which
// stops dispatch and drains the in-flight workers.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	if j.state != StatePending {
		// A journaled job that already finished can be re-streamed: every
		// record line it emitted is in the archive, so a client that lost
		// its connection (or reconnects after a daemon restart) reads the
		// byte-identical stream back. Unjournaled jobs keep the original
		// contract: one stream, then 409.
		if j.state == StateDone && j.journaled && j.archive != nil {
			archive := j.archive // append-only and complete once done
			j.mu.Unlock()
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			for _, line := range archive {
				if _, err := w.Write(append(line, '\n')); err != nil {
					return
				}
				s.recordsStreamed.Add(1)
			}
			return
		}
		state := j.state
		j.mu.Unlock()
		httpError(w, http.StatusConflict, fmt.Sprintf("job %s is %s; a job streams once", j.id, state))
		return
	}
	j.state = StateRunning
	s.publishLocked(j, "state", mustJSON(j.statusLocked()))
	j.mu.Unlock()
	j.h.Info("stream claimed", hostobs.Fields{Job: j.id, Trace: j.traceID})

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	// Push the headers out now: the fleet coordinator dispatches every
	// shard stream before merging, and an unflushed header would make it
	// wait for the first record of each backend in turn.
	rc.Flush()
	err := s.run(r.Context(), j, w, rc, true)
	s.finish(j, r.Context(), err)
}

// run executes the job's grid through the sweep pipeline — the exact
// path mpsocsim takes, which is what the byte-identity gate checks. Each
// run wrapper holds a global pool slot, so total simulation concurrency
// respects Config.Workers no matter how many jobs stream at once.
func (s *Server) run(ctx context.Context, j *Job, w io.Writer, rc *http.ResponseController, streamed bool) error {
	if len(s.cfg.Backends) > 0 {
		return s.runFleet(ctx, j, w, rc, streamed)
	}
	acquire := func() {
		s.pool <- struct{}{}
		s.busy.Add(1)
	}
	release := func() {
		s.busy.Add(-1)
		<-s.pool
	}
	account := func(line []byte, add func()) error {
		if rc != nil {
			if err := rc.Flush(); err != nil {
				return err
			}
		}
		j.mu.Lock()
		add()
		j.records++
		if j.h != nil {
			now := j.h.NowNanos()
			j.hostBytes += uint64(len(line) + 1)
			if j.hostFirst == 0 {
				j.hostFirst = now
			}
			j.hostLast = now
			s.hostBytes.Add(uint64(len(line) + 1))
		}
		// Journaled jobs archive every emitted line (in emission order) so a
		// terminal job's stream can be replayed byte-identically — by a
		// reconnecting client or the chaos gate.
		if j.journaled {
			j.archive = append(j.archive, line)
		}
		// Partial aggregate snapshots fan out to /events subscribers every
		// SnapshotEvery records — a record count, not a timer, so cadence
		// is deterministic and the service stays wall-clock free.
		if len(j.subs) > 0 && j.records%uint64(s.cfg.SnapshotEvery) == 0 {
			s.publishLocked(j, "snapshot", mustJSON(j.aggregatesLocked()))
		}
		j.mu.Unlock()
		if streamed {
			s.recordsStreamed.Add(1)
		}
		return nil
	}
	// emit writes one record line and, for a freshly computed shard of a
	// journaled job, commits its ack. Resumed shards (raw != nil) were acked
	// in a previous life; re-acking would be a harmless duplicate (replay is
	// idempotent) but is skipped to keep the log minimal.
	emit := func(index int, raw []byte, fresh bool) error {
		if _, err := w.Write(append(raw, '\n')); err != nil {
			return err
		}
		if fresh && j.journaled {
			if err := s.cfg.Journal.AckShard(j.id, index, raw); err != nil {
				return err
			}
		}
		return nil
	}
	if j.campaignGrid != nil {
		// Campaign runs always flow through the traced runner; an untraced
		// job passes nil tracers, which cost nothing (campaign.RunOneTrace
		// attaches no subscriptions for them).
		type tracedRec struct {
			rec campaign.Record
			tr  *obs.Tracer
			raw []byte // resumed shard: the journaled line, emitted verbatim
		}
		return sweep.StreamContext(ctx, len(j.campaignGrid), j.shard,
			campaign.Weights(j.campaignGrid), j.workers,
			func(i int) tracedRec {
				if line, ok := j.resume[i]; ok {
					s.recordsResumed.Add(1)
					return tracedRec{raw: line}
				}
				acquire()
				defer release()
				tr := obs.New(j.traceLimit)
				var rec campaign.Record
				if err := s.executeShard(ctx, j, i, func() {
					rec = campaign.RunOneTrace(j.campaignGrid[i], tr)
				}); err != nil {
					// Poisoned: an error record holds the shard's grid slot so
					// the stream stays gap-free and the job survives.
					rec = campaign.Record{Name: j.campaignGrid[i].Name(), Err: "shard poisoned: " + err.Error()}
					tr = nil
				}
				rec.Index = i
				s.recordsComputed.Add(1)
				return tracedRec{rec: rec, tr: tr}
			},
			func(t tracedRec) error {
				line := t.raw
				if line == nil {
					var err error
					if line, err = json.Marshal(t.rec); err != nil {
						return err
					}
				} else if err := json.Unmarshal(line, &t.rec); err != nil {
					return fmt.Errorf("resumed record: %w", err)
				}
				if err := emit(t.rec.Index, line, t.raw == nil); err != nil {
					return err
				}
				if t.tr != nil {
					s.traceEmitted.Add(t.tr.Emitted())
					s.traceDropped.Add(t.tr.Dropped())
				}
				return account(line, func() {
					j.camp.Add(t.rec)
					if t.tr != nil {
						j.traces = append(j.traces, runTrace{pid: t.rec.Index + 1, name: t.rec.Name, tr: t.tr})
					}
				})
			})
	}
	type sweepOut struct {
		rec sweep.RunResult
		raw []byte // resumed shard: the journaled line, emitted verbatim
	}
	return sweep.StreamContext(ctx, len(j.sweepGrid), j.shard,
		sweep.Weights(j.sweepGrid), j.workers,
		func(i int) sweepOut {
			if line, ok := j.resume[i]; ok {
				s.recordsResumed.Add(1)
				return sweepOut{raw: line}
			}
			acquire()
			defer release()
			var rec sweep.RunResult
			if err := s.executeShard(ctx, j, i, func() {
				rec = sweep.RunOne(j.sweepGrid[i])
			}); err != nil {
				rec = sweep.RunResult{Name: j.sweepGrid[i].Name(), Err: "shard poisoned: " + err.Error()}
			}
			rec.Index = i
			s.recordsComputed.Add(1)
			return sweepOut{rec: rec}
		},
		func(t sweepOut) error {
			line := t.raw
			if line == nil {
				var err error
				if line, err = json.Marshal(t.rec); err != nil {
					return err
				}
			} else if err := json.Unmarshal(line, &t.rec); err != nil {
				return fmt.Errorf("resumed record: %w", err)
			}
			if err := emit(t.rec.Index, line, t.raw == nil); err != nil {
				return err
			}
			return account(line, func() { j.swp.Add(t.rec) })
		})
}

// finish records the job's terminal state. A canceled context means the
// client went away (or the server is shutting down) — that is a canceled
// job, not a failed one, even when the surfaced error is a write error on
// the dead connection.
func (s *Server) finish(j *Job, ctx context.Context, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case err == nil:
		j.state = StateDone
	case ctx.Err() != nil:
		j.state = StateCanceled
		j.errMsg = context.Cause(ctx).Error()
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
	// Seal the journal — except for jobs canceled by a draining shutdown,
	// which are interruptions, not decisions: leaving their logs unsealed is
	// what makes the next life resume them.
	if j.journaled && !(j.state == StateCanceled && s.draining.Load()) {
		s.cfg.Journal.Term(j.id, j.state, j.errMsg)
	}
	if h := j.h; h != nil {
		f := hostobs.Fields{Job: j.id, Trace: j.traceID, Err: j.errMsg,
			Detail: fmt.Sprintf("records=%d", j.records)}
		switch j.state {
		case StateDone:
			h.Info("job done", f)
		case StateCanceled:
			h.Warn("job canceled", f)
		default:
			h.Error("job failed", f)
		}
	}
	// Terminal fan-out: the final aggregate snapshot, the terminal state,
	// then close every subscriber channel so /events handlers end their
	// streams. Later subscribers get an immediate replay instead.
	if len(j.subs) > 0 {
		s.publishLocked(j, "snapshot", mustJSON(j.aggregatesLocked()))
		s.publishLocked(j, "state", mustJSON(j.statusLocked()))
		for _, sub := range j.subs {
			close(sub.ch)
		}
		j.subs = nil
	}
}

// publishLocked sends one event to every subscriber without ever blocking:
// a full channel drops the message and counts it. j.mu must be held.
func (s *Server) publishLocked(j *Job, event string, data []byte) {
	for _, sub := range j.subs {
		select {
		case sub.ch <- sseMsg{event: event, data: data}:
		default:
			s.sseDropped.Add(1)
		}
	}
}

// mustJSON marshals values whose types cannot fail to marshal.
func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		return []byte(`{"error":"marshal failure"}`)
	}
	return data
}

// Aggregates is the /aggregates payload: job identity plus the online
// aggregate snapshot (agg.CampaignSnapshot or agg.SweepSnapshot).
type Aggregates struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Records uint64 `json:"records"`
	// Aggregates marshals the kind-specific snapshot; recomputing it
	// offline over the job's JSONL stream yields byte-identical JSON
	// (gated by make serve-determinism).
	Aggregates any `json:"aggregates"`
	// Host is the per-job host resource accounting (hostobs-enabled
	// nodes only). It rides next to — never inside — the Aggregates
	// field, which is the only part the serve-determinism gate compares,
	// so host timing can never leak into the byte-identity contract.
	Host *HostUsage `json:"host,omitempty"`
}

// aggregatesLocked builds the payload; j.mu must be held.
func (j *Job) aggregatesLocked() Aggregates {
	out := Aggregates{ID: j.id, State: j.state, Records: j.records}
	if j.h != nil {
		out.Host = j.hostUsageLocked()
	}
	if j.campaignGrid != nil {
		out.Aggregates = j.camp.Snapshot()
	} else {
		out.Aggregates = j.swp.Snapshot()
	}
	return out
}

func (s *Server) handleAggregates(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	out := j.aggregatesLocked()
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// terminal reports whether a state is a job's final one.
func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

// handleEvents is the live job feed: a server-sent event stream carrying
// "state" events on every lifecycle transition and "snapshot" events (the
// /aggregates payload) every Config.SnapshotEvery records. Subscribing
// replays the current state and snapshot immediately; a terminal job's
// stream ends right after the replay. Sends to a slow subscriber drop
// rather than block, so a stalled dashboard can never stall a job.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)

	j.mu.Lock()
	st := j.statusLocked()
	snap := j.aggregatesLocked()
	var ch chan sseMsg
	var id int
	if !terminal(st.State) {
		ch = make(chan sseMsg, sseBuf)
		j.nextSub++
		id = j.nextSub
		j.subs = append(j.subs, &subscriber{id: id, ch: ch})
	}
	j.mu.Unlock()

	writeSSE := func(event string, data []byte) bool {
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		return rc.Flush() == nil
	}
	if !writeSSE("state", mustJSON(st)) || !writeSSE("snapshot", mustJSON(snap)) {
		// fall through to unsubscribe below (ch may be registered)
	}
	if ch == nil {
		return
	}
	s.sseSubs.Add(1)
	defer s.sseSubs.Add(-1)
	defer func() {
		j.mu.Lock()
		for i, sub := range j.subs {
			if sub.id == id {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				break
			}
		}
		j.mu.Unlock()
	}()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case m, ok := <-ch:
			if !ok {
				return // job finished; terminal state already delivered
			}
			if !writeSSE(m.event, m.data) {
				return
			}
		}
	}
}

// handleTrace renders a traced job's runs as one Chrome trace_event JSON
// document — pid per run, in grid order. 404 unless the job was submitted
// with ?trace=N. Serving mid-run is fine: the document covers the runs
// emitted so far.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	limit := j.traceLimit
	traces := append([]runTrace(nil), j.traces...)
	j.mu.Unlock()
	if limit == 0 {
		httpError(w, http.StatusNotFound, fmt.Sprintf("job %s was not traced (submit with ?trace=N)", j.id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	tw := obs.NewTraceWriter(w)
	for _, rt := range traces {
		if err := tw.Process(rt.pid, rt.name, rt.tr); err != nil {
			return // client went away mid-stream; nothing to salvage
		}
	}
	tw.Close()
}

// healthStatus is the /healthz body: the probe verdict plus, after a
// journaled restart, the replay summary (what Restore rebuilt).
type healthStatus struct {
	Status string         `json:"status"`
	Replay *ReplaySummary `json:"replay,omitempty"`
}

// handleHealthz is the readiness probe: 200 while accepting work, 503 once
// draining so load balancers and the fleet coordinator stop routing new
// shards here while in-flight streams finish.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	replay := s.replay
	s.mu.Unlock()
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, healthStatus{Status: "draining", Replay: replay})
		return
	}
	writeJSON(w, http.StatusOK, healthStatus{Status: "ok", Replay: replay})
}

// handleLivez is the liveness probe: 200 until the process exits, draining
// or not — restarts are for dead processes, not draining ones.
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "alive"})
}

// BeginDrain flips /healthz to 503. Call it before http.Server.Shutdown;
// jobs canceled after this point skip their terminal journal entry and
// stay resumable.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
	s.cfg.Host.Warn("drain begun", hostobs.Fields{Detail: "healthz=503; in-flight streams finishing"})
}

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Metrics is the one metrics registry: a single snapshot struct that both
// the JSON payload and the Prometheus text exposition (prom.go) render
// from, so the two views can never drift — the drift test counts this
// struct's numeric leaves against the Prometheus sample count.
type Metrics struct {
	Jobs struct {
		Pending  int `json:"pending"`
		Running  int `json:"running"`
		Done     int `json:"done"`
		Failed   int `json:"failed"`
		Canceled int `json:"canceled"`
	} `json:"jobs"`
	// ShardsInFlight is the number of grid points executing right now ==
	// held worker-pool slots.
	ShardsInFlight int64 `json:"shards_in_flight"`
	// RecordsComputed counts finished simulation runs; RecordsStreamed
	// counts records written to connected clients (detached jobs compute
	// without streaming). Computed can exceed streamed by at most the sum
	// of per-job reorder windows (2x workers each) plus detached work —
	// the backpressure bound.
	RecordsComputed uint64 `json:"records_computed"`
	RecordsStreamed uint64 `json:"records_streamed"`
	Workers         struct {
		Capacity    int     `json:"capacity"`
		Busy        int64   `json:"busy"`
		Utilization float64 `json:"utilization"`
	} `json:"workers"`
	// SSE covers the /events feeds: currently-connected subscribers and
	// messages dropped by the bounded non-blocking fan-out.
	SSE struct {
		Subscribers int64  `json:"subscribers"`
		Dropped     uint64 `json:"dropped"`
	} `json:"sse"`
	// Trace covers per-run incident tracers across traced jobs: events
	// emitted and events lost to per-run buffer bounds.
	Trace struct {
		EventsEmitted uint64 `json:"events_emitted"`
		EventsDropped uint64 `json:"events_dropped"`
	} `json:"trace"`
	// Shards covers the retry policy: attempts retried after a failure and
	// shards poisoned (emitted as error records) after RetryMax attempts.
	Shards struct {
		Retries  uint64 `json:"retries"`
		Poisoned uint64 `json:"poisoned"`
	} `json:"shards"`
	// Journal covers durability: committed appends, cumulative fsync time
	// (mean fsync latency = fsync_nanos_total / appends), jobs and records
	// resumed after a restart, and torn tail lines discarded by replay.
	Journal struct {
		Appends         uint64 `json:"appends"`
		FsyncNanosTotal uint64 `json:"fsync_nanos_total"`
		JobsResumed     uint64 `json:"jobs_resumed"`
		RecordsResumed  uint64 `json:"records_resumed"`
		LinesDiscarded  uint64 `json:"lines_discarded"`
	} `json:"journal"`
	// Coordinator covers fleet fan-out (zero on single-node daemons):
	// backend shard dispatches, dispatch retries, and failovers away from
	// dead or draining backends.
	Coordinator struct {
		Dispatches uint64 `json:"dispatches"`
		Retries    uint64 `json:"retries"`
		Failovers  uint64 `json:"failovers"`
	} `json:"coordinator"`
	// Host covers host resource accounting (zero unless the daemon runs
	// with host observability enabled): wall-clock shard execution time,
	// heap objects allocated during shard execution, record bytes
	// streamed to clients.
	Host struct {
		ExecNanosTotal     uint64 `json:"exec_nanos_total"`
		AllocsTotal        uint64 `json:"allocs_total"`
		BytesStreamedTotal uint64 `json:"bytes_streamed_total"`
	} `json:"host"`
	// Build identifies the binary: Info is the constant-1 gauge value
	// (Prometheus build_info convention); revision and dirty ride as
	// labels in the text exposition and as fields here.
	Build struct {
		Revision string `json:"revision"`
		Dirty    bool   `json:"dirty"`
		Info     int    `json:"info"`
	} `json:"build"`
}

// metricsSnapshot gathers the registry from the live counters.
func (s *Server) metricsSnapshot() Metrics {
	var m Metrics
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	for _, id := range ids {
		s.mu.Lock()
		j := s.jobs[id]
		s.mu.Unlock()
		j.mu.Lock()
		state := j.state
		j.mu.Unlock()
		switch state {
		case StatePending:
			m.Jobs.Pending++
		case StateRunning:
			m.Jobs.Running++
		case StateDone:
			m.Jobs.Done++
		case StateFailed:
			m.Jobs.Failed++
		case StateCanceled:
			m.Jobs.Canceled++
		}
	}
	m.ShardsInFlight = s.busy.Load()
	m.RecordsComputed = s.recordsComputed.Load()
	m.RecordsStreamed = s.recordsStreamed.Load()
	m.Workers.Capacity = s.cfg.Workers
	m.Workers.Busy = m.ShardsInFlight
	m.Workers.Utilization = float64(m.ShardsInFlight) / float64(s.cfg.Workers)
	m.SSE.Subscribers = s.sseSubs.Load()
	m.SSE.Dropped = s.sseDropped.Load()
	m.Trace.EventsEmitted = s.traceEmitted.Load()
	m.Trace.EventsDropped = s.traceDropped.Load()
	m.Shards.Retries = s.shardRetries.Load()
	m.Shards.Poisoned = s.shardsPoisoned.Load()
	if s.cfg.Journal != nil {
		m.Journal.Appends = s.cfg.Journal.Appends()
		m.Journal.FsyncNanosTotal = s.cfg.Journal.FsyncNanos()
	}
	m.Journal.JobsResumed = s.jobsResumed.Load()
	m.Journal.RecordsResumed = s.recordsResumed.Load()
	m.Journal.LinesDiscarded = s.linesDiscarded.Load()
	m.Coordinator.Dispatches = s.coordDispatches.Load()
	m.Coordinator.Retries = s.coordRetries.Load()
	m.Coordinator.Failovers = s.coordFailovers.Load()
	m.Host.ExecNanosTotal = s.hostExecNanos.Load()
	m.Host.AllocsTotal = s.hostAllocs.Load()
	m.Host.BytesStreamedTotal = s.hostBytes.Load()
	m.Build.Revision = s.cfg.Build.Revision
	if m.Build.Revision == "" {
		m.Build.Revision = "unknown"
	}
	m.Build.Dirty = s.cfg.Build.Dirty
	m.Build.Info = 1
	return m
}

// handleMetrics serves the registry. JSON by default (the original
// payload); the Prometheus text exposition with ?format=prometheus or an
// Accept header asking for text/plain or openmetrics (what scrapers send).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.metricsSnapshot()
	format := r.URL.Query().Get("format")
	accept := r.Header.Get("Accept")
	if format == "prometheus" ||
		(format == "" && (strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics"))) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		m.Prometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, m)
}
