package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/faultpoint"
)

// newFleet builds a coordinator over n real backend servers.
func newFleet(t *testing.T, n int, cfg Config) (*Server, *httptest.Server, []*Server, []*httptest.Server) {
	t.Helper()
	var backends []*Server
	var backendTS []*httptest.Server
	for i := 0; i < n; i++ {
		s, ts := newTestServer(t, Config{Workers: 2})
		backends = append(backends, s)
		backendTS = append(backendTS, ts)
		cfg.Backends = append(cfg.Backends, ts.URL)
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	coord, coordTS := newTestServer(t, cfg)
	return coord, coordTS, backends, backendTS
}

// TestFleetMergesByteIdentically is the coordinator's core contract: a
// spec fanned across two backends streams the exact bytes a single-node
// run produces, and the coordinator's aggregates match too.
func TestFleetMergesByteIdentically(t *testing.T) {
	_, single := newTestServer(t, Config{Workers: 2})
	sid := submit(t, single, campaignSpecJSON(t), "").ID
	want := streamAll(t, single, sid)
	var wantAgg json.RawMessage
	getJSON(t, single.URL+"/api/v1/jobs/"+sid+"/aggregates", &wantAgg)

	coord, coordTS, _, _ := newFleet(t, 2, Config{})
	st := submit(t, coordTS, campaignSpecJSON(t), "")
	got := streamAll(t, coordTS, st.ID)
	if !bytes.Equal(got, want) {
		t.Fatal("fleet-merged stream differs from single-node run")
	}
	var gotAgg json.RawMessage
	getJSON(t, coordTS.URL+"/api/v1/jobs/"+st.ID+"/aggregates", &gotAgg)
	if !bytes.Equal(gotAgg, wantAgg) {
		t.Fatalf("fleet aggregates differ:\n got %s\nwant %s", gotAgg, wantAgg)
	}
	m := coord.metricsSnapshot()
	if m.Coordinator.Dispatches != 2 || m.Coordinator.Failovers != 0 {
		t.Fatalf("dispatches=%d failovers=%d, want 2/0", m.Coordinator.Dispatches, m.Coordinator.Failovers)
	}
	if m.RecordsComputed != 0 {
		t.Fatal("coordinator claims to have computed records itself")
	}
}

// TestFleetSkipsDrainingBackend: a draining backend answers /healthz with
// 503 and must receive no shards.
func TestFleetSkipsDrainingBackend(t *testing.T) {
	_, single := newTestServer(t, Config{Workers: 2})
	want := streamAll(t, single, submit(t, single, sweepSpecJSON(t), "").ID)

	coord, coordTS, backends, _ := newFleet(t, 2, Config{})
	backends[1].BeginDrain()
	st := submit(t, coordTS, sweepSpecJSON(t), "")
	got := streamAll(t, coordTS, st.ID)
	if !bytes.Equal(got, want) {
		t.Fatal("stream with a draining backend differs from single-node run")
	}
	if n := backends[1].metricsSnapshot().RecordsComputed; n != 0 {
		t.Fatalf("draining backend computed %d records", n)
	}
	if d := coord.metricsSnapshot().Coordinator.Dispatches; d != 1 {
		t.Fatalf("dispatches = %d, want 1 (everything on the healthy backend)", d)
	}
}

// TestFleetNoHealthyBackendsFailsJob: with every backend down the job
// fails cleanly instead of hanging.
func TestFleetNoHealthyBackendsFailsJob(t *testing.T) {
	_, coordTS, _, backendTS := newFleet(t, 1, Config{})
	backendTS[0].Close()
	st := submit(t, coordTS, sweepSpecJSON(t), "")
	resp, err := http.Get(coordTS.URL + st.StreamURL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	var got Status
	getJSON(t, coordTS.URL+"/api/v1/jobs/"+st.ID, &got)
	if got.State != StateFailed || !strings.Contains(got.Error, "healthy") {
		t.Fatalf("job = %s (%q), want failed with no-healthy-backends error", got.State, got.Error)
	}
}

// flakyBackend proxies one real backend but tears the connection after
// forwarding half of each stream — a backend that dies mid-job.
type flakyBackend struct {
	mu      sync.Mutex
	target  string
	client  *http.Client
	tripped bool // tear at most once, so the retried dispatch can finish
}

func (f *flakyBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/healthz":
		w.Write([]byte(`{"status":"ok"}`))
	case r.Method == http.MethodPost:
		body, _ := io.ReadAll(r.Body)
		resp, err := f.client.Post(f.target+r.URL.Path+"?"+r.URL.RawQuery, "application/json", bytes.NewReader(body))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	default: // stream GET: forward half, then die
		resp, err := f.client.Get(f.target + r.URL.Path)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		full, _ := io.ReadAll(resp.Body)
		f.mu.Lock()
		trip := !f.tripped
		f.tripped = true
		f.mu.Unlock()
		if !trip {
			w.Write(full)
			return
		}
		w.Write(full[:len(full)/2])
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		panic(http.ErrAbortHandler) // tear the connection: no terminal chunk
	}
}

// TestFleetFailoverSurvivesBackendDeath is the headline robustness claim:
// a backend dying mid-stream costs nothing but a re-dispatch — the merged
// output is still byte-identical to a single-node run, because the
// replacement stream is fast-forwarded past the consumed bytes.
func TestFleetFailoverSurvivesBackendDeath(t *testing.T) {
	_, single := newTestServer(t, Config{Workers: 2})
	want := streamAll(t, single, submit(t, single, campaignSpecJSON(t), "").ID)

	_, realTS := newTestServer(t, Config{Workers: 2})
	flaky := httptest.NewServer(&flakyBackend{target: realTS.URL, client: realTS.Client()})
	t.Cleanup(flaky.Close)

	coord, coordTS, _, _ := newFleet(t, 0, Config{Backends: []string{flaky.URL, realTS.URL}})
	st := submit(t, coordTS, campaignSpecJSON(t), "")
	got := streamAll(t, coordTS, st.ID)
	if !bytes.Equal(got, want) {
		t.Fatal("failover stream differs from single-node run")
	}
	m := coord.metricsSnapshot()
	if m.Coordinator.Failovers == 0 {
		t.Fatal("no failover recorded — the flaky backend never tripped, test is vacuous")
	}
}

// TestFleetDispatchFaultpointRotates: an injected dispatch error on the
// first attempt rotates to the next backend and counts a retry.
func TestFleetDispatchFaultpointRotates(t *testing.T) {
	t.Cleanup(faultpoint.Disarm)
	_, single := newTestServer(t, Config{Workers: 2})
	want := streamAll(t, single, submit(t, single, sweepSpecJSON(t), "").ID)

	coord, coordTS, _, _ := newFleet(t, 2, Config{})
	if err := faultpoint.Arm("coord.dispatch=error:injected@1"); err != nil {
		t.Fatal(err)
	}
	st := submit(t, coordTS, sweepSpecJSON(t), "")
	got := streamAll(t, coordTS, st.ID)
	if !bytes.Equal(got, want) {
		t.Fatal("stream after dispatch retry differs")
	}
	m := coord.metricsSnapshot()
	if m.Coordinator.Retries != 1 || m.Coordinator.Dispatches != 2 {
		t.Fatalf("retries=%d dispatches=%d, want 1/2", m.Coordinator.Retries, m.Coordinator.Dispatches)
	}
}
