package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/journal"
)

func TestBackoffDeterministicAndBounded(t *testing.T) {
	base, cap := 25*time.Millisecond, time.Second
	for attempt := 1; attempt <= 8; attempt++ {
		d1 := Backoff("job-0001", 3, attempt, base, cap)
		d2 := Backoff("job-0001", 3, attempt, base, cap)
		if d1 != d2 {
			t.Fatalf("attempt %d: backoff not deterministic (%v vs %v)", attempt, d1, d2)
		}
		if d1 < base/2 || d1 > cap {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d1, base/2, cap)
		}
	}
	// Different shards of the same job spread out (the fleet-thundering-herd
	// property). Equal values are astronomically unlikely with FNV-1a.
	if Backoff("job-0001", 0, 1, base, cap) == Backoff("job-0001", 1, 1, base, cap) {
		t.Fatal("jitter does not vary by shard index")
	}
}

func TestHealthzDrainsLivezStays(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	code, body := probe(t, ts.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz before drain: %d %s", code, body)
	}
	s.BeginDrain()
	code, body = probe(t, ts.URL+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("healthz during drain: %d %s, want 503 draining", code, body)
	}
	code, body = probe(t, ts.URL+"/livez")
	if code != http.StatusOK || !strings.Contains(body, "alive") {
		t.Fatalf("livez during drain: %d %s, want 200 alive", code, body)
	}
}

func probe(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

// TestRetryRecoversByteIdentically injects one transient shard failure and
// checks the retried stream is byte-identical to an unfaulted run — the
// whole point of retrying deterministic work.
func TestRetryRecoversByteIdentically(t *testing.T) {
	t.Cleanup(faultpoint.Disarm)
	_, clean := newTestServer(t, Config{Workers: 1})
	want := streamAll(t, clean, submit(t, clean, sweepSpecJSON(t), "").ID)

	var mu sync.Mutex
	var slept []time.Duration
	s, ts := newTestServer(t, Config{Workers: 1, Sleep: func(d time.Duration) {
		mu.Lock()
		slept = append(slept, d)
		mu.Unlock()
	}})
	// Third attempt overall = shard index 2, first attempt: fails once.
	if err := faultpoint.Arm("server.shard=error:transient@3"); err != nil {
		t.Fatal(err)
	}
	got := streamAll(t, ts, submit(t, ts, sweepSpecJSON(t), "").ID)
	if !bytes.Equal(got, want) {
		t.Fatal("retried stream differs from unfaulted stream")
	}
	m := s.metricsSnapshot()
	if m.Shards.Retries != 1 || m.Shards.Poisoned != 0 {
		t.Fatalf("retries=%d poisoned=%d, want 1/0", m.Shards.Retries, m.Shards.Poisoned)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(slept) != 1 || slept[0] != Backoff("job-0001", 2, 1, DefaultRetryBase, DefaultRetryCap) {
		t.Fatalf("backoff sleeps = %v, want the deterministic schedule", slept)
	}
}

// TestPoisonedShardDoesNotFailJob arms a permanent shard failure: every
// shard exhausts its retries and is emitted as an error record, but the
// job itself completes and the stream stays gap-free.
func TestPoisonedShardDoesNotFailJob(t *testing.T) {
	t.Cleanup(faultpoint.Disarm)
	s, ts := newTestServer(t, Config{Workers: 2, RetryMax: 2, Sleep: func(time.Duration) {}})
	if err := faultpoint.Arm("server.shard=error:disk on fire"); err != nil {
		t.Fatal(err)
	}
	st := submit(t, ts, campaignSpecJSON(t), "")
	body := streamAll(t, ts, st.ID)
	lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	if len(lines) != st.GridSize {
		t.Fatalf("streamed %d lines, want %d (poisoned shards must hold their slots)", len(lines), st.GridSize)
	}
	for i, line := range lines {
		var rec struct {
			Index int    `json:"index"`
			Err   string `json:"error"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Index != i || !strings.Contains(rec.Err, "shard poisoned") {
			t.Fatalf("line %d: index=%d error=%q", i, rec.Index, rec.Err)
		}
	}
	var got Status
	getJSON(t, ts.URL+"/api/v1/jobs/"+st.ID, &got)
	if got.State != StateDone {
		t.Fatalf("job state = %s, want done (poisoning never fails the job)", got.State)
	}
	m := s.metricsSnapshot()
	if m.Shards.Poisoned != uint64(st.GridSize) || m.Shards.Retries != uint64(st.GridSize) {
		t.Fatalf("poisoned=%d retries=%d, want %d/%d", m.Shards.Poisoned, m.Shards.Retries, st.GridSize, st.GridSize)
	}
}

// TestJournalRejectionRefusesJob: a journal that cannot commit the accept
// entry must refuse the submission — the client may never hold a job id
// the journal would forget.
func TestJournalRejectionRefusesJob(t *testing.T) {
	t.Cleanup(faultpoint.Disarm)
	jn, err := journal.Open(t.TempDir(), journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(jn.Close)
	_, ts := newTestServer(t, Config{Workers: 1, Journal: jn})
	if err := faultpoint.Arm("journal.append=error:disk gone"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(sweepSpecJSON(t)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit with dead journal: status %d, want 503", resp.StatusCode)
	}
	var jobs []Status
	getJSON(t, ts.URL+"/api/v1/jobs", &jobs)
	if len(jobs) != 0 {
		t.Fatalf("refused job left in table: %+v", jobs)
	}
}

// interruptAfter is a sink that cancels the run's context once n lines have
// been written — an in-process stand-in for the process dying mid-stream.
type interruptAfter struct {
	buf    bytes.Buffer
	lines  int
	cancel context.CancelFunc
}

func (w *interruptAfter) Write(p []byte) (int, error) {
	n, _ := w.buf.Write(p)
	if w.lines -= bytes.Count(p, []byte("\n")); w.lines <= 0 {
		w.cancel()
	}
	return n, nil
}

// TestCrashResumeByteIdentity is the tentpole contract in miniature: a
// journaled job interrupted mid-stream is rebuilt by Restore on a fresh
// server over the same journal, re-emits the acked records verbatim,
// recomputes only the rest, and the resumed full stream plus the final
// aggregates are byte-identical to an uninterrupted run.
func TestCrashResumeByteIdentity(t *testing.T) {
	_, clean := newTestServer(t, Config{Workers: 2})
	cleanID := submit(t, clean, campaignSpecJSON(t), "").ID
	want := streamAll(t, clean, cleanID)
	var wantAgg json.RawMessage
	getJSON(t, clean.URL+"/api/v1/jobs/"+cleanID+"/aggregates", &wantAgg)

	dir := t.TempDir()
	jn, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	life1, ts1 := newTestServer(t, Config{Workers: 2, Journal: jn})
	st := submit(t, ts1, campaignSpecJSON(t), "")

	// Run the stream in-process with a sink that cancels after 3 records,
	// with the drain flag set — exactly the state a killed daemon leaves:
	// some shards acked, no terminal entry.
	life1.mu.Lock()
	j := life1.jobs[st.ID]
	life1.mu.Unlock()
	j.mu.Lock()
	j.state = StateRunning
	j.mu.Unlock()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := &interruptAfter{lines: 3, cancel: cancel}
	life1.BeginDrain()
	runErr := life1.run(ctx, j, sink, nil, false)
	if runErr == nil {
		t.Fatal("interrupted run reported success")
	}
	life1.finish(j, ctx, runErr)
	if got := j.status().State; got != StateCanceled {
		t.Fatalf("interrupted job state = %s", got)
	}
	jn.Close()

	// Second life: a fresh server over the same journal directory.
	jn2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	life2, ts2 := newTestServer(t, Config{Workers: 2, Journal: jn2})
	resumed, err := life2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 1 {
		t.Fatalf("resumed %d jobs, want 1", resumed)
	}
	var restored Status
	getJSON(t, ts2.URL+"/api/v1/jobs/"+st.ID, &restored)
	if restored.State != StatePending {
		t.Fatalf("restored job state = %s, want pending", restored.State)
	}

	got := streamAll(t, ts2, st.ID)
	if !bytes.Equal(got, want) {
		t.Fatal("resumed stream is not byte-identical to the uninterrupted run")
	}
	m := life2.metricsSnapshot()
	if m.Journal.JobsResumed != 1 || m.Journal.RecordsResumed == 0 {
		t.Fatalf("jobs_resumed=%d records_resumed=%d", m.Journal.JobsResumed, m.Journal.RecordsResumed)
	}
	if m.Journal.RecordsResumed >= uint64(st.GridSize) {
		t.Fatalf("records_resumed=%d: nothing was left to recompute, the interruption was vacuous", m.Journal.RecordsResumed)
	}
	var gotAgg json.RawMessage
	getJSON(t, ts2.URL+"/api/v1/jobs/"+st.ID+"/aggregates", &gotAgg)
	if !bytes.Equal(gotAgg, wantAgg) {
		t.Fatalf("resumed aggregates differ:\n got %s\nwant %s", gotAgg, wantAgg)
	}

	// Done journaled jobs re-stream from the archive, byte-identically.
	if again := streamAll(t, ts2, st.ID); !bytes.Equal(again, want) {
		t.Fatal("archive re-stream differs")
	}
}

// TestRestartRestoresTerminalJob: a job that finished before the restart
// comes back queryable — state, aggregates, archive stream and SSE all
// serve from the journal-rebuilt table.
func TestRestartRestoresTerminalJob(t *testing.T) {
	dir := t.TempDir()
	jn, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts1 := newTestServer(t, Config{Workers: 2, Journal: jn})
	st := submit(t, ts1, sweepSpecJSON(t), "")
	want := streamAll(t, ts1, st.ID)
	var wantAgg json.RawMessage
	getJSON(t, ts1.URL+"/api/v1/jobs/"+st.ID+"/aggregates", &wantAgg)
	jn.Close()

	jn2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	life2, ts2 := newTestServer(t, Config{Workers: 2, Journal: jn2})
	resumed, err := life2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 0 {
		t.Fatalf("resumed %d jobs, want 0 (job was terminal)", resumed)
	}
	var restored Status
	getJSON(t, ts2.URL+"/api/v1/jobs/"+st.ID, &restored)
	if restored.State != StateDone || restored.Records != uint64(st.GridSize) {
		t.Fatalf("restored status = %+v", restored)
	}
	var gotAgg json.RawMessage
	getJSON(t, ts2.URL+"/api/v1/jobs/"+st.ID+"/aggregates", &gotAgg)
	if !bytes.Equal(gotAgg, wantAgg) {
		t.Fatal("restored aggregates differ")
	}
	if got := streamAll(t, ts2, st.ID); !bytes.Equal(got, want) {
		t.Fatal("restored archive stream differs")
	}

	// An SSE client reconnecting after the restart sees the terminal state
	// immediately and the stream ends (terminal replay, then EOF).
	resp, err := http.Get(ts2.URL + "/api/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := readSSE(t, resp.Body)
	if len(events) < 2 || events[0].event != "state" {
		t.Fatalf("SSE after restart: %+v", events)
	}
	var sseState Status
	if err := json.Unmarshal(events[0].data, &sseState); err != nil {
		t.Fatal(err)
	}
	if sseState.State != StateDone {
		t.Fatalf("SSE replayed state = %s, want done", sseState.State)
	}
}

// TestRestoreSkipsFreshIDCollisions: ids handed out after a restart must
// not collide with journal-restored jobs.
func TestRestoreFreshIDsDoNotCollide(t *testing.T) {
	dir := t.TempDir()
	jn, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts1 := newTestServer(t, Config{Workers: 1, Journal: jn})
	st := submit(t, ts1, sweepSpecJSON(t), "")
	streamAll(t, ts1, st.ID)
	jn.Close()

	jn2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	life2, ts2 := newTestServer(t, Config{Workers: 1, Journal: jn2})
	if _, err := life2.Restore(); err != nil {
		t.Fatal(err)
	}
	st2 := submit(t, ts2, sweepSpecJSON(t), "")
	if st2.ID == st.ID {
		t.Fatalf("fresh job reused restored id %s", st.ID)
	}
}
