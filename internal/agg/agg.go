// Package agg computes the campaign service's incremental aggregates:
// detection/containment/recovery rates and latency percentiles folded in
// one record at a time, in bounded memory, so a job covering millions of
// runs serves live summaries without ever buffering raw records.
//
// Percentiles come from a log-bucketed histogram (Hist): values below 2^5
// land in exact unit buckets, larger values in 32 sub-buckets per power of
// two, so the quantile error is bounded at ~3% of the value while the
// whole histogram stays a few kilobytes regardless of how many samples
// pass through. Everything is deterministic — same records in the same
// order produce byte-identical snapshots — which is what lets the
// serve-determinism gate recompute a job's aggregates offline from its
// golden JSONL stream and demand exact equality.
package agg

import (
	"math"
	"math/bits"

	"repro/internal/campaign"
	"repro/internal/sweep"
)

// histSubBits fixes the histogram resolution: 2^histSubBits sub-buckets
// per octave, i.e. a relative quantile error of at most 2^-histSubBits
// (~3.1%).
const histSubBits = 5

// numBuckets covers the full uint64 range: 2^histSubBits exact unit
// buckets for small values plus (64-histSubBits) octaves of 2^histSubBits
// sub-buckets each.
const numBuckets = (64 - histSubBits + 1) << histSubBits

// Hist is a fixed-size log-bucketed histogram over uint64 samples.
// The zero value is ready to use.
type Hist struct {
	n       uint64
	sum     uint64
	min     uint64
	max     uint64
	buckets [numBuckets]uint64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v uint64) int {
	if v < 1<<histSubBits {
		return int(v) // exact unit buckets for small values
	}
	exp := bits.Len64(v) - 1 // position of the top bit, >= histSubBits
	sub := (v >> (uint(exp) - histSubBits)) & (1<<histSubBits - 1)
	return ((exp - histSubBits + 1) << histSubBits) | int(sub)
}

// lowerBound is the smallest value mapping to bucket idx — the value a
// quantile query reports for the bucket.
func lowerBound(idx int) uint64 {
	if idx < 1<<histSubBits {
		return uint64(idx)
	}
	exp := uint(idx>>histSubBits) + histSubBits - 1
	sub := uint64(idx & (1<<histSubBits - 1))
	return 1<<exp | sub<<(exp-histSubBits)
}

// Observe folds one sample in.
func (h *Hist) Observe(v uint64) {
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

// Count returns the number of samples observed.
func (h *Hist) Count() uint64 { return h.n }

// Quantile returns the q-quantile (0 < q <= 1) as the lower bound of the
// bucket holding the sample of that rank — within 2^-histSubBits of the
// exact order statistic, exact for values below 2^histSubBits. Zero when
// empty.
func (h *Hist) Quantile(q float64) uint64 {
	if h.n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= rank {
			return lowerBound(i)
		}
	}
	return h.max // unreachable: cum reaches n
}

// Dist is the serialized summary of a Hist.
type Dist struct {
	Count uint64  `json:"count"`
	Min   uint64  `json:"min"`
	Max   uint64  `json:"max"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P90   uint64  `json:"p90"`
	P99   uint64  `json:"p99"`
}

// Snapshot summarizes the histogram.
func (h *Hist) Snapshot() Dist {
	d := Dist{Count: h.n, Min: h.min, Max: h.max}
	if h.n > 0 {
		d.Mean = float64(h.sum) / float64(h.n)
		d.P50 = h.Quantile(0.50)
		d.P90 = h.Quantile(0.90)
		d.P99 = h.Quantile(0.99)
	}
	return d
}

// milli converts a non-negative float measurement (slowdown ratios, bus
// utilization) to fixed-point thousandths for histogramming.
func milli(v float64) uint64 {
	if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return uint64(math.Round(v * 1000))
}

// rate is the guarded ratio of two counters.
func rate(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Campaign folds campaign records into the incident-level aggregates: how
// often attacks were detected, contained and recovered from, and the
// latency distributions of each lifecycle leg.
type Campaign struct {
	runs        uint64
	errs        uint64
	detected    uint64
	contained   uint64
	recoveryOn  uint64
	quarantined uint64
	recovered   uint64

	detectLatency     Hist // over detected runs
	reactLatency      Hist // over quarantined runs
	quarantinedCycles Hist // over quarantined runs
	recoveryCycles    Hist // over recovered runs
	slowdownMilli     Hist // over runs with a measured twin window
}

// Add folds one record in. Errored records count toward runs/errors only:
// a failed build has no verdict to aggregate.
func (a *Campaign) Add(r campaign.Record) {
	a.runs++
	if r.Err != "" {
		a.errs++
		return
	}
	if r.Detected {
		a.detected++
		a.detectLatency.Observe(r.DetectLatency)
	}
	if r.Contained {
		a.contained++
	}
	if r.RecoveryOn {
		a.recoveryOn++
		if r.QuarantineCycle > 0 {
			a.quarantined++
			a.reactLatency.Observe(r.ReactLatency)
			a.quarantinedCycles.Observe(r.QuarantinedCycles)
		}
		if r.Recovered {
			a.recovered++
			a.recoveryCycles.Observe(r.RecoveryCycles)
		}
	}
	if r.TwinCycles > 0 {
		a.slowdownMilli.Observe(milli(r.Slowdown))
	}
}

// CampaignSnapshot is the serialized aggregate state of a campaign job.
type CampaignSnapshot struct {
	Kind   string `json:"kind"`
	Runs   uint64 `json:"runs"`
	Errors uint64 `json:"errors"`
	// Rates are over non-errored runs; RecoveryRate is over runs that had
	// the reaction-and-recovery phase armed.
	DetectionRate   float64 `json:"detection_rate"`
	ContainmentRate float64 `json:"containment_rate"`
	QuarantineRate  float64 `json:"quarantine_rate"`
	RecoveryRate    float64 `json:"recovery_rate"`
	// Latency/time distributions in cycles; SlowdownMilli is the bystander
	// slowdown in thousandths of the twin's runtime (1000 = no slowdown).
	DetectLatency     Dist `json:"detect_latency"`
	ReactLatency      Dist `json:"react_latency"`
	QuarantinedCycles Dist `json:"quarantined_cycles"`
	RecoveryCycles    Dist `json:"recovery_cycles"`
	SlowdownMilli     Dist `json:"slowdown_milli"`
}

// Snapshot freezes the current aggregate state.
func (a *Campaign) Snapshot() CampaignSnapshot {
	ok := a.runs - a.errs
	return CampaignSnapshot{
		Kind:              "campaign",
		Runs:              a.runs,
		Errors:            a.errs,
		DetectionRate:     rate(a.detected, ok),
		ContainmentRate:   rate(a.contained, ok),
		QuarantineRate:    rate(a.quarantined, a.recoveryOn),
		RecoveryRate:      rate(a.recovered, a.recoveryOn),
		DetectLatency:     a.detectLatency.Snapshot(),
		ReactLatency:      a.reactLatency.Snapshot(),
		QuarantinedCycles: a.quarantinedCycles.Snapshot(),
		RecoveryCycles:    a.recoveryCycles.Snapshot(),
		SlowdownMilli:     a.slowdownMilli.Snapshot(),
	}
}

// Sweep folds benign sweep results into performance aggregates.
type Sweep struct {
	runs   uint64
	errs   uint64
	alerts uint64

	cycles       Hist
	instructions Hist
	stallCycles  Hist
	busUtilMilli Hist
}

// Add folds one run result in.
func (a *Sweep) Add(r sweep.RunResult) {
	a.runs++
	if r.Err != "" {
		a.errs++
		return
	}
	a.alerts += uint64(r.Alerts)
	a.cycles.Observe(r.Cycles)
	a.instructions.Observe(r.Instructions)
	a.stallCycles.Observe(r.StallCycles)
	a.busUtilMilli.Observe(milli(r.BusUtilization))
}

// SweepSnapshot is the serialized aggregate state of a sweep job.
type SweepSnapshot struct {
	Kind                string `json:"kind"`
	Runs                uint64 `json:"runs"`
	Errors              uint64 `json:"errors"`
	Alerts              uint64 `json:"alerts"`
	Cycles              Dist   `json:"cycles"`
	Instructions        Dist   `json:"instructions"`
	StallCycles         Dist   `json:"stall_cycles"`
	BusUtilizationMilli Dist   `json:"bus_utilization_milli"`
}

// Snapshot freezes the current aggregate state.
func (a *Sweep) Snapshot() SweepSnapshot {
	return SweepSnapshot{
		Kind:                "sweep",
		Runs:                a.runs,
		Errors:              a.errs,
		Alerts:              a.alerts,
		Cycles:              a.cycles.Snapshot(),
		Instructions:        a.instructions.Snapshot(),
		StallCycles:         a.stallCycles.Snapshot(),
		BusUtilizationMilli: a.busUtilMilli.Snapshot(),
	}
}
