package agg_test

import (
	"encoding/json"
	"math"
	"sort"
	"testing"

	"repro/internal/agg"
	"repro/internal/campaign"
	"repro/internal/sweep"
)

// lcg is a tiny deterministic generator (no math/rand in this repo's test
// idiom for reproducible fixtures).
type lcg uint64

func (g *lcg) next() uint64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return uint64(*g)
}

// TestHistSmallValuesExact: values below the sub-bucket threshold land in
// unit buckets, so quantiles over them are exact order statistics.
func TestHistSmallValuesExact(t *testing.T) {
	var h agg.Hist
	for v := uint64(0); v < 20; v++ {
		h.Observe(v)
	}
	if got := h.Quantile(0.5); got != 9 {
		t.Fatalf("p50 over 0..19 = %d, want 9", got)
	}
	if got := h.Quantile(1); got != 19 {
		t.Fatalf("p100 = %d, want 19", got)
	}
	if got := h.Quantile(0.05); got != 0 {
		t.Fatalf("p5 = %d, want 0", got)
	}
}

// TestHistQuantileErrorBound: the documented contract — every quantile is
// within 2^-5 (3.125%) of the exact order statistic, on a skewed sample.
func TestHistQuantileErrorBound(t *testing.T) {
	var h agg.Hist
	var g lcg
	samples := make([]uint64, 0, 5000)
	for i := 0; i < 5000; i++ {
		// Skewed over five decades, like latency data.
		v := g.next()%10 + 1
		for j := uint64(0); j < g.next()%5; j++ {
			v *= 10
		}
		samples = append(samples, v)
		h.Observe(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
		rank := int(math.Ceil(q*float64(len(samples)))) - 1
		exact := samples[rank]
		got := h.Quantile(q)
		if got > exact {
			t.Fatalf("q%.2f = %d above exact %d (lower bounds can never exceed)", q, got, exact)
		}
		if relErr := float64(exact-got) / float64(exact); relErr > 1.0/32 {
			t.Fatalf("q%.2f = %d vs exact %d: relative error %.4f > 1/32", q, got, exact, relErr)
		}
	}
}

// TestHistEmptyAndSingle covers the degenerate snapshots.
func TestHistEmptyAndSingle(t *testing.T) {
	var h agg.Hist
	if d := h.Snapshot(); d.Count != 0 || d.P99 != 0 || d.Mean != 0 {
		t.Fatalf("empty snapshot = %+v", d)
	}
	h.Observe(12345)
	d := h.Snapshot()
	if d.Count != 1 || d.Min != 12345 || d.Max != 12345 || d.Mean != 12345 {
		t.Fatalf("single-sample snapshot = %+v", d)
	}
	if d.P50 > 12345 || float64(12345-d.P50)/12345 > 1.0/32 {
		t.Fatalf("single-sample p50 = %d", d.P50)
	}
}

// TestCampaignAggregation pins the rate and distribution semantics on a
// hand-built record set.
func TestCampaignAggregation(t *testing.T) {
	var a agg.Campaign
	recs := []campaign.Record{
		{Detected: true, DetectLatency: 100, Contained: true, TwinCycles: 1000, Slowdown: 1.5,
			RecoveryOn: true, QuarantineCycle: 500, ReactLatency: 40, QuarantinedCycles: 2000,
			Recovered: true, RecoveryCycles: 300},
		{Detected: true, DetectLatency: 200, Contained: false, TwinCycles: 1000, Slowdown: 1.0,
			RecoveryOn: true},
		{Detected: false, Contained: true},
		{Err: "boom"},
	}
	for _, r := range recs {
		a.Add(r)
	}
	s := a.Snapshot()
	if s.Runs != 4 || s.Errors != 1 {
		t.Fatalf("runs/errors = %d/%d", s.Runs, s.Errors)
	}
	if s.DetectionRate != 2.0/3 || s.ContainmentRate != 2.0/3 {
		t.Fatalf("rates = %v / %v", s.DetectionRate, s.ContainmentRate)
	}
	if s.QuarantineRate != 0.5 || s.RecoveryRate != 0.5 {
		t.Fatalf("quarantine/recovery rates = %v / %v", s.QuarantineRate, s.RecoveryRate)
	}
	if s.DetectLatency.Count != 2 || s.ReactLatency.Count != 1 || s.RecoveryCycles.Count != 1 {
		t.Fatalf("distribution counts: %+v", s)
	}
	if s.SlowdownMilli.Count != 2 || s.SlowdownMilli.Max != 1500 {
		t.Fatalf("slowdown dist: %+v", s.SlowdownMilli)
	}
}

// TestSnapshotDeterministic: two aggregators fed the same records must
// marshal to identical bytes — the serve-determinism gate recomputes
// aggregates offline and demands exact equality.
func TestSnapshotDeterministic(t *testing.T) {
	build := func() []byte {
		var a agg.Campaign
		var g lcg
		for i := 0; i < 500; i++ {
			a.Add(campaign.Record{
				Detected:      g.next()%2 == 0,
				DetectLatency: g.next() % 100_000,
				Contained:     g.next()%3 != 0,
				TwinCycles:    g.next() % 10_000,
				Slowdown:      1 + float64(g.next()%1000)/500,
			})
		}
		data, err := json.Marshal(a.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if string(build()) != string(build()) {
		t.Fatal("identical record streams produced different snapshots")
	}
}

// TestSweepAggregation smoke-tests the benign-sweep variant.
func TestSweepAggregation(t *testing.T) {
	var a agg.Sweep
	a.Add(sweep.RunResult{Cycles: 1000, Instructions: 500, BusUtilization: 0.25, Alerts: 2})
	a.Add(sweep.RunResult{Cycles: 3000, Instructions: 1500, BusUtilization: 0.75})
	a.Add(sweep.RunResult{Err: "bad config"})
	s := a.Snapshot()
	if s.Runs != 3 || s.Errors != 1 || s.Alerts != 2 {
		t.Fatalf("counts: %+v", s)
	}
	if s.Cycles.Count != 2 || s.Cycles.Mean != 2000 {
		t.Fatalf("cycles dist: %+v", s.Cycles)
	}
	if s.BusUtilizationMilli.Min != 250 || s.BusUtilizationMilli.Max != 750 {
		t.Fatalf("utilization dist: %+v", s.BusUtilizationMilli)
	}
}
