// Package faultpoint is the deterministic fault-injection harness: named
// points threaded through the crash-safety-critical paths of the campaign
// service (journal appends, shard completion, coordinator dispatch) that
// tests and the `make chaos` gate arm to kill, stall or fail the process
// at the worst possible instant — and then prove that resume and failover
// still produce the uninterrupted bytes.
//
// Points are disarmed by default and cost one atomic load and nothing else
// (no allocation, no lock, no map lookup — pinned by an AllocsPerRun
// test), so production paths carry them for free. Arming is explicit, via
// Arm or the MPSOCD_FAULTPOINTS environment variable consumed by
// ArmFromEnv:
//
//	MPSOCD_FAULTPOINTS='journal.ack=crash@5'          # exit(137) on the 5th ack
//	MPSOCD_FAULTPOINTS='server.shard=error@1'         # first shard attempt fails
//	MPSOCD_FAULTPOINTS='coord.dispatch=stall:200ms'   # every dispatch stalls 200ms
//
// The spec is a comma-separated list of name=action[:arg][@n] terms.
// Actions: "crash" (print a marker to stderr, then os.Exit(137) — the
// exit path of a kill -9, no deferred cleanup, so exactly the fsync'd
// bytes survive), "error" (the hit returns an injected error), and
// "stall:<duration>" (the hit blocks for the duration or until its
// context is canceled, whichever comes first — which is how per-shard
// deadlines are exercised). "@n" fires the action on the nth hit of that
// point only; without it the action fires on every hit.
//
// Everything here is deterministic: which hit fires is a function of the
// armed spec and the hit count alone, never of time or randomness, so a
// chaos run that crashes at journal.ack hit 5 crashes at the same record
// every time.
package faultpoint

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Action kinds.
const (
	actCrash = "crash"
	actError = "error"
	actStall = "stall"
)

// EnvVar is the environment variable ArmFromEnv consumes.
const EnvVar = "MPSOCD_FAULTPOINTS"

// point is one armed injection point.
type point struct {
	name   string
	action string
	msg    string        // error action: injected message
	stall  time.Duration // stall action: block duration
	onHit  uint64        // fire on this hit only; 0 = every hit
	hits   atomic.Uint64 // times the point was evaluated
	fired  atomic.Uint64 // times the action actually ran
}

// armed is the package state: an atomic flag for the disabled fast path
// and a mutex-guarded table behind it. The table is replaced wholesale by
// Arm/Disarm and only read under the mutex, so Hit never races Arm.
var (
	enabled atomic.Bool
	mu      sync.Mutex
	points  map[string]*point
)

// exit is swapped by tests that must observe a crash without dying.
var exit = os.Exit

// onCrash holds the crash hook; see SetOnCrash.
var onCrash atomic.Pointer[func(name string, hit uint64)]

// SetOnCrash registers a hook that runs after a crash action prints its
// stderr marker and before the process exits — the daemon uses it to dump
// the flight recorder, turning every injected kill into a readable
// post-mortem. The hook must not itself hit faultpoints. nil clears it.
func SetOnCrash(fn func(name string, hit uint64)) {
	if fn == nil {
		onCrash.Store(nil)
		return
	}
	onCrash.Store(&fn)
}

// Arm replaces the armed point set from a spec string (see the package
// comment for the syntax). An empty spec disarms everything.
func Arm(spec string) error {
	parsed := make(map[string]*point)
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		name, rhs, ok := strings.Cut(term, "=")
		if !ok || name == "" || rhs == "" {
			return fmt.Errorf("faultpoint: bad term %q (want name=action[:arg][@n])", term)
		}
		p := &point{name: name}
		if at := strings.LastIndexByte(rhs, '@'); at >= 0 {
			n, err := strconv.ParseUint(rhs[at+1:], 10, 64)
			if err != nil || n == 0 {
				return fmt.Errorf("faultpoint: bad hit selector in %q (want @n, n >= 1)", term)
			}
			p.onHit = n
			rhs = rhs[:at]
		}
		action, arg, _ := strings.Cut(rhs, ":")
		switch action {
		case actCrash:
			if arg != "" {
				return fmt.Errorf("faultpoint: crash takes no argument in %q", term)
			}
		case actError:
			p.msg = arg
			if p.msg == "" {
				p.msg = "injected fault"
			}
		case actStall:
			d, err := time.ParseDuration(arg)
			if err != nil || d <= 0 {
				return fmt.Errorf("faultpoint: bad stall duration in %q (want stall:<duration>)", term)
			}
			p.stall = d
		default:
			return fmt.Errorf("faultpoint: unknown action %q in %q", action, term)
		}
		p.action = action
		if _, dup := parsed[name]; dup {
			return fmt.Errorf("faultpoint: duplicate point %q", name)
		}
		parsed[name] = p
	}
	mu.Lock()
	points = parsed
	mu.Unlock()
	enabled.Store(len(parsed) > 0)
	return nil
}

// ArmFromEnv arms from the MPSOCD_FAULTPOINTS environment variable. An
// unset or empty variable leaves everything disarmed.
func ArmFromEnv() error {
	return Arm(os.Getenv(EnvVar))
}

// Disarm clears every point.
func Disarm() {
	enabled.Store(false)
	mu.Lock()
	points = nil
	mu.Unlock()
}

// Hit evaluates the named point with no cancellation context. See HitCtx.
func Hit(name string) error {
	if !enabled.Load() {
		return nil
	}
	return hitSlow(context.Background(), name)
}

// HitCtx evaluates the named point: a no-op returning nil unless the point
// is armed and its hit selector matches. A crash action never returns; an
// error action returns the injected error; a stall action blocks for the
// armed duration or until ctx is canceled (returning ctx's error), which
// is what lets a per-shard deadline preempt a stalled attempt.
func HitCtx(ctx context.Context, name string) error {
	if !enabled.Load() {
		return nil
	}
	return hitSlow(ctx, name)
}

func hitSlow(ctx context.Context, name string) error {
	mu.Lock()
	p := points[name]
	mu.Unlock()
	if p == nil {
		return nil
	}
	hit := p.hits.Add(1)
	if p.onHit != 0 && hit != p.onHit {
		return nil
	}
	p.fired.Add(1)
	switch p.action {
	case actCrash:
		// The marker line is the chaos gate's non-vacuity evidence: the
		// process provably died here, not of natural causes. Exit code 137
		// mirrors a SIGKILL death — no deferred cleanup runs, so exactly
		// the fsync'd state survives.
		fmt.Fprintf(os.Stderr, "faultpoint: crash at %s (hit %d)\n", name, hit)
		if fn := onCrash.Load(); fn != nil {
			(*fn)(name, hit)
		}
		exit(137)
		return nil // unreachable outside tests that swap exit
	case actError:
		return fmt.Errorf("faultpoint: %s: %s", name, p.msg)
	case actStall:
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(p.stall):
			return nil
		}
	}
	return nil
}

// Fired reports how many times the named point's action ran. Zero for
// unarmed points — the non-vacuity check chaos tests hang asserts on.
func Fired(name string) uint64 {
	mu.Lock()
	p := points[name]
	mu.Unlock()
	if p == nil {
		return 0
	}
	return p.fired.Load()
}

// Hits reports how many times the named point was evaluated while armed.
func Hits(name string) uint64 {
	mu.Lock()
	p := points[name]
	mu.Unlock()
	if p == nil {
		return 0
	}
	return p.hits.Load()
}
