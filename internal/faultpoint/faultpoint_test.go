package faultpoint

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestDisarmedHitIsFreeAndAllocFree(t *testing.T) {
	Disarm()
	if err := Hit("anything"); err != nil {
		t.Fatalf("disarmed hit returned %v", err)
	}
	// The disabled path is on every shard completion and journal append:
	// it must never allocate.
	if n := testing.AllocsPerRun(1000, func() {
		if err := Hit("server.shard"); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("disarmed Hit allocates %v per run", n)
	}
}

func TestErrorEveryHit(t *testing.T) {
	t.Cleanup(Disarm)
	if err := Arm("p=error:boom"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		err := Hit("p")
		if err == nil || !strings.Contains(err.Error(), "boom") {
			t.Fatalf("hit %d: err = %v, want injected boom", i, err)
		}
	}
	if Fired("p") != 3 || Hits("p") != 3 {
		t.Fatalf("fired=%d hits=%d, want 3/3", Fired("p"), Hits("p"))
	}
	// Other points stay unarmed.
	if err := Hit("q"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
}

func TestHitSelectorFiresOnce(t *testing.T) {
	t.Cleanup(Disarm)
	if err := Arm("p=error@2"); err != nil {
		t.Fatal(err)
	}
	if err := Hit("p"); err != nil {
		t.Fatalf("hit 1 fired early: %v", err)
	}
	if err := Hit("p"); err == nil {
		t.Fatal("hit 2 did not fire")
	}
	if err := Hit("p"); err != nil {
		t.Fatalf("hit 3 fired again: %v", err)
	}
	if Fired("p") != 1 || Hits("p") != 3 {
		t.Fatalf("fired=%d hits=%d, want 1/3", Fired("p"), Hits("p"))
	}
}

func TestStallRespectsContext(t *testing.T) {
	t.Cleanup(Disarm)
	if err := Arm("p=stall:10s"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := HitCtx(ctx, "p")
	if err != context.DeadlineExceeded {
		t.Fatalf("stalled hit returned %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("stall ignored the context deadline")
	}
	// A short stall with no deadline completes and returns nil.
	if err := Arm("p=stall:1ms"); err != nil {
		t.Fatal(err)
	}
	if err := Hit("p"); err != nil {
		t.Fatalf("completed stall returned %v", err)
	}
}

func TestCrashCallsExit(t *testing.T) {
	t.Cleanup(Disarm)
	t.Cleanup(func() { exit = testExitSave })
	var code = -1
	exit = func(c int) { code = c; panic("exit") }
	if err := Arm("p=crash"); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() { recover() }()
		Hit("p")
	}()
	if code != 137 {
		t.Fatalf("crash exit code = %d, want 137", code)
	}
}

var testExitSave = exit

func TestArmRejectsBadSpecs(t *testing.T) {
	t.Cleanup(Disarm)
	for _, bad := range []string{
		"noaction", "p=", "=crash", "p=crash:arg", "p=stall", "p=stall:xyz",
		"p=error@0", "p=error@x", "p=unknown", "p=crash,p=crash",
	} {
		if err := Arm(bad); err == nil {
			t.Errorf("Arm(%q) accepted", bad)
		}
	}
	// A failed Arm must not leave stale state half-armed; the last
	// successful Arm wins.
	if err := Arm(""); err != nil {
		t.Fatal(err)
	}
	if enabled.Load() {
		t.Fatal("empty spec left the package enabled")
	}
}

func TestOnCrashHookRunsBeforeExit(t *testing.T) {
	t.Cleanup(Disarm)
	t.Cleanup(func() { exit = testExitSave })
	t.Cleanup(func() { SetOnCrash(nil) })
	var order []string
	exit = func(c int) { order = append(order, fmt.Sprintf("exit:%d", c)); panic("exit") }
	SetOnCrash(func(name string, hit uint64) {
		order = append(order, fmt.Sprintf("hook:%s:%d", name, hit))
	})
	if err := Arm("p=crash@2"); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() { recover() }()
		Hit("p") // hit 1: selector @2 does not fire
		Hit("p") // hit 2: fires
	}()
	want := []string{"hook:p:2", "exit:137"}
	if len(order) != len(want) || order[0] != want[0] || order[1] != want[1] {
		t.Fatalf("crash order = %v, want %v (hook before exit)", order, want)
	}
}

func TestOnCrashNilClears(t *testing.T) {
	t.Cleanup(Disarm)
	t.Cleanup(func() { exit = testExitSave })
	called := false
	SetOnCrash(func(string, uint64) { called = true })
	SetOnCrash(nil)
	exit = func(int) { panic("exit") }
	if err := Arm("p=crash"); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() { recover() }()
		Hit("p")
	}()
	if called {
		t.Fatal("cleared crash hook still ran")
	}
}
