package core_test

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
)

// BenchmarkPolicyCheck measures the host-side cost of one Security Builder
// evaluation (the simulated cost is the 12-cycle constant).
func BenchmarkPolicyCheck(b *testing.B) {
	cm := core.MustConfig(
		core.Policy{SPI: 1, Zone: core.Zone{Base: 0x1000_0000, Size: 0x1000}, RWA: core.ReadWrite, ADF: core.AnyWidth},
		core.Policy{SPI: 2, Zone: core.Zone{Base: 0x2000_0000, Size: 0x1000}, RWA: core.ReadOnly, ADF: core.W32},
		core.Policy{SPI: 3, Zone: core.Zone{Base: 0x3000_0000, Size: 0x1000}, RWA: core.WriteOnly, ADF: core.W8 | core.W16},
	)
	a := core.Access{Master: "cpu0", Write: true, Addr: 0x1000_0040, Size: 4, Burst: 1}
	for i := 0; i < b.N; i++ {
		cm.CheckAccess(a)
	}
}

// BenchmarkPolicyCheckWide measures evaluation against a 64-rule table
// (the E2 aggressive-policy regime).
func BenchmarkPolicyCheckWide(b *testing.B) {
	rules := make([]core.Policy, 64)
	for i := range rules {
		rules[i] = core.Policy{SPI: uint32(i), Zone: core.Zone{Base: uint32(i) * 0x1000, Size: 0x1000},
			RWA: core.ReadWrite, ADF: core.AnyWidth}
	}
	cm := core.MustConfig(rules...)
	a := core.Access{Master: "cpu0", Write: false, Addr: 63 * 0x1000, Size: 4, Burst: 1}
	for i := 0; i < b.N; i++ {
		cm.CheckAccess(a)
	}
}

// BenchmarkLCFSecureWrite measures host-side simulation cost of one
// secured external write (AES ×2 passes, tree update).
func BenchmarkLCFSecureWrite(b *testing.B) {
	eng := sim.NewEngine(sim.DefaultFrequency)
	bs := bus.New(eng, bus.Config{})
	ddr := mem.NewDDR("ddr", ddrBase, ddrSize)
	log := core.NewAlertLog()
	cm := core.MustConfig(core.Policy{SPI: 1, Zone: core.Zone{Base: secBase, Size: secSize},
		RWA: core.ReadWrite, ADF: core.AnyWidth, CM: true, IM: true, Key: testKey})
	lcf, err := core.NewCipherFirewall(core.LCFConfig{
		IntegrityZone: core.Zone{Base: secBase, Size: secSize}, NodeBase: nodeBase,
	}, ddr, ddr.Store(), cm, log)
	if err != nil {
		b.Fatal(err)
	}
	lcf.Seal()
	bs.AddSlave(lcf)
	m := bs.NewMaster("cpu0")
	// The submission state lives outside the loop so the harness itself is
	// allocation-free and the allocs/op column measures only the secured
	// path (pinned at zero by TestSecureWriteLoopAllocFree).
	var (
		tx   bus.Transaction
		data [1]uint32
		done bool
	)
	finish := func(*bus.Transaction) { done = true }
	idle := func() bool { return done }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done = false
		data[0] = uint32(i)
		tx = bus.Transaction{Op: bus.Write, Addr: secBase + uint32(i%64)*4&^3, Size: 4, Burst: 1,
			Data: data[:1]}
		m.Submit(&tx, finish)
		eng.RunUntil(idle, 1_000_000)
	}
	b.ReportMetric(float64(lcf.Crypto().BlocksEnciphered)/float64(b.N), "blocks/op")
}
