package core

import (
	"strings"
	"testing"
)

func samplePolicies() []Policy {
	return []Policy{
		{SPI: 300, Zone: Zone{Base: 0x4000_0000, Size: 0x8000}, RWA: ReadWrite,
			ADF: AnyWidth, CM: true, IM: true,
			Key: [16]byte{0, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF}},
		{SPI: 200, Zone: Zone{Base: 0x1000_0000, Size: 0x1_0000}, RWA: ReadOnly,
			ADF: W32, Origins: []string{"cpu0", "dma"}, Threads: []uint32{1, 2}},
	}
}

func TestPoliciesJSONRoundTrip(t *testing.T) {
	in := samplePolicies()
	data, err := PoliciesToJSON(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := PoliciesFromJSON(data)
	if err != nil {
		t.Fatalf("%v\n%s", err, data)
	}
	if len(out) != len(in) {
		t.Fatalf("%d rules out, want %d", len(out), len(in))
	}
	for i := range in {
		a, b := in[i], out[i]
		if a.SPI != b.SPI || a.Zone != b.Zone || a.RWA != b.RWA || a.ADF != b.ADF ||
			a.CM != b.CM || a.IM != b.IM || a.Key != b.Key {
			t.Fatalf("rule %d: %+v != %+v", i, a, b)
		}
		if len(a.Origins) != len(b.Origins) || len(a.Threads) != len(b.Threads) {
			t.Fatalf("rule %d: lists differ", i)
		}
	}
}

func TestPoliciesJSONHumanForm(t *testing.T) {
	data, _ := PoliciesToJSON(samplePolicies())
	s := string(data)
	for _, want := range []string{`"0x40000000"`, `"rw"`, `"ro"`, `"cpu0"`, `"00112233445566778899aabbccddeeff"`} {
		if !strings.Contains(s, want) {
			t.Errorf("serialized form missing %s:\n%s", want, s)
		}
	}
}

func TestPoliciesFromJSONHandWritten(t *testing.T) {
	rules, err := PoliciesFromJSON([]byte(`[
	  {"spi": 1, "zone": {"base": "0x1000", "size": 256},
	   "rwa": "read-only", "adf": ["32"]}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	p := rules[0]
	if p.Zone.Base != 0x1000 || p.Zone.Size != 256 || p.RWA != ReadOnly || p.ADF != W32 {
		t.Fatalf("parsed %+v", p)
	}
}

func TestPoliciesFromJSONErrors(t *testing.T) {
	bad := []string{
		`not json`,
		`[{"spi":1,"zone":{"base":"0x0","size":"0x10"},"rwa":"sideways","adf":["32"]}]`,
		`[{"spi":1,"zone":{"base":"0x0","size":"0x10"},"rwa":"rw","adf":["64"]}]`,
		`[{"spi":1,"zone":{"base":"0x0","size":"0x10"},"rwa":"rw","adf":[]}]`,
		`[{"spi":1,"zone":{"base":"0x0","size":"0x10"},"rwa":"rw","adf":["32"],"cm":true}]`,
		`[{"spi":1,"zone":{"base":"0x0","size":"0x10"},"rwa":"rw","adf":["32"],"cm":true,"key":"zz"}]`,
		`[{"spi":1,"zone":{"base":"0x123456789","size":"0x10"},"rwa":"rw","adf":["32"]}]`,
	}
	for i, src := range bad {
		if _, err := PoliciesFromJSON([]byte(src)); err == nil {
			t.Errorf("case %d accepted: %s", i, src)
		}
	}
}

func TestPoliciesJSONFeedsConfigMemory(t *testing.T) {
	data, _ := PoliciesToJSON(samplePolicies())
	rules, err := PoliciesFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := NewConfigMemory(rules...)
	if err != nil {
		t.Fatal(err)
	}
	if _, v := cm.Check("cpu0", false, 0x1000_0000, 4, 1); v != VThread {
		// Origins admit cpu0 but the rule is thread {1,2}: thread 0 denied.
		t.Fatalf("round-tripped rules misbehave: %v", v)
	}
	if _, v := cm.CheckAccess(Access{Master: "cpu0", Thread: 1, Addr: 0x1000_0000, Size: 4, Burst: 1}); v != VNone {
		t.Fatalf("round-tripped rules misbehave for thread 1: %v", v)
	}
}
