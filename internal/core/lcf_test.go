package core_test

import (
	"bytes"
	"testing"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/hashtree"
	"repro/internal/mem"
	"repro/internal/sim"
)

const (
	ddrBase   = 0x4000_0000
	secBase   = ddrBase // secure (CM+IM) zone: 8 KiB
	secSize   = 0x2000
	plainBase = ddrBase + 0x10000 // pass-through zone
	plainSize = 0x1000
	nodeBase  = ddrBase + 0x20000 // tree nodes (outside all policy zones)
	ddrSize   = 0x40000
)

var testKey = [16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}

// lcfRig wires: master port -> bus -> LCF -> DDR.
func lcfRig(t *testing.T) (*sim.Engine, *bus.MasterPort, *core.CipherFirewall, *mem.DDR, *core.AlertLog) {
	t.Helper()
	eng := sim.NewEngine(sim.DefaultFrequency)
	b := bus.New(eng, bus.Config{})
	ddr := mem.NewDDR("ddr", ddrBase, ddrSize)
	log := core.NewAlertLog()
	cm := core.MustConfig(
		core.Policy{SPI: 1, Zone: core.Zone{secBase, secSize}, RWA: core.ReadWrite,
			ADF: core.AnyWidth, CM: true, IM: true, Key: testKey},
		core.Policy{SPI: 2, Zone: core.Zone{plainBase, plainSize}, RWA: core.ReadWrite,
			ADF: core.AnyWidth},
	)
	lcf, err := core.NewCipherFirewall(core.LCFConfig{
		IntegrityZone: core.Zone{secBase, secSize},
		NodeBase:      nodeBase,
	}, ddr, ddr.Store(), cm, log)
	if err != nil {
		t.Fatal(err)
	}
	lcf.Seal()
	b.AddSlave(lcf)
	return eng, b.NewMaster("cpu0"), lcf, ddr, log
}

func TestLCFWriteReadRoundTrip(t *testing.T) {
	eng, m, _, _, log := lcfRig(t)
	wr := run(t, eng, m, &bus.Transaction{Op: bus.Write, Addr: secBase + 0x100, Size: 4, Burst: 1, Data: []uint32{0xFEEDC0DE}})
	if !wr.Resp.OK() {
		t.Fatalf("write resp = %v", wr.Resp)
	}
	rd := run(t, eng, m, &bus.Transaction{Op: bus.Read, Addr: secBase + 0x100, Size: 4, Burst: 1})
	if !rd.Resp.OK() || rd.Data[0] != 0xFEEDC0DE {
		t.Fatalf("read = %v %#x", rd.Resp, rd.Data[0])
	}
	if log.Len() != 0 {
		t.Fatalf("alerts: %v", log.All())
	}
}

func TestLCFCiphertextActuallyStored(t *testing.T) {
	eng, m, _, ddr, _ := lcfRig(t)
	run(t, eng, m, &bus.Transaction{Op: bus.Write, Addr: secBase, Size: 4, Burst: 4,
		Data: []uint32{0x11111111, 0x22222222, 0x33333333, 0x44444444}})
	// The attacker reading raw external memory must not see plaintext.
	raw := ddr.Store().Peek(secBase, 16)
	plain := []byte{0x11, 0x11, 0x11, 0x11, 0x22, 0x22, 0x22, 0x22, 0x33, 0x33, 0x33, 0x33, 0x44, 0x44, 0x44, 0x44}
	if bytes.Equal(raw, plain) {
		t.Fatal("external memory holds plaintext: confidentiality broken")
	}
}

func TestLCFIdenticalPlaintextDiffersAcrossBlocks(t *testing.T) {
	eng, m, _, ddr, _ := lcfRig(t)
	same := []uint32{0xABABABAB, 0xABABABAB, 0xABABABAB, 0xABABABAB}
	run(t, eng, m, &bus.Transaction{Op: bus.Write, Addr: secBase + 0x00, Size: 4, Burst: 4, Data: same})
	run(t, eng, m, &bus.Transaction{Op: bus.Write, Addr: secBase + 0x10, Size: 4, Burst: 4, Data: same})
	c0 := ddr.Store().Peek(secBase+0x00, 16)
	c1 := ddr.Store().Peek(secBase+0x10, 16)
	if bytes.Equal(c0, c1) {
		t.Fatal("address tweak missing: identical blocks encrypt identically")
	}
}

func TestLCFSubWordWriteRMW(t *testing.T) {
	eng, m, _, _, _ := lcfRig(t)
	run(t, eng, m, &bus.Transaction{Op: bus.Write, Addr: secBase + 0x40, Size: 4, Burst: 1, Data: []uint32{0xAABBCCDD}})
	// Byte write into the middle of the encrypted word.
	run(t, eng, m, &bus.Transaction{Op: bus.Write, Addr: secBase + 0x41, Size: 1, Burst: 1, Data: []uint32{0x99}})
	rd := run(t, eng, m, &bus.Transaction{Op: bus.Read, Addr: secBase + 0x40, Size: 4, Burst: 1})
	if rd.Data[0] != 0xAABB99DD {
		t.Fatalf("RMW result = %#x, want 0xAABB99DD", rd.Data[0])
	}
}

func TestLCFPassThroughZoneIsPlain(t *testing.T) {
	eng, m, _, ddr, _ := lcfRig(t)
	run(t, eng, m, &bus.Transaction{Op: bus.Write, Addr: plainBase, Size: 4, Burst: 1, Data: []uint32{0x12345678}})
	if got := ddr.Store().ReadWord(plainBase); got != 0x12345678 {
		t.Fatalf("pass-through zone stored %#x", got)
	}
}

func TestLCFBlocksUnmappedZone(t *testing.T) {
	eng, m, _, _, log := lcfRig(t)
	// The tree-node region is not covered by any policy: software cannot
	// touch it.
	tx := run(t, eng, m, &bus.Transaction{Op: bus.Read, Addr: nodeBase, Size: 4, Burst: 1})
	if tx.Resp != bus.RespSecurityErr {
		t.Fatalf("node region readable by software: %v", tx.Resp)
	}
	if a := log.All()[0]; a.Violation != core.VZone {
		t.Fatalf("violation = %v", a.Violation)
	}
}

func TestLCFDetectsExternalTamper(t *testing.T) {
	eng, m, _, ddr, log := lcfRig(t)
	run(t, eng, m, &bus.Transaction{Op: bus.Write, Addr: secBase + 0x80, Size: 4, Burst: 1, Data: []uint32{7}})
	// Attacker flips a ciphertext bit directly in external memory.
	raw := ddr.Store().Peek(secBase+0x80, 1)
	ddr.Store().Poke(secBase+0x80, []byte{raw[0] ^ 1})
	rd := run(t, eng, m, &bus.Transaction{Op: bus.Read, Addr: secBase + 0x80, Size: 4, Burst: 1})
	if rd.Resp != bus.RespSecurityErr {
		t.Fatalf("tampered read returned %v", rd.Resp)
	}
	if rd.Data[0] != 0 {
		t.Fatalf("tampered read leaked data %#x", rd.Data[0])
	}
	a := log.First(func(a core.Alert) bool { return a.Violation == core.VIntegrity })
	if a == nil {
		t.Fatalf("no integrity alert; log = %v", log.All())
	}
}

func TestLCFDetectsReplay(t *testing.T) {
	eng, m, lcf, ddr, log := lcfRig(t)
	run(t, eng, m, &bus.Transaction{Op: bus.Write, Addr: secBase, Size: 4, Burst: 1, Data: []uint32{1}})
	snap := ddr.Store().Snapshot()
	run(t, eng, m, &bus.Transaction{Op: bus.Write, Addr: secBase, Size: 4, Burst: 1, Data: []uint32{2}})
	// Attacker replays the earlier external-memory image (data + tree
	// nodes, fully consistent).
	ddr.Store().Restore(snap)
	rd := run(t, eng, m, &bus.Transaction{Op: bus.Read, Addr: secBase, Size: 4, Burst: 1})
	if rd.Resp != bus.RespSecurityErr {
		t.Fatalf("replayed read returned %v (data %#x)", rd.Resp, rd.Data[0])
	}
	a := log.First(func(a core.Alert) bool { return a.Violation == core.VReplay })
	if a == nil {
		t.Fatalf("replay not classified; log = %v", log.All())
	}
	if lcf.Crypto().IntegrityFailures == 0 {
		t.Fatal("IntegrityFailures not counted")
	}
}

func TestLCFDetectsRelocation(t *testing.T) {
	eng, m, _, ddr, _ := lcfRig(t)
	run(t, eng, m, &bus.Transaction{Op: bus.Write, Addr: secBase + 0x000, Size: 4, Burst: 1, Data: []uint32{0x5EC2E7}})
	// Attacker copies the valid ciphertext block to a different address.
	blk := ddr.Store().Peek(secBase+0x000, 16)
	ddr.Store().Poke(secBase+0x200, blk)
	rd := run(t, eng, m, &bus.Transaction{Op: bus.Read, Addr: secBase + 0x200, Size: 4, Burst: 1})
	if rd.Resp != bus.RespSecurityErr {
		t.Fatalf("relocated block accepted: %v %#x", rd.Resp, rd.Data[0])
	}
}

func TestLCFDetectsSpoofing(t *testing.T) {
	eng, m, _, ddr, _ := lcfRig(t)
	// Attacker fabricates ciphertext out of thin air.
	fake := make([]byte, 32)
	for i := range fake {
		fake[i] = byte(0xC0 + i)
	}
	ddr.Store().Poke(secBase+0x300, fake)
	rd := run(t, eng, m, &bus.Transaction{Op: bus.Read, Addr: secBase + 0x300, Size: 4, Burst: 1})
	if rd.Resp != bus.RespSecurityErr {
		t.Fatalf("spoofed block accepted: %v", rd.Resp)
	}
}

func TestLCFSealPreservesPreloadedImage(t *testing.T) {
	eng := sim.NewEngine(sim.DefaultFrequency)
	b := bus.New(eng, bus.Config{})
	ddr := mem.NewDDR("ddr", ddrBase, ddrSize)
	log := core.NewAlertLog()
	// A boot loader places a plaintext image in external memory...
	for i := uint32(0); i < 64; i += 4 {
		ddr.Store().WriteWord(secBase+i, 0xB007_0000|i)
	}
	cm := core.MustConfig(core.Policy{SPI: 1, Zone: core.Zone{secBase, secSize},
		RWA: core.ReadWrite, ADF: core.AnyWidth, CM: true, IM: true, Key: testKey})
	lcf, err := core.NewCipherFirewall(core.LCFConfig{
		IntegrityZone: core.Zone{secBase, secSize}, NodeBase: nodeBase,
	}, ddr, ddr.Store(), cm, log)
	if err != nil {
		t.Fatal(err)
	}
	// ...Seal encrypts it in place and builds the tree.
	lcf.Seal()
	if ddr.Store().ReadWord(secBase) == 0xB007_0000 {
		t.Fatal("Seal left plaintext in external memory")
	}
	b.AddSlave(lcf)
	m := b.NewMaster("cpu0")
	rd := run(t, eng, m, &bus.Transaction{Op: bus.Read, Addr: secBase + 8, Size: 4, Burst: 1})
	if !rd.Resp.OK() || rd.Data[0] != 0xB007_0008 {
		t.Fatalf("sealed image read back %v %#x", rd.Resp, rd.Data[0])
	}
	// PeekPlaintext agrees.
	if got := lcf.PeekPlaintext(secBase+8, 4); got[0] != 0x08 || got[3] != 0xB0 {
		t.Fatalf("PeekPlaintext = %x", got)
	}
}

func TestLCFTimingIncludesCCAndIC(t *testing.T) {
	eng, m, lcf, _, _ := lcfRig(t)
	before := lcf.Crypto()
	rd := run(t, eng, m, &bus.Transaction{Op: bus.Read, Addr: secBase + 0x500, Size: 4, Burst: 1})
	after := lcf.Crypto()
	if !rd.Resp.OK() {
		t.Fatalf("read failed: %v", rd.Resp)
	}
	if after.BlocksDeciphered == before.BlocksDeciphered {
		t.Fatal("CC not exercised")
	}
	if after.NodeOps == before.NodeOps {
		t.Fatal("IC not exercised")
	}
	// Latency must include SB (12) + DDR + CC (>=11) + IC (>=20).
	if got := rd.Completed - rd.Started; got < 12+20+11+20 {
		t.Fatalf("secured external read took only %d cycles", got)
	}
}

func TestLCFBurstAcrossBlocks(t *testing.T) {
	eng, m, _, _, _ := lcfRig(t)
	data := make([]uint32, 16) // 64 bytes: 4 cipher blocks, 2 leaves
	for i := range data {
		data[i] = uint32(0x1000 + i)
	}
	wr := run(t, eng, m, &bus.Transaction{Op: bus.Write, Addr: secBase + 0x600, Size: 4, Burst: 16, Data: data})
	if !wr.Resp.OK() {
		t.Fatalf("burst write: %v", wr.Resp)
	}
	rd := run(t, eng, m, &bus.Transaction{Op: bus.Read, Addr: secBase + 0x600, Size: 4, Burst: 16})
	for i, v := range rd.Data {
		if v != uint32(0x1000+i) {
			t.Fatalf("beat %d = %#x", i, v)
		}
	}
}

func TestLCFRejectsIMOutsideIntegrityZone(t *testing.T) {
	ddr := mem.NewDDR("ddr", ddrBase, ddrSize)
	cm := core.MustConfig(core.Policy{SPI: 1, Zone: core.Zone{ddrBase + 0x30000, 0x1000},
		RWA: core.ReadWrite, ADF: core.AnyWidth, IM: true})
	_, err := core.NewCipherFirewall(core.LCFConfig{
		IntegrityZone: core.Zone{secBase, secSize}, NodeBase: nodeBase,
	}, ddr, ddr.Store(), cm, core.NewAlertLog())
	if err == nil {
		t.Fatal("IM zone outside IntegrityZone accepted")
	}
}

func TestLCFRejectsMisalignedCMZone(t *testing.T) {
	ddr := mem.NewDDR("ddr", ddrBase, ddrSize)
	cm := core.MustConfig(core.Policy{SPI: 1, Zone: core.Zone{ddrBase + 8, 0x100},
		RWA: core.ReadWrite, ADF: core.AnyWidth, CM: true})
	_, err := core.NewCipherFirewall(core.LCFConfig{}, ddr, ddr.Store(), cm, core.NewAlertLog())
	if err == nil {
		t.Fatal("misaligned CM zone accepted")
	}
}

func TestLCFWriteAfterTamperRefused(t *testing.T) {
	// Cache disabled: with the verified-node cache on, the LCF would keep
	// serving the authentic sibling digest from trusted on-chip state and
	// the corruption would stay latent (see TestLCFCacheMasksNodeTamper).
	eng := sim.NewEngine(sim.DefaultFrequency)
	b := bus.New(eng, bus.Config{})
	ddr := mem.NewDDR("ddr", ddrBase, ddrSize)
	log := core.NewAlertLog()
	cm := core.MustConfig(core.Policy{SPI: 1, Zone: core.Zone{secBase, secSize},
		RWA: core.ReadWrite, ADF: core.AnyWidth, CM: true, IM: true, Key: testKey})
	lcf, err := core.NewCipherFirewall(core.LCFConfig{
		IntegrityZone: core.Zone{secBase, secSize}, NodeBase: nodeBase, CacheSize: -1,
	}, ddr, ddr.Store(), cm, log)
	if err != nil {
		t.Fatal(err)
	}
	lcf.Seal()
	b.AddSlave(lcf)
	m := b.NewMaster("cpu0")
	run(t, eng, m, &bus.Transaction{Op: bus.Write, Addr: secBase + 0x700, Size: 4, Burst: 1, Data: []uint32{1}})
	// Attacker corrupts the *sibling leaf's stored digest* in external
	// memory; a subsequent legitimate write must not launder it.
	leafIdx := uint32((0x700)/hashtree.LeafSize) ^ 1
	leaves := uint32(secSize / hashtree.LeafSize)
	sibNodeAddr := nodeBase + (leaves+leafIdx-1)*hashtree.DigestSize
	ddr.Store().Poke(sibNodeAddr, []byte{0xEE})
	wr := run(t, eng, m, &bus.Transaction{Op: bus.Write, Addr: secBase + 0x700, Size: 4, Burst: 1, Data: []uint32{2}})
	if wr.Resp != bus.RespSecurityErr {
		t.Fatalf("write over corrupt path accepted: %v", wr.Resp)
	}
	// A corrupt sibling with a self-consistent leaf is indistinguishable
	// from replayed internal nodes, so either classification is correct —
	// what matters is that an IC alert was raised and the write refused.
	alert := log.First(func(a core.Alert) bool {
		return a.Violation == core.VIntegrity || a.Violation == core.VReplay
	})
	if alert == nil {
		t.Fatalf("no integrity-class alert for refused update; log = %v", log.All())
	}
}

func TestLCFFullBlockWriteRepairsTamper(t *testing.T) {
	// After a detected corruption, partial writes stay refused (they
	// would RMW poisoned data) but a write covering the whole integrity
	// block is the recovery path: it consumes no stale state.
	eng, m, _, ddr, _ := lcfRig(t)
	run(t, eng, m, &bus.Transaction{Op: bus.Write, Addr: secBase + 0x800, Size: 4, Burst: 1, Data: []uint32{1}})
	raw := ddr.Store().Peek(secBase+0x800, 1)
	ddr.Store().Poke(secBase+0x800, []byte{raw[0] ^ 0x10})
	partial := run(t, eng, m, &bus.Transaction{Op: bus.Write, Addr: secBase + 0x800, Size: 4, Burst: 1, Data: []uint32{2}})
	if partial.Resp != bus.RespSecurityErr {
		t.Fatalf("partial write to corrupt block accepted: %v", partial.Resp)
	}
	full := run(t, eng, m, &bus.Transaction{Op: bus.Write, Addr: secBase + 0x800, Size: 4, Burst: 8,
		Data: []uint32{42, 0, 0, 0, 0, 0, 0, 0}})
	if !full.Resp.OK() {
		t.Fatalf("full-block repair refused: %v", full.Resp)
	}
	rd := run(t, eng, m, &bus.Transaction{Op: bus.Read, Addr: secBase + 0x800, Size: 4, Burst: 1})
	if !rd.Resp.OK() || rd.Data[0] != 42 {
		t.Fatalf("after repair: %v %d", rd.Resp, rd.Data[0])
	}
}

func TestLCFCacheMasksNodeTamper(t *testing.T) {
	// With the verified-node cache enabled (the default), corrupting an
	// external tree node that is currently cached is harmless: the LCF
	// keeps using the authentic on-chip digest and legitimate traffic
	// proceeds. This pins the intended cache semantics.
	eng, m, _, ddr, log := lcfRig(t)
	run(t, eng, m, &bus.Transaction{Op: bus.Write, Addr: secBase + 0x700, Size: 4, Burst: 1, Data: []uint32{1}})
	leafIdx := uint32((0x700)/hashtree.LeafSize) ^ 1
	leaves := uint32(secSize / hashtree.LeafSize)
	sibNodeAddr := nodeBase + (leaves+leafIdx-1)*hashtree.DigestSize
	ddr.Store().Poke(sibNodeAddr, []byte{0xEE})
	wr := run(t, eng, m, &bus.Transaction{Op: bus.Write, Addr: secBase + 0x700, Size: 4, Burst: 1, Data: []uint32{2}})
	if !wr.Resp.OK() {
		t.Fatalf("cached path should have served the write: %v", wr.Resp)
	}
	rd := run(t, eng, m, &bus.Transaction{Op: bus.Read, Addr: secBase + 0x700, Size: 4, Burst: 1})
	if !rd.Resp.OK() || rd.Data[0] != 2 {
		t.Fatalf("read-back = %v %#x", rd.Resp, rd.Data[0])
	}
	if log.Len() != 0 {
		t.Fatalf("unexpected alerts: %v", log.All())
	}
}

func TestLCFReadOnlyZoneBlocksWrites(t *testing.T) {
	eng := sim.NewEngine(sim.DefaultFrequency)
	b := bus.New(eng, bus.Config{})
	ddr := mem.NewDDR("ddr", ddrBase, ddrSize)
	log := core.NewAlertLog()
	cm := core.MustConfig(core.Policy{SPI: 1, Zone: core.Zone{secBase, secSize},
		RWA: core.ReadOnly, ADF: core.AnyWidth, CM: true, IM: true, Key: testKey})
	lcf, err := core.NewCipherFirewall(core.LCFConfig{
		IntegrityZone: core.Zone{secBase, secSize}, NodeBase: nodeBase,
	}, ddr, ddr.Store(), cm, log)
	if err != nil {
		t.Fatal(err)
	}
	lcf.Seal()
	b.AddSlave(lcf)
	m := b.NewMaster("cpu0")
	wr := run(t, eng, m, &bus.Transaction{Op: bus.Write, Addr: secBase, Size: 4, Burst: 1, Data: []uint32{9}})
	if wr.Resp != bus.RespSecurityErr {
		t.Fatalf("write to RO cipher zone: %v", wr.Resp)
	}
	if a := log.All()[0]; a.Violation != core.VAccess {
		t.Fatalf("violation = %v", a.Violation)
	}
}
