package core

import "testing"

// Thread-specific security: the paper's future-work extension where "each
// thread has its own security level" (§VI).

func threadConfig() *ConfigMemory {
	return MustConfig(
		// Zone open to thread 1 only (any master).
		Policy{SPI: 1, Zone: Zone{Base: 0x1000, Size: 0x100}, RWA: ReadWrite, ADF: AnyWidth,
			Threads: []uint32{1}},
		// Zone open to any thread.
		Policy{SPI: 2, Zone: Zone{Base: 0x2000, Size: 0x100}, RWA: ReadWrite, ADF: AnyWidth},
	)
}

func TestThreadRestrictedZone(t *testing.T) {
	cm := threadConfig()
	if _, v := cm.CheckAccess(Access{Master: "m", Thread: 1, Write: true, Addr: 0x1000, Size: 4, Burst: 1}); v != VNone {
		t.Fatalf("thread 1: %v", v)
	}
	if _, v := cm.CheckAccess(Access{Master: "m", Thread: 0, Write: true, Addr: 0x1000, Size: 4, Burst: 1}); v != VThread {
		t.Fatalf("thread 0: %v, want thread violation", v)
	}
	if _, v := cm.CheckAccess(Access{Master: "m", Thread: 7, Write: true, Addr: 0x1000, Size: 4, Burst: 1}); v != VThread {
		t.Fatalf("thread 7: %v, want thread violation", v)
	}
}

func TestThreadOpenZoneIgnoresContext(t *testing.T) {
	cm := threadConfig()
	for _, th := range []uint32{0, 1, 99} {
		if _, v := cm.CheckAccess(Access{Master: "m", Thread: th, Write: false, Addr: 0x2000, Size: 4, Burst: 1}); v != VNone {
			t.Fatalf("thread %d on open zone: %v", th, v)
		}
	}
}

func TestThreadRestrictionFailsClosed(t *testing.T) {
	// A thread-1 rule over a sub-zone inside a broader any-thread zone:
	// the restriction is decisive. Thread 0 is denied in the sub-zone
	// (VThread, no fall-through to the broad allow) but untouched in the
	// rest of the parent zone.
	cm := MustConfig(
		Policy{SPI: 1, Zone: Zone{Base: 0x1000, Size: 0x10}, RWA: ReadWrite, ADF: AnyWidth,
			Threads: []uint32{1}},
		Policy{SPI: 2, Zone: Zone{Base: 0x1000, Size: 0x100}, RWA: ReadWrite, ADF: AnyWidth},
	)
	if _, v := cm.CheckAccess(Access{Master: "m", Thread: 1, Write: true, Addr: 0x1000, Size: 4, Burst: 1}); v != VNone {
		t.Fatalf("thread 1 write: %v", v)
	}
	if p, v := cm.CheckAccess(Access{Master: "m", Thread: 0, Write: false, Addr: 0x1000, Size: 4, Burst: 1}); v != VThread || p.SPI != 1 {
		t.Fatalf("thread 0 in restricted window: %v SPI %d, want thread violation on SPI 1", v, p.SPI)
	}
	if _, v := cm.CheckAccess(Access{Master: "m", Thread: 0, Write: true, Addr: 0x1080, Size: 4, Burst: 1}); v != VNone {
		t.Fatalf("thread 0 outside window: %v", v)
	}
}

func TestThreadAndOriginCompose(t *testing.T) {
	cm := MustConfig(Policy{SPI: 1, Zone: Zone{Base: 0, Size: 0x100}, RWA: ReadWrite, ADF: AnyWidth,
		Origins: []string{"cpu0"}, Threads: []uint32{2}})
	if _, v := cm.CheckAccess(Access{Master: "cpu0", Thread: 2, Write: true, Addr: 0, Size: 4, Burst: 1}); v != VNone {
		t.Fatalf("authorized pair: %v", v)
	}
	if _, v := cm.CheckAccess(Access{Master: "cpu1", Thread: 2, Write: true, Addr: 0, Size: 4, Burst: 1}); v != VOrigin {
		t.Fatalf("wrong master: %v", v)
	}
	if _, v := cm.CheckAccess(Access{Master: "cpu0", Thread: 3, Write: true, Addr: 0, Size: 4, Burst: 1}); v != VThread {
		t.Fatalf("wrong thread: %v", v)
	}
}

func TestCheckWrapperUsesThreadZero(t *testing.T) {
	cm := threadConfig()
	// The legacy wrapper evaluates under thread 0: restricted zone denied.
	if _, v := cm.Check("m", true, 0x1000, 4, 1); v != VThread {
		t.Fatalf("wrapper on restricted zone: %v", v)
	}
	if _, v := cm.Check("m", true, 0x2000, 4, 1); v != VNone {
		t.Fatalf("wrapper on open zone: %v", v)
	}
}
