package core

import (
	"repro/internal/bus"
	"repro/internal/sim"
)

// DefaultCheckCycles is the Security Builder's rule-check latency
// (Table II: 12 cycles).
const DefaultCheckCycles = 12

// Stats counts a firewall's decisions.
type Stats struct {
	// Checked is the number of transfers examined.
	Checked uint64
	// Allowed is the number of transfers forwarded.
	Allowed uint64
	// Blocked is the number of transfers discarded at the interface.
	Blocked uint64
	// CheckCyclesSpent accumulates Security Builder latency.
	CheckCyclesSpent uint64
}

// LocalFirewall is the master-side Local Firewall of Figure 1: it wraps an
// IP's bus connection (bus.Conn) and enforces the IP's security policy
// before a transfer can reach the bus.
//
// Internally it mirrors the paper's three blocks. The LF Communication
// Block (LFCB) is the Submit entry point, which "triggers secpol_req"; the
// Security Builder (SB) is the policy lookup plus the checking modules,
// taking CheckCycles cycles; the Firewall Interface (FI) either forwards
// the transfer to the wrapped connection or discards it and completes the
// transaction with a security error, so the bus never sees it.
type LocalFirewall struct {
	name  string
	eng   *sim.Engine
	inner bus.Conn
	cm    *ConfigMemory
	log   *AlertLog

	// CheckCycles is the SB latency per transfer (default 12).
	CheckCycles uint64
	// Owner optionally names the IP behind this firewall. Transfers
	// submitted without a Master are attributed to it, so alerts (and
	// the quarantine Reactor) track the IP, not the interface. Defaults
	// to the firewall_id.
	Owner string

	// free is a free list of in-flight transfer records, so Submit does
	// not allocate per transfer in steady state.
	free []*lfPending

	stats Stats
}

// lfPending is one transfer held in the Security Builder between Submit and
// the policy decision CheckCycles later.
type lfPending struct {
	f    *LocalFirewall
	tx   *bus.Transaction
	done func(*bus.Transaction)
}

// NewLocalFirewall wraps conn with a firewall named name (the firewall_id
// in alerts) enforcing the rules in cm, reporting to log.
func NewLocalFirewall(eng *sim.Engine, name string, conn bus.Conn, cm *ConfigMemory, log *AlertLog) *LocalFirewall {
	return &LocalFirewall{
		name:        name,
		eng:         eng,
		inner:       conn,
		cm:          cm,
		log:         log,
		CheckCycles: DefaultCheckCycles,
	}
}

// Name returns the firewall_id.
func (f *LocalFirewall) Name() string { return f.name }

// Config exposes the on-chip Configuration Memory (run-time
// reconfiguration of security services goes through it).
func (f *LocalFirewall) Config() *ConfigMemory { return f.cm }

// Stats returns the decision counters.
func (f *LocalFirewall) Stats() Stats { return f.stats }

// Submit implements bus.Conn. The transfer is held for CheckCycles while
// the SB evaluates the policy, then either forwarded or discarded locally.
// The firewall stamps the end-to-end Issued origin only when no earlier
// interface recorded one, so a transfer that already passed another
// firewall keeps its original latency origin.
func (f *LocalFirewall) Submit(tx *bus.Transaction, done func(*bus.Transaction)) {
	f.stats.Checked++
	f.stats.CheckCyclesSpent += f.CheckCycles
	if tx.Master == "" {
		if f.Owner != "" {
			tx.Master = f.Owner
		} else {
			tx.Master = f.name
		}
	}
	tx.StampIssued(f.eng.Now())
	p := f.getPending(tx, done)
	f.eng.ScheduleArg(f.CheckCycles, lfCheck, p)
}

// lfCheck is the Security Builder decision point, pre-bound at package
// level so Submit schedules it without allocating a closure per transfer.
func lfCheck(now uint64, arg any) {
	p := arg.(*lfPending)
	f, tx, done := p.f, p.tx, p.done
	f.putPending(p)
	pol, v := f.cm.CheckAccess(accessOf(tx))
	if v == VNone {
		f.stats.Allowed++
		f.inner.Submit(tx, done)
		return
	}
	f.stats.Blocked++
	f.log.Record(Alert{
		Cycle:      now,
		FirewallID: f.name,
		Master:     tx.Master,
		Thread:     tx.Thread,
		SPI:        pol.SPI,
		Violation:  v,
		Op:         tx.Op,
		Addr:       tx.Addr,
		Size:       tx.Size,
	})
	// FI discards the transfer: zero any read data, flag the error
	// and complete without touching the bus.
	tx.Resp = bus.RespSecurityErr
	for i := range tx.Data {
		tx.Data[i] = 0
	}
	tx.Completed = now
	if done != nil {
		done(tx)
	}
}

func (f *LocalFirewall) getPending(tx *bus.Transaction, done func(*bus.Transaction)) *lfPending {
	if n := len(f.free); n > 0 {
		p := f.free[n-1]
		f.free[n-1] = nil
		f.free = f.free[:n-1]
		p.tx, p.done = tx, done
		return p
	}
	return &lfPending{f: f, tx: tx, done: done}
}

func (f *LocalFirewall) putPending(p *lfPending) {
	p.tx, p.done = nil, nil
	f.free = append(f.free, p)
}

// SlaveFirewall is the slave-side Local Firewall: it guards a bus target
// (the internal shared memory or a dedicated IP's registers) and checks
// every transfer arriving from the bus before it can reach the IP. Unlike
// the master-side form its policies typically constrain *origins* (which
// masters may touch which zones).
type SlaveFirewall struct {
	inner bus.Slave
	name  string
	cm    *ConfigMemory
	log   *AlertLog

	// CheckCycles is the SB latency per transfer (default 12).
	CheckCycles uint64

	stats Stats
}

// NewSlaveFirewall wraps slave with a firewall named name enforcing cm.
func NewSlaveFirewall(name string, slave bus.Slave, cm *ConfigMemory, log *AlertLog) *SlaveFirewall {
	return &SlaveFirewall{
		inner:       slave,
		name:        name,
		cm:          cm,
		log:         log,
		CheckCycles: DefaultCheckCycles,
	}
}

// Name implements bus.Slave (the firewall is transparent: it reports the
// protected IP's name for address decoding diagnostics).
func (f *SlaveFirewall) Name() string { return f.inner.Name() }

// FirewallID returns the firewall's own identifier used in alerts.
func (f *SlaveFirewall) FirewallID() string { return f.name }

// Base implements bus.Slave.
func (f *SlaveFirewall) Base() uint32 { return f.inner.Base() }

// Size implements bus.Slave.
func (f *SlaveFirewall) Size() uint32 { return f.inner.Size() }

// Config exposes the on-chip Configuration Memory.
func (f *SlaveFirewall) Config() *ConfigMemory { return f.cm }

// Stats returns the decision counters.
func (f *SlaveFirewall) Stats() Stats { return f.stats }

// Inner returns the protected slave.
func (f *SlaveFirewall) Inner() bus.Slave { return f.inner }

// Access implements bus.Slave: run the SB check and either forward to the
// protected IP or discard. The check evaluates address, direction, format
// and origin — all known at the address phase — so it proceeds *in
// parallel* with the IP access, and the response is gated on whichever
// finishes last (a discarded transfer still occupies the interface for the
// full check latency, and the IP behind it is never touched).
func (f *SlaveFirewall) Access(now uint64, tx *bus.Transaction) (uint64, bus.Resp) {
	f.stats.Checked++
	f.stats.CheckCyclesSpent += f.CheckCycles
	pol, v := f.cm.CheckAccess(accessOf(tx))
	if v != VNone {
		f.stats.Blocked++
		f.log.Record(Alert{
			Cycle:      now,
			FirewallID: f.name,
			Master:     tx.Master,
			Thread:     tx.Thread,
			SPI:        pol.SPI,
			Violation:  v,
			Op:         tx.Op,
			Addr:       tx.Addr,
			Size:       tx.Size,
		})
		for i := range tx.Data {
			tx.Data[i] = 0
		}
		return f.CheckCycles, bus.RespSecurityErr
	}
	f.stats.Allowed++
	cycles, resp := f.inner.Access(now, tx)
	if f.CheckCycles > cycles {
		cycles = f.CheckCycles
	}
	return cycles, resp
}
