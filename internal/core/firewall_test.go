package core_test

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
)

// lfRig wires: master port -> LocalFirewall -> bus -> BRAM at 0x1000_0000.
func lfRig(t *testing.T, rules ...core.Policy) (*sim.Engine, *core.LocalFirewall, *bus.Bus, *core.AlertLog) {
	t.Helper()
	eng := sim.NewEngine(sim.DefaultFrequency)
	b := bus.New(eng, bus.Config{})
	b.AddSlave(mem.NewBRAM("bram", 0x1000_0000, 0x1_0000))
	log := core.NewAlertLog()
	lf := core.NewLocalFirewall(eng, "lf-cpu0", b.NewMaster("cpu0"), core.MustConfig(rules...), log)
	return eng, lf, b, log
}

func run(t *testing.T, eng *sim.Engine, c bus.Conn, tx *bus.Transaction) *bus.Transaction {
	t.Helper()
	done := false
	c.Submit(tx, func(*bus.Transaction) { done = true })
	if _, ok := eng.RunUntil(func() bool { return done }, 100000); !ok {
		t.Fatalf("transaction never completed")
	}
	return tx
}

func TestLFAllowsPermittedAccess(t *testing.T) {
	eng, lf, _, log := lfRig(t,
		core.Policy{SPI: 1, Zone: core.Zone{0x1000_0000, 0x1_0000}, RWA: core.ReadWrite, ADF: core.AnyWidth})
	tx := run(t, eng, lf, &bus.Transaction{Op: bus.Write, Addr: 0x1000_0000, Size: 4, Burst: 1, Data: []uint32{42}})
	if !tx.Resp.OK() {
		t.Fatalf("resp = %v", tx.Resp)
	}
	rd := run(t, eng, lf, &bus.Transaction{Op: bus.Read, Addr: 0x1000_0000, Size: 4, Burst: 1})
	if rd.Data[0] != 42 {
		t.Fatalf("read %d", rd.Data[0])
	}
	if log.Len() != 0 {
		t.Fatalf("alerts raised for legal traffic: %v", log.All())
	}
	st := lf.Stats()
	if st.Checked != 2 || st.Allowed != 2 || st.Blocked != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLFBlocksWriteToReadOnlyZone(t *testing.T) {
	eng, lf, b, log := lfRig(t,
		core.Policy{SPI: 7, Zone: core.Zone{0x1000_0000, 0x1_0000}, RWA: core.ReadOnly, ADF: core.AnyWidth})
	tx := run(t, eng, lf, &bus.Transaction{Op: bus.Write, Addr: 0x1000_0010, Size: 4, Burst: 1, Data: []uint32{1}})
	if tx.Resp != bus.RespSecurityErr {
		t.Fatalf("resp = %v, want SECURITY_ERR", tx.Resp)
	}
	if log.Len() != 1 {
		t.Fatalf("alert count = %d", log.Len())
	}
	a := log.All()[0]
	if a.Violation != core.VAccess || a.FirewallID != "lf-cpu0" || a.SPI != 7 {
		t.Fatalf("alert = %+v", a)
	}
	// The defining property of the distributed scheme: the blocked
	// transfer never reached the bus.
	if s := b.Stats(); s.Completed != 0 {
		t.Fatalf("bus saw %d transactions; master-side block must keep the bus clean", s.Completed)
	}
}

func TestLFBlocksZoneEscape(t *testing.T) {
	eng, lf, _, log := lfRig(t,
		core.Policy{SPI: 1, Zone: core.Zone{0x1000_0000, 0x100}, RWA: core.ReadWrite, ADF: core.AnyWidth})
	tx := run(t, eng, lf, &bus.Transaction{Op: bus.Read, Addr: 0x1000_0200, Size: 4, Burst: 1})
	if tx.Resp != bus.RespSecurityErr {
		t.Fatalf("resp = %v", tx.Resp)
	}
	if a := log.All()[0]; a.Violation != core.VZone {
		t.Fatalf("violation = %v, want zone", a.Violation)
	}
}

func TestLFBlocksFormatViolation(t *testing.T) {
	eng, lf, _, log := lfRig(t,
		core.Policy{SPI: 1, Zone: core.Zone{0x1000_0000, 0x1_0000}, RWA: core.ReadWrite, ADF: core.W32})
	tx := run(t, eng, lf, &bus.Transaction{Op: bus.Write, Addr: 0x1000_0000, Size: 1, Burst: 1, Data: []uint32{0xFF}})
	if tx.Resp != bus.RespSecurityErr {
		t.Fatalf("resp = %v", tx.Resp)
	}
	if a := log.All()[0]; a.Violation != core.VFormat {
		t.Fatalf("violation = %v, want format", a.Violation)
	}
}

func TestLFCheckLatencyIsTwelveCycles(t *testing.T) {
	eng, lf, _, _ := lfRig(t,
		core.Policy{SPI: 1, Zone: core.Zone{0x1000_0000, 0x1_0000}, RWA: core.ReadWrite, ADF: core.AnyWidth})
	issue := eng.Now()
	tx := run(t, eng, lf, &bus.Transaction{Op: bus.Read, Addr: 0x1000_0000, Size: 4, Burst: 1})
	// Table II: SB check = 12 cycles, then bus occupancy (arb 1 + addr 1 +
	// BRAM wait 1 + 1 beat = 4).
	if got := tx.Completed - issue; got != 12+4 {
		t.Fatalf("secured access took %d cycles, want 16", got)
	}
	// A blocked access costs only the check: 12 cycles.
	blocked := run(t, eng, lf, &bus.Transaction{Op: bus.Read, Addr: 0x2000_0000, Size: 4, Burst: 1})
	if got := blocked.Completed - blocked.Issued; got != 12 {
		t.Fatalf("blocked access took %d cycles, want 12", got)
	}
}

func TestLFReadViolationZeroesData(t *testing.T) {
	eng, lf, _, _ := lfRig(t,
		core.Policy{SPI: 1, Zone: core.Zone{0x1000_0000, 0x1_0000}, RWA: core.WriteOnly, ADF: core.AnyWidth})
	tx := &bus.Transaction{Op: bus.Read, Addr: 0x1000_0000, Size: 4, Burst: 1, Data: []uint32{0xDEAD}}
	run(t, eng, lf, tx)
	if tx.Data[0] != 0 {
		t.Fatalf("discarded read leaked data %#x", tx.Data[0])
	}
}

func TestLFRuntimeReconfiguration(t *testing.T) {
	eng, lf, _, _ := lfRig(t,
		core.Policy{SPI: 1, Zone: core.Zone{0x1000_0000, 0x100}, RWA: core.ReadOnly, ADF: core.AnyWidth})
	tx := run(t, eng, lf, &bus.Transaction{Op: bus.Write, Addr: 0x1000_0000, Size: 4, Burst: 1, Data: []uint32{1}})
	if tx.Resp != bus.RespSecurityErr {
		t.Fatal("write should be blocked before reconfiguration")
	}
	// The paper's perspective: reconfiguration of security services.
	lf.Config().Remove(1)
	if err := lf.Config().Add(core.Policy{SPI: 2, Zone: core.Zone{0x1000_0000, 0x100}, RWA: core.ReadWrite, ADF: core.AnyWidth}); err != nil {
		t.Fatal(err)
	}
	tx2 := run(t, eng, lf, &bus.Transaction{Op: bus.Write, Addr: 0x1000_0000, Size: 4, Burst: 1, Data: []uint32{1}})
	if !tx2.Resp.OK() {
		t.Fatalf("write still blocked after reconfiguration: %v", tx2.Resp)
	}
}

// Slave-side firewall tests.

func sfRig(t *testing.T, rules ...core.Policy) (*sim.Engine, *bus.MasterPort, *bus.MasterPort, *core.AlertLog, *mem.BRAM) {
	t.Helper()
	eng := sim.NewEngine(sim.DefaultFrequency)
	b := bus.New(eng, bus.Config{})
	ram := mem.NewBRAM("bram", 0x1000_0000, 0x1_0000)
	log := core.NewAlertLog()
	b.AddSlave(core.NewSlaveFirewall("lf-bram", ram, core.MustConfig(rules...), log))
	return eng, b.NewMaster("cpu0"), b.NewMaster("cpu1"), log, ram
}

func TestSlaveFirewallOriginEnforcement(t *testing.T) {
	eng, cpu0, cpu1, log, ram := sfRig(t,
		core.Policy{SPI: 1, Zone: core.Zone{0x1000_0000, 0x1_0000}, RWA: core.ReadWrite, ADF: core.AnyWidth,
			Origins: []string{"cpu0"}})
	ok := run(t, eng, cpu0, &bus.Transaction{Op: bus.Write, Addr: 0x1000_0000, Size: 4, Burst: 1, Data: []uint32{5}})
	if !ok.Resp.OK() {
		t.Fatalf("cpu0 blocked: %v", ok.Resp)
	}
	bad := run(t, eng, cpu1, &bus.Transaction{Op: bus.Write, Addr: 0x1000_0004, Size: 4, Burst: 1, Data: []uint32{6}})
	if bad.Resp != bus.RespSecurityErr {
		t.Fatalf("cpu1 not blocked: %v", bad.Resp)
	}
	if a := log.All()[0]; a.Violation != core.VOrigin || a.Master != "cpu1" {
		t.Fatalf("alert %+v", a)
	}
	// The protected IP was never touched by the discarded write.
	if got := ram.Store().ReadWord(0x1000_0004); got != 0 {
		t.Fatalf("blocked write modified the IP: %#x", got)
	}
}

func TestSlaveFirewallTransparentGeometry(t *testing.T) {
	_, _, _, _, ram := sfRig(t)
	fw := core.NewSlaveFirewall("x", ram, core.MustConfig(), core.NewAlertLog())
	if fw.Base() != ram.Base() || fw.Size() != ram.Size() || fw.Name() != ram.Name() {
		t.Fatal("firewall does not mirror the protected slave's geometry")
	}
	if fw.FirewallID() != "x" || fw.Inner() != bus.Slave(ram) {
		t.Fatal("identity accessors wrong")
	}
}

func TestSlaveFirewallDiscardZeroesReadData(t *testing.T) {
	eng, cpu0, _, _, ram := sfRig(t,
		core.Policy{SPI: 1, Zone: core.Zone{0x1000_0000, 0x1_0000}, RWA: core.ReadWrite, ADF: core.AnyWidth,
			Origins: []string{"nobody"}})
	ram.Store().WriteWord(0x1000_0000, 0x5EC12E7)
	tx := run(t, eng, cpu0, &bus.Transaction{Op: bus.Read, Addr: 0x1000_0000, Size: 4, Burst: 1})
	if tx.Resp != bus.RespSecurityErr {
		t.Fatalf("resp = %v", tx.Resp)
	}
	if tx.Data[0] != 0 {
		t.Fatalf("secret leaked through discarded read: %#x", tx.Data[0])
	}
}

func TestAlertLogAggregation(t *testing.T) {
	log := core.NewAlertLog()
	log.Record(core.Alert{Cycle: 5, FirewallID: "a", Violation: core.VZone})
	log.Record(core.Alert{Cycle: 9, FirewallID: "a", Violation: core.VAccess})
	log.Record(core.Alert{Cycle: 12, FirewallID: "b", Violation: core.VZone})
	if log.Len() != 3 {
		t.Fatalf("Len = %d", log.Len())
	}
	byV := log.CountByViolation()
	if byV[core.VZone] != 2 || byV[core.VAccess] != 1 {
		t.Fatalf("CountByViolation = %v", byV)
	}
	byF := log.CountByFirewall()
	if byF["a"] != 2 || byF["b"] != 1 {
		t.Fatalf("CountByFirewall = %v", byF)
	}
	if got := log.Since(9); len(got) != 2 {
		t.Fatalf("Since(9) = %d alerts", len(got))
	}
	first := log.First(func(a core.Alert) bool { return a.FirewallID == "b" })
	if first == nil || first.Cycle != 12 {
		t.Fatalf("First = %+v", first)
	}
	if log.First(func(a core.Alert) bool { return false }) != nil {
		t.Fatal("First with no match should be nil")
	}
	log.Reset()
	if log.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestAlertString(t *testing.T) {
	a := core.Alert{Cycle: 3, FirewallID: "lf-x", Master: "cpu1", Violation: core.VFormat,
		Op: bus.Write, Addr: 0x1234, Size: 2, Detail: "w16 banned"}
	s := a.String()
	for _, want := range []string{"lf-x", "cpu1", "format", "0x1234", "w16 banned"} {
		if !contains(s, want) {
			t.Errorf("Alert.String() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
