package core_test

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
)

// TestLCFAgainstReferenceModel drives long random sequences of mixed-width
// reads and writes through the full bus+LCF stack and checks every read
// against a plain byte-array reference. This is the strongest functional
// statement about the LCF: encryption, RMW merging, burst handling and
// integrity bookkeeping are completely transparent to software.
func TestLCFAgainstReferenceModel(t *testing.T) {
	eng := sim.NewEngine(sim.DefaultFrequency)
	b := bus.New(eng, bus.Config{})
	ddr := mem.NewDDR("ddr", ddrBase, ddrSize)
	log := core.NewAlertLog()
	cm := core.MustConfig(
		core.Policy{SPI: 1, Zone: core.Zone{Base: secBase, Size: secSize}, RWA: core.ReadWrite,
			ADF: core.AnyWidth, CM: true, IM: true, Key: testKey},
	)
	lcf, err := core.NewCipherFirewall(core.LCFConfig{
		IntegrityZone: core.Zone{Base: secBase, Size: secSize},
		NodeBase:      nodeBase,
		CacheSize:     32, // small cache: exercise eviction during the run
	}, ddr, ddr.Store(), cm, log)
	if err != nil {
		t.Fatal(err)
	}
	lcf.Seal()
	b.AddSlave(lcf)
	m := b.NewMaster("cpu0")

	const span = 0x400 // fuzz within 1 KiB of the secure zone
	ref := make([]byte, span)
	rng := sim.NewRNG(0xFACE)

	doTx := func(tx *bus.Transaction) *bus.Transaction {
		done := false
		m.Submit(tx, func(*bus.Transaction) { done = true })
		if _, ok := eng.RunUntil(func() bool { return done }, 10_000_000); !ok {
			t.Fatalf("transaction stuck: %+v", tx)
		}
		return tx
	}

	for op := 0; op < 600; op++ {
		size := []int{1, 2, 4}[rng.Intn(3)]
		burst := 1
		if size == 4 && rng.Intn(4) == 0 {
			burst = 1 + rng.Intn(8)
		}
		maxStart := span - size*burst
		addr := uint32(rng.Intn(maxStart+1)) &^ (uint32(size) - 1)

		if rng.Bool() {
			// Write: update the reference model in lockstep.
			data := make([]uint32, burst)
			for i := range data {
				data[i] = rng.Uint32()
				for bb := 0; bb < size; bb++ {
					ref[int(addr)+i*size+bb] = byte(data[i] >> (8 * bb))
				}
			}
			tx := doTx(&bus.Transaction{Op: bus.Write, Addr: secBase + addr, Size: size, Burst: burst, Data: data})
			if !tx.Resp.OK() {
				t.Fatalf("op %d: write %v", op, tx.Resp)
			}
		} else {
			tx := doTx(&bus.Transaction{Op: bus.Read, Addr: secBase + addr, Size: size, Burst: burst})
			if !tx.Resp.OK() {
				t.Fatalf("op %d: read %v", op, tx.Resp)
			}
			for i := 0; i < burst; i++ {
				var want uint32
				for bb := 0; bb < size; bb++ {
					want |= uint32(ref[int(addr)+i*size+bb]) << (8 * bb)
				}
				if tx.Data[i] != want {
					t.Fatalf("op %d: read @%#x size %d beat %d = %#x, want %#x",
						op, secBase+addr, size, i, tx.Data[i], want)
				}
			}
		}
	}
	if log.Len() != 0 {
		t.Fatalf("legal fuzz traffic raised %d alerts: %v", log.Len(), log.All())
	}

	// The external image must never contain a run of reference plaintext.
	raw := ddr.Store().Peek(secBase, span)
	matches := 0
	for i := 0; i < span; i++ {
		if raw[i] == ref[i] {
			matches++
		}
	}
	// Random bytes agree with probability 1/256; allow generous slack.
	if matches > span/16 {
		t.Fatalf("external image suspiciously similar to plaintext: %d/%d bytes equal", matches, span)
	}

	// And the whole zone still verifies.
	if bad := lcf.Tree().VerifyAll(); bad != -1 {
		t.Fatalf("tree inconsistent after fuzz: leaf %d", bad)
	}
}

// TestLCFFuzzWithInterleavedTamper repeats shorter fuzz bursts, each
// followed by a random single-bit external tamper that must be caught on
// the next read of the affected block.
func TestLCFFuzzWithInterleavedTamper(t *testing.T) {
	eng := sim.NewEngine(sim.DefaultFrequency)
	b := bus.New(eng, bus.Config{})
	ddr := mem.NewDDR("ddr", ddrBase, ddrSize)
	log := core.NewAlertLog()
	cm := core.MustConfig(
		core.Policy{SPI: 1, Zone: core.Zone{Base: secBase, Size: secSize}, RWA: core.ReadWrite,
			ADF: core.AnyWidth, CM: true, IM: true, Key: testKey},
	)
	lcf, err := core.NewCipherFirewall(core.LCFConfig{
		IntegrityZone: core.Zone{Base: secBase, Size: secSize},
		NodeBase:      nodeBase,
		CacheSize:     -1, // no cache: every read re-walks the tree
	}, ddr, ddr.Store(), cm, log)
	if err != nil {
		t.Fatal(err)
	}
	lcf.Seal()
	b.AddSlave(lcf)
	m := b.NewMaster("cpu0")
	rng := sim.NewRNG(0xBEEF)

	doTx := func(tx *bus.Transaction) *bus.Transaction {
		done := false
		m.Submit(tx, func(*bus.Transaction) { done = true })
		eng.RunUntil(func() bool { return done }, 10_000_000)
		return tx
	}

	for round := 0; round < 25; round++ {
		// Tamper one random bit inside the first 512 bytes.
		off := uint32(rng.Intn(512))
		bit := byte(1) << uint(rng.Intn(8))
		old := ddr.Store().Peek(secBase+off, 1)
		ddr.Store().Poke(secBase+off, []byte{old[0] ^ bit})

		rdAddr := (secBase + off) &^ 3
		rd := doTx(&bus.Transaction{Op: bus.Read, Addr: rdAddr, Size: 4, Burst: 1})
		if rd.Resp != bus.RespSecurityErr {
			t.Fatalf("round %d: tamper at +%#x bit %#x undetected (resp %v)", round, off, bit, rd.Resp)
		}
		// Recover: rewrite the whole 32-byte block through the LCF.
		blockBase := (secBase + off) &^ 31
		wr := doTx(&bus.Transaction{Op: bus.Write, Addr: blockBase, Size: 4, Burst: 8,
			Data: make([]uint32, 8)})
		if !wr.Resp.OK() {
			t.Fatalf("round %d: recovery write failed: %v", round, wr.Resp)
		}
		if rd2 := doTx(&bus.Transaction{Op: bus.Read, Addr: rdAddr, Size: 4, Burst: 1}); !rd2.Resp.OK() {
			t.Fatalf("round %d: read after recovery failed: %v", round, rd2.Resp)
		}
	}
	if got := log.CountByViolation()[core.VIntegrity] + log.CountByViolation()[core.VReplay]; got != 25 {
		t.Fatalf("expected 25 integrity-class alerts, got %d", got)
	}
}
