package core_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestReactorEventSequence drives one full incident through the reactor
// and checks the observer sees every transition, in order, with the
// master and cycle attached — the contract internal/obs builds its
// reactor track on.
func TestReactorEventSequence(t *testing.T) {
	log := core.NewAlertLog()
	cm := core.MustConfig(
		core.Policy{SPI: 1, Zone: core.Zone{Base: 0x1000, Size: 0x100}, RWA: core.ReadWrite, ADF: core.AnyWidth, CM: true, IM: true},
		core.Policy{SPI: 2, Zone: core.Zone{Base: 0x2000, Size: 0x100}, RWA: core.ReadOnly, ADF: core.W32},
	)
	r := core.NewReactor(log, 2, 0)
	cycle := new(uint64)
	r.Clock = func() uint64 { return *cycle }
	r.Guard("cpu0", cm)

	var got []core.ReactorEvent
	r.OnEvent(func(e core.ReactorEvent) { got = append(got, e) })
	// A second observer must also be called: OnEvent is multicast, so the
	// tracer can watch without stealing recovery's subscription.
	calls := 0
	r.OnEvent(func(core.ReactorEvent) { calls++ })

	*cycle = 10
	log.Record(core.Alert{Cycle: 10, Master: "cpu0", Violation: core.VZone})
	log.Record(core.Alert{Cycle: 20, Master: "cpu0", Violation: core.VZone})
	*cycle = 100
	if err := r.ReleaseStaged("cpu0", func(p core.Policy) bool { return p.IM }); err != nil {
		t.Fatal(err)
	}
	// One probation violation slams the door again.
	log.Record(core.Alert{Cycle: 150, Master: "cpu0", Violation: core.VZone})
	*cycle = 300
	if err := r.Release("cpu0"); err != nil {
		t.Fatal(err)
	}

	want := []core.ReactorEvent{
		{Kind: core.EventQuarantine, Master: "cpu0", Cycle: 20},
		{Kind: core.EventStagedRelease, Master: "cpu0", Cycle: 100},
		{Kind: core.EventRequarantine, Master: "cpu0", Cycle: 150},
		{Kind: core.EventRelease, Master: "cpu0", Cycle: 300},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("event sequence:\n got %+v\nwant %+v", got, want)
	}
	if calls != len(want) {
		t.Fatalf("second observer saw %d events, want %d", calls, len(want))
	}
}

func TestReactorOnEventNilPanics(t *testing.T) {
	r, _, _ := stagedRig(t, false)
	defer func() {
		if recover() == nil {
			t.Fatal("OnEvent(nil) did not panic")
		}
	}()
	r.OnEvent(nil)
}
