package core_test

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
)

// reactorRig wires one firewalled master with an allow-BRAM policy and a
// reactor with the given budget.
func reactorRig(t *testing.T, threshold int, window uint64) (*sim.Engine, *core.LocalFirewall, *core.Reactor) {
	t.Helper()
	eng := sim.NewEngine(sim.DefaultFrequency)
	b := bus.New(eng, bus.Config{})
	b.AddSlave(mem.NewBRAM("bram", 0x1000_0000, 0x1_0000))
	log := core.NewAlertLog()
	lf := core.NewLocalFirewall(eng, "lf-cpu0", b.NewMaster("cpu0"), core.MustConfig(
		core.Policy{SPI: 1, Zone: core.Zone{Base: 0x1000_0000, Size: 0x1_0000}, RWA: core.ReadWrite, ADF: core.AnyWidth},
	), log)
	lf.Owner = "cpu0"
	r := core.NewReactor(log, threshold, window)
	r.Guard("cpu0", lf.Config())
	return eng, lf, r
}

func probe(t *testing.T, eng *sim.Engine, lf *core.LocalFirewall, addr uint32) bus.Resp {
	t.Helper()
	tx := &bus.Transaction{Op: bus.Write, Addr: addr, Size: 4, Burst: 1, Data: []uint32{1}}
	done := false
	lf.Submit(tx, func(*bus.Transaction) { done = true })
	if _, ok := eng.RunUntil(func() bool { return done }, 100000); !ok {
		t.Fatal("stuck")
	}
	return tx.Resp
}

func TestReactorQuarantinesAfterThreshold(t *testing.T) {
	eng, lf, r := reactorRig(t, 3, 0)
	// Two violations: still under budget, legal traffic flows.
	for i := 0; i < 2; i++ {
		if got := probe(t, eng, lf, 0x7000_0000); got != bus.RespSecurityErr {
			t.Fatalf("violation %d: %v", i, got)
		}
	}
	if r.Quarantined("cpu0") {
		t.Fatal("quarantined below threshold")
	}
	if got := probe(t, eng, lf, 0x1000_0000); got != bus.RespOK {
		t.Fatalf("legal access blocked pre-quarantine: %v", got)
	}
	// Third violation trips the reactor.
	probe(t, eng, lf, 0x7000_0000)
	if !r.Quarantined("cpu0") {
		t.Fatal("not quarantined at threshold")
	}
	if r.Quarantines != 1 {
		t.Fatalf("Quarantines = %d", r.Quarantines)
	}
	// Now even the previously legal zone is cut off — the hijacked IP's
	// exfiltration path through allowed zones is closed.
	if got := probe(t, eng, lf, 0x1000_0000); got != bus.RespSecurityErr {
		t.Fatalf("legal zone still open after quarantine: %v", got)
	}
}

func TestReactorReleaseRestoresPolicy(t *testing.T) {
	eng, lf, r := reactorRig(t, 1, 0)
	probe(t, eng, lf, 0x7000_0000) // single violation quarantines
	if !r.Quarantined("cpu0") {
		t.Fatal("not quarantined")
	}
	if err := r.Release("cpu0"); err != nil {
		t.Fatal(err)
	}
	if r.Quarantined("cpu0") {
		t.Fatal("still quarantined after Release")
	}
	if got := probe(t, eng, lf, 0x1000_0000); got != bus.RespOK {
		t.Fatalf("policy not restored: %v", got)
	}
	if err := r.Release("cpu0"); err == nil {
		t.Fatal("double Release accepted")
	}
}

func TestReactorWindowExpiry(t *testing.T) {
	eng, lf, r := reactorRig(t, 2, 50)
	probe(t, eng, lf, 0x7000_0000)
	// Let the window slide past the first violation.
	eng.Run(100)
	probe(t, eng, lf, 0x7000_0000)
	if r.Quarantined("cpu0") {
		t.Fatal("stale violations counted against the window")
	}
	// Two violations in quick succession do trip it.
	probe(t, eng, lf, 0x7000_0000)
	if !r.Quarantined("cpu0") {
		t.Fatal("burst not quarantined")
	}
}

func TestReactorIgnoresUnguardedMasters(t *testing.T) {
	eng := sim.NewEngine(sim.DefaultFrequency)
	b := bus.New(eng, bus.Config{})
	b.AddSlave(mem.NewBRAM("bram", 0x1000_0000, 0x1000))
	log := core.NewAlertLog()
	lf := core.NewLocalFirewall(eng, "lf-x", b.NewMaster("x"), core.MustConfig(), log)
	r := core.NewReactor(log, 1, 0)
	// No Guard call for "x": alerts must not panic or quarantine.
	tx := &bus.Transaction{Op: bus.Read, Addr: 0x1000_0000, Size: 4, Burst: 1}
	done := false
	lf.Submit(tx, func(*bus.Transaction) { done = true })
	eng.RunUntil(func() bool { return done }, 1000)
	if r.Quarantines != 0 {
		t.Fatal("unguarded master quarantined")
	}
	if r.Quarantined("x") {
		t.Fatal("phantom quarantine")
	}
}

func TestReactorThresholdClamped(t *testing.T) {
	eng, lf, r := reactorRig(t, 0, 0) // clamps to 1
	probe(t, eng, lf, 0x7000_0000)
	if !r.Quarantined("cpu0") {
		t.Fatal("threshold 0 should behave as 1")
	}
}

func TestReactorCountsAlertsFromAnyFirewall(t *testing.T) {
	// Violations detected at a *slave* firewall count against the master
	// and quarantine it at its own (master-side) interface.
	eng := sim.NewEngine(sim.DefaultFrequency)
	b := bus.New(eng, bus.Config{})
	log := core.NewAlertLog()
	ram := mem.NewBRAM("bram", 0x1000_0000, 0x1_0000)
	b.AddSlave(core.NewSlaveFirewall("lf-bram", ram, core.MustConfig(
		core.Policy{SPI: 2, Zone: core.Zone{Base: 0x1000_0000, Size: 0x1_0000}, RWA: core.ReadWrite,
			ADF: core.AnyWidth, Origins: []string{"nobody"}},
	), log))
	lf := core.NewLocalFirewall(eng, "lf-cpu0", b.NewMaster("cpu0"), core.MustConfig(
		core.Policy{SPI: 1, Zone: core.Zone{Base: 0x1000_0000, Size: 0x1_0000}, RWA: core.ReadWrite, ADF: core.AnyWidth},
	), log)
	lf.Owner = "cpu0"
	r := core.NewReactor(log, 1, 0)
	r.Guard("cpu0", lf.Config())
	if got := probe(t, eng, lf, 0x1000_0000); got != bus.RespSecurityErr {
		t.Fatalf("origin-restricted access: %v", got)
	}
	if !r.Quarantined("cpu0") {
		t.Fatal("slave-side alert did not quarantine the master")
	}
}
