package core_test

import (
	"reflect"
	"testing"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
)

// reactorRig wires one firewalled master with an allow-BRAM policy and a
// reactor with the given budget.
func reactorRig(t *testing.T, threshold int, window uint64) (*sim.Engine, *core.LocalFirewall, *core.Reactor) {
	t.Helper()
	eng := sim.NewEngine(sim.DefaultFrequency)
	b := bus.New(eng, bus.Config{})
	b.AddSlave(mem.NewBRAM("bram", 0x1000_0000, 0x1_0000))
	log := core.NewAlertLog()
	lf := core.NewLocalFirewall(eng, "lf-cpu0", b.NewMaster("cpu0"), core.MustConfig(
		core.Policy{SPI: 1, Zone: core.Zone{Base: 0x1000_0000, Size: 0x1_0000}, RWA: core.ReadWrite, ADF: core.AnyWidth},
	), log)
	lf.Owner = "cpu0"
	r := core.NewReactor(log, threshold, window)
	r.Guard("cpu0", lf.Config())
	return eng, lf, r
}

func probe(t *testing.T, eng *sim.Engine, lf *core.LocalFirewall, addr uint32) bus.Resp {
	t.Helper()
	tx := &bus.Transaction{Op: bus.Write, Addr: addr, Size: 4, Burst: 1, Data: []uint32{1}}
	done := false
	lf.Submit(tx, func(*bus.Transaction) { done = true })
	if _, ok := eng.RunUntil(func() bool { return done }, 100000); !ok {
		t.Fatal("stuck")
	}
	return tx.Resp
}

func TestReactorQuarantinesAfterThreshold(t *testing.T) {
	eng, lf, r := reactorRig(t, 3, 0)
	// Two violations: still under budget, legal traffic flows.
	for i := 0; i < 2; i++ {
		if got := probe(t, eng, lf, 0x7000_0000); got != bus.RespSecurityErr {
			t.Fatalf("violation %d: %v", i, got)
		}
	}
	if r.Quarantined("cpu0") {
		t.Fatal("quarantined below threshold")
	}
	if got := probe(t, eng, lf, 0x1000_0000); got != bus.RespOK {
		t.Fatalf("legal access blocked pre-quarantine: %v", got)
	}
	// Third violation trips the reactor.
	probe(t, eng, lf, 0x7000_0000)
	if !r.Quarantined("cpu0") {
		t.Fatal("not quarantined at threshold")
	}
	if r.Quarantines != 1 {
		t.Fatalf("Quarantines = %d", r.Quarantines)
	}
	// Now even the previously legal zone is cut off — the hijacked IP's
	// exfiltration path through allowed zones is closed.
	if got := probe(t, eng, lf, 0x1000_0000); got != bus.RespSecurityErr {
		t.Fatalf("legal zone still open after quarantine: %v", got)
	}
}

func TestReactorReleaseRestoresPolicy(t *testing.T) {
	eng, lf, r := reactorRig(t, 1, 0)
	probe(t, eng, lf, 0x7000_0000) // single violation quarantines
	if !r.Quarantined("cpu0") {
		t.Fatal("not quarantined")
	}
	if err := r.Release("cpu0"); err != nil {
		t.Fatal(err)
	}
	if r.Quarantined("cpu0") {
		t.Fatal("still quarantined after Release")
	}
	if got := probe(t, eng, lf, 0x1000_0000); got != bus.RespOK {
		t.Fatalf("policy not restored: %v", got)
	}
	if err := r.Release("cpu0"); err == nil {
		t.Fatal("double Release accepted")
	}
}

func TestReactorWindowExpiry(t *testing.T) {
	eng, lf, r := reactorRig(t, 2, 50)
	probe(t, eng, lf, 0x7000_0000)
	// Let the window slide past the first violation.
	eng.Run(100)
	probe(t, eng, lf, 0x7000_0000)
	if r.Quarantined("cpu0") {
		t.Fatal("stale violations counted against the window")
	}
	// Two violations in quick succession do trip it.
	probe(t, eng, lf, 0x7000_0000)
	if !r.Quarantined("cpu0") {
		t.Fatal("burst not quarantined")
	}
}

func TestReactorIgnoresUnguardedMasters(t *testing.T) {
	eng := sim.NewEngine(sim.DefaultFrequency)
	b := bus.New(eng, bus.Config{})
	b.AddSlave(mem.NewBRAM("bram", 0x1000_0000, 0x1000))
	log := core.NewAlertLog()
	lf := core.NewLocalFirewall(eng, "lf-x", b.NewMaster("x"), core.MustConfig(), log)
	r := core.NewReactor(log, 1, 0)
	// No Guard call for "x": alerts must not panic or quarantine.
	tx := &bus.Transaction{Op: bus.Read, Addr: 0x1000_0000, Size: 4, Burst: 1}
	done := false
	lf.Submit(tx, func(*bus.Transaction) { done = true })
	eng.RunUntil(func() bool { return done }, 1000)
	if r.Quarantines != 0 {
		t.Fatal("unguarded master quarantined")
	}
	if r.Quarantined("x") {
		t.Fatal("phantom quarantine")
	}
}

func TestReactorThresholdClamped(t *testing.T) {
	eng, lf, r := reactorRig(t, 0, 0) // clamps to 1
	probe(t, eng, lf, 0x7000_0000)
	if !r.Quarantined("cpu0") {
		t.Fatal("threshold 0 should behave as 1")
	}
}

func TestReactorCountsAlertsFromAnyFirewall(t *testing.T) {
	// Violations detected at a *slave* firewall count against the master
	// and quarantine it at its own (master-side) interface.
	eng := sim.NewEngine(sim.DefaultFrequency)
	b := bus.New(eng, bus.Config{})
	log := core.NewAlertLog()
	ram := mem.NewBRAM("bram", 0x1000_0000, 0x1_0000)
	b.AddSlave(core.NewSlaveFirewall("lf-bram", ram, core.MustConfig(
		core.Policy{SPI: 2, Zone: core.Zone{Base: 0x1000_0000, Size: 0x1_0000}, RWA: core.ReadWrite,
			ADF: core.AnyWidth, Origins: []string{"nobody"}},
	), log))
	lf := core.NewLocalFirewall(eng, "lf-cpu0", b.NewMaster("cpu0"), core.MustConfig(
		core.Policy{SPI: 1, Zone: core.Zone{Base: 0x1000_0000, Size: 0x1_0000}, RWA: core.ReadWrite, ADF: core.AnyWidth},
	), log)
	lf.Owner = "cpu0"
	r := core.NewReactor(log, 1, 0)
	r.Guard("cpu0", lf.Config())
	if got := probe(t, eng, lf, 0x1000_0000); got != bus.RespSecurityErr {
		t.Fatalf("origin-restricted access: %v", got)
	}
	if !r.Quarantined("cpu0") {
		t.Fatal("slave-side alert did not quarantine the master")
	}
}

func TestReactorReleaseNeverQuarantined(t *testing.T) {
	_, _, r := reactorRig(t, 2, 0)
	if err := r.Release("cpu0"); err == nil {
		t.Fatal("releasing a never-quarantined master accepted")
	}
	if err := r.Release("ghost"); err == nil {
		t.Fatal("releasing an unknown master accepted")
	}
}

func TestReactorDoubleRelease(t *testing.T) {
	eng, lf, r := reactorRig(t, 1, 0)
	probe(t, eng, lf, 0x7000_0000)
	if err := r.Release("cpu0"); err != nil {
		t.Fatal(err)
	}
	if err := r.Release("cpu0"); err == nil {
		t.Fatal("double release accepted")
	}
}

func TestReactorReleasePolicyRoundTrip(t *testing.T) {
	eng, lf, r := reactorRig(t, 1, 0)
	before := lf.Config().Policies()
	probe(t, eng, lf, 0x7000_0000)
	if got := lf.Config().RuleCount(); got != 0 {
		t.Fatalf("quarantine left %d rules in the configuration memory", got)
	}
	if err := r.Release("cpu0"); err != nil {
		t.Fatal(err)
	}
	after := lf.Config().Policies()
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("policy round trip differs:\nbefore %+v\nafter  %+v", before, after)
	}
}

func TestReactorStampsQuarantineAndRelease(t *testing.T) {
	eng, lf, r := reactorRig(t, 2, 0)
	r.Clock = eng.Now
	fired := []uint64{}
	r.OnQuarantine = func(master string, cycle uint64) {
		if master != "cpu0" {
			t.Fatalf("OnQuarantine for %q", master)
		}
		fired = append(fired, cycle)
	}
	probe(t, eng, lf, 0x7000_0000)
	probe(t, eng, lf, 0x7000_0000)
	if len(fired) != 1 {
		t.Fatalf("OnQuarantine fired %d times", len(fired))
	}
	eng.Run(100)
	if err := r.Release("cpu0"); err != nil {
		t.Fatal(err)
	}
	st := r.RecoverySnapshot()
	if len(st) != 1 {
		t.Fatalf("%d stamps, want 1", len(st))
	}
	s := st[0]
	if s.Master != "cpu0" || s.QuarantinedAt != fired[0] {
		t.Fatalf("stamp %+v, OnQuarantine at %d", s, fired[0])
	}
	if s.FirstAlert == 0 || s.FirstAlert > s.QuarantinedAt {
		t.Fatalf("first alert %d after quarantine %d", s.FirstAlert, s.QuarantinedAt)
	}
	// probe returns one cycle after the alert fired, so the release lands
	// 100 cycles after that.
	if s.ReleasedAt != s.QuarantinedAt+101 {
		t.Fatalf("released at %d, want %d", s.ReleasedAt, s.QuarantinedAt+101)
	}
	if s.StagedAt != 0 {
		t.Fatalf("one-step release carries a staged stamp: %+v", s)
	}
}

func TestReactorStagedReadmission(t *testing.T) {
	eng, lf, r := reactorRig(t, 1, 0)
	r.Clock = eng.Now
	probe(t, eng, lf, 0x7000_0000)
	if !r.Quarantined("cpu0") {
		t.Fatal("not quarantined")
	}
	// Stage 1: re-admit only the BRAM rule (it is the only saved rule, so
	// admit-by-SPI keeps the test honest about filtering).
	if err := r.ReleaseStaged("cpu0", func(p core.Policy) bool { return p.SPI == 1 }); err != nil {
		t.Fatal(err)
	}
	if !r.Quarantined("cpu0") || !r.Probation("cpu0") {
		t.Fatal("staged release closed the incident")
	}
	if got := probe(t, eng, lf, 0x1000_0000); got != bus.RespOK {
		t.Fatalf("staged rule not restored: %v", got)
	}
	// A violation during probation re-quarantines instantly (threshold 1
	// here, but the point is zero grace even for larger budgets).
	probe(t, eng, lf, 0x7000_0000)
	if !r.Quarantined("cpu0") || r.Probation("cpu0") {
		t.Fatal("probation violation did not re-quarantine")
	}
	if r.Quarantines != 2 {
		t.Fatalf("Quarantines = %d, want 2", r.Quarantines)
	}
	if got := probe(t, eng, lf, 0x1000_0000); got != bus.RespSecurityErr {
		t.Fatalf("re-quarantined master still admitted: %v", got)
	}
	// The whole flap is one continuous incident: one stamp, still open.
	if st := r.RecoverySnapshot(); len(st) != 1 || st[0].ReleasedAt != 0 {
		t.Fatalf("stamps after probation flap: %+v", st)
	}
	// Second staged pass, clean this time, then full release restores the
	// original policy.
	if err := r.ReleaseStaged("cpu0", func(core.Policy) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if err := r.Release("cpu0"); err != nil {
		t.Fatal(err)
	}
	if got := probe(t, eng, lf, 0x1000_0000); got != bus.RespOK {
		t.Fatalf("policy not restored after staged flap: %v", got)
	}
	st := r.RecoverySnapshot()
	if len(st) != 1 || st[0].StagedAt == 0 || st[0].ReleasedAt == 0 {
		t.Fatalf("final stamp: %+v", st)
	}
}

func TestReactorHistoryCapped(t *testing.T) {
	// The violation history must stay bounded however many alerts arrive:
	// pruned to the window on append, and capped at Threshold even when
	// the window is unbounded (Window == 0 was append-only before the
	// cap) or wider than the burst. Synthetic alerts drive the reactor
	// directly; Threshold is raised after the rig quarantines once so the
	// cap — not the quarantine reset — is what bounds retention.
	for _, window := range []uint64{0, 1 << 40} {
		log := core.NewAlertLog()
		cm := core.MustConfig(core.Policy{SPI: 1, Zone: core.Zone{Base: 0, Size: 0x1000}, RWA: core.ReadWrite, ADF: core.AnyWidth})
		r := core.NewReactor(log, 4, window)
		r.Guard("cpu0", cm)
		for i := 0; i < 3; i++ {
			log.Record(core.Alert{Cycle: uint64(i), Master: "cpu0", Violation: core.VZone})
		}
		// Below threshold: retention equals the alerts seen.
		if got := r.HistoryLen("cpu0"); got != 3 {
			t.Fatalf("window=%d: history %d, want 3", window, got)
		}
		// A runtime threshold drop must not let stale extra entries
		// linger: the cap applies on every append.
		r.Threshold = 2
		log.Record(core.Alert{Cycle: 100, Master: "cpu0", Violation: core.VZone})
		if !r.Quarantined("cpu0") {
			t.Fatalf("window=%d: threshold 2 with 4 alerts did not quarantine", window)
		}
		if got := r.HistoryLen("cpu0"); got != 0 {
			t.Fatalf("window=%d: quarantine left %d history entries", window, got)
		}
	}
	// Sliding window: entries older than the window are pruned on append,
	// so a trickle of violations retains one entry, not the full run.
	log := core.NewAlertLog()
	cm := core.MustConfig(core.Policy{SPI: 1, Zone: core.Zone{Base: 0, Size: 0x1000}, RWA: core.ReadWrite, ADF: core.AnyWidth})
	r := core.NewReactor(log, 100, 10)
	r.Guard("cpu0", cm)
	for i := 0; i < 50; i++ {
		log.Record(core.Alert{Cycle: uint64(i) * 20, Master: "cpu0", Violation: core.VZone})
	}
	if got := r.HistoryLen("cpu0"); got != 1 {
		t.Fatalf("sliding window retained %d entries, want 1", got)
	}
}
