package core_test

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
)

// TestLFStampsIssuedOnce: a transfer that traverses two firewalls (e.g. a
// DMA behind a master-side LF submitting through a second guarded path)
// must keep the Issued stamp of the FIRST interface it entered, so
// end-to-end latency attribution spans the whole secured path.
func TestLFStampsIssuedOnce(t *testing.T) {
	eng := sim.NewEngine(sim.DefaultFrequency)
	b := bus.New(eng, bus.Config{})
	b.AddSlave(mem.NewBRAM("bram", 0x1000_0000, 0x1_0000))
	log := core.NewAlertLog()
	allow := core.Policy{SPI: 1, Zone: core.Zone{Base: 0x1000_0000, Size: 0x1_0000},
		RWA: core.ReadWrite, ADF: core.AnyWidth}
	inner := core.NewLocalFirewall(eng, "lf-inner", b.NewMaster("m0"), core.MustConfig(allow), log)
	outer := core.NewLocalFirewall(eng, "lf-outer", inner, core.MustConfig(allow), log)

	eng.Run(9) // non-zero submission cycle so the stamp is observable

	tx := &bus.Transaction{Op: bus.Read, Addr: 0x1000_0000, Size: 4, Burst: 1}
	done := false
	outer.Submit(tx, func(*bus.Transaction) { done = true })
	if _, ok := eng.RunUntil(func() bool { return done }, 100000); !ok {
		t.Fatal("transaction never completed")
	}
	if tx.Issued != 9 {
		t.Fatalf("Issued = %d, want 9 (first firewall's submission cycle)", tx.Issued)
	}
	// End-to-end latency must cover both Security Builder checks.
	if lat := tx.Completed - tx.Issued; lat < 2*core.DefaultCheckCycles {
		t.Fatalf("end-to-end latency %d < two check latencies (%d)", lat, 2*core.DefaultCheckCycles)
	}
}

// TestLFStampsIssuedAtCycleZero: cycle 0 is a valid end-to-end origin.
// Before the StampIssued flag, a transfer entering a firewall at cycle 0
// could not record its origin and was re-stamped CheckCycles later by the
// bus port, silently excluding the Security Builder latency.
func TestLFStampsIssuedAtCycleZero(t *testing.T) {
	eng := sim.NewEngine(sim.DefaultFrequency)
	b := bus.New(eng, bus.Config{})
	b.AddSlave(mem.NewBRAM("bram", 0x1000_0000, 0x1_0000))
	log := core.NewAlertLog()
	allow := core.Policy{SPI: 1, Zone: core.Zone{Base: 0x1000_0000, Size: 0x1_0000},
		RWA: core.ReadWrite, ADF: core.AnyWidth}
	lf := core.NewLocalFirewall(eng, "lf", b.NewMaster("m0"), core.MustConfig(allow), log)

	tx := &bus.Transaction{Op: bus.Read, Addr: 0x1000_0000, Size: 4, Burst: 1}
	done := false
	lf.Submit(tx, func(*bus.Transaction) { done = true }) // at cycle 0
	if _, ok := eng.RunUntil(func() bool { return done }, 100000); !ok {
		t.Fatal("transaction never completed")
	}
	if tx.Issued != 0 {
		t.Fatalf("Issued = %d, want 0 (cycle-0 origin, not the bus-port re-stamp)", tx.Issued)
	}
	if tx.Started < core.DefaultCheckCycles {
		t.Fatalf("Started = %d; transfer reached the bus before the SB check elapsed", tx.Started)
	}
}

// TestLFBlockedLatencyUnchanged: the single-firewall blocked path still
// attributes exactly CheckCycles between submission and local discard.
func TestLFBlockedLatencyUnchanged(t *testing.T) {
	eng := sim.NewEngine(sim.DefaultFrequency)
	b := bus.New(eng, bus.Config{})
	b.AddSlave(mem.NewBRAM("bram", 0x1000_0000, 0x1_0000))
	log := core.NewAlertLog()
	ro := core.Policy{SPI: 2, Zone: core.Zone{Base: 0x1000_0000, Size: 0x1_0000},
		RWA: core.ReadOnly, ADF: core.AnyWidth}
	lf := core.NewLocalFirewall(eng, "lf", b.NewMaster("m0"), core.MustConfig(ro), log)

	eng.Run(5)
	tx := &bus.Transaction{Op: bus.Write, Addr: 0x1000_0000, Size: 4, Burst: 1, Data: []uint32{1}}
	done := false
	lf.Submit(tx, func(*bus.Transaction) { done = true })
	if _, ok := eng.RunUntil(func() bool { return done }, 100000); !ok {
		t.Fatal("transaction never completed")
	}
	if tx.Resp != bus.RespSecurityErr {
		t.Fatalf("resp = %v, want SECURITY_ERR", tx.Resp)
	}
	if lat := tx.Completed - tx.Issued; lat != core.DefaultCheckCycles {
		t.Fatalf("blocked latency = %d, want %d", lat, core.DefaultCheckCycles)
	}
}
