package core_test

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
)

// allocLCF builds a sealed CipherFirewall over a DDR store with the full
// CM+IM policy, bypassing bus and engine so AllocsPerRun sees only the
// firewall's own work.
func allocLCF(t *testing.T) *core.CipherFirewall {
	t.Helper()
	ddr := mem.NewDDR("ddr", ddrBase, ddrSize)
	cm := core.MustConfig(core.Policy{SPI: 1, Zone: core.Zone{Base: secBase, Size: secSize},
		RWA: core.ReadWrite, ADF: core.AnyWidth, CM: true, IM: true, Key: testKey})
	lcf, err := core.NewCipherFirewall(core.LCFConfig{
		IntegrityZone: core.Zone{Base: secBase, Size: secSize}, NodeBase: nodeBase,
	}, ddr, ddr.Store(), cm, core.NewAlertLog())
	if err != nil {
		t.Fatal(err)
	}
	lcf.Seal()
	return lcf
}

// TestSecureReadAllocFree pins 0 allocs/op on the steady-state protected
// read path: SB check + covering DDR fetch + IC verify + CC decrypt.
func TestSecureReadAllocFree(t *testing.T) {
	lcf := allocLCF(t)
	tx := &bus.Transaction{Master: "cpu0", Op: bus.Read, Addr: secBase + 64, Size: 4, Burst: 1,
		Data: make([]uint32, 1)}
	if _, resp := lcf.Access(0, tx); resp != bus.RespOK {
		t.Fatalf("warmup read failed: %v", resp)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, resp := lcf.Access(0, tx); resp != bus.RespOK {
			t.Fatal("read failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("secure read allocates %v per op, want 0", allocs)
	}
}

// TestSecureWriteAllocFree pins 0 allocs/op on the steady-state protected
// write path: read-merge-encrypt-writeback plus the tree update.
func TestSecureWriteAllocFree(t *testing.T) {
	lcf := allocLCF(t)
	tx := &bus.Transaction{Master: "cpu0", Op: bus.Write, Addr: secBase + 128, Size: 4, Burst: 1,
		Data: []uint32{0xDEADBEEF}}
	if _, resp := lcf.Access(0, tx); resp != bus.RespOK {
		t.Fatalf("warmup write failed: %v", resp)
	}
	i := uint32(0)
	allocs := testing.AllocsPerRun(200, func() {
		i++
		tx.Data[0] = i
		if _, resp := lcf.Access(0, tx); resp != bus.RespOK {
			t.Fatal("write failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("secure write allocates %v per op, want 0", allocs)
	}
}

// TestSecureWriteLoopAllocFree pins 0 allocs/op on the *full* secured
// write loop — master port submit, bus arbitration, engine event pump and
// the firewall — i.e. exactly what BenchmarkLCFSecureWrite times per
// iteration. The benchmark's allocs/op column is gated against the
// committed baseline, and this test keeps it honest without running the
// bench: any allocation sneaking into the submit/engine/LCF steady state
// fails here first.
func TestSecureWriteLoopAllocFree(t *testing.T) {
	eng := sim.NewEngine(sim.DefaultFrequency)
	bs := bus.New(eng, bus.Config{})
	ddr := mem.NewDDR("ddr", ddrBase, ddrSize)
	cm := core.MustConfig(core.Policy{SPI: 1, Zone: core.Zone{Base: secBase, Size: secSize},
		RWA: core.ReadWrite, ADF: core.AnyWidth, CM: true, IM: true, Key: testKey})
	lcf, err := core.NewCipherFirewall(core.LCFConfig{
		IntegrityZone: core.Zone{Base: secBase, Size: secSize}, NodeBase: nodeBase,
	}, ddr, ddr.Store(), cm, core.NewAlertLog())
	if err != nil {
		t.Fatal(err)
	}
	lcf.Seal()
	bs.AddSlave(lcf)
	m := bs.NewMaster("cpu0")
	var (
		tx   bus.Transaction
		data [1]uint32
		done bool
	)
	finish := func(*bus.Transaction) { done = true }
	idle := func() bool { return done }
	i := uint32(0)
	write := func() {
		i++
		done = false
		data[0] = i
		tx = bus.Transaction{Op: bus.Write, Addr: secBase + (i%64)*4&^3, Size: 4, Burst: 1,
			Data: data[:1]}
		m.Submit(&tx, finish)
		if _, ok := eng.RunUntil(idle, 1_000_000); !ok {
			t.Fatal("write did not complete")
		}
		if !tx.Resp.OK() {
			t.Fatalf("write failed: %v", tx.Resp)
		}
	}
	// Warm up the bus queue, the engine's event storage and the firewall's
	// covering-transaction pools.
	for n := 0; n < 8; n++ {
		write()
	}
	allocs := testing.AllocsPerRun(200, write)
	if allocs != 0 {
		t.Fatalf("secured write loop allocates %v per op, want 0", allocs)
	}
}

// TestCipherOnlyAccessAllocFree covers the CM-without-IM zone flavour
// (no tree in the loop).
func TestCipherOnlyAccessAllocFree(t *testing.T) {
	ddr := mem.NewDDR("ddr", ddrBase, ddrSize)
	cm := core.MustConfig(core.Policy{SPI: 1, Zone: core.Zone{Base: secBase, Size: secSize},
		RWA: core.ReadWrite, ADF: core.AnyWidth, CM: true, Key: testKey})
	lcf, err := core.NewCipherFirewall(core.LCFConfig{}, ddr, ddr.Store(), cm, core.NewAlertLog())
	if err != nil {
		t.Fatal(err)
	}
	lcf.Seal()
	rd := &bus.Transaction{Master: "cpu0", Op: bus.Read, Addr: secBase, Size: 4, Burst: 4,
		Data: make([]uint32, 4)}
	wr := &bus.Transaction{Master: "cpu0", Op: bus.Write, Addr: secBase, Size: 4, Burst: 4,
		Data: make([]uint32, 4)}
	lcf.Access(0, rd)
	lcf.Access(0, wr)
	allocs := testing.AllocsPerRun(200, func() {
		if _, resp := lcf.Access(0, rd); resp != bus.RespOK {
			t.Fatal("read failed")
		}
		if _, resp := lcf.Access(0, wr); resp != bus.RespOK {
			t.Fatal("write failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("cipher-only access allocates %v per op, want 0", allocs)
	}
}
