package core

import (
	"testing"
	"testing/quick"
)

func TestRWASemantics(t *testing.T) {
	cases := []struct {
		r     RWA
		read  bool
		write bool
	}{
		{Deny, false, false},
		{ReadOnly, true, false},
		{WriteOnly, false, true},
		{ReadWrite, true, true},
	}
	for _, c := range cases {
		if c.r.AllowsRead() != c.read || c.r.AllowsWrite() != c.write {
			t.Errorf("%v: read=%v write=%v", c.r, c.r.AllowsRead(), c.r.AllowsWrite())
		}
	}
}

func TestWidthMask(t *testing.T) {
	if !AnyWidth.Allows(1) || !AnyWidth.Allows(2) || !AnyWidth.Allows(4) {
		t.Fatal("AnyWidth rejects a legal width")
	}
	m := W32
	if m.Allows(1) || m.Allows(2) || !m.Allows(4) {
		t.Fatal("W32 semantics wrong")
	}
	if m.Allows(3) || m.Allows(8) {
		t.Fatal("invalid sizes accepted")
	}
	if (W8|W16).String() != "8/16b" || WidthMask(0).String() != "none" {
		t.Fatalf("String: %q %q", (W8 | W16).String(), WidthMask(0).String())
	}
}

func TestZoneContainsAndOverlaps(t *testing.T) {
	z := Zone{Base: 0x1000, Size: 0x100}
	if !z.Contains(0x1000, 4) || !z.Contains(0x10FC, 4) {
		t.Fatal("Contains rejects in-range access")
	}
	if z.Contains(0xFFC, 4) || z.Contains(0x10FE, 4) {
		t.Fatal("Contains accepts out-of-range access")
	}
	if !z.Overlaps(Zone{Base: 0x10FF, Size: 1}) || z.Overlaps(Zone{Base: 0x1100, Size: 1}) {
		t.Fatal("Overlaps boundary wrong")
	}
}

func TestConfigMemoryZoneViolation(t *testing.T) {
	cm := MustConfig(Policy{SPI: 1, Zone: Zone{0x1000, 0x100}, RWA: ReadWrite, ADF: AnyWidth})
	if _, v := cm.Check("cpu0", false, 0x2000, 4, 1); v != VZone {
		t.Fatalf("unmapped address: %v, want zone", v)
	}
	// Access straddling the zone boundary is a zone violation too.
	if _, v := cm.Check("cpu0", false, 0x10FC, 4, 2); v != VZone {
		t.Fatalf("straddling burst: %v, want zone", v)
	}
}

func TestConfigMemoryRWAViolations(t *testing.T) {
	cm := MustConfig(
		Policy{SPI: 1, Zone: Zone{0x1000, 0x100}, RWA: ReadOnly, ADF: AnyWidth},
		Policy{SPI: 2, Zone: Zone{0x2000, 0x100}, RWA: WriteOnly, ADF: AnyWidth},
	)
	if p, v := cm.Check("cpu0", true, 0x1000, 4, 1); v != VAccess || p.SPI != 1 {
		t.Fatalf("write to RO: %v SPI %d", v, p.SPI)
	}
	if _, v := cm.Check("cpu0", false, 0x1000, 4, 1); v != VNone {
		t.Fatalf("read from RO: %v", v)
	}
	if _, v := cm.Check("cpu0", false, 0x2000, 4, 1); v != VAccess {
		t.Fatalf("read from WO: %v", v)
	}
	if _, v := cm.Check("cpu0", true, 0x2000, 4, 1); v != VNone {
		t.Fatalf("write to WO: %v", v)
	}
}

func TestConfigMemoryADF(t *testing.T) {
	cm := MustConfig(Policy{SPI: 3, Zone: Zone{0, 0x100}, RWA: ReadWrite, ADF: W32})
	if _, v := cm.Check("x", true, 0x10, 1, 1); v != VFormat {
		t.Fatalf("byte into W32 zone: %v, want format", v)
	}
	if _, v := cm.Check("x", true, 0x10, 2, 1); v != VFormat {
		t.Fatalf("half into W32 zone: %v, want format", v)
	}
	if _, v := cm.Check("x", true, 0x10, 4, 1); v != VNone {
		t.Fatalf("word into W32 zone: %v", v)
	}
}

func TestConfigMemoryOrigins(t *testing.T) {
	cm := MustConfig(Policy{
		SPI: 4, Zone: Zone{0, 0x100}, RWA: ReadWrite, ADF: AnyWidth,
		Origins: []string{"cpu0", "dma"},
	})
	if _, v := cm.Check("cpu0", true, 0, 4, 1); v != VNone {
		t.Fatalf("allowed origin rejected: %v", v)
	}
	if _, v := cm.Check("cpu1", true, 0, 4, 1); v != VOrigin {
		t.Fatalf("foreign origin: %v, want origin", v)
	}
}

func TestConfigMemoryMostSpecificWins(t *testing.T) {
	cm := MustConfig(
		Policy{SPI: 10, Zone: Zone{0x0000, 0x1000}, RWA: ReadWrite, ADF: AnyWidth},
		Policy{SPI: 11, Zone: Zone{0x0800, 0x100}, RWA: ReadOnly, ADF: AnyWidth},
	)
	// Inside the small RO window, the specific rule wins.
	if p, v := cm.Check("x", true, 0x0810, 4, 1); v != VAccess || p.SPI != 11 {
		t.Fatalf("specific rule not applied: %v SPI %d", v, p.SPI)
	}
	// Outside it the broad rule allows writes.
	if _, v := cm.Check("x", true, 0x0700, 4, 1); v != VNone {
		t.Fatalf("broad rule: %v", v)
	}
}

func TestConfigMemoryOriginFallthrough(t *testing.T) {
	// A specific rule for dma only, plus a broad rule for everyone:
	// non-dma masters fall through to the broad rule.
	cm := MustConfig(
		Policy{SPI: 20, Zone: Zone{0x100, 0x10}, RWA: ReadWrite, ADF: AnyWidth, Origins: []string{"dma"}},
		Policy{SPI: 21, Zone: Zone{0x000, 0x1000}, RWA: ReadOnly, ADF: AnyWidth},
	)
	if p, v := cm.Check("dma", true, 0x100, 4, 1); v != VNone || p.SPI != 20 {
		t.Fatalf("dma: %v SPI %d", v, p.SPI)
	}
	if p, v := cm.Check("cpu0", false, 0x100, 4, 1); v != VNone || p.SPI != 21 {
		t.Fatalf("cpu0 read: %v SPI %d", v, p.SPI)
	}
	if _, v := cm.Check("cpu0", true, 0x100, 4, 1); v != VAccess {
		t.Fatalf("cpu0 write: %v, want access", v)
	}
}

func TestAddRemoveRules(t *testing.T) {
	cm := MustConfig()
	if cm.RuleCount() != 0 {
		t.Fatal("fresh config not empty")
	}
	if _, v := cm.Check("x", false, 0, 4, 1); v != VZone {
		t.Fatal("empty config must deny")
	}
	if err := cm.Add(Policy{SPI: 1, Zone: Zone{0, 0x100}, RWA: ReadWrite, ADF: AnyWidth}); err != nil {
		t.Fatal(err)
	}
	if _, v := cm.Check("x", false, 0, 4, 1); v != VNone {
		t.Fatal("added rule not effective")
	}
	if n := cm.Remove(1); n != 1 {
		t.Fatalf("Remove = %d, want 1", n)
	}
	if _, v := cm.Check("x", false, 0, 4, 1); v != VZone {
		t.Fatal("removed rule still effective")
	}
}

func TestEmptyZoneRejected(t *testing.T) {
	if _, err := NewConfigMemory(Policy{SPI: 1}); err == nil {
		t.Fatal("empty zone accepted")
	}
}

// Property: granting a wider RWA never turns an allowed access into a
// violation (monotonicity of rights).
func TestPolicyMonotonicityProperty(t *testing.T) {
	prop := func(addrRaw uint16, sizeRaw, burstRaw uint8, isWrite bool) bool {
		size := []int{1, 2, 4}[sizeRaw%3]
		burst := int(burstRaw%4) + 1
		addr := uint32(addrRaw) &^ uint32(size-1)
		weak := MustConfig(Policy{SPI: 1, Zone: Zone{0, 0x20000}, RWA: ReadOnly, ADF: AnyWidth})
		strong := MustConfig(Policy{SPI: 1, Zone: Zone{0, 0x20000}, RWA: ReadWrite, ADF: AnyWidth})
		_, vw := weak.Check("m", isWrite, addr, size, burst)
		_, vs := strong.Check("m", isWrite, addr, size, burst)
		if vw == VNone && vs != VNone {
			return false // widening rights revoked an access
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: a zone rule never authorizes an access outside its zone.
func TestNoAuthorityOutsideZoneProperty(t *testing.T) {
	cm := MustConfig(Policy{SPI: 1, Zone: Zone{0x4000, 0x1000}, RWA: ReadWrite, ADF: AnyWidth})
	prop := func(addr uint32, sizeRaw uint8) bool {
		size := []int{1, 2, 4}[sizeRaw%3]
		addr &^= uint32(size - 1)
		_, v := cm.Check("m", false, addr, size, 1)
		inside := addr >= 0x4000 && uint64(addr)+uint64(size) <= 0x5000
		if inside {
			return v == VNone
		}
		return v != VNone
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestViolationStrings(t *testing.T) {
	for v, want := range map[Violation]string{
		VNone: "none", VZone: "zone", VAccess: "access", VFormat: "format",
		VOrigin: "origin", VIntegrity: "integrity", VReplay: "replay",
	} {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), want)
		}
	}
}
