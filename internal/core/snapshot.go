package core

// Snapshot kinds: one string per enforcement-point flavour, so reports can
// be filtered without knowing the concrete Go type.
const (
	KindMasterLF = "master-lf" // master-side Local Firewall (wraps a bus.Conn)
	KindSlaveLF  = "slave-lf"  // slave-side Local Firewall (guards a bus target)
	KindCipherLF = "cipher-lf" // Local Ciphering Firewall on the external memory
	KindSEM      = "sem"       // centralized Security Enforcement Module
	KindSEI      = "sei"       // per-IP Security Enforcement Interface
)

// Snapshot is the uniform statistics record of one security enforcement
// point, whatever its architecture: a distributed firewall, the centralized
// SEM, or a per-IP SEI. The sweep pipeline serializes these per run, which
// is what makes the paper's distributed-vs-centralized argument visible in
// the data instead of only in aggregate cycle counts.
//
// The first four counters are universal; the remaining fields are populated
// only by the kinds they apply to and omitted from JSON otherwise.
type Snapshot struct {
	// ID is the enforcement point's identifier (the firewall_id in
	// alerts).
	ID string `json:"id"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`

	// Checked/Allowed/Blocked count policy decisions (Allowed = rule hit,
	// Blocked = denial).
	Checked uint64 `json:"checked"`
	Allowed uint64 `json:"allowed"`
	Blocked uint64 `json:"blocked"`
	// CheckCycles is the latency the point added to checked transfers
	// (Security Builder time; for the SEM, serial-checker busy time).
	CheckCycles uint64 `json:"check_cycles"`

	// ProtocolTxns counts extra bus transactions spent on the centralized
	// check protocol (SEI only: two per access).
	ProtocolTxns uint64 `json:"protocol_txns,omitempty"`
	// SEMStallCycles sums cycles verdict reads waited on the serial
	// checker; SEMMaxQueue is the deepest pending-check queue observed
	// (SEM only — the centralized-bottleneck measures).
	SEMStallCycles uint64 `json:"sem_stall_cycles,omitempty"`
	SEMMaxQueue    int    `json:"sem_max_queue,omitempty"`
	// CryptoCycles is CC+IC latency and IntegrityFailures the inauthentic
	// reads detected (cipher firewall only).
	CryptoCycles      uint64 `json:"crypto_cycles,omitempty"`
	IntegrityFailures uint64 `json:"integrity_failures,omitempty"`
}

// Snapshotter is implemented by every enforcement point that can report a
// Snapshot. soc.System gathers these per platform; the sweep pipeline
// embeds them in each RunResult.
type Snapshotter interface {
	StatsSnapshot() Snapshot
}

// snapshot lifts the basic decision counters into a Snapshot.
func (s Stats) snapshot(id, kind string) Snapshot {
	return Snapshot{
		ID:          id,
		Kind:        kind,
		Checked:     s.Checked,
		Allowed:     s.Allowed,
		Blocked:     s.Blocked,
		CheckCycles: s.CheckCyclesSpent,
	}
}

// StatsSnapshot implements Snapshotter.
func (f *LocalFirewall) StatsSnapshot() Snapshot {
	return f.stats.snapshot(f.name, KindMasterLF)
}

// StatsSnapshot implements Snapshotter.
func (f *SlaveFirewall) StatsSnapshot() Snapshot {
	return f.stats.snapshot(f.name, KindSlaveLF)
}

// StatsSnapshot implements Snapshotter.
func (f *CipherFirewall) StatsSnapshot() Snapshot {
	sn := f.stats.snapshot(f.cfg.Name, KindCipherLF)
	sn.CryptoCycles = f.crypto.CCCycles + f.crypto.ICCycles
	sn.IntegrityFailures = f.crypto.IntegrityFailures
	return sn
}
