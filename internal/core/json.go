package core

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
)

// policyJSON is the on-disk form of a security policy. Numbers accept
// JSON's native integers; addresses and keys are hex strings for
// readability:
//
//	{
//	  "spi": 300,
//	  "zone": {"base": "0x40000000", "size": "0x8000"},
//	  "rwa": "rw",
//	  "adf": ["8", "16", "32"],
//	  "origins": ["cpu0"],
//	  "threads": [1, 2],
//	  "cm": true,
//	  "im": true,
//	  "key": "00112233445566778899aabbccddeeff"
//	}
type policyJSON struct {
	SPI     uint32   `json:"spi"`
	Zone    zoneJSON `json:"zone"`
	RWA     string   `json:"rwa"`
	ADF     []string `json:"adf"`
	Origins []string `json:"origins,omitempty"`
	Threads []uint32 `json:"threads,omitempty"`
	CM      bool     `json:"cm,omitempty"`
	IM      bool     `json:"im,omitempty"`
	Key     string   `json:"key,omitempty"`
}

type zoneJSON struct {
	Base hexUint32 `json:"base"`
	Size hexUint32 `json:"size"`
}

// hexUint32 marshals as "0x…" and accepts hex strings or plain numbers.
type hexUint32 uint32

// MarshalJSON implements json.Marshaler.
func (h hexUint32) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", fmt.Sprintf("%#x", uint32(h)))), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (h *hexUint32) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		var v uint64
		if _, err := fmt.Sscanf(strings.ToLower(s), "0x%x", &v); err != nil {
			if _, err := fmt.Sscanf(s, "%d", &v); err != nil {
				return fmt.Errorf("core: bad address %q", s)
			}
		}
		if v > 0xFFFF_FFFF {
			return fmt.Errorf("core: address %q exceeds 32 bits", s)
		}
		*h = hexUint32(v)
		return nil
	}
	var v uint32
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*h = hexUint32(v)
	return nil
}

func rwaToString(r RWA) string { return r.String() }

func rwaFromString(s string) (RWA, error) {
	switch strings.ToLower(s) {
	case "deny":
		return Deny, nil
	case "ro", "r", "read-only":
		return ReadOnly, nil
	case "wo", "w", "write-only":
		return WriteOnly, nil
	case "rw", "read-write", "readwrite":
		return ReadWrite, nil
	default:
		return 0, fmt.Errorf("core: unknown rwa %q", s)
	}
}

func adfToStrings(m WidthMask) []string {
	var out []string
	if m&W8 != 0 {
		out = append(out, "8")
	}
	if m&W16 != 0 {
		out = append(out, "16")
	}
	if m&W32 != 0 {
		out = append(out, "32")
	}
	return out
}

func adfFromStrings(ws []string) (WidthMask, error) {
	var m WidthMask
	for _, w := range ws {
		switch w {
		case "8":
			m |= W8
		case "16":
			m |= W16
		case "32":
			m |= W32
		default:
			return 0, fmt.Errorf("core: unknown width %q (want 8/16/32)", w)
		}
	}
	if m == 0 {
		return 0, fmt.Errorf("core: empty adf")
	}
	return m, nil
}

// PoliciesToJSON serializes a rule set (stable, human-editable form).
func PoliciesToJSON(rules []Policy) ([]byte, error) {
	out := make([]policyJSON, len(rules))
	for i, p := range rules {
		out[i] = policyJSON{
			SPI:     p.SPI,
			Zone:    zoneJSON{hexUint32(p.Zone.Base), hexUint32(p.Zone.Size)},
			RWA:     rwaToString(p.RWA),
			ADF:     adfToStrings(p.ADF),
			Origins: p.Origins,
			Threads: p.Threads,
			CM:      p.CM,
			IM:      p.IM,
		}
		if p.CM {
			out[i].Key = hex.EncodeToString(p.Key[:])
		}
	}
	return json.MarshalIndent(out, "", "  ")
}

// PoliciesFromJSON parses a rule set produced by PoliciesToJSON (or
// written by hand).
func PoliciesFromJSON(data []byte) ([]Policy, error) {
	var in []policyJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("core: %v", err)
	}
	out := make([]Policy, len(in))
	for i, p := range in {
		rwa, err := rwaFromString(p.RWA)
		if err != nil {
			return nil, fmt.Errorf("core: rule %d: %v", i, err)
		}
		adf, err := adfFromStrings(p.ADF)
		if err != nil {
			return nil, fmt.Errorf("core: rule %d: %v", i, err)
		}
		pol := Policy{
			SPI:     p.SPI,
			Zone:    Zone{Base: uint32(p.Zone.Base), Size: uint32(p.Zone.Size)},
			RWA:     rwa,
			ADF:     adf,
			Origins: p.Origins,
			Threads: p.Threads,
			CM:      p.CM,
			IM:      p.IM,
		}
		if p.Key != "" {
			kb, err := hex.DecodeString(p.Key)
			if err != nil || len(kb) != 16 {
				return nil, fmt.Errorf("core: rule %d: bad key (want 32 hex chars)", i)
			}
			copy(pol.Key[:], kb)
		}
		if pol.CM && p.Key == "" {
			return nil, fmt.Errorf("core: rule %d: cm set without a key", i)
		}
		out[i] = pol
	}
	return out, nil
}
