package core_test

import (
	"sort"
	"testing"

	"repro/internal/core"
)

// stagedRig builds a reactor guarding one master with a three-rule policy
// and, unless told otherwise, drives it into quarantine with two direct
// alerts. No bus or engine: the staged-release edge cases are pure
// reactor+ConfigMemory semantics, and the alert log delivers synchronously.
func stagedRig(t *testing.T, quarantine bool) (*core.Reactor, *core.ConfigMemory, *uint64) {
	t.Helper()
	log := core.NewAlertLog()
	cm := core.MustConfig(
		core.Policy{SPI: 1, Zone: core.Zone{Base: 0x1000, Size: 0x100}, RWA: core.ReadWrite, ADF: core.AnyWidth, CM: true, IM: true},
		core.Policy{SPI: 2, Zone: core.Zone{Base: 0x2000, Size: 0x100}, RWA: core.ReadOnly, ADF: core.W32},
		core.Policy{SPI: 3, Zone: core.Zone{Base: 0x3000, Size: 0x100}, RWA: core.WriteOnly, ADF: core.AnyWidth},
	)
	r := core.NewReactor(log, 2, 0)
	cycle := new(uint64)
	r.Clock = func() uint64 { return *cycle }
	r.Guard("cpu0", cm)
	if quarantine {
		log.Record(core.Alert{Cycle: 10, Master: "cpu0", Violation: core.VZone})
		log.Record(core.Alert{Cycle: 20, Master: "cpu0", Violation: core.VZone})
		if !r.Quarantined("cpu0") {
			t.Fatal("rig failed to quarantine")
		}
	}
	return r, cm, cycle
}

// enforcedSPIs returns the SPIs the configuration memory currently
// enforces, sorted.
func enforcedSPIs(cm *core.ConfigMemory) []uint32 {
	var out []uint32
	for _, p := range cm.Policies() {
		out = append(out, p.SPI)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalSPIs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestReleaseStagedEdgeCases drives the staged-re-admission corners the
// modelcheck default model also enumerates: filters that admit nothing,
// filters that match no saved rule, staged release outside an incident,
// and repeated staged releases within one incident.
func TestReleaseStagedEdgeCases(t *testing.T) {
	type stage struct {
		allow    func(core.Policy) bool
		wantErr  bool
		wantSPIs []uint32 // enforced rules after the call
	}
	cases := []struct {
		name       string
		quarantine bool
		stages     []stage
	}{
		{
			// A nil filter is pure probation: nothing restored, but the
			// master is watched with zero tolerance.
			name:       "nil allow admits nothing",
			quarantine: true,
			stages:     []stage{{allow: nil, wantSPIs: nil}},
		},
		{
			// A filter that matches none of the saved rules behaves exactly
			// like nil: empty restore set, probation armed.
			name:       "filter matches no saved rule",
			quarantine: true,
			stages: []stage{{
				allow:    func(p core.Policy) bool { return p.SPI == 99 },
				wantSPIs: nil,
			}},
		},
		{
			// Without an incident there is nothing to stage out of; the
			// reactor must refuse rather than invent probation state.
			name:       "staged release when not quarantined",
			quarantine: false,
			stages: []stage{{
				allow:   func(core.Policy) bool { return true },
				wantErr: true,
			}},
		},
		{
			// A second staged release re-filters from the *saved* set, so a
			// supervisor can widen (or narrow) the stage without releasing:
			// the config memory ends up with exactly the second filter's
			// subset, not the union.
			name:       "double staged release refilters from saved",
			quarantine: true,
			stages: []stage{
				{allow: func(p core.Policy) bool { return p.IM }, wantSPIs: []uint32{1}},
				{allow: func(p core.Policy) bool { return p.SPI >= 2 }, wantSPIs: []uint32{2, 3}},
			},
		},
		{
			name:       "double staged release idempotent under same filter",
			quarantine: true,
			stages: []stage{
				{allow: func(p core.Policy) bool { return p.IM }, wantSPIs: []uint32{1}},
				{allow: func(p core.Policy) bool { return p.IM }, wantSPIs: []uint32{1}},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, cm, cycle := stagedRig(t, tc.quarantine)
			*cycle = 100
			for i, st := range tc.stages {
				*cycle += 10 // distinct stamp per call
				err := r.ReleaseStaged("cpu0", st.allow)
				if st.wantErr {
					if err == nil {
						t.Fatalf("stage %d: expected error", i)
					}
					if r.Probation("cpu0") || r.Quarantined("cpu0") {
						t.Fatalf("stage %d: rejected call left reactor state behind", i)
					}
					continue
				}
				if err != nil {
					t.Fatalf("stage %d: %v", i, err)
				}
				if got := enforcedSPIs(cm); !equalSPIs(got, st.wantSPIs) {
					t.Fatalf("stage %d: enforced SPIs = %v, want %v", i, got, st.wantSPIs)
				}
				if !r.Probation("cpu0") || !r.Quarantined("cpu0") {
					t.Fatalf("stage %d: want probation within an open incident", i)
				}
				// The saved pre-incident policy is untouched by staging: a
				// full Release must still restore all three rules.
				if got := len(r.SavedPolicies("cpu0")); got != 3 {
					t.Fatalf("stage %d: saved policies = %d, want 3", i, got)
				}
				// StagedAt records the *first* staged release of the
				// incident; later re-stages keep the original stamp.
				stamp, _, open := r.OpenIncident("cpu0")
				if !open {
					t.Fatalf("stage %d: incident not open", i)
				}
				if want := uint64(110); stamp.StagedAt != want {
					t.Fatalf("stage %d: StagedAt = %d, want %d", i, stamp.StagedAt, want)
				}
			}
			if !tc.quarantine {
				return
			}
			// Full release always lands on the complete pre-incident policy,
			// regardless of which stages ran before it.
			if err := r.Release("cpu0"); err != nil {
				t.Fatal(err)
			}
			if got := enforcedSPIs(cm); !equalSPIs(got, []uint32{1, 2, 3}) {
				t.Fatalf("after Release: enforced SPIs = %v, want [1 2 3]", got)
			}
			if r.Probation("cpu0") || r.Quarantined("cpu0") {
				t.Fatal("Release left probation/quarantine state behind")
			}
		})
	}
}
