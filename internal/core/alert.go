package core

import (
	"fmt"

	"repro/internal/bus"
)

// accessOf lifts a bus transaction into a policy-evaluation Access.
func accessOf(tx *bus.Transaction) Access {
	return Access{
		Master: tx.Master,
		Thread: tx.Thread,
		Write:  tx.Op == bus.Write,
		Addr:   tx.Addr,
		Size:   tx.Size,
		Burst:  tx.Burst,
	}
}

// Alert is the structured form of the firewall_id / alert_signals /
// check_results wiring of Figure 1: one record per discarded transfer.
type Alert struct {
	// Cycle is when the violation was detected.
	Cycle uint64
	// FirewallID names the interface that raised the alert.
	FirewallID string
	// Master is the IP whose transfer was discarded.
	Master string
	// Thread is the software context the transfer carried.
	Thread uint32
	// SPI identifies the matched policy (0 when no rule matched).
	SPI uint32
	// Violation classifies the check that failed.
	Violation Violation
	// Op, Addr, Size describe the offending transfer.
	Op   bus.Op
	Addr uint32
	Size int
	// Detail carries module-specific context (e.g. the Integrity Core's
	// classification of a mismatch).
	Detail string
}

// String implements fmt.Stringer.
func (a Alert) String() string {
	s := fmt.Sprintf("cycle %d: %s blocked %s %s @%#x/%dB (%s",
		a.Cycle, a.FirewallID, a.Master, a.Op, a.Addr, a.Size, a.Violation)
	if a.Detail != "" {
		s += ": " + a.Detail
	}
	return s + ")"
}

// AlertLog collects alerts from every firewall in a platform. The
// simulation is single-threaded, so no locking is needed.
type AlertLog struct {
	alerts []Alert
	subs   []func(Alert)
}

// NewAlertLog returns an empty log.
func NewAlertLog() *AlertLog { return &AlertLog{} }

// Record appends an alert and notifies subscribers (reaction logic such as
// the quarantine Reactor).
func (l *AlertLog) Record(a Alert) {
	l.alerts = append(l.alerts, a)
	for _, fn := range l.subs {
		fn(a)
	}
}

// Subscribe registers fn to run on every future alert, in subscription
// order, synchronously at detection time.
func (l *AlertLog) Subscribe(fn func(Alert)) {
	if fn == nil {
		panic("core: Subscribe(nil)")
	}
	l.subs = append(l.subs, fn)
}

// All returns the alerts in detection order.
func (l *AlertLog) All() []Alert { return append([]Alert(nil), l.alerts...) }

// Len returns the number of alerts.
func (l *AlertLog) Len() int { return len(l.alerts) }

// Reset clears the log.
func (l *AlertLog) Reset() { l.alerts = l.alerts[:0] }

// CountByViolation aggregates alert counts per violation class.
func (l *AlertLog) CountByViolation() map[Violation]int {
	m := make(map[Violation]int)
	for _, a := range l.alerts {
		m[a.Violation]++
	}
	return m
}

// CountByFirewall aggregates alert counts per raising interface.
func (l *AlertLog) CountByFirewall() map[string]int {
	m := make(map[string]int)
	for _, a := range l.alerts {
		m[a.FirewallID]++
	}
	return m
}

// First returns the earliest alert matching the filter (nil filter = any),
// or nil.
func (l *AlertLog) First(match func(Alert) bool) *Alert {
	for i := range l.alerts {
		if match == nil || match(l.alerts[i]) {
			return &l.alerts[i]
		}
	}
	return nil
}

// Since returns alerts detected at or after the given cycle.
func (l *AlertLog) Since(cycle uint64) []Alert {
	var out []Alert
	for _, a := range l.alerts {
		if a.Cycle >= cycle {
			out = append(out, a)
		}
	}
	return out
}
