package core_test

import (
	"bytes"
	"testing"

	"repro/internal/bus"
)

var newKey = [16]byte{0xA0, 0xA1, 0xA2, 0xA3, 0xA4, 0xA5, 0xA6, 0xA7, 0xA8, 0xA9, 0xAA, 0xAB, 0xAC, 0xAD, 0xAE, 0xAF}

func TestRotateKeyPreservesData(t *testing.T) {
	eng, m, lcf, ddr, log := lcfRig(t)
	run(t, eng, m, &bus.Transaction{Op: bus.Write, Addr: secBase + 0x40, Size: 4, Burst: 1, Data: []uint32{0xC0DE}})
	before := ddr.Store().Peek(secBase+0x40, 16)

	if err := lcf.RotateKey(1, newKey); err != nil {
		t.Fatal(err)
	}
	after := ddr.Store().Peek(secBase+0x40, 16)
	if bytes.Equal(before, after) {
		t.Fatal("ciphertext unchanged after rotation")
	}
	rd := run(t, eng, m, &bus.Transaction{Op: bus.Read, Addr: secBase + 0x40, Size: 4, Burst: 1})
	if !rd.Resp.OK() || rd.Data[0] != 0xC0DE {
		t.Fatalf("data lost in rotation: %v %#x", rd.Resp, rd.Data[0])
	}
	wr := run(t, eng, m, &bus.Transaction{Op: bus.Write, Addr: secBase + 0x44, Size: 4, Burst: 1, Data: []uint32{0xFEED}})
	if !wr.Resp.OK() {
		t.Fatalf("write after rotation: %v", wr.Resp)
	}
	if log.Len() != 0 {
		t.Fatalf("rotation raised alerts: %v", log.All())
	}
	if lcf.Crypto().KeyRotations != 1 {
		t.Fatalf("KeyRotations = %d", lcf.Crypto().KeyRotations)
	}
}

func TestRotateKeyIntegrityStillHolds(t *testing.T) {
	eng, m, lcf, ddr, _ := lcfRig(t)
	run(t, eng, m, &bus.Transaction{Op: bus.Write, Addr: secBase, Size: 4, Burst: 1, Data: []uint32{7}})
	if err := lcf.RotateKey(1, newKey); err != nil {
		t.Fatal(err)
	}
	// Tamper after rotation must still be caught.
	raw := ddr.Store().Peek(secBase, 1)
	ddr.Store().Poke(secBase, []byte{raw[0] ^ 4})
	rd := run(t, eng, m, &bus.Transaction{Op: bus.Read, Addr: secBase, Size: 4, Burst: 1})
	if rd.Resp != bus.RespSecurityErr {
		t.Fatalf("post-rotation tamper missed: %v", rd.Resp)
	}
}

func TestRotateKeyOldKeyNoLongerWorks(t *testing.T) {
	eng, m, lcf, ddr, _ := lcfRig(t)
	run(t, eng, m, &bus.Transaction{Op: bus.Write, Addr: secBase + 0x80, Size: 4, Burst: 1, Data: []uint32{0x01D}})
	oldCipher := ddr.Store().Peek(secBase+0x80, 16)
	if err := lcf.RotateKey(1, newKey); err != nil {
		t.Fatal(err)
	}
	// An attacker replaying ciphertext captured under the old key fails
	// integrity (and would decrypt to garbage anyway).
	ddr.Store().Poke(secBase+0x80, oldCipher)
	rd := run(t, eng, m, &bus.Transaction{Op: bus.Read, Addr: secBase + 0x80, Size: 4, Burst: 1})
	if rd.Resp != bus.RespSecurityErr {
		t.Fatalf("old-key ciphertext accepted after rotation: %v", rd.Resp)
	}
}

func TestRotateKeyValidation(t *testing.T) {
	_, _, lcf, _, _ := lcfRig(t)
	if err := lcf.RotateKey(99, newKey); err == nil {
		t.Fatal("unknown SPI accepted")
	}
	if err := lcf.RotateKey(2, newKey); err == nil {
		t.Fatal("rotation of a non-CM zone accepted")
	}
	if err := lcf.RotateKey(1, testKey); err == nil {
		t.Fatal("rotation to the identical key accepted")
	}
}
