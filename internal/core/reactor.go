package core

import "fmt"

// Reactor implements the paper's stated future work: "reconfiguration of
// security services (i.e. modification of security policies) to counter
// some attacks". It watches the alert stream and, when one IP accumulates
// violations faster than a budget allows, rewrites that IP's security
// policy to deny everything — quarantining the compromised IP inside its
// own interface, including zones it was previously allowed to touch (a
// hijacked IP's *legal* traffic is exfiltration surface too).
//
// Quarantine is reversible: Release restores the saved policy, modeling a
// supervisor clearing the incident.
type Reactor struct {
	// Threshold is the number of violations within Window that triggers
	// quarantine.
	Threshold int
	// Window is the sliding time window in cycles. Zero means "ever".
	Window uint64

	guarded map[string]*ConfigMemory
	history map[string][]uint64 // violation cycles per master
	saved   map[string][]Policy // policies stashed at quarantine time

	// Quarantines counts trigger events (for reports).
	Quarantines uint64
}

// NewReactor subscribes a reactor to the alert log. Call Guard to place
// firewalls under its control.
func NewReactor(log *AlertLog, threshold int, window uint64) *Reactor {
	if threshold < 1 {
		threshold = 1
	}
	r := &Reactor{
		Threshold: threshold,
		Window:    window,
		guarded:   make(map[string]*ConfigMemory),
		history:   make(map[string][]uint64),
		saved:     make(map[string][]Policy),
	}
	log.Subscribe(r.onAlert)
	return r
}

// Guard registers the configuration memory enforcing policy for the given
// master (its master-side Local Firewall). Alerts raised *about* that
// master anywhere in the system count toward its violation budget; the
// quarantine is applied at the source interface.
func (r *Reactor) Guard(master string, cm *ConfigMemory) {
	r.guarded[master] = cm
}

// Quarantined reports whether the master is currently locked out.
func (r *Reactor) Quarantined(master string) bool {
	_, q := r.saved[master]
	return q
}

// Release restores the master's pre-quarantine policy. It returns an error
// if the master is not quarantined.
func (r *Reactor) Release(master string) error {
	rules, ok := r.saved[master]
	if !ok {
		return fmt.Errorf("core: %q is not quarantined", master)
	}
	cm := r.guarded[master]
	for _, p := range cm.Policies() {
		cm.Remove(p.SPI)
	}
	for _, p := range rules {
		if err := cm.Add(p); err != nil {
			return err
		}
	}
	delete(r.saved, master)
	r.history[master] = nil
	return nil
}

func (r *Reactor) onAlert(a Alert) {
	cm, guarded := r.guarded[a.Master]
	if !guarded || r.Quarantined(a.Master) {
		return
	}
	h := append(r.history[a.Master], a.Cycle)
	// Slide the window.
	if r.Window > 0 {
		cut := 0
		for cut < len(h) && h[cut]+r.Window < a.Cycle {
			cut++
		}
		h = h[cut:]
	}
	r.history[a.Master] = h
	if len(h) < r.Threshold {
		return
	}
	// Quarantine: stash the policy and deny everything (the Configuration
	// Memory default-denies whatever no rule allows).
	r.saved[a.Master] = cm.Policies()
	for _, p := range cm.Policies() {
		cm.Remove(p.SPI)
	}
	r.Quarantines++
}
