package core

import (
	"fmt"
	"sort"
)

// Reactor implements the paper's stated future work: "reconfiguration of
// security services (i.e. modification of security policies) to counter
// some attacks". It watches the alert stream and, when one IP accumulates
// violations faster than a budget allows, rewrites that IP's security
// policy to deny everything — quarantining the compromised IP inside its
// own interface, including zones it was previously allowed to touch (a
// hijacked IP's *legal* traffic is exfiltration surface too).
//
// Quarantine is reversible, in one step or two. Release restores the full
// saved policy, modeling a supervisor clearing the incident. ReleaseStaged
// models cautious re-admission: only a supervisor-chosen subset of the
// saved rules (canonically the integrity-monitored memory zones, where any
// misbehaviour is provable) is restored, and the master enters probation —
// a single further violation re-quarantines it immediately, with no
// threshold grace.
//
// Every transition is stamped with its cycle (QuarantineStamp), so the
// incident-lifecycle engine in internal/recovery can price time-to-
// quarantine, quarantine duration and time-to-recovery without scraping
// the alert log.
type Reactor struct {
	// Threshold is the number of violations within Window that triggers
	// quarantine.
	Threshold int
	// Window is the sliding time window in cycles. Zero means "ever".
	Window uint64

	// Clock, when set, supplies the current cycle for Release stamps
	// (quarantine stamps come from the triggering alert itself).
	// soc.New wires it to the engine clock.
	Clock func() uint64
	// OnQuarantine, when set, runs synchronously after a master's policy
	// has been rewritten to deny-all — both on a threshold trip and on a
	// probation violation. The supervisor model in internal/recovery uses
	// it to schedule the release.
	OnQuarantine func(master string, cycle uint64)

	// observers receive every lifecycle transition (OnEvent). Unlike the
	// single OnQuarantine slot — owned by the recovery supervisor — this
	// is a multicast hook, so tracing can watch the reactor without
	// displacing the control loop.
	observers []func(ReactorEvent)

	guarded   map[string]*ConfigMemory
	history   map[string][]uint64 // violation cycles per master, capped at Threshold
	saved     map[string][]Policy // policies stashed at quarantine time
	probation map[string]bool     // staged re-admission in progress
	open      map[string]int      // index into stamps of the unresolved incident

	stamps []QuarantineStamp

	// Quarantines counts trigger events, including probation
	// re-quarantines (for reports).
	Quarantines uint64
}

// QuarantineStamp records the cycle boundaries of one quarantine incident
// — one continuous Quarantined() span. A probation re-quarantine belongs
// to the same incident (the stamp keeps the original FirstAlert and
// QuarantinedAt; StagedAt resets until a staged release sticks); only a
// fresh quarantine after a full release opens a new stamp.
type QuarantineStamp struct {
	// Master is the quarantined IP.
	Master string `json:"master"`
	// FirstAlert is the earliest violation cycle in the window that
	// tripped the threshold.
	FirstAlert uint64 `json:"first_alert"`
	// QuarantinedAt is the cycle the deny-all policy was written.
	QuarantinedAt uint64 `json:"quarantined_at"`
	// StagedAt is the cycle a partial (staged) restore began; zero when
	// the incident was released in one step.
	StagedAt uint64 `json:"staged_at,omitempty"`
	// ReleasedAt is the cycle the full policy was restored; zero while the
	// master is still quarantined (or on probation).
	ReleasedAt uint64 `json:"released_at,omitempty"`
}

// ReactorEvent is one lifecycle transition, delivered synchronously to
// OnEvent observers at the cycle it happens.
type ReactorEvent struct {
	// Kind is the transition: "quarantine" (threshold trip),
	// "requarantine" (probation violation), "staged-release" (partial
	// restore, probation begins) or "release" (full restore, incident
	// closed).
	Kind string
	// Master is the IP the transition concerns.
	Master string
	// Cycle is when it happened (the triggering alert's cycle for the
	// quarantine kinds, the reactor clock for the release kinds).
	Cycle uint64
}

// Reactor lifecycle transition kinds (ReactorEvent.Kind).
const (
	EventQuarantine    = "quarantine"
	EventRequarantine  = "requarantine"
	EventStagedRelease = "staged-release"
	EventRelease       = "release"
)

// OnEvent registers an observer for every lifecycle transition. Observers
// run synchronously in registration order, after the transition's policy
// rewrite (and after OnQuarantine for the quarantine kinds).
func (r *Reactor) OnEvent(fn func(ReactorEvent)) {
	if fn == nil {
		panic("core: OnEvent(nil)")
	}
	r.observers = append(r.observers, fn)
}

// notify fans a transition out to the observers.
func (r *Reactor) notify(kind, master string, cycle uint64) {
	for _, fn := range r.observers {
		fn(ReactorEvent{Kind: kind, Master: master, Cycle: cycle})
	}
}

// NewReactor subscribes a reactor to the alert log. Call Guard to place
// firewalls under its control.
func NewReactor(log *AlertLog, threshold int, window uint64) *Reactor {
	if threshold < 1 {
		threshold = 1
	}
	r := &Reactor{
		Threshold: threshold,
		Window:    window,
		guarded:   make(map[string]*ConfigMemory),
		history:   make(map[string][]uint64),
		saved:     make(map[string][]Policy),
		probation: make(map[string]bool),
		open:      make(map[string]int),
	}
	log.Subscribe(r.onAlert)
	return r
}

// Guard registers the configuration memory enforcing policy for the given
// master (its master-side Local Firewall). Alerts raised *about* that
// master anywhere in the system count toward its violation budget; the
// quarantine is applied at the source interface.
func (r *Reactor) Guard(master string, cm *ConfigMemory) {
	r.guarded[master] = cm
}

// Quarantined reports whether the master is currently locked out (fully,
// or partially re-admitted on probation).
func (r *Reactor) Quarantined(master string) bool {
	_, q := r.saved[master]
	return q
}

// Probation reports whether the master is in staged re-admission: part of
// its policy restored, zero tolerance for further violations.
func (r *Reactor) Probation(master string) bool { return r.probation[master] }

// HistoryLen reports how many violation cycles are currently retained for
// the master. The reactor prunes on append and caps retention at
// Threshold, so this never exceeds the trigger budget — the introspection
// hook for the no-unbounded-growth invariant.
func (r *Reactor) HistoryLen(master string) int { return len(r.history[master]) }

// RecoverySnapshot returns the quarantine/release cycle stamps of every
// incident so far, in trigger order.
func (r *Reactor) RecoverySnapshot() []QuarantineStamp {
	return append([]QuarantineStamp(nil), r.stamps...)
}

// SavedPolicies returns a copy of the rules stashed when the master was
// quarantined — what Release will restore — or nil when the master is not
// quarantined. Introspection hook for internal/modelcheck: the checker
// compares the live Configuration Memory against this set to prove that
// staged re-admission never restores more than the supervisor allowed and
// that a full Release restores exactly the pre-incident policy.
func (r *Reactor) SavedPolicies(master string) []Policy {
	rules, ok := r.saved[master]
	if !ok {
		return nil
	}
	return append([]Policy(nil), rules...)
}

// OpenIncident returns the stamp of the master's unresolved incident (the
// one a probation violation re-quarantines into) and whether one is open.
// Introspection hook for internal/modelcheck: invariant (c) — a staged
// master that violates is re-quarantined within the *same* incident —
// is checked by asserting the open stamp index does not change across the
// violation.
func (r *Reactor) OpenIncident(master string) (stamp QuarantineStamp, index int, ok bool) {
	i, ok := r.open[master]
	if !ok {
		return QuarantineStamp{}, -1, false
	}
	return r.stamps[i], i, true
}

// GuardedMasters returns the guarded master names in sorted order.
// Introspection hook for internal/modelcheck's state enumeration.
func (r *Reactor) GuardedMasters() []string {
	names := make([]string, 0, len(r.guarded))
	for m := range r.guarded {
		names = append(names, m)
	}
	sort.Strings(names)
	return names
}

func (r *Reactor) now() uint64 {
	if r.Clock != nil {
		return r.Clock()
	}
	return 0
}

// Release restores the master's full pre-quarantine policy and closes the
// incident. It returns an error if the master is not quarantined.
func (r *Reactor) Release(master string) error {
	rules, ok := r.saved[master]
	if !ok {
		return fmt.Errorf("core: %q is not quarantined", master)
	}
	cm := r.guarded[master]
	for _, p := range cm.Policies() {
		cm.Remove(p.SPI)
	}
	for _, p := range rules {
		if err := cm.Add(p); err != nil {
			return err
		}
	}
	delete(r.saved, master)
	delete(r.probation, master)
	r.history[master] = nil
	if i, ok := r.open[master]; ok {
		r.stamps[i].ReleasedAt = r.now()
		delete(r.open, master)
	}
	r.notify(EventRelease, master, r.now())
	return nil
}

// ReleaseStaged begins staged re-admission: every saved rule admitted by
// allow is restored, the rest stay revoked, and the master enters
// probation — its next violation re-quarantines it immediately. The
// incident stays open (Quarantined remains true) until Release restores
// the full policy. A nil allow admits nothing (pure probation).
func (r *Reactor) ReleaseStaged(master string, allow func(Policy) bool) error {
	rules, ok := r.saved[master]
	if !ok {
		return fmt.Errorf("core: %q is not quarantined", master)
	}
	cm := r.guarded[master]
	for _, p := range cm.Policies() {
		cm.Remove(p.SPI)
	}
	for _, p := range rules {
		if allow != nil && allow(p) {
			if err := cm.Add(p); err != nil {
				return err
			}
		}
	}
	r.probation[master] = true
	if i, ok := r.open[master]; ok && r.stamps[i].StagedAt == 0 {
		r.stamps[i].StagedAt = r.now()
	}
	r.notify(EventStagedRelease, master, r.now())
	return nil
}

// quarantine rewrites the master's policy to deny-all, stamps the
// incident, and notifies OnQuarantine. firstAlert is the earliest
// violation cycle attributed to the incident.
func (r *Reactor) quarantine(master string, cm *ConfigMemory, firstAlert, cycle uint64) {
	if _, open := r.open[master]; !open {
		// Re-quarantine from probation keeps the original saved rules: the
		// configuration memory currently holds only the partial stage-1
		// set, and the pre-incident policy is what Release must restore.
		if _, ok := r.saved[master]; !ok {
			r.saved[master] = cm.Policies()
		}
		r.open[master] = len(r.stamps)
		r.stamps = append(r.stamps, QuarantineStamp{
			Master:        master,
			FirstAlert:    firstAlert,
			QuarantinedAt: cycle,
		})
	}
	for _, p := range cm.Policies() {
		cm.Remove(p.SPI)
	}
	r.history[master] = nil
	r.Quarantines++
	if r.OnQuarantine != nil {
		r.OnQuarantine(master, cycle)
	}
	r.notify(EventQuarantine, master, cycle)
}

func (r *Reactor) onAlert(a Alert) {
	cm, guarded := r.guarded[a.Master]
	if !guarded {
		return
	}
	if r.probation[a.Master] {
		// Zero tolerance during staged re-admission: one violation slams
		// the door again. The incident — the saved policies and the open
		// stamp spanning the continuous Quarantined() interval — is the
		// same one, but it counts as a fresh trigger and renotifies the
		// supervisor. StagedAt resets; a later successful staged release
		// restamps it.
		delete(r.probation, a.Master)
		if i, ok := r.open[a.Master]; ok {
			r.stamps[i].StagedAt = 0
		}
		for _, p := range cm.Policies() {
			cm.Remove(p.SPI)
		}
		r.Quarantines++
		if r.OnQuarantine != nil {
			r.OnQuarantine(a.Master, a.Cycle)
		}
		r.notify(EventRequarantine, a.Master, a.Cycle)
		return
	}
	if r.Quarantined(a.Master) {
		return
	}
	h := append(r.history[a.Master], a.Cycle)
	// Slide the window.
	if r.Window > 0 {
		cut := 0
		for cut < len(h) && h[cut]+r.Window < a.Cycle {
			cut++
		}
		h = h[cut:]
	}
	// Cap retained entries: only the Threshold most recent violations can
	// ever matter to the trigger decision, so the history never grows
	// beyond that — regardless of window size or alert rate.
	if len(h) > r.Threshold {
		h = h[len(h)-r.Threshold:]
	}
	r.history[a.Master] = h
	if len(h) < r.Threshold {
		return
	}
	// Quarantine: stash the policy and deny everything (the Configuration
	// Memory default-denies whatever no rule allows).
	r.quarantine(a.Master, cm, h[0], a.Cycle)
}
