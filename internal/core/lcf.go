package core

import (
	"fmt"

	"repro/internal/aes"
	"repro/internal/bus"
	"repro/internal/hashtree"
	"repro/internal/mem"
)

// CipherBlock is the granularity of the Confidentiality Core (AES-128).
const CipherBlock = aes.BlockSize

// CryptoStats counts Local Ciphering Firewall activity beyond the basic
// firewall decisions.
type CryptoStats struct {
	// BlocksEnciphered / BlocksDeciphered count 16-byte CC operations.
	BlocksEnciphered uint64
	BlocksDeciphered uint64
	// LeafVerifies / LeafUpdates count IC leaf operations; NodeOps counts
	// the underlying hash-node computations.
	LeafVerifies uint64
	LeafUpdates  uint64
	NodeOps      uint64
	// IntegrityFailures counts inauthentic reads detected.
	IntegrityFailures uint64
	// CCCycles / ICCycles accumulate modeled crypto latency.
	CCCycles uint64
	ICCycles uint64
	// KeyRotations counts RotateKey management operations.
	KeyRotations uint64
}

// LCFConfig parameterizes a CipherFirewall.
type LCFConfig struct {
	// Name is the firewall_id used in alerts (default "lcf").
	Name string
	// CheckCycles is the SB rule-check latency (default 12, Table II).
	CheckCycles uint64
	// CC is the Confidentiality Core timing (default 11/28, Table II).
	CC aes.Timing
	// IC is the Integrity Core timing (default 20/98, Table II).
	IC aes.Timing
	// IntegrityZone is the region covered by the hash tree. Policies
	// with IM set must lie inside it. Size must satisfy the hashtree
	// power-of-two constraint.
	IntegrityZone Zone
	// NodeBase locates the tree-node array in external memory; it must
	// not overlap IntegrityZone (and should be left out of every policy
	// zone so no IP can address it).
	NodeBase uint32
	// CacheSize is the on-chip verified-node cache size. Zero selects the
	// default (64); a negative value disables the cache entirely, forcing
	// every integrity operation to walk the full path to the root.
	CacheSize int
}

// CipherFirewall is the Local Ciphering Firewall of Figure 1: the secure
// gateway between the system bus and the external memory. It layers the
// standard rule check (Security Builder), the Confidentiality Core
// (address-tweaked AES-128 over 16-byte blocks) and the Integrity Core
// (hash tree + on-chip version tags) over the raw DDR slave.
type CipherFirewall struct {
	cfg   LCFConfig
	inner bus.Slave
	store *mem.Store
	cm    *ConfigMemory
	log   *AlertLog
	tree  *hashtree.Tree

	// Per-key expanded schedules, linear-scanned: a platform has a
	// handful of keys (one per CM zone), so comparing [16]byte values
	// beats hashing the key on every protected access.
	cipherKeys [][16]byte
	cipherVals []*aes.Cipher

	// Pooled per-access state: the covering DDR transaction, its word
	// buffer and the plaintext scratch buffer are reused across Access
	// calls (the engine drives one access at a time per platform), so the
	// steady-state protected path allocates nothing.
	covTx    bus.Transaction
	covWords []uint32
	covBuf   []byte

	stats  Stats
	crypto CryptoStats
}

// NewCipherFirewall wraps the external memory slave. The store must be the
// slave's backing store (used for in-place crypto); policies come from cm.
func NewCipherFirewall(cfg LCFConfig, inner bus.Slave, store *mem.Store, cm *ConfigMemory, log *AlertLog) (*CipherFirewall, error) {
	if cfg.Name == "" {
		cfg.Name = "lcf"
	}
	if cfg.CheckCycles == 0 {
		cfg.CheckCycles = DefaultCheckCycles
	}
	if cfg.CC == (aes.Timing{}) {
		cfg.CC = aes.DefaultTiming
	}
	if cfg.IC == (aes.Timing{}) {
		cfg.IC = hashtree.DefaultTiming
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 64
	} else if cfg.CacheSize < 0 {
		cfg.CacheSize = 0
	}
	f := &CipherFirewall{
		cfg:   cfg,
		inner: inner,
		store: store,
		cm:    cm,
		log:   log,
	}
	// Validate policy crypto expectations.
	for _, p := range cm.Policies() {
		if p.IM && cfg.IntegrityZone.Size == 0 {
			return nil, fmt.Errorf("core: policy SPI %d requests IM but no IntegrityZone configured", p.SPI)
		}
		if p.IM && !cfg.IntegrityZone.Contains(p.Zone.Base, p.Zone.Size) {
			return nil, fmt.Errorf("core: policy SPI %d zone %v outside IntegrityZone %v", p.SPI, p.Zone, cfg.IntegrityZone)
		}
		if p.CM && p.Zone.Base%CipherBlock != 0 {
			return nil, fmt.Errorf("core: CM zone %v not %d-byte aligned", p.Zone, CipherBlock)
		}
		if p.CM && p.Zone.Size%CipherBlock != 0 {
			return nil, fmt.Errorf("core: CM zone %v size not a multiple of %d", p.Zone, CipherBlock)
		}
	}
	if cfg.IntegrityZone.Size != 0 {
		tree, err := hashtree.New(hashtree.Config{
			Store:     store,
			DataBase:  cfg.IntegrityZone.Base,
			DataSize:  cfg.IntegrityZone.Size,
			NodeBase:  cfg.NodeBase,
			CacheSize: cfg.CacheSize,
		})
		if err != nil {
			return nil, err
		}
		f.tree = tree
	}
	return f, nil
}

// Name implements bus.Slave.
func (f *CipherFirewall) Name() string { return f.inner.Name() }

// FirewallID returns the identifier used in alerts.
func (f *CipherFirewall) FirewallID() string { return f.cfg.Name }

// Base implements bus.Slave.
func (f *CipherFirewall) Base() uint32 { return f.inner.Base() }

// Size implements bus.Slave.
func (f *CipherFirewall) Size() uint32 { return f.inner.Size() }

// Config exposes the Configuration Memory.
func (f *CipherFirewall) Config() *ConfigMemory { return f.cm }

// Stats returns the firewall decision counters.
func (f *CipherFirewall) Stats() Stats { return f.stats }

// Crypto returns the CC/IC counters.
func (f *CipherFirewall) Crypto() CryptoStats { return f.crypto }

// Tree exposes the integrity engine (tests and the area model use it).
func (f *CipherFirewall) Tree() *hashtree.Tree { return f.tree }

func (f *CipherFirewall) cipherFor(key [16]byte) *aes.Cipher {
	for i, k := range f.cipherKeys {
		if k == key {
			return f.cipherVals[i]
		}
	}
	c := aes.MustNew(key[:])
	f.cipherKeys = append(f.cipherKeys, key)
	f.cipherVals = append(f.cipherVals, c)
	return c
}

// scratch returns the pooled plaintext buffer and word buffer sized for
// nBytes (nBytes is a multiple of CipherBlock, hence of 4).
func (f *CipherFirewall) scratch(nBytes int) ([]byte, []uint32) {
	if cap(f.covBuf) < nBytes {
		f.covBuf = make([]byte, nBytes)
		f.covWords = make([]uint32, nBytes/4)
	}
	return f.covBuf[:nBytes], f.covWords[:nBytes/4]
}

// Seal prepares the external memory for protected operation: every CM
// zone's current contents (assumed plaintext, e.g. a loaded program image)
// is encrypted in place, then the hash tree is built over the integrity
// zone. Call once at boot, after loaders have filled external memory.
func (f *CipherFirewall) Seal() {
	for _, p := range f.cm.Policies() {
		if !p.CM {
			continue
		}
		c := f.cipherFor(p.Key)
		for a := p.Zone.Base; a < p.Zone.Base+p.Zone.Size; a += CipherBlock {
			blk := f.store.Peek(a, CipherBlock)
			f.encryptBlock(c, a, blk)
			f.store.Poke(a, blk)
		}
	}
	if f.tree != nil {
		f.tree.Build()
	}
}

// RotateKey re-encrypts the confidentiality zone of the policy identified
// by spi under a new key and installs the key in the Configuration Memory
// — the key-management half of the paper's "reconfiguration of security
// services". The integrity tree is rebuilt afterwards because every
// ciphertext in the zone changed. The operation is atomic with respect to
// the simulation (no bus traffic interleaves with a synchronous call).
func (f *CipherFirewall) RotateKey(spi uint32, newKey [16]byte) error {
	var target *Policy
	for _, p := range f.cm.Policies() {
		if p.SPI == spi {
			p := p
			target = &p
			break
		}
	}
	if target == nil {
		return fmt.Errorf("core: no policy with SPI %d", spi)
	}
	if !target.CM {
		return fmt.Errorf("core: policy SPI %d has no confidentiality mode to rotate", spi)
	}
	if target.Key == newKey {
		return fmt.Errorf("core: SPI %d rotation to the identical key refused", spi)
	}
	oldC := f.cipherFor(target.Key)
	newC := f.cipherFor(newKey)
	for a := target.Zone.Base; a < target.Zone.Base+target.Zone.Size; a += CipherBlock {
		blk := f.store.Peek(a, CipherBlock)
		f.decryptBlock(oldC, a, blk)
		f.encryptBlock(newC, a, blk)
		f.store.Poke(a, blk)
	}
	f.cm.SetKey(spi, newKey)
	if f.tree != nil {
		f.tree.Build()
	}
	f.crypto.KeyRotations++
	return nil
}

// PeekPlaintext reads n bytes at addr as software would see them
// (decrypting CM zones), bypassing bus and timing. Test/diagnostic aid.
func (f *CipherFirewall) PeekPlaintext(addr uint32, n int) []byte {
	out := make([]byte, 0, n)
	a := addr
	for len(out) < n {
		p, v := f.cm.Check("debug", false, a, 1, 1)
		blkBase := a &^ (CipherBlock - 1)
		blk := f.store.Peek(blkBase, CipherBlock)
		if v == VNone && p.CM {
			f.decryptBlock(f.cipherFor(p.Key), blkBase, blk)
		}
		for off := int(a - blkBase); off < CipherBlock && len(out) < n; off++ {
			out = append(out, blk[off])
			a++
		}
	}
	return out
}

// cipherRange is the single implementation of the CC's XEX mode
// (C = AES_K(P xor T) xor T with T = AES_K(addr || ...)): it runs the
// block loop over buf (covering [lo, lo+len)) in place — decrypting when
// dec is true, enciphering otherwise — with the tweak derivation fused
// into the loop so per-block state stays in two stack arrays. Address
// binding means identical plaintext at different addresses yields
// unrelated ciphertext, which is the CC's contribution against
// relocation/spoofing even before the IC weighs in.
func cipherRange(c *aes.Cipher, lo uint32, buf []byte, dec bool) {
	var in, t [16]byte
	addr := lo
	for off := 0; off < len(buf); off += CipherBlock {
		b := (*[16]byte)(buf[off:])
		in[0], in[1], in[2], in[3] = byte(addr), byte(addr>>8), byte(addr>>16), byte(addr>>24)
		c.EncryptBlock(&t, &in)
		for i := range b {
			b[i] ^= t[i]
		}
		if dec {
			c.DecryptBlock(b, b)
		} else {
			c.EncryptBlock(b, b)
		}
		for i := range b {
			b[i] ^= t[i]
		}
		addr += CipherBlock
	}
}

// encryptBlock enciphers one block in place, bound to addr (Seal,
// RotateKey and PeekPlaintext use the single-block form).
func (f *CipherFirewall) encryptBlock(c *aes.Cipher, addr uint32, blk []byte) {
	cipherRange(c, addr, blk[:CipherBlock], false)
}

// decryptBlock inverts encryptBlock.
func (f *CipherFirewall) decryptBlock(c *aes.Cipher, addr uint32, blk []byte) {
	cipherRange(c, addr, blk[:CipherBlock], true)
}

// Access implements bus.Slave: the full LCF pipeline.
func (f *CipherFirewall) Access(now uint64, tx *bus.Transaction) (uint64, bus.Resp) {
	f.stats.Checked++
	f.stats.CheckCyclesSpent += f.cfg.CheckCycles
	cycles := f.cfg.CheckCycles

	pol, v := f.cm.CheckAccess(accessOf(tx))
	if v != VNone {
		f.stats.Blocked++
		f.alert(now, tx, pol.SPI, v, "")
		zero(tx.Data)
		return cycles, bus.RespSecurityErr
	}
	f.stats.Allowed++

	// Pass-through zone: plain DDR access.
	if !pol.CM && !pol.IM {
		inner, resp := f.inner.Access(now, tx)
		return cycles + inner, resp
	}

	// Protected zone: operate at cipher-block granularity.
	lo := tx.Addr &^ (CipherBlock - 1)
	hi := (tx.End() + CipherBlock - 1) &^ (CipherBlock - 1)
	nBlocks := int((hi - lo) / CipherBlock)
	buf, words := f.scratch(nBlocks * CipherBlock)

	// 1. Fetch covering ciphertext from the DDR (functional + timing),
	// through the pooled covering transaction.
	raw := &f.covTx
	*raw = bus.Transaction{
		Master: tx.Master, Op: bus.Read, Addr: lo, Size: 4,
		Burst: len(words), Data: words,
	}
	ddrCycles, resp := f.inner.Access(now, raw)
	cycles += ddrCycles
	if resp != bus.RespOK {
		return cycles, resp
	}

	// 2. Integrity: verify every covered leaf before trusting anything.
	// A write that overwrites whole leaves consumes no stale state, so it
	// skips the pre-verification — which is also the recovery path after
	// a detected corruption (software rewrites the full block).
	needVerify := pol.IM
	if tx.Op == bus.Write && tx.Addr%hashtree.LeafSize == 0 && tx.End()%hashtree.LeafSize == 0 {
		needVerify = false
	}
	if needVerify {
		ok, checks := f.verifyRange(lo, hi)
		f.crypto.NodeOps += uint64(checks)
		icCycles := f.cfg.IC.BlockCycles(checks)
		f.crypto.ICCycles += icCycles
		cycles += icCycles
		if !ok {
			f.crypto.IntegrityFailures++
			f.stats.Blocked++
			f.stats.Allowed-- // the rule check passed but the data did not
			diag := f.diagnoseRange(lo, hi)
			vkind := VIntegrity
			if diag == hashtree.DiagReplay {
				vkind = VReplay
			}
			f.alert(now, tx, pol.SPI, vkind, diag.String())
			zero(tx.Data)
			return cycles, bus.RespSecurityErr
		}
	}

	// 3. Confidentiality: decrypt covering blocks into the scratch
	// buffer (the write path merges beats into it and re-encrypts, so
	// the store itself only ever holds ciphertext).
	copy(buf, f.store.View(lo, len(buf)))
	if pol.CM {
		cipherRange(f.cipherFor(pol.Key), lo, buf, true)
		f.crypto.BlocksDeciphered += uint64(nBlocks)
		cc := f.cfg.CC.BlockCycles(nBlocks)
		f.crypto.CCCycles += cc
		cycles += cc
	}

	if tx.Op == bus.Read {
		// Deliver the requested beats from the plaintext buffer.
		for i := 0; i < tx.Burst; i++ {
			off := int(tx.Addr-lo) + i*tx.Size
			var w uint32
			for b := 0; b < tx.Size; b++ {
				w |= uint32(buf[off+b]) << (8 * b)
			}
			tx.Data[i] = w
		}
		return cycles, bus.RespOK
	}

	// Write: merge beats into the plaintext buffer, re-encrypt, write
	// back, update the tree.
	for i := 0; i < tx.Burst; i++ {
		off := int(tx.Addr-lo) + i*tx.Size
		for b := 0; b < tx.Size; b++ {
			buf[off+b] = byte(tx.Data[i] >> (8 * b))
		}
	}
	if pol.CM {
		cipherRange(f.cipherFor(pol.Key), lo, buf, false)
		f.crypto.BlocksEnciphered += uint64(nBlocks)
		cc := f.cfg.CC.BlockCycles(nBlocks)
		f.crypto.CCCycles += cc
		cycles += cc
	}
	// The covering read is complete, so its pooled word buffer can carry
	// the write-back.
	bytesToWords(buf, words)
	wr := &f.covTx
	*wr = bus.Transaction{
		Master: tx.Master, Op: bus.Write, Addr: lo, Size: 4,
		Burst: len(words), Data: words,
	}
	ddrCycles, resp = f.inner.Access(now, wr)
	cycles += ddrCycles
	if resp != bus.RespOK {
		return cycles, resp
	}
	if pol.IM {
		ops, ok := f.updateRange(lo, hi)
		f.crypto.NodeOps += uint64(ops)
		icCycles := f.cfg.IC.BlockCycles(ops)
		f.crypto.ICCycles += icCycles
		cycles += icCycles
		if !ok {
			// The pre-write verification inside UpdateLeaf failed: an
			// attacker modified the path under us.
			f.crypto.IntegrityFailures++
			f.alert(now, tx, pol.SPI, VIntegrity, "update-path")
			return cycles, bus.RespSecurityErr
		}
	}
	return cycles, bus.RespOK
}

// verifyRange authenticates all leaves covering [lo, hi).
func (f *CipherFirewall) verifyRange(lo, hi uint32) (bool, int) {
	total := 0
	for a := lo &^ (hashtree.LeafSize - 1); a < hi; a += hashtree.LeafSize {
		idx, err := f.tree.LeafIndex(a)
		if err != nil {
			return false, total
		}
		ok, checks := f.tree.VerifyLeaf(idx)
		total += checks
		f.crypto.LeafVerifies++
		if !ok {
			return false, total
		}
	}
	return true, total
}

// diagnoseRange returns the first non-authentic leaf's diagnosis.
func (f *CipherFirewall) diagnoseRange(lo, hi uint32) hashtree.Diagnosis {
	for a := lo &^ (hashtree.LeafSize - 1); a < hi; a += hashtree.LeafSize {
		idx, err := f.tree.LeafIndex(a)
		if err != nil {
			return hashtree.DiagTamper
		}
		if d := f.tree.Diagnose(idx); d != hashtree.DiagAuthentic {
			return d
		}
	}
	return hashtree.DiagTamper
}

// updateRange recomputes all leaves covering [lo, hi) after a write.
func (f *CipherFirewall) updateRange(lo, hi uint32) (int, bool) {
	total := 0
	for a := lo &^ (hashtree.LeafSize - 1); a < hi; a += hashtree.LeafSize {
		idx, err := f.tree.LeafIndex(a)
		if err != nil {
			return total, false
		}
		ok, ops := f.tree.UpdateLeaf(idx)
		total += ops
		f.crypto.LeafUpdates++
		if !ok {
			return total, false
		}
	}
	return total, true
}

func (f *CipherFirewall) alert(now uint64, tx *bus.Transaction, spi uint32, v Violation, detail string) {
	f.log.Record(Alert{
		Cycle:      now,
		FirewallID: f.cfg.Name,
		Master:     tx.Master,
		Thread:     tx.Thread,
		SPI:        spi,
		Violation:  v,
		Op:         tx.Op,
		Addr:       tx.Addr,
		Size:       tx.Size,
		Detail:     detail,
	})
}

func zero(ws []uint32) {
	for i := range ws {
		ws[i] = 0
	}
}

func bytesToWords(b []byte, ws []uint32) {
	for i := range ws {
		ws[i] = uint32(b[4*i]) | uint32(b[4*i+1])<<8 | uint32(b[4*i+2])<<16 | uint32(b[4*i+3])<<24
	}
}
