// Package core implements the paper's contribution: distributed security
// enhancements for a bus-based MPSoC.
//
// Two kinds of interfaces exist, exactly as in Figure 1 of the paper:
//
//   - Local Firewall (LF): sits between an IP and the system bus. The
//     master-side form (LocalFirewall) wraps the IP's bus connection and
//     checks every outgoing transfer before it can reach the bus; the
//     slave-side form (SlaveFirewall) guards a bus target (shared memory,
//     dedicated IP registers) and checks every incoming transfer before it
//     can reach the IP. A violating transfer is discarded at the interface
//     and an alert is raised — it never propagates.
//
//   - Local Ciphering Firewall (LCF): guards the external memory. On top
//     of the LF rule check it provides confidentiality (AES-128, the
//     Confidentiality Core) and integrity/anti-replay/anti-relocation (hash
//     tree with on-chip root and version tags, the Integrity Core).
//
// Security Policies (SPs) live in on-chip Configuration Memories — trusted
// storage, not ciphered, per §IV-B of the paper.
package core

import (
	"fmt"
	"sort"
)

// RWA is the Read/Write Access rule of a security policy (§IV-A).
type RWA uint8

// Access rules.
const (
	// Deny permits nothing (useful as an explicit tombstone rule).
	Deny RWA = iota
	// ReadOnly permits loads only.
	ReadOnly
	// WriteOnly permits stores only.
	WriteOnly
	// ReadWrite permits both directions.
	ReadWrite
)

// String implements fmt.Stringer.
func (r RWA) String() string {
	switch r {
	case Deny:
		return "deny"
	case ReadOnly:
		return "ro"
	case WriteOnly:
		return "wo"
	case ReadWrite:
		return "rw"
	default:
		return fmt.Sprintf("rwa(%d)", uint8(r))
	}
}

// AllowsRead reports whether loads are permitted.
func (r RWA) AllowsRead() bool { return r == ReadOnly || r == ReadWrite }

// AllowsWrite reports whether stores are permitted.
func (r RWA) AllowsWrite() bool { return r == WriteOnly || r == ReadWrite }

// WidthMask is the Allowed Data Format (ADF) of a policy: the set of
// access widths an IP may use in a zone (§IV-A: "8 up to 32 bits").
type WidthMask uint8

// Width bits.
const (
	W8  WidthMask = 1 << iota // byte accesses
	W16                       // halfword accesses
	W32                       // word accesses

	// AnyWidth permits all formats.
	AnyWidth = W8 | W16 | W32
)

// Allows reports whether an access of size bytes (1, 2, 4) is permitted.
func (m WidthMask) Allows(size int) bool {
	switch size {
	case 1:
		return m&W8 != 0
	case 2:
		return m&W16 != 0
	case 4:
		return m&W32 != 0
	default:
		return false
	}
}

// String implements fmt.Stringer.
func (m WidthMask) String() string {
	s := ""
	if m&W8 != 0 {
		s += "8"
	}
	if m&W16 != 0 {
		if s != "" {
			s += "/"
		}
		s += "16"
	}
	if m&W32 != 0 {
		if s != "" {
			s += "/"
		}
		s += "32"
	}
	if s == "" {
		return "none"
	}
	return s + "b"
}

// Zone is an address range [Base, Base+Size).
type Zone struct {
	Base uint32
	Size uint32
}

// Contains reports whether [addr, addr+n) is inside the zone.
func (z Zone) Contains(addr uint32, n uint32) bool {
	return addr >= z.Base && uint64(addr)+uint64(n) <= uint64(z.Base)+uint64(z.Size)
}

// Overlaps reports whether two zones intersect.
func (z Zone) Overlaps(o Zone) bool {
	return uint64(z.Base) < uint64(o.Base)+uint64(o.Size) &&
		uint64(o.Base) < uint64(z.Base)+uint64(z.Size)
}

// String implements fmt.Stringer.
func (z Zone) String() string {
	return fmt.Sprintf("[%#x,+%#x)", z.Base, z.Size)
}

// Policy is one security-policy entry (one rule) in a Configuration
// Memory. It carries every parameter from §IV-A of the paper; CM/IM/Key
// are meaningful only in the Local Ciphering Firewall.
type Policy struct {
	// SPI is the security-policy identifier.
	SPI uint32
	// Zone is the address range the rule covers.
	Zone Zone
	// RWA is the read/write access rule.
	RWA RWA
	// ADF is the allowed data format (access widths).
	ADF WidthMask
	// Origins restricts which masters the rule applies to (slave-side
	// firewalls). Empty means any master.
	Origins []string
	// Threads restricts which software contexts the rule applies to —
	// the paper's future-work "thread-specific security where each
	// thread has its own security level". Empty means any thread.
	Threads []uint32
	// CM enables the Confidentiality Core for the zone (LCF only).
	CM bool
	// IM enables the Integrity Core for the zone (LCF only).
	IM bool
	// Key is the AES-128 cryptographic key (CK) for the zone (LCF only,
	// used when CM is set).
	Key [16]byte
}

// appliesTo reports whether the rule covers this master.
func (p *Policy) appliesTo(master string) bool {
	if len(p.Origins) == 0 {
		return true
	}
	for _, o := range p.Origins {
		if o == master {
			return true
		}
	}
	return false
}

// appliesToThread reports whether the rule covers this software context.
func (p *Policy) appliesToThread(thread uint32) bool {
	if len(p.Threads) == 0 {
		return true
	}
	for _, t := range p.Threads {
		if t == thread {
			return true
		}
	}
	return false
}

// Violation classifies why a transfer was discarded. The zero value means
// the transfer is allowed.
type Violation uint8

// Violation kinds, mirroring the check modules inside the Security
// Builder.
const (
	// VNone: no violation.
	VNone Violation = iota
	// VZone: no policy covers the address range (unauthorized zone).
	VZone
	// VAccess: direction forbidden by the RWA rule.
	VAccess
	// VFormat: access width forbidden by the ADF rule.
	VFormat
	// VOrigin: the requesting master is not permitted by any covering
	// rule.
	VOrigin
	// VThread: rules cover the zone for this master, but none admits the
	// requesting software context.
	VThread
	// VIntegrity: the Integrity Core found external memory inauthentic
	// (spoofing, relocation or tampering).
	VIntegrity
	// VReplay: the Integrity Core attributed the mismatch to stale-but-
	// consistent state (replay of an old memory image).
	VReplay
)

// String implements fmt.Stringer.
func (v Violation) String() string {
	switch v {
	case VNone:
		return "none"
	case VZone:
		return "zone"
	case VAccess:
		return "access"
	case VFormat:
		return "format"
	case VOrigin:
		return "origin"
	case VThread:
		return "thread"
	case VIntegrity:
		return "integrity"
	case VReplay:
		return "replay"
	default:
		return fmt.Sprintf("violation(%d)", uint8(v))
	}
}

// ConfigMemory is the on-chip table of security policies of one firewall
// (§IV-B: "stored in on-chip memories ... trusted units"). Policies are
// matched most-specific-zone-first; everything not explicitly allowed is
// denied.
type ConfigMemory struct {
	policies []Policy
}

// NewConfigMemory builds a configuration memory from rules. It rejects
// rules with zero-size zones.
func NewConfigMemory(rules ...Policy) (*ConfigMemory, error) {
	cm := &ConfigMemory{}
	for _, r := range rules {
		if err := cm.Add(r); err != nil {
			return nil, err
		}
	}
	return cm, nil
}

// MustConfig is NewConfigMemory for statically known-good rule sets.
func MustConfig(rules ...Policy) *ConfigMemory {
	cm, err := NewConfigMemory(rules...)
	if err != nil {
		panic(err)
	}
	return cm
}

// Add appends a rule (reconfiguration of security services — the paper's
// stated perspective — amounts to Add/Remove at run time).
func (cm *ConfigMemory) Add(r Policy) error {
	if r.Zone.Size == 0 {
		return fmt.Errorf("core: policy SPI %d has empty zone", r.SPI)
	}
	cm.policies = append(cm.policies, r)
	// Most-specific (smallest) zone first so overlapping rules behave
	// predictably; stable to keep insertion order among equals.
	sort.SliceStable(cm.policies, func(i, j int) bool {
		return cm.policies[i].Zone.Size < cm.policies[j].Zone.Size
	})
	return nil
}

// Remove deletes all rules with the given SPI and reports how many were
// removed.
func (cm *ConfigMemory) Remove(spi uint32) int {
	kept := cm.policies[:0]
	removed := 0
	for _, p := range cm.policies {
		if p.SPI == spi {
			removed++
			continue
		}
		kept = append(kept, p)
	}
	cm.policies = kept
	return removed
}

// SetKey replaces the cryptographic key of every rule with the given SPI
// and reports how many rules were updated (LCF key rotation).
func (cm *ConfigMemory) SetKey(spi uint32, key [16]byte) int {
	n := 0
	for i := range cm.policies {
		if cm.policies[i].SPI == spi {
			cm.policies[i].Key = key
			n++
		}
	}
	return n
}

// RuleCount returns the number of rules (drives the area model: the paper
// notes firewall cost scales with the number of monitored rules).
func (cm *ConfigMemory) RuleCount() int { return len(cm.policies) }

// Policies returns a copy of the rule set in match order.
func (cm *ConfigMemory) Policies() []Policy {
	return append([]Policy(nil), cm.policies...)
}

// Access describes one transfer for policy evaluation.
type Access struct {
	// Master is the issuing IP; Thread the software context tag.
	Master string
	Thread uint32
	// Write is the direction; Addr/Size/Burst the shape.
	Write bool
	Addr  uint32
	Size  int
	Burst int
}

// Check evaluates a transfer of `burst` beats of `size` bytes at addr by
// `master` with direction given by isWrite, under the default (zero)
// thread context. See CheckAccess.
func (cm *ConfigMemory) Check(master string, isWrite bool, addr uint32, size int, burst int) (Policy, Violation) {
	return cm.CheckAccess(Access{Master: master, Write: isWrite, Addr: addr, Size: size, Burst: burst})
}

// CheckAccess evaluates a transfer. It returns the matched policy (valid
// when the violation is VNone, VAccess or VFormat) and the violation
// class.
//
// Matching: the most specific rule whose zone covers the whole transfer
// and whose origin list admits the master decides. If rules cover the
// zone but none admits this master, the violation is VOrigin; if nothing
// covers the range at all, VZone.
//
// Origins and Threads compose differently, deliberately. An origin
// mismatch *falls through* to broader rules: origin lists route per-IP
// rules inside merged tables (slave-side firewalls, the centralized SEM),
// so a rule for the DMA simply does not apply to a CPU. A thread mismatch
// *fails closed* with VThread: a thread restriction is a security level
// on a zone, and falling through to a broader allow rule would silently
// defeat it.
func (cm *ConfigMemory) CheckAccess(a Access) (Policy, Violation) {
	n := uint32(a.Size) * uint32(a.Burst)
	zoneCovered := false
	for i := range cm.policies {
		p := &cm.policies[i]
		if !p.Zone.Contains(a.Addr, n) {
			continue
		}
		zoneCovered = true
		if !p.appliesTo(a.Master) {
			continue
		}
		if !p.appliesToThread(a.Thread) {
			return *p, VThread
		}
		if a.Write && !p.RWA.AllowsWrite() {
			return *p, VAccess
		}
		if !a.Write && !p.RWA.AllowsRead() {
			return *p, VAccess
		}
		if !p.ADF.Allows(a.Size) {
			return *p, VFormat
		}
		return *p, VNone
	}
	if zoneCovered {
		return Policy{}, VOrigin
	}
	return Policy{}, VZone
}
