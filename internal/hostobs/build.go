package hostobs

import "runtime/debug"

// BuildInfo identifies the running binary: the VCS revision baked in by
// the Go toolchain, whether the tree was dirty, and the Go version.
type BuildInfo struct {
	Revision  string `json:"revision"`
	Dirty     bool   `json:"dirty"`
	GoVersion string `json:"go_version"`
}

// Build reads the binary's stamp via runtime/debug.ReadBuildInfo.
// Revision is "unknown" when the binary was built outside a VCS checkout
// (e.g. `go run` of an exported tree) — callers can rely on it being
// non-empty.
func Build() BuildInfo {
	b := BuildInfo{Revision: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.GoVersion = bi.GoVersion
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			if s.Value != "" {
				b.Revision = s.Value
			}
		case "vcs.modified":
			b.Dirty = s.Value == "true"
		}
	}
	return b
}

// String renders the short human form used by the -version flags.
func (b BuildInfo) String() string {
	rev := b.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if b.Dirty {
		rev += "+dirty"
	}
	if b.GoVersion != "" {
		rev += " (" + b.GoVersion + ")"
	}
	return rev
}
