// Package hostobs is the host-time observability layer for the fleet:
// structured logging with a canonical field set, bounded wall-clock span
// tracing exported in the Chrome trace_event shape, per-process resource
// probes, and a crash flight recorder.
//
// Everything here lives strictly on the host side of the host/sim
// boundary: nothing in this package may leak into the deterministic
// result streams, and sim-stack packages must not import it (enforced by
// tools/staticcheck's host-import rule). Logs go to the writer the caller
// provides — in the daemons that is stderr, never stdout — so every
// byte-identity gate on stdout streams is untouched.
//
// A nil *Host is a valid, fully disabled instance: every method is a
// nil-receiver-safe no-op, and the disabled path is pinned at zero heap
// allocations per call by TestDisabledHostZeroAllocs. The package never
// reads the wall clock itself (the determinism lint forbids time.Now in
// internal/...); callers inject a clock via Options.NowNanos.
package hostobs

import (
	"context"
	"io"
	"log/slog"
	"sync"
)

// Default ring capacities. Sized so a busy node keeps a few seconds of
// history without the recorder ever growing: the rings overwrite oldest.
const (
	DefaultEventRing = 4096
	DefaultSpanRing  = 8192
)

// Options configures a Host.
type Options struct {
	// Node names this process in logs, span documents, and flight
	// dumps (e.g. "mpsocd@127.0.0.1:9090"). Defaults to "node".
	Node string

	// NowNanos supplies wall-clock nanoseconds. When nil, every
	// timestamp and span duration is zero; the daemons pass
	// time.Now().UnixNano from main, keeping this package free of
	// direct clock reads.
	NowNanos func() int64

	// LogWriter receives slog text lines. nil disables the slog tee;
	// events still land in the flight-recorder ring.
	LogWriter io.Writer

	// Level is the minimum slog level for LogWriter output.
	Level slog.Level

	// EventRing and SpanRing bound the recorder buffers; zero or
	// negative selects the defaults.
	EventRing int
	SpanRing  int

	// FlightDir is where WriteFlight drops flight-<pid>.json. Empty
	// disables on-disk dumps (the live /debug/flightrecorder endpoint
	// still works).
	FlightDir string
}

// Fields is the canonical structured field set threaded through every
// log line and span. Zero values are omitted from output; Shard is only
// meaningful when HasShard is set, because shard index 0 is a real shard
// and presence needs its own bit.
type Fields struct {
	Job      string
	Shard    int
	HasShard bool
	Attempt  int
	Backend  string
	Trace    string
	Err      string
	Detail   string
}

// Event is one recorded structured event in the flight-recorder ring.
// Shard is -1 when the event has no shard.
type Event struct {
	Seq     uint64 `json:"seq"`
	Nanos   int64  `json:"t_nanos"`
	Level   string `json:"level"`
	Msg     string `json:"msg"`
	Job     string `json:"job,omitempty"`
	Shard   int    `json:"shard"`
	Attempt int    `json:"attempt,omitempty"`
	Backend string `json:"backend,omitempty"`
	Trace   string `json:"trace,omitempty"`
	Err     string `json:"err,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

// Host is one node's observability state. The zero value is unused; a
// nil *Host is the canonical disabled instance.
type Host struct {
	node      string
	now       func() int64
	log       *slog.Logger
	flightDir string

	mu        sync.Mutex
	seq       uint64
	events    []Event
	evHead    int
	evLen     int
	evDropped uint64
	spans     []Span
	spHead    int
	spLen     int
	spDropped uint64
}

// New builds an enabled Host. Callers that want observability off pass a
// nil *Host around instead.
func New(o Options) *Host {
	if o.Node == "" {
		o.Node = "node"
	}
	if o.EventRing <= 0 {
		o.EventRing = DefaultEventRing
	}
	if o.SpanRing <= 0 {
		o.SpanRing = DefaultSpanRing
	}
	h := &Host{
		node:      o.Node,
		now:       o.NowNanos,
		flightDir: o.FlightDir,
		events:    make([]Event, o.EventRing),
		spans:     make([]Span, o.SpanRing),
	}
	if o.LogWriter != nil {
		handler := slog.NewTextHandler(o.LogWriter, &slog.HandlerOptions{Level: o.Level})
		h.log = slog.New(handler).With(slog.String("node", o.Node))
	}
	return h
}

// NodeName reports the configured node name; "" when disabled.
func (h *Host) NodeName() string {
	if h == nil {
		return ""
	}
	return h.node
}

// NowNanos reads the injected clock; 0 when disabled or clockless, so
// `start := h.NowNanos()` is free on the disabled path.
func (h *Host) NowNanos() int64 {
	if h == nil || h.now == nil {
		return 0
	}
	return h.now()
}

// Info records an info-level event.
func (h *Host) Info(msg string, f Fields) {
	if h == nil {
		return
	}
	h.event(slog.LevelInfo, msg, f)
}

// Warn records a warn-level event.
func (h *Host) Warn(msg string, f Fields) {
	if h == nil {
		return
	}
	h.event(slog.LevelWarn, msg, f)
}

// Error records an error-level event.
func (h *Host) Error(msg string, f Fields) {
	if h == nil {
		return
	}
	h.event(slog.LevelError, msg, f)
}

func (h *Host) event(level slog.Level, msg string, f Fields) {
	e := Event{
		Nanos:   h.NowNanos(),
		Level:   levelName(level),
		Msg:     msg,
		Job:     f.Job,
		Shard:   -1,
		Attempt: f.Attempt,
		Backend: f.Backend,
		Trace:   f.Trace,
		Err:     f.Err,
		Detail:  f.Detail,
	}
	if f.HasShard {
		e.Shard = f.Shard
	}
	h.mu.Lock()
	h.seq++
	e.Seq = h.seq
	if h.evLen == len(h.events) {
		h.events[h.evHead] = e
		h.evHead = (h.evHead + 1) % len(h.events)
		h.evDropped++
	} else {
		h.events[(h.evHead+h.evLen)%len(h.events)] = e
		h.evLen++
	}
	h.mu.Unlock()
	if h.log == nil {
		return
	}
	var attrs [7]slog.Attr
	n := 0
	if f.Job != "" {
		attrs[n] = slog.String("job", f.Job)
		n++
	}
	if f.HasShard {
		attrs[n] = slog.Int("shard", f.Shard)
		n++
	}
	if f.Attempt != 0 {
		attrs[n] = slog.Int("attempt", f.Attempt)
		n++
	}
	if f.Backend != "" {
		attrs[n] = slog.String("backend", f.Backend)
		n++
	}
	if f.Trace != "" {
		attrs[n] = slog.String("trace", f.Trace)
		n++
	}
	if f.Err != "" {
		attrs[n] = slog.String("err", f.Err)
		n++
	}
	if f.Detail != "" {
		attrs[n] = slog.String("detail", f.Detail)
		n++
	}
	h.log.LogAttrs(context.Background(), level, msg, attrs[:n]...)
}

func levelName(level slog.Level) string {
	switch {
	case level >= slog.LevelError:
		return "error"
	case level >= slog.LevelWarn:
		return "warn"
	default:
		return "info"
	}
}

// Events copies the current ring in arrival order plus the count of
// events overwritten by ring wraparound.
func (h *Host) Events() (events []Event, dropped uint64) {
	if h == nil {
		return nil, 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Event, 0, h.evLen)
	for i := 0; i < h.evLen; i++ {
		out = append(out, h.events[(h.evHead+i)%len(h.events)])
	}
	return out, h.evDropped
}
