package hostobs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Span is one completed wall-clock interval on a node (a dispatch, a
// shard execution attempt, a retry backoff, a failover re-dispatch, a
// journal fsync). Shard is -1 when the span has no shard.
type Span struct {
	Name       string `json:"name"`
	Trace      string `json:"trace,omitempty"`
	Job        string `json:"job,omitempty"`
	Shard      int    `json:"shard"`
	Attempt    int    `json:"attempt,omitempty"`
	Backend    string `json:"backend,omitempty"`
	Err        string `json:"err,omitempty"`
	Detail     string `json:"detail,omitempty"`
	StartNanos int64  `json:"start_nanos"`
	DurNanos   int64  `json:"dur_nanos"`
}

// Span records a completed span that started at startNanos (in the
// injected clock's domain) and ends now. The ring overwrites oldest.
func (h *Host) Span(name string, startNanos int64, f Fields) {
	if h == nil {
		return
	}
	sp := Span{
		Name:       name,
		Trace:      f.Trace,
		Job:        f.Job,
		Shard:      -1,
		Attempt:    f.Attempt,
		Backend:    f.Backend,
		Err:        f.Err,
		Detail:     f.Detail,
		StartNanos: startNanos,
	}
	if f.HasShard {
		sp.Shard = f.Shard
	}
	if d := h.NowNanos() - startNanos; d > 0 {
		sp.DurNanos = d
	}
	h.mu.Lock()
	if h.spLen == len(h.spans) {
		h.spans[h.spHead] = sp
		h.spHead = (h.spHead + 1) % len(h.spans)
		h.spDropped++
	} else {
		h.spans[(h.spHead+h.spLen)%len(h.spans)] = sp
		h.spLen++
	}
	h.mu.Unlock()
}

// Spans copies, in arrival order, every recorded span whose trace ID
// matches trace or whose job ID matches job (empty selectors match
// nothing, so Spans("", "") is always empty).
func (h *Host) Spans(trace, job string) []Span {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []Span
	for i := 0; i < h.spLen; i++ {
		sp := h.spans[(h.spHead+i)%len(h.spans)]
		if (trace != "" && sp.Trace == trace) || (job != "" && sp.Job == job) {
			out = append(out, sp)
		}
	}
	return out
}

// NodeSpans groups one node's spans inside a cross-node trace document.
type NodeSpans struct {
	Node  string `json:"node"`
	Spans []Span `json:"spans"`
}

// chromeEvent mirrors internal/obs's trace_event encoding so host
// traces and sim traces open identically in Perfetto / chrome://tracing.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   uint64            `json:"ts"`
	Dur  uint64            `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChrome renders a fleet's spans as one Chrome trace_event JSON
// document: one "process" per node, one "thread" per span name (in
// first-emission order), timestamps normalized so the earliest span
// starts at ts 0. The envelope matches internal/obs's TraceWriter.
func WriteChrome(w io.Writer, trace string, nodes []NodeSpans) error {
	var t0 int64
	first := true
	total := 0
	for _, n := range nodes {
		for _, sp := range n.Spans {
			if first || sp.StartNanos < t0 {
				t0 = sp.StartNanos
				first = false
			}
			total++
		}
	}
	if _, err := io.WriteString(w, `{"traceEvents":[`); err != nil {
		return err
	}
	wrote := false
	emit := func(e chromeEvent) error {
		data, err := json.Marshal(e)
		if err != nil {
			return err
		}
		sep := "\n"
		if wrote {
			sep = ",\n"
		}
		wrote = true
		if _, err := io.WriteString(w, sep); err != nil {
			return err
		}
		_, err = w.Write(data)
		return err
	}
	for i, n := range nodes {
		pid := i + 1
		if err := emit(chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]string{"name": n.Node},
		}); err != nil {
			return err
		}
		tids := make(map[string]int, 8)
		for _, sp := range n.Spans {
			if _, ok := tids[sp.Name]; ok {
				continue
			}
			tid := len(tids)
			tids[sp.Name] = tid
			if err := emit(chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]string{"name": sp.Name},
			}); err != nil {
				return err
			}
		}
		for _, sp := range n.Spans {
			args := make(map[string]string, 6)
			if sp.Job != "" {
				args["job"] = sp.Job
			}
			if sp.Shard >= 0 {
				args["shard"] = strconv.Itoa(sp.Shard)
			}
			if sp.Attempt > 0 {
				args["attempt"] = strconv.Itoa(sp.Attempt)
			}
			if sp.Backend != "" {
				args["backend"] = sp.Backend
			}
			if sp.Err != "" {
				args["err"] = sp.Err
			}
			if sp.Detail != "" {
				args["detail"] = sp.Detail
			}
			if err := emit(chromeEvent{
				Name: sp.Name,
				Ph:   "X",
				Ts:   uint64(sp.StartNanos-t0) / 1000,
				Dur:  uint64(sp.DurNanos) / 1000,
				Pid:  pid,
				Tid:  tids[sp.Name],
				Args: args,
			}); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintf(w, "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":\"wall-us\",\"nodes\":\"%d\",\"spans\":\"%d\",\"trace\":%q}}\n",
		len(nodes), total, trace)
	return err
}
