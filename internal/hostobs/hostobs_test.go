package hostobs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fakeClock returns a deterministic strictly-increasing nanosecond clock.
func fakeClock() func() int64 {
	var t int64
	return func() int64 {
		t += 1000
		return t
	}
}

// TestDisabledHostZeroAllocs pins the acceptance criterion: a nil *Host
// — the disabled configuration every sim-facing code path runs with —
// costs zero heap allocations per call.
func TestDisabledHostZeroAllocs(t *testing.T) {
	var h *Host
	f := Fields{Job: "job-0001", Shard: 3, HasShard: true, Attempt: 2, Backend: "b", Trace: "t", Err: "e"}
	allocs := testing.AllocsPerRun(1000, func() {
		start := h.NowNanos()
		h.Info("msg", f)
		h.Warn("msg", f)
		h.Error("msg", f)
		h.Span("execute", start, f)
		_ = h.Allocs()
		_ = h.NodeName()
	})
	if allocs != 0 {
		t.Fatalf("disabled hostobs path allocates: %v allocs/op, want 0", allocs)
	}
}

func TestEventRingOverwritesOldest(t *testing.T) {
	h := New(Options{Node: "n", NowNanos: fakeClock(), EventRing: 4})
	for i := 0; i < 6; i++ {
		h.Info("e", Fields{Attempt: i + 1})
	}
	events, dropped := h.Events()
	if len(events) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(events))
	}
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	if events[0].Seq != 3 || events[3].Seq != 6 {
		t.Fatalf("ring order wrong: first seq %d last seq %d, want 3 and 6", events[0].Seq, events[3].Seq)
	}
	if events[0].Shard != -1 {
		t.Fatalf("shardless event Shard = %d, want -1 sentinel", events[0].Shard)
	}
}

func TestSpanRingAndFiltering(t *testing.T) {
	h := New(Options{Node: "n", NowNanos: fakeClock(), SpanRing: 8})
	start := h.NowNanos()
	h.Span("execute", start, Fields{Trace: "t-1", Job: "job-0001", Shard: 0, HasShard: true})
	h.Span("dispatch", start, Fields{Trace: "t-2", Job: "job-0002"})
	h.Span("journal-fsync", start, Fields{Job: "job-0001"})

	byTrace := h.Spans("t-1", "")
	if len(byTrace) != 1 || byTrace[0].Name != "execute" {
		t.Fatalf("trace filter returned %+v, want the one execute span", byTrace)
	}
	byJob := h.Spans("", "job-0001")
	if len(byJob) != 2 {
		t.Fatalf("job filter returned %d spans, want 2", len(byJob))
	}
	if got := h.Spans("", ""); got != nil {
		t.Fatalf("empty selectors matched %d spans, want none", len(got))
	}
	if byTrace[0].DurNanos <= 0 {
		t.Fatalf("span duration %d, want > 0 with a live clock", byTrace[0].DurNanos)
	}
}

func TestSlogTeeCarriesCanonicalFields(t *testing.T) {
	var buf bytes.Buffer
	h := New(Options{Node: "node-a", NowNanos: fakeClock(), LogWriter: &buf})
	h.Warn("shard retry", Fields{Job: "job-0001", Shard: 2, HasShard: true, Attempt: 3, Backend: "http://b", Trace: "t-job-0001", Err: "boom"})
	line := buf.String()
	for _, want := range []string{"level=WARN", `msg="shard retry"`, "node=node-a", "job=job-0001", "shard=2", "attempt=3", "backend=http://b", "trace=t-job-0001", "err=boom"} {
		if !strings.Contains(line, want) {
			t.Fatalf("log line missing %q:\n%s", want, line)
		}
	}
}

func TestWriteFlightRoundTrip(t *testing.T) {
	dir := t.TempDir()
	h := New(Options{Node: "n", NowNanos: fakeClock(), FlightDir: dir})
	h.Error("faultpoint crash", Fields{Detail: "journal.ack"})
	path, err := h.WriteFlight()
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "flight-"); !strings.HasPrefix(path, want) {
		t.Fatalf("dump path %q, want prefix %q", path, want)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc FlightDump
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Node != "n" || doc.PID != os.Getpid() || len(doc.Events) != 1 {
		t.Fatalf("dump = %+v, want node n, this pid, 1 event", doc)
	}
	if doc.Events[0].Msg != "faultpoint crash" || doc.Events[0].Detail != "journal.ack" {
		t.Fatalf("dumped event = %+v", doc.Events[0])
	}
}

func TestWriteFlightDisabled(t *testing.T) {
	var nilHost *Host
	if path, err := nilHost.WriteFlight(); err != nil || path != "" {
		t.Fatalf("nil host WriteFlight = (%q, %v), want no-op", path, err)
	}
	h := New(Options{Node: "n"})
	if path, err := h.WriteFlight(); err != nil || path != "" {
		t.Fatalf("no FlightDir WriteFlight = (%q, %v), want no-op", path, err)
	}
}

func TestDebugMuxSurfaces(t *testing.T) {
	h := New(Options{Node: "n", NowNanos: fakeClock()})
	h.Info("hello", Fields{Job: "job-0001"})
	mux := DebugMux(h)

	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flightrecorder", nil))
	var doc FlightDump
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("flightrecorder: %v", err)
	}
	if len(doc.Events) != 1 || doc.Events[0].Msg != "hello" {
		t.Fatalf("flightrecorder doc = %+v", doc)
	}

	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/runtime", nil))
	var samples []struct {
		Name  string          `json:"name"`
		Value json.RawMessage `json:"value"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &samples); err != nil {
		t.Fatalf("runtime: %v", err)
	}
	found := false
	for _, s := range samples {
		if s.Name == "/gc/heap/allocs:objects" {
			found = true
		}
	}
	if !found {
		t.Fatal("runtime snapshot missing /gc/heap/allocs:objects")
	}

	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rr.Code != 200 {
		t.Fatalf("pprof cmdline status %d", rr.Code)
	}

	// The whole debug surface must also work fully disabled.
	rr = httptest.NewRecorder()
	DebugMux(nil).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flightrecorder", nil))
	if rr.Code != 200 {
		t.Fatalf("nil-host flightrecorder status %d", rr.Code)
	}
}

func TestAllocsProbe(t *testing.T) {
	h := New(Options{Node: "n"})
	a0 := h.Allocs()
	sink := make([]*int, 0, 1024)
	for i := 0; i < 1024; i++ {
		v := i
		sink = append(sink, &v)
	}
	_ = sink
	if h.Allocs() <= a0 {
		t.Fatal("alloc counter did not advance across 1024 heap allocations")
	}
}

func TestWriteChromeShape(t *testing.T) {
	nodes := []NodeSpans{
		{Node: "coordinator", Spans: []Span{
			{Name: "dispatch", Trace: "t-1", Job: "job-0001", Shard: -1, Backend: "http://a", StartNanos: 5000, DurNanos: 2000},
			{Name: "failover", Trace: "t-1", Job: "job-0001", Shard: -1, Err: "EOF", StartNanos: 9000, DurNanos: 1000},
		}},
		{Node: "backend-a", Spans: []Span{
			{Name: "execute", Trace: "t-1", Job: "job-0002", Shard: 0, Attempt: 1, StartNanos: 7000, DurNanos: 3000},
		}},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, "t-1", nodes); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   uint64            `json:"ts"`
			Dur  uint64            `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		OtherData       map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not a JSON trace doc: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if doc.OtherData["clock"] != "wall-us" || doc.OtherData["nodes"] != "2" || doc.OtherData["trace"] != "t-1" {
		t.Fatalf("otherData = %v", doc.OtherData)
	}
	pids := map[int]bool{}
	procNames := map[string]bool{}
	var execTs uint64
	for _, e := range doc.TraceEvents {
		pids[e.Pid] = true
		if e.Name == "process_name" && e.Ph == "M" {
			procNames[e.Args["name"]] = true
		}
		if e.Name == "execute" && e.Ph == "X" {
			execTs = e.Ts
			if e.Args["shard"] != "0" || e.Args["attempt"] != "1" {
				t.Fatalf("execute args = %v", e.Args)
			}
		}
	}
	if len(pids) != 2 || !procNames["coordinator"] || !procNames["backend-a"] {
		t.Fatalf("pids %v procs %v, want 2 pids named coordinator and backend-a", pids, procNames)
	}
	// Earliest span (dispatch @5000ns) normalizes to ts 0, so the
	// execute span at 7000ns lands at 2us.
	if execTs != 2 {
		t.Fatalf("execute ts = %d us, want 2 (normalized against earliest span)", execTs)
	}
}

func TestBuildInfo(t *testing.T) {
	b := Build()
	if b.Revision == "" {
		t.Fatal("Build().Revision empty, want at least \"unknown\"")
	}
	if s := b.String(); s == "" {
		t.Fatal("Build().String() empty")
	}
	long := BuildInfo{Revision: "0123456789abcdef", Dirty: true, GoVersion: "go1.24"}
	if got := long.String(); got != "0123456789ab+dirty (go1.24)" {
		t.Fatalf("String() = %q", got)
	}
}
