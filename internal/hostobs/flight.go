package hostobs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"runtime/metrics"
)

// FlightDump is the post-mortem document: the node identity plus the
// recent-event ring, either dumped to disk on a crash or served live at
// /debug/flightrecorder.
type FlightDump struct {
	Node    string  `json:"node"`
	PID     int     `json:"pid"`
	Dropped uint64  `json:"dropped"`
	Events  []Event `json:"events"`
}

// WriteFlight dumps the event ring to <FlightDir>/flight-<pid>.json and
// returns the path. A nil Host or empty FlightDir writes nothing and
// returns "". The file is fsynced: the caller is usually about to die.
func (h *Host) WriteFlight() (string, error) {
	if h == nil || h.flightDir == "" {
		return "", nil
	}
	events, dropped := h.Events()
	if events == nil {
		events = []Event{}
	}
	doc := FlightDump{Node: h.node, PID: os.Getpid(), Dropped: dropped, Events: events}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(h.flightDir, fmt.Sprintf("flight-%d.json", os.Getpid()))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// ServeFlight serves the live event ring as the same JSON document
// WriteFlight persists. Safe on a nil Host (serves an empty dump).
func (h *Host) ServeFlight(w http.ResponseWriter, r *http.Request) {
	events, dropped := h.Events()
	if events == nil {
		events = []Event{}
	}
	doc := FlightDump{Node: h.NodeName(), PID: os.Getpid(), Dropped: dropped, Events: events}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

// DebugMux is the -debug-addr surface: net/http/pprof, a runtime/metrics
// snapshot, and the live flight recorder. h may be nil (pprof and
// runtime metrics still work; the flight dump is empty).
func DebugMux(h *Host) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/flightrecorder", h.ServeFlight)
	mux.HandleFunc("GET /debug/runtime", handleRuntime)
	return mux
}

// handleRuntime dumps every scalar runtime/metrics sample as an ordered
// {name, value} list (histograms are skipped; pprof covers those).
func handleRuntime(w http.ResponseWriter, r *http.Request) {
	descs := metrics.All()
	samples := make([]metrics.Sample, len(descs))
	for i, d := range descs {
		samples[i].Name = d.Name
	}
	metrics.Read(samples)
	type sample struct {
		Name  string `json:"name"`
		Value any    `json:"value"`
	}
	out := make([]sample, 0, len(samples))
	for _, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			out = append(out, sample{s.Name, s.Value.Uint64()})
		case metrics.KindFloat64:
			out = append(out, sample{s.Name, s.Value.Float64()})
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// Allocs reads the runtime's cumulative heap-object allocation count,
// the basis for per-shard alloc deltas. 0 when disabled, so deltas on
// the disabled path are 0 - 0.
func (h *Host) Allocs() uint64 {
	if h == nil {
		return 0
	}
	var s [1]metrics.Sample
	s[0].Name = "/gc/heap/allocs:objects"
	metrics.Read(s[:])
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s[0].Value.Uint64()
}
