// Package campaign turns the one-shot attack scenarios of internal/attack
// into a full sweep axis: a grid of scenario x protection x core-count x
// background-workload, where every grid point boots a platform, streams
// benign traffic on the non-attacker cores, injects the attack at a
// deterministic cycle, and reports containment the way the benign sweep
// reports performance — one structured Record per run, with the same
// per-core and per-firewall snapshots, streamed as JSONL or CSV through
// internal/sweep's credit-bounded reorder buffer. That is what the paper's
// §III–§V argument actually claims: the distributed firewalls detect and
// contain attacks *under concurrent load*, not on an idle platform.
//
// Every run is really a twin run (soc.Pair): the attacked platform and an
// attack-free twin execute identically — same setup, same background
// kernels, same cycle count at injection time — so the background
// traffic's slowdown attributes the bystander cost of the attack (the
// generalization of the old ad-hoc DoS slowdown measurement) to the attack
// alone. Records are deterministic, so campaign streams are byte-identical
// across worker counts and across -shard i/n + sweep.Merge, exactly like
// benign sweeps.
package campaign

import (
	"context"
	"fmt"
	"math"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/recovery"
	"repro/internal/soc"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// Default per-run parameters, applied by Normalize when a Config leaves
// the corresponding field zero.
const (
	DefaultBackground  = "stream"
	DefaultAccesses    = 128
	DefaultCompute     = 4
	DefaultInjectDelay = 500
	DefaultMaxCycles   = 2_000_000
)

// Config is one campaign grid point: which attack, against which platform,
// under which benign background load.
type Config struct {
	// Scenario names the attack (attack.Names).
	Scenario string `json:"scenario"`
	// Protection selects the security architecture.
	Protection soc.Protection `json:"-"`
	// NumCores is the processor count (soc default when zero).
	NumCores int `json:"num_cores"`
	// Background is the benign kernel streamed on every core the scenario
	// does not reserve (BackgroundNames, or none): stream/mix/memcopy on
	// internal BRAM, or the external-memory set — secure-stream and
	// secure-scrub through the CM+IM zone, cipher-mix through the CM-only
	// zone — which routes benign traffic through the Local Ciphering
	// Firewall so it contends with the attack inside the CC/IC pipeline.
	Background string `json:"background"`
	// Accesses and Compute parameterize the background kernel.
	Accesses int `json:"accesses"`
	Compute  int `json:"compute"`
	// InjectDelay is how many cycles after the background starts the
	// attack fires. Fixed per grid point, so injection lands at the same
	// absolute cycle on the attacked platform and its twin. Zero selects
	// DefaultInjectDelay (use 1 to fire effectively at background start);
	// it must be shorter than the background's runtime or the run is
	// refused.
	InjectDelay uint64 `json:"inject_delay"`
	// MaxCycles bounds the post-injection measured window.
	MaxCycles uint64 `json:"max_cycles"`
	// Recovery, when enabled, drives the run through the third campaign
	// phase: the quarantine Reactor is armed on distributed platforms, a
	// deterministic supervisor releases quarantined masters after
	// Recovery.ClearDelay (optionally staged), and background throughput
	// is sampled in lockstep windows against the twin so the record
	// prices react latency, quarantine duration and recovery time. Shared
	// across the grid like Accesses/Compute — it is not a grid axis.
	Recovery recovery.Params `json:"-"`
}

// Normalize fills defaulted fields in place and returns the config.
func (c Config) Normalize() Config {
	if c.NumCores == 0 {
		c.NumCores = 3
	}
	if c.Background == "" {
		c.Background = DefaultBackground
	}
	if c.Accesses == 0 {
		c.Accesses = DefaultAccesses
	}
	if c.Compute == 0 {
		c.Compute = DefaultCompute
	}
	if c.InjectDelay == 0 {
		c.InjectDelay = DefaultInjectDelay
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = DefaultMaxCycles
	}
	c.Recovery = c.Recovery.Normalize()
	return c
}

// Name is the grid point's stable identifier.
func (c Config) Name() string {
	c = c.Normalize()
	return fmt.Sprintf("%s/%s/%s/c%d", c.Scenario, c.Protection, c.Background, c.NumCores)
}

// Weight estimates the grid point's relative cost for shard balancing: the
// protection factor of the benign sweep, doubled for the DoS flood (its
// attacker never halts, so the attacked half runs the background out on a
// congested bus), doubled again for external-memory backgrounds (every
// benign access crosses the LCF's crypto pipeline).
func (c Config) Weight() float64 {
	w := sweep.Config{Protection: c.Protection}.Weight()
	if c.Scenario == "dos-flood" {
		w *= 2
	}
	if BackgroundExternal(c.Background) {
		w *= 2
	}
	return w
}

// Weights maps Config.Weight over a grid, in the form sweep.Shard.Slice
// and sweep.Stream consume.
func Weights(cfgs []Config) []float64 {
	w := make([]float64, len(cfgs))
	for i, c := range cfgs {
		w[i] = c.Weight()
	}
	return w
}

// Grid builds the cross product of the campaign axes in deterministic
// order (scenario outermost, background innermost). Shared parameters
// apply to every point; zero values select the defaults.
func Grid(scenarios []string, prots []soc.Protection, coreCounts []int, backgrounds []string, accesses, compute int, injectDelay, maxCycles uint64) []Config {
	var grid []Config
	for _, sc := range scenarios {
		for _, p := range prots {
			for _, n := range coreCounts {
				for _, bg := range backgrounds {
					grid = append(grid, Config{
						Scenario:    sc,
						Protection:  p,
						NumCores:    n,
						Background:  bg,
						Accesses:    accesses,
						Compute:     compute,
						InjectDelay: injectDelay,
						MaxCycles:   maxCycles,
					}.Normalize())
				}
			}
		}
	}
	return grid
}

// WithRecovery returns the grid with the reaction-and-recovery phase
// enabled on every point (Grid keeps its axis-only signature; recovery
// parameters are shared run plumbing, like Accesses).
func WithRecovery(cfgs []Config, p recovery.Params) []Config {
	out := append([]Config(nil), cfgs...)
	for i := range out {
		out[i].Recovery = p.Normalize()
	}
	return out
}

// Record is the outcome of one campaign run: the grid position, the
// containment verdict with per-firewall attribution, the twin-run
// economics, and the same per-core / per-firewall breakdowns the benign
// sweep reports. Every field derives from the deterministic simulation, so
// identical configs yield identical records.
type Record struct {
	// Index is the run's global grid position — global even in sharded
	// campaigns, which is what lets sweep.Merge reconstruct the unsharded
	// stream.
	Index      int    `json:"index"`
	Name       string `json:"name"`
	Scenario   string `json:"scenario"`
	Protection string `json:"protection"`
	Background string `json:"background"`
	NumCores   int    `json:"num_cores"`

	// Detected: at least one firewall alert attributable to the attack;
	// DetectedBy names the enforcement point that raised the first one and
	// Violation its class. DetectLatency is cycles from injection to that
	// alert.
	Detected      bool   `json:"detected"`
	DetectedBy    string `json:"detected_by,omitempty"`
	Violation     string `json:"violation,omitempty"`
	DetectLatency uint64 `json:"detect_latency"`
	// Contained: the attacker's goal failed. Goal carries the scenario's
	// measurement behind the verdict.
	Contained bool   `json:"contained"`
	Goal      string `json:"goal,omitempty"`

	// InjectCycle is the absolute cycle the attack fired. AttackCycles and
	// TwinCycles are the background traffic's duration (from background
	// start to last background core halting) on the attacked platform and
	// its attack-free twin; Slowdown is their ratio (0 when no background
	// ran). Completed reports both windows finished within MaxCycles.
	InjectCycle  uint64  `json:"inject_cycle"`
	AttackCycles uint64  `json:"attack_cycles"`
	TwinCycles   uint64  `json:"twin_cycles"`
	Slowdown     float64 `json:"slowdown"`
	Completed    bool    `json:"completed"`
	Alerts       int     `json:"alerts"`

	// Reaction & recovery: present only when Config.Recovery was enabled
	// (RecoveryOn). ReactLatency is first alert → deny-all written;
	// QuarantinedCycles totals locked-out cycles (staged probation
	// included); Recovered/RecoveryCycles report background throughput
	// returning to within epsilon of the twin's after the (last) release.
	// Platforms that cannot quarantine — the centralized baseline, the
	// unprotected one — carry RecoveryOn with everything else zero: the
	// measured absence of reaction.
	RecoveryOn        bool              `json:"recovery,omitempty"`
	ReactLatency      uint64            `json:"react_latency,omitempty"`
	QuarantineCycle   uint64            `json:"quarantine_cycle,omitempty"`
	ReleaseCycle      uint64            `json:"release_cycle,omitempty"`
	QuarantinedCycles uint64            `json:"quarantined_cycles,omitempty"`
	RecoveryCycles    uint64            `json:"recovery_cycles,omitempty"`
	Recovered         bool              `json:"recovered,omitempty"`
	Quarantines       uint64            `json:"quarantines,omitempty"`
	TwinRate          float64           `json:"twin_rate,omitempty"`
	Windows           []recovery.Sample `json:"windows,omitempty"`

	// Cores and Firewalls snapshot the attacked platform after the
	// verdict, exactly like the benign sweep's RunResult.
	Cores     []soc.CoreStat  `json:"cores,omitempty"`
	Firewalls []core.Snapshot `json:"firewalls,omitempty"`

	Err string `json:"error,omitempty"`
}

// Background kernels run in a per-core slice of shared BRAM well clear of
// the scratch addresses the scenarios probe (dma-hijack checks BRAM word
// 0; the legacy DoS victim streams the first 2 KiB). External-memory
// backgrounds get per-core slices of the DDR's protected zones instead,
// above the first leaves the memory-attack scenarios target
// (tamper/replay/relocate/spoof probe SecureBase+0x40..0x400, the cipher
// probe CipherBase+0x40).
const (
	bgBase = soc.BRAMBase + 0x4000
	bgSpan = uint32(0x800)

	extBgSecure = soc.SecureBase + 0x1000
	extBgCipher = soc.CipherBase + 0x1000
	extBgSpan   = uint32(0x400) // 16 cores x 1 KiB fits either 32 KiB zone
)

// BackgroundNames lists the accepted benign kernels, internal first.
func BackgroundNames() []string {
	return []string{"stream", "mix", "memcopy", "secure-stream", "secure-scrub", "cipher-mix"}
}

// BackgroundExternal reports whether the named background runs in external
// memory, i.e. routes its traffic through the Local Ciphering Firewall on
// protected platforms.
func BackgroundExternal(name string) bool {
	switch name {
	case "secure-stream", "secure-scrub", "cipher-mix":
		return true
	}
	return false
}

// backgroundCores returns the cores carrying benign load: everything the
// scenario did not reserve.
func backgroundCores(n int, reserved []int) []int {
	taken := make(map[int]bool, len(reserved))
	for _, r := range reserved {
		taken[r] = true
	}
	var out []int
	for i := 0; i < n; i++ {
		if !taken[i] {
			out = append(out, i)
		}
	}
	return out
}

// backgroundSource is the single source of truth for the benign kernel
// set: it assembles the named kernel for the given core's BRAM slice (and
// thereby validates the name, core or no core).
func backgroundSource(name string, core int, accesses, compute int) (string, error) {
	base := bgBase + uint32(core)*bgSpan
	switch name {
	case "mix":
		return workload.Mix(base, bgSpan, 4, accesses, compute), nil
	case "stream":
		words := accesses
		if max := int(bgSpan / 4); words > max {
			words = max
		}
		return workload.Stream(base, words, 4, 0), nil
	case "memcopy":
		words := accesses
		if max := int(bgSpan / 8); words > max {
			words = max
		}
		return workload.MemCopy(base, base+bgSpan/2, words), nil
	case "secure-stream":
		ext := extBgSecure + uint32(core)*extBgSpan
		words := accesses
		if max := int(extBgSpan / 4); words > max {
			words = max
		}
		return workload.Stream(ext, words, 4, 0), nil
	case "secure-scrub":
		ext := extBgSecure + uint32(core)*extBgSpan
		words := accesses
		if max := int(extBgSpan / 4); words > max {
			words = max
		}
		return workload.Scrub(ext, words, 4), nil
	case "cipher-mix":
		ext := extBgCipher + uint32(core)*extBgSpan
		return workload.Mix(ext, extBgSpan, 4, accesses, compute), nil
	default:
		return "", fmt.Errorf("campaign: unknown background %q (want one of %v or none)", name, BackgroundNames())
	}
}

// loadBackground loads the named benign kernel onto each listed core.
// soc's Load revives the halted cores, so the background starts at the
// cycle it is loaded.
func loadBackground(s *soc.System, name string, cores []int, accesses, compute int) error {
	for _, i := range cores {
		src, err := backgroundSource(name, i, accesses, compute)
		if err != nil {
			return err
		}
		if err := s.Load(i, src); err != nil {
			return err
		}
	}
	return nil
}

// RunOne executes a single campaign grid point: boot the twin pair, run
// the scenario's setup on both, start the background, inject on the
// attacked half at the deterministic cycle, measure both background
// windows, and classify. The caller owns Index; RunOne leaves it zero.
func RunOne(cfg Config) Record {
	return RunOneTrace(cfg, nil)
}

// RunOneTrace is RunOne with an incident tracer attached to the attacked
// platform: alerts, reactor transitions, the injection marker, recovery
// throughput windows, core halts and quarantine spans land in tr as the
// run executes. A nil tracer is RunOne exactly — no subscriptions, no
// extra work on the hot path.
func RunOneTrace(cfg Config, tr *obs.Tracer) Record {
	cfg = cfg.Normalize()
	rec := Record{
		Name:       cfg.Name(),
		Scenario:   cfg.Scenario,
		Protection: cfg.Protection.String(),
		Background: cfg.Background,
		NumCores:   cfg.NumCores,
	}
	fail := func(err error) Record {
		rec.Err = err.Error()
		return rec
	}

	// Each half of the pair needs its own scenario instance: Setup binds
	// per-run state (probe masters, memory snapshots) to its platform.
	scAtk, err := attack.New(cfg.Scenario)
	if err != nil {
		return fail(err)
	}
	scTwin, _ := attack.New(cfg.Scenario)
	if cfg.NumCores < scAtk.MinCores() {
		return fail(fmt.Errorf("campaign: %s needs >= %d cores, have %d",
			cfg.Scenario, scAtk.MinCores(), cfg.NumCores))
	}
	if cfg.Background != "none" {
		// Validate the kernel name up front (even when the scenario
		// reserves every core and nothing would be loaded).
		if _, err := backgroundSource(cfg.Background, 0, cfg.Accesses, cfg.Compute); err != nil {
			return fail(err)
		}
	}

	socCfg := soc.Config{Protection: cfg.Protection, NumCores: cfg.NumCores}
	if cfg.Recovery.Enabled() {
		// Arm the quarantine Reactor (distributed platforms only; the
		// baselines ignore the knob — their inability to react is the
		// result). Both halves get identical configs so the pair stays
		// cycle-identical up to injection.
		socCfg.QuarantineThreshold = cfg.Recovery.QuarantineThreshold
		socCfg.QuarantineWindow = cfg.Recovery.QuarantineWindow
	}
	pair, err := soc.NewPair(socCfg)
	if err != nil {
		return fail(err)
	}
	// The tracer watches the attacked half only; the twin is the
	// counterfactual baseline, not a timeline of interest.
	obs.Attach(tr, pair.Attacked)
	var sup *recovery.Supervisor
	if cfg.Recovery.Enabled() {
		rec.RecoveryOn = true
		sup = recovery.Attach(pair.Attacked, cfg.Recovery)
	}
	bg := backgroundCores(cfg.NumCores, scAtk.Reserved(cfg.NumCores))

	// Identical pre-attack phase on both halves: quiesce the cores, run
	// the scenario's setup (victim writes on a quiet platform), start the
	// background. Determinism makes both engines land on the same cycle.
	prep := func(s *soc.System, sc attack.Scenario) error {
		s.HaltIdleCores()
		if err := sc.Setup(s); err != nil {
			return err
		}
		if cfg.Background != "none" {
			return loadBackground(s, cfg.Background, bg, cfg.Accesses, cfg.Compute)
		}
		return nil
	}
	if err := prep(pair.Attacked, scAtk); err != nil {
		return fail(err)
	}
	if err := prep(pair.Twin, scTwin); err != nil {
		return fail(err)
	}
	start := pair.Attacked.Eng.Now()
	if twinStart := pair.Twin.Eng.Now(); twinStart != start {
		return fail(fmt.Errorf("campaign: twin diverged before injection (%d vs %d)", twinStart, start))
	}

	injectAt := start + cfg.InjectDelay
	pair.Attacked.RunToCycle(injectAt)
	pair.Twin.RunToCycle(injectAt)
	rec.InjectCycle = injectAt
	if cfg.Background != "none" && len(bg) > 0 && pair.Attacked.CoresHalted(bg...) {
		// The background ran out before the attack fired: the record
		// would claim containment of an attack nothing witnessed (and the
		// slowdown would be a meaningless 1.0). Refuse rather than
		// mislead — the caller must shorten -inject-delay or lengthen the
		// background.
		return fail(fmt.Errorf("campaign: background finished before injection at cycle %d (inject delay %d too long for %s/%d accesses)",
			injectAt, cfg.InjectDelay, cfg.Background, cfg.Accesses))
	}
	tr.Emit(obs.Event{Kind: obs.KindInject, Cycle: injectAt,
		Track: obs.TrackAttack, Name: "inject", Arg: cfg.Scenario})
	if err := scAtk.Inject(pair.Attacked); err != nil {
		return fail(err)
	}

	switch {
	case cfg.Background == "none" || len(bg) == 0:
		// Quiet grid point: no bystanders to measure. Run the attacked
		// half out (hijacked programs execute; never-halting floods are
		// budget-bounded) so the verdict matches the one-shot attack.Run
		// semantics; the twin stays parked at the injection cycle.
		// Completed stays honest: a flood that spins to the budget is a
		// truncated window, not a finished one. The supervisor's release
		// events still fire inside the run, so the reactor stamps are
		// harvested even without a throughput timeline.
		_, rec.Completed = pair.Attacked.Run(cfg.MaxCycles)
		if cfg.Recovery.Enabled() {
			rec.applyRecovery(recovery.Summarize(pair.Attacked))
		}
	case cfg.Recovery.Enabled():
		// Third phase: lockstep sampling windows drive both halves,
		// the supervisor releases on schedule, and the report prices the
		// whole incident. Windowed stepping stops each half at exactly
		// the cycle the plain RunUntilCores path would, so the twin-run
		// economics below stay comparable across modes.
		rep := recovery.Measure(pair, bg, cfg.MaxCycles, cfg.Recovery)
		rec.Completed = rep.Completed
		rec.applyRecovery(rep)
		rec.AttackCycles = pair.Attacked.Eng.Now() - start
		rec.TwinCycles = pair.Twin.Eng.Now() - start
		if rec.TwinCycles > 0 {
			rec.Slowdown = float64(rec.AttackCycles) / float64(rec.TwinCycles)
		}
	default:
		// Measured window: from background start until the background
		// cores halt on each half (never-halting attackers are excluded
		// from the halt condition by construction).
		_, okA := pair.Attacked.RunUntilCores(cfg.MaxCycles, bg...)
		_, okT := pair.Twin.RunUntilCores(cfg.MaxCycles, bg...)
		rec.Completed = okA && okT
		rec.AttackCycles = pair.Attacked.Eng.Now() - start
		rec.TwinCycles = pair.Twin.Eng.Now() - start
		if rec.TwinCycles > 0 {
			rec.Slowdown = float64(rec.AttackCycles) / float64(rec.TwinCycles)
		}
	}
	if sup != nil && sup.Err != nil {
		return fail(sup.Err)
	}

	v := scAtk.Verify(pair.Attacked, rec.Slowdown)
	rec.Contained = !v.GoalMet
	rec.Goal = v.Notes

	alerts := pair.Attacked.Alerts.Since(injectAt)
	rec.Alerts = len(alerts)
	if len(alerts) > 0 {
		rec.Detected = true
		rec.DetectedBy = alerts[0].FirewallID
		rec.Violation = alerts[0].Violation.String()
		rec.DetectLatency = alerts[0].Cycle - injectAt
	}
	rec.Cores = pair.Attacked.CoreStats()
	rec.Firewalls = pair.Attacked.FirewallStats()
	for _, s := range rec.Windows {
		tr.Emit(obs.Event{Kind: obs.KindWindow, Cycle: s.End,
			Value: ratioMilli(s.Ratio), Track: obs.TrackThroughput, Name: "window"})
	}
	obs.Harvest(tr, pair.Attacked)
	return rec
}

// ratioMilli fixes a throughput ratio into thousandths for the trace's
// counter track.
func ratioMilli(v float64) uint64 {
	if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return uint64(math.Round(v * 1000))
}

// applyRecovery copies the incident bill into the record.
func (r *Record) applyRecovery(rep recovery.Report) {
	r.ReactLatency = rep.ReactLatency
	r.QuarantineCycle = rep.QuarantineCycle
	r.ReleaseCycle = rep.ReleaseCycle
	r.QuarantinedCycles = rep.QuarantinedCycles
	r.RecoveryCycles = rep.RecoveryCycles
	r.Recovered = rep.Recovered
	r.Quarantines = rep.Quarantines
	r.TwinRate = rep.TwinRate
	r.Windows = rep.Windows
}

// Each executes this shard's portion of the grid on a worker pool and
// calls emit once per run in ascending global grid index order — the
// campaign instantiation of sweep.Stream, with cost-aware shard slicing
// (Weights). See sweep.Stream for the reorder-buffer and cancellation
// contract.
func Each(cfgs []Config, sh sweep.Shard, workers int, emit func(Record) error) error {
	return EachContext(context.Background(), cfgs, sh, workers, emit)
}

// EachContext is Each with cancellation — see sweep.StreamContext for the
// contract a canceled context buys.
func EachContext(ctx context.Context, cfgs []Config, sh sweep.Shard, workers int, emit func(Record) error) error {
	return sweep.StreamContext(ctx, len(cfgs), sh, Weights(cfgs), workers, func(i int) Record {
		r := RunOne(cfgs[i])
		r.Index = i
		return r
	}, emit)
}

// traced pairs a record with its run's tracer for the reorder pipeline.
type traced struct {
	rec Record
	tr  *obs.Tracer
}

// EachTrace is EachContext with a fresh bounded tracer per run (limit
// events each; a non-positive limit disables tracing and passes nil
// tracers). Tracers ride the same index-ordered reorder pipeline as their
// records, so emit sees run i's record and trace together, in ascending
// global grid order — which is what makes a whole campaign's concatenated
// trace byte-identical across worker counts.
func EachTrace(ctx context.Context, cfgs []Config, sh sweep.Shard, workers, limit int, emit func(Record, *obs.Tracer) error) error {
	return sweep.StreamContext(ctx, len(cfgs), sh, Weights(cfgs), workers, func(i int) traced {
		tr := obs.New(limit)
		r := RunOneTrace(cfgs[i], tr)
		r.Index = i
		return traced{rec: r, tr: tr}
	}, func(t traced) error {
		return emit(t.rec, t.tr)
	})
}
