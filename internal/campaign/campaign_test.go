package campaign_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/recovery"
	"repro/internal/soc"
	"repro/internal/sweep"
)

// smallGrid is the fast grid the determinism and streaming tests share:
// one external-memory attack, one hijacked-IP attack and the DoS flood
// against all three architectures.
func smallGrid() []campaign.Config {
	return campaign.Grid(
		[]string{"tamper", "zone-escape", "dos-flood"},
		[]soc.Protection{soc.Unprotected, soc.Distributed, soc.Centralized},
		[]int{3},
		[]string{"stream"},
		24, 2, 100, 1_000_000,
	)
}

func TestGridCrossProduct(t *testing.T) {
	grid := campaign.Grid(
		[]string{"tamper", "dos-flood"},
		[]soc.Protection{soc.Unprotected, soc.Distributed},
		[]int{2, 3},
		[]string{"stream", "none"},
		0, 0, 0, 0,
	)
	if len(grid) != 16 {
		t.Fatalf("grid size = %d, want 16", len(grid))
	}
	// Deterministic order: scenario outermost, background innermost.
	if grid[0].Name() != "tamper/unprotected/stream/c2" {
		t.Fatalf("grid[0] = %s", grid[0].Name())
	}
	if grid[15].Name() != "dos-flood/distributed-firewalls/none/c3" {
		t.Fatalf("grid[15] = %s", grid[15].Name())
	}
}

// TestContainmentMatrix is the acceptance check for the campaign's core
// claim: under concurrent benign load, the unprotected platform lets
// attacks succeed silently while the distributed firewalls detect them —
// with per-firewall attribution — and contain them.
func TestContainmentMatrix(t *testing.T) {
	for _, sc := range []string{"tamper", "replay", "zone-escape", "dma-hijack", "dos-flood"} {
		un := campaign.RunOne(campaign.Config{Scenario: sc, Protection: soc.Unprotected})
		if un.Err != "" {
			t.Fatalf("%s unprotected: %s", sc, un.Err)
		}
		if un.Detected || un.Contained {
			t.Errorf("%s on unprotected: detected=%v contained=%v (goal %s) — attack should succeed silently",
				sc, un.Detected, un.Contained, un.Goal)
		}
		di := campaign.RunOne(campaign.Config{Scenario: sc, Protection: soc.Distributed})
		if di.Err != "" {
			t.Fatalf("%s distributed: %s", sc, di.Err)
		}
		if !di.Detected || !di.Contained {
			t.Errorf("%s on distributed: detected=%v contained=%v (goal %s)",
				sc, di.Detected, di.Contained, di.Goal)
		}
		if di.DetectedBy == "" || di.Violation == "" {
			t.Errorf("%s on distributed: no per-firewall attribution (%+v)", sc, di)
		}
	}
}

// TestDoSEconomics pins the paper's §III-C containment argument in the
// twin-run numbers: the flood starves bystanders on the unprotected bus,
// the centralized SEM detects it but cannot keep it off the shared bus,
// and the distributed firewall absorbs it in the attacker's own interface.
func TestDoSEconomics(t *testing.T) {
	run := func(p soc.Protection) campaign.Record {
		r := campaign.RunOne(campaign.Config{Scenario: "dos-flood", Protection: p})
		if r.Err != "" {
			t.Fatalf("%v: %s", p, r.Err)
		}
		if !r.Completed || r.TwinCycles == 0 {
			t.Fatalf("%v: background window not measured: %+v", p, r)
		}
		return r
	}
	un, ce, di := run(soc.Unprotected), run(soc.Centralized), run(soc.Distributed)
	if un.Slowdown < 1.10 {
		t.Errorf("unprotected bystanders barely slowed (%.2fx) — flood not reaching the bus?", un.Slowdown)
	}
	if !ce.Detected || ce.Contained {
		t.Errorf("centralized: detected=%v contained=%v — the SEM should see the flood but fail to contain it",
			ce.Detected, ce.Contained)
	}
	if ce.Slowdown <= di.Slowdown {
		t.Errorf("centralized slowdown %.2fx not worse than distributed %.2fx", ce.Slowdown, di.Slowdown)
	}
	if !di.Contained || di.Slowdown >= 1.10 {
		t.Errorf("distributed: contained=%v slowdown=%.2fx — flood should die in the attacker's interface",
			di.Contained, di.Slowdown)
	}
}

// TestExternalAttackCostsBystandersNothing: poking external memory is
// instantaneous, so the attacked half and the twin stay cycle-identical —
// the twin plumbing itself is what this pins.
func TestExternalAttackCostsBystandersNothing(t *testing.T) {
	r := campaign.RunOne(campaign.Config{Scenario: "tamper", Protection: soc.Distributed})
	if r.Err != "" {
		t.Fatal(r.Err)
	}
	if r.AttackCycles != r.TwinCycles || r.Slowdown != 1.0 {
		t.Fatalf("twin diverged without cause: attack=%d twin=%d slowdown=%v",
			r.AttackCycles, r.TwinCycles, r.Slowdown)
	}
}

func TestRecordBreakdownsPresent(t *testing.T) {
	r := campaign.RunOne(campaign.Config{Scenario: "zone-escape", Protection: soc.Distributed})
	if len(r.Cores) != r.NumCores {
		t.Fatalf("%d core breakdowns for %d cores", len(r.Cores), r.NumCores)
	}
	// numCores master LFs + lf-dma + 4 slave LFs + the LCF.
	if want := r.NumCores + 6; len(r.Firewalls) != want {
		t.Fatalf("%d firewall snapshots, want %d", len(r.Firewalls), want)
	}
	var blocked uint64
	for _, f := range r.Firewalls {
		blocked += f.Blocked
	}
	if blocked == 0 {
		t.Fatal("attack run shows no blocked transfers in the firewall breakdown")
	}
}

// TestExternalBackgroundsRouteThroughLCF: the external-memory background
// kernels must put benign traffic through the Local Ciphering Firewall —
// visible as CC/IC cycles in its snapshot — while the attack still gets
// detected and contained. This is the campaign axis the secured-memory
// path speedup opens: attack and benign traffic contending inside the LCF.
func TestExternalBackgroundsRouteThroughLCF(t *testing.T) {
	lcfOf := func(r campaign.Record) (core.Snapshot, bool) {
		for _, f := range r.Firewalls {
			if f.Kind == core.KindCipherLF {
				return f, true
			}
		}
		return core.Snapshot{}, false
	}
	baseline := campaign.RunOne(campaign.Config{
		Scenario: "zone-escape", Protection: soc.Distributed, Background: "stream"})
	if baseline.Err != "" {
		t.Fatal(baseline.Err)
	}
	base, ok := lcfOf(baseline)
	if !ok {
		t.Fatal("no LCF snapshot in baseline record")
	}
	for _, bg := range []string{"secure-stream", "secure-scrub", "cipher-mix"} {
		if !campaign.BackgroundExternal(bg) {
			t.Fatalf("%s not classified external", bg)
		}
		r := campaign.RunOne(campaign.Config{
			Scenario: "zone-escape", Protection: soc.Distributed, Background: bg})
		if r.Err != "" {
			t.Fatalf("%s: %s", bg, r.Err)
		}
		if !r.Detected || !r.Contained {
			t.Errorf("%s: detected=%v contained=%v — background changed the verdict", bg, r.Detected, r.Contained)
		}
		lcf, ok := lcfOf(r)
		if !ok {
			t.Fatalf("%s: no LCF snapshot", bg)
		}
		if lcf.Checked <= base.Checked {
			t.Errorf("%s: LCF checked %d transfers, baseline %d — background not routed through it",
				bg, lcf.Checked, base.Checked)
		}
		if lcf.CryptoCycles <= base.CryptoCycles {
			t.Errorf("%s: LCF crypto cycles %d, baseline %d — background skipped the CC/IC",
				bg, lcf.CryptoCycles, base.CryptoCycles)
		}
		if r.Slowdown == 0 || !r.Completed {
			t.Errorf("%s: slowdown=%v completed=%v — twin economics missing", bg, r.Slowdown, r.Completed)
		}
	}
	if !campaign.BackgroundExternal("secure-scrub") || campaign.BackgroundExternal("stream") {
		t.Fatal("BackgroundExternal misclassifies kernels")
	}
	// External backgrounds weigh heavier for shard balancing.
	in := campaign.Config{Scenario: "tamper", Protection: soc.Distributed, Background: "stream"}
	ex := in
	ex.Background = "secure-scrub"
	if ex.Weight() <= in.Weight() {
		t.Fatalf("external background weight %v <= internal %v", ex.Weight(), in.Weight())
	}
}

// TestErrorRecords: invalid grid points must come back as structured error
// records (the stream stays intact), not panics or silence.
func TestErrorRecords(t *testing.T) {
	for name, cfg := range map[string]campaign.Config{
		"unknown scenario":   {Scenario: "heist"},
		"too few cores":      {Scenario: "zone-escape", NumCores: 1},
		"unknown background": {Scenario: "tamper", Background: "disco"},
		// The background must still be running when the attack fires —
		// otherwise the record would claim containment of an attack
		// nothing witnessed.
		"background dead at injection": {Scenario: "dos-flood", Accesses: 8, InjectDelay: 50_000},
	} {
		if r := campaign.RunOne(cfg); r.Err == "" {
			t.Errorf("%s: accepted (%+v)", name, r)
		}
	}
}

func jsonl(t *testing.T, sh sweep.Shard, workers int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := campaign.WriteJSONL(&buf, smallGrid(), sh, workers); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestJSONLWorkerCountInvariant: the campaign stream must be byte-identical
// across worker counts, like the benign sweep's.
func TestJSONLWorkerCountInvariant(t *testing.T) {
	serial := jsonl(t, sweep.Shard{}, 1)
	parallel := jsonl(t, sweep.Shard{}, 8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("JSONL differs across worker counts:\n%s\n---\n%s", serial, parallel)
	}
	lines := bytes.Split(bytes.TrimSpace(serial), []byte("\n"))
	if len(lines) != len(smallGrid()) {
		t.Fatalf("%d lines for %d grid points", len(lines), len(smallGrid()))
	}
	for i, l := range lines {
		var r campaign.Record
		if err := json.Unmarshal(l, &r); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if r.Index != i {
			t.Fatalf("line %d carries index %d — not grid-ordered", i, r.Index)
		}
		if r.Err != "" {
			t.Fatalf("%s failed: %s", r.Name, r.Err)
		}
	}
}

// TestShardMergeByteIdentical: campaign shards recombined by sweep.Merge
// must reproduce the unsharded stream byte-for-byte — campaign records
// carry the same global "index" key the merger orders on.
func TestShardMergeByteIdentical(t *testing.T) {
	full := jsonl(t, sweep.Shard{}, 4)
	s0 := jsonl(t, sweep.Shard{Index: 0, Count: 2}, 2)
	s1 := jsonl(t, sweep.Shard{Index: 1, Count: 2}, 3)
	if bytes.Equal(s0, s1) {
		t.Fatal("shards produced identical streams — sharding is not partitioning")
	}
	var merged bytes.Buffer
	if err := sweep.Merge(&merged, bytes.NewReader(s1), bytes.NewReader(s0)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full, merged.Bytes()) {
		t.Fatalf("merged shards differ from unsharded stream:\n%s\n---\n%s", full, merged.Bytes())
	}
}

// TestCostAwareShardsBalance: the campaign's weighted slicing must spread
// the expensive (centralized, dos) grid points instead of letting one
// process inherit them all round-robin.
func TestCostAwareShardsBalance(t *testing.T) {
	grid := smallGrid()
	weights := campaign.Weights(grid)
	loads := make([]float64, 2)
	var max float64
	for _, w := range weights {
		if w > max {
			max = w
		}
	}
	for i := 0; i < 2; i++ {
		for _, idx := range (sweep.Shard{Index: i, Count: 2}).Slice(len(grid), weights) {
			loads[i] += weights[idx]
		}
	}
	diff := loads[0] - loads[1]
	if diff < 0 {
		diff = -diff
	}
	if diff > max {
		t.Fatalf("shard loads %.1f vs %.1f differ by more than the largest grid point (%.1f)",
			loads[0], loads[1], max)
	}
}

func TestCSVDeterministicAndTidy(t *testing.T) {
	var a, b bytes.Buffer
	if err := campaign.WriteCSV(&a, smallGrid(), sweep.Shard{}, 4); err != nil {
		t.Fatal(err)
	}
	if err := campaign.WriteCSV(&b, smallGrid(), sweep.Shard{}, 1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("CSV differs across worker counts")
	}
	if !strings.HasPrefix(a.String(), strings.Join(campaign.CSVHeader, ",")+"\n") {
		t.Fatalf("CSV header: %.80s", a.String())
	}
	scopes := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(a.String()), "\n")[1:] {
		scopes[strings.Split(line, ",")[6]]++
	}
	if scopes["attack"] != len(smallGrid()) {
		t.Fatalf("%d attack rows for %d grid points", scopes["attack"], len(smallGrid()))
	}
	if scopes["core"] == 0 || scopes["firewall"] == 0 {
		t.Fatalf("missing breakdown rows: %+v", scopes)
	}
}

// TestEmitErrorCancelsCampaign: a failing sink stops the campaign instead
// of simulating the rest of the grid into a dead writer.
func TestEmitErrorCancelsCampaign(t *testing.T) {
	sinkErr := errors.New("sink full")
	emitted := 0
	err := campaign.Each(smallGrid(), sweep.Shard{}, 2, func(r campaign.Record) error {
		emitted++
		if emitted == 2 {
			return sinkErr
		}
		return nil
	})
	if !errors.Is(err, sinkErr) {
		t.Fatalf("Each returned %v, want the emit error", err)
	}
	if emitted != 2 {
		t.Fatalf("emit called %d times after cancellation, want 2", emitted)
	}
}

// TestRecoveryLifecycle is the acceptance check for the reaction-and-
// recovery phase: under benign load, the distributed platform quarantines
// the burst-flood attacker, the supervisor releases it on schedule, and
// background throughput recovers to within epsilon of the attack-free
// twin — while the centralized baseline detects the violations but never
// quarantines, and the unprotected platform never even detects them.
func TestRecoveryLifecycle(t *testing.T) {
	// The clear delay outlasts the quarantined burst's drain (~6.5k
	// cycles), so the release happens on a clean platform: one incident,
	// no probation flap. Shorter delays re-admit a still-hostile master
	// and flap — TestRecoveryDeterministic covers that regime.
	p := recovery.Params{QuarantineThreshold: 3, ClearDelay: 8000}
	run := func(prot soc.Protection) campaign.Record {
		r := campaign.RunOne(campaign.Config{
			Scenario: "burst-flood", Protection: prot,
			Accesses: 512, Recovery: p,
		})
		if r.Err != "" {
			t.Fatalf("%v: %s", prot, r.Err)
		}
		if !r.RecoveryOn || !r.Completed {
			t.Fatalf("%v: recovery phase did not run to completion: %+v", prot, r)
		}
		if len(r.Windows) == 0 || r.TwinRate == 0 {
			t.Fatalf("%v: no throughput timeline: %+v", prot, r)
		}
		return r
	}
	di := run(soc.Distributed)
	if di.QuarantineCycle == 0 || di.ReleaseCycle <= di.QuarantineCycle {
		t.Fatalf("distributed: no quarantine/release cycle: %+v", di)
	}
	if di.ReactLatency == 0 || di.QuarantinedCycles == 0 {
		t.Fatalf("distributed: lifecycle legs not priced: react=%d quarantined=%d",
			di.ReactLatency, di.QuarantinedCycles)
	}
	if !di.Recovered {
		t.Fatalf("distributed: background never recovered: %+v", di)
	}
	if di.Quarantines != 1 {
		t.Errorf("distributed: %d quarantines, want one clean incident", di.Quarantines)
	}
	if !di.Detected || !di.Contained {
		t.Errorf("distributed: detected=%v contained=%v — quarantine should defuse the burst",
			di.Detected, di.Contained)
	}

	ce := run(soc.Centralized)
	if !ce.Detected {
		t.Error("centralized: burst violations not detected by the SEM")
	}
	if ce.QuarantineCycle != 0 || ce.Quarantines != 0 || ce.Recovered {
		t.Errorf("centralized: baseline quarantined?! %+v", ce)
	}
	if ce.Slowdown <= di.Slowdown {
		t.Errorf("centralized slowdown %.2fx not worse than quarantining distributed %.2fx",
			ce.Slowdown, di.Slowdown)
	}

	un := run(soc.Unprotected)
	if un.Detected || un.QuarantineCycle != 0 {
		t.Errorf("unprotected: phantom detection/reaction: %+v", un)
	}
	if un.Slowdown < attack.BurstSlowdownGoal {
		t.Errorf("unprotected bystanders barely slowed (%.2fx) — burst not reaching the bus", un.Slowdown)
	}
}

// TestRecoveryOffLeavesRecordsUntouched: with the phase disabled the new
// fields stay zero-valued and omitted, so pre-recovery consumers (and the
// JSONL goldens) see the exact old schema.
func TestRecoveryOffLeavesRecordsUntouched(t *testing.T) {
	r := campaign.RunOne(campaign.Config{Scenario: "zone-escape", Protection: soc.Distributed})
	if r.Err != "" {
		t.Fatal(r.Err)
	}
	if r.RecoveryOn || r.QuarantineCycle != 0 || r.Recovered || len(r.Windows) != 0 {
		t.Fatalf("recovery fields set on a recovery-off run: %+v", r)
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"recovery", "react_latency", "windows", "recovered"} {
		if bytes.Contains(data, []byte(`"`+key+`"`)) {
			t.Fatalf("recovery-off JSONL leaks %q: %s", key, data)
		}
	}
}

// TestRecoveryDeterministic: the third phase must not cost the stream its
// byte-identity across worker counts — supervisor events and sampling
// windows are engine-deterministic.
func TestRecoveryDeterministic(t *testing.T) {
	grid := campaign.WithRecovery(campaign.Grid(
		[]string{"burst-flood", "zone-escape", "dos-flood"},
		[]soc.Protection{soc.Unprotected, soc.Distributed, soc.Centralized},
		[]int{3},
		[]string{"stream"},
		256, 2, 100, 2_000_000,
	), recovery.Params{QuarantineThreshold: 3, ClearDelay: 1500, Staged: true})
	stream := func(sh sweep.Shard, workers int) []byte {
		var buf bytes.Buffer
		if err := campaign.WriteJSONL(&buf, grid, sh, workers); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := stream(sweep.Shard{}, 1)
	parallel := stream(sweep.Shard{}, 8)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("recovery-enabled JSONL differs across worker counts")
	}
	var merged bytes.Buffer
	if err := sweep.Merge(&merged,
		bytes.NewReader(stream(sweep.Shard{Index: 0, Count: 2}, 2)),
		bytes.NewReader(stream(sweep.Shard{Index: 1, Count: 2}, 3))); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial, merged.Bytes()) {
		t.Fatal("recovery-enabled shard/merge not byte-identical")
	}
	// At least one record in the stream must carry a full lifecycle, or
	// the determinism gate would be vacuously green.
	if !bytes.Contains(serial, []byte(`"recovered":true`)) {
		t.Fatalf("no recovered run in the recovery grid:\n%s", serial)
	}
}
