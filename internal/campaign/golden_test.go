package campaign_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/campaign"
	"repro/internal/soc"
	"repro/internal/sweep"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// goldenGrid pins the serialized schema of the -attack stream across all
// three protection architectures: one external-memory attack (LCF
// attribution, crypto counters) and one hijacked-IP attack (bus-rule
// attribution) is enough to cover every field.
func goldenGrid() []campaign.Config {
	return campaign.Grid(
		[]string{"tamper", "zone-escape"},
		[]soc.Protection{soc.Unprotected, soc.Distributed, soc.Centralized},
		[]int{3},
		[]string{"stream"},
		64, 2, 100, 1_000_000,
	)
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/campaign -run TestGolden -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden output.\n--- got ---\n%s\n--- want ---\n%s\n"+
			"If the change is intentional, regenerate with -update.", name, got, want)
	}
}

// TestGoldenJSONL and TestGoldenCSV pin the -attack output formats: any
// change to the record schema or to simulation results shows up as a
// reviewable golden diff instead of silently altering downstream plots.
func TestGoldenJSONL(t *testing.T) {
	var buf bytes.Buffer
	if err := campaign.WriteJSONL(&buf, goldenGrid(), sweep.Shard{}, 4); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "campaign.jsonl.golden", buf.Bytes())
}

func TestGoldenCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := campaign.WriteCSV(&buf, goldenGrid(), sweep.Shard{}, 4); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "campaign.csv.golden", buf.Bytes())
}
