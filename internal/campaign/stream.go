package campaign

import (
	"encoding/csv"
	"io"
	"strconv"

	"repro/internal/sweep"
)

// WriteJSONL runs this shard's portion of the campaign grid and streams
// one compact JSON record per line to w, in global grid index order, as
// runs complete. Like the benign sweep the report is never buffered whole,
// a failing writer cancels the remaining grid, the byte stream is
// identical across worker counts, and the concatenation of all shards'
// streams (via sweep.Merge — campaign records carry the same "index" key)
// is identical to an unsharded run.
func WriteJSONL(w io.Writer, cfgs []Config, sh sweep.Shard, workers int) error {
	return Each(cfgs, sh, workers, sweep.EmitJSONL[Record](w))
}

// CSVHeader is the column set of the campaign CSV export. The format is
// long/tidy like the benign sweep's: every run contributes one
// scope=attack row (the containment verdict and twin-run economics), one
// scope=core row per core and one scope=firewall row per enforcement
// point, so detection-latency and per-firewall series plot directly.
var CSVHeader = []string{
	"index", "name", "scenario", "protection", "background", "num_cores",
	"scope", "entity", "kind",
	"detected", "detected_by", "violation", "detect_latency", "contained", "goal",
	"inject_cycle", "attack_cycles", "twin_cycles", "slowdown", "completed", "alerts",
	"cycles", "instructions", "stall_cycles", "local_ops", "bus_ops", "bus_errors",
	"checked", "allowed", "blocked", "check_cycles",
	"crypto_cycles", "integrity_failures",
	"error",
}

// WriteCSV runs this shard's portion of the grid and streams the
// long-form CSV to w (header first), in global grid index order, with the
// same streaming/cancellation/determinism contract as WriteJSONL.
func WriteCSV(w io.Writer, cfgs []Config, sh sweep.Shard, workers int) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(CSVHeader); err != nil {
		return err
	}
	if err := Each(cfgs, sh, workers, func(r Record) error {
		if err := writeCSVRows(cw, r); err != nil {
			return err
		}
		// Flush per run so the stream is incremental, and surface sink
		// errors now — csv.Writer otherwise swallows them until the end.
		cw.Flush()
		return cw.Error()
	}); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// writeCSVRows emits one record's rows: attack verdict, then cores, then
// firewalls.
func writeCSVRows(cw *csv.Writer, r Record) error {
	u := strconv.FormatUint
	base := []string{
		strconv.Itoa(r.Index), r.Name, r.Scenario, r.Protection, r.Background,
		strconv.Itoa(r.NumCores),
	}
	pad := func(cols ...string) []string {
		row := append(append([]string(nil), base...), cols...)
		for len(row) < len(CSVHeader)-1 {
			row = append(row, "")
		}
		return append(row, r.Err)
	}
	verdict := pad("attack", "", "",
		strconv.FormatBool(r.Detected), r.DetectedBy, r.Violation,
		u(r.DetectLatency, 10), strconv.FormatBool(r.Contained), r.Goal,
		u(r.InjectCycle, 10), u(r.AttackCycles, 10), u(r.TwinCycles, 10),
		strconv.FormatFloat(r.Slowdown, 'g', -1, 64),
		strconv.FormatBool(r.Completed), strconv.Itoa(r.Alerts))
	if err := cw.Write(verdict); err != nil {
		return err
	}
	for _, c := range r.Cores {
		row := pad("core", c.Name, "",
			"", "", "", "", "", "",
			"", "", "", "", "", "",
			u(c.Cycles, 10),
			u(c.Instructions, 10), u(c.StallCycles, 10), u(c.LocalOps, 10),
			u(c.BusOps, 10), u(c.BusErrors, 10))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	for _, f := range r.Firewalls {
		row := pad("firewall", f.ID, f.Kind,
			"", "", "", "", "", "",
			"", "", "", "", "", "",
			"",
			"", "", "", "", "",
			u(f.Checked, 10), u(f.Allowed, 10), u(f.Blocked, 10), u(f.CheckCycles, 10),
			u(f.CryptoCycles, 10), u(f.IntegrityFailures, 10))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	return nil
}
