package campaign

import (
	"encoding/csv"
	"io"
	"strconv"

	"repro/internal/sweep"
)

// WriteJSONL runs this shard's portion of the campaign grid and streams
// one compact JSON record per line to w, in global grid index order, as
// runs complete. Like the benign sweep the report is never buffered whole,
// a failing writer cancels the remaining grid, the byte stream is
// identical across worker counts, and the concatenation of all shards'
// streams (via sweep.Merge — campaign records carry the same "index" key)
// is identical to an unsharded run.
func WriteJSONL(w io.Writer, cfgs []Config, sh sweep.Shard, workers int) error {
	return Each(cfgs, sh, workers, sweep.EmitJSONL[Record](w))
}

// CSVHeader is the column set of the campaign CSV export. The format is
// long/tidy like the benign sweep's: every run contributes one
// scope=attack row (the containment verdict, twin-run economics and — in
// recovery-enabled campaigns — the incident bill), one scope=core row per
// core, one scope=firewall row per enforcement point, and one
// scope=window row per throughput sample when the reaction-and-recovery
// phase ran, so detection-latency, per-firewall and recovery-timeline
// series plot directly from the window rows.
// The recovery columns are empty — not zero — when the phase was off, so
// "did not quarantine" and "recovery disabled" stay distinguishable.
var CSVHeader = []string{
	"index", "name", "scenario", "protection", "background", "num_cores",
	"scope", "entity", "kind",
	"detected", "detected_by", "violation", "detect_latency", "contained", "goal",
	"inject_cycle", "attack_cycles", "twin_cycles", "slowdown", "completed", "alerts",
	"react_latency", "quarantine_cycle", "release_cycle", "quarantined_cycles",
	"recovery_cycles", "recovered", "quarantines",
	"window_end", "window_attacked", "window_twin", "window_ratio",
	"cycles", "instructions", "stall_cycles", "local_ops", "bus_ops", "bus_errors",
	"checked", "allowed", "blocked", "check_cycles",
	"crypto_cycles", "integrity_failures",
	"error",
}

// WriteCSV runs this shard's portion of the grid and streams the
// long-form CSV to w (header first), in global grid index order, with the
// same streaming/cancellation/determinism contract as WriteJSONL.
func WriteCSV(w io.Writer, cfgs []Config, sh sweep.Shard, workers int) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(CSVHeader); err != nil {
		return err
	}
	if err := Each(cfgs, sh, workers, func(r Record) error {
		if err := writeCSVRows(cw, r); err != nil {
			return err
		}
		// Flush per run so the stream is incremental, and surface sink
		// errors now — csv.Writer otherwise swallows them until the end.
		cw.Flush()
		return cw.Error()
	}); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// writeCSVRows emits one record's rows: attack verdict, then recovery
// windows (when the phase ran), then cores, then firewalls.
func writeCSVRows(cw *csv.Writer, r Record) error {
	u := strconv.FormatUint
	f64 := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	base := []string{
		strconv.Itoa(r.Index), r.Name, r.Scenario, r.Protection, r.Background,
		strconv.Itoa(r.NumCores),
	}
	pad := func(cols ...string) []string {
		row := append(append([]string(nil), base...), cols...)
		for len(row) < len(CSVHeader)-1 {
			row = append(row, "")
		}
		return append(row, r.Err)
	}
	// The recovery columns stay empty when the phase was off.
	rc := []string{"", "", "", "", "", "", ""}
	if r.RecoveryOn {
		rc = []string{
			u(r.ReactLatency, 10), u(r.QuarantineCycle, 10), u(r.ReleaseCycle, 10),
			u(r.QuarantinedCycles, 10), u(r.RecoveryCycles, 10),
			strconv.FormatBool(r.Recovered), u(r.Quarantines, 10),
		}
	}
	verdict := pad(append([]string{"attack", "", "",
		strconv.FormatBool(r.Detected), r.DetectedBy, r.Violation,
		u(r.DetectLatency, 10), strconv.FormatBool(r.Contained), r.Goal,
		u(r.InjectCycle, 10), u(r.AttackCycles, 10), u(r.TwinCycles, 10),
		f64(r.Slowdown),
		strconv.FormatBool(r.Completed), strconv.Itoa(r.Alerts)}, rc...)...)
	if err := cw.Write(verdict); err != nil {
		return err
	}
	for i, s := range r.Windows {
		row := pad("window", strconv.Itoa(i), "",
			"", "", "", "", "", "",
			"", "", "", "", "", "",
			"", "", "", "", "", "", "",
			u(s.End, 10), u(s.Attacked, 10), u(s.Twin, 10), f64(s.Ratio))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	for _, c := range r.Cores {
		row := pad("core", c.Name, "",
			"", "", "", "", "", "",
			"", "", "", "", "", "",
			"", "", "", "", "", "", "",
			"", "", "", "",
			u(c.Cycles, 10),
			u(c.Instructions, 10), u(c.StallCycles, 10), u(c.LocalOps, 10),
			u(c.BusOps, 10), u(c.BusErrors, 10))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	for _, f := range r.Firewalls {
		row := pad("firewall", f.ID, f.Kind,
			"", "", "", "", "", "",
			"", "", "", "", "", "",
			"", "", "", "", "", "", "",
			"", "", "", "",
			"",
			"", "", "", "", "",
			u(f.Checked, 10), u(f.Allowed, 10), u(f.Blocked, 10), u(f.CheckCycles, 10),
			u(f.CryptoCycles, 10), u(f.IntegrityFailures, 10))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	return nil
}
