package workload_test

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/soc"
	"repro/internal/workload"
)

// assembleAll ensures every generator emits valid MB32 assembly across its
// parameter space.
func TestGeneratorsAssemble(t *testing.T) {
	srcs := map[string]string{
		"memcopy":   workload.MemCopy(soc.BRAMBase, soc.BRAMBase+0x100, 8),
		"stream":    workload.Stream(soc.DDRBase, 64, 4, soc.BRAMBase),
		"stream0":   workload.Stream(soc.DDRBase, 64, 32, 0),
		"mix":       workload.Mix(soc.BRAMBase, 0x1000, 4, 100, 16),
		"mix-nocmp": workload.Mix(soc.BRAMBase, 0x1000, 4, 10, 0),
		"matmul":    workload.MatMulLocal(8, soc.BRAMBase),
		"producer":  workload.Producer(soc.MboxBase, 10),
		"consumer":  workload.Consumer(soc.MboxBase, 10, soc.BRAMBase),
		"scrub":     workload.Scrub(soc.SecureBase, 32, 4),
		"dos":       workload.DoSFlood(soc.NodeBase),
		"format":    workload.FormatAbuse(soc.DMABase, 3, 0xF000),
		"escape":    workload.ZoneEscape([]uint32{soc.DMABase, soc.NodeBase}, 0xF000),
	}
	for name, src := range srcs {
		if _, err := isa.Assemble(src, 0); err != nil {
			t.Errorf("%s does not assemble: %v", name, err)
		}
	}
}

func TestMemCopyMovesData(t *testing.T) {
	s := soc.MustNew(soc.Config{Protection: soc.Unprotected})
	s.HaltIdleCores(0)
	for i := uint32(0); i < 16; i++ {
		s.BRAM.Store().WriteWord(soc.BRAMBase+4*i, 0xC0_0000|i)
	}
	s.MustLoad(0, workload.MemCopy(soc.BRAMBase, soc.BRAMBase+0x1000, 16))
	if _, ok := s.Run(1_000_000); !ok {
		t.Fatal("memcopy did not finish")
	}
	for i := uint32(0); i < 16; i++ {
		if got := s.BRAM.Store().ReadWord(soc.BRAMBase + 0x1000 + 4*i); got != 0xC0_0000|i {
			t.Fatalf("word %d = %#x", i, got)
		}
	}
}

func TestMatMulChecksumMatchesReference(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		s := soc.MustNew(soc.Config{Protection: soc.Unprotected})
		s.HaltIdleCores(0)
		s.MustLoad(0, workload.MatMulLocal(n, soc.BRAMBase+0x40))
		if _, ok := s.Run(20_000_000); !ok {
			t.Fatalf("n=%d did not finish", n)
		}
		want := workload.MatMulChecksum(n)
		if got := s.BRAM.Store().ReadWord(soc.BRAMBase + 0x40); got != want {
			t.Errorf("n=%d checksum %#x, want %#x", n, got, want)
		}
	}
}

func TestMatMulLocalBounds(t *testing.T) {
	for _, n := range []int{0, 32, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MatMulLocal(%d) did not panic", n)
				}
			}()
			workload.MatMulLocal(n, 0)
		}()
	}
}

func TestMixComputeRatioScalesCycles(t *testing.T) {
	run := func(iters int) uint64 {
		s := soc.MustNew(soc.Config{Protection: soc.Unprotected})
		s.HaltIdleCores(0)
		s.MustLoad(0, workload.Mix(soc.BRAMBase, 0x1000, 4, 50, iters))
		c, ok := s.Run(10_000_000)
		if !ok {
			t.Fatal("mix did not finish")
		}
		return c
	}
	lean, heavy := run(0), run(64)
	if heavy <= lean*2 {
		t.Fatalf("compute knob ineffective: %d vs %d cycles", lean, heavy)
	}
}

func TestMixWrapsWithinSpan(t *testing.T) {
	// More accesses than span/stride forces the wrap path; all traffic
	// must stay in-zone (no alerts under distributed protection).
	s := soc.MustNew(soc.Config{Protection: soc.Distributed})
	s.HaltIdleCores(0)
	s.MustLoad(0, workload.Mix(soc.BRAMBase, 0x40, 4, 64, 0))
	if _, ok := s.Run(10_000_000); !ok {
		t.Fatal("wrapping mix did not finish")
	}
	if s.Alerts.Len() != 0 {
		t.Fatalf("mix escaped its span: %v", s.Alerts.All())
	}
}

func TestMixValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero stride accepted")
		}
	}()
	workload.Mix(0, 0x100, 0, 1, 1)
}

func TestProducerChecksumReference(t *testing.T) {
	// sum of 1, 8, 15, ... count terms
	if got := workload.ProducerChecksum(1); got != 1 {
		t.Fatalf("count=1: %d", got)
	}
	if got := workload.ProducerChecksum(3); got != 1+8+15 {
		t.Fatalf("count=3: %d", got)
	}
}

func TestCRC32KernelMatchesReference(t *testing.T) {
	s := soc.MustNew(soc.Config{Protection: soc.Distributed})
	s.HaltIdleCores(0)
	data := make([]uint32, 8)
	for i := range data {
		data[i] = uint32(i)*2654435761 + 1
		s.BRAM.Store().WriteWord(soc.BRAMBase+0x100+uint32(i)*4, data[i])
	}
	s.MustLoad(0, workload.CRC32(soc.BRAMBase+0x100, len(data), soc.BRAMBase+0x40))
	if _, ok := s.Run(10_000_000); !ok {
		t.Fatal("crc kernel did not finish")
	}
	want := workload.CRC32Ref(data)
	if got := s.BRAM.Store().ReadWord(soc.BRAMBase + 0x40); got != want {
		t.Fatalf("crc = %#x, want %#x", got, want)
	}
}

// TestScrubThroughSecureZone drives the read-modify-write kernel through
// the Local Ciphering Firewall: every word round-trips through decrypt /
// re-encrypt plus a tree verify+update, the memory image stays authentic,
// and the plaintext matches the pure-Go reference.
func TestScrubThroughSecureZone(t *testing.T) {
	const base, words = soc.SecureBase + 0x1000, 8
	s := soc.MustNew(soc.Config{Protection: soc.Distributed})
	s.HaltIdleCores(0)
	s.MustLoad(0, workload.Scrub(base, words, 4))
	if _, ok := s.Run(10_000_000); !ok {
		t.Fatal("scrub did not finish")
	}
	if s.Alerts.Len() != 0 {
		t.Fatalf("benign scrub raised alerts: %v", s.Alerts.All())
	}
	cr := s.LCF.Crypto()
	if cr.LeafVerifies == 0 || cr.LeafUpdates == 0 {
		t.Fatalf("scrub bypassed the IC: %+v", cr)
	}
	for i := uint32(0); i < words; i++ {
		// Zone starts zeroed: plaintext after one pass is (0 + i) ^ 0x3C.
		want := i ^ 0x3C
		got := s.LCF.PeekPlaintext(base+4*i, 4)
		v := uint32(got[0]) | uint32(got[1])<<8 | uint32(got[2])<<16 | uint32(got[3])<<24
		if v != want {
			t.Fatalf("word %d = %#x, want %#x", i, v, want)
		}
	}
}

func TestDotProductKernel(t *testing.T) {
	s := soc.MustNew(soc.Config{Protection: soc.Distributed})
	s.HaltIdleCores(0)
	var want uint32
	for i := uint32(0); i < 16; i++ {
		a, b := i+1, 3*i+2
		want += a * b
		s.BRAM.Store().WriteWord(soc.BRAMBase+0x100+4*i, a)
		s.BRAM.Store().WriteWord(soc.BRAMBase+0x200+4*i, b)
	}
	s.MustLoad(0, workload.DotProduct(soc.BRAMBase+0x100, soc.BRAMBase+0x200, 16, soc.BRAMBase+0x40))
	if _, ok := s.Run(10_000_000); !ok {
		t.Fatal("dot kernel did not finish")
	}
	if got := s.BRAM.Store().ReadWord(soc.BRAMBase + 0x40); got != want {
		t.Fatalf("dot = %d, want %d", got, want)
	}
}
