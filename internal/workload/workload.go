// Package workload generates the MB32 programs used by the evaluation:
// memory copies, local matrix multiplies, mailbox producer/consumer pairs,
// external-memory streaming, and the tunable compute/communication mixes
// behind experiment E1 (the paper's §V discussion that protection overhead
// depends on the computation-to-communication ratio and on the
// internal-vs-external traffic split).
//
// The paper does not publish its benchmark programs, so these are
// synthetic kernels chosen to span the space the paper discusses.
package workload

import "fmt"

// MemCopy returns a program copying words 32-bit words from src to dst
// over the bus, one load + one store per word.
func MemCopy(src, dst uint32, words int) string {
	return fmt.Sprintf(`
		li r1, %#x        ; src
		li r2, %#x        ; dst
		li r3, %d         ; words
	copy:
		lw  r4, 0(r1)
		sw  r4, 0(r2)
		addi r1, r1, 4
		addi r2, r2, 4
		addi r3, r3, -1
		bnez r3, copy
		halt
	`, src, dst, words)
}

// Stream returns a program summing words read from base with the given
// byte stride; the checksum is left in r20 and stored to resultAddr when
// non-zero.
func Stream(base uint32, words int, stride uint32, resultAddr uint32) string {
	tail := "halt"
	if resultAddr != 0 {
		tail = fmt.Sprintf("li r1, %#x\n\t\tsw r20, 0(r1)\n\t\thalt", resultAddr)
	}
	return fmt.Sprintf(`
		li r1, %#x        ; base
		li r2, %d         ; words
		li r20, 0         ; checksum
	stream:
		lw  r3, 0(r1)
		add r20, r20, r3
		addi r1, r1, %d
		addi r2, r2, -1
		bnez r2, stream
		%s
	`, base, words, stride, tail)
}

// Mix returns the E1 kernel: `accesses` bus accesses to target (alternating
// store/load, advancing by stride and wrapping every `span` bytes), with
// `computeIters` ALU-only inner iterations between consecutive accesses.
// computeIters/1 is the computation:communication ratio knob.
func Mix(target uint32, span uint32, stride uint32, accesses, computeIters int) string {
	if span == 0 || stride == 0 {
		panic("workload: Mix needs non-zero span and stride")
	}
	return fmt.Sprintf(`
		li r1, %#x        ; base pointer
		li r9, %#x        ; wrap limit
		li r2, %d         ; remaining accesses
		li r20, 0         ; running value
		li r21, 0         ; access parity
	outer:
		li r3, %d         ; compute iterations
		beqz r3, comm
	compute:
		addi r20, r20, 3
		xori r20, r20, 0x55
		srli r4, r20, 1
		add  r20, r20, r4
		addi r3, r3, -1
		bnez r3, compute
	comm:
		andi r4, r21, 1
		bnez r4, doload
		sw  r20, 0(r1)
		b   next
	doload:
		lw  r5, 0(r1)
		add r20, r20, r5
	next:
		addi r21, r21, 1
		addi r1, r1, %d
		blt  r1, r9, nowrap
		li r1, %#x
	nowrap:
		addi r2, r2, -1
		bnez r2, outer
		halt
	`, target, target+span, accesses, computeIters, stride, target)
}

// MatMulLocal returns an n×n integer matrix multiply operating entirely in
// core-local memory (compute-bound), publishing a checksum of C to
// resultAddr. Matrices live at local addresses 0x8000/0x9000/0xA000, so n
// must be at most 31 (n*n*4 <= 0x1000).
func MatMulLocal(n int, resultAddr uint32) string {
	if n < 1 || n > 31 {
		panic(fmt.Sprintf("workload: MatMulLocal n=%d out of range", n))
	}
	return fmt.Sprintf(`
		.equ AMAT, 0x8000
		.equ BMAT, 0x9000
		li r10, %d        ; n
		; --- init A[k]=k&7, B[k]=(k+3)&7 ---
		li r1, AMAT
		li r2, BMAT
		li r3, 0
		mul r4, r10, r10
	init:
		andi r5, r3, 7
		sw  r5, 0(r1)
		addi r6, r3, 3
		andi r6, r6, 7
		sw  r6, 0(r2)
		addi r1, r1, 4
		addi r2, r2, 4
		addi r3, r3, 1
		bne r3, r4, init
		; --- C = A x B, checksum in r20 ---
		li r20, 0
		li r11, 0         ; i
	iloop:
		li r12, 0         ; j
	jloop:
		li r13, 0         ; k
		li r14, 0         ; acc
	kloop:
		mul r5, r11, r10
		add r5, r5, r13
		slli r5, r5, 2
		li r6, AMAT
		add r6, r6, r5
		lw r7, 0(r6)
		mul r5, r13, r10
		add r5, r5, r12
		slli r5, r5, 2
		li r6, BMAT
		add r6, r6, r5
		lw r8, 0(r6)
		mul r9, r7, r8
		add r14, r14, r9
		addi r13, r13, 1
		bne r13, r10, kloop
		add r20, r20, r14
		addi r12, r12, 1
		bne r12, r10, jloop
		addi r11, r11, 1
		bne r11, r10, iloop
		li r1, %#x
		sw r20, 0(r1)
		halt
	`, n, resultAddr)
}

// MatMulChecksum is the pure-Go reference for MatMulLocal's published
// checksum.
func MatMulChecksum(n int) uint32 {
	a := make([]uint32, n*n)
	b := make([]uint32, n*n)
	for k := 0; k < n*n; k++ {
		a[k] = uint32(k) & 7
		b[k] = uint32(k+3) & 7
	}
	var sum uint32
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc uint32
			for k := 0; k < n; k++ {
				acc += a[i*n+k] * b[k*n+j]
			}
			sum += acc
		}
	}
	return sum
}

// Producer returns a program pushing count sequenced values (1, 8, 15, …)
// into the mailbox at mboxBase, spinning while the FIFO is full.
func Producer(mboxBase uint32, count int) string {
	return fmt.Sprintf(`
		li r1, %#x        ; mailbox
		li r2, %d         ; count
		li r3, 1          ; value
	prod:
	waitfull:
		lw  r4, 8(r1)     ; status
		andi r4, r4, 2    ; full?
		bnez r4, waitfull
		sw  r3, 0(r1)     ; push
		addi r3, r3, 7
		addi r2, r2, -1
		bnez r2, prod
		halt
	`, mboxBase, count)
}

// Consumer returns a program popping count values from the mailbox,
// accumulating them into r20 and storing the sum at resultAddr.
func Consumer(mboxBase uint32, count int, resultAddr uint32) string {
	return fmt.Sprintf(`
		li r1, %#x        ; mailbox
		li r2, %d         ; count
		li r20, 0
	cons:
	waitempty:
		lw  r4, 8(r1)     ; status
		andi r4, r4, 1    ; not-empty?
		beqz r4, waitempty
		lw  r5, 0(r1)     ; pop
		add r20, r20, r5
		addi r2, r2, -1
		bnez r2, cons
		li r1, %#x
		sw r20, 0(r1)
		halt
	`, mboxBase, count, resultAddr)
}

// ProducerChecksum is the pure-Go reference for the consumer's sum.
func ProducerChecksum(count int) uint32 {
	var sum, v uint32
	v = 1
	for i := 0; i < count; i++ {
		sum += v
		v += 7
	}
	return sum
}

// Scrub returns a read-modify-write sweep: each iteration loads a word,
// mixes in a running counter, stores it back and advances by stride.
// Pointed at a protected external zone this is the canonical secured
// read-modify-write traffic — every load costs a leaf verification and
// every store a tree update inside the Local Ciphering Firewall.
func Scrub(base uint32, words int, stride uint32) string {
	return fmt.Sprintf(`
		li r1, %#x        ; pointer
		li r2, %d         ; words
		li r20, 0         ; counter
	scrub:
		lw  r3, 0(r1)
		add r3, r3, r20
		xori r3, r3, 0x3C
		sw  r3, 0(r1)
		addi r20, r20, 1
		addi r1, r1, %d
		addi r2, r2, -1
		bnez r2, scrub
		halt
	`, base, words, stride)
}

// DoSFlood returns the hijacked-IP program of experiment E3: an infinite
// tight loop of stores to target. With target outside the core's policy
// zones, a Local Firewall discards every one locally; without protection
// the flood occupies the shared bus and starves the other masters.
func DoSFlood(target uint32) string {
	return fmt.Sprintf(`
		li r1, %#x
	flood:
		sw r0, 0(r1)
		b flood
	`, target)
}

// IllegalStores returns a program issuing n stores to target (outside the
// issuing core's policy on protected platforms, so each one alerts) and
// then halting — the minimal hijacked-core stimulus for reactor and
// supervisor tests.
func IllegalStores(target uint32, n int) string {
	return fmt.Sprintf(`
		li r1, %#x
		li r2, %d
	viol:
		sw r0, 0(r1)
		addi r2, r2, -1
		bnez r2, viol
		halt
	`, target, n)
}

// BurstFlood returns the finite-incident form of the DoS flood, built for
// the reaction-and-recovery experiments: `bursts` iterations of one store
// to illegal (a policy violation that alerts on protected platforms)
// followed by `legalPerBurst` stores to legal (authorized traffic that
// congests the shared bus on every platform), then a benign tail of
// `tailWords` legal stores before halting. The hostile phase is finite, so
// a quarantined-then-released attacker has a post-inject benign phase in
// which throughput recovery is observable — unlike DoSFlood, which never
// stops attacking.
func BurstFlood(illegal, legal uint32, bursts, legalPerBurst, tailWords int) string {
	return fmt.Sprintf(`
		li r1, %#x        ; illegal target
		li r2, %#x        ; legal target
		li r3, %d         ; bursts
	burst:
		sw r0, 0(r1)      ; policy violation -> alert
		li r4, %d
	legal:
		sw r0, 0(r2)      ; authorized bus traffic
		addi r4, r4, -1
		bnez r4, legal
		addi r3, r3, -1
		bnez r3, burst
		li r4, %d         ; benign tail after the attack ends
	tail:
		sw r0, 0(r2)
		addi r4, r4, -1
		bnez r4, tail
		halt
	`, illegal, legal, bursts, legalPerBurst, tailWords)
}

// FormatAbuse returns a program probing a word-only zone with byte and
// halfword accesses (ADF violations), then halting. errsOut is where the
// observed bus-error count (CSR 4) is stored — in local memory so the
// store itself cannot be blocked.
func FormatAbuse(target uint32, probes int, errsOut uint32) string {
	return fmt.Sprintf(`
		li r1, %#x
		li r2, %d
	probe:
		sb r0, 0(r1)
		sh r0, 0(r1)
		addi r2, r2, -1
		bnez r2, probe
		csrr r3, 4        ; bus-error count
		li r4, %#x
		sw r3, 0(r4)
		halt
	`, target, probes, errsOut)
}

// ZoneEscape returns a hijacked-core program attempting reads and writes
// at forbidden addresses (escalation / secret extraction attempts),
// recording the observed error count to errsOut (local).
func ZoneEscape(targets []uint32, errsOut uint32) string {
	src := "\n"
	for i, tgt := range targets {
		src += fmt.Sprintf(`
		li r1, %#x
		lw r%d, 0(r1)
		sw r0, 0(r1)
	`, tgt, 10+i%8)
	}
	return src + fmt.Sprintf(`
		csrr r3, 4
		li r4, %#x
		sw r3, 0(r4)
		halt
	`, errsOut)
}

// CRC32 returns a program computing the bitwise CRC-32 (IEEE polynomial,
// reflected, no table) of `words` 32-bit words starting at base, storing
// the final value at resultAddr. It mixes bus reads with a heavy ALU inner
// loop — a realistic mixed kernel.
func CRC32(base uint32, words int, resultAddr uint32) string {
	return fmt.Sprintf(`
		li r1, %#x        ; data pointer
		li r2, %d         ; words
		li r20, -1        ; crc = 0xFFFFFFFF
		li r8, 0xEDB88320
	word:
		lw r3, 0(r1)
		xor r20, r20, r3
		li r4, 32         ; bits
	bit:
		andi r5, r20, 1
		srli r20, r20, 1
		beqz r5, nbit
		xor r20, r20, r8
	nbit:
		addi r4, r4, -1
		bnez r4, bit
		addi r1, r1, 4
		addi r2, r2, -1
		bnez r2, word
		not r20, r20      ; final inversion
		li r1, %#x
		sw r20, 0(r1)
		halt
	`, base, words, resultAddr)
}

// CRC32Ref is the pure-Go reference for CRC32 (IEEE, bitwise).
func CRC32Ref(data []uint32) uint32 {
	crc := ^uint32(0)
	for _, w := range data {
		crc ^= w
		for b := 0; b < 32; b++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ 0xEDB88320
			} else {
				crc >>= 1
			}
		}
	}
	return ^crc
}

// DotProduct returns a program computing the integer dot product of two
// vectors of `n` words at a and b (bus-resident), storing the result at
// resultAddr — the streaming external-memory kernel of the E1 discussion.
func DotProduct(a, b uint32, n int, resultAddr uint32) string {
	return fmt.Sprintf(`
		li r1, %#x        ; a
		li r2, %#x        ; b
		li r3, %d         ; n
		li r20, 0
	dot:
		lw r4, 0(r1)
		lw r5, 0(r2)
		mul r6, r4, r5
		add r20, r20, r6
		addi r1, r1, 4
		addi r2, r2, 4
		addi r3, r3, -1
		bnez r3, dot
		li r1, %#x
		sw r20, 0(r1)
		halt
	`, a, b, n, resultAddr)
}
