package trace

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Results", "name", "value")
	tb.AddRow("a", "1")
	tb.AddRow("longer-name", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Results" {
		t.Fatalf("title line = %q", lines[0])
	}
	// All data lines must have equal rendered width.
	if len(lines) < 4 {
		t.Fatalf("too few lines: %v", lines)
	}
	w := len(lines[1])
	for _, l := range lines[2:] {
		if len(l) != w {
			t.Fatalf("misaligned line %q (want width %d)", l, w)
		}
	}
	if !strings.Contains(out, "name") || !strings.Contains(out, "longer-name") {
		t.Fatal("content missing")
	}
}

func TestTableSeparatorAndExtraColumns(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("1", "2", "3") // extra cell beyond headers
	tb.Separator()
	tb.AddRow("x")
	out := tb.String()
	if !strings.Contains(out, "3") {
		t.Fatal("extra column dropped")
	}
	if !strings.Contains(out, "---") {
		t.Fatal("separator missing")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("1", "with,comma")
	tb.AddRow("2", `with"quote`)
	csv := tb.CSV()
	want := "a,b\n1,\"with,comma\"\n2,\"with\"\"quote\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestAddRowf(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRowf("%d|%s", 42, "x")
	if !strings.Contains(tb.String(), "42") {
		t.Fatal("AddRowf row missing")
	}
}

func TestPct(t *testing.T) {
	if got := Pct(113.43, 100); got != "+13.43%" {
		t.Fatalf("Pct = %q", got)
	}
	if got := Pct(90, 100); got != "-10.00%" {
		t.Fatalf("Pct = %q", got)
	}
	if got := Pct(1, 0); got != "n/a" {
		t.Fatalf("Pct(_, 0) = %q", got)
	}
}

func TestComma(t *testing.T) {
	cases := map[uint64]string{
		0:       "0",
		999:     "999",
		1000:    "1,000",
		12895:   "12,895",
		1234567: "1,234,567",
		21530:   "21,530",
	}
	for in, want := range cases {
		if got := Comma(in); got != want {
			t.Errorf("Comma(%d) = %q, want %q", in, got, want)
		}
	}
}
