// Package trace provides reporting utilities shared by the benchmark
// harness and the command-line tools: aligned text tables (for regenerating
// the paper's Table I / Table II layouts) and simple CSV emission for the
// sweep experiments.
package trace

import (
	"fmt"
	"strings"
)

// Table renders rows of cells with aligned columns, in the style of the
// paper's result tables.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells beyond the header count are kept and padded.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row built from formatted values.
func (t *Table) AddRowf(format string, args ...interface{}) {
	t.AddRow(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

// Separator inserts a horizontal rule.
func (t *Table) Separator() {
	t.rows = append(t.rows, nil)
}

// String renders the table.
func (t *Table) String() string {
	ncol := len(t.headers)
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.headers)
	for _, r := range t.rows {
		measure(r)
	}
	var sb strings.Builder
	if t.title != "" {
		sb.WriteString(t.title)
		sb.WriteByte('\n')
	}
	rule := func() {
		for i, w := range widths {
			if i > 0 {
				sb.WriteString("-+-")
			}
			sb.WriteString(strings.Repeat("-", w))
		}
		sb.WriteByte('\n')
	}
	writeRow := func(r []string) {
		for i := 0; i < ncol; i++ {
			if i > 0 {
				sb.WriteString(" | ")
			}
			c := ""
			if i < len(r) {
				c = r[i]
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		sb.WriteByte('\n')
	}
	if len(t.headers) > 0 {
		writeRow(t.headers)
		rule()
	}
	for _, r := range t.rows {
		if r == nil {
			rule()
			continue
		}
		writeRow(r)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (quoting cells that
// contain commas).
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(r []string) {
		for i, c := range r {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				sb.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	if len(t.headers) > 0 {
		writeRow(t.headers)
	}
	for _, r := range t.rows {
		if r != nil {
			writeRow(r)
		}
	}
	return sb.String()
}

// Pct formats a ratio as a signed percentage with two decimals, matching
// the paper's "+13.43%" style.
func Pct(with, without float64) string {
	if without == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.2f%%", (with-without)/without*100)
}

// Comma formats an integer with thousands separators, as the paper's
// tables do (e.g. "12,895").
func Comma(v uint64) string {
	s := fmt.Sprintf("%d", v)
	if len(s) <= 3 {
		return s
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	return s + "," + strings.Join(parts, ",")
}
