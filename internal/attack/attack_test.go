package attack_test

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/soc"
)

// TestExternalAttacksSucceedUnprotected keeps the threat model honest: on
// the generic platform every external-memory attack reaches its goal and
// nothing notices.
func TestExternalAttacksSucceedUnprotected(t *testing.T) {
	for _, run := range []func(soc.Protection) attack.Outcome{
		attack.Tamper, attack.Replay, attack.Relocation, attack.Spoof,
	} {
		o := run(soc.Unprotected)
		if o.Detected {
			t.Errorf("%s: detected on unprotected platform?!", o.Scenario)
		}
		if o.Contained {
			t.Errorf("%s: attack failed even without protection — scenario broken (%s)", o.Scenario, o.Notes)
		}
	}
}

// TestExternalAttacksDetectedAndContainedDistributed is the paper's core
// security claim for the LCF.
func TestExternalAttacksDetectedAndContainedDistributed(t *testing.T) {
	for _, run := range []func(soc.Protection) attack.Outcome{
		attack.Tamper, attack.Replay, attack.Relocation, attack.Spoof,
	} {
		o := run(soc.Distributed)
		if !o.Detected {
			t.Errorf("%s: not detected (%s)", o.Scenario, o.Notes)
		}
		if !o.Contained {
			t.Errorf("%s: not contained (%s)", o.Scenario, o.Notes)
		}
	}
}

func TestReplayClassifiedAsReplay(t *testing.T) {
	o := attack.Replay(soc.Distributed)
	if o.Violation != core.VReplay {
		t.Errorf("replay classified as %v", o.Violation)
	}
}

func TestTamperClassifiedAsIntegrity(t *testing.T) {
	o := attack.Tamper(soc.Distributed)
	if o.Violation != core.VIntegrity && o.Violation != core.VReplay {
		t.Errorf("tamper classified as %v", o.Violation)
	}
}

// TestCentralizedMissesExternalAttacks: the SECA-style baseline checks bus
// rules only — it has no external-memory protection, so all four attacks
// succeed silently. This is the architectural gap the LCF fills.
func TestCentralizedMissesExternalAttacks(t *testing.T) {
	for _, run := range []func(soc.Protection) attack.Outcome{
		attack.Tamper, attack.Replay, attack.Relocation, attack.Spoof,
	} {
		o := run(soc.Centralized)
		if o.Detected || o.Contained {
			t.Errorf("%s: centralized baseline unexpectedly handled it (%s)", o.Scenario, o.Notes)
		}
	}
}

func TestHijackAttacksContainedDistributed(t *testing.T) {
	for _, run := range []func(soc.Protection) attack.Outcome{
		attack.ZoneEscape, attack.DMAHijack, attack.FormatAbuse,
	} {
		o := run(soc.Distributed)
		if !o.Detected || !o.Contained {
			t.Errorf("%s: detected=%v contained=%v (%s)", o.Scenario, o.Detected, o.Contained, o.Notes)
		}
	}
}

func TestHijackAttacksSucceedUnprotected(t *testing.T) {
	for _, run := range []func(soc.Protection) attack.Outcome{
		attack.ZoneEscape, attack.DMAHijack,
	} {
		o := run(soc.Unprotected)
		if o.Detected {
			t.Errorf("%s: phantom detection on unprotected platform", o.Scenario)
		}
		if o.Contained {
			t.Errorf("%s: hijack failed without protection — scenario broken (%s)", o.Scenario, o.Notes)
		}
	}
}

func TestHijackAttacksDetectedCentralized(t *testing.T) {
	// Bus-rule attacks ARE the centralized baseline's home turf: it must
	// catch them too (at higher cost — see the benches).
	for _, run := range []func(soc.Protection) attack.Outcome{
		attack.ZoneEscape, attack.DMAHijack,
	} {
		o := run(soc.Centralized)
		if !o.Detected || !o.Contained {
			t.Errorf("%s: centralized missed a bus-rule attack: detected=%v contained=%v (%s)",
				o.Scenario, o.Detected, o.Contained, o.Notes)
		}
	}
}

func TestDetectionLatencyIsBounded(t *testing.T) {
	// §III-C: "the system must react as fast as possible". A hijacked-IP
	// violation must be flagged within the SB check window plus a couple
	// of pipeline cycles, not after the transfer completed.
	o := attack.ZoneEscape(soc.Distributed)
	if !o.Detected {
		t.Fatal("not detected")
	}
	if o.DetectLatency > 200 {
		t.Errorf("detection took %d cycles", o.DetectLatency)
	}
}

func TestDoSContainmentDistributed(t *testing.T) {
	d := attack.DoS(soc.Distributed)
	if !d.Detected {
		t.Error("flood not detected")
	}
	if !d.Contained {
		t.Errorf("victim slowed %.2fx by a flood the firewall should absorb (%s)", d.Slowdown(), d.Notes)
	}
	if d.FloodBusShare > 0.01 {
		t.Errorf("flood reached the bus: %.1f%% of transactions", d.FloodBusShare*100)
	}
}

func TestDoSHurtsUnprotected(t *testing.T) {
	d := attack.DoS(soc.Unprotected)
	if d.Slowdown() < 1.5 {
		t.Errorf("flood barely hurt the unprotected victim (%.2fx) — scenario broken", d.Slowdown())
	}
	if d.FloodBusShare < 0.3 {
		t.Errorf("flood bus share only %.1f%%", d.FloodBusShare*100)
	}
}

func TestDoSHurtsCentralizedMore(t *testing.T) {
	// The SEM serializes every check, so a flood congests *everyone*.
	cent := attack.DoS(soc.Centralized)
	dist := attack.DoS(soc.Distributed)
	if cent.Slowdown() <= dist.Slowdown() {
		t.Errorf("centralized slowdown %.2fx not worse than distributed %.2fx",
			cent.Slowdown(), dist.Slowdown())
	}
}

func TestAllRunsEveryScenario(t *testing.T) {
	outs := attack.All(soc.Distributed)
	if len(outs) != 7 {
		t.Fatalf("All returned %d scenarios, want 7", len(outs))
	}
	seen := map[string]bool{}
	for _, o := range outs {
		if seen[o.Scenario] {
			t.Errorf("duplicate scenario %s", o.Scenario)
		}
		seen[o.Scenario] = true
		if o.Scenario == "" || o.String() == "" {
			t.Error("empty scenario metadata")
		}
	}
}

// TestCipherOnlyZoneVulnerableByDesign pins the paper's §III-B analysis:
// a ciphered-but-unauthenticated zone resists disclosure but not
// corruption-DoS — on every architecture, including the distributed one.
func TestCipherOnlyZoneVulnerableByDesign(t *testing.T) {
	for _, p := range []soc.Protection{soc.Unprotected, soc.Distributed} {
		o := attack.CipherOnlyTamper(p)
		if o.Detected {
			t.Errorf("%v: cipher-only tamper detected?! (%s)", p, o.Notes)
		}
		if o.Contained {
			t.Errorf("%v: cipher-only tamper contained?! (%s)", p, o.Notes)
		}
	}
	// Confidentiality still holds on the distributed platform: the
	// stored bytes are ciphertext.
	s := soc.MustNew(soc.Config{Protection: soc.Distributed})
	s.HaltIdleCores()
	if got := s.DDR.Store().ReadWord(soc.CipherBase); got == 0 {
		// Sealed zone: even all-zero plaintext encrypts to nonzero.
		t.Error("cipher zone stored plaintext zeros")
	}
}
